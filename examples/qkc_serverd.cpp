/**
 * qkc_serverd — serve simulation requests over HTTP.
 *
 * Clients POST JSON to /v1/run: a QASM circuit, a backend spec, a task
 * (sample | expectation | amplitudes | probabilities) and optionally a seed
 * and parameter bindings. The daemon caches open sessions per (backend
 * spec, circuit structure) in an LRU, coalesces concurrent same-structure
 * requests into single batched runs, and refuses infeasible work at the
 * front door (422) instead of dying on it. Per-request seeds make every
 * payload bit-identical whether it ran solo, coalesced, or was replayed
 * after an eviction.
 *
 * Endpoints:
 *   POST /v1/run       run one request (see README "Serving" for the schema)
 *   GET  /v1/backends  the registry: names, aliases, option keys
 *   GET  /v1/stats     cache/queue/coalescing metrics (server.* namespace)
 *   GET  /v1/healthz   liveness + drain state
 *   POST /v1/shutdown  begin graceful drain, then exit
 *
 * Flags:
 *   --port=N       listen port (default 7411; 0 picks an ephemeral port)
 *   --cache=N      session-cache capacity (default 8)
 *   --coalesce=N   max requests merged into one batch (default 16)
 *   --inflight=N   max queued+running requests before 429 (default 64)
 *   --memory-gb=N  dense-state admission budget (default 4)
 *
 * SIGINT/SIGTERM also trigger the graceful drain: in-flight work finishes,
 * new work gets 503, and the process exits once the queue is empty.
 */
#include <csignal>
#include <cstdio>
#include <thread>

#include "server/http_server.h"
#include "util/cli.h"

namespace {

volatile std::sig_atomic_t gSignaled = 0;

void
onSignal(int)
{
    gSignaled = 1;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace qkc;
    Cli cli(argc, argv);

    server::ServerConfig config;
    config.cacheCapacity = static_cast<std::size_t>(cli.getInt("cache", 8));
    config.maxCoalesce = static_cast<std::size_t>(cli.getInt("coalesce", 16));
    config.maxInflight = static_cast<std::size_t>(cli.getInt("inflight", 64));
    config.admission.stateMemoryBytes =
        static_cast<std::uint64_t>(cli.getInt("memory-gb", 4)) << 30;

    server::ServerCore core(config);
    server::HttpServer http(
        core, static_cast<std::uint16_t>(cli.getInt("port", 7411)));

    // The port line is the startup contract: scripts wait for it, then
    // parse the port out of it (essential with --port=0).
    std::printf("qkc_serverd listening on 127.0.0.1:%u\n", http.port());
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    // Drain protocol: a signal or POST /v1/shutdown flips the core into
    // draining (new /v1/run -> 503); we exit once in-flight work is done.
    while (!(core.draining() && core.inflight() == 0)) {
        if (gSignaled)
            core.beginDrain();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    http.stop();
    std::printf("qkc_serverd drained, exiting\n");
    return 0;
}
