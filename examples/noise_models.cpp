/**
 * Tour of the canonical noise models (paper Table 1): applies each channel
 * to a GHZ state and reports how the measurement distribution degrades,
 * cross-checking the knowledge-compilation simulator against the exact
 * density-matrix simulator for every channel type.
 *
 * Usage: noise_models [--qubits=3] [--strength=0.2]
 */
#include <cstdio>
#include <string>
#include <vector>

#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "util/cli.h"

using namespace qkc;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::size_t n = static_cast<std::size_t>(cli.getInt("qubits", 3));
    double strength = cli.getDouble("strength", 0.2);

    struct Entry {
        std::string label;
        NoiseChannel channel;
    };
    std::vector<Entry> channels{
        {"bit flip (Pauli-X mixture)", NoiseChannel::bitFlip(1, strength)},
        {"phase flip (Pauli-Z mixture)", NoiseChannel::phaseFlip(1, strength)},
        {"symmetric depolarizing", NoiseChannel::depolarizing(1, strength)},
        {"asymmetric depolarizing",
         NoiseChannel::asymmetricDepolarizing(1, strength / 2, strength / 3,
                                              strength / 4)},
        {"amplitude damping (T1)", NoiseChannel::amplitudeDamping(1, strength)},
        {"phase damping (T2)", NoiseChannel::phaseDamping(1, strength)},
        {"generalized amplitude damping",
         NoiseChannel::generalizedAmplitudeDamping(1, strength, 0.7)},
    };

    std::printf("GHZ-%zu with one mid-circuit channel of strength %.2f\n", n,
                strength);
    std::printf("%-32s %-9s %8s %8s %10s %10s\n", "channel", "kind", "P(0..0)",
                "P(1..1)", "leak_mass", "kc_vs_dm");

    for (const auto& entry : channels) {
        // Entangle first, then hit qubit 1 with the channel so that every
        // noise type has something to act on, then finish the GHZ ladder.
        Circuit c(n);
        c.h(0);
        c.cnot(0, 1);
        c.append(entry.channel);
        for (std::size_t q = 2; q < n; ++q)
            c.cnot(q - 1, q);

        KcSimulator kc(c);
        DensityMatrixSimulator dm;
        auto exact = dm.distribution(c);
        auto kcDist = kc.outcomeDistribution();

        double maxDiff = 0.0;
        double leak = 0.0;
        for (std::size_t x = 0; x < exact.size(); ++x) {
            maxDiff = std::max(maxDiff, std::abs(exact[x] - kcDist[x]));
            if (x != 0 && x != exact.size() - 1)
                leak += exact[x];
        }
        std::printf("%-32s %-9s %8.4f %8.4f %10.4f %10.2e\n",
                    entry.label.c_str(),
                    entry.channel.isMixture() ? "mixture" : "channel",
                    kcDist.front(), kcDist.back(), leak, maxDiff);
    }
    std::printf("\n'leak_mass' is probability escaping the GHZ support; "
                "'kc_vs_dm' is the max deviation between the two exact "
                "simulators (should be ~1e-16).\n");
    return 0;
}
