/**
 * QAOA Max-Cut end to end: a random 3-regular graph, the hybrid
 * quantum-classical loop with Nelder-Mead, and one backend session that
 * compiles the circuit structure once and only rebinds parameter leaves on
 * every optimizer iteration — the paper's headline use case, now served by
 * every backend through the task API.
 *
 * Usage: qaoa_maxcut [--vertices=10] [--iterations=1] [--samples=256]
 *                    [--backend=kc]   (any makeBackend spec, e.g. dd,
 *                                      sv:threads=8)
 *                    [--exact]        (score with the exact Expectation
 *                                      task instead of shot estimates)
 *                    [--starts=K]     (score K random starting points in
 *                                      one batched sweep first)
 *                    [--gradient]     (after optimizing, evaluate the
 *                                      shift-rule gradient at the optimum
 *                                      twice — sequential bind/run loop vs
 *                                      one Session::runBatch — and report
 *                                      the batch speedup)
 *                    [--trace=FILE]   (record every span of the run and
 *                                      write Chrome trace-event JSON:
 *                                      chrome://tracing / Perfetto)
 *                    [--profile]      (run one Sample and one Expectation
 *                                      task at the optimum and print their
 *                                      ResultMeta.profile phase reports)
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "util/timer.h"
#include "vqa/driver.h"

using namespace qkc;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::size_t vertices = static_cast<std::size_t>(cli.getInt("vertices", 10));
    std::size_t p = static_cast<std::size_t>(cli.getInt("iterations", 1));
    std::size_t samples = static_cast<std::size_t>(cli.getInt("samples", 256));

    Rng graphRng(7);
    auto problem = QaoaMaxCut::randomRegular(vertices, 3, p, graphRng);
    std::printf("Max-Cut on a random 3-regular graph: %zu vertices, "
                "%zu edges, QAOA p=%zu\n",
                problem.numQubits(), problem.graph().numEdges(), p);

    std::size_t optimal = maxCutBruteForce(problem.graph());
    std::printf("brute-force max cut: %zu\n\n", optimal);

    VqaOptions options;
    options.samplesPerEvaluation = samples;
    options.optimizer.maxIterations = 40;
    options.seed = 11;
    options.exactExpectation = cli.has("exact");
    options.batchedStarts = static_cast<std::size_t>(cli.getInt("starts", 0));

    auto backend = makeBackend(cli.getString("backend", "kc"));

    const std::string tracePath = cli.getString("trace", "");
    if (!tracePath.empty())
        obs::TraceRecorder::instance().start();

    Timer t;
    VqaResult result = runQaoaMaxCut(problem, *backend, options);
    double seconds = t.seconds();

    std::printf("optimizer finished in %.2fs with the %s backend "
                "(%zu circuit evaluations, %.2fs inside the backend)\n",
                seconds, backend->name().c_str(), result.circuitEvaluations,
                result.sampleSeconds);
    std::printf("structure compiled %zu time(s), parameters rebound %zu "
                "time(s) — every non-first evaluation reused the plan\n",
                result.planBuilds, result.planReuses);
    std::printf("best expected cut: %.3f / %zu (ratio %.3f)\n",
                -result.bestObjective, optimal,
                -result.bestObjective / static_cast<double>(optimal));
    std::printf("best parameters:");
    for (double v : result.bestParams)
        std::printf(" %.3f", v);
    std::printf("\n");

    if (cli.has("profile")) {
        // One Sample and one Expectation task at the optimum, each carrying
        // its own ResultMeta.profile: the phase times are the run's
        // top-level spans and must sum to ~meta.seconds.
        auto session = backend->open(problem.circuit(result.bestParams));
        Rng profileRng(5);
        const Result sampled = session->run(Sample{samples}, profileRng);
        std::printf("\n--- profile: Sample{%zu} at the optimum "
                    "(meta.seconds %.6f) ---\n",
                    samples, sampled.meta.seconds);
        obs::writeProfileReport(std::cout, sampled.meta.profile);
        const Result expected = session->run(
            Expectation{problem.cutObservable(), samples}, profileRng);
        std::printf("--- profile: Expectation at the optimum "
                    "(meta.seconds %.6f) ---\n",
                    expected.meta.seconds);
        obs::writeProfileReport(std::cout, expected.meta.profile);
        std::printf("--- process metrics ---\n");
        obs::writeMetricsReport(std::cout,
                                obs::MetricsRegistry::instance().snapshot());
    }

    if (cli.has("gradient")) {
        // Shift-rule gradient of the exact expected cut at the optimum —
        // 2*numParams + 1 expectation evaluations — computed twice: a
        // sequential bind/run loop over one session, then a single batched
        // Session::runBatch that fans the same bindings across the thread
        // pool. The values must agree exactly; only the wall time differs.
        const PauliSum observable = problem.cutObservable();
        auto makeCircuit = [&](const std::vector<double>& p) {
            return problem.circuit(p);
        };
        const double shift = 1e-4; // gammas feed every edge: FD mode

        auto sequential = [&](Session& session) {
            std::vector<double> grad(result.bestParams.size());
            Rng gradRng(99);
            std::vector<double> p = result.bestParams;
            Timer t;
            for (std::size_t i = 0; i < p.size(); ++i) {
                p[i] = result.bestParams[i] + shift;
                session.bind(makeCircuit(p));
                const double plus =
                    session.run(Expectation{observable, samples}, gradRng)
                        .expectation;
                p[i] = result.bestParams[i] - shift;
                session.bind(makeCircuit(p));
                const double minus =
                    session.run(Expectation{observable, samples}, gradRng)
                        .expectation;
                p[i] = result.bestParams[i];
                grad[i] = (plus - minus) / (2.0 * std::sin(shift));
            }
            std::printf("  sequential bind/run loop: %.3fs\n", t.seconds());
            return grad;
        };

        std::printf("\nparameter-shift gradient at the optimum "
                    "(%zu evaluations):\n",
                    2 * result.bestParams.size() + 1);
        auto seqSession = backend->open(makeCircuit(result.bestParams));
        Timer seqTimer;
        const std::vector<double> seqGrad = sequential(*seqSession);
        const double seqSeconds = seqTimer.seconds();

        auto batchSession = backend->open(makeCircuit(result.bestParams));
        Rng gradRng(99);
        const GradientResult g =
            parameterShiftGradient(*batchSession, makeCircuit, observable,
                                   result.bestParams, gradRng, shift,
                                   samples);
        std::printf("  one runBatch of %zu bindings: %.3fs (%.1fx)\n",
                    g.batchSize, g.seconds, seqSeconds / g.seconds);
        double maxDiff = 0.0;
        for (std::size_t i = 0; i < g.gradient.size(); ++i)
            maxDiff = std::max(maxDiff,
                               std::abs(g.gradient[i] - seqGrad[i]));
        std::printf("  max |batched - sequential| component: %.3g\n",
                    maxDiff);
        std::printf("  gradient:");
        for (double v : g.gradient)
            std::printf(" %.4f", v);
        std::printf("\n");
    }

    if (!tracePath.empty()) {
        auto& recorder = obs::TraceRecorder::instance();
        recorder.stop();
        std::ofstream out(tracePath);
        recorder.writeChromeJson(out);
        std::printf("\ntrace written to %s (%zu spans)\n", tracePath.c_str(),
                    recorder.drain().size());
    }
    return 0;
}
