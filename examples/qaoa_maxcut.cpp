/**
 * QAOA Max-Cut end to end: a random 3-regular graph, the hybrid
 * quantum-classical loop with Nelder-Mead, and one backend session that
 * compiles the circuit structure once and only rebinds parameter leaves on
 * every optimizer iteration — the paper's headline use case, now served by
 * every backend through the task API.
 *
 * Usage: qaoa_maxcut [--vertices=10] [--iterations=1] [--samples=256]
 *                    [--backend=kc]   (any makeBackend spec, e.g. dd,
 *                                      sv:threads=8)
 *                    [--exact]        (score with the exact Expectation
 *                                      task instead of shot estimates)
 */
#include <cstdio>

#include "util/cli.h"
#include "util/timer.h"
#include "vqa/driver.h"

using namespace qkc;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::size_t vertices = static_cast<std::size_t>(cli.getInt("vertices", 10));
    std::size_t p = static_cast<std::size_t>(cli.getInt("iterations", 1));
    std::size_t samples = static_cast<std::size_t>(cli.getInt("samples", 256));

    Rng graphRng(7);
    auto problem = QaoaMaxCut::randomRegular(vertices, 3, p, graphRng);
    std::printf("Max-Cut on a random 3-regular graph: %zu vertices, "
                "%zu edges, QAOA p=%zu\n",
                problem.numQubits(), problem.graph().numEdges(), p);

    std::size_t optimal = maxCutBruteForce(problem.graph());
    std::printf("brute-force max cut: %zu\n\n", optimal);

    VqaOptions options;
    options.samplesPerEvaluation = samples;
    options.optimizer.maxIterations = 40;
    options.seed = 11;
    options.exactExpectation = cli.has("exact");

    auto backend = makeBackend(cli.getString("backend", "kc"));
    Timer t;
    VqaResult result = runQaoaMaxCut(problem, *backend, options);
    double seconds = t.seconds();

    std::printf("optimizer finished in %.2fs with the %s backend "
                "(%zu circuit evaluations, %.2fs inside the backend)\n",
                seconds, backend->name().c_str(), result.circuitEvaluations,
                result.sampleSeconds);
    std::printf("structure compiled %zu time(s), parameters rebound %zu "
                "time(s) — every non-first evaluation reused the plan\n",
                result.planBuilds, result.planReuses);
    std::printf("best expected cut: %.3f / %zu (ratio %.3f)\n",
                -result.bestObjective, optimal,
                -result.bestObjective / static_cast<double>(optimal));
    std::printf("best parameters:");
    for (double v : result.bestParams)
        std::printf(" %.3f", v);
    std::printf("\n");
    return 0;
}
