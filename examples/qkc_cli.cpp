/**
 * qkc_cli — drive the knowledge-compilation toolchain from the shell.
 *
 * Reads an OpenQASM 2.0 circuit (with optional `// qkc.noise ...` channel
 * annotations) and runs one of:
 *
 *   --mode=compile   print pipeline metrics; optionally write the CNF
 *                    (--cnf-out=f.cnf) and the AC (--nnf-out=f.nnf)
 *   --mode=amplitude print the amplitude of --outcome=BITSTRING
 *                    (noise events all pinned to "no event")
 *   --mode=dist      print the exact outcome distribution (small circuits)
 *   --mode=sample    draw --samples=N outcomes (--seed=S) from any
 *                    registered backend: --backend=kc|sv|dm|tn|dd (or the
 *                    long names; default knowledgecompilation). Backend
 *                    options ride along after a colon; --list-backends
 *                    prints every name, alias and accepted option key
 *                    straight from the registry.
 *   --mode=mpe       most probable explanation for --outcome=BITSTRING
 *
 * Observability (any mode): --trace=FILE writes a Chrome trace-event JSON
 * of every span the run emitted (load in chrome://tracing or Perfetto);
 * --profile prints the per-task phase/counter report after --mode=sample
 * plus the process metrics snapshot.
 *
 * Standalone: --list-backends (no --qasm needed); add --json for a
 * machine-readable listing (the same document qkc_serverd's /v1/backends
 * endpoint serves).
 *
 * Example:
 *   ./build/examples/qkc_cli --qasm=bell.qasm --mode=sample --samples=100
 *   ./build/examples/qkc_cli --qasm=bell.qasm --mode=sample --backend=dd
 *   ./build/examples/qkc_cli --qasm=big.qasm --mode=sample \
 *       --backend=sv:threads=8,fuse=1
 *   ./build/examples/qkc_cli --qasm=bell.qasm --mode=sample \
 *       --backend=kc:burnin=128
 */
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <utility>

#include "ac/kc_simulator.h"
#include "ac/queries.h"
#include "circuit/qasm.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/json.h"
#include "util/cli.h"
#include "util/stats.h"
#include "vqa/backends.h"

using namespace qkc;

namespace {

/** Writes the Chrome trace on every exit path once --trace=FILE armed it. */
struct TraceGuard {
    std::string path;

    ~TraceGuard()
    {
        if (path.empty())
            return;
        auto& recorder = obs::TraceRecorder::instance();
        recorder.stop();
        std::ofstream out(path);
        recorder.writeChromeJson(out);
        std::fprintf(stderr, "# trace written to %s\n", path.c_str());
    }
};

std::uint64_t
parseOutcome(const std::string& bits, std::size_t numQubits)
{
    if (bits.size() != numQubits)
        throw std::invalid_argument("--outcome length must equal qubit count");
    std::uint64_t v = 0;
    for (char c : bits) {
        if (c != '0' && c != '1')
            throw std::invalid_argument("--outcome must be a bitstring");
        v = (v << 1) | static_cast<std::uint64_t>(c - '0');
    }
    return v;
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);

    if (cli.has("list-backends")) {
        // Rendered straight from the registry parseBackendSpec validates
        // against, so this listing cannot drift from what is accepted.
        if (cli.has("json")) {
            server::Json list = server::Json::array();
            for (const BackendInfo& info : backendRegistry()) {
                server::Json b = server::Json::object();
                b.set("name", info.name);
                server::Json aliases = server::Json::array();
                for (const std::string& a : info.aliases)
                    aliases.push(server::Json(a));
                b.set("aliases", std::move(aliases));
                server::Json options = server::Json::array();
                for (const std::string& k : info.optionKeys)
                    options.push(server::Json(k));
                b.set("options", std::move(options));
                b.set("summary", info.summary);
                b.set("tasks", info.tasks);
                b.set("batch", info.batch);
                list.push(std::move(b));
            }
            server::Json out = server::Json::object();
            out.set("backends", std::move(list));
            std::printf("%s\n", out.dump().c_str());
            return 0;
        }
        for (const BackendInfo& info : backendRegistry()) {
            std::string aliases;
            for (const std::string& a : info.aliases)
                aliases += (aliases.empty() ? "" : ", ") + a;
            std::string keys;
            for (const std::string& k : info.optionKeys)
                keys += (keys.empty() ? "" : ", ") + k;
            std::printf("%s\n", info.name.c_str());
            std::printf("  aliases:  %s\n",
                        aliases.empty() ? "(none)" : aliases.c_str());
            std::printf("  options:  %s\n",
                        keys.empty() ? "(none)" : keys.c_str());
            std::printf("  profile:  %s\n", info.summary.c_str());
            std::printf("  tasks:    %s\n", info.tasks.c_str());
            std::printf("  batch:    %s\n", info.batch.c_str());
        }
        return 0;
    }

    std::string qasmPath = cli.getString("qasm", "");
    std::string mode = cli.getString("mode", "compile");

    TraceGuard trace{cli.getString("trace", "")};
    if (!trace.path.empty())
        obs::TraceRecorder::instance().start();

    Circuit circuit = [&]() {
        if (qasmPath.empty() || qasmPath == "-") {
            return parseQasm(std::cin);
        }
        std::ifstream in(qasmPath);
        if (!in)
            throw std::runtime_error("cannot open " + qasmPath);
        return parseQasm(in);
    }();

    const std::size_t n = circuit.numQubits();

    if (mode == "sample") {
        // Sampling goes through the backend registry, so any simulator
        // family can serve shots; only the default pays a KC compile.
        std::size_t numSamples =
            static_cast<std::size_t>(cli.getInt("samples", 100));
        Rng rng(static_cast<std::uint64_t>(cli.getInt("seed", 1)));
        auto backend = makeBackend(
            cli.getString("backend", "knowledgecompilation"));
        auto session = backend->open(circuit);
        const Result result = session->run(Sample{numSamples}, rng);
        std::map<std::uint64_t, std::size_t> counts;
        for (auto s : result.samples)
            ++counts[s];
        std::printf("# backend %s\n", backend->name().c_str());
        for (const auto& [outcome, count] : counts)
            std::printf("%s  %zu\n", basisKet(outcome, n).c_str(), count);
        if (cli.has("profile")) {
            std::printf("# --- task profile ---\n");
            obs::writeProfileReport(std::cout, result.meta.profile);
            std::printf("# --- process metrics ---\n");
            obs::writeMetricsReport(
                std::cout, obs::MetricsRegistry::instance().snapshot());
        }
        return 0;
    }

    KcSimulator sim(circuit);

    if (mode == "compile") {
        auto m = sim.metrics();
        std::printf("qubits        %zu\n", n);
        std::printf("operations    %zu (%zu gates, %zu channels)\n",
                    circuit.size(), circuit.gateCount(),
                    circuit.noiseCount());
        std::printf("bn_variables  %zu\n", m.bnNodes);
        std::printf("cnf_vars      %zu (%zu indicators)\n", m.cnfVars,
                    m.cnfIndicatorVars);
        std::printf("cnf_clauses   %zu\n", m.cnfClauses);
        std::printf("ac_nodes      %zu\n", m.acNodes);
        std::printf("ac_edges      %zu\n", m.acEdges);
        std::printf("ac_bytes      %zu\n", m.acFileBytes);
        std::printf("compile_s     %.4f\n", m.compileSeconds);
        std::string cnfOut = cli.getString("cnf-out", "");
        if (!cnfOut.empty()) {
            std::ofstream f(cnfOut);
            sim.cnf().writeDimacs(f);
            std::printf("wrote %s\n", cnfOut.c_str());
        }
        std::string nnfOut = cli.getString("nnf-out", "");
        if (!nnfOut.empty()) {
            std::ofstream f(nnfOut);
            sim.ac().writeNnf(f);
            std::printf("wrote %s\n", nnfOut.c_str());
        }
        return 0;
    }

    if (mode == "amplitude") {
        std::uint64_t outcome = parseOutcome(
            cli.getString("outcome", std::string(n, '0')), n);
        std::vector<std::size_t> noNoise(sim.bayesNet().noiseVars().size(), 0);
        Complex a = sim.amplitude(outcome, noNoise);
        std::printf("A(%s%s) = %.10f %+.10fi  |A|^2 = %.10f\n",
                    basisKet(outcome, n).c_str(),
                    noNoise.empty() ? "" : ", no noise events", a.real(),
                    a.imag(), norm2(a));
        return 0;
    }

    if (mode == "dist") {
        if (n > 16)
            throw std::runtime_error("--mode=dist limited to 16 qubits");
        auto dist = sim.outcomeDistribution();
        for (std::uint64_t x = 0; x < dist.size(); ++x) {
            if (dist[x] > 1e-12)
                std::printf("%s  %.8f\n", basisKet(x, n).c_str(), dist[x]);
        }
        return 0;
    }

    if (mode == "mpe") {
        std::uint64_t outcome = parseOutcome(
            cli.getString("outcome", std::string(n, '0')), n);
        Rng rng(static_cast<std::uint64_t>(cli.getInt("seed", 1)));
        auto r = mostProbableExplanation(sim, outcome, rng);
        std::printf("observed %s -> %s explanation, mass %.6g:\n",
                    basisKet(outcome, n).c_str(),
                    r.exact ? "exact" : "annealed", r.mass);
        const auto& bn = sim.bayesNet();
        for (std::size_t i = 0; i < r.noiseAssignment.size(); ++i)
            std::printf("  %s = %zu\n",
                        bn.variable(bn.noiseVars()[i]).name.c_str(),
                        r.noiseAssignment[i]);
        return 0;
    }

    std::fprintf(stderr, "unknown --mode=%s\n", mode.c_str());
    return 1;
}
