/**
 * Error diagnosis with the Section 5 research-direction queries:
 *
 *  1. MPE — "what error event best explains a given symptomatic observed
 *     outcome": observe corrupted GHZ readouts and ask the compiled AC
 *     which noise events most probably fired.
 *  2. Sensitivity analysis — rank the circuit's weight parameters by their
 *     influence on a target amplitude (the paper's suggested use: map the
 *     most influential operations onto the most reliable hardware qubits).
 *
 * Usage: error_diagnosis [--qubits=4] [--flip=0.08]
 */
#include <cstdio>

#include "ac/queries.h"
#include "algorithms/algorithms.h"
#include "util/cli.h"

using namespace qkc;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::size_t n = static_cast<std::size_t>(cli.getInt("qubits", 4));
    double flip = cli.getDouble("flip", 0.08);

    // GHZ ladder with a bit-flip channel after every gate.
    Circuit c = ghzCircuit(n).withNoiseAfterEachGate(NoiseKind::BitFlip, flip);
    KcSimulator kc(c);
    const auto& bn = kc.bayesNet();
    std::printf("GHZ-%zu with %zu bit-flip channels (p=%.2f each)\n\n", n,
                bn.noiseVars().size(), flip);

    // Diagnose a few symptomatic outcomes.
    Rng rng(1);
    std::vector<std::uint64_t> observations{
        (std::uint64_t{1} << n) - 1,       // clean |1...1>
        (std::uint64_t{1} << n) - 2,       // last qubit flipped
        (std::uint64_t{1} << (n - 1)) - 1, // first qubit flipped
    };
    for (std::uint64_t obs : observations) {
        auto mpe = mostProbableExplanation(kc, obs, rng);
        std::printf("observed %s -> most probable explanation (%s): ",
                    basisKet(obs, n).c_str(),
                    mpe.exact ? "exact" : "annealed");
        bool any = false;
        for (std::size_t i = 0; i < mpe.noiseAssignment.size(); ++i) {
            if (mpe.noiseAssignment[i] != 0) {
                std::printf("%s fired; ",
                            bn.variable(bn.noiseVars()[i]).name.c_str());
                any = true;
            }
        }
        if (!any)
            std::printf("no noise event");
        std::printf(" (mass %.4f)\n", mpe.mass);
    }

    // Sensitivity of the ideal outcome amplitude to each weight parameter.
    std::printf("\ntop-5 parameters by influence on A(|1...1>, no noise):\n");
    std::vector<std::size_t> noNoise(bn.noiseVars().size(), 0);
    kc.amplitude((std::uint64_t{1} << n) - 1, noNoise);
    auto sens = parameterSensitivities(kc);
    for (std::size_t i = 0; i < std::min<std::size_t>(5, sens.size()); ++i) {
        std::printf("  param %3d  value %+.4f%+.4fi  dA/dw %+.4f%+.4fi  "
                    "influence %.4f\n",
                    sens[i].paramId, sens[i].value.real(),
                    sens[i].value.imag(), sens[i].derivative.real(),
                    sens[i].derivative.imag(), sens[i].influence);
    }
    return 0;
}
