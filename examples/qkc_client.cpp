/**
 * qkc_client — drive a running qkc_serverd from the shell.
 *
 * Builds the /v1/run JSON body from flags (or posts a raw body verbatim)
 * and prints the response JSON on stdout; the exit code is 0 iff the
 * server answered 200. Non-200 responses print to stdout too — the error
 * document is the result.
 *
 * Flags:
 *   --host=H        server host (default 127.0.0.1)
 *   --port=N        server port (default 7411)
 *   --qasm=FILE     circuit file, or - for stdin (required for run)
 *   --backend=SPEC  backend spec string (default sv)
 *   --task=NAME     sample | expectation | amplitudes | probabilities
 *   --shots=N       Sample/Expectation shots
 *   --seed=S        base RNG seed (binding i draws seed+i)
 *   --body=JSON     post this body verbatim instead of building one
 *   --path=P        endpoint (default /v1/run); GET for non-run paths
 *
 * Examples:
 *   ./build/examples/qkc_client --qasm=bell.qasm --backend=dd --shots=64
 *   ./build/examples/qkc_client --path=/v1/stats
 *   ./build/examples/qkc_client --path=/v1/shutdown
 */
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

#include "server/http_client.h"
#include "server/json.h"
#include "util/cli.h"

int
main(int argc, char** argv)
{
    using namespace qkc;
    Cli cli(argc, argv);

    const std::string host = cli.getString("host", "127.0.0.1");
    const auto port = static_cast<std::uint16_t>(cli.getInt("port", 7411));
    const std::string path = cli.getString("path", "/v1/run");

    try {
        server::HttpReply reply;
        if (path != "/v1/run" && path != "/v1/shutdown") {
            reply = server::httpGet(host, port, path);
        } else if (path == "/v1/shutdown") {
            reply = server::httpPost(host, port, path, "{}");
        } else {
            std::string body = cli.getString("body", "");
            if (body.empty()) {
                const std::string qasmPath = cli.getString("qasm", "");
                if (qasmPath.empty()) {
                    std::fprintf(stderr,
                                 "qkc_client: --qasm=FILE (or --body=JSON) "
                                 "is required for /v1/run\n");
                    return 2;
                }
                std::ostringstream qasm;
                if (qasmPath == "-") {
                    qasm << std::cin.rdbuf();
                } else {
                    std::ifstream in(qasmPath);
                    if (!in) {
                        std::fprintf(stderr, "qkc_client: cannot open %s\n",
                                     qasmPath.c_str());
                        return 2;
                    }
                    qasm << in.rdbuf();
                }
                server::Json doc = server::Json::object();
                doc.set("backend", cli.getString("backend", "sv"));
                doc.set("qasm", qasm.str());
                doc.set("task", cli.getString("task", "sample"));
                if (cli.has("shots"))
                    doc.set("shots", server::Json(static_cast<std::uint64_t>(
                                         cli.getInt("shots", 1024))));
                if (cli.has("seed"))
                    doc.set("seed", server::Json(static_cast<std::uint64_t>(
                                        cli.getInt("seed", 0))));
                body = doc.dump();
            }
            reply = server::httpPost(host, port, path, body);
        }
        std::printf("%s\n", reply.body.c_str());
        return reply.status == 200 ? 0 : 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "qkc_client: %s\n", e.what());
        return 2;
    }
}
