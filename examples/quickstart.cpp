/**
 * Quickstart: compile a noisy circuit once, then query amplitudes,
 * probabilities, and samples from the compiled arithmetic circuit.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */
#include <cstdio>

#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "circuit/circuit.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace qkc;

int
main()
{
    // 1. Build a circuit with the fluent API: a 3-qubit GHZ state with a
    //    phase damping channel on the middle qubit.
    Circuit circuit(3);
    circuit.h(0).cnot(0, 1);
    circuit.append(NoiseChannel::phaseDamping(1, 0.2));
    circuit.cnot(1, 2);
    std::printf("%s\n", circuit.toString().c_str());

    // 2. Compile: circuit -> Bayesian network -> CNF -> arithmetic circuit.
    KcSimulator simulator(circuit);
    auto metrics = simulator.metrics();
    std::printf("compiled: %zu BN variables, %zu CNF clauses, "
                "%zu AC nodes (%zu bytes) in %.3fs\n\n",
                metrics.bnNodes, metrics.cnfClauses, metrics.acNodes,
                metrics.acFileBytes, metrics.compileSeconds);

    // 3. Upward pass: amplitude of |111> when the noise event did NOT fire.
    Complex a = simulator.amplitude(0b111, {0});
    std::printf("A(|111>, no-noise-event) = %.4f%+.4fi\n", a.real(), a.imag());

    // 4. Exact outcome probabilities (sums |amplitude|^2 over noise events).
    std::printf("\nmeasurement distribution:\n");
    for (std::uint64_t x = 0; x < 8; ++x) {
        double p = simulator.probability(x);
        if (p > 1e-12)
            std::printf("  P(%s) = %.4f\n", basisKet(x, 3).c_str(), p);
    }

    // 5. Downward pass: Gibbs-sample measurement outcomes.
    Rng rng(42);
    auto samples = simulator.sample(2000, rng);
    auto empirical = empiricalDistribution(samples, 8);
    std::printf("\n2000 Gibbs samples: P(|000>) ~ %.3f, P(|111>) ~ %.3f\n",
                empirical[0], empirical[7]);

    // 6. The paper's running example: noisy Bell state (Figure 2, Table 5).
    KcSimulator bell(noisyBellCircuit(0.36));
    std::printf("\nnoisy Bell: A(|11>, rv=0) = %.4f (expect 0.8/sqrt(2))\n",
                bell.amplitude(0b11, {0}).real());
    return 0;
}
