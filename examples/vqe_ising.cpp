/**
 * VQE for the minimum-energy configuration of a random-coupling 2D Ising
 * model, run against a comma-separated list of registry backends on the
 * NOISY circuit (0.5% depolarizing after every gate), mirroring the
 * paper's Figure 9 workload.
 *
 * Usage: vqe_ising [--rows=2] [--cols=3] [--iterations=1] [--samples=192]
 *                  [--backends=kc,dm]   (any makeBackend names, e.g. dd)
 *                  [--exact]            (score with the Expectation task:
 *                                        exact on dm/kc, trajectory-sampled
 *                                        on sv/dd)
 */
#include <cstdio>
#include <sstream>

#include "util/cli.h"
#include "util/timer.h"
#include "vqa/driver.h"

using namespace qkc;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::size_t rows = static_cast<std::size_t>(cli.getInt("rows", 2));
    std::size_t cols = static_cast<std::size_t>(cli.getInt("cols", 3));
    std::size_t p = static_cast<std::size_t>(cli.getInt("iterations", 1));
    std::size_t samples = static_cast<std::size_t>(cli.getInt("samples", 192));

    Rng modelRng(5);
    VqeIsing problem(rows, cols, p, modelRng);
    std::printf("2D Ising model on a %zux%zu grid (%zu couplings), "
                "VQE ansatz depth %zu\n",
                rows, cols, problem.grid().numEdges(), p);
    std::printf("exact ground state energy: %.4f\n\n",
                problem.groundStateEnergy());

    VqaOptions options;
    options.samplesPerEvaluation = samples;
    options.optimizer.maxIterations = 25;
    options.seed = 13;
    options.noisy = true;
    options.noiseKind = NoiseKind::Depolarizing;
    options.noiseStrength = 0.005;
    options.exactExpectation = cli.has("exact");

    std::istringstream names(cli.getString("backends", "kc,dm"));
    std::string name;
    while (std::getline(names, name, ',')) {
        if (name.empty())
            continue;
        auto backend = makeBackend(name);
        Timer t;
        VqaResult r = runVqeIsing(problem, *backend, options);
        std::printf("[%-20s] best energy %.4f in %.2fs (%zu evaluations, "
                    "%.2fs in backend, compiled %zux, rebound %zux)\n",
                    backend->name().c_str(), r.bestObjective, t.seconds(),
                    r.circuitEvaluations, r.sampleSeconds, r.planBuilds,
                    r.planReuses);
    }
    return 0;
}
