#ifndef QKC_TESTS_TESTING_TEST_CIRCUITS_H
#define QKC_TESTS_TESTING_TEST_CIRCUITS_H

#include <cmath>

#include "circuit/circuit.h"
#include "util/rng.h"

namespace qkc::testing {

/**
 * Random circuit generator for property tests: draws from the full gate
 * vocabulary (Clifford, rotations, diagonal, three-qubit, dense custom) so
 * every Bayesian-network encoding path is exercised.
 */
inline Circuit
randomCircuit(std::size_t numQubits, std::size_t numGates, Rng& rng,
              bool includeThreeQubit = true)
{
    Circuit c(numQubits);
    auto q = [&] { return rng.below(numQubits); };
    auto distinctPair = [&](std::size_t& a, std::size_t& b) {
        a = q();
        do {
            b = q();
        } while (b == a);
    };

    for (std::size_t i = 0; i < numGates; ++i) {
        std::size_t pick = rng.below(includeThreeQubit && numQubits >= 3 ? 14
                                                                         : 12);
        std::size_t a, b;
        switch (pick) {
          case 0: c.h(q()); break;
          case 1: c.x(q()); break;
          case 2: c.y(q()); break;
          case 3: c.z(q()); break;
          case 4: c.s(q()); break;
          case 5: c.t(q()); break;
          case 6: c.rx(q(), rng.uniform(0.1, 3.0)); break;
          case 7: c.ry(q(), rng.uniform(0.1, 3.0)); break;
          case 8: c.rz(q(), rng.uniform(0.1, 3.0)); break;
          case 9:
            distinctPair(a, b);
            c.cnot(a, b);
            break;
          case 10:
            distinctPair(a, b);
            c.cz(a, b);
            break;
          case 11:
            distinctPair(a, b);
            c.zz(a, b, rng.uniform(0.1, 3.0));
            break;
          case 12: {
            std::size_t x = rng.below(numQubits - 2);
            c.ccx(x, x + 1, x + 2);
            break;
          }
          default: {
            std::size_t x = rng.below(numQubits - 2);
            c.ccz(x, x + 1, x + 2);
            break;
          }
        }
    }
    return c;
}

/** Random circuit including SWAPs and dense custom 2q unitaries. */
inline Circuit
randomDenseCircuit(std::size_t numQubits, std::size_t numGates, Rng& rng)
{
    Circuit c(numQubits);
    for (std::size_t i = 0; i < numGates; ++i) {
        std::size_t a = rng.below(numQubits), b;
        do {
            b = rng.below(numQubits);
        } while (b == a);
        switch (rng.below(4)) {
          case 0:
            c.swap(a, b);
            break;
          case 1: {
            // Dense 2-qubit unitary: CNOT conjugated by single-qubit
            // rotations, built as an explicit matrix.
            Gate ra(GateKind::Ry, {0}, rng.uniform(0.2, 2.8));
            Gate rb(GateKind::Rx, {0}, rng.uniform(0.2, 2.8));
            Matrix u = ra.unitary().kron(rb.unitary()) *
                       Gate(GateKind::CNOT, {0, 1}).unitary();
            c.append(Gate::custom({a, b}, u, "dense2q"));
            break;
          }
          case 2:
            c.h(a);
            break;
          default:
            c.ry(a, rng.uniform(0.2, 2.8));
            break;
        }
    }
    return c;
}

/** A small QAOA-like parameterized circuit on a ring (for refresh tests). */
inline Circuit
ringQaoaCircuit(std::size_t numQubits, double gamma, double beta)
{
    Circuit c(numQubits);
    for (std::size_t i = 0; i < numQubits; ++i)
        c.h(i);
    for (std::size_t i = 0; i < numQubits; ++i)
        c.zz(i, (i + 1) % numQubits, gamma);
    for (std::size_t i = 0; i < numQubits; ++i)
        c.rx(i, 2.0 * beta);
    return c;
}

} // namespace qkc::testing

#endif // QKC_TESTS_TESTING_TEST_CIRCUITS_H
