#include "tensornet/tensornet_simulator.h"

#include <gtest/gtest.h>

#include "algorithms/algorithms.h"
#include "statevector/statevector_simulator.h"
#include "testing/test_circuits.h"
#include "util/stats.h"

namespace qkc {
namespace {

TEST(TensorNetworkSimulatorTest, BellAmplitudes)
{
    TensorNetworkSimulator tn;
    double s = 1.0 / std::sqrt(2.0);
    Circuit c = bellCircuit();
    EXPECT_TRUE(approxEqual(tn.amplitude(c, 0), Complex{s}));
    EXPECT_TRUE(approxEqual(tn.amplitude(c, 3), Complex{s}));
    EXPECT_TRUE(approxEqual(tn.amplitude(c, 1), Complex{}));
}

TEST(TensorNetworkSimulatorTest, RejectsNoisyCircuits)
{
    TensorNetworkSimulator tn;
    EXPECT_THROW(tn.amplitude(noisyBellCircuit(), 0), std::invalid_argument);
}

class TnVsStateVectorTest : public ::testing::TestWithParam<int> {};

TEST_P(TnVsStateVectorTest, RandomCircuitAmplitudes)
{
    Rng rng(600 + GetParam());
    Circuit c = testing::randomCircuit(4, 14, rng);
    TensorNetworkSimulator tn;
    StateVectorSimulator sv;
    auto amps = sv.simulate(c).amplitudes();
    for (std::uint64_t x = 0; x < amps.size(); ++x)
        EXPECT_TRUE(approxEqual(tn.amplitude(c, x), amps[x], 1e-9)) << x;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TnVsStateVectorTest, ::testing::Range(0, 6));

TEST(TensorNetworkSimulatorTest, PrefixProbabilities)
{
    Circuit c = ghzCircuit(3);
    TensorNetworkSimulator tn;
    // GHZ: first qubit is 0 or 1 with probability 1/2 each.
    EXPECT_NEAR(tn.prefixProbability(c, 0, 1), 0.5, 1e-9);
    EXPECT_NEAR(tn.prefixProbability(c, 1, 1), 0.5, 1e-9);
    // Prefix 01 impossible; 00 has probability 1/2.
    EXPECT_NEAR(tn.prefixProbability(c, 0b00, 2), 0.5, 1e-9);
    EXPECT_NEAR(tn.prefixProbability(c, 0b01, 2), 0.0, 1e-9);
    EXPECT_NEAR(tn.prefixProbability(c, 0b11, 2), 0.5, 1e-9);
}

TEST(TensorNetworkSimulatorTest, PrefixProbabilityMarginalizesCorrectly)
{
    Rng rng(61);
    Circuit c = testing::randomCircuit(3, 10, rng);
    TensorNetworkSimulator tn;
    StateVectorSimulator sv;
    auto probs = sv.simulate(c).probabilities();
    // P(q0 = 0) from the state vector.
    double p0 = probs[0] + probs[1] + probs[2] + probs[3];
    EXPECT_NEAR(tn.prefixProbability(c, 0, 1), p0, 1e-9);
    // P(q0q1 = 10).
    EXPECT_NEAR(tn.prefixProbability(c, 0b10, 2), probs[4] + probs[5], 1e-9);
}

TEST(TensorNetworkSimulatorTest, SamplingMatchesDistribution)
{
    Circuit c = testing::ringQaoaCircuit(4, 0.7, 0.4);
    TensorNetworkSimulator tn;
    StateVectorSimulator sv;
    auto exact = sv.simulate(c).probabilities();

    Rng rng(67);
    auto samples = tn.sample(c, 4000, rng);
    auto emp = empiricalDistribution(samples, exact.size());
    EXPECT_LT(totalVariation(exact, emp), 0.05);
}

TEST(TensorNetworkSimulatorTest, SamplerReusesPlans)
{
    Circuit c = ghzCircuit(4);
    TnSampler sampler(c);
    Rng rng(71);
    auto samples = sampler.sample(500, rng);
    std::size_t zeros = 0, ones = 0;
    for (auto s : samples) {
        if (s == 0)
            ++zeros;
        if (s == 15)
            ++ones;
    }
    EXPECT_EQ(zeros + ones, samples.size());
    EXPECT_GT(zeros, 150u);
    EXPECT_GT(ones, 150u);
}

TEST(TensorNetworkSimulatorTest, DistributionSumsToOne)
{
    Rng rng(73);
    Circuit c = testing::randomCircuit(3, 8, rng);
    TensorNetworkSimulator tn;
    auto dist = tn.distribution(c);
    double total = 0.0;
    for (double p : dist)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

} // namespace
} // namespace qkc
