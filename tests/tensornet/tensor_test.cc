#include "tensornet/tensor.h"

#include <gtest/gtest.h>

#include "circuit/gate.h"

namespace qkc {
namespace {

TEST(TensorTest, VecConstruction)
{
    Tensor t = Tensor::vec(5, 0.6, Complex{0.0, 0.8});
    EXPECT_EQ(t.rank(), 1u);
    EXPECT_EQ(t.edges[0], 5);
    EXPECT_TRUE(approxEqual(t.data[1], Complex(0.0, 0.8)));
}

TEST(TensorTest, InnerProduct)
{
    // <a|b> with shared edge: contraction to scalar.
    Tensor a = Tensor::vec(0, 3.0, 4.0);
    Tensor b = Tensor::vec(0, 1.0, 2.0);
    Tensor s = contractPair(a, b);
    EXPECT_EQ(s.rank(), 0u);
    EXPECT_TRUE(approxEqual(s.data[0], Complex{11.0}));
}

TEST(TensorTest, OuterProduct)
{
    Tensor a = Tensor::vec(0, 1.0, 2.0);
    Tensor b = Tensor::vec(1, 3.0, 5.0);
    Tensor o = contractPair(a, b);
    EXPECT_EQ(o.rank(), 2u);
    // data index: edge0 is MSB.
    EXPECT_TRUE(approxEqual(o.data[0], Complex{3.0}));   // (0,0)
    EXPECT_TRUE(approxEqual(o.data[1], Complex{5.0}));   // (0,1)
    EXPECT_TRUE(approxEqual(o.data[2], Complex{6.0}));   // (1,0)
    EXPECT_TRUE(approxEqual(o.data[3], Complex{10.0}));  // (1,1)
}

TEST(TensorTest, MatrixVectorViaContraction)
{
    // H applied to |0> via tensor contraction equals H's first column.
    Matrix h = Gate(GateKind::H, {0}).unitary();
    Tensor gate;
    gate.edges = {1, 0};  // out, in
    gate.data = {h(0, 0), h(0, 1), h(1, 0), h(1, 1)};
    Tensor ket = Tensor::vec(0, 1.0, 0.0);
    Tensor out = contractPair(gate, ket);
    ASSERT_EQ(out.rank(), 1u);
    EXPECT_EQ(out.edges[0], 1);
    EXPECT_TRUE(approxEqual(out.data[0], h(0, 0)));
    EXPECT_TRUE(approxEqual(out.data[1], h(1, 0)));
}

TEST(TensorTest, SharedEdgeOrderIrrelevant)
{
    Tensor a;
    a.edges = {0, 1};
    a.data = {1.0, 2.0, 3.0, 4.0};
    Tensor b;
    b.edges = {1, 0};
    b.data = {1.0, 10.0, 100.0, 1000.0};
    // Full contraction: sum over (i,j) a[i,j] * b[j,i].
    Tensor s = contractPair(a, b);
    ASSERT_EQ(s.rank(), 0u);
    // a00*b00 + a01*b10 + a10*b01 + a11*b11 = 1 + 200 + 30 + 4000.
    EXPECT_TRUE(approxEqual(s.data[0], Complex{4231.0}));
}

TEST(TensorTest, PartialContractionKeepsFreeEdges)
{
    Tensor a;
    a.edges = {0, 1};
    a.data = {1.0, 2.0, 3.0, 4.0};
    Tensor b = Tensor::vec(1, 1.0, -1.0);
    Tensor out = contractPair(a, b);
    ASSERT_EQ(out.rank(), 1u);
    EXPECT_EQ(out.edges[0], 0);
    EXPECT_TRUE(approxEqual(out.data[0], Complex{-1.0}));  // 1 - 2
    EXPECT_TRUE(approxEqual(out.data[1], Complex{-1.0}));  // 3 - 4
}

} // namespace
} // namespace qkc
