#include "cnf/cnf.h"

#include <gtest/gtest.h>

#include <sstream>

#include "algorithms/algorithms.h"
#include "cnf/bn_to_cnf.h"

namespace qkc {
namespace {

TEST(CnfTest, IndicatorVarCount)
{
    Cnf cnf;
    cnf.vars.push_back({CnfVarKind::BinaryIndicator, 0, 0, -1, true});
    cnf.vars.push_back({CnfVarKind::Param, 0, 0, 3, false});
    cnf.vars.push_back({CnfVarKind::OneHotIndicator, 1, 2, -1, true});
    EXPECT_EQ(cnf.numVars(), 3u);
    EXPECT_EQ(cnf.numIndicatorVars(), 2u);
}

TEST(CnfTest, DimacsRoundTrip)
{
    auto bn = circuitToBayesNet(noisyBellCircuit(0.36));
    Cnf cnf = bayesNetToCnf(bn);

    std::stringstream ss;
    cnf.writeDimacs(ss);
    Cnf back = Cnf::readDimacs(ss);

    ASSERT_EQ(back.numVars(), cnf.numVars());
    ASSERT_EQ(back.numClauses(), cnf.numClauses());
    for (std::size_t i = 0; i < cnf.vars.size(); ++i) {
        EXPECT_EQ(back.vars[i].kind, cnf.vars[i].kind) << i;
        EXPECT_EQ(back.vars[i].bnVar, cnf.vars[i].bnVar) << i;
        EXPECT_EQ(back.vars[i].value, cnf.vars[i].value) << i;
        EXPECT_EQ(back.vars[i].paramId, cnf.vars[i].paramId) << i;
        EXPECT_EQ(back.vars[i].query, cnf.vars[i].query) << i;
    }
    EXPECT_EQ(back.clauses, cnf.clauses);
    EXPECT_EQ(back.bnVarIndicators, cnf.bnVarIndicators);
}

TEST(CnfTest, DimacsHeaderLine)
{
    auto bn = circuitToBayesNet(bellCircuit());
    Cnf cnf = bayesNetToCnf(bn);
    std::stringstream ss;
    cnf.writeDimacs(ss);
    std::string text = ss.str();
    std::ostringstream expect;
    expect << "p cnf " << cnf.numVars() << " " << cnf.numClauses();
    EXPECT_NE(text.find(expect.str()), std::string::npos);
}

} // namespace
} // namespace qkc
