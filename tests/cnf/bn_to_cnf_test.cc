#include "cnf/bn_to_cnf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "statevector/statevector_simulator.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

/**
 * Brute-force weighted model count over every CNF assignment: the gold
 * semantics the compiled pipeline must match. `evidence[bnVar]` = required
 * value or -1 for free.
 */
Complex
bruteForceWmc(const Cnf& cnf, const QuantumBayesNet& bn,
              const std::vector<int>& evidence)
{
    const std::size_t n = cnf.numVars();
    EXPECT_LE(n, 24u) << "brute force WMC too large";
    Complex total{};
    for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
        auto truth = [&](int var) { return ((bits >> (var - 1)) & 1) != 0; };
        bool ok = true;
        for (const Clause& c : cnf.clauses) {
            bool sat = false;
            for (int lit : c)
                sat = sat || (lit > 0 ? truth(lit) : !truth(-lit));
            if (!sat) {
                ok = false;
                break;
            }
        }
        if (!ok)
            continue;

        Complex weight{1.0};
        for (std::size_t v = 1; v <= n && weight != Complex{}; ++v) {
            const CnfVariable& info = cnf.vars[v - 1];
            bool val = truth(static_cast<int>(v));
            switch (info.kind) {
              case CnfVarKind::Param:
                if (val)
                    weight *= bn.paramValues()[info.paramId];
                break;
              case CnfVarKind::BinaryIndicator: {
                int ev = evidence[info.bnVar];
                if (ev != -1 && ev != (val ? 1 : 0))
                    weight = Complex{};
                break;
              }
              case CnfVarKind::OneHotIndicator: {
                int ev = evidence[info.bnVar];
                if (ev != -1 && val &&
                    static_cast<std::uint32_t>(ev) != info.value)
                    weight = Complex{};
                break;
              }
            }
        }
        total += weight;
    }
    return total;
}

std::vector<int>
freeEvidence(const QuantumBayesNet& bn)
{
    return std::vector<int>(bn.variables().size(), -1);
}

TEST(BnToCnfTest, BellModelsAreFeynmanPaths)
{
    auto bn = circuitToBayesNet(bellCircuit());
    Cnf cnf = bayesNetToCnf(bn);

    StateVectorSimulator sv;
    auto amps = sv.simulate(bellCircuit()).amplitudes();
    for (std::uint64_t x = 0; x < 4; ++x) {
        auto ev = freeEvidence(bn);
        ev[bn.finalVars()[0]] = static_cast<int>((x >> 1) & 1);
        ev[bn.finalVars()[1]] = static_cast<int>(x & 1);
        Complex wmc = bruteForceWmc(cnf, bn, ev);
        EXPECT_TRUE(approxEqual(wmc, amps[x], 1e-9)) << "x=" << x;
    }
}

TEST(BnToCnfTest, NoisyBellWeightedCountsMatchTable5)
{
    auto bn = circuitToBayesNet(noisyBellCircuit(0.36));
    Cnf cnf = bayesNetToCnf(bn);
    double s = 1.0 / std::sqrt(2.0);

    auto query = [&](int q0, int q1, int rv) {
        auto ev = freeEvidence(bn);
        ev[bn.finalVars()[0]] = q0;
        ev[bn.finalVars()[1]] = q1;
        ev[bn.noiseVars()[0]] = rv;
        return bruteForceWmc(cnf, bn, ev);
    };
    EXPECT_TRUE(approxEqual(query(0, 0, 0), Complex{s}, 1e-9));
    EXPECT_TRUE(approxEqual(query(1, 1, 0), Complex{0.8 * s}, 1e-9));
    EXPECT_NEAR(std::abs(query(1, 1, 1)), 0.6 * s, 1e-9);
    EXPECT_TRUE(approxEqual(query(0, 1, 0), Complex{}, 1e-12));
    EXPECT_TRUE(approxEqual(query(0, 0, 1), Complex{}, 1e-12));
}

TEST(BnToCnfTest, UnitResolutionShrinksClauses)
{
    auto bn = circuitToBayesNet(ghzCircuit(3));
    Cnf with = bayesNetToCnf(bn, {.unitResolution = true});
    Cnf without = bayesNetToCnf(bn, {.unitResolution = false});
    EXPECT_LT(with.numClauses(), without.numClauses());
    // Same variable set either way.
    EXPECT_EQ(with.numVars(), without.numVars());
}

TEST(BnToCnfTest, UnitResolutionPreservesSemantics)
{
    Rng rng(42);
    Circuit c = testing::randomCircuit(2, 4, rng, false);
    auto bn = circuitToBayesNet(c);
    Cnf with = bayesNetToCnf(bn, {.unitResolution = true});
    Cnf without = bayesNetToCnf(bn, {.unitResolution = false});
    for (int q0 = 0; q0 < 2; ++q0) {
        for (int q1 = 0; q1 < 2; ++q1) {
            auto ev = freeEvidence(bn);
            ev[bn.finalVars()[0]] = q0;
            ev[bn.finalVars()[1]] = q1;
            EXPECT_TRUE(approxEqual(bruteForceWmc(with, bn, ev),
                                    bruteForceWmc(without, bn, ev), 1e-9));
        }
    }
}

TEST(BnToCnfTest, OneHotGroupsGetExactlyOneClauses)
{
    Circuit c(1);
    c.h(0);
    c.append(NoiseChannel::depolarizing(0, 0.05));
    auto bn = circuitToBayesNet(c);
    Cnf cnf = bayesNetToCnf(bn, {.unitResolution = false});

    // Find the 4 one-hot vars for the depolarizing RV.
    std::vector<int> group;
    for (std::size_t i = 0; i < cnf.vars.size(); ++i)
        if (cnf.vars[i].kind == CnfVarKind::OneHotIndicator)
            group.push_back(static_cast<int>(i + 1));
    ASSERT_EQ(group.size(), 4u);

    // At-least-one clause present.
    bool foundAlo = false;
    for (const Clause& cl : cnf.clauses)
        foundAlo = foundAlo || cl == Clause(group.begin(), group.end());
    EXPECT_TRUE(foundAlo);

    // All 6 pairwise at-most-one clauses present.
    std::size_t amo = 0;
    for (const Clause& cl : cnf.clauses) {
        if (cl.size() == 2 && cl[0] < 0 && cl[1] < 0 &&
            cnf.vars[-cl[0] - 1].kind == CnfVarKind::OneHotIndicator &&
            cnf.vars[-cl[1] - 1].kind == CnfVarKind::OneHotIndicator)
            ++amo;
    }
    EXPECT_EQ(amo, 6u);
}

TEST(BnToCnfTest, DeterministicGatesProduceNoParams)
{
    Circuit c(2);
    c.x(0).cnot(0, 1);
    auto bn = circuitToBayesNet(c);
    Cnf cnf = bayesNetToCnf(bn);
    for (const auto& v : cnf.vars)
        EXPECT_NE(v.kind, CnfVarKind::Param);
}

TEST(BnToCnfTest, RandomCircuitWmcMatchesStateVector)
{
    for (int seed = 0; seed < 6; ++seed) {
        Rng rng(300 + seed);
        Circuit c = testing::randomCircuit(2, 3, rng, false);
        auto bn = circuitToBayesNet(c);
        Cnf cnf = bayesNetToCnf(bn);
        if (cnf.numVars() > 24)
            continue;  // keep brute force tractable
        StateVectorSimulator sv;
        auto amps = sv.simulate(c).amplitudes();
        for (std::uint64_t x = 0; x < 4; ++x) {
            auto ev = freeEvidence(bn);
            ev[bn.finalVars()[0]] = static_cast<int>((x >> 1) & 1);
            ev[bn.finalVars()[1]] = static_cast<int>(x & 1);
            EXPECT_TRUE(approxEqual(bruteForceWmc(cnf, bn, ev), amps[x], 1e-9))
                << "seed=" << seed << " x=" << x << "\n" << c.toString();
        }
    }
}

} // namespace
} // namespace qkc
