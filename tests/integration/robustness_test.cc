/**
 * Robustness and edge-case coverage: degenerate circuits, identity
 * elision, deep circuits, Loschmidt echoes, and failure-injection paths.
 */
#include <gtest/gtest.h>

#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

TEST(RobustnessTest, SingleQubitCircuit)
{
    Circuit c(1);
    c.h(0).t(0).h(0);
    KcSimulator kc(c);
    StateVectorSimulator sv;
    auto exact = sv.simulate(c).probabilities();
    EXPECT_NEAR(kc.probability(0), exact[0], 1e-12);
    EXPECT_NEAR(kc.probability(1), exact[1], 1e-12);
}

TEST(RobustnessTest, GateFreeCircuit)
{
    Circuit c(3);  // nothing at all: stays |000>
    KcSimulator kc(c);
    EXPECT_NEAR(kc.probability(0), 1.0, 1e-12);
    for (std::uint64_t x = 1; x < 8; ++x)
        EXPECT_NEAR(kc.probability(x), 0.0, 1e-12);
}

TEST(RobustnessTest, NoiseOnlyCircuit)
{
    Circuit c(1);
    c.append(NoiseChannel::bitFlip(0, 0.3));
    KcSimulator kc(c);
    EXPECT_NEAR(kc.probability(0), 0.7, 1e-12);
    EXPECT_NEAR(kc.probability(1), 0.3, 1e-12);
}

TEST(RobustnessTest, IdentityGatesAddNothing)
{
    Circuit plain(2);
    plain.h(0).cnot(0, 1);
    Circuit padded(2);
    padded.i(0).h(0).i(1).cnot(0, 1).i(0).i(1);

    KcSimulator a(plain), b(padded);
    EXPECT_EQ(a.bayesNet().variables().size(), b.bayesNet().variables().size());
    for (std::uint64_t x = 0; x < 4; ++x)
        EXPECT_NEAR(a.probability(x), b.probability(x), 1e-12);
}

TEST(RobustnessTest, InverseGateByGate)
{
    StateVectorSimulator sv;
    Circuit c(3);
    c.h(0).s(1).t(2).rx(0, 0.7).ry(1, 1.1).rz(2, -0.4).cnot(0, 1);
    c.cz(1, 2).zz(0, 2, 0.9).crz(0, 2, 0.5).cphase(1, 0, -0.3);
    c.ccx(0, 1, 2).ccz(0, 1, 2).swap(0, 2).phase(1, 0.8);

    Circuit echo = c;
    echo.extend(c.inverse());
    auto probs = sv.simulate(echo).probabilities();
    EXPECT_NEAR(probs[0], 1.0, 1e-9);
}

TEST(RobustnessTest, LoschmidtEchoOnRandomCircuits)
{
    // C then C^-1 returns |0...0> exactly — checked on the KC pipeline.
    StateVectorSimulator sv;
    for (int seed = 0; seed < 5; ++seed) {
        Rng rng(9900 + seed);
        Circuit c = testing::randomCircuit(4, 12, rng);
        Circuit echo = c;
        echo.extend(c.inverse());

        auto probs = sv.simulate(echo).probabilities();
        EXPECT_NEAR(probs[0], 1.0, 1e-9) << "seed " << seed;

        KcSimulator kc(echo);
        EXPECT_NEAR(kc.probability(0), 1.0, 1e-9) << "seed " << seed;
    }
}

TEST(RobustnessTest, InverseRejectsNoise)
{
    EXPECT_THROW(noisyBellCircuit().inverse(), std::invalid_argument);
}

TEST(RobustnessTest, DeepCircuitStaysExact)
{
    Rng rng(321);
    Circuit c = testing::randomCircuit(4, 120, rng);
    KcSimulator kc(c);
    StateVectorSimulator sv;
    auto exact = sv.simulate(c).probabilities();
    auto dist = kc.outcomeDistribution();
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(dist[x], exact[x], 1e-8) << x;
}

TEST(RobustnessTest, ManyNoiseChannelsCompile)
{
    // 30 channels: probability() enumeration would be 2^30; amplitude
    // queries and Gibbs sampling must still work.
    Circuit c = ghzCircuit(4);
    Circuit noisy(4);
    for (const auto& op : c.operations())
        noisy.append(std::get<Gate>(op));
    for (int round = 0; round < 10; ++round)
        for (std::size_t q = 0; q < 3; ++q)
            noisy.append(NoiseChannel::phaseFlip(q, 0.01));

    KcSimulator kc(noisy);
    EXPECT_EQ(kc.bayesNet().noiseVars().size(), 30u);
    std::vector<std::size_t> nu(30, 0);
    // No noise fired: amplitude of |1111> is 1/sqrt(2) times the 30
    // no-event Kraus factors sqrt(1 - p).
    double expected = std::pow(std::sqrt(1.0 - 0.01), 30) / std::sqrt(2.0);
    EXPECT_NEAR(std::abs(kc.amplitude(0b1111, nu)), expected, 1e-12);
    Rng rng(5);
    auto samples = kc.sample(200, rng);
    for (auto s : samples)
        EXPECT_TRUE(s == 0b0000 || s == 0b1111);
}

TEST(RobustnessTest, RepeatedCompilationIsDeterministic)
{
    Circuit c = testing::ringQaoaCircuit(6, 0.5, 0.3);
    KcSimulator a(c), b(c);
    EXPECT_EQ(a.metrics().acNodes, b.metrics().acNodes);
    EXPECT_EQ(a.metrics().acEdges, b.metrics().acEdges);
    EXPECT_EQ(a.metrics().cnfClauses, b.metrics().cnfClauses);
}

TEST(RobustnessTest, EvidenceChurnKeepsEvaluatorConsistent)
{
    KcSimulator kc(noisyBellCircuit(0.36));
    // Interleave amplitude, probability and derivative queries, checking a
    // known value after each to catch stale-memoization bugs.
    double s = 1.0 / std::sqrt(2.0);
    for (int round = 0; round < 5; ++round) {
        EXPECT_NEAR(std::abs(kc.amplitude(0b11, {0})), 0.8 * s, 1e-12);
        EXPECT_NEAR(kc.probability(0b00), 0.5, 1e-12);
        kc.evaluator().computeDerivatives();
        EXPECT_NEAR(std::abs(kc.amplitude(0b00, {0})), s, 1e-12);
        EXPECT_NEAR(kc.probability(0b11), 0.5, 1e-12);
    }
}

} // namespace
} // namespace qkc
