/**
 * Systematic coverage: every gate kind, embedded in a small entangling
 * context, must simulate identically on the knowledge-compilation pipeline
 * and the state-vector simulator. This sweeps every Bayesian-network
 * encoding path (transpose CAT, diagonal factor, controlled-permutation
 * node, wire relabeling, chain rule) for every member of the vocabulary.
 */
#include <gtest/gtest.h>

#include "ac/kc_simulator.h"
#include "statevector/statevector_simulator.h"

namespace qkc {
namespace {

Gate
makeGate(GateKind kind)
{
    switch (kind) {
      case GateKind::CNOT:
      case GateKind::CZ:
      case GateKind::SWAP:
      case GateKind::CRz:
      case GateKind::CPhase:
      case GateKind::ZZ:
        return Gate(kind, {0, 1}, 0.83);
      case GateKind::CCX:
      case GateKind::CCZ:
      case GateKind::CSWAP:
        return Gate(kind, {0, 1, 2}, 0.0);
      default:
        return Gate(kind, {1}, 0.83);
    }
}

class GateCoverageTest : public ::testing::TestWithParam<GateKind> {};

TEST_P(GateCoverageTest, KcMatchesStateVectorInContext)
{
    // Surround the gate with enough structure that every operand qubit is
    // in superposition and entangled when the gate fires.
    Circuit c(3);
    c.h(0).h(1).t(1).cnot(0, 2).ry(2, 0.41);
    c.append(makeGate(GetParam()));
    c.h(1).cnot(1, 2).rx(0, 1.2);

    KcSimulator kc(c);
    StateVectorSimulator sv;
    auto amps = sv.simulate(c).amplitudes();
    for (std::uint64_t x = 0; x < amps.size(); ++x) {
        EXPECT_TRUE(approxEqual(kc.amplitude(x), amps[x], 1e-9))
            << "gate " << makeGate(GetParam()).name() << " x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, GateCoverageTest,
    ::testing::Values(GateKind::I, GateKind::X, GateKind::Y, GateKind::Z,
                      GateKind::H, GateKind::S, GateKind::Sdg, GateKind::T,
                      GateKind::Tdg, GateKind::Rx, GateKind::Ry, GateKind::Rz,
                      GateKind::PhaseZ, GateKind::CNOT, GateKind::CZ,
                      GateKind::SWAP, GateKind::CRz, GateKind::CPhase,
                      GateKind::ZZ, GateKind::CCX, GateKind::CCZ,
                      GateKind::CSWAP));

class ChannelCoverageTest : public ::testing::TestWithParam<int> {};

TEST_P(ChannelCoverageTest, EveryChannelOnEveryEncodingPath)
{
    // One channel of each kind at an entangled point in the circuit; the
    // KC distribution must match exact density-matrix evolution.
    std::vector<NoiseChannel> channels{
        NoiseChannel::bitFlip(1, 0.11),
        NoiseChannel::phaseFlip(1, 0.17),
        NoiseChannel::depolarizing(1, 0.09),
        NoiseChannel::asymmetricDepolarizing(1, 0.04, 0.05, 0.06),
        NoiseChannel::amplitudeDamping(1, 0.23),
        NoiseChannel::phaseDamping(1, 0.31),
        NoiseChannel::generalizedAmplitudeDamping(1, 0.21, 0.4),
        NoiseChannel::twoQubitDepolarizing(0, 1, 0.13),
    };
    const auto& ch = channels[static_cast<std::size_t>(GetParam())];

    Circuit c(2);
    c.h(0).cnot(0, 1).t(1);
    c.append(ch);
    c.ry(0, 0.77).cnot(1, 0);

    KcSimulator kc(c);
    // Exact by noise-assignment enumeration through the AC itself.
    auto kcDist = kc.outcomeDistribution();

    // Independent exact reference.
    StateVectorSimulator sv;
    auto exact = sv.noisyDistributionExhaustive(c);
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(kcDist[x], exact[x], 1e-9)
            << ch.name() << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(AllChannels, ChannelCoverageTest,
                         ::testing::Range(0, 8));

} // namespace
} // namespace qkc
