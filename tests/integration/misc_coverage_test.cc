/**
 * Miscellaneous coverage: sampler options, device-model pass-through,
 * evaluator evidence lifecycle, and non-adjacent multi-qubit kernels.
 */
#include <gtest/gtest.h>

#include "ac/gibbs_sampler.h"
#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "circuit/device_model.h"
#include "statevector/statevector_simulator.h"
#include "testing/test_circuits.h"
#include "util/stats.h"

namespace qkc {
namespace {

TEST(MiscCoverageTest, GibbsThinningProducesRequestedCount)
{
    KcSimulator kc(bellCircuit());
    Rng rng(1);
    GibbsOptions options;
    options.burnIn = 8;
    options.thin = 5;
    auto samples = kc.sample(37, rng, options);
    EXPECT_EQ(samples.size(), 37u);
}

TEST(MiscCoverageTest, IndependenceMovesCanBeDisabled)
{
    // With independence moves off, Bell's single-site chain cannot leave
    // its initial support component — documenting the reducibility the
    // default configuration fixes.
    KcSimulator kc(bellCircuit());
    Rng rng(2);
    GibbsOptions options;
    options.burnIn = 16;
    options.independenceInterval = 0;
    auto samples = kc.sample(500, rng, options);
    std::size_t zeros = 0, ones = 0;
    for (auto s : samples) {
        zeros += s == 0b00;
        ones += s == 0b11;
    }
    EXPECT_EQ(zeros + ones, samples.size());
    EXPECT_TRUE(zeros == 0 || ones == 0);  // stuck in one mode
}

TEST(MiscCoverageTest, IndependenceMoveReportsAcceptance)
{
    KcSimulator kc(bellCircuit());
    GibbsSampler sampler(kc.bayesNet(), kc.evaluator());
    Rng rng(3);
    ASSERT_TRUE(sampler.init(rng));
    std::size_t accepted = 0;
    for (int i = 0; i < 50; ++i)
        accepted += sampler.independenceMove(rng);
    // Bell's two support states have equal mass: proposals always accept.
    EXPECT_EQ(accepted, 50u);
}

TEST(MiscCoverageTest, DeviceModelPreservesExistingChannels)
{
    DeviceModel model;
    Circuit c = noisyBellCircuit(0.36);
    Circuit out = model.apply(c);
    // The original phase damping channel survives alongside the inserted
    // calibration channels.
    std::size_t phaseDamp036 = 0;
    for (const auto& op : out.operations()) {
        if (const NoiseChannel* ch = std::get_if<NoiseChannel>(&op)) {
            if (ch->kind() == NoiseKind::PhaseDamping &&
                ch->name() == "PhaseDamp(0.36)")
                ++phaseDamp036;
        }
    }
    EXPECT_EQ(phaseDamp036, 1u);
    EXPECT_GT(out.noiseCount(), c.noiseCount());
}

TEST(MiscCoverageTest, EvaluatorEvidenceLifecycle)
{
    KcSimulator kc(ghzCircuit(3));
    auto& eval = kc.evaluator();
    // Free everything: sum of amplitudes = sqrt(2) * 1/sqrt(2) * 2 halves...
    eval.clearEvidence();
    Complex total = eval.evaluate();
    // GHZ: A(000) + A(111) = 2/sqrt(2) = sqrt(2).
    EXPECT_TRUE(approxEqual(total, Complex{std::sqrt(2.0)}, 1e-9));

    // Pin, unpin, pin again: memoization must stay consistent.
    const auto& finals = kc.bayesNet().finalVars();
    eval.setEvidence(finals[0], 1);
    eval.setEvidence(finals[1], 1);
    eval.setEvidence(finals[2], 1);
    EXPECT_TRUE(approxEqual(eval.evaluate(),
                            Complex{1.0 / std::sqrt(2.0)}, 1e-9));
    eval.setEvidence(finals[1], AcEvaluator::kFree);
    eval.setEvidence(finals[1], 0);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{}, 1e-12));
    eval.clearEvidence();
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{std::sqrt(2.0)}, 1e-9));
}

TEST(MiscCoverageTest, ThreeQubitKernelNonAdjacent)
{
    // CCX on qubits (4, 1, 3) of a 5-qubit register.
    Circuit c(5);
    c.x(4).x(1).ccx(4, 1, 3);
    StateVectorSimulator sv;
    auto probs = sv.simulate(c).probabilities();
    // Expect |01011>: qubits 1, 3, 4 set.
    EXPECT_NEAR(probs[basisIndex({0, 1, 0, 1, 1})], 1.0, 1e-12);

    KcSimulator kc(c);
    EXPECT_NEAR(kc.probability(basisIndex({0, 1, 0, 1, 1})), 1.0, 1e-12);
}

TEST(MiscCoverageTest, SampleCountsAreExact)
{
    Rng rng(7);
    Circuit c = testing::ringQaoaCircuit(4, 0.5, 0.3);
    KcSimulator kc(c);
    for (std::size_t n : {1u, 17u, 100u}) {
        auto samples = kc.sample(n, rng);
        EXPECT_EQ(samples.size(), n);
    }
}

} // namespace
} // namespace qkc
