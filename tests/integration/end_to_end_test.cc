/**
 * Cross-module integration tests: the four simulator families must agree on
 * every workload they can all express, and the compiled artifacts must
 * round-trip through their file formats.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <sstream>

#include "ac/kc_simulator.h"
#include "ac/nnf_io.h"
#include "algorithms/algorithms.h"
#include "bayesnet/variable_elimination.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "tensornet/tensornet_simulator.h"
#include "testing/test_circuits.h"
#include "util/stats.h"
#include "vqa/workloads.h"

namespace qkc {
namespace {

class FourWayAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(FourWayAgreementTest, AllSimulatorsAgreeOnIdealCircuits)
{
    Rng rng(4000 + GetParam());
    Circuit c = testing::randomCircuit(4, 12, rng);

    StateVectorSimulator sv;
    auto exact = sv.simulate(c).probabilities();

    KcSimulator kc(c);
    auto kcDist = kc.outcomeDistribution();

    TensorNetworkSimulator tn;
    DensityMatrixSimulator dm;
    auto dmDist = dm.distribution(c);

    for (std::uint64_t x = 0; x < exact.size(); ++x) {
        EXPECT_NEAR(kcDist[x], exact[x], 1e-9) << "kc x=" << x;
        EXPECT_NEAR(dmDist[x], exact[x], 1e-9) << "dm x=" << x;
        EXPECT_NEAR(norm2(tn.amplitude(c, x)), exact[x], 1e-9) << "tn x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FourWayAgreementTest, ::testing::Range(0, 6));

class NoisyChannelAgreementTest
    : public ::testing::TestWithParam<NoiseKind> {};

TEST_P(NoisyChannelAgreementTest, KcVeDmAgree)
{
    NoiseKind kind = GetParam();
    auto makeChannel = [&](std::size_t q) -> NoiseChannel {
        switch (kind) {
          case NoiseKind::BitFlip: return NoiseChannel::bitFlip(q, 0.1);
          case NoiseKind::PhaseFlip: return NoiseChannel::phaseFlip(q, 0.15);
          case NoiseKind::Depolarizing:
            return NoiseChannel::depolarizing(q, 0.08);
          case NoiseKind::AsymmetricDepolarizing:
            return NoiseChannel::asymmetricDepolarizing(q, 0.05, 0.03, 0.02);
          case NoiseKind::AmplitudeDamping:
            return NoiseChannel::amplitudeDamping(q, 0.2);
          case NoiseKind::PhaseDamping:
            return NoiseChannel::phaseDamping(q, 0.25);
          default:
            return NoiseChannel::generalizedAmplitudeDamping(q, 0.2, 0.6);
        }
    };

    Circuit c(3);
    c.h(0).cnot(0, 1);
    c.append(makeChannel(1));
    c.ry(2, 0.9).cnot(1, 2);
    c.append(makeChannel(2));
    c.rx(0, 0.4);

    DensityMatrixSimulator dm;
    auto exact = dm.distribution(c);

    KcSimulator kc(c);
    auto kcDist = kc.outcomeDistribution();

    VariableElimination ve(kc.bayesNet());
    auto veDist = ve.outcomeDistribution();

    for (std::uint64_t x = 0; x < exact.size(); ++x) {
        EXPECT_NEAR(kcDist[x], exact[x], 1e-9) << "x=" << x;
        EXPECT_NEAR(veDist[x], exact[x], 1e-9) << "x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Channels, NoisyChannelAgreementTest,
    ::testing::Values(NoiseKind::BitFlip, NoiseKind::PhaseFlip,
                      NoiseKind::Depolarizing,
                      NoiseKind::AsymmetricDepolarizing,
                      NoiseKind::AmplitudeDamping, NoiseKind::PhaseDamping,
                      NoiseKind::GeneralizedAmplitudeDamping));

TEST(EndToEndTest, VariationalSweepReusesCompilation)
{
    // Simulate several optimizer iterations and verify each refreshed
    // evaluation equals a from-scratch compile at those angles.
    Circuit base = testing::ringQaoaCircuit(5, 0.1, 0.1);
    KcSimulator reused(base);
    StateVectorSimulator sv;

    for (int iter = 1; iter <= 5; ++iter) {
        double gamma = 0.15 * iter;
        double beta = 0.1 + 0.08 * iter;
        Circuit c = testing::ringQaoaCircuit(5, gamma, beta);
        reused.refreshParams(c);
        auto exact = sv.simulate(c).probabilities();
        for (std::uint64_t x = 0; x < exact.size(); x += 3)
            EXPECT_NEAR(reused.probability(x), exact[x], 1e-9)
                << "iter=" << iter << " x=" << x;
    }
}

TEST(EndToEndTest, DimacsAndNnfArtifactsRoundTrip)
{
    Circuit c = noisyBellCircuit(0.36);
    KcSimulator kc(c);

    // CNF round trip.
    std::stringstream dimacs;
    kc.cnf().writeDimacs(dimacs);
    Cnf cnfBack = Cnf::readDimacs(dimacs);
    EXPECT_EQ(cnfBack.numClauses(), kc.cnf().numClauses());

    // AC round trip: the reloaded circuit evaluates identically.
    std::stringstream nnf;
    kc.ac().writeNnf(nnf);
    ArithmeticCircuit acBack = readNnf(nnf);

    std::vector<std::size_t> cards(kc.bayesNet().variables().size());
    for (BnVarId v = 0; v < cards.size(); ++v)
        cards[v] = kc.bayesNet().variable(v).cardinality;
    AcEvaluator eval(acBack, cards, kc.bayesNet().paramValues());

    const auto& finals = kc.bayesNet().finalVars();
    eval.setEvidence(finals[0], 1);
    eval.setEvidence(finals[1], 1);
    eval.setEvidence(kc.bayesNet().noiseVars()[0], 0);
    EXPECT_TRUE(approxEqual(eval.evaluate(),
                            kc.amplitude(0b11, {0}), 1e-12));
}

TEST(EndToEndTest, GibbsMatchesDensityMatrixOnNoisyQaoa)
{
    Rng graphRng(5);
    auto problem = QaoaMaxCut::randomRegular(4, 3, 1, graphRng);
    Circuit c = problem.circuit({-0.5, 0.35})
                    .withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.01);

    DensityMatrixSimulator dm;
    auto exact = dm.distribution(c);

    KcSimulator kc(c);
    Rng rng(77);
    GibbsOptions options;
    options.burnIn = 200;
    auto samples = kc.sample(6000, rng, options);
    auto emp = empiricalDistribution(samples, exact.size());
    EXPECT_LT(totalVariation(exact, emp), 0.08);
}

TEST(EndToEndTest, ShorEndToEndFactorsFifteen)
{
    // Order finding for a=7 gives r=4; gcd(7^2 +- 1, 15) = {3, 5}.
    Circuit c = shorOrderFindingCircuit(4, 7);
    KcSimulator kc(c);
    Rng rng(99);
    GibbsOptions options;
    options.burnIn = 64;
    auto samples = kc.sample(64, rng, options);

    // Estimate the order from the sampled phases m / 2^4 ~ k / r.
    bool sawQuarter = false;
    for (std::uint64_t s : samples) {
        std::uint64_t m = s >> 4;  // counting register (leading 4 qubits)
        EXPECT_EQ(m % 4, 0u) << "phase must be a multiple of 2^t / r";
        sawQuarter = sawQuarter || m == 4 || m == 12;
    }
    EXPECT_TRUE(sawQuarter);  // odd multiples reveal the full order r = 4
    unsigned r = 4;
    unsigned factor1 = std::gcd(49u - 1u, 15u);  // 7^(r/2) - 1 = 48 -> gcd 3
    unsigned factor2 = std::gcd(49u + 1u, 15u);  // 7^(r/2) + 1 = 50 -> gcd 5
    EXPECT_EQ(factor1 * factor2, 15u);
    (void)r;
}

TEST(EndToEndTest, MetricsMatchPaperBallparkFor16QubitQaoa)
{
    // Paper Table 6: 32-qubit QAOA p=1 compiles to ~3.1k AC nodes; at half
    // the size the AC should be well under that.
    Rng rng(19);
    auto problem = QaoaMaxCut::randomRegular(16, 3, 1, rng);
    KcSimulator kc(problem.circuit({-0.55, 0.35}));
    auto m = kc.metrics();
    EXPECT_LT(m.acNodes, 3000u);
    EXPECT_GT(m.acNodes, 100u);
    EXPECT_LT(m.compileSeconds, 10.0);
}

} // namespace
} // namespace qkc
