/**
 * Cross-backend equivalence: the knowledge-compilation simulator, the state
 * vector simulator, the density matrix simulator, and the tensor network
 * simulator must agree on amplitudes and outcome probabilities for random
 * circuits drawn with fixed seeds.
 */
#include <gtest/gtest.h>

#include <cstdint>

#include "ac/kc_simulator.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "tensornet/tensornet_simulator.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

struct EquivalenceCase {
    std::uint64_t seed;
    std::size_t numQubits;
    std::size_t numGates;
    bool threeQubit;
};

class BackendEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(BackendEquivalenceTest, AmplitudesAgreeAcrossBackends)
{
    const EquivalenceCase& p = GetParam();
    Rng rng(p.seed);
    Circuit c =
        testing::randomCircuit(p.numQubits, p.numGates, rng, p.threeQubit);

    StateVectorSimulator sv;
    StateVector exact = sv.simulate(c);

    KcSimulator kc(c);
    TensorNetworkSimulator tn;

    for (std::uint64_t x = 0; x < exact.dimension(); ++x) {
        const Complex& ref = exact.amplitude(x);
        EXPECT_TRUE(approxEqual(kc.amplitude(x), ref, 1e-9))
            << "kc amplitude mismatch at x=" << x;
        EXPECT_TRUE(approxEqual(tn.amplitude(c, x), ref, 1e-9))
            << "tn amplitude mismatch at x=" << x;
    }
}

TEST_P(BackendEquivalenceTest, ProbabilitiesAgreeAcrossBackends)
{
    const EquivalenceCase& p = GetParam();
    Rng rng(p.seed);
    Circuit c =
        testing::randomCircuit(p.numQubits, p.numGates, rng, p.threeQubit);

    StateVectorSimulator sv;
    auto exact = sv.simulate(c).probabilities();

    KcSimulator kc(c);
    auto kcDist = kc.outcomeDistribution();

    DensityMatrixSimulator dm;
    auto dmDist = dm.distribution(c);

    TensorNetworkSimulator tn;
    auto tnDist = tn.distribution(c);

    ASSERT_EQ(kcDist.size(), exact.size());
    ASSERT_EQ(dmDist.size(), exact.size());
    ASSERT_EQ(tnDist.size(), exact.size());
    for (std::uint64_t x = 0; x < exact.size(); ++x) {
        EXPECT_NEAR(kcDist[x], exact[x], 1e-9) << "kc x=" << x;
        EXPECT_NEAR(dmDist[x], exact[x], 1e-9) << "dm x=" << x;
        EXPECT_NEAR(tnDist[x], exact[x], 1e-9) << "tn x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(
    FixedSeeds, BackendEquivalenceTest,
    ::testing::Values(EquivalenceCase{101, 2, 8, false},
                      EquivalenceCase{102, 3, 10, true},
                      EquivalenceCase{103, 3, 14, false},
                      EquivalenceCase{104, 4, 12, true},
                      EquivalenceCase{105, 4, 16, true},
                      EquivalenceCase{106, 5, 10, false}));

} // namespace
} // namespace qkc
