/**
 * Cross-backend equivalence: the knowledge-compilation simulator, the state
 * vector simulator, the density matrix simulator, the tensor network
 * simulator, and the decision-diagram simulator must agree on amplitudes
 * and outcome probabilities for random circuits drawn with fixed seeds and
 * for the GHZ family.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "dd/dd_simulator.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "tensornet/tensornet_simulator.h"
#include "testing/test_circuits.h"
#include "vqa/backends.h"

namespace qkc {
namespace {

/** Total variation distance between two outcome distributions. */
double
totalVariation(const std::vector<double>& p, const std::vector<double>& q)
{
    double tv = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
        tv += std::abs(p[i] - q[i]);
    return 0.5 * tv;
}

struct EquivalenceCase {
    std::uint64_t seed;
    std::size_t numQubits;
    std::size_t numGates;
    bool threeQubit;
};

class BackendEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(BackendEquivalenceTest, AmplitudesAgreeAcrossBackends)
{
    const EquivalenceCase& p = GetParam();
    Rng rng(p.seed);
    Circuit c =
        testing::randomCircuit(p.numQubits, p.numGates, rng, p.threeQubit);

    StateVectorSimulator sv;
    StateVector exact = sv.simulate(c);

    KcSimulator kc(c);
    TensorNetworkSimulator tn;
    DdSimulator dd;
    VEdge ddState = dd.simulate(c);

    for (std::uint64_t x = 0; x < exact.dimension(); ++x) {
        const Complex& ref = exact.amplitude(x);
        EXPECT_TRUE(approxEqual(kc.amplitude(x), ref, 1e-9))
            << "kc amplitude mismatch at x=" << x;
        EXPECT_TRUE(approxEqual(tn.amplitude(c, x), ref, 1e-9))
            << "tn amplitude mismatch at x=" << x;
        EXPECT_TRUE(approxEqual(dd.package().amplitude(ddState, x), ref, 1e-9))
            << "dd amplitude mismatch at x=" << x;
    }
}

TEST_P(BackendEquivalenceTest, ProbabilitiesAgreeAcrossBackends)
{
    const EquivalenceCase& p = GetParam();
    Rng rng(p.seed);
    Circuit c =
        testing::randomCircuit(p.numQubits, p.numGates, rng, p.threeQubit);

    StateVectorSimulator sv;
    auto exact = sv.simulate(c).probabilities();

    KcSimulator kc(c);
    auto kcDist = kc.outcomeDistribution();

    DensityMatrixSimulator dm;
    auto dmDist = dm.distribution(c);

    TensorNetworkSimulator tn;
    auto tnDist = tn.distribution(c);

    DdSimulator dd;
    auto ddDist = dd.distribution(c);

    ASSERT_EQ(kcDist.size(), exact.size());
    ASSERT_EQ(dmDist.size(), exact.size());
    ASSERT_EQ(tnDist.size(), exact.size());
    ASSERT_EQ(ddDist.size(), exact.size());
    for (std::uint64_t x = 0; x < exact.size(); ++x) {
        EXPECT_NEAR(kcDist[x], exact[x], 1e-9) << "kc x=" << x;
        EXPECT_NEAR(dmDist[x], exact[x], 1e-9) << "dm x=" << x;
        EXPECT_NEAR(tnDist[x], exact[x], 1e-9) << "tn x=" << x;
        EXPECT_NEAR(ddDist[x], exact[x], 1e-9) << "dd x=" << x;
    }

    // The headline acceptance bound: the DD backend is within 1e-9 total
    // variation distance of the exact state-vector distribution.
    EXPECT_LE(totalVariation(ddDist, exact), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    FixedSeeds, BackendEquivalenceTest,
    ::testing::Values(EquivalenceCase{101, 2, 8, false},
                      EquivalenceCase{102, 3, 10, true},
                      EquivalenceCase{103, 3, 14, false},
                      EquivalenceCase{104, 4, 12, true},
                      EquivalenceCase{105, 4, 16, true},
                      EquivalenceCase{106, 5, 10, false}));

class GhzFamilyEquivalenceTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(GhzFamilyEquivalenceTest, AllBackendsAgreeOnGhz)
{
    const std::size_t n = GetParam();
    Circuit c = ghzCircuit(n);

    auto exact = StateVectorSimulator().simulate(c).probabilities();

    DdSimulator dd;
    auto ddDist = dd.distribution(c);
    EXPECT_LE(totalVariation(ddDist, exact), 1e-9);

    KcSimulator kc(c);
    auto kcDist = kc.outcomeDistribution();
    EXPECT_LE(totalVariation(kcDist, exact), 1e-9);

    DensityMatrixSimulator dm;
    EXPECT_LE(totalVariation(dm.distribution(c), exact), 1e-9);
}

TEST_P(GhzFamilyEquivalenceTest, RegistryBackendsSampleOnlyGhzOutcomes)
{
    const std::size_t n = GetParam();
    Circuit c = ghzCircuit(n);
    const std::uint64_t all = (std::uint64_t{1} << n) - 1;

    const char* const names[] = {"decisiondiagram", "statevector",
                                 "knowledgecompilation"};
    for (const char* name : names) {
        auto session = makeBackend(name)->open(c);
        Rng rng(29);
        const Result r = session->run(Sample{64}, rng);
        for (std::uint64_t s : r.samples) {
            EXPECT_TRUE(s == 0 || s == all)
                << name << " sampled non-GHZ outcome " << s;
        }
    }
}

TEST_P(GhzFamilyEquivalenceTest, SessionTasksAgreeOnGhz)
{
    // The task API's exact payloads on one session: probabilities and
    // amplitudes both match the closed-form GHZ state.
    const std::size_t n = GetParam();
    Circuit c = ghzCircuit(n);
    const std::uint64_t all = (std::uint64_t{1} << n) - 1;
    const double amp = 1.0 / std::sqrt(2.0);

    for (const char* name : {"statevector", "decisiondiagram",
                             "knowledgecompilation"}) {
        auto session = makeBackend(name)->open(c);
        Rng rng(31);

        auto probs = session->run(Probabilities{{}}, rng).probabilities;
        EXPECT_NEAR(probs[0], 0.5, 1e-9) << name;
        EXPECT_NEAR(probs[all], 0.5, 1e-9) << name;

        auto amps =
            session->run(Amplitudes{{0, all}}, rng).amplitudes;
        EXPECT_NEAR(amps[0].real(), amp, 1e-9) << name;
        EXPECT_NEAR(amps[1].real(), amp, 1e-9) << name;
        EXPECT_NEAR(amps[0].imag(), 0.0, 1e-9) << name;
        EXPECT_NEAR(amps[1].imag(), 0.0, 1e-9) << name;
    }
}

INSTANTIATE_TEST_SUITE_P(GhzSizes, GhzFamilyEquivalenceTest,
                         ::testing::Values(2, 3, 4, 6, 8));

} // namespace
} // namespace qkc
