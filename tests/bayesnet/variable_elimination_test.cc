#include "bayesnet/variable_elimination.h"

#include <gtest/gtest.h>

#include "algorithms/algorithms.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

TEST(VariableEliminationTest, BellAmplitudes)
{
    auto bn = circuitToBayesNet(bellCircuit());
    VariableElimination ve(bn);
    double s = 1.0 / std::sqrt(2.0);
    EXPECT_TRUE(approxEqual(ve.amplitude({0, 0}), Complex{s}));
    EXPECT_TRUE(approxEqual(ve.amplitude({1, 1}), Complex{s}));
    EXPECT_TRUE(approxEqual(ve.amplitude({0, 1}), Complex{}));
    EXPECT_TRUE(approxEqual(ve.amplitude({1, 0}), Complex{}));
}

TEST(VariableEliminationTest, NoisyBellMatchesTable5)
{
    auto bn = circuitToBayesNet(noisyBellCircuit(0.36));
    VariableElimination ve(bn);
    double s = 1.0 / std::sqrt(2.0);
    // Assignment order: q0 final, q1 final, noise rv.
    EXPECT_TRUE(approxEqual(ve.amplitude({0, 0, 0}), Complex{s}));
    EXPECT_TRUE(approxEqual(ve.amplitude({1, 1, 0}), Complex{0.8 * s}));
    // Paper's Table 5 has -0.6/sqrt(2) from the Ry noise convention; the
    // Kraus convention yields +0.6/sqrt(2) — same density matrix.
    EXPECT_NEAR(std::abs(ve.amplitude({1, 1, 1})), 0.6 * s, 1e-12);
    EXPECT_TRUE(approxEqual(ve.amplitude({0, 0, 1}), Complex{}));
    EXPECT_TRUE(approxEqual(ve.amplitude({0, 1, 0}), Complex{}));
}

class VeVsStateVectorTest : public ::testing::TestWithParam<int> {};

TEST_P(VeVsStateVectorTest, RandomIdealCircuits)
{
    Rng rng(1000 + GetParam());
    Circuit c = testing::randomCircuit(3, 12, rng);
    auto bn = circuitToBayesNet(c);
    VariableElimination ve(bn);
    StateVectorSimulator sv;
    auto amps = sv.simulate(c).amplitudes();
    for (std::uint64_t x = 0; x < 8; ++x) {
        std::vector<std::size_t> assign{(x >> 2) & 1, (x >> 1) & 1, x & 1};
        EXPECT_TRUE(approxEqual(ve.amplitude(assign), amps[x], 1e-9))
            << "x=" << x << "\n" << c.toString();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VeVsStateVectorTest, ::testing::Range(0, 8));

class VeVsDensityMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(VeVsDensityMatrixTest, RandomNoisyCircuits)
{
    Rng rng(2000 + GetParam());
    Circuit ideal = testing::randomCircuit(2, 5, rng, false);
    // Attach a random channel type after each gate.
    Circuit c(2);
    std::size_t count = 0;
    for (const auto& op : ideal.operations()) {
        c.append(std::get<Gate>(op));
        std::size_t q = std::get<Gate>(op).qubits()[0];
        switch ((count++) % 4) {
          case 0: c.append(NoiseChannel::depolarizing(q, 0.05)); break;
          case 1: c.append(NoiseChannel::amplitudeDamping(q, 0.2)); break;
          case 2: c.append(NoiseChannel::phaseDamping(q, 0.15)); break;
          default: c.append(NoiseChannel::bitFlip(q, 0.1)); break;
        }
    }

    auto bn = circuitToBayesNet(c);
    VariableElimination ve(bn);
    DensityMatrixSimulator dm;
    auto exact = dm.distribution(c);
    auto viaVe = ve.outcomeDistribution();
    ASSERT_EQ(exact.size(), viaVe.size());
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(viaVe[x], exact[x], 1e-9) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(Seeds, VeVsDensityMatrixTest, ::testing::Range(0, 8));

TEST(VariableEliminationTest, DenseGatesAndSwaps)
{
    Rng rng(77);
    Circuit c = testing::randomDenseCircuit(3, 10, rng);
    auto bn = circuitToBayesNet(c);
    VariableElimination ve(bn);
    StateVectorSimulator sv;
    auto amps = sv.simulate(c).amplitudes();
    for (std::uint64_t x = 0; x < 8; ++x) {
        std::vector<std::size_t> assign{(x >> 2) & 1, (x >> 1) & 1, x & 1};
        EXPECT_TRUE(approxEqual(ve.amplitude(assign), amps[x], 1e-9));
    }
}

} // namespace
} // namespace qkc
