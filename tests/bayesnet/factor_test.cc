#include "bayesnet/factor.h"

#include <gtest/gtest.h>

#include "algorithms/algorithms.h"

namespace qkc {
namespace {

TEST(FactorTest, ScalarFactor)
{
    Factor f(Complex{2.0, 1.0});
    EXPECT_TRUE(approxEqual(f.scalar(), Complex(2.0, 1.0)));
}

TEST(FactorTest, MultiplyDisjointScopes)
{
    Factor a({0}, {2});
    a.at(0) = 2.0;
    a.at(1) = 3.0;
    Factor b({1}, {2});
    b.at(0) = 5.0;
    b.at(1) = 7.0;
    Factor p = a.multiply(b);
    ASSERT_EQ(p.tableSize(), 4u);
    EXPECT_TRUE(approxEqual(p.value({0, 0}), Complex{10.0}));
    EXPECT_TRUE(approxEqual(p.value({1, 1}), Complex{21.0}));
    EXPECT_TRUE(approxEqual(p.value({0, 1}), Complex{14.0}));
}

TEST(FactorTest, MultiplySharedVariable)
{
    Factor a({0, 1}, {2, 2});
    for (std::size_t i = 0; i < 4; ++i)
        a.at(i) = static_cast<double>(i + 1);
    Factor b({1}, {2});
    b.at(0) = 10.0;
    b.at(1) = 100.0;
    Factor p = a.multiply(b);
    EXPECT_TRUE(approxEqual(p.value({0, 0}), Complex{10.0}));
    EXPECT_TRUE(approxEqual(p.value({0, 1}), Complex{200.0}));
    EXPECT_TRUE(approxEqual(p.value({1, 0}), Complex{30.0}));
    EXPECT_TRUE(approxEqual(p.value({1, 1}), Complex{400.0}));
}

TEST(FactorTest, SumOut)
{
    Factor a({0, 1}, {2, 2});
    for (std::size_t i = 0; i < 4; ++i)
        a.at(i) = static_cast<double>(i + 1);
    Factor s = a.sumOut(1);
    ASSERT_EQ(s.vars().size(), 1u);
    EXPECT_TRUE(approxEqual(s.value({0}), Complex{3.0}));   // 1 + 2
    EXPECT_TRUE(approxEqual(s.value({1}), Complex{7.0}));   // 3 + 4
}

TEST(FactorTest, SumOutToScalar)
{
    Factor a({5}, {3});
    a.at(0) = 1.0;
    a.at(1) = Complex{0.0, 2.0};
    a.at(2) = -1.0;
    EXPECT_TRUE(approxEqual(a.sumOut(5).scalar(), Complex(0.0, 2.0)));
}

TEST(FactorTest, Condition)
{
    Factor a({0, 1}, {2, 2});
    for (std::size_t i = 0; i < 4; ++i)
        a.at(i) = static_cast<double>(i + 1);
    Factor c = a.condition(0, 1);
    ASSERT_EQ(c.vars().size(), 1u);
    EXPECT_EQ(c.vars()[0], 1u);
    EXPECT_TRUE(approxEqual(c.value({0}), Complex{3.0}));
    EXPECT_TRUE(approxEqual(c.value({1}), Complex{4.0}));
}

TEST(FactorTest, ConditionMultiValued)
{
    Factor a({0, 1}, {2, 3});
    for (std::size_t i = 0; i < 6; ++i)
        a.at(i) = static_cast<double>(i);
    Factor c = a.condition(1, 2);
    EXPECT_TRUE(approxEqual(c.value({0}), Complex{2.0}));
    EXPECT_TRUE(approxEqual(c.value({1}), Complex{5.0}));
}

TEST(FactorTest, FromPotentialUsesParamValues)
{
    auto bn = circuitToBayesNet(bellCircuit());
    // Find the H potential (scope size 2).
    for (const auto& pot : bn.potentials()) {
        if (pot.vars.size() == 2) {
            Factor f = Factor::fromPotential(bn, pot);
            EXPECT_NEAR(f.at(0).real(), 1.0 / std::sqrt(2.0), 1e-12);
            EXPECT_NEAR(f.at(3).real(), -1.0 / std::sqrt(2.0), 1e-12);
        }
        if (pot.vars.size() == 1) {
            Factor f = Factor::fromPotential(bn, pot);
            EXPECT_NEAR(f.at(0).real(), 1.0, 1e-12);
            EXPECT_NEAR(f.at(1).real(), 0.0, 1e-12);
        }
    }
}

TEST(FactorTest, ScalarThrowsOnNonEmptyScope)
{
    Factor a({0}, {2});
    EXPECT_THROW(a.scalar(), std::logic_error);
}

TEST(FactorTest, ValueOutOfScopeThrows)
{
    Factor a({0}, {2});
    EXPECT_THROW(a.condition(7, 0), std::invalid_argument);
}

} // namespace
} // namespace qkc
