#include "bayesnet/bayes_net.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

TEST(BayesNetTest, BellStructureMatchesFigure2)
{
    // Figure 2c: q0m0, q1m0 initial; q0m1 after H; q1m1 after CNOT (the
    // paper labels it q1m3 with global moments; we count per qubit).
    auto bn = circuitToBayesNet(bellCircuit());
    ASSERT_EQ(bn.variables().size(), 4u);
    EXPECT_EQ(bn.variable(0).name, "q0m0");
    EXPECT_EQ(bn.variable(0).role, BnVarRole::InitialState);
    EXPECT_EQ(bn.variable(2).name, "q0m1");
    EXPECT_EQ(bn.variable(2).role, BnVarRole::FinalState);
    EXPECT_EQ(bn.finalVars().size(), 2u);
    EXPECT_TRUE(bn.noiseVars().empty());
    // Potentials: two initial pins, the H CAT, the CNOT CAT.
    EXPECT_EQ(bn.potentials().size(), 4u);
}

TEST(BayesNetTest, HadamardCatIsTransposeOfUnitary)
{
    // Table 2a: all entries magnitude 1/sqrt(2); (in=1,out=1) negative.
    Circuit c(1);
    c.h(0);
    auto bn = circuitToBayesNet(c);
    const BnPotential* hPot = nullptr;
    for (const auto& p : bn.potentials())
        if (p.vars.size() == 2)
            hPot = &p;
    ASSERT_NE(hPot, nullptr);
    ASSERT_EQ(hPot->entries.size(), 4u);
    double s = 1.0 / std::sqrt(2.0);
    // Entries indexed (in, out): 00, 01, 10, 11.
    for (int e = 0; e < 4; ++e) {
        ASSERT_EQ(hPot->entries[e].kind, BnEntryKind::Parameter);
        Complex v = bn.paramValues()[hPot->entries[e].paramId];
        EXPECT_NEAR(v.real(), e == 3 ? -s : s, 1e-12);
    }
    // The three +1/sqrt(2) entries share one parameter (local structure).
    EXPECT_EQ(hPot->entries[0].paramId, hPot->entries[1].paramId);
    EXPECT_EQ(hPot->entries[0].paramId, hPot->entries[2].paramId);
    EXPECT_NE(hPot->entries[0].paramId, hPot->entries[3].paramId);
}

TEST(BayesNetTest, CnotIsPureLogic)
{
    // Table 2c / Table 3: CNOT's deterministic CAT needs no weights.
    auto bn = circuitToBayesNet(bellCircuit());
    const BnPotential* cnotPot = nullptr;
    for (const auto& p : bn.potentials())
        if (p.vars.size() == 3)
            cnotPot = &p;
    ASSERT_NE(cnotPot, nullptr);
    for (const auto& e : cnotPot->entries)
        EXPECT_NE(e.kind, BnEntryKind::Parameter);
}

TEST(BayesNetTest, PhaseDampingMatchesTable2b)
{
    // Phase damping is diagonal: no new state variable, a potential over
    // (q0m1, rv) with entries 1, 0, sqrt(1-gamma), sqrt(gamma).
    auto bn = circuitToBayesNet(noisyBellCircuit(0.36));
    ASSERT_EQ(bn.noiseVars().size(), 1u);
    const BnVariable& rv = bn.variable(bn.noiseVars()[0]);
    EXPECT_EQ(rv.cardinality, 2u);
    EXPECT_EQ(rv.role, BnVarRole::NoiseRv);
    EXPECT_EQ(rv.name, "q0m2rv");

    const BnPotential* pot = nullptr;
    for (const auto& p : bn.potentials()) {
        for (BnVarId v : p.vars)
            if (v == bn.noiseVars()[0])
                pot = &p;
    }
    ASSERT_NE(pot, nullptr);
    ASSERT_EQ(pot->vars.size(), 2u);  // (state, rv): state passes through
    ASSERT_EQ(pot->entries.size(), 4u);
    // (in=0, rv=0) = 1; (in=0, rv=1) = 0; (in=1, rv=0) = 0.8; (in=1,rv=1)=0.6.
    EXPECT_EQ(pot->entries[0].kind, BnEntryKind::StructuralOne);
    EXPECT_EQ(pot->entries[1].kind, BnEntryKind::StructuralZero);
    ASSERT_EQ(pot->entries[2].kind, BnEntryKind::Parameter);
    ASSERT_EQ(pot->entries[3].kind, BnEntryKind::Parameter);
    EXPECT_NEAR(bn.paramValues()[pot->entries[2].paramId].real(), 0.8, 1e-12);
    EXPECT_NEAR(bn.paramValues()[pot->entries[3].paramId].real(), 0.6, 1e-12);
}

TEST(BayesNetTest, AmplitudeDampingAddsStateVariable)
{
    Circuit c(1);
    c.h(0);
    c.append(NoiseChannel::amplitudeDamping(0, 0.3));
    auto bn = circuitToBayesNet(c);
    // q0m0, q0m1 (H), q0m2rv, q0m2 (damped state).
    EXPECT_EQ(bn.variables().size(), 4u);
    EXPECT_EQ(bn.noiseVars().size(), 1u);
    // The final var is the damped state, not the pre-noise state.
    EXPECT_EQ(bn.variable(bn.finalVars()[0]).name, "q0m2");
}

TEST(BayesNetTest, DepolarizingHasFourValuedNoiseRv)
{
    Circuit c(1);
    c.h(0);
    c.append(NoiseChannel::depolarizing(0, 0.05));
    auto bn = circuitToBayesNet(c);
    EXPECT_EQ(bn.variable(bn.noiseVars()[0]).cardinality, 4u);
}

TEST(BayesNetTest, DiagonalGatesAddNoVariables)
{
    Circuit c(2);
    c.h(0).h(1);
    std::size_t before = circuitToBayesNet(c).variables().size();
    c.cz(0, 1).zz(0, 1, 0.4).rz(0, 0.3).s(1).t(0);
    auto bn = circuitToBayesNet(c);
    EXPECT_EQ(bn.variables().size(), before);
}

TEST(BayesNetTest, SwapRelabelsWires)
{
    Circuit c(2);
    c.h(0).swap(0, 1);
    auto bn = circuitToBayesNet(c);
    // No new variables or potentials from the SWAP.
    EXPECT_EQ(bn.variables().size(), 3u);
    // Qubit 1's final variable is the H output (originally qubit 0's).
    EXPECT_EQ(bn.variable(bn.finalVars()[1]).name, "q0m1");
    EXPECT_EQ(bn.variable(bn.finalVars()[0]).name, "q1m0");
}

TEST(BayesNetTest, ZeroAngleRotationIsNotStructural)
{
    // Rz(0) == I numerically, but a variational sweep may change it; the
    // probe at a second angle must keep the entries parametric.
    Circuit c(1);
    c.h(0).rz(0, 0.0);
    auto bn = circuitToBayesNet(c);
    const BnPotential* rzPot = nullptr;
    for (const auto& p : bn.potentials())
        if (p.vars.size() == 1 && p.sourceOp == 1)
            rzPot = &p;
    ASSERT_NE(rzPot, nullptr);
    EXPECT_EQ(rzPot->entries[0].kind, BnEntryKind::Parameter);
    EXPECT_EQ(rzPot->entries[1].kind, BnEntryKind::Parameter);
}

TEST(BayesNetTest, RefreshParamsUpdatesValues)
{
    Circuit c = testing::ringQaoaCircuit(4, 0.3, 0.2);
    auto bn = circuitToBayesNet(c);
    auto before = bn.paramValues();

    Circuit c2 = testing::ringQaoaCircuit(4, 0.9, 0.7);
    bn.refreshParams(c2);
    auto after = bn.paramValues();
    ASSERT_EQ(before.size(), after.size());
    bool changed = false;
    for (std::size_t i = 0; i < before.size(); ++i)
        changed = changed || std::abs(before[i] - after[i]) > 1e-9;
    EXPECT_TRUE(changed);
}

TEST(BayesNetTest, RefreshParamsRejectsStructureChange)
{
    Circuit c = testing::ringQaoaCircuit(4, 0.3, 0.2);
    auto bn = circuitToBayesNet(c);
    Circuit other(4);
    other.h(0).h(1).h(2).h(3);
    EXPECT_THROW(bn.refreshParams(other), std::invalid_argument);
}

TEST(BayesNetTest, QueryVarsAreFinalsThenNoise)
{
    auto bn = circuitToBayesNet(noisyBellCircuit(0.36));
    auto q = bn.queryVars();
    ASSERT_EQ(q.size(), 3u);
    EXPECT_EQ(bn.variable(q[0]).role, BnVarRole::FinalState);
    EXPECT_EQ(bn.variable(q[1]).role, BnVarRole::FinalState);
    EXPECT_EQ(bn.variable(q[2]).role, BnVarRole::NoiseRv);
}

TEST(BayesNetTest, SummaryMentionsVariables)
{
    auto bn = circuitToBayesNet(bellCircuit());
    std::string s = bn.summary();
    EXPECT_NE(s.find("q0m0"), std::string::npos);
    EXPECT_NE(s.find("[final]"), std::string::npos);
}

TEST(BayesNetTest, DenseTwoQubitGateChainRule)
{
    Rng rng(3);
    Circuit c(2);
    Gate ra(GateKind::Ry, {0}, 0.7);
    Gate rb(GateKind::Rx, {0}, 1.3);
    Matrix u = ra.unitary().kron(rb.unitary()) *
               Gate(GateKind::CNOT, {0, 1}).unitary();
    c.append(Gate::custom({0, 1}, u, "dense"));
    auto bn = circuitToBayesNet(c);
    // 2 initial + 2 outputs; one joint potential over 4 vars (16 entries).
    EXPECT_EQ(bn.variables().size(), 4u);
    bool found = false;
    for (const auto& p : bn.potentials())
        found = found || p.entries.size() == 16;
    EXPECT_TRUE(found);
}

} // namespace
} // namespace qkc
