/**
 * MxM run-primitive kernels (ISSUE 10): mmProduct on the SIMD dispatch
 * levels must agree with Matrix::operator* to arithmetic tolerance, be
 * bit-identical across every level the host supports (the run primitives
 * never FMA-contract), and reject operand shapes path MM nodes never
 * produce.
 */
#include "exec/mm_kernels.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "exec/simd.h"
#include "util/rng.h"

namespace qkc {
namespace {

Matrix
randomMatrix(std::size_t dim, std::uint64_t seed)
{
    Rng rng(seed);
    Matrix m(dim, dim);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            m(r, c) = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    return m;
}

/** Dispatch levels actually runnable on this host. */
std::vector<SimdLevel>
supportedLevels()
{
    std::vector<SimdLevel> levels = {SimdLevel::Scalar};
    if (activeSimdLevel() >= SimdLevel::Avx2)
        levels.push_back(SimdLevel::Avx2);
    if (activeSimdLevel() >= SimdLevel::Avx512)
        levels.push_back(SimdLevel::Avx512);
    return levels;
}

TEST(MmKernelsTest, MatchesOperatorStarTwoByTwo)
{
    const Matrix a = randomMatrix(2, 11);
    const Matrix b = randomMatrix(2, 12);
    const Matrix want = a * b;
    for (SimdLevel level : supportedLevels()) {
        const Matrix got = mmProduct(a, b, level);
        EXPECT_TRUE(got.approxEqual(want, 1e-12))
            << "level " << simdLevelName(level);
    }
}

TEST(MmKernelsTest, MatchesOperatorStarFourByFour)
{
    const Matrix a = randomMatrix(4, 21);
    const Matrix b = randomMatrix(4, 22);
    const Matrix want = a * b;
    for (SimdLevel level : supportedLevels()) {
        const Matrix got = mmProduct(a, b, level);
        EXPECT_TRUE(got.approxEqual(want, 1e-12))
            << "level " << simdLevelName(level);
    }
}

TEST(MmKernelsTest, BitIdenticalAcrossLevels)
{
    for (std::size_t dim : {std::size_t{2}, std::size_t{4}}) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            const Matrix a = randomMatrix(dim, seed);
            const Matrix b = randomMatrix(dim, seed + 100);
            const Matrix scalar = mmProduct(a, b, SimdLevel::Scalar);
            for (SimdLevel level : supportedLevels()) {
                const Matrix got = mmProduct(a, b, level);
                for (std::size_t r = 0; r < dim; ++r)
                    for (std::size_t c = 0; c < dim; ++c)
                        EXPECT_EQ(got(r, c), scalar(r, c))
                            << simdLevelName(level) << " dim " << dim
                            << " seed " << seed << " (" << r << "," << c
                            << ")";
            }
        }
    }
}

TEST(MmKernelsTest, DispatchOverloadUsesActiveLevel)
{
    const Matrix a = randomMatrix(4, 31);
    const Matrix b = randomMatrix(4, 32);
    const Matrix viaDispatch = mmProduct(a, b);
    const Matrix viaLevel = mmProduct(a, b, activeSimdLevel());
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(viaDispatch(r, c), viaLevel(r, c));
}

TEST(MmKernelsTest, RejectsUnsupportedShapes)
{
    EXPECT_THROW(mmProduct(randomMatrix(3, 1), randomMatrix(3, 2)),
                 std::invalid_argument);
    EXPECT_THROW(mmProduct(randomMatrix(8, 1), randomMatrix(8, 2)),
                 std::invalid_argument);
    EXPECT_THROW(mmProduct(randomMatrix(2, 1), randomMatrix(4, 2)),
                 std::invalid_argument);
    Matrix rect(2, 4);
    EXPECT_THROW(mmProduct(rect, rect), std::invalid_argument);
}

} // namespace
} // namespace qkc
