/**
 * Thread-count determinism (ISSUE 3 acceptance): 1-thread and N-thread runs
 * must produce bit-identical amplitudes and identical sampling outcomes —
 * not just statistically equivalent distributions. This is what makes
 * QKC_THREADS a pure performance knob.
 */
#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "circuit/noise.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "util/rng.h"
#include "vqa/backends.h"

namespace qkc {
namespace {

ExecPolicy
withThreads(std::size_t threads)
{
    ExecPolicy p;
    p.threads = threads;
    p.serialThreshold = 1; // force the pool path even at test sizes
    p.grain = 32;
    return p;
}

Circuit
benchmarkishCircuit(std::size_t n)
{
    Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    for (std::size_t q = 0; q + 1 < n; ++q) {
        c.cnot(q, q + 1);
        c.rz(q, 0.31 * static_cast<double>(q + 1));
    }
    for (std::size_t q = 0; q < n; ++q)
        c.t(q);
    for (std::size_t q = 0; q + 2 < n; q += 2)
        c.zz(q, q + 2, 0.77);
    return c;
}

TEST(DeterminismTest, AmplitudesBitIdenticalAcrossThreadCounts)
{
    const Circuit c = benchmarkishCircuit(8);
    StateVectorSimulator serial(withThreads(1));
    const StateVector reference = serial.simulate(c);
    for (std::size_t threads : {2u, 4u, 7u}) {
        StateVectorSimulator parallel(withThreads(threads));
        const StateVector sv = parallel.simulate(c);
        for (std::uint64_t i = 0; i < sv.dimension(); ++i) {
            ASSERT_EQ(sv.amplitude(i).real(), reference.amplitude(i).real());
            ASSERT_EQ(sv.amplitude(i).imag(), reference.amplitude(i).imag());
        }
    }
}

TEST(DeterminismTest, NormBitIdenticalAcrossThreadCounts)
{
    StateVector a(10);
    a.setExecPolicy(withThreads(1));
    StateVector b(10);
    b.setExecPolicy(withThreads(4));
    const Matrix h = Gate(GateKind::H, {0}).unitary();
    for (std::size_t q = 0; q < 10; ++q) {
        a.applySingleQubit(h, q);
        b.applySingleQubit(h, q);
    }
    EXPECT_EQ(a.norm(), b.norm());
}

TEST(DeterminismTest, IdealSamplingIdenticalAcrossThreadCounts)
{
    const Circuit c = benchmarkishCircuit(7);
    StateVectorSimulator serial(withThreads(1));
    StateVectorSimulator parallel(withThreads(4));
    Rng rngA(12345), rngB(12345);
    EXPECT_EQ(serial.sample(c, 500, rngA), parallel.sample(c, 500, rngB));
}

TEST(DeterminismTest, NoisySamplingIdenticalAcrossThreadCounts)
{
    const Circuit noisy = benchmarkishCircuit(5).withNoiseAfterEachGate(
        NoiseKind::Depolarizing, 0.02);
    StateVectorSimulator serial(withThreads(1));
    StateVectorSimulator parallel(withThreads(4));
    Rng rngA(777), rngB(777);
    const auto a = serial.sampleNoisy(noisy, 200, rngA);
    const auto b = parallel.sampleNoisy(noisy, 200, rngB);
    EXPECT_EQ(a, b);
}

TEST(DeterminismTest, DensityMatrixBitIdenticalAcrossThreadCounts)
{
    const Circuit noisy = benchmarkishCircuit(5).withNoiseAfterEachGate(
        NoiseKind::AmplitudeDamping, 0.05);
    DensityMatrixSimulator serial(withThreads(1));
    DensityMatrixSimulator parallel(withThreads(4));
    const auto a = serial.simulate(noisy);
    const auto b = parallel.simulate(noisy);
    for (std::uint64_t r = 0; r < a.dimension(); ++r) {
        for (std::uint64_t c2 = 0; c2 < a.dimension(); ++c2) {
            ASSERT_EQ(a.at(r, c2).real(), b.at(r, c2).real());
            ASSERT_EQ(a.at(r, c2).imag(), b.at(r, c2).imag());
        }
    }
}

TEST(DeterminismTest, BackendSpecThreadsIsAPurePerfKnob)
{
    // The CLI-visible form of the guarantee: sv vs sv:threads=N, same seed,
    // identical samples — ideal and noisy.
    const Circuit ideal = benchmarkishCircuit(6);
    const Circuit noisy =
        ideal.withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.01);
    for (const char* spec : {"sv:threads=2", "sv:threads=8"}) {
        Rng rngA(9), rngB(9);
        EXPECT_EQ(makeBackend("sv:threads=1")->sample(ideal, 300, rngA),
                  makeBackend(spec)->sample(ideal, 300, rngB));
        Rng rngC(11), rngD(11);
        EXPECT_EQ(makeBackend("sv:threads=1")->sample(noisy, 100, rngC),
                  makeBackend(spec)->sample(noisy, 100, rngD));
    }
}

TEST(DeterminismTest, TrajectorySeedingIndependentOfSampleCount)
{
    // Trajectory i depends only on the caller seed and i: a longer run's
    // prefix equals the shorter run.
    const Circuit noisy = benchmarkishCircuit(4).withNoiseAfterEachGate(
        NoiseKind::BitFlip, 0.05);
    StateVectorSimulator sim(withThreads(2));
    Rng rngA(5), rngB(5);
    const auto small = sim.sampleNoisy(noisy, 50, rngA);
    const auto big = sim.sampleNoisy(noisy, 120, rngB);
    for (std::size_t i = 0; i < small.size(); ++i)
        ASSERT_EQ(small[i], big[i]);
}

} // namespace
} // namespace qkc
