#include "exec/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace qkc {
namespace {

ExecPolicy
forcedParallel(std::size_t threads, std::uint64_t grain = 64)
{
    ExecPolicy p;
    p.threads = threads;
    p.serialThreshold = 1; // exercise the pool even for tiny ranges
    p.grain = grain;
    return p;
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce)
{
    const std::uint64_t n = 10'000;
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
        std::vector<std::atomic<int>> hits(n);
        for (auto& h : hits)
            h.store(0);
        parallelFor(forcedParallel(threads), n,
                    [&](std::uint64_t b, std::uint64_t e) {
            for (std::uint64_t i = b; i < e; ++i)
                hits[i].fetch_add(1);
        });
        for (std::uint64_t i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with "
                                         << threads << " threads";
    }
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount)
{
    const std::uint64_t n = 1234;
    auto boundaries = [&](std::size_t threads) {
        std::vector<std::pair<std::uint64_t, std::uint64_t>> out(
            (n + 63) / 64);
        parallelForChunks(forcedParallel(threads, 64), n,
                          [&](std::size_t chunk, std::uint64_t b,
                              std::uint64_t e) { out[chunk] = {b, e}; });
        return out;
    };
    const auto serial = boundaries(1);
    const auto parallel = boundaries(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
        EXPECT_EQ(serial[c], parallel[c]) << "chunk " << c;
        EXPECT_EQ(serial[c].first, c * 64);
    }
}

TEST(ThreadPoolTest, ParallelSumBitIdenticalAcrossThreadCounts)
{
    const std::uint64_t n = 100'000;
    std::vector<double> values(n);
    for (std::uint64_t i = 0; i < n; ++i)
        values[i] = 1.0 / static_cast<double>(i + 1);

    auto sum = [&](std::size_t threads) {
        return parallelSum(forcedParallel(threads, 1024), n,
                           [&](std::uint64_t b, std::uint64_t e) {
            double s = 0.0;
            for (std::uint64_t i = b; i < e; ++i)
                s += values[i];
            return s;
        });
    };
    const double s1 = sum(1);
    for (std::size_t threads : {2u, 3u, 8u})
        EXPECT_EQ(s1, sum(threads)); // bitwise, not approximate
}

TEST(ThreadPoolTest, SerialThresholdKeepsSmallRangesInline)
{
    ExecPolicy p;
    p.threads = 8;
    p.serialThreshold = 1000;
    std::atomic<int> count{0};
    parallelFor(p, 100, [&](std::uint64_t b, std::uint64_t e) {
        count.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, NestedRunDoesNotDeadlock)
{
    const ExecPolicy outer = forcedParallel(4, 1);
    std::atomic<int> total{0};
    parallelFor(outer, 8, [&](std::uint64_t b, std::uint64_t e) {
        for (std::uint64_t i = b; i < e; ++i) {
            parallelFor(forcedParallel(4, 16), 256,
                        [&](std::uint64_t ib, std::uint64_t ie) {
                total.fetch_add(static_cast<int>(ie - ib));
            });
        }
    });
    EXPECT_EQ(total.load(), 8 * 256);
}

TEST(ThreadPoolTest, InParallelRegionTracksChunkBodies)
{
    // The nested-submission guard for coarse fan-outs (Session::runBatch):
    // false at top level, true inside any chunk body — pool-claimed or
    // inline — and restored afterwards.
    EXPECT_FALSE(ThreadPool::inParallelRegion());
    std::atomic<int> insideCount{0};
    parallelFor(forcedParallel(4, 8), 64,
                [&](std::uint64_t, std::uint64_t) {
        if (ThreadPool::inParallelRegion())
            insideCount.fetch_add(1);
    });
    EXPECT_EQ(insideCount.load(), 64 / 8);
    EXPECT_FALSE(ThreadPool::inParallelRegion());

    // The serial path (threads=1) is not pool work and must not claim it.
    bool inside = false;
    parallelFor(forcedParallel(1), 16,
                [&](std::uint64_t, std::uint64_t) {
        inside = ThreadPool::inParallelRegion();
    });
    EXPECT_FALSE(inside);
}

TEST(ThreadPoolTest, NestedSubmissionRunsInlineWithoutDeadlock)
{
    // A chunk body that submits its own parallel region must complete (the
    // pool's single job slot degrades the nested region to inline
    // execution) and cover every index of both regions exactly once.
    std::atomic<int> outer{0}, inner{0};
    parallelFor(forcedParallel(4, 16), 64,
                [&](std::uint64_t b, std::uint64_t e) {
        outer.fetch_add(static_cast<int>(e - b));
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        parallelFor(forcedParallel(4, 8), 32,
                    [&](std::uint64_t ib, std::uint64_t ie) {
            inner.fetch_add(static_cast<int>(ie - ib));
        });
    });
    EXPECT_EQ(outer.load(), 64);
    EXPECT_EQ(inner.load(), 4 * 32);
    EXPECT_FALSE(ThreadPool::inParallelRegion());
}

TEST(ThreadPoolTest, ManySmallJobsReusePool)
{
    for (int round = 0; round < 200; ++round) {
        std::atomic<int> count{0};
        parallelFor(forcedParallel(4, 8), 64,
                    [&](std::uint64_t b, std::uint64_t e) {
            count.fetch_add(static_cast<int>(e - b));
        });
        ASSERT_EQ(count.load(), 64);
    }
}

TEST(ThreadPoolTest, ZeroAndEmptyRangesAreNoOps)
{
    bool called = false;
    parallelFor(forcedParallel(4), 0,
                [&](std::uint64_t, std::uint64_t) { called = true; });
    EXPECT_FALSE(called);
    EXPECT_EQ(parallelSum(forcedParallel(4), 0,
                          [](std::uint64_t, std::uint64_t) { return 1.0; }),
              0.0);
}

TEST(ThreadPoolTest, DefaultThreadsRespectsOverride)
{
    const std::size_t saved = defaultThreads();
    setDefaultThreads(3);
    EXPECT_EQ(defaultThreads(), 3u);
    ExecPolicy p;
    EXPECT_EQ(p.resolvedThreads(), 3u);
    p.threads = 5;
    EXPECT_EQ(p.resolvedThreads(), 5u);
    setDefaultThreads(saved);
}

TEST(ThreadPoolTest, ThreadsZeroMeansMachineDefault)
{
    // threads=0 is the documented "machine default": resolvedThreads()
    // always tracks defaultThreads() (QKC_THREADS / hardware concurrency /
    // setDefaultThreads, in the ExecPolicy-documented precedence), and is
    // never resolved to zero.
    const std::size_t saved = defaultThreads();

    ExecPolicy p; // threads defaults to 0
    EXPECT_EQ(p.threads, 0u);
    EXPECT_EQ(p.resolvedThreads(), defaultThreads());
    EXPECT_GE(p.resolvedThreads(), 1u);

    setDefaultThreads(7);
    EXPECT_EQ(p.resolvedThreads(), 7u);

    // setDefaultThreads clamps nonsense to 1, so 0 can never leak through.
    setDefaultThreads(0);
    EXPECT_EQ(defaultThreads(), 1u);
    EXPECT_EQ(p.resolvedThreads(), 1u);

    setDefaultThreads(saved);
}

} // namespace
} // namespace qkc
