/**
 * Kernel-equivalence suite (ISSUE 3): every specialized kernel class is
 * cross-checked against the generic dense reference path on randomized
 * states and circuits with fixed seeds, in both serial and forced-parallel
 * execution, and the classifier's verdicts for the gate vocabulary are
 * pinned down so a regression to the generic path is caught.
 */
#include "exec/gate_kernels.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "circuit/gate.h"
#include "circuit/noise.h"
#include "exec/simd.h"
#include "statevector/statevector_simulator.h"
#include "util/rng.h"

namespace qkc {
namespace {

constexpr double kTol = 1e-12;

std::vector<Complex>
randomState(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Complex> amps(std::size_t{1} << n);
    double norm = 0.0;
    for (auto& a : amps) {
        a = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
        norm += norm2(a);
    }
    const double inv = 1.0 / std::sqrt(norm);
    for (auto& a : amps)
        a *= inv;
    return amps;
}

ExecPolicy
forcedParallel()
{
    ExecPolicy p;
    p.threads = 4;
    p.serialThreshold = 1;
    p.grain = 32;
    return p;
}

std::vector<std::uint32_t>
bitsFor(const std::vector<std::size_t>& qubits, std::size_t n)
{
    std::vector<std::uint32_t> bits;
    for (std::size_t q : qubits)
        bits.push_back(static_cast<std::uint32_t>(n - 1 - q));
    return bits;
}

void
expectMatchesReference(const Matrix& m, const std::vector<std::size_t>& qubits,
                       std::size_t n, std::uint64_t seed)
{
    const GateKernel kernel = compileKernel(m, bitsFor(qubits, n));
    auto specializedSerial = randomState(n, seed);
    auto specializedParallel = specializedSerial;
    auto reference = specializedSerial;
    const std::uint64_t dim = reference.size();

    applyKernel(kernel, specializedSerial.data(), dim, ExecPolicy{});
    applyKernel(kernel, specializedParallel.data(), dim, forcedParallel());
    applyKernelReference(kernel, reference.data(), dim);

    for (std::uint64_t i = 0; i < dim; ++i) {
        ASSERT_TRUE(approxEqual(specializedSerial[i], reference[i], kTol))
            << "serial kernel " << kernel.className() << " at index " << i;
        // Serial and parallel kernels must agree *bitwise*.
        ASSERT_EQ(specializedSerial[i].real(), specializedParallel[i].real());
        ASSERT_EQ(specializedSerial[i].imag(), specializedParallel[i].imag());
    }

    // And every SIMD dispatch level must agree bitwise with the default.
    for (SimdMode mode : {SimdMode::Off, SimdMode::Avx2, SimdMode::Avx512}) {
        ExecPolicy leveled;
        leveled.simd = mode;
        auto atLevel = randomState(n, seed);
        applyKernel(kernel, atLevel.data(), dim, leveled);
        for (std::uint64_t i = 0; i < dim; ++i) {
            ASSERT_EQ(specializedSerial[i].real(), atLevel[i].real())
                << kernel.className() << " simd="
                << simdLevelName(resolveSimdMode(mode)) << " index " << i;
            ASSERT_EQ(specializedSerial[i].imag(), atLevel[i].imag())
                << kernel.className() << " simd="
                << simdLevelName(resolveSimdMode(mode)) << " index " << i;
        }
    }
}

TEST(KernelClassificationTest, GateVocabularyLandsInSpecializedClasses)
{
    const std::size_t n = 4;
    auto classOf = [&](const Gate& g) {
        return std::string(
            compileKernel(g.unitary(), bitsFor(g.qubits(), n)).className());
    };
    EXPECT_EQ(classOf(Gate(GateKind::I, {0})), "identity");
    EXPECT_EQ(classOf(Gate(GateKind::X, {1})), "perm");
    EXPECT_EQ(classOf(Gate(GateKind::Y, {2})), "perm");
    EXPECT_EQ(classOf(Gate(GateKind::Z, {0})), "ctrl-diag");
    EXPECT_EQ(classOf(Gate(GateKind::S, {0})), "ctrl-diag");
    EXPECT_EQ(classOf(Gate(GateKind::T, {3})), "ctrl-diag");
    EXPECT_EQ(classOf(Gate(GateKind::H, {0})), "generic");
    EXPECT_EQ(classOf(Gate(GateKind::Rx, {0}, 0.7)), "generic");
    EXPECT_EQ(classOf(Gate(GateKind::Rz, {0}, 0.7)), "diag");
    EXPECT_EQ(classOf(Gate(GateKind::PhaseZ, {0}, 0.7)), "ctrl-diag");
    EXPECT_EQ(classOf(Gate(GateKind::CNOT, {0, 1})), "ctrl-perm");
    EXPECT_EQ(classOf(Gate(GateKind::CZ, {1, 3})), "ctrl-diag");
    EXPECT_EQ(classOf(Gate(GateKind::SWAP, {0, 2})), "perm");
    EXPECT_EQ(classOf(Gate(GateKind::CRz, {0, 1}, 0.4)), "ctrl-diag");
    EXPECT_EQ(classOf(Gate(GateKind::CPhase, {0, 1}, 0.4)), "ctrl-diag");
    EXPECT_EQ(classOf(Gate(GateKind::ZZ, {0, 1}, 0.4)), "diag");
    EXPECT_EQ(classOf(Gate(GateKind::CCX, {0, 1, 2})), "ctrl-perm");
    EXPECT_EQ(classOf(Gate(GateKind::CCZ, {0, 1, 2})), "ctrl-diag");
    EXPECT_EQ(classOf(Gate(GateKind::CSWAP, {0, 1, 2})), "ctrl-perm");
}

TEST(KernelClassificationTest, KrausOperatorsClassifyToo)
{
    const std::size_t n = 3;
    // Damping E0 = diag(1, sqrt(1-g)): one controlled diagonal entry.
    const auto damping = NoiseChannel::amplitudeDamping(0, 0.3);
    EXPECT_EQ(std::string(compileKernel(damping.krausOperators()[0],
                                        bitsFor({0}, n))
                              .className()),
              "ctrl-diag");
    // Bit-flip E0 = sqrt(1-p) I: a global phase sweep.
    const auto flip = NoiseChannel::bitFlip(1, 0.2);
    EXPECT_EQ(std::string(
                  compileKernel(flip.krausOperators()[0], bitsFor({1}, n))
                      .className()),
              "phase");
    EXPECT_EQ(std::string(
                  compileKernel(flip.krausOperators()[1], bitsFor({1}, n))
                      .className()),
              "perm");
}

TEST(KernelEquivalenceTest, EveryGateKindMatchesReference)
{
    const std::size_t n = 6;
    std::uint64_t seed = 100;
    const std::vector<Gate> gates = {
        Gate(GateKind::I, {0}),
        Gate(GateKind::X, {1}),
        Gate(GateKind::Y, {5}),
        Gate(GateKind::Z, {2}),
        Gate(GateKind::H, {3}),
        Gate(GateKind::S, {4}),
        Gate(GateKind::Sdg, {0}),
        Gate(GateKind::T, {1}),
        Gate(GateKind::Tdg, {2}),
        Gate(GateKind::Rx, {3}, 0.81),
        Gate(GateKind::Ry, {4}, -1.2),
        Gate(GateKind::Rz, {5}, 2.7),
        Gate(GateKind::PhaseZ, {0}, 0.33),
        Gate(GateKind::CNOT, {0, 4}),
        Gate(GateKind::CNOT, {4, 0}),
        Gate(GateKind::CZ, {2, 5}),
        Gate(GateKind::SWAP, {1, 3}),
        Gate(GateKind::CRz, {5, 2}, 1.9),
        Gate(GateKind::CPhase, {3, 0}, -0.6),
        Gate(GateKind::ZZ, {2, 4}, 0.95),
        Gate(GateKind::CCX, {0, 2, 4}),
        Gate(GateKind::CCX, {5, 3, 1}),
        Gate(GateKind::CCZ, {1, 2, 3}),
        Gate(GateKind::CSWAP, {2, 0, 5}),
    };
    for (const Gate& g : gates) {
        SCOPED_TRACE(g.name());
        expectMatchesReference(g.unitary(), g.qubits(), n, seed++);
    }
}

TEST(KernelEquivalenceTest, RandomCustomUnitariesMatchReference)
{
    const std::size_t n = 5;
    Rng rng(7);
    for (int trial = 0; trial < 10; ++trial) {
        // Random 2x2 unitary from Euler angles.
        const double a = rng.uniform(0.0, 2.0 * M_PI);
        const double b = rng.uniform(0.0, 2.0 * M_PI);
        const double c = rng.uniform(0.0, 2.0 * M_PI);
        const Complex i{0.0, 1.0};
        Matrix u{{std::exp(i * a) * std::cos(c), std::exp(i * b) * std::sin(c)},
                 {-std::exp(-i * b) * std::sin(c),
                  std::exp(-i * a) * std::cos(c)}};
        const std::size_t q = rng.below(n);
        expectMatchesReference(u, {q}, n, 500 + trial);
    }
}

TEST(KernelEquivalenceTest, KrausOperatorsMatchReference)
{
    const std::size_t n = 5;
    std::uint64_t seed = 900;
    const std::vector<NoiseChannel> channels = {
        NoiseChannel::bitFlip(0, 0.25),
        NoiseChannel::phaseFlip(1, 0.1),
        NoiseChannel::depolarizing(2, 0.15),
        NoiseChannel::amplitudeDamping(3, 0.4),
        NoiseChannel::phaseDamping(4, 0.3),
        NoiseChannel::generalizedAmplitudeDamping(0, 0.35, 0.6),
        NoiseChannel::twoQubitDepolarizing(1, 3, 0.2),
    };
    for (const auto& ch : channels) {
        SCOPED_TRACE(ch.name());
        for (const Matrix& e : ch.krausOperators())
            expectMatchesReference(e, ch.qubits(), n, seed++);
    }
}

TEST(KernelEquivalenceTest, PreScaleFoldsIntoOnePass)
{
    const std::size_t n = 5;
    const std::uint64_t dim = std::uint64_t{1} << n;
    const auto damping = NoiseChannel::amplitudeDamping(2, 0.37);
    for (const Matrix& e : damping.krausOperators()) {
        const GateKernel kernel = compileKernel(e, bitsFor({2}, n));
        auto scaled = randomState(n, 42);
        auto twoPass = scaled;

        const double w =
            normAfterKernel(kernel, scaled.data(), dim, ExecPolicy{});
        const Complex s{1.0 / std::sqrt(w), 0.0};
        applyKernel(kernel, scaled.data(), dim, ExecPolicy{}, s);

        applyKernel(kernel, twoPass.data(), dim, ExecPolicy{});
        for (auto& a : twoPass)
            a *= s;

        for (std::uint64_t idx = 0; idx < dim; ++idx)
            ASSERT_TRUE(approxEqual(scaled[idx], twoPass[idx], kTol));

        // And the hoisted application really lands on a unit-norm state.
        double norm = 0.0;
        for (const auto& a : scaled)
            norm += norm2(a);
        EXPECT_NEAR(norm, 1.0, 1e-9);
    }
}

TEST(KernelEquivalenceTest, NormAfterMatchesApplyThenNorm)
{
    const std::size_t n = 6;
    const std::uint64_t dim = std::uint64_t{1} << n;
    const auto ch = NoiseChannel::depolarizing(3, 0.2);
    auto state = randomState(n, 77);
    for (const Matrix& e : ch.krausOperators()) {
        const GateKernel kernel = compileKernel(e, bitsFor({3}, n));
        auto applied = state;
        applyKernel(kernel, applied.data(), dim, ExecPolicy{});
        double expected = 0.0;
        for (const auto& a : applied)
            expected += norm2(a);
        EXPECT_NEAR(normAfterKernel(kernel, state.data(), dim, ExecPolicy{}),
                    expected, 1e-12);
    }
}

TEST(KernelEquivalenceTest, RandomizedCircuitsMatchReferenceEndToEnd)
{
    // Whole random circuits: specialized+parallel execution against the
    // dense reference, amplitude for amplitude.
    const std::size_t n = 6;
    Rng rng(2024);
    for (int trial = 0; trial < 5; ++trial) {
        std::vector<GateKernel> kernels;
        for (int g = 0; g < 40; ++g) {
            const int pick = static_cast<int>(rng.below(8));
            std::size_t a = rng.below(n);
            std::size_t b = (a + 1 + rng.below(n - 1)) % n;
            std::size_t c = 0;
            do {
                c = rng.below(n);
            } while (c == a || c == b);
            Gate gate = [&]() {
                switch (pick) {
                  case 0: return Gate(GateKind::H, {a});
                  case 1: return Gate(GateKind::T, {a});
                  case 2: return Gate(GateKind::Rx, {a}, rng.uniform(-3, 3));
                  case 3: return Gate(GateKind::Rz, {a}, rng.uniform(-3, 3));
                  case 4: return Gate(GateKind::CNOT, {a, b});
                  case 5: return Gate(GateKind::CZ, {a, b});
                  case 6: return Gate(GateKind::ZZ, {a, b}, rng.uniform(-3, 3));
                  default: return Gate(GateKind::CCX, {a, b, c});
                }
            }();
            kernels.push_back(
                compileKernel(gate.unitary(), bitsFor(gate.qubits(), n)));
        }

        auto fast = randomState(n, 3000 + trial);
        auto reference = fast;
        const std::uint64_t dim = fast.size();
        for (const auto& k : kernels) {
            applyKernel(k, fast.data(), dim, forcedParallel());
            applyKernelReference(k, reference.data(), dim);
        }
        for (std::uint64_t i = 0; i < dim; ++i)
            ASSERT_TRUE(approxEqual(fast[i], reference[i], 1e-10))
                << "trial " << trial << " index " << i;
    }
}

TEST(KernelRefreshTest, RefreshedKernelMatchesRecompilation)
{
    // The variational fast path: refresh a kernel's payload with a new
    // parameter value and verify it applies identically to a recompiled
    // kernel — for a diag (Rz), a controlled-diag (CRz) and a generic (Rx).
    struct Case {
        GateKind kind;
        std::vector<std::size_t> qubits;
    };
    const Case cases[] = {
        {GateKind::Rz, {1}}, {GateKind::CRz, {0, 2}}, {GateKind::Rx, {2}}};
    for (const Case& c : cases) {
        std::vector<std::uint32_t> bits;
        for (std::size_t q : c.qubits)
            bits.push_back(static_cast<std::uint32_t>(2 - q));
        GateKernel k =
            compileKernel(Gate(c.kind, c.qubits, 0.4).unitary(), bits);
        const GateKernel fresh =
            compileKernel(Gate(c.kind, c.qubits, 1.7).unitary(), bits);
        ASSERT_TRUE(tryRefreshKernel(k, Gate(c.kind, c.qubits, 1.7).unitary()));
        EXPECT_EQ(k.op, fresh.op);
        EXPECT_EQ(k.ctrlMask, fresh.ctrlMask);

        auto state = randomState(3, 99);
        auto viaRefresh = state;
        auto viaCompile = state;
        ExecPolicy serial;
        serial.threads = 1;
        applyKernel(k, viaRefresh.data(), state.size(), serial);
        applyKernel(fresh, viaCompile.data(), state.size(), serial);
        for (std::size_t i = 0; i < state.size(); ++i)
            ASSERT_TRUE(approxEqual(viaRefresh[i], viaCompile[i], kTol));
    }
}

TEST(KernelRefreshTest, RefusesStructuralClassChanges)
{
    const std::vector<std::uint32_t> bit = {0};

    // Rx(2pi) = -I classifies as a global phase; Rx(0.3) is dense — the
    // stored class no longer fits and refresh must refuse.
    GateKernel phase = compileKernel(
        Gate(GateKind::Rx, {0}, 2.0 * 3.14159265358979323846).unitary(), bit);
    EXPECT_EQ(phase.op, GateKernel::Op::GlobalPhase);
    EXPECT_FALSE(
        tryRefreshKernel(phase, Gate(GateKind::Rx, {0}, 0.3).unitary()));

    // A diagonal kernel refuses a dense matrix.
    GateKernel diag =
        compileKernel(Gate(GateKind::Rz, {0}, 0.4).unitary(), bit);
    EXPECT_EQ(diag.op, GateKernel::Op::Diag);
    EXPECT_FALSE(
        tryRefreshKernel(diag, Gate(GateKind::H, {0}).unitary()));

    // A stripped control must still verify: CRz -> CNOT flips the residual
    // class behind the control, CRz -> SWAP breaks the control itself.
    const std::vector<std::uint32_t> pair = {1, 0};
    GateKernel crz =
        compileKernel(Gate(GateKind::CRz, {0, 1}, 0.4).unitary(), pair);
    EXPECT_NE(crz.ctrlMask, 0u);
    EXPECT_FALSE(
        tryRefreshKernel(crz, Gate(GateKind::SWAP, {0, 1}).unitary()));

    // Generic kernels accept anything (the dense fallback is universal).
    GateKernel generic =
        compileKernel(Gate(GateKind::Rx, {0}, 0.3).unitary(), bit);
    EXPECT_EQ(generic.op, GateKernel::Op::Generic);
    EXPECT_TRUE(
        tryRefreshKernel(generic, Gate(GateKind::H, {0}).unitary()));
}

} // namespace
} // namespace qkc
