/**
 * Scalar-vs-SIMD bit-parity suite (ISSUE 8): the vectorized kernel sweeps
 * must produce *bitwise* identical amplitudes at every dispatch level and
 * thread count — the SIMD lanes evaluate the exact same four-product
 * complex arithmetic as the scalar path, with no FMA contraction. The
 * suite sweeps randomized circuits over every supported level, tail-sized
 * runs, odd control masks and stride-boundary targets, and pins the
 * blocked sweep against the gather-only path.
 */
#include "exec/gate_kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "circuit/gate.h"
#include "exec/simd.h"
#include "linalg/aligned.h"
#include "util/rng.h"

namespace qkc {
namespace {

AmpVector
randomState(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    AmpVector amps(std::size_t{1} << n);
    double norm = 0.0;
    for (auto& a : amps) {
        a = Complex(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
        norm += norm2(a);
    }
    const double inv = 1.0 / std::sqrt(norm);
    for (auto& a : amps)
        a *= inv;
    return amps;
}

std::vector<std::uint32_t>
bitsFor(const std::vector<std::size_t>& qubits, std::size_t n)
{
    std::vector<std::uint32_t> bits;
    for (std::size_t q : qubits)
        bits.push_back(static_cast<std::uint32_t>(n - 1 - q));
    return bits;
}

/** The SIMD modes whose resolved level is actually distinct on this host. */
std::vector<SimdMode>
distinctModes()
{
    std::vector<SimdMode> modes = {SimdMode::Off};
    if (activeSimdLevel() >= SimdLevel::Avx2)
        modes.push_back(SimdMode::Avx2);
    if (activeSimdLevel() >= SimdLevel::Avx512)
        modes.push_back(SimdMode::Avx512);
    return modes;
}

ExecPolicy
policyFor(SimdMode mode, int threads)
{
    ExecPolicy p;
    p.simd = mode;
    p.threads = threads;
    if (threads > 1) {
        p.serialThreshold = 1;
        p.grain = 32;
    }
    return p;
}

/**
 * Applies `kernel` under every distinct simd level at threads {1, 4} and
 * asserts every payload is bitwise identical to the scalar single-thread
 * result.
 */
void
expectBitParity(const GateKernel& kernel, std::size_t n, std::uint64_t seed)
{
    const AmpVector input = randomState(n, seed);
    const std::uint64_t dim = input.size();

    AmpVector baseline = input;
    applyKernel(kernel, baseline.data(), dim, policyFor(SimdMode::Off, 1));

    for (SimdMode mode : distinctModes()) {
        for (int threads : {1, 4}) {
            AmpVector out = input;
            applyKernel(kernel, out.data(), dim, policyFor(mode, threads));
            for (std::uint64_t i = 0; i < dim; ++i) {
                ASSERT_EQ(baseline[i].real(), out[i].real())
                    << kernel.className() << " simd="
                    << simdLevelName(resolveSimdMode(mode)) << " threads="
                    << threads << " index " << i;
                ASSERT_EQ(baseline[i].imag(), out[i].imag())
                    << kernel.className() << " simd="
                    << simdLevelName(resolveSimdMode(mode)) << " threads="
                    << threads << " index " << i;
            }
        }
    }
}

GateKernel
kernelFor(const Gate& g, std::size_t n)
{
    return compileKernel(g.unitary(), bitsFor(g.qubits(), n));
}

TEST(SimdDispatchTest, ResolutionClampsToHostCeiling)
{
    // Auto resolves to the active level; explicit requests never exceed it.
    EXPECT_EQ(resolveSimdMode(SimdMode::Auto), activeSimdLevel());
    EXPECT_EQ(resolveSimdMode(SimdMode::Off), SimdLevel::Scalar);
    EXPECT_LE(resolveSimdMode(SimdMode::Avx2), activeSimdLevel());
    EXPECT_LE(resolveSimdMode(SimdMode::Avx512), activeSimdLevel());
    if (activeSimdLevel() >= SimdLevel::Avx2) {
        EXPECT_EQ(resolveSimdMode(SimdMode::Avx2), SimdLevel::Avx2);
    }

    SimdMode mode = SimdMode::Auto;
    EXPECT_TRUE(parseSimdMode("off", &mode));
    EXPECT_EQ(mode, SimdMode::Off);
    EXPECT_TRUE(parseSimdMode("avx2", &mode));
    EXPECT_EQ(mode, SimdMode::Avx2);
    EXPECT_TRUE(parseSimdMode("avx512", &mode));
    EXPECT_EQ(mode, SimdMode::Avx512);
    EXPECT_TRUE(parseSimdMode("auto", &mode));
    EXPECT_EQ(mode, SimdMode::Auto);
    EXPECT_FALSE(parseSimdMode("sse9", &mode));
}

TEST(SimdParityTest, KernelClassesAreBitIdenticalAcrossLevels)
{
    const std::size_t n = 8;
    std::uint64_t seed = 4000;
    const std::vector<Gate> gates = {
        Gate(GateKind::Rz, {3}, 0.77),          // diag, 1 target
        Gate(GateKind::ZZ, {2, 5}, 1.3),        // diag, 2 targets
        Gate(GateKind::CZ, {1, 6}),             // ctrl-diag, 0 targets
        Gate(GateKind::X, {4}),                 // perm (swap)
        Gate(GateKind::Y, {2}),                 // perm with weights
        Gate(GateKind::SWAP, {1, 5}),           // perm, 2 targets
        Gate(GateKind::H, {3}),                 // generic, 1 target
        Gate(GateKind::Rx, {6}, -0.9),          // generic, 1 target
        Gate(GateKind::CNOT, {2, 4}),           // ctrl-perm
        Gate(GateKind::CRz, {5, 1}, 2.1),       // ctrl-diag, 1 target
        Gate(GateKind::CCX, {0, 3, 6}),         // ctrl-perm, 2 controls
        Gate(GateKind::CCZ, {1, 4, 7}),         // ctrl-diag, 0 targets
    };
    for (const Gate& g : gates) {
        SCOPED_TRACE(g.name());
        expectBitParity(kernelFor(g, n), n, seed++);
    }
}

TEST(SimdParityTest, TailRunsAndStrideBoundaryTargets)
{
    // Run length is 2^(lowest residual bit): bit 0 gives length-1 runs
    // (gather path), bit 1 gives length-2 runs (a pure tail for the 4-wide
    // AVX-512 loop), bit 2 length-4, and the top bit one maximal run. All
    // must agree bitwise with scalar.
    const std::size_t n = 7; // odd qubit count, dim 128
    std::uint64_t seed = 5000;
    for (std::size_t q = 0; q < n; ++q) {
        SCOPED_TRACE("H target " + std::to_string(q));
        expectBitParity(kernelFor(Gate(GateKind::H, {q}), n), n, seed++);
        SCOPED_TRACE("Rz target " + std::to_string(q));
        expectBitParity(kernelFor(Gate(GateKind::Rz, {q}, 0.31), n), n,
                        seed++);
        SCOPED_TRACE("X target " + std::to_string(q));
        expectBitParity(kernelFor(Gate(GateKind::X, {q}), n), n, seed++);
    }
}

TEST(SimdParityTest, OddControlMasksAreBitIdentical)
{
    // Controls scattered across the index word: the residual sweep walks a
    // strided subcube whose base expansion must not disturb parity.
    const std::size_t n = 9;
    std::uint64_t seed = 6000;
    const std::vector<Gate> gates = {
        Gate(GateKind::CNOT, {0, 8}),
        Gate(GateKind::CNOT, {8, 0}),
        Gate(GateKind::CCX, {1, 7, 4}),
        Gate(GateKind::CCX, {6, 2, 8}),
        Gate(GateKind::CCZ, {0, 4, 8}),
        Gate(GateKind::CRz, {3, 5}, -1.7),
        Gate(GateKind::CSWAP, {4, 1, 7}),
        Gate(GateKind::CPhase, {2, 6}, 0.55),
    };
    for (const Gate& g : gates) {
        SCOPED_TRACE(g.name());
        expectBitParity(kernelFor(g, n), n, seed++);
    }
}

TEST(SimdParityTest, RandomizedCircuitsAreBitIdenticalEndToEnd)
{
    // Whole circuits: the accumulated state after dozens of kernels must
    // still be bitwise identical across levels and thread counts.
    const std::size_t n = 7;
    Rng rng(8123);
    for (int trial = 0; trial < 4; ++trial) {
        std::vector<GateKernel> kernels;
        for (int g = 0; g < 40; ++g) {
            const int pick = static_cast<int>(rng.below(8));
            std::size_t a = rng.below(n);
            std::size_t b = (a + 1 + rng.below(n - 1)) % n;
            std::size_t c = 0;
            do {
                c = rng.below(n);
            } while (c == a || c == b);
            Gate gate = [&]() {
                switch (pick) {
                  case 0: return Gate(GateKind::H, {a});
                  case 1: return Gate(GateKind::T, {a});
                  case 2: return Gate(GateKind::Rx, {a}, rng.uniform(-3, 3));
                  case 3: return Gate(GateKind::Rz, {a}, rng.uniform(-3, 3));
                  case 4: return Gate(GateKind::CNOT, {a, b});
                  case 5: return Gate(GateKind::CZ, {a, b});
                  case 6: return Gate(GateKind::ZZ, {a, b}, rng.uniform(-3, 3));
                  default: return Gate(GateKind::CCX, {a, b, c});
                }
            }();
            kernels.push_back(kernelFor(gate, n));
        }

        const AmpVector input = randomState(n, 9000 + trial);
        const std::uint64_t dim = input.size();
        AmpVector baseline = input;
        for (const auto& k : kernels)
            applyKernel(k, baseline.data(), dim, policyFor(SimdMode::Off, 1));

        for (SimdMode mode : distinctModes()) {
            for (int threads : {1, 4}) {
                AmpVector out = input;
                for (const auto& k : kernels)
                    applyKernel(k, out.data(), dim, policyFor(mode, threads));
                for (std::uint64_t i = 0; i < dim; ++i) {
                    ASSERT_EQ(baseline[i].real(), out[i].real())
                        << "trial " << trial << " simd="
                        << simdLevelName(resolveSimdMode(mode)) << " threads="
                        << threads << " index " << i;
                    ASSERT_EQ(baseline[i].imag(), out[i].imag())
                        << "trial " << trial << " index " << i;
                }
            }
        }
    }
}

TEST(SimdParityTest, BlockedSweepMatchesGatherSweepBitwise)
{
    // The cache-blocked run sweep and the PR 7 gather-only sweep evaluate
    // the same arithmetic in the same association — bitwise equal at every
    // level, including a pre-scale.
    const std::size_t n = 8;
    std::uint64_t seed = 7000;
    const std::vector<Gate> gates = {
        Gate(GateKind::H, {2}),
        Gate(GateKind::Rz, {5}, 0.9),
        Gate(GateKind::ZZ, {3, 6}, -0.4),
        Gate(GateKind::X, {4}),
        Gate(GateKind::CNOT, {1, 6}),
        Gate(GateKind::CZ, {2, 7}),
    };
    const Complex preScale{0.8, -0.15};
    for (const Gate& g : gates) {
        SCOPED_TRACE(g.name());
        const GateKernel kernel = kernelFor(g, n);
        const AmpVector input = randomState(n, seed++);
        const std::uint64_t dim = input.size();
        for (SimdMode mode : distinctModes()) {
            AmpVector blocked = input;
            AmpVector gathered = input;
            applyKernel(kernel, blocked.data(), dim, policyFor(mode, 1),
                        preScale);
            applyKernelUnblocked(kernel, gathered.data(), dim,
                                 policyFor(mode, 1), preScale);
            for (std::uint64_t i = 0; i < dim; ++i) {
                ASSERT_EQ(blocked[i].real(), gathered[i].real())
                    << g.name() << " simd="
                    << simdLevelName(resolveSimdMode(mode)) << " index " << i;
                ASSERT_EQ(blocked[i].imag(), gathered[i].imag())
                    << g.name() << " index " << i;
            }
        }
    }
}

} // namespace
} // namespace qkc
