/**
 * Path-scheduled execution plans (ISSUE 10): the linear planner is a pure
 * annotation over the classic plan, active planners materialize fusion
 * groups as MxM tree tasks with a thread-count-invariant kernel stream,
 * and rebinds keep frozen subtrees while refusing structure changes.
 */
#include "exec/execution_plan.h"

#include <gtest/gtest.h>

#include "circuit/fusion.h"
#include "circuit/simulation_path.h"
#include "statevector/statevector_simulator.h"

namespace qkc {
namespace {

PathOptions
pathOf(const char* spec)
{
    PathOptions o;
    EXPECT_TRUE(parsePathPlanner(spec, &o));
    return o;
}

/** Fixed H/CNOT prefix feeding a parameterized Rz suffix. */
Circuit
frozenPrefixCircuit(double theta)
{
    Circuit c(3);
    c.h(0).h(1).h(2).cnot(0, 1).cnot(1, 2);
    c.rz(0, theta).rz(1, theta + 0.1).rz(2, theta + 0.2);
    return c;
}

void
expectSameKernelStream(const ExecutionPlan& a, const ExecutionPlan& b)
{
    ASSERT_EQ(a.circuit.size(), b.circuit.size());
    for (std::size_t i = 0; i < a.circuit.size(); ++i) {
        const auto& oa = a.circuit.operations()[i];
        const auto& ob = b.circuit.operations()[i];
        ASSERT_EQ(oa.index(), ob.index()) << "op " << i;
        const auto* ga = std::get_if<Gate>(&oa);
        if (!ga)
            continue;
        const auto* gb = std::get_if<Gate>(&ob);
        ASSERT_EQ(ga->qubits(), gb->qubits()) << "op " << i;
        const Matrix ma = ga->unitary();
        const Matrix mb = gb->unitary();
        ASSERT_EQ(ma.rows(), mb.rows());
        for (std::size_t r = 0; r < ma.rows(); ++r)
            for (std::size_t col = 0; col < ma.cols(); ++col)
                EXPECT_EQ(ma(r, col), mb(r, col)) << "op " << i;
    }
}

void
expectSameState(const StateVector& a, const StateVector& b)
{
    ASSERT_EQ(a.dimension(), b.dimension());
    for (std::uint64_t i = 0; i < a.dimension(); ++i)
        EXPECT_EQ(a.amplitude(i), b.amplitude(i)) << "basis " << i;
}

TEST(PathPlanTest, LinearOverloadEqualsClassicPlan)
{
    const Circuit c = frozenPrefixCircuit(0.3);
    ExecPolicy policy;
    const ExecutionPlan classic = planCircuit(c, policy);
    const ExecutionPlan linear = planCircuit(c, policy, pathOf("linear"));

    EXPECT_FALSE(linear.pathScheduled());
    EXPECT_EQ(linear.path.planner, PathPlanner::Linear);
    EXPECT_EQ(linear.path.mmNodes, 0u);
    EXPECT_FALSE(linear.path.empty());
    EXPECT_EQ(linear.sourceHash, structureHash(c));
    expectSameKernelStream(classic, linear);
    ASSERT_EQ(classic.ops.size(), linear.ops.size());
}

TEST(PathPlanTest, AutoResolvesToLinear)
{
    const Circuit c = frozenPrefixCircuit(0.3);
    ExecPolicy policy;
    const ExecutionPlan plan = planCircuit(c, policy, PathOptions{});
    EXPECT_FALSE(plan.pathScheduled());
    EXPECT_EQ(plan.path.planner, PathPlanner::Linear);
}

TEST(PathPlanTest, PairwisePlanShape)
{
    const Circuit c = frozenPrefixCircuit(0.3);
    ExecPolicy policy;
    const ExecutionPlan plan = planCircuit(c, policy, pathOf("pairwise"));

    EXPECT_TRUE(plan.pathScheduled());
    EXPECT_EQ(plan.path.planner, PathPlanner::Pairwise);
    EXPECT_GT(plan.mmProducts, 0u);
    EXPECT_EQ(plan.frozenGroup.size(), plan.recipe.groups.size());
    EXPECT_EQ(plan.frozenOp.size(), plan.ops.size());

    // The planned circuit is exactly the channel-barrier fusion output.
    FusionOptions fo;
    fo.barrierChannels = true;
    const Circuit fused = fuseGates(c, fo);
    ASSERT_EQ(plan.circuit.size(), fused.size());

    // The prefix groups are frozen; the Rz groups are not.
    bool anyFrozen = false;
    bool anyHot = false;
    for (std::size_t g = 0; g < plan.frozenGroup.size(); ++g) {
        anyFrozen = anyFrozen || plan.frozenGroup[g];
        anyHot = anyHot || !plan.frozenGroup[g];
    }
    EXPECT_TRUE(anyFrozen);
    EXPECT_TRUE(anyHot);
}

TEST(PathPlanTest, KernelStreamIsThreadCountInvariant)
{
    const Circuit c = frozenPrefixCircuit(0.4);
    ExecPolicy one;
    one.threads = 1;
    ExecPolicy four;
    four.threads = 4;
    const ExecutionPlan a = planCircuit(c, one, pathOf("pairwise"));
    const ExecutionPlan b = planCircuit(c, four, pathOf("pairwise"));
    expectSameKernelStream(a, b);
}

TEST(PathPlanTest, PairwiseExecutionBitIdenticalToLinear)
{
    const Circuit c = frozenPrefixCircuit(0.5);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        ExecPolicy policy;
        policy.threads = threads;
        StateVectorSimulator sim(policy);
        const StateVector linear =
            sim.simulatePlanned(planCircuit(c, policy, pathOf("linear")));
        const StateVector pairwise =
            sim.simulatePlanned(planCircuit(c, policy, pathOf("pairwise")));
        const StateVector bracket =
            sim.simulatePlanned(planCircuit(c, policy, pathOf("bracket4")));
        expectSameState(linear, pairwise);
        expectSameState(linear, bracket);
    }
}

TEST(PathPlanTest, RebindKeepsFrozenSubtrees)
{
    ExecPolicy policy;
    ExecutionPlan plan =
        planCircuit(frozenPrefixCircuit(0.3), policy, pathOf("pairwise"));

    const Circuit rebound = frozenPrefixCircuit(0.9);
    ASSERT_TRUE(tryRebindPlan(plan, rebound));
    EXPECT_GT(plan.cachedSubtrees, 0u);

    // The rebound plan executes exactly like a fresh plan of the new values.
    StateVectorSimulator sim(policy);
    const StateVector viaRebind = sim.simulatePlanned(plan);
    const StateVector viaFresh =
        sim.simulatePlanned(planCircuit(rebound, policy, pathOf("pairwise")));
    expectSameState(viaRebind, viaFresh);
}

TEST(PathPlanTest, RebindRefusesStructureChange)
{
    ExecPolicy policy;
    ExecutionPlan plan =
        planCircuit(frozenPrefixCircuit(0.3), policy, pathOf("pairwise"));

    Circuit other(3);
    other.h(0).h(1).h(2).cnot(0, 1).cnot(1, 2);
    other.rx(0, 0.3).rz(1, 0.4).rz(2, 0.5); // rz -> rx at one position
    EXPECT_FALSE(tryRebindPlan(plan, other));
}

} // namespace
} // namespace qkc
