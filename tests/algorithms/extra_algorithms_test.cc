#include <gtest/gtest.h>

#include <cmath>

#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "statevector/statevector_simulator.h"

namespace qkc {
namespace {

StateVectorSimulator gSim;

std::vector<double>
countingMarginal(const Circuit& c, std::size_t t)
{
    auto probs = gSim.simulate(c).probabilities();
    std::vector<double> marg(std::size_t{1} << t, 0.0);
    std::size_t rest = c.numQubits() - t;
    for (std::size_t i = 0; i < probs.size(); ++i)
        marg[i >> rest] += probs[i];
    return marg;
}

class QpeExactPhaseTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, unsigned>> {};

TEST_P(QpeExactPhaseTest, ExactlyRepresentablePhases)
{
    auto [t, k] = GetParam();
    double phi = static_cast<double>(k) / std::pow(2.0, t);
    Circuit c = phaseEstimationCircuit(t, phi);
    auto marg = countingMarginal(c, t);
    for (std::size_t m = 0; m < marg.size(); ++m)
        EXPECT_NEAR(marg[m], m == k ? 1.0 : 0.0, 1e-9)
            << "t=" << t << " k=" << k << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Phases, QpeExactPhaseTest,
    ::testing::Values(std::make_tuple(3, 0u), std::make_tuple(3, 1u),
                      std::make_tuple(3, 5u), std::make_tuple(4, 7u),
                      std::make_tuple(4, 15u), std::make_tuple(2, 3u)));

TEST(QpeTest, InexactPhaseConcentratesNearTruth)
{
    const std::size_t t = 4;
    const double phi = 0.3;  // not a multiple of 1/16
    Circuit c = phaseEstimationCircuit(t, phi);
    auto marg = countingMarginal(c, t);
    // The two neighbors of 16*0.3 = 4.8 carry most of the mass.
    EXPECT_GT(marg[5] + marg[4], 0.8);
    // And the mode is the nearest grid point.
    std::size_t mode = 0;
    for (std::size_t m = 1; m < marg.size(); ++m)
        if (marg[m] > marg[mode])
            mode = m;
    EXPECT_EQ(mode, 5u);
}

TEST(QpeTest, RunsOnKcBackend)
{
    Circuit c = phaseEstimationCircuit(3, 3.0 / 8.0);
    KcSimulator kc(c);
    auto dist = kc.outcomeDistribution();
    auto exact = gSim.simulate(c).probabilities();
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(dist[x], exact[x], 1e-9);
}

class WStateTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WStateTest, UniformOverWeightOneStrings)
{
    std::size_t n = GetParam();
    auto probs = gSim.simulate(wStateCircuit(n)).probabilities();
    for (std::size_t x = 0; x < probs.size(); ++x) {
        int weight = __builtin_popcountll(x);
        EXPECT_NEAR(probs[x], weight == 1 ? 1.0 / static_cast<double>(n) : 0.0,
                    1e-9)
            << "n=" << n << " x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WStateTest, ::testing::Values(2, 3, 4, 5, 6));

TEST(WStateTest, AmplitudesArePositiveUniform)
{
    auto amps = gSim.simulate(wStateCircuit(4)).amplitudes();
    for (std::uint64_t x : {0b1000u, 0b0100u, 0b0010u, 0b0001u})
        EXPECT_TRUE(approxEqual(amps[x], Complex{0.5}, 1e-9)) << x;
}

TEST(WStateTest, KcHandlesDenseChainRuleEncoding)
{
    // The CRy custom gates take the dense 2-qubit path in the BN builder.
    Circuit c = wStateCircuit(4);
    KcSimulator kc(c);
    auto exact = gSim.simulate(c).probabilities();
    auto dist = kc.outcomeDistribution();
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(dist[x], exact[x], 1e-9) << x;
}

TEST(WStateTest, RejectsTrivialSizes)
{
    EXPECT_THROW(wStateCircuit(1), std::invalid_argument);
    EXPECT_THROW(phaseEstimationCircuit(0, 0.5), std::invalid_argument);
    EXPECT_THROW(phaseEstimationCircuit(11, 0.5), std::invalid_argument);
}

} // namespace
} // namespace qkc
