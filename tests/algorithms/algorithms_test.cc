#include "algorithms/algorithms.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "statevector/statevector_simulator.h"
#include "util/stats.h"

namespace qkc {
namespace {

StateVectorSimulator gSim;

/** Marginal distribution over a leading block of qubits. */
std::vector<double>
marginalOverLeading(const std::vector<double>& probs, std::size_t total,
                    std::size_t leading)
{
    std::vector<double> out(std::size_t{1} << leading, 0.0);
    for (std::size_t i = 0; i < probs.size(); ++i)
        out[i >> (total - leading)] += probs[i];
    return out;
}

TEST(AlgorithmsTest, BellState)
{
    auto probs = gSim.simulate(bellCircuit()).probabilities();
    EXPECT_NEAR(probs[0], 0.5, 1e-12);
    EXPECT_NEAR(probs[3], 0.5, 1e-12);
}

TEST(AlgorithmsTest, GhzState)
{
    auto probs = gSim.simulate(ghzCircuit(5)).probabilities();
    EXPECT_NEAR(probs[0], 0.5, 1e-12);
    EXPECT_NEAR(probs[31], 0.5, 1e-12);
    double rest = 0.0;
    for (std::size_t i = 1; i < 31; ++i)
        rest += probs[i];
    EXPECT_NEAR(rest, 0.0, 1e-12);
}

TEST(AlgorithmsTest, ChshCorrelationIsCosine)
{
    // E(thetaA, thetaB) = cos(thetaA - thetaB) on a Bell pair.
    for (double a : {0.0, M_PI / 2}) {
        for (double b : {M_PI / 4, -M_PI / 4}) {
            auto probs = gSim.simulate(chshCircuit(a, b)).probabilities();
            double e = probs[0] - probs[1] - probs[2] + probs[3];
            EXPECT_NEAR(e, std::cos(a - b), 1e-9);
        }
    }
}

TEST(AlgorithmsTest, ChshViolation)
{
    // S = E(0,pi/4) + E(0,-pi/4) + E(pi/2,pi/4) - E(pi/2,-pi/4) = 2 sqrt(2).
    auto corr = [&](double a, double b) {
        auto probs = gSim.simulate(chshCircuit(a, b)).probabilities();
        return probs[0] - probs[1] - probs[2] + probs[3];
    };
    double s = corr(0, M_PI / 4) + corr(0, -M_PI / 4) +
               corr(M_PI / 2, M_PI / 4) - corr(M_PI / 2, -M_PI / 4);
    EXPECT_NEAR(s, 2.0 * std::sqrt(2.0), 1e-9);
    EXPECT_GT(s, 2.0);  // violates the classical bound
}

TEST(AlgorithmsTest, TeleportationDeliversState)
{
    for (double theta : {0.0, 0.4, 1.1, M_PI / 2, 2.7}) {
        auto probs = gSim.simulate(teleportationCircuit(theta)).probabilities();
        // Marginal of qubit 2 (the low bit).
        double p1 = 0.0;
        for (std::size_t i = 0; i < probs.size(); ++i)
            if (i & 1)
                p1 += probs[i];
        EXPECT_NEAR(p1, std::sin(theta / 2) * std::sin(theta / 2), 1e-9)
            << "theta=" << theta;
    }
}

TEST(AlgorithmsTest, DeutschJozsaConstant)
{
    const std::size_t n = 4;
    auto probs = gSim.simulate(deutschJozsaCircuit(n, 0)).probabilities();
    auto marg = marginalOverLeading(probs, n + 1, n);
    EXPECT_NEAR(marg[0], 1.0, 1e-9);
}

TEST(AlgorithmsTest, DeutschJozsaBalancedNeverAllZero)
{
    const std::size_t n = 4;
    for (std::uint64_t mask : {0b1000ULL, 0b0110ULL, 0b1111ULL}) {
        auto probs = gSim.simulate(deutschJozsaCircuit(n, mask)).probabilities();
        auto marg = marginalOverLeading(probs, n + 1, n);
        EXPECT_NEAR(marg[0], 0.0, 1e-9) << "mask=" << mask;
    }
}

class BernsteinVaziraniTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BernsteinVaziraniTest, RecoversHiddenString)
{
    const std::size_t n = 5;
    std::uint64_t a = GetParam();
    auto probs = gSim.simulate(bernsteinVaziraniCircuit(n, a)).probabilities();
    auto marg = marginalOverLeading(probs, n + 1, n);
    EXPECT_NEAR(marg[a], 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(HiddenStrings, BernsteinVaziraniTest,
                         ::testing::Values(0b00001, 0b10000, 0b10101, 0b11111,
                                           0b01110));

TEST(AlgorithmsTest, SimonOutputsOrthogonalToPeriod)
{
    const std::size_t n = 4;
    const std::uint64_t s = 0b1010;
    auto probs = gSim.simulate(simonCircuit(n, s)).probabilities();
    auto marg = marginalOverLeading(probs, 2 * n, n);
    for (std::uint64_t y = 0; y < (1u << n); ++y) {
        int dot = __builtin_popcountll(y & s) & 1;
        if (dot == 1) {
            EXPECT_NEAR(marg[y], 0.0, 1e-9) << "y=" << y;
        }
    }
    // Orthogonal subspace is uniform: 2^(n-1) outcomes at 1/2^(n-1).
    for (std::uint64_t y = 0; y < (1u << n); ++y) {
        int dot = __builtin_popcountll(y & s) & 1;
        if (dot == 0) {
            EXPECT_NEAR(marg[y], 1.0 / 8.0, 1e-9) << "y=" << y;
        }
    }
}

class HiddenShiftTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HiddenShiftTest, RecoversShift)
{
    const std::size_t n = 6;
    std::uint64_t s = GetParam();
    auto probs = gSim.simulate(hiddenShiftCircuit(n, s)).probabilities();
    EXPECT_NEAR(probs[s], 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shifts, HiddenShiftTest,
                         ::testing::Values(0b000000, 0b000001, 0b101010,
                                           0b110011, 0b111111));

TEST(AlgorithmsTest, QftOfZeroIsUniform)
{
    const std::size_t n = 4;
    auto probs = gSim.simulate(qftCircuit(n)).probabilities();
    for (double p : probs)
        EXPECT_NEAR(p, 1.0 / 16.0, 1e-9);
}

TEST(AlgorithmsTest, QftInverseRoundTrip)
{
    const std::size_t n = 4;
    Circuit c(n);
    // Prepare a nontrivial basis state, QFT then inverse QFT.
    c.x(1).x(3);
    c.extend(qftCircuit(n));
    c.extend(inverseQftCircuit(n));
    auto probs = gSim.simulate(c).probabilities();
    EXPECT_NEAR(probs[basisIndex({0, 1, 0, 1})], 1.0, 1e-9);
}

TEST(AlgorithmsTest, QftPeriodicStateConcentrates)
{
    // QFT of the period-2 state (|00> + |10>)/sqrt(2) on 2 qubits
    // concentrates on indices 0 and 2.
    Circuit c(2);
    c.h(0);
    c.extend(qftCircuit(2));
    auto probs = gSim.simulate(c).probabilities();
    EXPECT_NEAR(probs[0] + probs[2], 1.0, 1e-9);
}

class GroverTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(GroverTest, FindsMarkedElement)
{
    auto [n, marked] = GetParam();
    Circuit c = groverCircuit(n, marked);
    auto probs = gSim.simulate(c).probabilities();
    auto marg = marginalOverLeading(probs, c.numQubits(), n);
    // Optimal iteration count gives success probability >= ~0.9 for n >= 2.
    EXPECT_GT(marg[marked], 0.8) << "n=" << n << " marked=" << marked;
}

INSTANTIATE_TEST_SUITE_P(
    SearchSpaces, GroverTest,
    ::testing::Values(std::make_tuple(2, 0b00), std::make_tuple(2, 0b11),
                      std::make_tuple(3, 0b101), std::make_tuple(3, 0b010),
                      std::make_tuple(4, 0b1001), std::make_tuple(4, 0b1111),
                      std::make_tuple(4, 0b0000)));

TEST(AlgorithmsTest, MultiplicativeOrders)
{
    EXPECT_EQ(multiplicativeOrder(2, 15), 4u);
    EXPECT_EQ(multiplicativeOrder(4, 15), 2u);
    EXPECT_EQ(multiplicativeOrder(7, 15), 4u);
    EXPECT_EQ(multiplicativeOrder(8, 15), 4u);
    EXPECT_EQ(multiplicativeOrder(11, 15), 2u);
    EXPECT_EQ(multiplicativeOrder(13, 15), 4u);
    EXPECT_EQ(multiplicativeOrder(14, 15), 2u);
}

class ShorTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShorTest, PhasePeaksAtMultiplesOfInverseOrder)
{
    unsigned a = GetParam();
    const std::size_t t = 4;
    Circuit c = shorOrderFindingCircuit(t, a);
    auto probs = gSim.simulate(c).probabilities();
    auto marg = marginalOverLeading(probs, c.numQubits(), t);

    unsigned r = multiplicativeOrder(a, 15);
    // r divides 2^t here, so phase estimation is exact: mass sits only on
    // multiples of 2^t / r, each with probability 1/r.
    std::size_t step = (1u << t) / r;
    for (std::size_t m = 0; m < (1u << t); ++m) {
        if (m % step == 0) {
            EXPECT_NEAR(marg[m], 1.0 / r, 1e-9) << "a=" << a << " m=" << m;
        } else {
            EXPECT_NEAR(marg[m], 0.0, 1e-9) << "a=" << a << " m=" << m;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Bases, ShorTest, ::testing::Values(2, 4, 7, 8, 11, 13, 14));

TEST(AlgorithmsTest, ShorRejectsBadBase)
{
    EXPECT_THROW(shorOrderFindingCircuit(3, 3), std::invalid_argument);
    EXPECT_THROW(shorOrderFindingCircuit(3, 1), std::invalid_argument);
}

TEST(AlgorithmsTest, RcsShapeAndNormalization)
{
    Rng rng(2021);
    Circuit c = rcsCircuit(2, 3, 6, rng);
    EXPECT_EQ(c.numQubits(), 6u);
    EXPECT_GT(c.gateCount(), 6u);
    auto sv = gSim.simulate(c);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

TEST(AlgorithmsTest, RcsIsRandomized)
{
    Rng rngA(1), rngB(2);
    Circuit a = rcsCircuit(2, 2, 4, rngA);
    Circuit b = rcsCircuit(2, 2, 4, rngB);
    // Same template, different single-qubit draws: distributions differ.
    auto pa = gSim.simulate(a).probabilities();
    auto pb = gSim.simulate(b).probabilities();
    double diff = 0.0;
    for (std::size_t i = 0; i < pa.size(); ++i)
        diff += std::abs(pa[i] - pb[i]);
    EXPECT_GT(diff, 1e-3);
}

TEST(AlgorithmsTest, NoisyBellMatchesPaperExample)
{
    Circuit c = noisyBellCircuit(0.36);
    EXPECT_EQ(c.gateCount(), 2u);
    EXPECT_EQ(c.noiseCount(), 1u);
    const auto& ch = std::get<NoiseChannel>(c.operations()[1]);
    EXPECT_EQ(ch.kind(), NoiseKind::PhaseDamping);
}

} // namespace
} // namespace qkc
