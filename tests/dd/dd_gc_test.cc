/**
 * Memory-lifecycle tests for the QMDD package (ISSUE 6): reference counts,
 * protected roots, mark-and-sweep collection with free-list reuse,
 * compute-table coherence across sweeps, and the session-level guarantees —
 * aggressive GC never changes payloads, and long noisy runs keep the live
 * node count bounded.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "circuit/gate.h"
#include "dd/dd_package.h"
#include "vqa/simulator_api.h"

namespace qkc {
namespace {

/** Builds the n-qubit GHZ state with H + a CNOT ladder. */
VEdge
makeGhz(DdPackage& pkg, std::size_t n)
{
    VEdge state = pkg.makeZeroState();
    state = pkg.apply(
        pkg.makeGateDd(Gate(GateKind::H, {0}).unitary(), {0}), state);
    for (std::size_t q = 1; q < n; ++q) {
        state = pkg.apply(pkg.makeGateDd(
                              Gate(GateKind::CNOT, {q - 1, q}).unitary(),
                              {q - 1, q}),
                          state);
    }
    return state;
}

/** Collects every vector node reachable from `state`. */
std::unordered_set<const VNode*>
reachable(const VEdge& state)
{
    std::unordered_set<const VNode*> seen;
    std::vector<const VNode*> stack;
    if (state.node != nullptr)
        stack.push_back(state.node);
    while (!stack.empty()) {
        const VNode* n = stack.back();
        stack.pop_back();
        if (!seen.insert(n).second)
            continue;
        for (const VEdge& c : n->children)
            if (c.node != nullptr)
                stack.push_back(c.node);
    }
    return seen;
}

TEST(DdGcTest, UnreachableNodesAreCollectedAndReused)
{
    DdPackage pkg(6);
    VEdge ghz = makeGhz(pkg, 6);
    const auto deadNodes = reachable(ghz);
    const std::size_t liveBefore = pkg.stats().liveVNodes;
    const std::size_t allocatedBefore = pkg.stats().allocatedVNodes;
    ASSERT_GT(liveBefore, 0u);

    // Nothing is protected: a sweep evicts every node (vector and matrix).
    const std::size_t collected = pkg.garbageCollect();
    EXPECT_GE(collected, liveBefore);
    EXPECT_EQ(pkg.stats().liveVNodes, 0u);
    EXPECT_EQ(pkg.stats().liveMNodes, 0u);
    EXPECT_EQ(pkg.stats().gcRuns, 1u);
    EXPECT_EQ(pkg.stats().nodesCollected, collected);
    // Lifetime allocation counters never decrease.
    EXPECT_EQ(pkg.stats().allocatedVNodes, allocatedBefore);

    // Rebuilding recycles collected arena slots through the free list: at
    // least one new node must land on an address the dead diagram used,
    // and the arena must not have grown.
    VEdge again = makeGhz(pkg, 6);
    bool reused = false;
    for (const VNode* n : reachable(again))
        reused |= deadNodes.count(n) > 0;
    EXPECT_TRUE(reused);
    EXPECT_EQ(pkg.stats().liveVNodes, liveBefore);

    // Rebuilt contents are intact.
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(pkg.amplitude(again, 0).real(), r, 1e-12);
    EXPECT_NEAR(pkg.amplitude(again, 63).real(), r, 1e-12);
}

TEST(DdGcTest, ProtectedRootsAndDescendantsSurviveSweeps)
{
    DdPackage pkg(5);
    VEdge ghz = makeGhz(pkg, 5);
    pkg.protect(ghz);
    EXPECT_EQ(pkg.protectedRootCount(), 1u);

    // Everything NOT reachable from the root dies; the root's own chain —
    // all 2n-1 nodes — survives with its amplitudes intact.
    pkg.garbageCollect();
    EXPECT_EQ(pkg.stats().liveVNodes, pkg.nodeCount(ghz));
    EXPECT_EQ(pkg.stats().liveVNodes, 2u * 5u - 1u);
    const double r = 1.0 / std::sqrt(2.0);
    EXPECT_NEAR(pkg.amplitude(ghz, 0).real(), r, 1e-12);
    EXPECT_NEAR(pkg.amplitude(ghz, 31).real(), r, 1e-12);
    EXPECT_NEAR(pkg.normSquared(ghz), 1.0, 1e-12);

    // Double protection is multiset-like: two unprotects to release.
    pkg.protect(ghz);
    pkg.unprotect(ghz);
    pkg.garbageCollect();
    EXPECT_EQ(pkg.stats().liveVNodes, 2u * 5u - 1u);
    pkg.unprotect(ghz);
    pkg.garbageCollect();
    EXPECT_EQ(pkg.stats().liveVNodes, 0u);

    // Unprotecting an unregistered edge is a logic error, not a crash.
    EXPECT_THROW(pkg.unprotect(ghz), std::logic_error);
}

TEST(DdGcTest, ReferenceCountsKeepNodesAliveWithoutRoots)
{
    DdPackage pkg(4);
    VEdge state = makeGhz(pkg, 4);
    pkg.incRef(state);
    pkg.garbageCollect();
    EXPECT_EQ(pkg.stats().liveVNodes, pkg.nodeCount(state));
    EXPECT_NEAR(pkg.normSquared(state), 1.0, 1e-12);

    pkg.decRef(state);
    pkg.garbageCollect();
    EXPECT_EQ(pkg.stats().liveVNodes, 0u);
    EXPECT_THROW(pkg.decRef(state), std::logic_error);
}

TEST(DdGcTest, ComputeTablesStayCoherentAcrossCollection)
{
    DdPackage pkg(5);
    VEdge state = makeGhz(pkg, 5);
    pkg.protect(state);
    MEdge h2 = pkg.makeGateDd(Gate(GateKind::H, {2}).unitary(), {2});
    pkg.protect(h2);

    VEdge before = pkg.apply(h2, state);
    std::vector<Complex> amps;
    for (std::uint64_t x = 0; x < 32; ++x)
        amps.push_back(pkg.amplitude(before, x));

    // The sweep drops the memo tables (they key on raw node pointers and
    // collected addresses get recycled). The same apply must recompute —
    // misses strictly up — and yield identical amplitudes.
    pkg.garbageCollect();
    const std::size_t missesAfterGc = pkg.stats().applyMisses;
    VEdge after = pkg.apply(h2, state);
    EXPECT_GT(pkg.stats().applyMisses, missesAfterGc);
    for (std::uint64_t x = 0; x < 32; ++x) {
        EXPECT_EQ(pkg.amplitude(after, x).real(), amps[x].real()) << x;
        EXPECT_EQ(pkg.amplitude(after, x).imag(), amps[x].imag()) << x;
    }
}

TEST(DdGcTest, SweepReclaimsInternedWeights)
{
    DdPackage pkg(4);
    VEdge state = pkg.makeZeroState();
    for (int k = 0; k < 8; ++k) {
        state = pkg.apply(pkg.makeGateDd(
                              Gate(GateKind::Ry, {static_cast<std::size_t>(
                                                     k % 4)},
                                   0.1 + 0.2 * k)
                                  .unitary(),
                              {static_cast<std::size_t>(k % 4)}),
                          state);
    }
    const std::size_t weightsBefore = pkg.internedWeightCount();
    pkg.garbageCollect();
    // Nothing was protected: only the table-independent residue (if any)
    // may remain, so the interned count must shrink.
    EXPECT_LT(pkg.internedWeightCount(), weightsBefore);
}

TEST(DdGcTest, ThresholdTriggerAndKnobValidation)
{
    DdPackage pkg(4);
    pkg.setGc(true, 4);
    EXPECT_TRUE(pkg.gcEnabled());
    EXPECT_EQ(pkg.gcThreshold(), 4u);

    VEdge ghz = makeGhz(pkg, 4); // well past 4 live nodes
    EXPECT_TRUE(pkg.maybeGarbageCollect());
    EXPECT_EQ(pkg.stats().gcRuns, 1u);
    (void)ghz; // dead after the sweep by design

    pkg.setGc(false);
    EXPECT_FALSE(pkg.maybeGarbageCollect());
    EXPECT_EQ(pkg.stats().gcRuns, 1u);

    EXPECT_THROW(pkg.setGc(true, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Session-level guarantees
// ---------------------------------------------------------------------------

Circuit
layeredAnsatz(std::size_t n, double theta)
{
    Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    for (std::size_t q = 0; q + 1 < n; ++q) {
        c.cnot(q, q + 1);
        c.rz(q + 1, theta + 0.1 * static_cast<double>(q));
    }
    for (std::size_t q = 0; q < n; ++q)
        c.rx(q, 0.4 + 0.05 * static_cast<double>(q));
    return c;
}

/** Runs one task on a fresh session of `spec` with a fixed-seed RNG. */
Result
runOnce(const std::string& spec, const Circuit& c, const Task& task,
        std::uint64_t seed)
{
    auto backend = makeBackend(spec);
    auto session = backend->open(c);
    Rng rng(seed);
    return session->run(task, rng);
}

TEST(DdGcTest, AggressiveGcSamplingIsBitIdenticalToGcOff)
{
    // gcthreshold=1 collects at every safe point; payloads must not move a
    // bit relative to the legacy gc=0 lifecycle, ideal and noisy alike.
    const Circuit ideal = layeredAnsatz(5, 0.3);
    const Circuit noisy =
        layeredAnsatz(4, 0.7).withNoiseAfterEachGate(NoiseKind::Depolarizing,
                                                     0.02);
    for (std::uint64_t seed : {7u, 42u, 1234u}) {
        const Result aggressive = runOnce("dd:gc=1,gcthreshold=1", ideal,
                                          Sample{256}, seed);
        const Result off = runOnce("dd:gc=0", ideal, Sample{256}, seed);
        EXPECT_EQ(aggressive.samples, off.samples) << "ideal seed=" << seed;

        const Result aggressiveNoisy = runOnce("dd:gc=1,gcthreshold=1", noisy,
                                               Sample{128}, seed);
        const Result offNoisy = runOnce("dd:gc=0", noisy, Sample{128}, seed);
        EXPECT_EQ(aggressiveNoisy.samples, offNoisy.samples)
            << "noisy seed=" << seed;
        EXPECT_GT(aggressiveNoisy.meta.ddMemory.gcRuns, 0u);
    }
}

TEST(DdGcTest, ExpectationMatchesAcrossLifecycles)
{
    const Circuit c = layeredAnsatz(5, 0.9);
    PauliSum h;
    h.add(0.5, PauliString("ZZIII"))
        .add(-0.25, PauliString("IXXII"))
        .add(1.5, PauliString("IIIYZ"));
    const Result a = runOnce("dd:gc=1,gcthreshold=1", c, Expectation{h}, 3);
    const Result b = runOnce("dd:gc=0", c, Expectation{h}, 3);
    EXPECT_TRUE(a.meta.exact);
    EXPECT_NEAR(a.expectation, b.expectation, 1e-12);
}

TEST(DdGcTest, RebindKeepsOnePackageAndCollectsTheOldState)
{
    // The tentpole behavior: with GC on, a variational sweep reuses one
    // package — planReuses grows, live nodes stay bounded by one binding's
    // working set, and collections actually happen.
    auto backend = makeBackend("dd:gc=1");
    auto session = backend->open(layeredAnsatz(5, 0.0));
    Rng rng(9);

    Result last;
    for (int i = 0; i < 12; ++i) {
        session->bind(layeredAnsatz(5, 0.1 * i));
        last = session->run(Probabilities{}, rng);
    }
    EXPECT_GT(last.meta.planReuses, 0u);
    EXPECT_GT(last.meta.ddMemory.gcRuns, 0u);
    EXPECT_GT(last.meta.ddMemory.nodesCollected, 0u);
    // Live nodes at rest reflect one binding, not twelve: the peak must be
    // far below 12x the final live count's order.
    EXPECT_LT(last.meta.ddMemory.liveVNodes + last.meta.ddMemory.liveMNodes,
              200u);

    // And the sweep is correct: last binding's distribution matches a
    // fresh session of the same circuit.
    const Result fresh =
        runOnce("dd:gc=1", layeredAnsatz(5, 1.1), Probabilities{}, 9);
    ASSERT_EQ(last.probabilities.size(), fresh.probabilities.size());
    for (std::size_t k = 0; k < fresh.probabilities.size(); ++k)
        EXPECT_NEAR(last.probabilities[k], fresh.probabilities[k], 1e-12);
}

TEST(DdGcTest, LongNoisyRunKeepsLiveNodesBounded)
{
    // The regression the ISSUE names: >= 5k trajectories on a noisy circuit
    // must not grow the arena without bound. With a small threshold the
    // collector runs many times and the high-water mark stays near one
    // trajectory's working set — far below the no-GC node total.
    const Circuit noisy =
        layeredAnsatz(4, 0.5).withNoiseAfterEachGate(NoiseKind::Depolarizing,
                                                     0.01);
    auto backend = makeBackend("dd:gc=1,gcthreshold=256");
    auto session = backend->open(noisy);
    Rng rng(21);
    const Result r = session->run(Sample{5000}, rng);

    EXPECT_EQ(r.samples.size(), 5000u);
    EXPECT_EQ(r.meta.trajectories, 5000u);
    EXPECT_GT(r.meta.ddMemory.gcRuns, 10u);
    EXPECT_GT(r.meta.ddMemory.nodesCollected, r.meta.ddMemory.peakLiveNodes);
    // Anti-thrash growth can raise the threshold past its floor, but the
    // peak must stay within a small multiple of it — bounded, not linear
    // in trajectories.
    EXPECT_LT(r.meta.ddMemory.peakLiveNodes, 2048u);
}

} // namespace
} // namespace qkc
