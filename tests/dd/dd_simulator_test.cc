/**
 * DdSimulator tests: ideal circuits must match the state-vector simulator
 * exactly; noisy circuits run Born-rule trajectories whose sampled
 * distribution must pass chi-square checks against the exhaustively
 * enumerated noisy distribution (including the paper's running noisy Bell
 * example with its non-unitary phase-damping channel).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "algorithms/algorithms.h"
#include "dd/dd_simulator.h"
#include "statevector/statevector_simulator.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

double
chiSquare(const std::vector<std::uint64_t>& samples,
          const std::vector<double>& dist)
{
    std::vector<double> counts(dist.size(), 0.0);
    for (std::uint64_t s : samples)
        counts[s] += 1.0;
    const double n = static_cast<double>(samples.size());
    double chi2 = 0.0;
    for (std::size_t x = 0; x < dist.size(); ++x) {
        const double expected = n * dist[x];
        if (expected < 1e-9) {
            EXPECT_EQ(counts[x], 0.0) << "outcome " << x << " impossible";
            continue;
        }
        const double diff = counts[x] - expected;
        chi2 += diff * diff / expected;
    }
    return chi2;
}

TEST(DdSimulatorTest, IdealAmplitudesMatchStateVector)
{
    for (std::uint64_t seed : {201u, 202u, 203u}) {
        Rng rng(seed);
        Circuit c = testing::randomCircuit(4, 14, rng, true);

        StateVector exact = StateVectorSimulator().simulate(c);
        DdSimulator dd;
        VEdge state = dd.simulate(c);

        for (std::uint64_t x = 0; x < exact.dimension(); ++x) {
            EXPECT_TRUE(approxEqual(dd.package().amplitude(state, x),
                                    exact.amplitude(x), 1e-9))
                << "seed=" << seed << " x=" << x;
        }
    }
}

TEST(DdSimulatorTest, DenseAndSwapCircuitsMatchStateVector)
{
    Rng rng(204);
    Circuit c = testing::randomDenseCircuit(4, 12, rng);

    auto exact = StateVectorSimulator().simulate(c).probabilities();
    auto ddDist = DdSimulator().distribution(c);
    ASSERT_EQ(ddDist.size(), exact.size());
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(ddDist[x], exact[x], 1e-9) << "x=" << x;
}

TEST(DdSimulatorTest, SimulateRejectsNoise)
{
    Circuit c = noisyBellCircuit(0.3);
    DdSimulator dd;
    EXPECT_THROW(dd.simulate(c), std::invalid_argument);
    EXPECT_THROW(dd.distribution(c), std::invalid_argument);
}

TEST(DdSimulatorTest, SamplingIsDeterministicGivenSeed)
{
    Circuit c = ghzCircuit(5);
    DdSimulator a, b;
    Rng rngA(42), rngB(42);
    EXPECT_EQ(a.sample(c, 64, rngA), b.sample(c, 64, rngB));

    Circuit noisy = c.withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.02);
    DdSimulator na, nb;
    Rng nRngA(43), nRngB(43);
    EXPECT_EQ(na.sampleNoisy(noisy, 32, nRngA),
              nb.sampleNoisy(noisy, 32, nRngB));
}

TEST(DdSimulatorTest, IdealGhzSamplesFollowBornRule)
{
    Circuit c = ghzCircuit(6);
    DdSimulator dd;
    Rng rng(7);
    auto samples = dd.sample(c, 4000, rng);

    std::map<std::uint64_t, std::size_t> counts;
    for (auto s : samples)
        ++counts[s];
    ASSERT_EQ(counts.size(), 2u); // only |0...0> and |1...1>
    const double c0 = static_cast<double>(counts[0]);
    const double c1 = static_cast<double>(counts[(1u << 6) - 1]);
    // chi-square with 1 dof at alpha = 0.001 -> 10.83.
    const double expected = 2000.0;
    const double chi2 = (c0 - expected) * (c0 - expected) / expected +
                        (c1 - expected) * (c1 - expected) / expected;
    EXPECT_LT(chi2, 10.83);
}

TEST(DdSimulatorTest, NoisyBellTrajectoriesPassChiSquare)
{
    // The paper's running example: Bell preparation with phase damping
    // (gamma = 0.36) between H and CNOT. Phase damping is a genuine channel
    // (non-unitary Kraus operators), so this exercises the Born-weighted
    // branch selection, not just mixture-of-unitaries sampling.
    Circuit c = noisyBellCircuit(0.36);
    auto exact = StateVectorSimulator().noisyDistributionExhaustive(c);

    DdSimulator dd;
    Rng rng(11);
    auto samples = dd.sampleNoisy(c, 2000, rng);

    // 3 free outcomes -> chi-square at alpha = 0.001 is 16.27.
    EXPECT_LT(chiSquare(samples, exact), 16.27);
}

TEST(DdSimulatorTest, MixtureNoiseTrajectoriesPassChiSquare)
{
    Circuit c = ghzCircuit(3).withNoiseAfterEachGate(NoiseKind::BitFlip, 0.05);
    auto exact = StateVectorSimulator().noisyDistributionExhaustive(c);

    DdSimulator dd;
    Rng rng(13);
    auto samples = dd.sampleNoisy(c, 2000, rng);

    // 7 free outcomes -> chi-square at alpha = 0.001 is 24.32.
    EXPECT_LT(chiSquare(samples, exact), 24.32);
}

TEST(DdSimulatorTest, TwoQubitChannelTrajectoriesPassChiSquare)
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    c.append(NoiseChannel::twoQubitDepolarizing(0, 1, 0.2));
    auto exact = StateVectorSimulator().noisyDistributionExhaustive(c);

    DdSimulator dd;
    Rng rng(17);
    auto samples = dd.sampleNoisy(c, 2000, rng);
    EXPECT_LT(chiSquare(samples, exact), 16.27);
}

} // namespace
} // namespace qkc
