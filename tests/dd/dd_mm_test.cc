/**
 * DdPackage::multiplyMM and the path executor (ISSUE 10): matrix-matrix
 * fusion must agree with sequential applies, memoize in its own compute
 * table, reject misaligned operands, keep protected intermediates across
 * GC, and serve frozen path subtrees from cache on repeat runs.
 */
#include "dd/dd_package.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "circuit/noise.h"
#include "circuit/simulation_path.h"
#include "dd/dd_simulator.h"

namespace qkc {
namespace {

Matrix
hadamard()
{
    const double s = 1.0 / std::sqrt(2.0);
    return Matrix{{Complex(s, 0.0), Complex(s, 0.0)},
                  {Complex(s, 0.0), Complex(-s, 0.0)}};
}

/** CNOT with qubits[0] (the MSB of the local basis) as control. */
Matrix
cnotMatrix()
{
    Matrix m(4, 4);
    m(0, 0) = Complex(1.0, 0.0);
    m(1, 1) = Complex(1.0, 0.0);
    m(2, 3) = Complex(1.0, 0.0);
    m(3, 2) = Complex(1.0, 0.0);
    return m;
}

TEST(DdMmTest, MultiplyMMFusesTwoGates)
{
    DdPackage pkg(2);
    const MEdge h = pkg.makeGateDd(hadamard(), {0});
    const MEdge cnot = pkg.makeGateDd(cnotMatrix(), {0, 1});

    // multiplyMM(a, b) is "a applied after b": one fused operator equals
    // the gate-by-gate build of the Bell state.
    const MEdge fused = pkg.multiplyMM(cnot, h);
    const VEdge viaFused = pkg.apply(fused, pkg.makeZeroState());
    const VEdge viaSeq = pkg.apply(cnot, pkg.apply(h, pkg.makeZeroState()));
    for (std::uint64_t basis = 0; basis < 4; ++basis)
        EXPECT_TRUE(approxEqual(pkg.amplitude(viaFused, basis),
                                pkg.amplitude(viaSeq, basis), 1e-12))
            << "basis " << basis;
}

TEST(DdMmTest, MmComputeTableServesRepeats)
{
    DdPackage pkg(3);
    const MEdge h = pkg.makeGateDd(hadamard(), {1});
    const MEdge cnot = pkg.makeGateDd(cnotMatrix(), {1, 2});
    (void)pkg.multiplyMM(cnot, h);
    const std::size_t hitsBefore = pkg.stats().mmHits;
    (void)pkg.multiplyMM(cnot, h);
    EXPECT_GT(pkg.stats().mmHits, hitsBefore);

    pkg.clearComputeTables();
    const std::size_t missesBefore = pkg.stats().mmMisses;
    (void)pkg.multiplyMM(cnot, h);
    EXPECT_GT(pkg.stats().mmMisses, missesBefore);
}

TEST(DdMmTest, RejectsMisalignedLevels)
{
    DdPackage pkg(2);
    const MEdge h = pkg.makeGateDd(hadamard(), {0});
    const MEdge terminal{nullptr, Complex(1.0, 0.0)};
    EXPECT_THROW((void)pkg.addM(h, terminal), std::logic_error);
    EXPECT_THROW((void)pkg.multiplyMM(h, terminal), std::logic_error);
}

TEST(DdMmTest, ProtectedProductSurvivesGarbageCollection)
{
    DdPackage pkg(2);
    const MEdge h = pkg.makeGateDd(hadamard(), {0});
    const MEdge cnot = pkg.makeGateDd(cnotMatrix(), {0, 1});
    const MEdge fused = pkg.multiplyMM(cnot, h);
    pkg.protect(fused);

    (void)pkg.garbageCollect();

    const VEdge state = pkg.apply(fused, pkg.makeZeroState());
    const double s = 1.0 / std::sqrt(2.0);
    EXPECT_TRUE(approxEqual(pkg.amplitude(state, 0), Complex(s, 0.0), 1e-12));
    EXPECT_TRUE(approxEqual(pkg.amplitude(state, 3), Complex(s, 0.0), 1e-12));
    pkg.unprotect(fused);
}

/** Layered fixed+parameterized circuit the path planners can fold. */
Circuit
layeredCircuit(std::size_t n, double theta)
{
    Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    for (std::size_t q = 0; q + 1 < n; ++q)
        c.cnot(q, q + 1);
    for (std::size_t q = 0; q < n; ++q)
        c.rz(q, theta + 0.1 * static_cast<double>(q));
    return c;
}

TEST(DdMmTest, SimulatePathMatchesGateByGateBuild)
{
    const Circuit c = layeredCircuit(5, 0.3);
    PathOptions o;
    ASSERT_TRUE(parsePathPlanner("pairwise", &o));
    const SimulationPath path = planSimulationPath(c, o);

    DdSimulator linear;
    const VEdge want = linear.simulate(c);
    DdSimulator paired;
    DdPathStats stats;
    const VEdge got = paired.simulatePath(c, path, &stats);

    EXPECT_GT(stats.mmProducts, 0u);
    for (std::uint64_t basis = 0; basis < 32; ++basis)
        EXPECT_TRUE(approxEqual(linear.package().amplitude(want, basis),
                                paired.package().amplitude(got, basis), 1e-9))
            << "basis " << basis;
}

TEST(DdMmTest, RepeatRunServesFrozenSubtrees)
{
    // All-fixed circuit: every MM subtree is frozen, so the second run
    // (same structure, same path) comes from the protected cache.
    Circuit c(4);
    for (std::size_t q = 0; q < 4; ++q)
        c.h(q);
    for (std::size_t q = 0; q + 1 < 4; ++q)
        c.cnot(q, q + 1);
    PathOptions o;
    ASSERT_TRUE(parsePathPlanner("pairwise", &o));
    const SimulationPath path = planSimulationPath(c, o);

    DdSimulator sim;
    DdPathStats first;
    (void)sim.simulatePath(c, path, &first);
    EXPECT_EQ(first.cachedSubtrees, 0u);
    DdPathStats second;
    (void)sim.simulatePath(c, path, &second);
    EXPECT_GT(second.cachedSubtrees, 0u);
    EXPECT_LT(second.mmProducts, first.mmProducts);

    sim.clearPathCache();
    DdPathStats third;
    (void)sim.simulatePath(c, path, &third);
    EXPECT_EQ(third.cachedSubtrees, 0u);
}

TEST(DdMmTest, SimulatePathRejectsNoisyCircuits)
{
    Circuit c(2);
    c.h(0);
    c.append(NoiseChannel::bitFlip(0, 0.05));
    c.cnot(0, 1);
    PathOptions o;
    ASSERT_TRUE(parsePathPlanner("pairwise", &o));
    const SimulationPath path = planSimulationPath(c, o);
    DdSimulator sim;
    EXPECT_THROW((void)sim.simulatePath(c, path), std::invalid_argument);
}

} // namespace
} // namespace qkc
