/**
 * Unit tests for the QMDD package: canonical normalization invariants,
 * unique-table deduplication (GHZ node counts grow linearly in qubits),
 * gate-matrix lowering, and compute-table memoization counters.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "circuit/gate.h"
#include "dd/dd_package.h"

namespace qkc {
namespace {

/** Collects every node reachable from `state`. */
std::unordered_set<const VNode*>
reachable(const VEdge& state)
{
    std::unordered_set<const VNode*> seen;
    std::vector<const VNode*> stack;
    if (state.node != nullptr)
        stack.push_back(state.node);
    while (!stack.empty()) {
        const VNode* n = stack.back();
        stack.pop_back();
        if (!seen.insert(n).second)
            continue;
        for (const VEdge& c : n->children) {
            if (c.node != nullptr)
                stack.push_back(c.node);
        }
    }
    return seen;
}

/** Builds the n-qubit GHZ state with H + a CNOT ladder. */
VEdge
makeGhz(DdPackage& pkg, std::size_t n)
{
    VEdge state = pkg.makeZeroState();
    state = pkg.apply(
        pkg.makeGateDd(Gate(GateKind::H, {0}).unitary(), {0}), state);
    for (std::size_t q = 1; q < n; ++q) {
        state = pkg.apply(pkg.makeGateDd(
                              Gate(GateKind::CNOT, {q - 1, q}).unitary(),
                              {q - 1, q}),
                          state);
    }
    return state;
}

TEST(DdPackageTest, BasisStatesHaveUnitAmplitude)
{
    DdPackage pkg(3);
    for (std::uint64_t x = 0; x < 8; ++x) {
        VEdge e = pkg.makeBasisState(x);
        for (std::uint64_t y = 0; y < 8; ++y) {
            Complex a = pkg.amplitude(e, y);
            if (x == y) {
                EXPECT_NEAR(a.real(), 1.0, 1e-12);
                EXPECT_NEAR(a.imag(), 0.0, 1e-12);
            } else {
                EXPECT_NEAR(norm2(a), 0.0, 1e-24);
            }
        }
        EXPECT_NEAR(pkg.normSquared(e), 1.0, 1e-12);
    }
}

TEST(DdPackageTest, UniqueTableDeduplicatesIdenticalStates)
{
    DdPackage pkg(4);
    VEdge a = pkg.makeBasisState(5);
    const std::size_t nodesAfterFirst = pkg.stats().liveVNodes;
    VEdge b = pkg.makeBasisState(5);

    // The second construction must resolve every level through the unique
    // table: identical node pointers, no new nodes, only hits.
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(pkg.stats().liveVNodes, nodesAfterFirst);
    EXPECT_EQ(pkg.stats().allocatedVNodes, nodesAfterFirst);
    EXPECT_GE(pkg.stats().vHits, 4u);
}

TEST(DdPackageTest, GhzNodeCountGrowsLinearly)
{
    // GHZ is the canonical structured state: one root plus the |0...0> and
    // |1...1> suffix chains, i.e. exactly 2n - 1 nodes — while the dense
    // representation pays 2^n amplitudes.
    for (std::size_t n : {4, 8, 12, 16, 20}) {
        DdPackage pkg(n);
        VEdge ghz = makeGhz(pkg, n);
        EXPECT_EQ(pkg.nodeCount(ghz), 2 * n - 1) << "n=" << n;

        const double r = 1.0 / std::sqrt(2.0);
        EXPECT_NEAR(pkg.amplitude(ghz, 0).real(), r, 1e-12);
        EXPECT_NEAR(pkg.amplitude(ghz, (std::uint64_t{1} << n) - 1).real(), r,
                    1e-12);
        EXPECT_NEAR(pkg.normSquared(ghz), 1.0, 1e-12);
    }
}

TEST(DdPackageTest, VectorNormalizationInvariants)
{
    DdPackage pkg(4);
    VEdge state = makeGhz(pkg, 4);
    // Stir in some phases and rotations so weights are genuinely complex.
    state = pkg.apply(
        pkg.makeGateDd(Gate(GateKind::T, {1}).unitary(), {1}), state);
    state = pkg.apply(
        pkg.makeGateDd(Gate(GateKind::Ry, {2}, 0.7).unitary(), {2}), state);
    state = pkg.apply(
        pkg.makeGateDd(Gate(GateKind::S, {3}).unitary(), {3}), state);

    for (const VNode* node : reachable(state)) {
        const Complex w0 = node->children[0].weight;
        const Complex w1 = node->children[1].weight;
        // Invariant 1: squared child weights sum to one (local Born rule).
        EXPECT_NEAR(norm2(w0) + norm2(w1), 1.0, 1e-12);
        // Invariant 2: the first non-zero child weight is real >= 0
        // (canonical phase).
        const Complex lead = norm2(w0) > 0.0 ? w0 : w1;
        EXPECT_NEAR(lead.imag(), 0.0, 1e-12);
        EXPECT_GE(lead.real(), 0.0);
        // Invariant 3: quasi-reduced — children are the next level or zero.
        for (const VEdge& c : node->children) {
            if (c.node != nullptr) {
                EXPECT_EQ(c.node->level, node->level + 1);
            }
        }
    }
}

TEST(DdPackageTest, GateDdMatchesUnitaryEntries)
{
    // M|x> read back column-wise must reproduce the embedded unitary, for a
    // 1-qubit, an adjacent 2-qubit, a reversed 2-qubit, and a 3-qubit gate.
    const std::vector<Gate> gates = {
        Gate(GateKind::H, {1}),
        Gate(GateKind::CNOT, {0, 2}),
        Gate(GateKind::CNOT, {2, 0}),
        Gate(GateKind::ZZ, {1, 2}, 0.9),
        Gate(GateKind::CCX, {0, 1, 2}),
    };
    for (const Gate& g : gates) {
        DdPackage pkg(3);
        MEdge m = pkg.makeGateDd(g.unitary(), g.qubits());

        // Build the full 8x8 unitary by Kronecker-embedding by hand: apply
        // to each basis state and read off every amplitude.
        for (std::uint64_t col = 0; col < 8; ++col) {
            VEdge out = pkg.apply(m, pkg.makeBasisState(col));
            for (std::uint64_t row = 0; row < 8; ++row) {
                // Expected entry: act with g on the bits of col.
                // Compute via the gate's local unitary.
                const auto& qs = g.qubits();
                std::size_t localCol = 0, localRow = 0;
                bool sameOutside = true;
                for (std::size_t j = 0; j < qs.size(); ++j) {
                    const std::size_t shift = 3 - 1 - qs[j];
                    localCol =
                        (localCol << 1) | ((col >> shift) & 1u);
                    localRow =
                        (localRow << 1) | ((row >> shift) & 1u);
                }
                for (std::size_t q = 0; q < 3; ++q) {
                    bool involved = false;
                    for (std::size_t qj : qs)
                        involved |= (qj == q);
                    if (!involved &&
                        (((col >> (2 - q)) & 1u) != ((row >> (2 - q)) & 1u)))
                        sameOutside = false;
                }
                const Complex expected =
                    sameOutside ? g.unitary()(localRow, localCol)
                                : Complex(0.0, 0.0);
                const Complex got = pkg.amplitude(out, row);
                EXPECT_TRUE(approxEqual(got, expected, 1e-12))
                    << g.name() << " row=" << row << " col=" << col;
            }
        }
    }
}

TEST(DdPackageTest, PauliStringDdMatchesPerQubitGateComposition)
{
    // The single n-qubit Pauli-string matrix DD must act identically to
    // composing one 2x2 gate DD per non-I factor, and stay linear-size.
    const std::vector<std::string> strings = {"XIZ", "IYI", "ZZX", "YXZ",
                                              "III"};
    for (const std::string& s : strings) {
        DdPackage pkg(3);
        VEdge state = makeGhz(pkg, 3);
        state = pkg.apply(
            pkg.makeGateDd(Gate(GateKind::T, {1}).unitary(), {1}), state);

        VEdge viaString = pkg.apply(pkg.makePauliDd(s), state);
        VEdge viaGates = state;
        for (std::size_t q = 0; q < 3; ++q) {
            if (s[q] == 'I')
                continue;
            const GateKind kind = s[q] == 'X'   ? GateKind::X
                                  : s[q] == 'Y' ? GateKind::Y
                                                : GateKind::Z;
            viaGates = pkg.apply(
                pkg.makeGateDd(Gate(kind, {q}).unitary(), {q}), viaGates);
        }
        for (std::uint64_t x = 0; x < 8; ++x) {
            EXPECT_TRUE(approxEqual(pkg.amplitude(viaString, x),
                                    pkg.amplitude(viaGates, x), 1e-12))
                << s << " x=" << x;
        }
        // Product operators factor level by level: one matrix node per
        // qubit, never an exponential blowup.
        EXPECT_LE(pkg.nodeCount(pkg.makePauliDd(s)), 3u);
    }

    DdPackage pkg(2);
    EXPECT_THROW(pkg.makePauliDd("X"), std::invalid_argument);
    EXPECT_THROW(pkg.makePauliDd("XQ"), std::invalid_argument);
}

TEST(DdPackageTest, AddCancellationYieldsZeroEdge)
{
    DdPackage pkg(3);
    VEdge e = pkg.makeBasisState(6);
    VEdge neg = e;
    neg.weight = -neg.weight;
    EXPECT_TRUE(pkg.add(e, neg).isZero());

    // Adding disjoint basis states keeps both amplitudes.
    VEdge sum = pkg.add(pkg.makeBasisState(1), pkg.makeBasisState(4));
    EXPECT_NEAR(pkg.amplitude(sum, 1).real(), 1.0, 1e-12);
    EXPECT_NEAR(pkg.amplitude(sum, 4).real(), 1.0, 1e-12);
    EXPECT_NEAR(norm2(pkg.amplitude(sum, 0)), 0.0, 1e-24);
}

TEST(DdPackageTest, ComputeTableCountsHits)
{
    DdPackage pkg(5);
    VEdge state = makeGhz(pkg, 5);
    MEdge h2 = pkg.makeGateDd(Gate(GateKind::H, {2}).unitary(), {2});

    VEdge once = pkg.apply(h2, state);
    const DdStats afterFirst = pkg.stats();
    EXPECT_GT(afterFirst.applyMisses, 0u);

    // The identical (gate node, state node) pairs must now be served from
    // the compute table: same result, hits strictly up, misses flat.
    VEdge twice = pkg.apply(h2, state);
    const DdStats afterSecond = pkg.stats();
    EXPECT_EQ(once.node, twice.node);
    EXPECT_TRUE(approxEqual(once.weight, twice.weight, 1e-12));
    EXPECT_GT(afterSecond.applyHits, afterFirst.applyHits);
    EXPECT_EQ(afterSecond.applyMisses, afterFirst.applyMisses);

    // clearComputeTables drops the memo: the same call misses again.
    pkg.clearComputeTables();
    (void)pkg.apply(h2, state);
    EXPECT_GT(pkg.stats().applyMisses, afterSecond.applyMisses);
}

TEST(DdPackageTest, MatrixNormalizationBoundsWeights)
{
    DdPackage pkg(3);
    MEdge m = pkg.makeGateDd(Gate(GateKind::Ry, {1}, 1.2).unitary(), {1});
    ASSERT_FALSE(m.isTerminal());
    // Canonical matrix nodes carry a max-magnitude child weight of exactly 1.
    double maxMag = 0.0;
    for (const MEdge& c : m.node->children)
        maxMag = std::max(maxMag, std::abs(c.weight));
    EXPECT_DOUBLE_EQ(maxMag, 1.0);
}

TEST(DdPackageTest, InnerProductMatchesAmplitudeSums)
{
    // <a|b> from the memoized two-diagram walk must equal the brute-force
    // sum over basis amplitudes.
    DdPackage pkg(3);
    VEdge a = pkg.makeZeroState();
    a = pkg.apply(pkg.makeGateDd(Gate(GateKind::H, {0}).unitary(), {0}), a);
    a = pkg.apply(pkg.makeGateDd(Gate(GateKind::CNOT, {0, 1}).unitary(),
                                 {0, 1}),
                  a);
    a = pkg.apply(pkg.makeGateDd(Gate(GateKind::T, {2}).unitary(), {2}), a);

    VEdge b = pkg.makeZeroState();
    b = pkg.apply(pkg.makeGateDd(Gate(GateKind::Ry, {0}, 0.9).unitary(), {0}),
                  b);
    b = pkg.apply(pkg.makeGateDd(Gate(GateKind::H, {1}).unitary(), {1}), b);

    Complex brute{0.0, 0.0};
    for (std::uint64_t x = 0; x < 8; ++x)
        brute += std::conj(pkg.amplitude(a, x)) * pkg.amplitude(b, x);

    const Complex ip = pkg.innerProduct(a, b);
    EXPECT_NEAR(ip.real(), brute.real(), 1e-12);
    EXPECT_NEAR(ip.imag(), brute.imag(), 1e-12);

    // <a|a> = 1 for a normalized state; conjugate symmetry holds.
    EXPECT_NEAR(pkg.innerProduct(a, a).real(), 1.0, 1e-12);
    EXPECT_NEAR(pkg.innerProduct(a, a).imag(), 0.0, 1e-12);
    const Complex flipped = pkg.innerProduct(b, a);
    EXPECT_NEAR(flipped.real(), ip.real(), 1e-12);
    EXPECT_NEAR(flipped.imag(), -ip.imag(), 1e-12);

    // The zero edge is orthogonal to everything.
    const Complex zero = pkg.innerProduct(VEdge{}, a);
    EXPECT_EQ(zero.real(), 0.0);
    EXPECT_EQ(zero.imag(), 0.0);
}

TEST(DdPackageTest, RejectsInvalidInputs)
{
    EXPECT_THROW(DdPackage(0), std::invalid_argument);

    DdPackage pkg(2);
    Rng rng(1);
    EXPECT_THROW(pkg.makeGateDd(Matrix::identity(2), {0, 1}),
                 std::invalid_argument);
    EXPECT_THROW(pkg.makeGateDd(Matrix::identity(2), {5}),
                 std::invalid_argument);
    EXPECT_THROW(pkg.sampleOutcome(VEdge{}, rng), std::invalid_argument);
}

} // namespace
} // namespace qkc
