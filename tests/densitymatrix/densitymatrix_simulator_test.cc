#include "densitymatrix/densitymatrix_simulator.h"

#include <gtest/gtest.h>

#include "algorithms/algorithms.h"
#include "statevector/statevector_simulator.h"
#include "util/stats.h"

namespace qkc {
namespace {

TEST(DensityMatrixSimulatorTest, IdealCircuitMatchesStateVector)
{
    // For noise-free circuits, diag(rho) must equal |psi|^2 elementwise.
    StateVectorSimulator svSim;
    DensityMatrixSimulator dmSim;
    std::vector<Circuit> circuits{bellCircuit(), ghzCircuit(4)};
    for (const Circuit& c : circuits) {
        auto svProbs = svSim.simulate(c).probabilities();
        auto dmProbs = dmSim.distribution(c);
        ASSERT_EQ(svProbs.size(), dmProbs.size());
        for (std::size_t i = 0; i < svProbs.size(); ++i)
            EXPECT_NEAR(svProbs[i], dmProbs[i], 1e-10);
    }
}

TEST(DensityMatrixSimulatorTest, MatchesExhaustiveEnumeration)
{
    // Density-matrix evolution and exhaustive Kraus enumeration are both
    // exact; they must agree on arbitrary noisy circuits.
    Circuit c = ghzCircuit(3).withNoiseAfterEachGate(NoiseKind::Depolarizing,
                                                     0.05);
    StateVectorSimulator svSim;
    DensityMatrixSimulator dmSim;
    auto enumerated = svSim.noisyDistributionExhaustive(c);
    auto viaRho = dmSim.distribution(c);
    for (std::size_t i = 0; i < enumerated.size(); ++i)
        EXPECT_NEAR(enumerated[i], viaRho[i], 1e-9);
}

TEST(DensityMatrixSimulatorTest, MatchesEnumerationOnDampingChannels)
{
    Circuit c(2);
    c.h(0);
    c.append(NoiseChannel::amplitudeDamping(0, 0.3));
    c.cnot(0, 1);
    c.append(NoiseChannel::phaseDamping(1, 0.2));
    c.rx(1, 0.6);

    StateVectorSimulator svSim;
    DensityMatrixSimulator dmSim;
    auto enumerated = svSim.noisyDistributionExhaustive(c);
    auto viaRho = dmSim.distribution(c);
    for (std::size_t i = 0; i < enumerated.size(); ++i)
        EXPECT_NEAR(enumerated[i], viaRho[i], 1e-9);
}

TEST(DensityMatrixSimulatorTest, TraceStaysOneThroughDeepNoisyCircuit)
{
    Circuit c = ghzCircuit(4).withNoiseAfterEachGate(NoiseKind::BitFlip, 0.02);
    DensityMatrixSimulator sim;
    auto rho = sim.simulate(c);
    EXPECT_TRUE(approxEqual(rho.trace(), Complex{1.0}, 1e-9));
}

TEST(DensityMatrixSimulatorTest, SamplesFollowDiagonal)
{
    DensityMatrixSimulator sim;
    Rng rng(55);
    Circuit c = noisyBellCircuit(0.36);
    auto samples = sim.sample(c, 20000, rng);
    auto emp = empiricalDistribution(samples, 4);
    EXPECT_NEAR(emp[0], 0.5, 0.02);
    EXPECT_NEAR(emp[3], 0.5, 0.02);
}

} // namespace
} // namespace qkc
