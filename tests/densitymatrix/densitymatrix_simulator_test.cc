#include "densitymatrix/densitymatrix_simulator.h"

#include <gtest/gtest.h>

#include "algorithms/algorithms.h"
#include "statevector/statevector_simulator.h"
#include "util/stats.h"

namespace qkc {
namespace {

TEST(DensityMatrixSimulatorTest, IdealCircuitMatchesStateVector)
{
    // For noise-free circuits, diag(rho) must equal |psi|^2 elementwise.
    StateVectorSimulator svSim;
    DensityMatrixSimulator dmSim;
    std::vector<Circuit> circuits{bellCircuit(), ghzCircuit(4)};
    for (const Circuit& c : circuits) {
        auto svProbs = svSim.simulate(c).probabilities();
        auto dmProbs = dmSim.distribution(c);
        ASSERT_EQ(svProbs.size(), dmProbs.size());
        for (std::size_t i = 0; i < svProbs.size(); ++i)
            EXPECT_NEAR(svProbs[i], dmProbs[i], 1e-10);
    }
}

TEST(DensityMatrixSimulatorTest, MatchesExhaustiveEnumeration)
{
    // Density-matrix evolution and exhaustive Kraus enumeration are both
    // exact; they must agree on arbitrary noisy circuits.
    Circuit c = ghzCircuit(3).withNoiseAfterEachGate(NoiseKind::Depolarizing,
                                                     0.05);
    StateVectorSimulator svSim;
    DensityMatrixSimulator dmSim;
    auto enumerated = svSim.noisyDistributionExhaustive(c);
    auto viaRho = dmSim.distribution(c);
    for (std::size_t i = 0; i < enumerated.size(); ++i)
        EXPECT_NEAR(enumerated[i], viaRho[i], 1e-9);
}

TEST(DensityMatrixSimulatorTest, MatchesEnumerationOnDampingChannels)
{
    Circuit c(2);
    c.h(0);
    c.append(NoiseChannel::amplitudeDamping(0, 0.3));
    c.cnot(0, 1);
    c.append(NoiseChannel::phaseDamping(1, 0.2));
    c.rx(1, 0.6);

    StateVectorSimulator svSim;
    DensityMatrixSimulator dmSim;
    auto enumerated = svSim.noisyDistributionExhaustive(c);
    auto viaRho = dmSim.distribution(c);
    for (std::size_t i = 0; i < enumerated.size(); ++i)
        EXPECT_NEAR(enumerated[i], viaRho[i], 1e-9);
}

TEST(DensityMatrixSimulatorTest, TraceStaysOneThroughDeepNoisyCircuit)
{
    Circuit c = ghzCircuit(4).withNoiseAfterEachGate(NoiseKind::BitFlip, 0.02);
    DensityMatrixSimulator sim;
    auto rho = sim.simulate(c);
    EXPECT_TRUE(approxEqual(rho.trace(), Complex{1.0}, 1e-9));
}

/** A parameterized noisy circuit for the plan rebind tests. */
Circuit
parameterized(double a, double b)
{
    Circuit c(3);
    c.h(0).rz(1, a).cnot(0, 1).zz(1, 2, b).rx(2, a + b);
    c.append(NoiseChannel::depolarizing(1, 0.03));
    return c;
}

void
expectSameRho(const DensityMatrix& x, const DensityMatrix& y)
{
    ASSERT_EQ(x.dimension(), y.dimension());
    for (std::uint64_t r = 0; r < x.dimension(); ++r)
        for (std::uint64_t cc = 0; cc < x.dimension(); ++cc) {
            EXPECT_EQ(x.at(r, cc).real(), y.at(r, cc).real());
            EXPECT_EQ(x.at(r, cc).imag(), y.at(r, cc).imag());
        }
}

TEST(DmExecutionPlanTest, PlannedExecutionMatchesDirectSimulation)
{
    const Circuit c = parameterized(0.4, -0.9);
    DensityMatrixSimulator sim;
    const DmExecutionPlan plan = planCircuitDm(c, sim.execPolicy());
    expectSameRho(sim.simulatePlanned(plan), sim.simulate(c));
}

TEST(DmExecutionPlanTest, RebindRefreshesValuesWithoutReclassification)
{
    // The ISSUE 5 dm fix: a same-structure rebind replays the fusion recipe
    // and refreshes the compiled superoperator kernels in place; executing
    // the rebound plan must be bit-identical to planning from scratch.
    DensityMatrixSimulator sim;
    DmExecutionPlan plan = planCircuitDm(parameterized(0.4, -0.9),
                                         sim.execPolicy());
    const Circuit next = parameterized(-1.3, 0.2);
    ASSERT_TRUE(tryRebindDmPlan(plan, next));
    expectSameRho(sim.simulatePlanned(plan), sim.simulate(next));
}

TEST(DmExecutionPlanTest, RebindRefusesStructureChange)
{
    DensityMatrixSimulator sim;
    DmExecutionPlan plan = planCircuitDm(parameterized(0.4, -0.9),
                                         sim.execPolicy());
    Circuit different(3);
    different.h(0).h(1).h(2);
    EXPECT_FALSE(tryRebindDmPlan(plan, different));
    Circuit wrongQubits(2);
    wrongQubits.h(0);
    EXPECT_FALSE(tryRebindDmPlan(plan, wrongQubits));
}

TEST(DmExecutionPlanTest, UnfusedPlanAlsoRebinds)
{
    ExecPolicy policy;
    policy.fuseGates = false;
    DensityMatrixSimulator sim(policy);
    DmExecutionPlan plan = planCircuitDm(parameterized(0.1, 0.2), policy);
    const Circuit next = parameterized(0.9, -0.4);
    ASSERT_TRUE(tryRebindDmPlan(plan, next));
    expectSameRho(sim.simulatePlanned(plan), sim.simulate(next));
}

TEST(DensityMatrixSimulatorTest, SamplesFollowDiagonal)
{
    DensityMatrixSimulator sim;
    Rng rng(55);
    Circuit c = noisyBellCircuit(0.36);
    auto samples = sim.sample(c, 20000, rng);
    auto emp = empiricalDistribution(samples, 4);
    EXPECT_NEAR(emp[0], 0.5, 0.02);
    EXPECT_NEAR(emp[3], 0.5, 0.02);
}

} // namespace
} // namespace qkc
