#include "densitymatrix/density_matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/gate.h"
#include "circuit/noise.h"

namespace qkc {
namespace {

TEST(DensityMatrixTest, InitialStatePure0)
{
    DensityMatrix rho(2);
    EXPECT_TRUE(approxEqual(rho.at(0, 0), Complex{1.0}));
    EXPECT_TRUE(approxEqual(rho.trace(), Complex{1.0}));
}

TEST(DensityMatrixTest, HadamardGivesCoherences)
{
    // Paper Equation 2: rho after H on |0> is all-1/2.
    DensityMatrix rho(1);
    rho.applyUnitarySingle(Gate(GateKind::H, {0}).unitary(), 0);
    for (int r = 0; r < 2; ++r)
        for (int c = 0; c < 2; ++c)
            EXPECT_TRUE(approxEqual(rho.at(r, c), Complex{0.5}));
}

TEST(DensityMatrixTest, PhaseDampingShrinksCoherence)
{
    // Paper Section 2.2.2: phase damping with gamma=0.36 scales the
    // off-diagonals of the |+><+| state by 0.8.
    DensityMatrix rho(1);
    rho.applyUnitarySingle(Gate(GateKind::H, {0}).unitary(), 0);
    rho.applyChannelSingle(
        NoiseChannel::phaseDamping(0, 0.36).krausOperators(), 0);
    EXPECT_TRUE(approxEqual(rho.at(0, 0), Complex{0.5}));
    EXPECT_TRUE(approxEqual(rho.at(0, 1), Complex{0.4}));
    EXPECT_TRUE(approxEqual(rho.at(1, 0), Complex{0.4}));
    EXPECT_TRUE(approxEqual(rho.at(1, 1), Complex{0.5}));
}

TEST(DensityMatrixTest, NoisyBellFinalDensityMatrix)
{
    // Paper Equation 3: the noisy Bell circuit's final density matrix.
    DensityMatrix rho(2);
    rho.applyUnitarySingle(Gate(GateKind::H, {0}).unitary(), 0);
    rho.applyChannelSingle(
        NoiseChannel::phaseDamping(0, 0.36).krausOperators(), 0);
    rho.applyUnitaryTwo(Gate(GateKind::CNOT, {0, 1}).unitary(), 0, 1);

    EXPECT_TRUE(approxEqual(rho.at(0, 0), Complex{0.5}));
    EXPECT_TRUE(approxEqual(rho.at(0, 3), Complex{0.4}));
    EXPECT_TRUE(approxEqual(rho.at(3, 0), Complex{0.4}));
    EXPECT_TRUE(approxEqual(rho.at(3, 3), Complex{0.5}));
    EXPECT_TRUE(approxEqual(rho.at(1, 1), Complex{0.0}));
    EXPECT_TRUE(approxEqual(rho.at(2, 2), Complex{0.0}));
}

TEST(DensityMatrixTest, UnitaryPreservesTrace)
{
    DensityMatrix rho(3);
    rho.applyUnitarySingle(Gate(GateKind::H, {1}).unitary(), 1);
    rho.applyUnitaryTwo(Gate(GateKind::CNOT, {1, 2}).unitary(), 1, 2);
    rho.applyUnitaryThree(Gate(GateKind::CCX, {0, 1, 2}).unitary(), 0, 1, 2);
    EXPECT_TRUE(approxEqual(rho.trace(), Complex{1.0}));
}

TEST(DensityMatrixTest, ChannelPreservesTrace)
{
    DensityMatrix rho(2);
    rho.applyUnitarySingle(Gate(GateKind::H, {0}).unitary(), 0);
    rho.applyChannelSingle(
        NoiseChannel::amplitudeDamping(0, 0.4).krausOperators(), 0);
    rho.applyChannelSingle(
        NoiseChannel::depolarizing(1, 0.2).krausOperators(), 1);
    EXPECT_TRUE(approxEqual(rho.trace(), Complex{1.0}));
}

TEST(DensityMatrixTest, FullyDepolarizedIsMaximallyMixed)
{
    DensityMatrix rho(1);
    // p = 1 symmetric depolarizing: I/2 plus Pauli conjugations average out.
    rho.applyChannelSingle(NoiseChannel::depolarizing(0, 0.75).krausOperators(),
                           0);
    // For |0><0|, p=0.75 depolarizing gives diag(0.625, 0.375)? No:
    // (1-p)|0><0| + p/3 (X|0><0|X + Y|0><0|Y + Z|0><0|Z)
    //  = 0.25 |0><0| + 0.25 (|1><1| + |1><1| + |0><0|) = diag(0.5, 0.5).
    EXPECT_TRUE(approxEqual(rho.at(0, 0), Complex{0.5}));
    EXPECT_TRUE(approxEqual(rho.at(1, 1), Complex{0.5}));
}

TEST(DensityMatrixTest, DiagonalProbabilities)
{
    DensityMatrix rho(2);
    rho.applyUnitarySingle(Gate(GateKind::H, {0}).unitary(), 0);
    auto probs = rho.diagonalProbabilities();
    EXPECT_NEAR(probs[0], 0.5, 1e-12);
    EXPECT_NEAR(probs[2], 0.5, 1e-12);
    EXPECT_NEAR(probs[1], 0.0, 1e-12);
}

TEST(DensityMatrixTest, AmplitudeDampingToGround)
{
    DensityMatrix rho(1);
    rho.applyUnitarySingle(Gate(GateKind::X, {0}).unitary(), 0);
    rho.applyChannelSingle(
        NoiseChannel::amplitudeDamping(0, 1.0).krausOperators(), 0);
    EXPECT_TRUE(approxEqual(rho.at(0, 0), Complex{1.0}));
    EXPECT_TRUE(approxEqual(rho.at(1, 1), Complex{0.0}));
}

TEST(DensityMatrixTest, RejectsBadQubitCount)
{
    EXPECT_THROW(DensityMatrix(0), std::invalid_argument);
    EXPECT_THROW(DensityMatrix(15), std::invalid_argument);
}

} // namespace
} // namespace qkc
