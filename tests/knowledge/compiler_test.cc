#include "knowledge/compiler.h"

#include <gtest/gtest.h>

#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "cnf/bn_to_cnf.h"
#include "statevector/statevector_simulator.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

/** Compiles `circuit` with `options` and checks every amplitude vs qsim. */
void
expectMatchesStateVector(const Circuit& circuit, CompileOptions options,
                         double eps = 1e-9)
{
    KcSimulator kc(circuit, options);
    StateVectorSimulator sv;
    auto amps = sv.simulate(circuit).amplitudes();
    for (std::uint64_t x = 0; x < amps.size(); ++x) {
        EXPECT_TRUE(approxEqual(kc.amplitude(x), amps[x], eps))
            << "x=" << x << " kc=" << kc.amplitude(x) << " sv=" << amps[x];
    }
}

class HeuristicTest : public ::testing::TestWithParam<DecisionHeuristic> {};

TEST_P(HeuristicTest, BellAndGhzExact)
{
    CompileOptions options;
    options.heuristic = GetParam();
    expectMatchesStateVector(bellCircuit(), options);
    expectMatchesStateVector(ghzCircuit(4), options);
}

TEST_P(HeuristicTest, RandomCircuitsExact)
{
    CompileOptions options;
    options.heuristic = GetParam();
    for (int seed = 0; seed < 5; ++seed) {
        Rng rng(500 + seed);
        Circuit c = testing::randomCircuit(3, 10, rng);
        expectMatchesStateVector(c, options);
    }
}

INSTANTIATE_TEST_SUITE_P(AllHeuristics, HeuristicTest,
                         ::testing::Values(DecisionHeuristic::Lexicographic,
                                           DecisionHeuristic::MinFill,
                                           DecisionHeuristic::Dynamic));

TEST(CompilerTest, CachingAndDecompositionTogglesPreserveSemantics)
{
    Rng rng(88);
    Circuit c = testing::randomCircuit(3, 8, rng);
    for (bool cache : {true, false}) {
        for (bool decomp : {true, false}) {
            CompileOptions options;
            options.componentCaching = cache;
            options.componentDecomposition = decomp;
            expectMatchesStateVector(c, options);
        }
    }
}

TEST(CompilerTest, ElisionTogglePreservesSemantics)
{
    Rng rng(99);
    Circuit c = testing::randomCircuit(3, 8, rng);
    CompileOptions options;
    options.elideInternalStates = false;
    expectMatchesStateVector(c, options);
}

TEST(CompilerTest, ElisionShrinksCircuit)
{
    Circuit c = testing::ringQaoaCircuit(6, 0.4, 0.3);
    CompileOptions elided;
    CompileOptions full;
    full.elideInternalStates = false;
    KcSimulator a(c, elided), b(c, full);
    EXPECT_LT(a.metrics().acNodes, b.metrics().acNodes);
}

TEST(CompilerTest, CacheHitsHappenOnStructuredCircuits)
{
    Circuit c = testing::ringQaoaCircuit(8, 0.4, 0.3);
    KcSimulator kc(c);
    EXPECT_GT(kc.compileStats().cacheHits, 0u);
    EXPECT_GT(kc.compileStats().decisions, 0u);
}

TEST(CompilerTest, DecompositionReducesDecisions)
{
    // Two disconnected GHZ halves: decomposition should split them.
    Circuit c(6);
    c.h(0).cnot(0, 1).cnot(1, 2);
    c.h(3).cnot(3, 4).cnot(4, 5);

    CompileOptions with;
    CompileOptions without;
    without.componentDecomposition = false;
    without.componentCaching = false;
    with.componentCaching = false;

    KnowledgeCompiler cWith(with), cWithout(without);
    auto bn = circuitToBayesNet(c);
    Cnf cnf = bayesNetToCnf(bn);
    cWith.compile(cnf);
    cWithout.compile(cnf);
    EXPECT_LT(cWith.stats().decisions, cWithout.stats().decisions);
}

TEST(CompilerTest, DenseGatesAndSwapsExact)
{
    for (int seed = 0; seed < 4; ++seed) {
        Rng rng(700 + seed);
        Circuit c = testing::randomDenseCircuit(3, 8, rng);
        expectMatchesStateVector(c, {});
    }
}

TEST(CompilerTest, DeterministicCircuitCompilesToTinyAc)
{
    // X + CNOT chain: pure logic, no parameters; the AC collapses to
    // (nearly) just the indicator product.
    Circuit c(3);
    c.x(0).cnot(0, 1).cnot(1, 2);
    KcSimulator kc(c);
    EXPECT_LE(kc.metrics().acNodes, 8u);
    EXPECT_NEAR(kc.probability(7), 1.0, 1e-12);  // |111>
}

TEST(CompilerTest, StatsReportCacheEntries)
{
    Circuit c = testing::ringQaoaCircuit(6, 0.4, 0.3);
    KcSimulator kc(c);
    EXPECT_GT(kc.compileStats().cacheEntries, 0u);
}

} // namespace
} // namespace qkc
