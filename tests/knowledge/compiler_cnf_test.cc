/**
 * Direct tests of the d-DNNF compiler on hand-built CNFs (independent of
 * the quantum pipeline): weighted model counts against brute force, UNSAT
 * handling, free-variable smoothing, and evidence semantics.
 */
#include <gtest/gtest.h>

#include "ac/evaluator.h"
#include "cnf/cnf.h"
#include "knowledge/compiler.h"
#include "util/rng.h"

namespace qkc {
namespace {

/** Builds a CNF whose variables are all binary query indicators. */
Cnf
indicatorCnf(std::size_t numVars, std::vector<Clause> clauses)
{
    Cnf cnf;
    cnf.bnVarIndicators.resize(numVars);
    for (std::size_t v = 0; v < numVars; ++v) {
        CnfVariable cv;
        cv.kind = CnfVarKind::BinaryIndicator;
        cv.bnVar = static_cast<BnVarId>(v);
        cv.query = true;
        cnf.vars.push_back(cv);
        cnf.bnVarIndicators[v] = {static_cast<int>(v + 1)};
    }
    cnf.clauses = std::move(clauses);
    return cnf;
}

/** Model count of `cnf` under evidence (-1 = free) by enumeration. */
double
bruteForceCount(const Cnf& cnf, const std::vector<int>& evidence)
{
    const std::size_t n = cnf.numVars();
    double count = 0.0;
    for (std::uint64_t bits = 0; bits < (std::uint64_t{1} << n); ++bits) {
        auto truth = [&](int var) { return ((bits >> (var - 1)) & 1) != 0; };
        bool ok = true;
        for (const Clause& c : cnf.clauses) {
            bool sat = false;
            for (int lit : c)
                sat = sat || (lit > 0 ? truth(lit) : !truth(-lit));
            ok = ok && sat;
        }
        if (!ok)
            continue;
        bool matches = true;
        for (std::size_t v = 0; v < n; ++v) {
            int ev = evidence[v];
            if (ev != -1 && ev != (truth(static_cast<int>(v + 1)) ? 1 : 0))
                matches = false;
        }
        count += matches ? 1.0 : 0.0;
    }
    return count;
}

AcEvaluator
makeEvaluator(const ArithmeticCircuit& ac, std::size_t numVars)
{
    return AcEvaluator(ac, std::vector<std::size_t>(numVars, 2), {});
}

TEST(CompilerCnfTest, UnsatGivesZero)
{
    Cnf cnf = indicatorCnf(2, {{1}, {-1}});
    KnowledgeCompiler compiler;
    auto ac = compiler.compile(cnf);
    auto eval = makeEvaluator(ac, 2);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{}));
}

TEST(CompilerCnfTest, TautologyCountsAllAssignments)
{
    // No clauses: every variable free, count = 2^n.
    Cnf cnf = indicatorCnf(3, {});
    KnowledgeCompiler compiler;
    auto ac = compiler.compile(cnf);
    auto eval = makeEvaluator(ac, 3);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{8.0}));
    // Evidence pins variables one at a time.
    eval.setEvidence(0, 1);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{4.0}));
    eval.setEvidence(1, 0);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{2.0}));
}

TEST(CompilerCnfTest, XorFormula)
{
    // x XOR y: clauses (x | y) & (~x | ~y): 2 models.
    Cnf cnf = indicatorCnf(2, {{1, 2}, {-1, -2}});
    KnowledgeCompiler compiler;
    auto ac = compiler.compile(cnf);
    auto eval = makeEvaluator(ac, 2);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{2.0}));
    eval.setEvidence(0, 1);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{1.0}));
    eval.setEvidence(1, 1);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{0.0}));
}

class RandomCnfTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCnfTest, ModelCountsMatchBruteForce)
{
    Rng rng(8000 + GetParam());
    const std::size_t n = 8;
    // Random 3-CNF at a satisfiable-ish density.
    std::vector<Clause> clauses;
    for (int c = 0; c < 14; ++c) {
        Clause clause;
        for (int l = 0; l < 3; ++l) {
            int var = static_cast<int>(rng.below(n)) + 1;
            int lit = rng.bernoulli(0.5) ? var : -var;
            if (std::find(clause.begin(), clause.end(), lit) == clause.end() &&
                std::find(clause.begin(), clause.end(), -lit) == clause.end())
                clause.push_back(lit);
        }
        if (!clause.empty())
            clauses.push_back(std::move(clause));
    }
    Cnf cnf = indicatorCnf(n, clauses);

    for (auto heuristic :
         {DecisionHeuristic::Lexicographic, DecisionHeuristic::MinFill,
          DecisionHeuristic::Dynamic}) {
        CompileOptions options;
        options.heuristic = heuristic;
        KnowledgeCompiler compiler(options);
        auto ac = compiler.compile(cnf);
        auto eval = makeEvaluator(ac, n);

        // Unconditioned count plus several random evidence settings.
        for (int trial = 0; trial < 6; ++trial) {
            std::vector<int> evidence(n, -1);
            if (trial > 0) {
                for (std::size_t v = 0; v < n; ++v) {
                    switch (rng.below(3)) {
                      case 0: evidence[v] = 0; break;
                      case 1: evidence[v] = 1; break;
                      default: evidence[v] = -1; break;
                    }
                }
            }
            for (std::size_t v = 0; v < n; ++v)
                eval.setEvidence(static_cast<BnVarId>(v), evidence[v]);
            double expected = bruteForceCount(cnf, evidence);
            EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{expected}, 1e-9))
                << "heuristic=" << static_cast<int>(heuristic)
                << " trial=" << trial << " expected=" << expected
                << " got=" << eval.evaluate();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCnfTest, ::testing::Range(0, 10));

TEST(CompilerCnfTest, DnnfIsDecomposable)
{
    // Structural property check: the children of every Mul node mention
    // disjoint sets of query variables (decomposability).
    Rng rng(9001);
    Cnf cnf = indicatorCnf(
        6, {{1, 2}, {-2, 3}, {3, 4, 5}, {-5, -6}, {1, -4}});
    KnowledgeCompiler compiler;
    auto ac = compiler.compile(cnf);

    // varsBelow[node] = bitmask of BN vars with indicator leaves below it.
    std::vector<std::uint64_t> varsBelow(ac.numNodes(), 0);
    for (AcNodeId id = 0; id < ac.numNodes(); ++id) {
        const AcNode& node = ac.node(id);
        if (node.kind == AcNodeKind::Indicator) {
            varsBelow[id] = std::uint64_t{1} << node.var;
            continue;
        }
        std::uint64_t acc = 0;
        for (AcNodeId child : ac.children(id)) {
            if (node.kind == AcNodeKind::Mul) {
                EXPECT_EQ(acc & varsBelow[child], 0u)
                    << "Mul node " << id << " shares variables";
            }
            acc |= varsBelow[child];
        }
        varsBelow[id] = acc;
    }
}

} // namespace
} // namespace qkc
