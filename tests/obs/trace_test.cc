#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "vqa/backends.h"

using namespace qkc;

namespace {

/** A parameterized workload big enough for nonzero phase times. */
Circuit
layered(std::size_t qubits, std::size_t layers)
{
    Circuit c(qubits);
    for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t q = 0; q < qubits; ++q) {
            c.h(q);
            c.rz(q, 0.1 * static_cast<double>(l * qubits + q + 1));
        }
        for (std::size_t q = 1; q < qubits; ++q)
            c.cnot(q - 1, q);
    }
    return c;
}

/** Tests drive the process-wide recorder; leave it off for the next test. */
class TraceTest : public ::testing::Test {
  protected:
    void SetUp() override { obs::setEnabled(true); }
    void TearDown() override { obs::TraceRecorder::instance().stop(); }

    static const obs::SpanEvent* find(const std::vector<obs::SpanEvent>& events,
                                      const std::string& name)
    {
        for (const obs::SpanEvent& e : events)
            if (name == e.name)
                return &e;
        return nullptr;
    }
};

TEST_F(TraceTest, SpansNestWithDepthAndContainment)
{
    obs::TraceRecorder::instance().start();
    {
        QKC_SPAN("test.outer");
        QKC_SPAN("test.inner");
    }
    obs::TraceRecorder::instance().stop();
    const auto events = obs::TraceRecorder::instance().drain();
    const obs::SpanEvent* outer = find(events, "test.outer");
    const obs::SpanEvent* inner = find(events, "test.inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(inner->depth, outer->depth + 1);
    EXPECT_EQ(inner->tid, outer->tid);
    EXPECT_GE(inner->startNs, outer->startNs);
    EXPECT_LE(inner->startNs + inner->durNs, outer->startNs + outer->durNs);
}

TEST_F(TraceTest, SpanOutsideCollectionIsFree)
{
    obs::TraceRecorder::instance().start();
    obs::TraceRecorder::instance().stop();
    { QKC_SPAN("test.untracked"); }
    EXPECT_EQ(find(obs::TraceRecorder::instance().drain(), "test.untracked"),
              nullptr);
}

TEST_F(TraceTest, ProfileScopeAggregatesTopLevelPhases)
{
    obs::ProfileScope scope("test.task", /*withCounters=*/false);
    {
        QKC_SPAN("test.phaseA");
        QKC_SPAN("test.nested"); // a child of phaseA, not a phase
    }
    { QKC_SPAN("test.phaseB"); }
    { QKC_SPAN("test.phaseA"); } // same name aggregates
    const obs::TaskProfile profile = scope.take();

    ASSERT_EQ(profile.phases.size(), 2u); // first-seen order, nested excluded
    EXPECT_EQ(std::string(profile.phases[0].name), "test.phaseA");
    EXPECT_EQ(profile.phases[0].count, 2u);
    EXPECT_EQ(std::string(profile.phases[1].name), "test.phaseB");
    EXPECT_EQ(profile.phases[1].count, 1u);
    EXPECT_GT(profile.totalSeconds, 0.0);
    EXPECT_LE(profile.accountedSeconds(), profile.totalSeconds * 1.5);
}

TEST_F(TraceTest, ProfileScopeCapturesCounterDeltas)
{
    static obs::Counter c("test.trace.scoped");
    obs::ProfileScope scope("test.task");
    c.add(9);
    const obs::TaskProfile profile = scope.take();
    bool found = false;
    for (const obs::CounterDelta& d : profile.counters) {
        if (std::string(d.name) == "test.trace.scoped") {
            EXPECT_EQ(d.delta, 9u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(TraceTest, NestedProfileScopesCreditInnermost)
{
    obs::ProfileScope outer("test.outerTask", false);
    obs::TaskProfile innerProfile;
    {
        obs::ProfileScope inner("test.innerTask", false);
        { QKC_SPAN("test.work"); }
        innerProfile = inner.take();
    }
    const obs::TaskProfile outerProfile = outer.take();

    ASSERT_EQ(innerProfile.phases.size(), 1u);
    EXPECT_EQ(std::string(innerProfile.phases[0].name), "test.work");
    // The outer scope sees the inner task's envelope, not its phases.
    ASSERT_EQ(outerProfile.phases.size(), 1u);
    EXPECT_EQ(std::string(outerProfile.phases[0].name), "test.innerTask");
}

/**
 * Structural JSON check: quotes/escapes respected, braces and brackets
 * balance, and the payload carries Chrome "X" complete events. (CI
 * additionally round-trips a real trace file through python3 -m json.tool.)
 */
void
expectWellFormedJson(const std::string& json)
{
    std::vector<char> stack;
    bool inString = false;
    for (std::size_t i = 0; i < json.size(); ++i) {
        const char ch = json[i];
        if (inString) {
            if (ch == '\\')
                ++i;
            else if (ch == '"')
                inString = false;
            continue;
        }
        switch (ch) {
        case '"':
            inString = true;
            break;
        case '{':
        case '[':
            stack.push_back(ch);
            break;
        case '}':
            ASSERT_FALSE(stack.empty());
            ASSERT_EQ(stack.back(), '{');
            stack.pop_back();
            break;
        case ']':
            ASSERT_FALSE(stack.empty());
            ASSERT_EQ(stack.back(), '[');
            stack.pop_back();
            break;
        default:
            break;
        }
    }
    EXPECT_FALSE(inString);
    EXPECT_TRUE(stack.empty());
}

TEST_F(TraceTest, ChromeJsonIsWellFormedAndSpansSubsystems)
{
    obs::TraceRecorder::instance().start();
    auto backend = makeBackend("statevector:threads=1,fuse=1");
    Rng rng(7);
    auto session = backend->open(layered(6, 5));
    session->run(Sample{32}, rng);
    obs::TraceRecorder::instance().stop();

    std::ostringstream out;
    obs::TraceRecorder::instance().writeChromeJson(out);
    const std::string json = out.str();

    expectWellFormedJson(json);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos); // thread names
    // Spans from at least three subsystems: session, backend, planner.
    EXPECT_NE(json.find("session.run"), std::string::npos);
    EXPECT_NE(json.find("sv.sample"), std::string::npos);
    EXPECT_NE(json.find("exec.plan"), std::string::npos);
}

TEST_F(TraceTest, RunPopulatesProfileConsistentWithMetaSeconds)
{
    auto backend = makeBackend("statevector:threads=1,obs=1");
    Rng rng(11);
    auto session = backend->open(layered(8, 8));
    const Result r = session->run(Sample{256}, rng);

    ASSERT_FALSE(r.meta.profile.empty());
    EXPECT_GT(r.meta.profile.totalSeconds, 0.0);
    // meta.seconds IS the profiled envelope, and the task's phases account
    // for (almost) all of it; the bound is loose only for clock granularity
    // and the counter-snapshot cost bracketing the phases.
    EXPECT_DOUBLE_EQ(r.meta.seconds, r.meta.profile.totalSeconds);
    EXPECT_GE(r.meta.profile.accountedSeconds(),
              0.8 * r.meta.profile.totalSeconds);
    EXPECT_LE(r.meta.profile.accountedSeconds(),
              1.01 * r.meta.profile.totalSeconds);
}

TEST_F(TraceTest, ObsKnobParityAndEmptyProfileWhenOff)
{
    const Circuit c = layered(6, 6);
    for (const char* family : {"statevector", "decisiondiagram"}) {
        auto on = makeBackend(std::string(family) + ":obs=1");
        auto off = makeBackend(std::string(family) + ":obs=0");
        Rng sOn(5);
        Rng sOff(5);
        const Result a = on->open(c)->run(Sample{128}, sOn);
        const Result b = off->open(c)->run(Sample{128}, sOff);

        EXPECT_EQ(a.samples, b.samples) << family; // bit-identical payload
        EXPECT_FALSE(a.meta.profile.empty()) << family;
        EXPECT_TRUE(b.meta.profile.empty()) << family;
    }
}

TEST_F(TraceTest, BatchStatsStampedOnEveryResult)
{
    auto backend = makeBackend("statevector:threads=2,fuse=1");
    Circuit base = layered(6, 5);
    const auto paramIdx = base.parameterizedGateIndices();
    std::vector<ParamBinding> bindings;
    for (std::size_t b = 0; b < 4; ++b) {
        Circuit c = base;
        for (std::size_t idx : paramIdx)
            c.setGateParam(idx, 0.1 * static_cast<double>(b + 1));
        bindings.push_back(std::move(c));
    }
    auto session = backend->open(base);
    Rng taskRng(9);
    const auto results = session->runBatch(bindings, Sample{64}, taskRng);

    ASSERT_EQ(results.size(), 4u);
    double busy = 0.0;
    double maxBinding = 0.0;
    for (const Result& r : results) {
        EXPECT_EQ(r.meta.batch.bindings, 4u);
        EXPECT_GE(r.meta.batch.lanes, 1u);
        EXPECT_GT(r.meta.batch.wallSeconds, 0.0);
        EXPECT_GT(r.meta.seconds, 0.0); // per-binding lane time
        busy += r.meta.seconds;
        maxBinding = std::max(maxBinding, r.meta.seconds);
    }
    const BatchStats& stats = results.front().meta.batch;
    EXPECT_GE(stats.maxBindingSeconds, maxBinding * 0.99);
    EXPECT_GE(stats.imbalance, 0.99); // perfectly balanced == 1
    EXPECT_GE(busy, stats.maxLaneSeconds * 0.99);
}

} // namespace
