#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "exec/thread_pool.h"

using namespace qkc;

namespace {

/** Every test starts from zeroed shards and the process default (enabled). */
class MetricsTest : public ::testing::Test {
  protected:
    void SetUp() override
    {
        obs::setEnabled(true);
        obs::MetricsRegistry::instance().reset();
    }
};

TEST_F(MetricsTest, CounterAccumulatesAndSurvivesSnapshot)
{
    static obs::Counter c("test.metrics.alpha");
    c.add();
    c.add(41);
    const auto snap = obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counter("test.metrics.alpha"), 42u);
    // A never-touched name reads as zero, not an error.
    EXPECT_EQ(snap.counter("test.metrics.never"), 0u);
}

TEST_F(MetricsTest, SameNameSharesOneMetric)
{
    static obs::Counter a("test.metrics.shared");
    static obs::Counter b("test.metrics.shared");
    a.add(2);
    b.add(3);
    const auto snap = obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counter("test.metrics.shared"), 5u);
    EXPECT_EQ(std::count_if(snap.counters.begin(), snap.counters.end(),
                            [](const obs::CounterValue& v) {
                                return std::string(v.name) ==
                                       "test.metrics.shared";
                            }),
              1);
}

TEST_F(MetricsTest, DisabledSwitchDropsWrites)
{
    static obs::Counter c("test.metrics.gated");
    static obs::Histogram h("test.metrics.gatedHist");
    obs::setEnabled(false);
    c.add(7);
    h.record(7);
    obs::setEnabled(true);
    const auto snap = obs::MetricsRegistry::instance().snapshot();
    EXPECT_EQ(snap.counter("test.metrics.gated"), 0u);
    const auto* hv = snap.histogram("test.metrics.gatedHist");
    ASSERT_NE(hv, nullptr); // registered (id handed out) but never recorded
    EXPECT_EQ(hv->count, 0u);
}

TEST_F(MetricsTest, HistogramLog2BucketsCountAndMean)
{
    static obs::Histogram h("test.metrics.hist");
    // Bucket b holds v with 2^b <= v+1 < 2^(b+1): 0 -> b0, 1 and 2 -> b1,
    // 7 -> b3.
    h.record(0);
    h.record(1);
    h.record(2);
    h.record(7);
    const auto snap = obs::MetricsRegistry::instance().snapshot();
    const auto* hv = snap.histogram("test.metrics.hist");
    ASSERT_NE(hv, nullptr);
    EXPECT_EQ(hv->count, 4u);
    EXPECT_EQ(hv->sum, 10u);
    EXPECT_DOUBLE_EQ(hv->mean(), 2.5);
    ASSERT_GE(hv->buckets.size(), 4u);
    EXPECT_EQ(hv->buckets[0], 1u);
    EXPECT_EQ(hv->buckets[1], 2u);
    EXPECT_EQ(hv->buckets[2], 0u);
    EXPECT_EQ(hv->buckets[3], 1u);
}

TEST_F(MetricsTest, SnapshotIsNameSorted)
{
    static obs::Counter z("test.metrics.zz");
    static obs::Counter a("test.metrics.aa");
    z.add();
    a.add();
    const auto snap = obs::MetricsRegistry::instance().snapshot();
    EXPECT_TRUE(std::is_sorted(snap.counters.begin(), snap.counters.end(),
                               [](const obs::CounterValue& l,
                                  const obs::CounterValue& r) {
                                   return std::string(l.name) < r.name;
                               }));
}

TEST_F(MetricsTest, CounterDeltasReportOnlyMovement)
{
    static obs::Counter moved("test.metrics.moved");
    static obs::Counter still("test.metrics.still");
    still.add(5);
    const auto base = obs::MetricsRegistry::instance().snapshot();
    moved.add(3);
    const auto deltas =
        obs::counterDeltas(base, obs::MetricsRegistry::instance().snapshot());
    ASSERT_EQ(deltas.size(), 1u);
    EXPECT_EQ(std::string(deltas[0].name), "test.metrics.moved");
    EXPECT_EQ(deltas[0].delta, 3u);
}

/**
 * The tentpole's concurrency claim: writers on N pool threads, each adding
 * to its own thread-local shard, merge to the exact arithmetic total for
 * any thread count. Run under TSan in CI (label obs).
 */
TEST_F(MetricsTest, DeterministicMergeAcrossThreadCounts)
{
    static obs::Counter c("test.metrics.sharded");
    static obs::Histogram h("test.metrics.shardedHist");
    constexpr std::uint64_t kItems = 10000;
    for (std::size_t workers : {std::size_t{0}, std::size_t{3}}) {
        obs::MetricsRegistry::instance().reset();
        ThreadPool pool(workers); // callers add one lane: 1 and 4 threads
        pool.run(kItems, 64, workers + 1,
                 [&](std::size_t, std::uint64_t begin, std::uint64_t end) {
                     for (std::uint64_t i = begin; i < end; ++i) {
                         c.add(i);
                         h.record(i % 7);
                     }
                 });
        const auto snap = obs::MetricsRegistry::instance().snapshot();
        EXPECT_EQ(snap.counter("test.metrics.sharded"),
                  kItems * (kItems - 1) / 2);
        const auto* hv = snap.histogram("test.metrics.shardedHist");
        ASSERT_NE(hv, nullptr);
        EXPECT_EQ(hv->count, kItems);
    }
}

} // namespace
