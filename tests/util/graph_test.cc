#include "util/graph.h"

#include <gtest/gtest.h>

namespace qkc {
namespace {

TEST(GraphTest, AddEdgeBasics)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(1, 0));
    EXPECT_FALSE(g.hasEdge(0, 2));
}

TEST(GraphTest, IgnoresSelfLoopsAndDuplicates)
{
    Graph g(3);
    g.addEdge(0, 0);
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphTest, ConnectedComponents)
{
    Graph g(5);
    g.addEdge(0, 1);
    g.addEdge(3, 4);
    auto comp = g.connectedComponents();
    EXPECT_EQ(comp[0], comp[1]);
    EXPECT_EQ(comp[3], comp[4]);
    EXPECT_NE(comp[0], comp[2]);
    EXPECT_NE(comp[0], comp[3]);
    EXPECT_NE(comp[2], comp[3]);
}

TEST(GraphTest, RandomRegularDegrees)
{
    Rng rng(5);
    for (std::size_t n : {4, 6, 8, 12, 16}) {
        Graph g = randomRegularGraph(n, 3, rng);
        EXPECT_EQ(g.numVertices(), n);
        EXPECT_EQ(g.numEdges(), n * 3 / 2);
        for (std::size_t v = 0; v < n; ++v)
            EXPECT_EQ(g.degree(v), 3u) << "vertex " << v << " n " << n;
    }
}

TEST(GraphTest, RandomRegularRejectsBadArgs)
{
    Rng rng(5);
    EXPECT_THROW(randomRegularGraph(5, 3, rng), std::invalid_argument);
    EXPECT_THROW(randomRegularGraph(3, 3, rng), std::invalid_argument);
}

TEST(GraphTest, GridGraphShape)
{
    Graph g = gridGraph(3, 4);
    EXPECT_EQ(g.numVertices(), 12u);
    // Edges: 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8.
    EXPECT_EQ(g.numEdges(), 17u);
    EXPECT_TRUE(g.hasEdge(0, 1));
    EXPECT_TRUE(g.hasEdge(0, 4));
    EXPECT_FALSE(g.hasEdge(3, 4));  // row wrap must not connect
}

TEST(GraphTest, CutValueOnTriangle)
{
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    // Assignment 0b100: vertex 0 on one side (bit 0 of the assignment is
    // vertex 0's side in LSB-first encoding: assignment>>v & 1).
    EXPECT_EQ(cutValue(g, 0b001), 2u);
    EXPECT_EQ(cutValue(g, 0b000), 0u);
    EXPECT_EQ(cutValue(g, 0b111), 0u);
}

TEST(GraphTest, MaxCutBruteForceTriangle)
{
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    EXPECT_EQ(maxCutBruteForce(g), 2u);
}

TEST(GraphTest, MaxCutBruteForceBipartite)
{
    // Even cycles are bipartite: max cut = all edges.
    Graph g(6);
    for (std::size_t v = 0; v < 6; ++v)
        g.addEdge(v, (v + 1) % 6);
    EXPECT_EQ(maxCutBruteForce(g), 6u);
}

} // namespace
} // namespace qkc
