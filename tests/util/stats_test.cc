#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qkc {
namespace {

TEST(StatsTest, EmpiricalDistributionCounts)
{
    std::vector<std::uint64_t> samples{0, 0, 1, 3, 3, 3, 3, 1};
    auto dist = empiricalDistribution(samples, 4);
    EXPECT_DOUBLE_EQ(dist[0], 0.25);
    EXPECT_DOUBLE_EQ(dist[1], 0.25);
    EXPECT_DOUBLE_EQ(dist[2], 0.0);
    EXPECT_DOUBLE_EQ(dist[3], 0.5);
}

TEST(StatsTest, EmpiricalDistributionIgnoresOutOfRange)
{
    std::vector<std::uint64_t> samples{0, 9, 1};
    auto dist = empiricalDistribution(samples, 2);
    EXPECT_DOUBLE_EQ(dist[0], 0.5);
    EXPECT_DOUBLE_EQ(dist[1], 0.5);
}

TEST(StatsTest, EmpiricalDistributionEmptyIsZero)
{
    auto dist = empiricalDistribution({}, 3);
    for (double d : dist)
        EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(StatsTest, KlOfIdenticalIsZero)
{
    std::vector<double> p{0.25, 0.25, 0.5};
    EXPECT_NEAR(klDivergence(p, p), 0.0, 1e-12);
}

TEST(StatsTest, KlIsPositiveForDifferent)
{
    std::vector<double> p{0.9, 0.1};
    std::vector<double> q{0.5, 0.5};
    EXPECT_GT(klDivergence(p, q), 0.0);
}

TEST(StatsTest, KlKnownValue)
{
    std::vector<double> p{0.5, 0.5};
    std::vector<double> q{0.25, 0.75};
    double expected = 0.5 * std::log(2.0) + 0.5 * std::log(2.0 / 3.0);
    EXPECT_NEAR(klDivergence(p, q), expected, 1e-12);
}

TEST(StatsTest, KlDiscountsZeroTrueProbability)
{
    // p has zero mass on outcome 1; q's mass there should not matter.
    std::vector<double> p{1.0, 0.0};
    std::vector<double> q{1.0, 0.0};
    std::vector<double> q2{0.999, 0.001};
    EXPECT_NEAR(klDivergence(p, q), 0.0, 1e-12);
    EXPECT_LT(klDivergence(p, q2), 0.01);
}

TEST(StatsTest, KlFloorsSampledZeros)
{
    std::vector<double> p{0.5, 0.5};
    std::vector<double> q{1.0, 0.0};
    double kl = klDivergence(p, q);
    EXPECT_TRUE(std::isfinite(kl));
    EXPECT_GT(kl, 1.0);
}

TEST(StatsTest, TotalVariationBounds)
{
    std::vector<double> p{1.0, 0.0};
    std::vector<double> q{0.0, 1.0};
    EXPECT_DOUBLE_EQ(totalVariation(p, q), 1.0);
    EXPECT_DOUBLE_EQ(totalVariation(p, p), 0.0);
}

TEST(StatsTest, NormalizeSumsToOne)
{
    std::vector<double> v{1.0, 2.0, 5.0};
    normalize(v);
    EXPECT_NEAR(v[0] + v[1] + v[2], 1.0, 1e-12);
    EXPECT_NEAR(v[2], 0.625, 1e-12);
}

TEST(StatsTest, NormalizeAllZeroIsNoop)
{
    std::vector<double> v{0.0, 0.0};
    normalize(v);
    EXPECT_DOUBLE_EQ(v[0], 0.0);
    EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(StatsTest, RankByDescending)
{
    std::vector<double> v{0.1, 0.7, 0.2};
    auto rank = rankByDescending(v);
    EXPECT_EQ(rank[0], 1u);
    EXPECT_EQ(rank[1], 2u);
    EXPECT_EQ(rank[2], 0u);
}

TEST(StatsTest, RankIsStableForTies)
{
    std::vector<double> v{0.5, 0.5, 0.5};
    auto rank = rankByDescending(v);
    EXPECT_EQ(rank[0], 0u);
    EXPECT_EQ(rank[1], 1u);
    EXPECT_EQ(rank[2], 2u);
}

TEST(StatsTest, MeanAndStddev)
{
    std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(v), 5.0);
    EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, MeanEmptyIsZero)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

} // namespace
} // namespace qkc
