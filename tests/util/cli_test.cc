#include "util/cli.h"

#include <gtest/gtest.h>

namespace qkc {
namespace {

Cli
makeCli(std::vector<const char*> args)
{
    args.insert(args.begin(), "prog");
    return Cli(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(CliTest, ParsesKeyValue)
{
    auto cli = makeCli({"--qubits=12", "--noise=0.005", "--mode=fast"});
    EXPECT_EQ(cli.getInt("qubits", 0), 12);
    EXPECT_DOUBLE_EQ(cli.getDouble("noise", 0.0), 0.005);
    EXPECT_EQ(cli.getString("mode", ""), "fast");
}

TEST(CliTest, DefaultsWhenMissing)
{
    auto cli = makeCli({});
    EXPECT_EQ(cli.getInt("qubits", 7), 7);
    EXPECT_DOUBLE_EQ(cli.getDouble("noise", 0.25), 0.25);
    EXPECT_EQ(cli.getString("mode", "slow"), "slow");
    EXPECT_FALSE(cli.has("qubits"));
}

TEST(CliTest, BareFlag)
{
    auto cli = makeCli({"--verbose"});
    EXPECT_TRUE(cli.has("verbose"));
    EXPECT_EQ(cli.getString("verbose", "x"), "");
}

TEST(CliTest, IgnoresPositional)
{
    auto cli = makeCli({"positional", "--x=1"});
    EXPECT_FALSE(cli.has("positional"));
    EXPECT_EQ(cli.getInt("x", 0), 1);
}

TEST(CliTest, NegativeNumbers)
{
    auto cli = makeCli({"--shift=-4", "--gamma=-0.5"});
    EXPECT_EQ(cli.getInt("shift", 0), -4);
    EXPECT_DOUBLE_EQ(cli.getDouble("gamma", 0.0), -0.5);
}

} // namespace
} // namespace qkc
