#include "util/min_fill.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/graph.h"

namespace qkc {
namespace {

TEST(MinFillTest, OrderIsPermutation)
{
    Graph g = gridGraph(3, 3);
    auto order = minFillOrdering(g);
    ASSERT_EQ(order.size(), 9u);
    auto sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < 9; ++i)
        EXPECT_EQ(sorted[i], i);
}

TEST(MinFillTest, TreeHasWidthOne)
{
    // A path graph is a tree: any min-fill order has induced width 1.
    Graph g(6);
    for (std::size_t v = 0; v + 1 < 6; ++v)
        g.addEdge(v, v + 1);
    auto order = minFillOrdering(g);
    EXPECT_EQ(inducedWidth(g, order), 1u);
}

TEST(MinFillTest, CliqueWidthIsNMinusOne)
{
    Graph g(5);
    for (std::size_t u = 0; u < 5; ++u)
        for (std::size_t v = u + 1; v < 5; ++v)
            g.addEdge(u, v);
    auto order = minFillOrdering(g);
    EXPECT_EQ(inducedWidth(g, order), 4u);
}

TEST(MinFillTest, GridWidthMatchesKnownBound)
{
    // Treewidth of an n x n grid is n; min-fill achieves it on small grids.
    Graph g = gridGraph(3, 3);
    auto order = minFillOrdering(g);
    EXPECT_LE(inducedWidth(g, order), 3u);
    EXPECT_GE(inducedWidth(g, order), 2u);
}

TEST(MinFillTest, BeatsBadOrderOnGrid)
{
    Graph g = gridGraph(4, 4);
    auto mf = minFillOrdering(g);
    std::vector<std::size_t> lex(16);
    for (std::size_t i = 0; i < 16; ++i)
        lex[i] = i;
    EXPECT_LE(inducedWidth(g, mf), inducedWidth(g, lex));
}

TEST(MinFillTest, EmptyGraph)
{
    Graph g(0);
    EXPECT_TRUE(minFillOrdering(g).empty());
}

TEST(MinFillTest, DisconnectedGraph)
{
    Graph g(4);
    g.addEdge(0, 1);
    g.addEdge(2, 3);
    auto order = minFillOrdering(g);
    EXPECT_EQ(order.size(), 4u);
    EXPECT_EQ(inducedWidth(g, order), 1u);
}

} // namespace
} // namespace qkc
