/**
 * Determinism contract for qkc::Rng: the entire toolchain's reproducibility
 * rests on identically-seeded generators producing identical streams across
 * every draw type, and differently-seeded generators diverging.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace qkc {
namespace {

TEST(RngDeterminismTest, IdenticalSeedsYieldIdenticalRawStreams)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(a.next(), b.next()) << "diverged at draw " << i;
}

TEST(RngDeterminismTest, IdenticalSeedsYieldIdenticalDerivedDraws)
{
    Rng a(987654321), b(987654321);
    std::vector<double> weights = {0.5, 1.5, 3.0, 0.25};
    for (int i = 0; i < 2000; ++i) {
        ASSERT_DOUBLE_EQ(a.uniform(), b.uniform());
        ASSERT_DOUBLE_EQ(a.uniform(-2.0, 7.0), b.uniform(-2.0, 7.0));
        ASSERT_EQ(a.below(97), b.below(97));
        ASSERT_EQ(a.bernoulli(0.3), b.bernoulli(0.3));
        ASSERT_DOUBLE_EQ(a.normal(), b.normal());
        ASSERT_EQ(a.categorical(weights), b.categorical(weights));
    }
}

TEST(RngDeterminismTest, IdenticalSeedsYieldIdenticalShuffles)
{
    Rng a(42), b(42);
    std::vector<int> va(128), vb(128);
    for (int i = 0; i < 128; ++i)
        va[i] = vb[i] = i;
    for (int round = 0; round < 50; ++round) {
        a.shuffle(va);
        b.shuffle(vb);
        ASSERT_EQ(va, vb) << "diverged at round " << round;
    }
}

TEST(RngDeterminismTest, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    bool anyDifferent = false;
    for (int i = 0; i < 64 && !anyDifferent; ++i)
        anyDifferent = a.next() != b.next();
    EXPECT_TRUE(anyDifferent);
}

TEST(RngDeterminismTest, ReseedingRestartsTheStream)
{
    Rng a(777);
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 32; ++i)
        first.push_back(a.next());

    Rng b(777);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(b.next(), first[i]) << "draw " << i;
}

} // namespace
} // namespace qkc
