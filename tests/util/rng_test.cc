#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

namespace qkc {
namespace {

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-2.5, 3.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 3.5);
    }
}

TEST(RngTest, UniformMeanIsCentered)
{
    Rng rng(13);
    double acc = 0.0;
    const int kN = 100000;
    for (int i = 0; i < kN; ++i)
        acc += rng.uniform();
    EXPECT_NEAR(acc / kN, 0.5, 0.01);
}

TEST(RngTest, BelowStaysInRange)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.below(7);
        EXPECT_LT(v, 7u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(RngTest, BelowOneAlwaysZero)
{
    Rng rng(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(11);
    int hits = 0;
    const int kN = 100000;
    for (int i = 0; i < kN; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, NormalMoments)
{
    Rng rng(17);
    const int kN = 100000;
    double sum = 0.0, sumSq = 0.0;
    for (int i = 0; i < kN; ++i) {
        double x = rng.normal();
        sum += x;
        sumSq += x * x;
    }
    EXPECT_NEAR(sum / kN, 0.0, 0.02);
    EXPECT_NEAR(sumSq / kN, 1.0, 0.03);
}

TEST(RngTest, CategoricalMatchesWeights)
{
    Rng rng(23);
    std::vector<double> weights{1.0, 3.0, 6.0};
    std::vector<int> counts(3, 0);
    const int kN = 60000;
    for (int i = 0; i < kN; ++i)
        ++counts[rng.categorical(weights)];
    EXPECT_NEAR(counts[0] / static_cast<double>(kN), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(kN), 0.3, 0.015);
    EXPECT_NEAR(counts[2] / static_cast<double>(kN), 0.6, 0.015);
}

TEST(RngTest, CategoricalZeroWeightNeverPicked)
{
    Rng rng(29);
    std::vector<double> weights{0.0, 1.0, 0.0};
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(rng.categorical(weights), 1u);
}

TEST(RngTest, CategoricalTrailingZerosNeverSelected)
{
    // Regression: the out-of-accumulation fallback used to return the LAST
    // index even when its weight was zero — a zero-probability outcome.
    // The fallback must land on the last positive-weight index instead.
    Rng rng(41);
    std::vector<double> weights{0.25, 0.75, 0.0, 0.0};
    for (int i = 0; i < 20000; ++i)
        EXPECT_LE(rng.categorical(weights), 1u);

    EXPECT_EQ(rng.categorical({0.0, 0.0, 1.0, 0.0}), 2u);
}

TEST(RngTest, CategoricalAllZeroWeightsThrows)
{
    Rng rng(43);
    EXPECT_THROW(rng.categorical({0.0, 0.0, 0.0}), std::invalid_argument);
}

TEST(RngTest, ShufflePreservesElements)
{
    Rng rng(31);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleActuallyPermutes)
{
    Rng rng(37);
    std::vector<int> v(50);
    for (int i = 0; i < 50; ++i)
        v[i] = i;
    auto orig = v;
    rng.shuffle(v);
    EXPECT_NE(v, orig);
}

} // namespace
} // namespace qkc
