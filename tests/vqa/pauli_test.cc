#include "vqa/pauli.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "statevector/statevector_simulator.h"

namespace qkc {
namespace {

TEST(PauliStringTest, ParseAndClassify)
{
    PauliString zz("ZZ");
    EXPECT_TRUE(zz.isDiagonal());
    PauliString xy("XIY");
    EXPECT_FALSE(xy.isDiagonal());
    EXPECT_EQ(xy.numQubits(), 3u);
    EXPECT_THROW(PauliString(""), std::invalid_argument);
    EXPECT_THROW(PauliString("XQ"), std::invalid_argument);
}

TEST(PauliStringTest, EigenvalueParity)
{
    PauliString zz("ZZ");
    EXPECT_EQ(zz.eigenvalue(0b00), 1);
    EXPECT_EQ(zz.eigenvalue(0b01), -1);
    EXPECT_EQ(zz.eigenvalue(0b10), -1);
    EXPECT_EQ(zz.eigenvalue(0b11), 1);

    PauliString zi("ZI");
    EXPECT_EQ(zi.eigenvalue(0b01), 1);   // identity qubit ignored
    EXPECT_EQ(zi.eigenvalue(0b10), -1);
}

/** Exact <P> on a circuit's output state via the rotated distribution. */
double
exactExpectation(const Circuit& c, const PauliString& p)
{
    StateVectorSimulator sv;
    auto probs = sv.simulate(p.withMeasurementBasis(c)).probabilities();
    double e = 0.0;
    for (std::uint64_t x = 0; x < probs.size(); ++x)
        e += probs[x] * p.eigenvalue(x);
    return e;
}

TEST(PauliStringTest, BellStateStabilizers)
{
    // |Phi+> is stabilized by XX and ZZ, and <XZ> = <ZX> = 0, <YY> = -1.
    Circuit bell = bellCircuit();
    EXPECT_NEAR(exactExpectation(bell, PauliString("XX")), 1.0, 1e-9);
    EXPECT_NEAR(exactExpectation(bell, PauliString("ZZ")), 1.0, 1e-9);
    EXPECT_NEAR(exactExpectation(bell, PauliString("YY")), -1.0, 1e-9);
    EXPECT_NEAR(exactExpectation(bell, PauliString("XZ")), 0.0, 1e-9);
    EXPECT_NEAR(exactExpectation(bell, PauliString("ZI")), 0.0, 1e-9);
}

TEST(PauliStringTest, SingleQubitRotationExpectations)
{
    // Ry(theta)|0>: <Z> = cos(theta), <X> = sin(theta).
    double theta = 0.8;
    Circuit c(1);
    c.ry(0, theta);
    EXPECT_NEAR(exactExpectation(c, PauliString("Z")), std::cos(theta), 1e-9);
    EXPECT_NEAR(exactExpectation(c, PauliString("X")), std::sin(theta), 1e-9);
    EXPECT_NEAR(exactExpectation(c, PauliString("Y")), 0.0, 1e-9);
}

TEST(PauliHamiltonianTest, SampledExpectationMatchesExact)
{
    // H = 0.5 XX + 0.25 ZZ - 0.75 YY + 1.5 I on the Bell state:
    // 0.5 + 0.25 + 0.75 + 1.5 = 3.0.
    PauliHamiltonian h;
    h.terms = {{0.5, PauliString("XX")},
               {0.25, PauliString("ZZ")},
               {-0.75, PauliString("YY")},
               {1.5, PauliString("II")}};

    StateVectorBackend backend;
    Rng rng(3);
    double estimate = h.expectation(bellCircuit(), backend, 20000, rng);
    EXPECT_NEAR(estimate, 3.0, 0.05);
}

TEST(PauliHamiltonianTest, KcBackendAgrees)
{
    PauliHamiltonian h;
    h.terms = {{1.0, PauliString("XX")}, {1.0, PauliString("ZZ")}};
    KnowledgeCompilationBackend kc;
    Rng rng(5);
    double estimate = h.expectation(bellCircuit(), kc, 6000, rng);
    EXPECT_NEAR(estimate, 2.0, 0.1);
    // Two differently-rotated circuits were sampled: two compilations.
    EXPECT_EQ(kc.compileCount(), 2u);
}

TEST(PauliStringTest, QubitCountMismatchThrows)
{
    EXPECT_THROW(PauliString("X").withMeasurementBasis(bellCircuit()),
                 std::invalid_argument);
}

} // namespace
} // namespace qkc
