#include "vqa/pauli.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "statevector/statevector_simulator.h"
#include "vqa/backends.h"

namespace qkc {
namespace {

TEST(PauliStringTest, ParseAndClassify)
{
    PauliString zz("ZZ");
    EXPECT_TRUE(zz.isDiagonal());
    PauliString xy("XIY");
    EXPECT_FALSE(xy.isDiagonal());
    EXPECT_EQ(xy.numQubits(), 3u);
    EXPECT_THROW(PauliString(""), std::invalid_argument);
    EXPECT_THROW(PauliString("XQ"), std::invalid_argument);
}

TEST(PauliStringTest, EigenvalueParity)
{
    PauliString zz("ZZ");
    EXPECT_EQ(zz.eigenvalue(0b00), 1);
    EXPECT_EQ(zz.eigenvalue(0b01), -1);
    EXPECT_EQ(zz.eigenvalue(0b10), -1);
    EXPECT_EQ(zz.eigenvalue(0b11), 1);

    PauliString zi("ZI");
    EXPECT_EQ(zi.eigenvalue(0b01), 1);   // identity qubit ignored
    EXPECT_EQ(zi.eigenvalue(0b10), -1);
}

/** Exact <P> on a circuit's output state via the rotated distribution. */
double
exactExpectation(const Circuit& c, const PauliString& p)
{
    StateVectorSimulator sv;
    auto probs = sv.simulate(p.withMeasurementBasis(c)).probabilities();
    double e = 0.0;
    for (std::uint64_t x = 0; x < probs.size(); ++x)
        e += probs[x] * p.eigenvalue(x);
    return e;
}

TEST(PauliStringTest, BellStateStabilizers)
{
    // |Phi+> is stabilized by XX and ZZ, and <XZ> = <ZX> = 0, <YY> = -1.
    Circuit bell = bellCircuit();
    EXPECT_NEAR(exactExpectation(bell, PauliString("XX")), 1.0, 1e-9);
    EXPECT_NEAR(exactExpectation(bell, PauliString("ZZ")), 1.0, 1e-9);
    EXPECT_NEAR(exactExpectation(bell, PauliString("YY")), -1.0, 1e-9);
    EXPECT_NEAR(exactExpectation(bell, PauliString("XZ")), 0.0, 1e-9);
    EXPECT_NEAR(exactExpectation(bell, PauliString("ZI")), 0.0, 1e-9);
}

TEST(PauliStringTest, SingleQubitRotationExpectations)
{
    // Ry(theta)|0>: <Z> = cos(theta), <X> = sin(theta).
    double theta = 0.8;
    Circuit c(1);
    c.ry(0, theta);
    EXPECT_NEAR(exactExpectation(c, PauliString("Z")), std::cos(theta), 1e-9);
    EXPECT_NEAR(exactExpectation(c, PauliString("X")), std::sin(theta), 1e-9);
    EXPECT_NEAR(exactExpectation(c, PauliString("Y")), 0.0, 1e-9);
}

TEST(PauliSumTest, ClassifiesDiagonality)
{
    PauliSum diag;
    diag.add(1.0, PauliString("ZZ")).add(-0.5, PauliString("IZ"));
    EXPECT_TRUE(diag.isDiagonal());
    EXPECT_EQ(diag.numQubits(), 2u);

    PauliSum mixed = diag;
    mixed.add(0.25, PauliString("XI"));
    EXPECT_FALSE(mixed.isDiagonal());
}

TEST(PauliSumTest, SessionExpectationMatchesBellValues)
{
    // H = 0.5 XX + 0.25 ZZ - 0.75 YY + 1.5 I on the Bell state:
    // 0.5 + 0.25 + 0.75 + 1.5 = 3.0 — exact through the sv session.
    PauliSum h;
    h.add(0.5, PauliString("XX"))
        .add(0.25, PauliString("ZZ"))
        .add(-0.75, PauliString("YY"))
        .add(1.5, PauliString("II"));

    StateVectorBackend backend;
    auto session = backend.open(bellCircuit());
    Rng rng(3);
    Result r = session->run(Expectation{h, 0}, rng);
    EXPECT_TRUE(r.meta.exact);
    EXPECT_NEAR(r.expectation, 3.0, 1e-9);
}

TEST(PauliSumTest, KcSessionServesNonDiagonalTermsExactly)
{
    // XX is non-diagonal: the kc session answers it from AC amplitude
    // queries on ideal circuits — no rotated-basis sampling, no recompile.
    PauliSum h;
    h.add(1.0, PauliString("XX")).add(1.0, PauliString("ZZ"));
    KnowledgeCompilationBackend kc;
    auto session = kc.open(bellCircuit());
    Rng rng(5);
    Result r = session->run(Expectation{h, 0}, rng);
    EXPECT_TRUE(r.meta.exact);
    EXPECT_EQ(r.meta.fallbackShots, 0u);
    EXPECT_NEAR(r.expectation, 2.0, 1e-9);
    EXPECT_EQ(session->planBuilds(), 1u);
}

TEST(PauliSumTest, TnSessionFallsBackToSampling)
{
    // The tensor-network session estimates <H> from rotated-basis shots;
    // the estimate must land within CLT distance of the exact value and be
    // flagged as non-exact.
    PauliSum h;
    h.add(0.5, PauliString("XX")).add(0.25, PauliString("ZZ"));
    TensorNetworkBackend tn;
    auto session = tn.open(bellCircuit());
    Rng rng(7);
    Result r = session->run(Expectation{h, 4000}, rng);
    EXPECT_FALSE(r.meta.exact);
    EXPECT_GT(r.meta.fallbackShots, 0u);
    EXPECT_NEAR(r.expectation, 0.75, 0.08);
}

TEST(PauliStringTest, QubitCountMismatchThrows)
{
    EXPECT_THROW(PauliString("X").withMeasurementBasis(bellCircuit()),
                 std::invalid_argument);
}

} // namespace
} // namespace qkc
