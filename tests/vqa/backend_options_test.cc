#include "vqa/backends.h"

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "circuit/noise.h"
#include "util/rng.h"

namespace qkc {
namespace {

Circuit
bell()
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    return c;
}

TEST(BackendOptionsTest, OptionSpecsResolveToCanonicalBackends)
{
    EXPECT_EQ(makeBackend("sv:threads=2")->name(), "statevector");
    EXPECT_EQ(makeBackend("statevector:threads=2,fuse=0")->name(),
              "statevector");
    EXPECT_EQ(makeBackend("dm:threads=4,fuse=1")->name(), "densitymatrix");
    EXPECT_EQ(makeBackend("kc:burnin=8")->name(), "knowledgecompilation");
    EXPECT_EQ(makeBackend("kc:burnin=8,thin=2")->name(),
              "knowledgecompilation");
}

TEST(BackendOptionsTest, DdGcOptionsParse)
{
    BackendSpec spec = parseBackendSpec("dd:gc=0");
    EXPECT_EQ(spec.name, "decisiondiagram");
    EXPECT_FALSE(spec.options.gc);

    spec = parseBackendSpec("dd:gc=1,gcthreshold=4096");
    EXPECT_TRUE(spec.options.gc);
    EXPECT_EQ(spec.options.gcThreshold, 4096u);

    // Defaults: GC on, the package's documented threshold.
    spec = parseBackendSpec("dd");
    EXPECT_TRUE(spec.options.gc);
    EXPECT_EQ(spec.options.gcThreshold, std::size_t{1} << 16);

    EXPECT_THROW(makeBackend("dd:gc=2"), std::invalid_argument);
    EXPECT_THROW(makeBackend("dd:gcthreshold=0"), std::invalid_argument);
    // gc is a dd-only knob: the other backends must reject it.
    EXPECT_THROW(makeBackend("sv:gc=1"), std::invalid_argument);
    EXPECT_THROW(makeBackend("tn:gcthreshold=8"), std::invalid_argument);
}

TEST(BackendOptionsTest, UnknownOptionsThrow)
{
    EXPECT_THROW(makeBackend("sv:bogus=1"), std::invalid_argument);
    EXPECT_THROW(makeBackend("dm:burnin=8"), std::invalid_argument);
    EXPECT_THROW(makeBackend("kc:threads=2"), std::invalid_argument);
    EXPECT_THROW(makeBackend("tn:threads=2"), std::invalid_argument);
    EXPECT_THROW(makeBackend("dd:bogus=2"), std::invalid_argument);
    // threads became a dd knob when trajectory lanes landed.
    EXPECT_EQ(makeBackend("dd:threads=2")->name(), "decisiondiagram");
}

TEST(BackendOptionsTest, MalformedOptionsThrow)
{
    EXPECT_THROW(makeBackend("sv:"), std::invalid_argument);
    EXPECT_THROW(makeBackend("sv:threads"), std::invalid_argument);
    EXPECT_THROW(makeBackend("sv:threads=abc"), std::invalid_argument);
    EXPECT_THROW(makeBackend("sv:=3"), std::invalid_argument);
    EXPECT_THROW(makeBackend("sv:threads=2,,fuse=1"), std::invalid_argument);
    EXPECT_THROW(makeBackend("sv:fuse=2"), std::invalid_argument);
    EXPECT_THROW(makeBackend("kc:thin=0"), std::invalid_argument);
    // Overflowing values must be rejected, not clamped to LONG_MAX (a
    // clamped burnin would hang the first Gibbs sample "forever").
    EXPECT_THROW(makeBackend("kc:burnin=644444444444444444444"),
                 std::invalid_argument);
}

TEST(BackendOptionsTest, UnknownBackendStillListsKnownNames)
{
    try {
        makeBackend("qsim:threads=2");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("statevector"),
                  std::string::npos);
    }
}

TEST(BackendOptionsTest, OptionedBackendsSampleCorrectly)
{
    const Circuit c = bell();
    for (const char* spec :
         {"sv:threads=2,fuse=1", "sv:fuse=0", "dm:threads=2"}) {
        Rng rng(7);
        auto samples = makeBackend(spec)->sample(c, 400, rng);
        std::size_t odd = 0;
        for (auto s : samples) {
            EXPECT_TRUE(s == 0 || s == 3) << "spec " << spec;
            odd += s == 3 ? 1 : 0;
        }
        EXPECT_GT(odd, 100u);
        EXPECT_LT(odd, 300u);
    }
}

TEST(BackendOptionsTest, KcBurninOptionIsAccepted)
{
    const Circuit c = bell();
    Rng rng(3);
    auto samples = makeBackend("kc:burnin=4,thin=1")->sample(c, 50, rng);
    EXPECT_EQ(samples.size(), 50u);
    for (auto s : samples)
        EXPECT_TRUE(s == 0 || s == 3);
}

TEST(BackendOptionsTest, NoisyCircuitsWorkThroughOptionedBackends)
{
    const Circuit noisy =
        bell().withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.05);
    Rng rng(5);
    auto samples = makeBackend("sv:threads=2")->sample(noisy, 100, rng);
    EXPECT_EQ(samples.size(), 100u);
}

} // namespace
} // namespace qkc
