#include "vqa/nelder_mead.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qkc {
namespace {

TEST(NelderMeadTest, MinimizesQuadratic)
{
    auto f = [](const std::vector<double>& x) {
        return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
    };
    NelderMeadOptions options;
    options.maxIterations = 400;
    auto result = nelderMead(f, {0.0, 0.0}, options);
    EXPECT_NEAR(result.best[0], 3.0, 1e-3);
    EXPECT_NEAR(result.best[1], -1.0, 1e-3);
    EXPECT_NEAR(result.value, 0.0, 1e-5);
}

TEST(NelderMeadTest, MinimizesRosenbrock)
{
    auto f = [](const std::vector<double>& x) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    NelderMeadOptions options;
    options.maxIterations = 3000;
    options.tolerance = 1e-14;
    auto result = nelderMead(f, {-1.2, 1.0}, options);
    EXPECT_NEAR(result.best[0], 1.0, 1e-2);
    EXPECT_NEAR(result.best[1], 1.0, 1e-2);
}

TEST(NelderMeadTest, OneDimensional)
{
    auto f = [](const std::vector<double>& x) {
        return std::cos(x[0]);  // minimum at pi
    };
    NelderMeadOptions options;
    options.maxIterations = 200;
    auto result = nelderMead(f, {2.0}, options);
    EXPECT_NEAR(result.best[0], M_PI, 1e-3);
    EXPECT_NEAR(result.value, -1.0, 1e-6);
}

TEST(NelderMeadTest, ReportsEvaluationCount)
{
    auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
    auto result = nelderMead(f, {5.0}, {.maxIterations = 50});
    EXPECT_GT(result.evaluations, 10u);
    EXPECT_LE(result.iterations, 50u);
}

TEST(NelderMeadTest, RespectsIterationBudget)
{
    std::size_t calls = 0;
    auto f = [&](const std::vector<double>& x) {
        ++calls;
        return std::sin(x[0]) + x[1] * x[1];
    };
    auto result = nelderMead(f, {0.0, 4.0}, {.maxIterations = 5});
    EXPECT_LE(result.iterations, 5u);
    EXPECT_EQ(calls, result.evaluations);
}

TEST(NelderMeadTest, ToleranceStopsEarly)
{
    auto f = [](const std::vector<double>&) { return 1.0; };  // flat
    auto result = nelderMead(f, {0.0, 0.0}, {.maxIterations = 1000});
    EXPECT_LT(result.iterations, 3u);
}

} // namespace
} // namespace qkc
