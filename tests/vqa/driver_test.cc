#include "vqa/driver.h"

#include <gtest/gtest.h>

#include "util/graph.h"

namespace qkc {
namespace {

VqaOptions
smallRun(std::uint64_t seed)
{
    VqaOptions options;
    options.samplesPerEvaluation = 128;
    options.optimizer.maxIterations = 15;
    options.seed = seed;
    return options;
}

TEST(VqaDriverTest, QaoaImprovesOverUniformWithKc)
{
    Rng rng(3);
    auto problem = QaoaMaxCut::randomRegular(6, 3, 1, rng);
    KnowledgeCompilationBackend backend;
    auto result = runQaoaMaxCut(problem, backend, smallRun(5));
    // Uniform superposition cuts half the edges on average.
    double uniform = problem.graph().numEdges() / 2.0;
    EXPECT_LT(result.bestObjective, -(uniform + 0.1));
    EXPECT_GT(result.circuitEvaluations, 10u);
}

TEST(VqaDriverTest, KcSessionCompilesOnce)
{
    // Every Nelder-Mead evaluation uses the same circuit structure, so the
    // KC session must compile exactly once and only refresh weights — the
    // paper's central reuse claim, reported by the driver's metadata.
    Rng rng(7);
    auto problem = QaoaMaxCut::randomRegular(6, 3, 1, rng);
    KnowledgeCompilationBackend backend;
    auto result = runQaoaMaxCut(problem, backend, smallRun(9));
    EXPECT_EQ(result.planBuilds, 1u);
    EXPECT_EQ(result.planReuses, result.circuitEvaluations - 1);
    EXPECT_GT(result.circuitEvaluations, 10u);
}

TEST(VqaDriverTest, StateVectorSessionPlansOnce)
{
    // The redesign generalizes the reuse story beyond kc: the sv session
    // runs circuit fusion + kernel classification once per structure and
    // every later evaluation rebinds parameters in place.
    Rng rng(7);
    auto problem = QaoaMaxCut::randomRegular(6, 3, 1, rng);
    StateVectorBackend backend;
    auto result = runQaoaMaxCut(problem, backend, smallRun(9));
    EXPECT_EQ(result.planBuilds, 1u);
    EXPECT_EQ(result.planReuses, result.circuitEvaluations - 1);
}

TEST(VqaDriverTest, StateVectorAndKcFindSimilarOptima)
{
    Rng rng(11);
    auto problem = QaoaMaxCut::randomRegular(6, 3, 1, rng);
    KnowledgeCompilationBackend kc;
    StateVectorBackend sv;
    auto rKc = runQaoaMaxCut(problem, kc, smallRun(13));
    auto rSv = runQaoaMaxCut(problem, sv, smallRun(13));
    EXPECT_NEAR(rKc.bestObjective, rSv.bestObjective, 0.8);
}

TEST(VqaDriverTest, VqeLowersEnergy)
{
    Rng rng(17);
    VqeIsing problem(2, 2, 1, rng);
    KnowledgeCompilationBackend backend;
    auto result = runVqeIsing(problem, backend, smallRun(19));
    // The uniform superposition has expected energy ~0 (random signs);
    // the optimizer should find something decidedly below it and above the
    // ground state.
    EXPECT_LT(result.bestObjective, -0.2);
    EXPECT_GE(result.bestObjective, problem.groundStateEnergy() - 1e-9);
}

TEST(VqaDriverTest, ExactExpectationObjectiveMatchesWorkload)
{
    // With exactExpectation the sv session scores the Expectation task:
    // the objective at the optimum must equal the exact expected energy of
    // the optimal circuit (no shot noise), and stay above the ground state.
    Rng rng(17);
    VqeIsing problem(2, 2, 1, rng);
    StateVectorBackend backend;
    VqaOptions options = smallRun(19);
    options.exactExpectation = true;
    auto result = runVqeIsing(problem, backend, options);
    EXPECT_GE(result.bestObjective, problem.groundStateEnergy() - 1e-9);

    // Re-evaluate the reported optimum exactly via the distribution.
    Circuit best = problem.circuit(result.bestParams);
    auto session = backend.open(best);
    Rng queryRng(1);
    auto dist = session->run(Probabilities{{}}, queryRng).probabilities;
    EXPECT_NEAR(result.bestObjective, problem.expectedEnergyExact(dist),
                1e-9);
}

TEST(VqaDriverTest, NoisyRunUsesChannels)
{
    Rng rng(23);
    auto problem = QaoaMaxCut::randomRegular(4, 3, 1, rng);
    VqaOptions options = smallRun(29);
    options.noisy = true;
    options.noiseStrength = 0.01;
    options.optimizer.maxIterations = 6;
    options.samplesPerEvaluation = 64;

    DensityMatrixBackend backend;
    auto result = runQaoaMaxCut(problem, backend, options);
    EXPECT_GT(result.circuitEvaluations, 4u);
    EXPECT_GT(result.sampleSeconds, 0.0);
}

TEST(VqaDriverTest, BackendNames)
{
    EXPECT_EQ(StateVectorBackend().name(), "statevector");
    EXPECT_EQ(DensityMatrixBackend().name(), "densitymatrix");
    EXPECT_EQ(TensorNetworkBackend().name(), "tensornetwork");
    EXPECT_EQ(DecisionDiagramBackend().name(), "decisiondiagram");
    EXPECT_EQ(KnowledgeCompilationBackend().name(), "knowledgecompilation");
}

TEST(VqaDriverTest, MakeBackendResolvesEveryRegistryName)
{
    // Every canonical name resolves to a backend that reports that name —
    // the registry and the classes can't drift apart.
    for (const std::string& name : backendNames()) {
        auto backend = makeBackend(name);
        ASSERT_NE(backend, nullptr) << name;
        EXPECT_EQ(backend->name(), name);
    }
}

TEST(VqaDriverTest, MakeBackendAcceptsShortAliases)
{
    EXPECT_EQ(makeBackend("sv")->name(), "statevector");
    EXPECT_EQ(makeBackend("dm")->name(), "densitymatrix");
    EXPECT_EQ(makeBackend("tn")->name(), "tensornetwork");
    EXPECT_EQ(makeBackend("dd")->name(), "decisiondiagram");
    EXPECT_EQ(makeBackend("kc")->name(), "knowledgecompilation");
}

TEST(VqaDriverTest, MakeBackendRejectsUnknownNames)
{
    EXPECT_THROW(makeBackend("qsim"), std::invalid_argument);
    EXPECT_THROW(makeBackend(""), std::invalid_argument);
    EXPECT_THROW(makeBackend("Statevector"), std::invalid_argument);
}

TEST(VqaDriverTest, DecisionDiagramBackendDrivesQaoa)
{
    Rng rng(31);
    auto problem = QaoaMaxCut::randomRegular(6, 3, 1, rng);
    auto kc = makeBackend("kc");
    auto dd = makeBackend("dd");
    auto rKc = runQaoaMaxCut(problem, *kc, smallRun(13));
    auto rDd = runQaoaMaxCut(problem, *dd, smallRun(13));
    EXPECT_NEAR(rKc.bestObjective, rDd.bestObjective, 0.8);
}

TEST(VqaDriverTest, DecisionDiagramBackendHandlesNoisyRun)
{
    Rng rng(37);
    auto problem = QaoaMaxCut::randomRegular(4, 3, 1, rng);
    VqaOptions options = smallRun(41);
    options.noisy = true;
    options.noiseStrength = 0.01;
    options.optimizer.maxIterations = 4;
    options.samplesPerEvaluation = 32;

    auto backend = makeBackend("decisiondiagram");
    auto result = runQaoaMaxCut(problem, *backend, options);
    EXPECT_GT(result.circuitEvaluations, 3u);
}

} // namespace
} // namespace qkc
