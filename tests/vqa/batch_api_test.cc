/**
 * Batched parameter-binding tasks (ISSUE 5): Session::runBatch over
 * QKC_THREADS={1,N} must be bit-identical to a sequential bind/run loop on
 * every backend, a parameter-shift gradient computed through one batch must
 * match finite differences, and the rebind metadata must keep telling the
 * truth when the binds happen on worker lanes.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "circuit/noise.h"
#include "exec/execution_plan.h"
#include "exec/thread_pool.h"
#include "vqa/driver.h"
#include "vqa/workloads.h"

namespace qkc {
namespace {

/** Restores the process-wide default thread count on scope exit. */
class ThreadGuard {
  public:
    ThreadGuard() : saved_(defaultThreads()) {}
    ~ThreadGuard() { setDefaultThreads(saved_); }

  private:
    std::size_t saved_;
};

/** A small parameterized ansatz every backend can run. */
Circuit
ansatz(std::size_t n, const std::vector<double>& params)
{
    Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    std::size_t k = 0;
    for (std::size_t q = 0; q + 1 < n; ++q) {
        c.cnot(q, q + 1);
        c.rz(q + 1, params[k++ % params.size()]);
    }
    for (std::size_t q = 0; q < n; ++q)
        c.rx(q, params[k++ % params.size()]);
    return c;
}

std::vector<ParamBinding>
bindingsFor(std::size_t n, std::size_t count, bool noisy = false)
{
    std::vector<ParamBinding> out;
    out.reserve(count);
    for (std::size_t b = 0; b < count; ++b) {
        Circuit c = ansatz(n, {0.3 + 0.1 * static_cast<double>(b),
                               0.7 - 0.05 * static_cast<double>(b)});
        if (noisy)
            c = c.withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.02);
        out.push_back(std::move(c));
    }
    return out;
}

/**
 * The reference semantics runBatch promises to reproduce: one seed per
 * binding drawn from `rng` in batch order, then a plain bind/run loop with
 * a fresh per-binding generator.
 */
std::vector<Result>
sequentialLoop(Session& session, const std::vector<ParamBinding>& bindings,
               const Task& task, Rng& rng)
{
    std::vector<std::uint64_t> seeds(bindings.size());
    for (auto& s : seeds)
        s = rng.next();
    std::vector<Result> out;
    out.reserve(bindings.size());
    for (std::size_t i = 0; i < bindings.size(); ++i) {
        session.bind(bindings[i]);
        Rng bindingRng(seeds[i]);
        out.push_back(session.run(task, bindingRng));
    }
    return out;
}

void
expectSamePayload(const Result& a, const Result& b, const char* what)
{
    EXPECT_EQ(a.samples, b.samples) << what;
    EXPECT_EQ(a.expectation, b.expectation) << what; // bit-identical, no tol
    EXPECT_EQ(a.amplitudes, b.amplitudes) << what;
    EXPECT_EQ(a.probabilities, b.probabilities) << what;
}

/**
 * Runs `task` over the bindings three ways — sequential loop, runBatch at 1
 * thread, runBatch at `threads` threads — and requires bit-identical
 * payloads throughout.
 */
void
checkBatchParity(const std::string& spec, const std::vector<ParamBinding>& b,
                 const Task& task, std::size_t threads = 4)
{
    ThreadGuard guard;
    auto backend = makeBackend(spec);

    setDefaultThreads(1);
    Rng seqRng(11);
    auto seqSession = backend->open(b.front());
    const auto expected = sequentialLoop(*seqSession, b, task, seqRng);

    for (std::size_t t : {std::size_t{1}, threads}) {
        setDefaultThreads(t);
        Rng rng(11);
        auto session = backend->open(b.front());
        const auto got = session->runBatch(b, task, rng);
        ASSERT_EQ(got.size(), expected.size()) << spec << " t=" << t;
        for (std::size_t i = 0; i < got.size(); ++i)
            expectSamePayload(got[i], expected[i],
                              (spec + " t=" + std::to_string(t) + " i=" +
                               std::to_string(i))
                                  .c_str());
    }
}

// ---------------------------------------------------------------------------
// runBatch == sequential bind/run loop, bit-identically, on every backend
// ---------------------------------------------------------------------------

TEST(RunBatchTest, SvSampleMatchesSequentialLoop)
{
    checkBatchParity("sv", bindingsFor(5, 6), Sample{64});
}

TEST(RunBatchTest, SvThreadedOptionsMatchSequentialLoop)
{
    // sv reads its lane count from the session options, not QKC_THREADS.
    auto backend = makeBackend("sv:threads=4");
    const auto b = bindingsFor(5, 6);
    Rng seqRng(3);
    auto seqSession = makeBackend("sv:threads=1")->open(b.front());
    const auto expected = sequentialLoop(*seqSession, b, Sample{64}, seqRng);
    Rng rng(3);
    auto session = backend->open(b.front());
    const auto got = session->runBatch(b, Sample{64}, rng);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSamePayload(got[i], expected[i], "sv:threads=4");
}

TEST(RunBatchTest, SvNoisyTrajectoriesMatchSequentialLoop)
{
    checkBatchParity("sv", bindingsFor(4, 4, /*noisy=*/true), Sample{16});
}

TEST(RunBatchTest, SvExpectationMatchesSequentialLoop)
{
    PauliSum h;
    h.add(0.7, PauliString("ZZIII")).add(-0.4, PauliString("IXXII"));
    checkBatchParity("sv", bindingsFor(5, 5), Expectation{h, 128});
}

TEST(RunBatchTest, DmExpectationMatchesSequentialLoop)
{
    PauliSum h;
    h.add(1.0, PauliString("ZZII")).add(0.25, PauliString("IYYI"));
    checkBatchParity("dm", bindingsFor(4, 4, /*noisy=*/true),
                     Expectation{h, 64});
}

TEST(RunBatchTest, DmSampleMatchesSequentialLoop)
{
    checkBatchParity("dm", bindingsFor(4, 4), Sample{32});
}

TEST(RunBatchTest, DdSampleMatchesSequentialLoop)
{
    checkBatchParity("dd", bindingsFor(5, 6), Sample{32});
}

TEST(RunBatchTest, DdAmplitudesMatchSequentialLoop)
{
    checkBatchParity("dd", bindingsFor(4, 4), Amplitudes{{0, 3, 7}});
}

TEST(RunBatchTest, TnSampleMatchesSequentialLoop)
{
    checkBatchParity("tn", bindingsFor(4, 3), Sample{16});
}

TEST(RunBatchTest, KcSampleMatchesSequentialLoop)
{
    checkBatchParity("kc:burnin=8,thin=1", bindingsFor(4, 3), Sample{16});
}

TEST(RunBatchTest, KcExpectationMatchesSequentialLoop)
{
    PauliSum h;
    h.add(0.5, PauliString("ZIII")).add(0.5, PauliString("IZZI"));
    checkBatchParity("kc:burnin=8", bindingsFor(4, 3), Expectation{h, 0});
}

TEST(RunBatchTest, ProbabilitiesMatchSequentialLoop)
{
    checkBatchParity("sv", bindingsFor(4, 4), Probabilities{{0, 2}});
}

// ---------------------------------------------------------------------------
// Metadata: batched binds keep the Section 3.2 counters honest
// ---------------------------------------------------------------------------

TEST(RunBatchTest, SvBatchCountsOneReusePerBinding)
{
    ThreadGuard guard;
    setDefaultThreads(4);
    const auto b = bindingsFor(5, 6);
    auto session = makeBackend("sv:threads=4")->open(b.front());
    Rng rng(1);
    const auto results = session->runBatch(b, Sample{16}, rng);
    // The structure was planned once — at open — and every binding in the
    // batch rebound it, whichever lane it ran on.
    EXPECT_EQ(session->planBuilds(), 1u);
    EXPECT_EQ(session->planReuses(), b.size());
    for (const Result& r : results) {
        EXPECT_EQ(r.meta.planBuilds, 1u);
        EXPECT_EQ(r.meta.planReuses, b.size());
    }
    // The session is left bound to the last binding, like a plain loop.
    EXPECT_TRUE(sameStructure(session->circuit(), b.back()));
}

TEST(RunBatchTest, SerializedBackendsStillCountReuses)
{
    ThreadGuard guard;
    setDefaultThreads(4);
    const auto b = bindingsFor(4, 4);
    auto session = makeBackend("dm")->open(b.front());
    Rng rng(1);
    session->runBatch(b, Sample{8}, rng);
    // dm serializes the batch (documented in cloneForBatch) but its plan —
    // now a real superoperator plan — rebinds per binding.
    EXPECT_EQ(session->planBuilds(), 1u);
    EXPECT_EQ(session->planReuses(), b.size());
}

TEST(RunBatchTest, TaskExceptionSurfacesCleanlyFromParallelBatch)
{
    // Regression (code review): an unsupported task thrown inside a worker
    // lane used to escape the pool chunk body — std::terminate from a
    // worker, or a permanently-claimed pool from the caller. It must
    // surface as the same std::invalid_argument the sequential loop throws,
    // and leave both the session and the shared pool usable.
    ThreadGuard guard;
    setDefaultThreads(4);
    const auto noisy = bindingsFor(4, 4, /*noisy=*/true);
    auto session = makeBackend("sv")->open(noisy.front());
    Rng rng(3);
    // Noisy sv serves no exact Probabilities -> every binding throws.
    EXPECT_THROW(session->runBatch(noisy, Probabilities{{}}, rng),
                 std::invalid_argument);
    // The pool and the session both still work, in parallel, afterwards.
    const auto ok = session->runBatch(noisy, Sample{8}, rng);
    ASSERT_EQ(ok.size(), noisy.size());
    std::atomic<int> covered{0};
    ExecPolicy policy;
    policy.threads = 4;
    policy.serialThreshold = 1;
    policy.grain = 8;
    parallelForChunks(policy, 64,
                      [&](std::size_t, std::uint64_t b, std::uint64_t e) {
        covered.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(covered.load(), 64);
}

TEST(GradientTest, SingularShiftIsRejected)
{
    // shift = pi makes sin(shift) ~ 1e-16: the two shifted points coincide
    // to machine precision and the old exact-zero guard waved it through,
    // returning ~1e16-scale garbage gradients.
    auto makeCircuit = [](const std::vector<double>& p) {
        Circuit c(2);
        c.h(0).rx(1, p[0]);
        return c;
    };
    PauliSum h;
    h.add(1.0, PauliString("ZZ"));
    auto session = makeBackend("sv")->open(makeCircuit({0.3}));
    Rng rng(1);
    EXPECT_THROW(parameterShiftGradient(*session, makeCircuit, h, {0.3}, rng,
                                        3.14159265358979323846),
                 std::invalid_argument);
    EXPECT_THROW(parameterShiftGradient(*session, makeCircuit, h, {0.3}, rng,
                                        0.0),
                 std::invalid_argument);
}

TEST(RunBatchTest, EmptyBatchAndQubitMismatch)
{
    auto session = makeBackend("sv")->open(ansatz(4, {0.1, 0.2}));
    Rng rng(1);
    EXPECT_TRUE(session->runBatch({}, Sample{8}, rng).empty());
    EXPECT_THROW(
        session->runBatch({Circuit(3)}, Sample{8}, rng),
        std::invalid_argument);
}

TEST(RunBatchTest, BackendConvenienceMatchesSessionBatch)
{
    ThreadGuard guard;
    setDefaultThreads(2);
    const auto b = bindingsFor(4, 3);
    auto backend = makeBackend("sv");
    Rng rngA(9), rngB(9);
    const auto viaBackend = backend->runBatch(b, Sample{32}, rngA);
    auto session = backend->open(b.front());
    const auto viaSession = session->runBatch(b, Sample{32}, rngB);
    ASSERT_EQ(viaBackend.size(), viaSession.size());
    for (std::size_t i = 0; i < viaBackend.size(); ++i)
        expectSamePayload(viaBackend[i], viaSession[i], "convenience");
}

// ---------------------------------------------------------------------------
// Parameter-shift gradient through one batch
// ---------------------------------------------------------------------------

TEST(GradientTest, ParameterShiftMatchesFiniteDifferences)
{
    // Every parameter feeds exactly one exp(-i theta G / 2) gate, so the
    // pi/2 shift rule is exact; central differences converge to the same
    // derivative as h -> 0. sv serves the Expectation natively (no shots).
    const std::size_t n = 4;
    PauliSum h;
    h.add(1.0, PauliString("ZZII")).add(-0.5, PauliString("IIXZ"));
    auto makeCircuit = [&](const std::vector<double>& p) {
        Circuit c(n);
        c.h(0).cnot(0, 1).cnot(1, 2).cnot(2, 3);
        c.rx(0, p[0]).ry(1, p[1]).rz(2, p[2]).rx(3, p[3]);
        c.cnot(0, 2);
        return c;
    };
    const std::vector<double> params = {0.37, -0.82, 1.21, 0.55};
    auto session = makeBackend("sv")->open(makeCircuit(params));

    Rng rng(5);
    const GradientResult g = parameterShiftGradient(
        *session, makeCircuit, h, params, rng);
    ASSERT_EQ(g.gradient.size(), params.size());
    EXPECT_EQ(g.batchSize, 2 * params.size() + 1);

    const double fd = 1e-5;
    auto value = [&](const std::vector<double>& p) {
        auto s = makeBackend("sv")->open(makeCircuit(p));
        Rng r(1);
        return s->run(Expectation{h, 0}, r).expectation;
    };
    EXPECT_NEAR(g.value, value(params), 1e-12);
    for (std::size_t i = 0; i < params.size(); ++i) {
        std::vector<double> p = params;
        p[i] += fd;
        const double plus = value(p);
        p[i] -= 2 * fd;
        const double minus = value(p);
        EXPECT_NEAR(g.gradient[i], (plus - minus) / (2 * fd), 1e-6)
            << "param " << i;
    }
}

TEST(GradientTest, GradientBitIdenticalAcrossThreadCounts)
{
    ThreadGuard guard;
    Rng gr(7);
    auto problem = QaoaMaxCut::randomRegular(6, 3, 2, gr);
    const PauliSum h = problem.cutObservable();
    auto makeCircuit = [&](const std::vector<double>& p) {
        return problem.circuit(p);
    };
    const std::vector<double> params = {0.4, 0.9, 0.2, 0.6};

    std::vector<std::vector<double>> grads;
    for (std::size_t t : {std::size_t{1}, std::size_t{4}}) {
        setDefaultThreads(t);
        auto session = makeBackend("sv")->open(makeCircuit(params));
        Rng rng(13);
        // Gammas feed every edge, so use the small-shift (central
        // difference) mode of the same batched rule.
        grads.push_back(parameterShiftGradient(*session, makeCircuit, h,
                                               params, rng, 1e-4)
                            .gradient);
    }
    EXPECT_EQ(grads[0], grads[1]); // bit-identical, no tolerance
}

TEST(GradientTest, BatchedSweepScoresEveryPoint)
{
    Rng gr(3);
    auto problem = QaoaMaxCut::randomRegular(6, 3, 1, gr);
    const PauliSum h = problem.cutObservable();
    auto makeCircuit = [&](const std::vector<double>& p) {
        return problem.circuit(p);
    };
    const std::vector<std::vector<double>> points = {
        {0.1, 0.2}, {0.5, 0.9}, {1.1, 0.3}};
    auto session = makeBackend("sv")->open(makeCircuit(points[0]));
    Rng rng(2);
    const auto values =
        batchedExpectationSweep(*session, makeCircuit, h, points, rng, 0);
    ASSERT_EQ(values.size(), points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        auto s = makeBackend("sv")->open(makeCircuit(points[i]));
        Rng r(1);
        EXPECT_NEAR(values[i], s->run(Expectation{h, 0}, r).expectation,
                    1e-12)
            << "point " << i;
    }
}

TEST(GradientTest, BatchedStartsDriveTheOptimizer)
{
    Rng gr(7);
    auto problem = QaoaMaxCut::randomRegular(8, 3, 1, gr);
    VqaOptions options;
    options.samplesPerEvaluation = 64;
    options.optimizer.maxIterations = 10;
    options.seed = 3;
    options.exactExpectation = true;
    options.batchedStarts = 6;
    StateVectorBackend backend;
    const VqaResult result = runQaoaMaxCut(problem, backend, options);
    // The six batched start evaluations count as circuit evaluations and
    // land in the same session's reuse metadata. (The session opens on the
    // first start binding and the batch still rebinds it, so reuses equals
    // the evaluation count here, not count - 1.)
    EXPECT_GT(result.circuitEvaluations, 6u);
    EXPECT_EQ(result.planBuilds, 1u);
    EXPECT_EQ(result.planReuses, result.circuitEvaluations);
    EXPECT_LT(result.bestObjective, 0.0); // found some cut
}

// ---------------------------------------------------------------------------
// Nested issue: a batch from inside pool work serializes instead of
// deadlocking
// ---------------------------------------------------------------------------

TEST(RunBatchTest, BatchInsideParallelRegionSerializes)
{
    ThreadGuard guard;
    setDefaultThreads(4);
    const auto b = bindingsFor(4, 3);
    auto backend = makeBackend("sv");

    Rng refRng(21);
    auto refSession = backend->open(b.front());
    const auto expected = refSession->runBatch(b, Sample{16}, refRng);

    std::vector<Result> got;
    ExecPolicy policy;
    policy.threads = 2;
    policy.serialThreshold = 1;
    policy.grain = 1;
    parallelForChunks(policy, 1,
                      [&](std::size_t, std::uint64_t, std::uint64_t) {
        EXPECT_TRUE(ThreadPool::inParallelRegion());
        Rng rng(21);
        auto session = backend->open(b.front());
        got = session->runBatch(b, Sample{16}, rng);
    });
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSamePayload(got[i], expected[i], "nested");
}

} // namespace
} // namespace qkc
