/**
 * Cross-path parity (ISSUE 10): pairwise/bracket planners must not change
 * any dense payload bit (sv/dm), must agree with the dd gate-by-gate build
 * to 1e-9 total variation while measurably reducing apply-table lookups,
 * and the path option must flow through the registry, the sessions'
 * meta.path stamps and the batched rebind cache.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/noise.h"
#include "util/rng.h"
#include "vqa/backends.h"

namespace qkc {
namespace {

/** H layer, ZZ ring, RX layer — a one-iteration QAOA shape. */
Circuit
qaoaLike(std::size_t n, double gamma, double beta)
{
    Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    for (std::size_t q = 0; q < n; ++q)
        c.zz(q, (q + 1) % n, gamma);
    for (std::size_t q = 0; q < n; ++q)
        c.rx(q, beta);
    return c;
}

/** 64 alternating Rz / CNOT-ladder layers — deep but DD-structured. */
Circuit
depth64Circuit(std::size_t n)
{
    Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    for (std::size_t layer = 0; layer < 64; ++layer) {
        if (layer % 2 == 0) {
            for (std::size_t q = 0; q < n; ++q)
                c.rz(q, 0.1 + 0.01 * static_cast<double>(layer));
        } else {
            for (std::size_t q = 0; q + 1 < n; ++q)
                c.cnot(q, q + 1);
        }
    }
    return c;
}

Result
runTask(const std::string& spec, const Circuit& c, const Task& task,
        std::uint64_t seed)
{
    auto backend = makeBackend(spec);
    auto session = backend->open(c);
    Rng rng(seed);
    return session->run(task, rng);
}

double
totalVariation(const std::vector<double>& p, const std::vector<double>& q)
{
    EXPECT_EQ(p.size(), q.size());
    double tv = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
        tv += std::abs(p[i] - q[i]);
    return tv / 2.0;
}

TEST(PathParityTest, SvPlannersAreBitIdentical)
{
    const Circuit c = qaoaLike(5, 0.7, 0.4);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const std::string base =
            "statevector:threads=" + std::to_string(threads) + ",path=";
        const Result linear = runTask(base + "linear", c, Sample{256}, 11);
        const Result pairwise = runTask(base + "pairwise", c, Sample{256}, 11);
        const Result bracket = runTask(base + "bracket4", c, Sample{256}, 11);
        EXPECT_EQ(linear.samples, pairwise.samples) << threads << " threads";
        EXPECT_EQ(linear.samples, bracket.samples) << threads << " threads";

        const Result lp = runTask(base + "linear", c, Probabilities{}, 12);
        const Result pp = runTask(base + "pairwise", c, Probabilities{}, 12);
        ASSERT_EQ(lp.probabilities.size(), pp.probabilities.size());
        for (std::size_t i = 0; i < lp.probabilities.size(); ++i)
            EXPECT_EQ(lp.probabilities[i], pp.probabilities[i])
                << "basis " << i << ", " << threads << " threads";
    }
}

TEST(PathParityTest, DmPlannersAreBitIdentical)
{
    const Circuit c = qaoaLike(4, 0.5, 0.3);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        const std::string base =
            "densitymatrix:threads=" + std::to_string(threads) + ",path=";
        const Result linear = runTask(base + "linear", c, Sample{128}, 21);
        const Result pairwise = runTask(base + "pairwise", c, Sample{128}, 21);
        const Result bracket = runTask(base + "bracket4", c, Sample{128}, 21);
        EXPECT_EQ(linear.samples, pairwise.samples) << threads << " threads";
        EXPECT_EQ(linear.samples, bracket.samples) << threads << " threads";
    }
}

TEST(PathParityTest, DmNoisyPairwiseMatchesLinearDistribution)
{
    // With channels in play the planners fuse different segments (barriers
    // vs carry-across), so the kernel streams differ and parity is
    // arithmetic, not bitwise.
    Circuit c = qaoaLike(3, 0.6, 0.2).withNoiseAfterEachGate(
        NoiseKind::Depolarizing, 0.01);
    const Result linear =
        runTask("densitymatrix:path=linear", c, Probabilities{}, 31);
    const Result pairwise =
        runTask("densitymatrix:path=pairwise", c, Probabilities{}, 31);
    EXPECT_LE(totalVariation(linear.probabilities, pairwise.probabilities),
              1e-9);
}

TEST(PathParityTest, DdPairwiseMatchesLinearDistribution)
{
    const Circuit c = qaoaLike(5, 0.7, 0.4);
    const Result linear =
        runTask("decisiondiagram:path=linear", c, Probabilities{}, 41);
    const Result pairwise =
        runTask("decisiondiagram:path=pairwise", c, Probabilities{}, 41);
    EXPECT_LE(totalVariation(linear.probabilities, pairwise.probabilities),
              1e-9);
    EXPECT_EQ(pairwise.meta.path.planner, "pairwise");
    EXPECT_GT(pairwise.meta.path.nodes, 0u);
    EXPECT_GT(pairwise.meta.path.mmNodes, 0u);
    EXPECT_GT(pairwise.meta.path.mmProducts, 0u);
}

TEST(PathParityTest, MetaPathStamps)
{
    const Circuit c = qaoaLike(4, 0.3, 0.6);

    const Result sv = runTask("statevector:path=pairwise", c, Sample{32}, 51);
    EXPECT_EQ(sv.meta.path.planner, "pairwise");
    EXPECT_GT(sv.meta.path.nodes, 0u);
    EXPECT_GT(sv.meta.path.mmNodes, 0u);
    EXPECT_GT(sv.meta.path.mmProducts, 0u);

    const Result svLinear = runTask("statevector", c, Sample{32}, 51);
    EXPECT_EQ(svLinear.meta.path.planner, "linear");
    EXPECT_EQ(svLinear.meta.path.mmNodes, 0u);

    const Result dm =
        runTask("densitymatrix:path=bracket4", c, Sample{32}, 52);
    EXPECT_EQ(dm.meta.path.planner, "bracket");
    EXPECT_GT(dm.meta.path.mmNodes, 0u);

    const Result dd = runTask("decisiondiagram", c, Sample{32}, 53);
    EXPECT_EQ(dd.meta.path.planner, "linear");
    EXPECT_EQ(dd.meta.path.mmNodes, 0u);
}

TEST(PathParityTest, DdBatchReusesPlanAndFrozenSubtrees)
{
    const Circuit c = qaoaLike(4, 0.3, 0.3);
    auto backend = makeBackend("decisiondiagram:path=pairwise,threads=2");
    auto session = backend->open(c);

    const auto paramIdx = c.parameterizedGateIndices();
    ASSERT_FALSE(paramIdx.empty());
    std::vector<ParamBinding> bindings;
    for (std::size_t b = 0; b < 8; ++b) {
        Circuit bound = c;
        for (std::size_t idx : paramIdx)
            bound.setGateParam(idx, 0.2 + 0.05 * static_cast<double>(b));
        bindings.push_back(std::move(bound));
    }

    Rng rng(61);
    const auto results = session->runBatch(bindings, Sample{64}, rng);
    ASSERT_EQ(results.size(), 8u);
    EXPECT_GT(session->planReuses(), 0u);

    // The H prefix is parameter-free: its MM subtrees stay frozen across
    // the sweep, so rebound bindings serve them from the protected cache.
    const bool anyCached = std::any_of(
        results.begin(), results.end(), [](const Result& r) {
            return r.meta.path.cachedSubtrees > 0;
        });
    EXPECT_TRUE(anyCached);
}

TEST(PathParityTest, DdDepth64PairwiseReducesApplyLookups)
{
    const Circuit c = depth64Circuit(6);
    const Result linear =
        runTask("decisiondiagram:path=linear", c, Sample{64}, 71);
    const Result pairwise =
        runTask("decisiondiagram:path=pairwise", c, Sample{64}, 71);

    // Same sampled distribution...
    const Result lp =
        runTask("decisiondiagram:path=linear", c, Probabilities{}, 72);
    const Result pp =
        runTask("decisiondiagram:path=pairwise", c, Probabilities{}, 72);
    EXPECT_LE(totalVariation(lp.probabilities, pp.probabilities), 1e-9);

    // ...for measurably fewer apply-table lookups: the MxM folds go
    // through their own compute table, so the final spine applies are a
    // fraction of the 300+ gate-by-gate sweeps.
    const std::size_t linearLookups = linear.meta.ddMemory.taskApply.lookups();
    const std::size_t pairwiseLookups =
        pairwise.meta.ddMemory.taskApply.lookups();
    EXPECT_GT(linearLookups, 0u);
    EXPECT_LT(pairwiseLookups, linearLookups);
}

TEST(PathParityTest, TnAndKcRejectThePathOption)
{
    try {
        parseBackendSpec("tensornetwork:path=pairwise");
        FAIL() << "tensornetwork accepted path=";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("contraction order"),
                  std::string::npos)
            << e.what();
    }
    try {
        parseBackendSpec("knowledgecompilation:path=linear");
        FAIL() << "knowledgecompilation accepted path=";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("no simulation path"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PathParityTest, RegistryAdvertisesPathWhereSupported)
{
    for (const auto& info : backendRegistry()) {
        const bool hasPath =
            std::find(info.optionKeys.begin(), info.optionKeys.end(),
                      "path") != info.optionKeys.end();
        const bool shouldHave = info.name == "statevector" ||
                                info.name == "densitymatrix" ||
                                info.name == "decisiondiagram";
        EXPECT_EQ(hasPath, shouldHave) << info.name;
    }
    EXPECT_NO_THROW(parseBackendSpec("statevector:path=bracket8"));
    EXPECT_THROW(parseBackendSpec("statevector:path=bogus"),
                 std::invalid_argument);
}

} // namespace
} // namespace qkc
