#include "vqa/workloads.h"

#include <gtest/gtest.h>

#include <cmath>

#include "statevector/statevector_simulator.h"

namespace qkc {
namespace {

TEST(QaoaMaxCutTest, CircuitShape)
{
    Rng rng(1);
    auto problem = QaoaMaxCut::randomRegular(8, 3, 2, rng);
    EXPECT_EQ(problem.numQubits(), 8u);
    EXPECT_EQ(problem.numParams(), 4u);
    Circuit c = problem.circuit({0.3, 0.2, 0.5, 0.4});
    // 8 H + 2 layers x (12 ZZ + 8 Rx).
    EXPECT_EQ(c.gateCount(), 8u + 2 * (12u + 8u));
}

TEST(QaoaMaxCutTest, RejectsWrongParamCount)
{
    Rng rng(1);
    auto problem = QaoaMaxCut::randomRegular(8, 3, 1, rng);
    EXPECT_THROW(problem.circuit({0.1}), std::invalid_argument);
}

TEST(QaoaMaxCutTest, CutOfOutcomeMatchesGraphCut)
{
    // Triangle graph (not regular-generated; direct construction).
    Graph g(3);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(0, 2);
    QaoaMaxCut problem(g, 1);
    // Outcome |100>: vertex 0 on side 1: cuts edges (0,1) and (0,2).
    EXPECT_EQ(problem.cutOfOutcome(0b100), 2u);
    EXPECT_EQ(problem.cutOfOutcome(0b000), 0u);
    EXPECT_EQ(problem.cutOfOutcome(0b111), 0u);
}

TEST(QaoaMaxCutTest, ExpectedCutFromSamples)
{
    Graph g(2);
    g.addEdge(0, 1);
    QaoaMaxCut problem(g, 1);
    std::vector<std::uint64_t> samples{0b01, 0b01, 0b00, 0b10};
    EXPECT_DOUBLE_EQ(problem.expectedCut(samples), 0.75);
}

TEST(QaoaMaxCutTest, UniformSuperpositionGivesHalfEdges)
{
    // At gamma=beta=0 the circuit is H^n: every edge is cut w.p. 1/2.
    Rng rng(7);
    auto problem = QaoaMaxCut::randomRegular(6, 3, 1, rng);
    StateVectorSimulator sv;
    auto dist = sv.simulate(problem.circuit({0.0, 0.0})).probabilities();
    double expected = problem.expectedCutExact(dist);
    EXPECT_NEAR(expected, problem.graph().numEdges() / 2.0, 1e-9);
}

TEST(QaoaMaxCutTest, OptimizedAnglesBeatUniform)
{
    // Known p=1 QAOA property: there exist angles strictly better than the
    // uniform superposition; check a coarse grid finds one.
    Rng rng(9);
    auto problem = QaoaMaxCut::randomRegular(8, 3, 1, rng);
    StateVectorSimulator sv;
    double uniform = problem.graph().numEdges() / 2.0;
    // With ZZ(theta) = exp(-i theta Z(x)Z / 2), the good p=1 angles sit at
    // negative gamma (equivalently positive gamma with negative beta).
    double best = 0.0;
    for (double gamma : {-0.4, -0.6, -0.7}) {
        for (double beta : {0.3, 0.4, 0.6}) {
            auto dist =
                sv.simulate(problem.circuit({gamma, beta})).probabilities();
            best = std::max(best, problem.expectedCutExact(dist));
        }
    }
    EXPECT_GT(best, uniform + 0.2);
}

TEST(VqeIsingTest, CircuitShape)
{
    Rng rng(11);
    VqeIsing problem(2, 3, 2, rng);
    EXPECT_EQ(problem.numQubits(), 6u);
    EXPECT_EQ(problem.numParams(), 4u);
    Circuit c = problem.circuit({0.3, 0.2, 0.5, 0.4});
    EXPECT_EQ(c.numQubits(), 6u);
    EXPECT_GT(c.gateCount(), 6u);
}

TEST(VqeIsingTest, EnergyOfOutcomeSigns)
{
    Rng rng(13);
    VqeIsing problem(1, 2, 1, rng);  // two sites, one coupling J = +-1
    // For H = J s0 s1 + h0 s0 + h1 s1: aligned pairs sum to 2J, anti-aligned
    // to -2J, and the grand total cancels.
    double e00 = problem.energyOfOutcome(0b00);
    double e01 = problem.energyOfOutcome(0b01);
    double e10 = problem.energyOfOutcome(0b10);
    double e11 = problem.energyOfOutcome(0b11);
    EXPECT_NEAR(e00 + e01 + e10 + e11, 0.0, 1e-12);
    EXPECT_NEAR(std::abs(e00 + e11), 2.0, 1e-12);  // |2J| with J = +-1
    EXPECT_NEAR(e00 + e11, -(e01 + e10), 1e-12);
}

TEST(VqeIsingTest, GroundStateIsMinimum)
{
    Rng rng(17);
    VqeIsing problem(2, 2, 1, rng);
    double ground = problem.groundStateEnergy();
    for (std::uint64_t x = 0; x < 16; ++x)
        EXPECT_GE(problem.energyOfOutcome(x), ground - 1e-12);
}

TEST(VqeIsingTest, ExpectedEnergyExactVsSamples)
{
    Rng rng(19);
    VqeIsing problem(2, 2, 1, rng);
    // A distribution concentrated on outcome 5.
    std::vector<double> dist(16, 0.0);
    dist[5] = 1.0;
    EXPECT_NEAR(problem.expectedEnergyExact(dist),
                problem.energyOfOutcome(5), 1e-12);
    std::vector<std::uint64_t> samples(10, 5);
    EXPECT_NEAR(problem.expectedEnergy(samples), problem.energyOfOutcome(5),
                1e-12);
}

TEST(VqeIsingTest, DeterministicForSeed)
{
    Rng a(23), b(23);
    VqeIsing p1(2, 3, 1, a), p2(2, 3, 1, b);
    for (std::uint64_t x = 0; x < 64; ++x)
        EXPECT_DOUBLE_EQ(p1.energyOfOutcome(x), p2.energyOfOutcome(x));
}

} // namespace
} // namespace qkc
