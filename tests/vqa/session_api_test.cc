/**
 * The task-based Session API (ISSUE 4): open/bind reuse metadata, typed
 * task payloads, typed option parsing, and unsupported-task errors.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "statevector/statevector_simulator.h"
#include "vqa/backends.h"
#include "vqa/driver.h"

namespace qkc {
namespace {

Circuit
bell()
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    return c;
}

// ---------------------------------------------------------------------------
// Typed options and parsing
// ---------------------------------------------------------------------------

TEST(BackendSpecTest, ParsesTypedOptions)
{
    BackendSpec spec = parseBackendSpec("sv:threads=8,fuse=0");
    EXPECT_EQ(spec.name, "statevector");
    EXPECT_EQ(spec.options.threads, 8u);
    EXPECT_FALSE(spec.options.fuse);

    spec = parseBackendSpec("kc:burnin=128,thin=3");
    EXPECT_EQ(spec.name, "knowledgecompilation");
    EXPECT_EQ(spec.options.burnIn, 128u);
    EXPECT_EQ(spec.options.thin, 3u);

    spec = parseBackendSpec("dd");
    EXPECT_EQ(spec.name, "decisiondiagram");
}

TEST(BackendSpecTest, RegistryCoversEveryBackend)
{
    EXPECT_EQ(backendRegistry().size(), 5u);
    EXPECT_EQ(backendNames().size(), 5u);
    for (const BackendInfo& info : backendRegistry()) {
        EXPECT_FALSE(info.aliases.empty()) << info.name;
        EXPECT_FALSE(info.summary.empty()) << info.name;
        EXPECT_FALSE(info.tasks.empty()) << info.name;
        EXPECT_FALSE(info.batch.empty()) << info.name;
        // Aliases resolve to the canonical name.
        for (const std::string& alias : info.aliases)
            EXPECT_EQ(parseBackendSpec(alias).name, info.name);
        // Every advertised option key parses (path takes a planner name,
        // the rest accept an integer form).
        for (const std::string& key : info.optionKeys) {
            const std::string value = key == "path" ? "pairwise" : "1";
            EXPECT_NO_THROW(
                parseBackendSpec(info.name + ":" + key + "=" + value));
        }
    }
}

TEST(BackendSpecTest, BackendDefaultsComeFromSpec)
{
    auto backend = makeBackend("sv:threads=2,fuse=0");
    EXPECT_EQ(backend->defaults().threads, 2u);
    EXPECT_FALSE(backend->defaults().fuse);
}

TEST(BackendSpecTest, ThreadsZeroIsTheMachineDefault)
{
    // "threads=0" is valid and means machine default (QKC_THREADS env, then
    // hardware concurrency) — documented in ExecPolicy::threads and used by
    // fig8/fig9 to mean "all cores".
    BackendSpec spec = parseBackendSpec("sv:threads=0");
    EXPECT_EQ(spec.options.threads, 0u);
    auto backend = makeBackend("dm:threads=0");
    Rng rng(5);
    EXPECT_EQ(backend->sample(bell(), 20, rng).size(), 20u);
}

// ---------------------------------------------------------------------------
// Session reuse metadata
// ---------------------------------------------------------------------------

TEST(SessionTest, SvBindReusesThePlan)
{
    Rng graphRng(3);
    auto problem = QaoaMaxCut::randomRegular(6, 3, 2, graphRng);
    StateVectorBackend backend;
    auto session = backend.open(problem.circuit({0.3, 0.7, 0.9, 0.2}));
    Rng rng(5);

    for (double shift : {0.1, 0.2, 0.3}) {
        session->bind(
            problem.circuit({0.3 + shift, 0.7, 0.9 - shift, 0.2}));
        Result r = session->run(Sample{64}, rng);
        EXPECT_EQ(r.meta.planBuilds, 1u);
        EXPECT_GT(r.meta.fusion.gatesIn, 0u);
    }
    EXPECT_EQ(session->planBuilds(), 1u);
    EXPECT_EQ(session->planReuses(), 3u);
}

TEST(SessionTest, QaoaP2NelderMeadPlansExactlyOnce)
{
    // The ISSUE 4 acceptance bound: a QAOA p=2 Nelder-Mead run on sv
    // performs circuit fusion + kernel classification exactly once per
    // circuit structure, asserted via the Result reuse metadata.
    Rng graphRng(11);
    auto problem = QaoaMaxCut::randomRegular(6, 3, 2, graphRng);
    StateVectorBackend backend;
    VqaOptions options;
    options.samplesPerEvaluation = 64;
    options.optimizer.maxIterations = 20;
    options.seed = 7;
    auto result = runQaoaMaxCut(problem, backend, options);
    EXPECT_GT(result.circuitEvaluations, 15u);
    EXPECT_EQ(result.planBuilds, 1u);
    EXPECT_EQ(result.planReuses, result.circuitEvaluations - 1);
}

TEST(SessionTest, BindToNewStructureReplansTransparently)
{
    StateVectorBackend backend;
    auto session = backend.open(bell());
    Rng rng(9);
    EXPECT_EQ(session->run(Sample{16}, rng).samples.size(), 16u);

    Circuit other(2);
    other.h(0).h(1).cz(0, 1).h(1); // different structure, same qubit count
    session->bind(other);
    EXPECT_EQ(session->planBuilds(), 2u);
    EXPECT_EQ(session->planReuses(), 0u);
    EXPECT_EQ(session->run(Sample{16}, rng).samples.size(), 16u);

    Circuit bigger(3);
    bigger.h(0);
    EXPECT_THROW(session->bind(bigger), std::invalid_argument);
}

TEST(SessionTest, TnBindKeepsContractionPlans)
{
    Rng graphRng(3);
    auto problem = QaoaMaxCut::randomRegular(4, 3, 1, graphRng);
    TensorNetworkBackend backend;
    auto session = backend.open(problem.circuit({0.4, 0.6}));
    session->bind(problem.circuit({0.5, 0.5}));
    EXPECT_EQ(session->planBuilds(), 1u);
    EXPECT_EQ(session->planReuses(), 1u);

    // And the rebound values are actually in effect: samples only contain
    // outcomes, and the sampled mean cut tracks the exact one.
    Rng rng(13);
    Result r = session->run(Sample{400}, rng);
    auto exact = StateVectorSimulator()
                     .simulate(problem.circuit({0.5, 0.5}))
                     .probabilities();
    EXPECT_NEAR(problem.expectedCut(r.samples),
                problem.expectedCutExact(exact), 0.25);

    // Subset marginal plans survive rebinds too: the cached contraction
    // plan is replayed on refreshed tensor values, so the post-rebind
    // marginal must match the state-vector reference for the new params.
    session->run(Probabilities{{0, 2}}, rng); // builds + caches the plan
    session->bind(problem.circuit({0.9, 0.3}));
    auto tnMarginal = session->run(Probabilities{{0, 2}}, rng).probabilities;
    auto svMarginal = makeBackend("sv")
                          ->open(problem.circuit({0.9, 0.3}))
                          ->run(Probabilities{{0, 2}}, rng)
                          .probabilities;
    ASSERT_EQ(tnMarginal.size(), svMarginal.size());
    for (std::size_t i = 0; i < tnMarginal.size(); ++i)
        EXPECT_NEAR(tnMarginal[i], svMarginal[i], 1e-9) << i;
}

TEST(SessionTest, KcBindRefreshesParameters)
{
    Rng graphRng(3);
    auto problem = QaoaMaxCut::randomRegular(5, 2, 1, graphRng);
    KnowledgeCompilationBackend backend;
    auto session = backend.open(problem.circuit({0.4, 0.6}));
    session->bind(problem.circuit({0.7, 0.1}));
    session->bind(problem.circuit({0.2, 0.9}));
    EXPECT_EQ(session->planBuilds(), 1u);
    EXPECT_EQ(session->planReuses(), 2u);
}

// ---------------------------------------------------------------------------
// Task payloads
// ---------------------------------------------------------------------------

TEST(SessionTest, AmplitudesMatchTheStateVector)
{
    const Circuit c = ghzCircuit(3);
    StateVector exact = StateVectorSimulator().simulate(c);
    const std::vector<std::uint64_t> basis = {0, 3, 7};

    for (const char* name : {"sv", "dd", "kc", "tn"}) {
        auto session = makeBackend(name)->open(c);
        Rng rng(1);
        Result r = session->run(Amplitudes{basis}, rng);
        ASSERT_EQ(r.amplitudes.size(), basis.size()) << name;
        EXPECT_TRUE(r.meta.exact) << name;
        for (std::size_t i = 0; i < basis.size(); ++i) {
            EXPECT_NEAR(r.amplitudes[i].real(),
                        exact.amplitude(basis[i]).real(), 1e-9)
                << name << " x=" << basis[i];
            EXPECT_NEAR(r.amplitudes[i].imag(),
                        exact.amplitude(basis[i]).imag(), 1e-9)
                << name << " x=" << basis[i];
        }
    }
}

TEST(SessionTest, ProbabilitiesMarginalizeCorrectly)
{
    // 3-qubit GHZ: full distribution is 1/2 on |000> and |111>; every
    // single-qubit marginal is uniform; the (q0, q2) marginal puts 1/2 on
    // 00 and 11.
    const Circuit c = ghzCircuit(3);
    for (const char* name : {"sv", "dm", "dd", "kc", "tn"}) {
        auto session = makeBackend(name)->open(c);
        Rng rng(1);

        auto full = session->run(Probabilities{{}}, rng).probabilities;
        ASSERT_EQ(full.size(), 8u) << name;
        EXPECT_NEAR(full[0], 0.5, 1e-9) << name;
        EXPECT_NEAR(full[7], 0.5, 1e-9) << name;

        auto one = session->run(Probabilities{{1}}, rng).probabilities;
        ASSERT_EQ(one.size(), 2u) << name;
        EXPECT_NEAR(one[0], 0.5, 1e-9) << name;

        auto pair = session->run(Probabilities{{0, 2}}, rng).probabilities;
        ASSERT_EQ(pair.size(), 4u) << name;
        EXPECT_NEAR(pair[0], 0.5, 1e-9) << name;
        EXPECT_NEAR(pair[3], 0.5, 1e-9) << name;
        EXPECT_NEAR(pair[1] + pair[2], 0.0, 1e-9) << name;
    }
}

TEST(SessionTest, MarginalQubitOrderIsRespected)
{
    // |psi> = |01>: marginal over (q0, q1) reads 01, over (q1, q0) reads 10.
    Circuit c(2);
    c.x(1);
    auto session = makeBackend("sv")->open(c);
    Rng rng(1);
    auto fwd = session->run(Probabilities{{0, 1}}, rng).probabilities;
    auto rev = session->run(Probabilities{{1, 0}}, rng).probabilities;
    EXPECT_NEAR(fwd[0b01], 1.0, 1e-12);
    EXPECT_NEAR(rev[0b10], 1.0, 1e-12);
}

TEST(SessionTest, SampleMatchesLegacyHelper)
{
    // Backend::sample is sugar over open + Sample with identical rng use.
    const Circuit c = bell();
    auto backend = makeBackend("sv");
    Rng rngA(21), rngB(21);
    auto viaHelper = backend->sample(c, 100, rngA);
    auto viaSession = backend->open(c)->run(Sample{100}, rngB).samples;
    EXPECT_EQ(viaHelper, viaSession);
}

TEST(SessionTest, NoisySampleReportsTrajectories)
{
    const Circuit noisy =
        bell().withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.02);
    auto session = makeBackend("sv")->open(noisy);
    Rng rng(3);
    Result r = session->run(Sample{50}, rng);
    EXPECT_EQ(r.samples.size(), 50u);
    EXPECT_EQ(r.meta.trajectories, 50u);
    EXPECT_FALSE(r.meta.exact);
}

// ---------------------------------------------------------------------------
// Unsupported tasks and bad arguments
// ---------------------------------------------------------------------------

TEST(SessionTest, UnsupportedTasksThrow)
{
    Rng rng(1);

    // Mixed states have no amplitudes.
    auto dm = makeBackend("dm")->open(bell());
    EXPECT_THROW(dm->run(Amplitudes{{0}}, rng), std::invalid_argument);

    // Noisy sv/dd runs are trajectory mixtures.
    const Circuit noisy =
        bell().withNoiseAfterEachGate(NoiseKind::BitFlip, 0.05);
    for (const char* name : {"sv", "dd"}) {
        auto session = makeBackend(name)->open(noisy);
        EXPECT_THROW(session->run(Amplitudes{{0}}, rng),
                     std::invalid_argument)
            << name;
        EXPECT_THROW(session->run(Probabilities{{}}, rng),
                     std::invalid_argument)
            << name;
    }

    // The tensor network cannot open noisy circuits at all.
    EXPECT_THROW(makeBackend("tn")->open(noisy), std::invalid_argument);
}

TEST(SessionTest, BadTaskArgumentsThrow)
{
    auto session = makeBackend("sv")->open(bell());
    Rng rng(1);
    EXPECT_THROW(session->run(Amplitudes{{4}}, rng), std::invalid_argument);
    EXPECT_THROW(session->run(Probabilities{{2}}, rng),
                 std::invalid_argument);
    EXPECT_THROW(session->run(Probabilities{{0, 0}}, rng),
                 std::invalid_argument);
    EXPECT_THROW(session->run(Expectation{PauliSum{}, 10}, rng),
                 std::invalid_argument);
    PauliSum wrongWidth;
    wrongWidth.add(1.0, PauliString("Z"));
    EXPECT_THROW(session->run(Expectation{wrongWidth, 10}, rng),
                 std::invalid_argument);
}

TEST(SessionTest, ZeroShotExpectationOnlyValidWhereExact)
{
    PauliSum h;
    h.add(1.0, PauliString("ZZ"));
    Rng rng(1);

    // Exact path: shots are irrelevant.
    auto sv = makeBackend("sv")->open(bell());
    EXPECT_TRUE(sv->run(Expectation{h, 0}, rng).meta.exact);

    // Sampling fallback with zero shots would silently return garbage —
    // it must throw instead.
    auto tn = makeBackend("tn")->open(bell());
    EXPECT_THROW(tn->run(Expectation{h, 0}, rng), std::invalid_argument);
}

TEST(SessionTest, KcOverFeasibilityLimitFallsBackToGibbs)
{
    // Regression (ISSUE 5): a noisy circuit just over kMaxExactEvaluations
    // (2^16 evaluator passes) must fall back to Gibbs sampling with
    // meta.exact == false — not throw, and not return a silently truncated
    // enumeration. Eight depolarizing channels on 2 qubits cost
    // 2^2 * 4^8 = 2^18 passes; seven cost exactly 2^16 and stay exact.
    auto withChannels = [](std::size_t channels) {
        Circuit c(2);
        c.h(0).cnot(0, 1);
        for (std::size_t k = 0; k < channels; ++k)
            c.append(NoiseChannel::depolarizing(k % 2, 0.01));
        return c;
    };
    PauliSum h;
    h.add(1.0, PauliString("ZZ"));

    auto over = makeBackend("kc:burnin=8")->open(withChannels(8));
    Rng rng(5);
    Result fallback;
    ASSERT_NO_THROW(fallback = over->run(Expectation{h, 256}, rng));
    EXPECT_FALSE(fallback.meta.exact);
    EXPECT_EQ(fallback.meta.fallbackShots, 256u);
    // The infeasible exact distribution must refuse, not truncate.
    EXPECT_THROW(over->run(Probabilities{{}}, rng), std::invalid_argument);

    auto under = makeBackend("kc")->open(withChannels(7));
    Result exact = under->run(Expectation{h, 256}, rng);
    EXPECT_TRUE(exact.meta.exact);
    EXPECT_EQ(exact.meta.fallbackShots, 0u);
    // The Gibbs estimate and the exact value agree statistically (the
    // channels only perturb the Bell correlations slightly).
    EXPECT_NEAR(fallback.expectation, exact.expectation, 0.25);
}

TEST(SessionTest, RotatedFallbackSubSessionIsCachedPerSignature)
{
    // Non-diagonal terms share one cached rotated sub-session per X/Y
    // pattern; parameter rebinds of the base circuit rebind the sub-session
    // instead of re-paying structure planning (ISSUE 5 satellite).
    PauliSum h;
    h.add(0.5, PauliString("XZ")); // rotation signature XI
    h.add(0.5, PauliString("XI")); // same signature -> same sub-session
    h.add(0.5, PauliString("IY")); // new signature IY

    Circuit base(2);
    base.h(0).rz(1, 0.3).cnot(0, 1);

    auto session = makeBackend("tn")->open(base);
    Rng rng(7);
    EXPECT_EQ(session->rotatedSessionCount(), 0u);
    session->run(Expectation{h, 64}, rng);
    EXPECT_EQ(session->rotatedSessionCount(), 2u);

    // Repeat calls and same-structure rebinds reuse the cache.
    session->run(Expectation{h, 64}, rng);
    Circuit rebound(2);
    rebound.h(0).rz(1, 0.9).cnot(0, 1);
    session->bind(rebound);
    session->run(Expectation{h, 64}, rng);
    EXPECT_EQ(session->rotatedSessionCount(), 2u);
}

TEST(SessionTest, RotatedFallbackAccountsShotsAndTrajectories)
{
    // The noisy sv fallback runs trajectories inside the cached sub-session;
    // they must surface in the outer task's metadata, and every non-diagonal
    // term must account its fallback shots (the dm path used to drop this
    // meta on the floor).
    PauliSum h;
    h.add(1.0, PauliString("XZ"));
    h.add(1.0, PauliString("ZI")); // diagonal: one base-sample batch
    const Circuit noisy =
        bell().withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.02);
    auto session = makeBackend("sv")->open(noisy);
    Rng rng(9);
    const Result r = session->run(Expectation{h, 32}, rng);
    EXPECT_FALSE(r.meta.exact);
    EXPECT_EQ(r.meta.fallbackShots, 64u); // 32 rotated + 32 base
    EXPECT_GE(r.meta.trajectories, 64u);  // both draws are trajectories
    EXPECT_EQ(session->rotatedSessionCount(), 1u);
}

TEST(SessionTest, IdentityOnlyObservableIsExactEverywhere)
{
    // A constant observable needs no samples, so even fallback paths must
    // report it exact with zero shots drawn.
    PauliSum h;
    h.add(2.5, PauliString("II"));
    const Circuit noisy =
        bell().withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.02);
    for (const char* spec : {"tn", "sv"}) {
        auto session = makeBackend(spec)->open(
            std::string(spec) == "tn" ? bell() : noisy);
        Rng rng(3);
        Result r = session->run(Expectation{h, 0}, rng);
        EXPECT_TRUE(r.meta.exact) << spec;
        EXPECT_EQ(r.meta.fallbackShots, 0u) << spec;
        EXPECT_NEAR(r.expectation, 2.5, 1e-12) << spec;
    }
}

} // namespace
} // namespace qkc
