/**
 * Expectation parity across backends (ISSUE 4 acceptance): exact
 * Expectation results agree across sv/dm/kc/dd to 1e-9 on analytically
 * known GHZ values and on the VQE Ising Hamiltonian — without sampling —
 * and sampled estimates converge to the exact values within CLT bounds.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "vqa/backends.h"
#include "vqa/driver.h"

namespace qkc {
namespace {

constexpr const char* kExactBackends[] = {"sv", "dm", "kc", "dd"};

double
exactExpectation(const char* name, const Circuit& c, const PauliSum& h)
{
    auto session = makeBackend(name)->open(c);
    Rng rng(1);
    Result r = session->run(Expectation{h, 0}, rng);
    EXPECT_TRUE(r.meta.exact) << name;
    EXPECT_EQ(r.meta.fallbackShots, 0u) << name;
    return r.expectation;
}

TEST(ExpectationParityTest, GhzStabilizersAreExactOnAllFourBackends)
{
    // |GHZ_4>: <Z_i Z_j> = 1, <X X X X> = 1, <Z_i> = 0, <X I I I> = 0.
    const Circuit c = ghzCircuit(4);
    PauliSum zz, xxxx, z1, x1;
    zz.add(1.0, PauliString("ZIIZ"));
    xxxx.add(1.0, PauliString("XXXX"));
    z1.add(1.0, PauliString("IZII"));
    x1.add(1.0, PauliString("XIII"));

    for (const char* name : kExactBackends) {
        EXPECT_NEAR(exactExpectation(name, c, zz), 1.0, 1e-9) << name;
        EXPECT_NEAR(exactExpectation(name, c, xxxx), 1.0, 1e-9) << name;
        EXPECT_NEAR(exactExpectation(name, c, z1), 0.0, 1e-9) << name;
        EXPECT_NEAR(exactExpectation(name, c, x1), 0.0, 1e-9) << name;
    }
}

TEST(ExpectationParityTest, AsymmetricObservablesPinQubitIndexing)
{
    // Qubit-asymmetric state and observables: Ry(0.8) on qubit 0 and
    // Rx(0.5) on qubit 1 give <XI> = sin 0.8, <IX> = 0, <IY> = -sin 0.5,
    // <YI> = 0, <ZI> = cos 0.8, <IZ> = cos 0.5. A swapped qubit index or
    // bit convention in any native expectation path cannot survive these
    // (the GHZ/Bell cases are permutation-invariant and would).
    Circuit c(2);
    c.ry(0, 0.8).rx(1, 0.5);
    const struct {
        const char* pauli;
        double value;
    } cases[] = {
        {"XI", std::sin(0.8)}, {"IX", 0.0},
        {"YI", 0.0},           {"IY", -std::sin(0.5)},
        {"ZI", std::cos(0.8)}, {"IZ", std::cos(0.5)},
    };
    for (const char* name : kExactBackends) {
        for (const auto&[text, value] : cases) {
            PauliSum h;
            h.add(1.0, PauliString(text));
            EXPECT_NEAR(exactExpectation(name, c, h), value, 1e-9)
                << name << " <" << text << ">";
        }
    }
}

TEST(ExpectationParityTest, VqeIsingHamiltonianAgreesAcrossBackends)
{
    // The full VQE Ising Hamiltonian on a mid-optimization ansatz state:
    // every exact backend must agree with the brute-force value from the
    // state-vector distribution to 1e-9.
    Rng modelRng(5);
    VqeIsing problem(2, 3, 1, modelRng);
    const Circuit c = problem.circuit({0.37, 0.81});
    const PauliSum h = problem.hamiltonian();

    Rng distRng(1);
    auto dist = makeBackend("sv")->open(c)->run(Probabilities{{}}, distRng);
    const double reference = problem.expectedEnergyExact(dist.probabilities);

    for (const char* name : kExactBackends)
        EXPECT_NEAR(exactExpectation(name, c, h), reference, 1e-9) << name;
}

TEST(ExpectationParityTest, NoisyDiagonalExpectationExactOnDmAndKc)
{
    // Channels included: dm via tr(rho P), kc via the noise-summed outcome
    // distribution (feasible here: two channels). Both must agree to 1e-9
    // on a diagonal observable.
    Circuit bell(2);
    bell.h(0).cnot(0, 1);
    const Circuit noisy =
        bell.withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.03);
    PauliSum h;
    h.add(0.8, PauliString("ZZ")).add(-0.3, PauliString("ZI"));

    const double dm = exactExpectation("dm", noisy, h);
    const double kc = exactExpectation("kc", noisy, h);
    EXPECT_NEAR(dm, kc, 1e-9);

    // And the noise moves the value: it must differ from the ideal one.
    const double ideal = exactExpectation("dm", bell, h);
    EXPECT_GT(std::abs(dm - ideal), 1e-6);
}

TEST(ExpectationParityTest, KcFallsBackToGibbsBeyondTheFeasibilityLimit)
{
    // A heavily-noised VQE circuit has too many noise assignments for the
    // exact AC sweep: the kc session must degrade to Gibbs shots (flagged
    // non-exact) instead of hanging on the enumeration, and the estimate
    // must still land near the exact dm value.
    Rng modelRng(5);
    VqeIsing problem(2, 2, 1, modelRng);
    const Circuit noisy =
        problem.circuit({0.37, 0.81})
            .withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.01);
    const PauliSum h = problem.hamiltonian();

    auto session = makeBackend("kc:burnin=32")->open(noisy);
    Rng rng(31);
    Result r = session->run(Expectation{h, 2048}, rng);
    EXPECT_FALSE(r.meta.exact);
    EXPECT_GT(r.meta.fallbackShots, 0u);

    const double reference = exactExpectation("dm", noisy, h);
    double coeffSum = 0.0;
    for (const auto& [coeff, pauli] : h.terms) {
        (void)pauli;
        coeffSum += std::abs(coeff);
    }
    EXPECT_NEAR(r.expectation, reference,
                5.0 * coeffSum / std::sqrt(2048.0) + 0.05);
}

TEST(ExpectationParityTest, SampledEstimatesConvergeWithinCltBounds)
{
    // tn (always sampled) and sv-under-noise (trajectory fallback for the
    // non-diagonal term) must land within 5 sigma of the exact value.
    Rng modelRng(5);
    VqeIsing problem(2, 2, 1, modelRng);
    const Circuit c = problem.circuit({0.37, 0.81});
    const PauliSum h = problem.hamiltonian();
    const double reference = exactExpectation("sv", c, h);

    double coeffSum = 0.0;
    for (const auto& [coeff, pauli] : h.terms) {
        (void)pauli;
        coeffSum += std::abs(coeff);
    }

    const std::size_t shots = 8192;
    // Each term's estimator has variance <= coeff^2 / shots; bound the sum
    // conservatively by (sum |coeff|)^2 / shots.
    const double bound = 5.0 * coeffSum / std::sqrt(double(shots));

    auto session = makeBackend("tn")->open(c);
    Rng rng(23);
    Result r = session->run(Expectation{h, shots}, rng);
    EXPECT_FALSE(r.meta.exact);
    EXPECT_GT(r.meta.fallbackShots, 0u);
    EXPECT_NEAR(r.expectation, reference, bound);
}

TEST(ExpectationParityTest, NoisyNonDiagonalFallsBackToShotsOnSv)
{
    // Bell pair + depolarizing noise: <XX> is non-diagonal, so the noisy
    // sv session samples rotated trajectories; the estimate must still
    // track the exact dm value within CLT distance.
    Circuit bell(2);
    bell.h(0).cnot(0, 1);
    const Circuit noisy =
        bell.withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.02);
    PauliSum h;
    h.add(1.0, PauliString("XX"));

    const double reference = exactExpectation("dm", noisy, h);

    auto session = makeBackend("sv")->open(noisy);
    Rng rng(29);
    const std::size_t shots = 8192;
    Result r = session->run(Expectation{h, shots}, rng);
    EXPECT_FALSE(r.meta.exact);
    EXPECT_EQ(r.meta.fallbackShots, shots);
    // The rotated-basis fallback runs one Kraus trajectory per shot, and
    // the metadata must account for them.
    EXPECT_EQ(r.meta.trajectories, shots);
    EXPECT_NEAR(r.expectation, reference,
                5.0 / std::sqrt(double(shots)));
}

} // namespace
} // namespace qkc
