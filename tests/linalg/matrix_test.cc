#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qkc {
namespace {

const Complex kI{0.0, 1.0};

TEST(MatrixTest, IdentityMultiplication)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix i = Matrix::identity(2);
    EXPECT_TRUE((a * i).approxEqual(a));
    EXPECT_TRUE((i * a).approxEqual(a));
}

TEST(MatrixTest, MultiplyKnownValues)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    Matrix expected{{19.0, 22.0}, {43.0, 50.0}};
    EXPECT_TRUE((a * b).approxEqual(expected));
}

TEST(MatrixTest, ComplexMultiply)
{
    Matrix a{{kI}};
    Matrix b{{kI}};
    EXPECT_TRUE((a * b).approxEqual(Matrix{{-1.0}}));
}

TEST(MatrixTest, AddSubtract)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{4.0, 3.0}, {2.0, 1.0}};
    Matrix sum{{5.0, 5.0}, {5.0, 5.0}};
    EXPECT_TRUE((a + b).approxEqual(sum));
    EXPECT_TRUE((sum - b).approxEqual(a));
}

TEST(MatrixTest, ScalarMultiply)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix doubled{{2.0, 4.0}, {6.0, 8.0}};
    EXPECT_TRUE((a * Complex{2.0}).approxEqual(doubled));
}

TEST(MatrixTest, AdjointConjugatesAndTransposes)
{
    Matrix a{{kI, 2.0}, {3.0, 4.0 * kI}};
    Matrix adj = a.adjoint();
    EXPECT_TRUE(approxEqual(adj(0, 0), -kI));
    EXPECT_TRUE(approxEqual(adj(0, 1), Complex{3.0}));
    EXPECT_TRUE(approxEqual(adj(1, 0), Complex{2.0}));
    EXPECT_TRUE(approxEqual(adj(1, 1), -4.0 * kI));
}

TEST(MatrixTest, KroneckerProduct)
{
    Matrix a{{1.0, 0.0}, {0.0, 1.0}};
    Matrix b{{0.0, 1.0}, {1.0, 0.0}};
    Matrix k = a.kron(b);
    ASSERT_EQ(k.rows(), 4u);
    // I (x) X is block diagonal with X blocks.
    EXPECT_TRUE(approxEqual(k(0, 1), Complex{1.0}));
    EXPECT_TRUE(approxEqual(k(1, 0), Complex{1.0}));
    EXPECT_TRUE(approxEqual(k(2, 3), Complex{1.0}));
    EXPECT_TRUE(approxEqual(k(3, 2), Complex{1.0}));
    EXPECT_TRUE(approxEqual(k(0, 0), Complex{0.0}));
}

TEST(MatrixTest, KroneckerOfVectors)
{
    Matrix ket0{{1.0}, {0.0}};
    Matrix ket1{{0.0}, {1.0}};
    Matrix k = ket0.kron(ket1);
    ASSERT_EQ(k.rows(), 4u);
    EXPECT_TRUE(approxEqual(k(1, 0), Complex{1.0}));
}

TEST(MatrixTest, Trace)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0 * kI}};
    EXPECT_TRUE(approxEqual(a.trace(), Complex{1.0} + 4.0 * kI));
}

TEST(MatrixTest, HadamardIsUnitary)
{
    double s = 1.0 / std::sqrt(2.0);
    Matrix h{{s, s}, {s, -s}};
    EXPECT_TRUE(h.isUnitary());
}

TEST(MatrixTest, NonUnitaryDetected)
{
    Matrix m{{1.0, 1.0}, {0.0, 1.0}};
    EXPECT_FALSE(m.isUnitary());
}

TEST(MatrixTest, PermutationLike)
{
    Matrix cnot{{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}};
    EXPECT_TRUE(cnot.isPermutationLike());

    double s = 1.0 / std::sqrt(2.0);
    Matrix h{{s, s}, {s, -s}};
    EXPECT_FALSE(h.isPermutationLike());

    // Diagonal with phases is permutation-like.
    Matrix rz{{std::exp(-kI * 0.3), 0.0}, {0.0, std::exp(kI * 0.3)}};
    EXPECT_TRUE(rz.isPermutationLike());
}

TEST(MatrixTest, ApproxEqualRejectsShapeMismatch)
{
    Matrix a(2, 2);
    Matrix b(2, 3);
    EXPECT_FALSE(a.approxEqual(b));
}

} // namespace
} // namespace qkc
