#include "statevector/statevector_simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "util/stats.h"

namespace qkc {
namespace {

TEST(StateVectorSimulatorTest, BellDistribution)
{
    StateVectorSimulator sim;
    auto sv = sim.simulate(bellCircuit());
    auto probs = sv.probabilities();
    EXPECT_NEAR(probs[0], 0.5, 1e-12);
    EXPECT_NEAR(probs[3], 0.5, 1e-12);
    EXPECT_NEAR(probs[1], 0.0, 1e-12);
    EXPECT_NEAR(probs[2], 0.0, 1e-12);
}

TEST(StateVectorSimulatorTest, RejectsNoisyCircuit)
{
    StateVectorSimulator sim;
    EXPECT_THROW(sim.simulate(noisyBellCircuit()), std::invalid_argument);
}

TEST(StateVectorSimulatorTest, SamplingMatchesDistribution)
{
    StateVectorSimulator sim;
    Rng rng(99);
    auto samples = sim.sample(bellCircuit(), 20000, rng);
    auto emp = empiricalDistribution(samples, 4);
    EXPECT_NEAR(emp[0], 0.5, 0.02);
    EXPECT_NEAR(emp[3], 0.5, 0.02);
    EXPECT_NEAR(emp[1] + emp[2], 0.0, 1e-12);
}

TEST(StateVectorSimulatorTest, TrajectoryPreservesNorm)
{
    StateVectorSimulator sim;
    Rng rng(5);
    Circuit c = bellCircuit().withNoiseAfterEachGate(NoiseKind::Depolarizing,
                                                     0.2);
    for (int i = 0; i < 20; ++i) {
        auto sv = sim.simulateTrajectory(c, rng);
        EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
    }
}

TEST(StateVectorSimulatorTest, TrajectoryAveragesToChannelResult)
{
    // Bit flip with p = 0.3 after X: qubit ends in |1> w.p. 0.7.
    Circuit c(1);
    c.x(0);
    c.append(NoiseChannel::bitFlip(0, 0.3));

    StateVectorSimulator sim;
    Rng rng(123);
    auto samples = sim.sampleNoisy(c, 20000, rng);
    auto emp = empiricalDistribution(samples, 2);
    EXPECT_NEAR(emp[1], 0.7, 0.02);
}

TEST(StateVectorSimulatorTest, ExhaustiveNoisyDistributionBell)
{
    // The paper's noisy Bell example keeps outcome probabilities 1/2, 1/2
    // (phase damping does not change populations).
    StateVectorSimulator sim;
    auto dist = sim.noisyDistributionExhaustive(noisyBellCircuit(0.36));
    EXPECT_NEAR(dist[0], 0.5, 1e-12);
    EXPECT_NEAR(dist[3], 0.5, 1e-12);
    EXPECT_NEAR(dist[1], 0.0, 1e-12);
}

TEST(StateVectorSimulatorTest, ExhaustiveMatchesTrajectoriesOnAmplitudeDamping)
{
    Circuit c(1);
    c.h(0);
    c.append(NoiseChannel::amplitudeDamping(0, 0.4));

    StateVectorSimulator sim;
    auto exact = sim.noisyDistributionExhaustive(c);

    Rng rng(7);
    auto samples = sim.sampleNoisy(c, 30000, rng);
    auto emp = empiricalDistribution(samples, 2);
    EXPECT_NEAR(emp[0], exact[0], 0.02);
    EXPECT_NEAR(emp[1], exact[1], 0.02);
}

TEST(StateVectorSimulatorTest, ExhaustiveDistributionSumsToOne)
{
    Circuit c = ghzCircuit(3).withNoiseAfterEachGate(NoiseKind::Depolarizing,
                                                     0.05);
    StateVectorSimulator sim;
    auto dist = sim.noisyDistributionExhaustive(c);
    double total = 0.0;
    for (double p : dist)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(StateVectorSimulatorTest, SampleFromDistributionEdgeCases)
{
    Rng rng(1);
    std::vector<double> point{0.0, 1.0, 0.0};
    auto s = StateVectorSimulator::sampleFromDistribution(point, 100, rng);
    for (auto v : s)
        EXPECT_EQ(v, 1u);
}

} // namespace
} // namespace qkc
