#include "statevector/state_vector.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/gate.h"

namespace qkc {
namespace {

TEST(StateVectorTest, InitialState)
{
    StateVector sv(3);
    EXPECT_EQ(sv.dimension(), 8u);
    EXPECT_TRUE(approxEqual(sv.amplitude(0), Complex{1.0}));
    for (std::uint64_t i = 1; i < 8; ++i)
        EXPECT_TRUE(approxEqual(sv.amplitude(i), Complex{}));
}

TEST(StateVectorTest, HadamardOnQubit0)
{
    StateVector sv(2);
    sv.applySingleQubit(Gate(GateKind::H, {0}).unitary(), 0);
    double s = 1.0 / std::sqrt(2.0);
    // Qubit 0 is the high bit: |00> and |10> get amplitude.
    EXPECT_TRUE(approxEqual(sv.amplitude(0), Complex{s}));
    EXPECT_TRUE(approxEqual(sv.amplitude(2), Complex{s}));
    EXPECT_TRUE(approxEqual(sv.amplitude(1), Complex{}));
}

TEST(StateVectorTest, XOnLowQubit)
{
    StateVector sv(2);
    sv.applySingleQubit(Gate(GateKind::X, {1}).unitary(), 1);
    EXPECT_TRUE(approxEqual(sv.amplitude(1), Complex{1.0}));
}

TEST(StateVectorTest, BellStateViaKernels)
{
    StateVector sv(2);
    sv.applySingleQubit(Gate(GateKind::H, {0}).unitary(), 0);
    sv.applyTwoQubit(Gate(GateKind::CNOT, {0, 1}).unitary(), 0, 1);
    double s = 1.0 / std::sqrt(2.0);
    EXPECT_TRUE(approxEqual(sv.amplitude(0), Complex{s}));
    EXPECT_TRUE(approxEqual(sv.amplitude(3), Complex{s}));
    EXPECT_TRUE(approxEqual(sv.amplitude(1), Complex{}));
    EXPECT_TRUE(approxEqual(sv.amplitude(2), Complex{}));
}

TEST(StateVectorTest, TwoQubitRespectsOperandOrder)
{
    // CNOT with control=1, target=0: |01> -> |11>.
    StateVector sv(2);
    sv.applySingleQubit(Gate(GateKind::X, {1}).unitary(), 1);
    sv.applyTwoQubit(Gate(GateKind::CNOT, {1, 0}).unitary(), 1, 0);
    EXPECT_TRUE(approxEqual(sv.amplitude(3), Complex{1.0}));
}

TEST(StateVectorTest, ToffoliKernel)
{
    StateVector sv(3);
    sv.applySingleQubit(Gate(GateKind::X, {0}).unitary(), 0);
    sv.applySingleQubit(Gate(GateKind::X, {1}).unitary(), 1);
    sv.applyThreeQubit(Gate(GateKind::CCX, {0, 1, 2}).unitary(), 0, 1, 2);
    EXPECT_TRUE(approxEqual(sv.amplitude(7), Complex{1.0}));
}

TEST(StateVectorTest, NonAdjacentQubits)
{
    // CNOT across qubits 0 and 2 in a 3-qubit register.
    StateVector sv(3);
    sv.applySingleQubit(Gate(GateKind::X, {0}).unitary(), 0);
    sv.applyTwoQubit(Gate(GateKind::CNOT, {0, 2}).unitary(), 0, 2);
    // |100> -> |101> = index 5.
    EXPECT_TRUE(approxEqual(sv.amplitude(5), Complex{1.0}));
}

TEST(StateVectorTest, NormAndNormalize)
{
    StateVector sv(1);
    sv.amplitude(0) = Complex{0.6, 0.0};
    sv.amplitude(1) = Complex{0.0, 0.6};
    EXPECT_NEAR(sv.norm(), 0.72, 1e-12);
    sv.normalize();
    EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(StateVectorTest, ProbabilitiesSumToOneAfterUnitaries)
{
    StateVector sv(4);
    sv.applySingleQubit(Gate(GateKind::H, {0}).unitary(), 0);
    sv.applySingleQubit(Gate(GateKind::Rx, {2}, 1.1).unitary(), 2);
    sv.applyTwoQubit(Gate(GateKind::ZZ, {1, 3}, 0.7).unitary(), 1, 3);
    auto probs = sv.probabilities();
    double total = 0.0;
    for (double p : probs)
        total += p;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(StateVectorTest, RejectsBadQubitCount)
{
    EXPECT_THROW(StateVector(0), std::invalid_argument);
    EXPECT_THROW(StateVector(31), std::invalid_argument);
}

} // namespace
} // namespace qkc
