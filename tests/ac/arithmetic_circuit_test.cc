#include "ac/arithmetic_circuit.h"

#include <gtest/gtest.h>

#include <sstream>

#include "ac/nnf_io.h"

namespace qkc {
namespace {

TEST(ArithmeticCircuitTest, HashConsingDeduplicatesLeaves)
{
    ArithmeticCircuit ac;
    EXPECT_EQ(ac.indicator(3, 1), ac.indicator(3, 1));
    EXPECT_NE(ac.indicator(3, 1), ac.indicator(3, 0));
    EXPECT_EQ(ac.param(7), ac.param(7));
    EXPECT_EQ(ac.constant(Complex{2.0}), ac.constant(Complex{2.0}));
    EXPECT_NE(ac.constant(Complex{2.0}), ac.constant(Complex{2.0, 1.0}));
}

TEST(ArithmeticCircuitTest, HashConsingDeduplicatesInterior)
{
    ArithmeticCircuit ac;
    auto a = ac.indicator(0, 0);
    auto b = ac.param(1);
    auto m1 = ac.mul({a, b});
    auto m2 = ac.mul({b, a});  // order-insensitive
    EXPECT_EQ(m1, m2);
    auto s1 = ac.add({m1, ac.param(2)});
    auto s2 = ac.add({ac.param(2), m2});
    EXPECT_EQ(s1, s2);
}

TEST(ArithmeticCircuitTest, MulFolding)
{
    ArithmeticCircuit ac;
    auto x = ac.indicator(0, 1);
    EXPECT_EQ(ac.mul({x, ac.one()}), x);          // unit dropped
    EXPECT_EQ(ac.mul({x, ac.zero()}), ac.zero()); // annihilator
    EXPECT_EQ(ac.mul({}), ac.one());              // empty product
    EXPECT_EQ(ac.mul({x}), x);                    // single child
}

TEST(ArithmeticCircuitTest, AddFolding)
{
    ArithmeticCircuit ac;
    auto x = ac.indicator(0, 1);
    EXPECT_EQ(ac.add({x, ac.zero()}), x);
    EXPECT_EQ(ac.add({}), ac.zero());
    EXPECT_EQ(ac.add({x}), x);
}

TEST(ArithmeticCircuitTest, FlattenNested)
{
    ArithmeticCircuit ac;
    auto a = ac.param(0), b = ac.param(1), c = ac.param(2);
    auto inner = ac.mul({a, b});
    auto outer = ac.mul({inner, c});
    EXPECT_EQ(ac.node(outer).numChildren(), 3u);
    auto innerSum = ac.add({a, b});
    auto outerSum = ac.add({innerSum, c});
    EXPECT_EQ(ac.node(outerSum).numChildren(), 3u);
}

TEST(ArithmeticCircuitTest, LiveCountsExcludeGarbage)
{
    ArithmeticCircuit ac;
    auto a = ac.param(0), b = ac.param(1);
    ac.mul({a, b});            // dead node
    auto root = ac.add({a, b});
    ac.setRoot(root);
    EXPECT_EQ(ac.liveNodeCount(), 3u);  // root + 2 leaves
    EXPECT_EQ(ac.liveEdgeCount(), 2u);
    EXPECT_GT(ac.numNodes(), ac.liveNodeCount());
}

TEST(ArithmeticCircuitTest, NnfRoundTrip)
{
    ArithmeticCircuit ac;
    auto i0 = ac.indicator(0, 0);
    auto i1 = ac.indicator(0, 1);
    auto p = ac.param(4);
    auto c = ac.constant(Complex{0.5, -0.25});
    auto root = ac.add({ac.mul({i0, p}), ac.mul({i1, c})});
    ac.setRoot(root);

    std::stringstream ss;
    std::size_t bytes = ac.writeNnf(ss);
    EXPECT_GT(bytes, 0u);
    ArithmeticCircuit back = readNnf(ss);

    // Same live shape.
    EXPECT_EQ(back.liveNodeCount(), ac.liveNodeCount());
    EXPECT_EQ(back.liveEdgeCount(), ac.liveEdgeCount());
    EXPECT_EQ(back.node(back.root()).kind, AcNodeKind::Add);
}

TEST(ArithmeticCircuitTest, NnfRejectsGarbage)
{
    std::stringstream ss("bogus 1 2\n");
    EXPECT_THROW(readNnf(ss), std::invalid_argument);
    std::stringstream ss2("qnnf 1 0\nI 0 0\n");  // missing root
    EXPECT_THROW(readNnf(ss2), std::invalid_argument);
}

} // namespace
} // namespace qkc
