/**
 * NNF round trip: a compiled arithmetic circuit written with writeNnf and
 * re-read with readNnf must describe the same function — identical live
 * node/edge counts (the reader rebuilds through the same hash-consing
 * constructor) and identical evaluations under every evidence setting.
 */
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "ac/kc_simulator.h"
#include "ac/nnf_io.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

std::vector<std::size_t> cardinalities(const QuantumBayesNet& bn)
{
    std::vector<std::size_t> cards(bn.variables().size());
    for (BnVarId v = 0; v < cards.size(); ++v)
        cards[v] = bn.variable(v).cardinality;
    return cards;
}

TEST(NnfRoundTripTest, CountsSurviveRoundTrip)
{
    Rng rng(210);
    KcSimulator kc(testing::randomCircuit(3, 10, rng));

    std::stringstream first;
    std::size_t bytes = kc.ac().writeNnf(first);
    EXPECT_GT(bytes, 0u);

    ArithmeticCircuit back = readNnf(first);
    EXPECT_EQ(back.liveNodeCount(), kc.ac().liveNodeCount());
    EXPECT_EQ(back.liveEdgeCount(), kc.ac().liveEdgeCount());

    // Writing the reloaded circuit reproduces the serialized form exactly:
    // the format is canonical for a given live structure.
    std::stringstream second;
    back.writeNnf(second);
    EXPECT_EQ(second.str(), first.str());
}

TEST(NnfRoundTripTest, EvaluationsSurviveRoundTrip)
{
    Rng rng(211);
    Circuit c = testing::randomCircuit(3, 12, rng);
    KcSimulator kc(c);

    std::stringstream nnf;
    kc.ac().writeNnf(nnf);
    ArithmeticCircuit back = readNnf(nnf);

    const QuantumBayesNet& bn = kc.bayesNet();
    AcEvaluator eval(back, cardinalities(bn), bn.paramValues());

    // Outcome bits map to final vars big-endian (finals[q] <- bit n-1-q),
    // matching KcSimulator::amplitude.
    const auto& finals = bn.finalVars();
    const std::size_t n = finals.size();
    for (std::uint64_t outcome = 0; outcome < (1u << n); ++outcome) {
        for (std::size_t q = 0; q < n; ++q)
            eval.setEvidence(finals[q],
                             (outcome >> (n - 1 - q)) & 1u ? 1 : 0);
        EXPECT_TRUE(approxEqual(eval.evaluate(), kc.amplitude(outcome), 1e-10))
            << "outcome=" << outcome;
    }
}

TEST(NnfRoundTripTest, NoisyCircuitRoundTripPreservesEvaluation)
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    c.append(NoiseChannel::bitFlip(1, 0.2));

    KcSimulator kc(c);
    std::stringstream nnf;
    kc.ac().writeNnf(nnf);
    ArithmeticCircuit back = readNnf(nnf);
    EXPECT_EQ(back.liveNodeCount(), kc.ac().liveNodeCount());
    EXPECT_EQ(back.liveEdgeCount(), kc.ac().liveEdgeCount());

    const QuantumBayesNet& bn = kc.bayesNet();
    AcEvaluator eval(back, cardinalities(bn), bn.paramValues());
    const auto& finals = bn.finalVars();
    const std::size_t n = finals.size();
    for (std::size_t noise = 0; noise < 2; ++noise) {
        for (std::uint64_t outcome = 0; outcome < 4; ++outcome) {
            for (std::size_t q = 0; q < n; ++q)
                eval.setEvidence(finals[q],
                                 (outcome >> (n - 1 - q)) & 1u ? 1 : 0);
            eval.setEvidence(bn.noiseVars()[0], static_cast<int>(noise));
            EXPECT_TRUE(approxEqual(eval.evaluate(),
                                    kc.amplitude(outcome, {noise}), 1e-10))
                << "outcome=" << outcome << " noise=" << noise;
        }
    }
}

} // namespace
} // namespace qkc
