#include "ac/kc_simulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "bayesnet/variable_elimination.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

TEST(KcSimulatorTest, Table5NoisyBellUpwardPass)
{
    // The paper's Table 5: amplitudes per (noise event, outcome).
    KcSimulator kc(noisyBellCircuit(0.36));
    double s = 1.0 / std::sqrt(2.0);

    EXPECT_TRUE(approxEqual(kc.amplitude(0b00, {0}), Complex{s}));
    EXPECT_TRUE(approxEqual(kc.amplitude(0b11, {0}), Complex{0.8 * s}));
    EXPECT_TRUE(approxEqual(kc.amplitude(0b01, {0}), Complex{}));
    EXPECT_TRUE(approxEqual(kc.amplitude(0b10, {0}), Complex{}));
    // Kraus convention: +0.6/sqrt(2) where the paper's Ry construction
    // yields -0.6/sqrt(2); identical density matrix.
    EXPECT_NEAR(std::abs(kc.amplitude(0b11, {1})), 0.6 * s, 1e-12);
    EXPECT_TRUE(approxEqual(kc.amplitude(0b00, {1}), Complex{}));

    // Density matrix diagonal from summing |amplitude|^2 over noise events.
    EXPECT_NEAR(kc.probability(0b00), 0.5, 1e-12);
    EXPECT_NEAR(kc.probability(0b11), 0.5, 1e-12);
    EXPECT_NEAR(kc.probability(0b01), 0.0, 1e-12);
}

TEST(KcSimulatorTest, MetricsArePopulated)
{
    KcSimulator kc(noisyBellCircuit(0.36));
    auto m = kc.metrics();
    EXPECT_GT(m.bnNodes, 0u);
    EXPECT_GT(m.cnfVars, 0u);
    EXPECT_GT(m.cnfClauses, 0u);
    EXPECT_GT(m.acNodes, 0u);
    EXPECT_GT(m.acEdges, 0u);
    EXPECT_GT(m.acFileBytes, 0u);
    EXPECT_GE(m.cnfVars, m.cnfIndicatorVars);
}

class AlgorithmSuiteKcTest : public ::testing::TestWithParam<int> {};

TEST_P(AlgorithmSuiteKcTest, DistributionMatchesStateVector)
{
    // The artifact's validation list (appendix A.6.1): each benchmark
    // algorithm simulated by the KC backend must reproduce the state-vector
    // distribution exactly.
    std::vector<Circuit> suite{
        bellCircuit(),
        ghzCircuit(4),
        chshCircuit(0.0, M_PI / 4),
        teleportationCircuit(1.1),
        deutschJozsaCircuit(3, 0b101),
        bernsteinVaziraniCircuit(4, 0b1011),
        simonCircuit(3, 0b110),
        hiddenShiftCircuit(4, 0b1001),
        qftCircuit(3),
        groverCircuit(3, 0b101),
        shorOrderFindingCircuit(3, 7),
    };
    const Circuit& c = suite[static_cast<std::size_t>(GetParam())];

    KcSimulator kc(c);
    StateVectorSimulator sv;
    auto probs = sv.simulate(c).probabilities();
    auto kcDist = kc.outcomeDistribution();
    ASSERT_EQ(kcDist.size(), probs.size());
    for (std::size_t x = 0; x < probs.size(); ++x)
        EXPECT_NEAR(kcDist[x], probs[x], 1e-9) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(Suite, AlgorithmSuiteKcTest, ::testing::Range(0, 11));

TEST(KcSimulatorTest, NoisyDistributionMatchesDensityMatrix)
{
    Circuit c = ghzCircuit(3).withNoiseAfterEachGate(NoiseKind::Depolarizing,
                                                     0.02);
    KcSimulator kc(c);
    DensityMatrixSimulator dm;
    auto exact = dm.distribution(c);
    auto kcDist = kc.outcomeDistribution();
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(kcDist[x], exact[x], 1e-9) << "x=" << x;
}

TEST(KcSimulatorTest, MixedChannelTypesMatchDensityMatrix)
{
    Circuit c(2);
    c.h(0);
    c.append(NoiseChannel::amplitudeDamping(0, 0.25));
    c.cnot(0, 1);
    c.append(NoiseChannel::generalizedAmplitudeDamping(1, 0.2, 0.6));
    c.ry(1, 0.8);
    c.append(NoiseChannel::asymmetricDepolarizing(0, 0.02, 0.03, 0.04));

    KcSimulator kc(c);
    DensityMatrixSimulator dm;
    auto exact = dm.distribution(c);
    auto kcDist = kc.outcomeDistribution();
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(kcDist[x], exact[x], 1e-9) << "x=" << x;
}

TEST(KcSimulatorTest, RefreshParamsMatchesRecompile)
{
    Circuit c1 = testing::ringQaoaCircuit(5, 0.3, 0.2);
    Circuit c2 = testing::ringQaoaCircuit(5, 1.1, 0.6);

    KcSimulator reused(c1);
    reused.refreshParams(c2);

    KcSimulator fresh(c2);
    StateVectorSimulator sv;
    auto amps = sv.simulate(c2).amplitudes();
    for (std::uint64_t x = 0; x < amps.size(); ++x) {
        EXPECT_TRUE(approxEqual(reused.amplitude(x), amps[x], 1e-9)) << x;
        EXPECT_TRUE(approxEqual(reused.amplitude(x), fresh.amplitude(x), 1e-9));
    }
}

TEST(KcSimulatorTest, RefreshIsCheaperThanFullEvaluation)
{
    // After a parameter refresh, only the dirty cone is recomputed.
    Circuit c1 = testing::ringQaoaCircuit(6, 0.3, 0.2);
    KcSimulator kc(c1);
    kc.amplitude(5);
    std::size_t fullCost = kc.evaluator().lastRecomputeCount();

    // Change a single gate angle.
    Circuit c2 = c1;
    auto idx = c2.parameterizedGateIndices();
    c2.setGateParam(idx[0], 0.77);
    kc.refreshParams(c2);
    kc.evaluator().evaluate();
    EXPECT_LT(kc.evaluator().lastRecomputeCount(), fullCost);
    (void)fullCost;
}

TEST(KcSimulatorTest, AmplitudeRejectsBadNoiseSize)
{
    KcSimulator kc(noisyBellCircuit(0.36));
    EXPECT_THROW(kc.amplitude(0, {0, 1}), std::invalid_argument);
}

TEST(KcSimulatorTest, OutcomeDistributionSumsToOne)
{
    for (int seed = 0; seed < 3; ++seed) {
        Rng rng(900 + seed);
        Circuit c = testing::randomCircuit(4, 12, rng);
        KcSimulator kc(c);
        auto dist = kc.outcomeDistribution();
        double total = 0.0;
        for (double p : dist)
            total += p;
        EXPECT_NEAR(total, 1.0, 1e-9);
    }
}

TEST(KcSimulatorTest, VariableEliminationAgreesWithAc)
{
    Rng rng(404);
    Circuit c = testing::randomCircuit(3, 9, rng).withNoiseAfterEachGate(
        NoiseKind::PhaseDamping, 0.1);
    KcSimulator kc(c);
    VariableElimination ve(kc.bayesNet());
    auto veDist = ve.outcomeDistribution();
    auto acDist = kc.outcomeDistribution();
    for (std::size_t x = 0; x < veDist.size(); ++x)
        EXPECT_NEAR(veDist[x], acDist[x], 1e-9) << x;
}

} // namespace
} // namespace qkc
