/**
 * Determinism and distribution-quality smoke tests for the Gibbs sampler:
 * identically-seeded runs must reproduce the exact sample stream, and a
 * Bell-state chain must pass a chi-square goodness-of-fit check against the
 * exact 50/50 distribution on {|00>, |11>}.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "ac/kc_simulator.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

Circuit bellCircuit()
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    return c;
}

TEST(GibbsDeterminismTest, IdenticalSeedsYieldIdenticalSampleStreams)
{
    Rng circuitRng(301);
    Circuit c = testing::randomCircuit(3, 10, circuitRng);
    KcSimulator kc(c);

    Rng a(555), b(555);
    auto samplesA = kc.sample(400, a);
    auto samplesB = kc.sample(400, b);
    ASSERT_EQ(samplesA.size(), samplesB.size());
    EXPECT_EQ(samplesA, samplesB);
}

TEST(GibbsDeterminismTest, DifferentSeedsYieldDifferentStreams)
{
    KcSimulator kc(bellCircuit());
    Rng a(1), b(2);
    auto samplesA = kc.sample(256, a);
    auto samplesB = kc.sample(256, b);
    EXPECT_NE(samplesA, samplesB);
}

TEST(GibbsDeterminismTest, BellStateChiSquareSmoke)
{
    KcSimulator kc(bellCircuit());

    Rng rng(2026);
    GibbsOptions options;
    options.burnIn = 128;
    const std::size_t n = 4000;
    auto samples = kc.sample(n, rng, options);
    ASSERT_EQ(samples.size(), n);

    std::vector<std::size_t> counts(4, 0);
    for (std::uint64_t s : samples) {
        ASSERT_LT(s, 4u);
        ++counts[s];
    }

    // The Bell state has zero amplitude on |01> and |10>.
    EXPECT_EQ(counts[0b01], 0u);
    EXPECT_EQ(counts[0b10], 0u);

    // Chi-square against the exact 50/50 split over the support. One degree
    // of freedom; 10.83 is the 99.9th percentile, and MCMC autocorrelation
    // only tightens (never widens) a fixed-seed check.
    double expected = static_cast<double>(n) / 2.0;
    double chi2 = 0.0;
    for (std::uint64_t s : {std::uint64_t{0b00}, std::uint64_t{0b11}}) {
        double diff = static_cast<double>(counts[s]) - expected;
        chi2 += diff * diff / expected;
    }
    EXPECT_LT(chi2, 10.83) << "counts: 00=" << counts[0] << " 11=" << counts[3];
}

} // namespace
} // namespace qkc
