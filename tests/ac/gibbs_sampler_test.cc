#include "ac/gibbs_sampler.h"

#include <gtest/gtest.h>

#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "statevector/statevector_simulator.h"
#include "testing/test_circuits.h"
#include "util/stats.h"

namespace qkc {
namespace {

TEST(GibbsSamplerTest, BellConvergesToHalfHalf)
{
    KcSimulator kc(bellCircuit());
    Rng rng(11);
    auto samples = kc.sample(4000, rng);
    auto emp = empiricalDistribution(samples, 4);
    EXPECT_NEAR(emp[0], 0.5, 0.05);
    EXPECT_NEAR(emp[3], 0.5, 0.05);
    EXPECT_NEAR(emp[1] + emp[2], 0.0, 1e-12);
}

TEST(GibbsSamplerTest, NoisyBellMarginalizesNoise)
{
    KcSimulator kc(noisyBellCircuit(0.36));
    Rng rng(13);
    auto samples = kc.sample(4000, rng);
    auto emp = empiricalDistribution(samples, 4);
    EXPECT_NEAR(emp[0], 0.5, 0.05);
    EXPECT_NEAR(emp[3], 0.5, 0.05);
}

TEST(GibbsSamplerTest, QaoaDistributionKlShrinks)
{
    // Figure 7's qualitative claim: Gibbs KL divergence falls with samples.
    Circuit c = testing::ringQaoaCircuit(6, 0.6, 0.4);
    KcSimulator kc(c);
    auto exact = kc.outcomeDistribution();

    Rng rng(17);
    GibbsOptions options;
    options.burnIn = 128;
    auto samples = kc.sample(8000, rng, options);

    auto few = std::vector<std::uint64_t>(samples.begin(),
                                          samples.begin() + 100);
    double klFew = klDivergence(exact, empiricalDistribution(few, 64));
    double klMany = klDivergence(exact, empiricalDistribution(samples, 64));
    EXPECT_LT(klMany, klFew);
    EXPECT_LT(klMany, 0.1);
}

TEST(GibbsSamplerTest, DeterministicOutcomeFoundBySequentialInit)
{
    // Hidden shift's output is a single basis state: random restarts almost
    // surely miss it, so initialization must construct it sequentially.
    const std::uint64_t shift = 0b1011;
    KcSimulator kc(hiddenShiftCircuit(4, shift));
    Rng rng(19);
    auto samples = kc.sample(32, rng);
    for (auto s : samples)
        EXPECT_EQ(s, shift);
}

TEST(GibbsSamplerTest, NoisyDistributionMatchesDensityDiagonal)
{
    Circuit c = bellCircuit().withNoiseAfterEachGate(NoiseKind::Depolarizing,
                                                     0.1);
    KcSimulator kc(c);
    auto exact = kc.outcomeDistribution();
    Rng rng(23);
    GibbsOptions options;
    options.burnIn = 256;
    auto samples = kc.sample(6000, rng, options);
    auto emp = empiricalDistribution(samples, 4);
    for (std::size_t x = 0; x < 4; ++x)
        EXPECT_NEAR(emp[x], exact[x], 0.05) << "x=" << x;
}

TEST(GibbsSamplerTest, SweepKeepsSupport)
{
    KcSimulator kc(bellCircuit());
    GibbsSampler sampler(kc.bayesNet(), kc.evaluator());
    Rng rng(29);
    ASSERT_TRUE(sampler.init(rng));
    for (int i = 0; i < 50; ++i) {
        sampler.sweep(rng);
        auto outcome = sampler.outcome();
        EXPECT_TRUE(outcome == 0 || outcome == 3) << outcome;
    }
}

TEST(GibbsSamplerTest, StateVectorAndGibbsAgreeOnRandomCircuit)
{
    Rng circuitRng(31);
    Circuit c = testing::randomCircuit(4, 10, circuitRng);
    KcSimulator kc(c);
    StateVectorSimulator sv;
    auto exact = sv.simulate(c).probabilities();

    Rng rng(37);
    GibbsOptions options;
    options.burnIn = 256;
    auto samples = kc.sample(8000, rng, options);
    auto emp = empiricalDistribution(samples, exact.size());
    EXPECT_LT(totalVariation(exact, emp), 0.08);
}

} // namespace
} // namespace qkc
