#include "ac/evaluator.h"

#include <gtest/gtest.h>

namespace qkc {
namespace {

/** f = lambda_{0=0} * p0 + lambda_{0=1} * p1 : a one-variable mini circuit. */
struct MiniCircuit {
    ArithmeticCircuit ac;
    MiniCircuit()
    {
        auto root = ac.add({ac.mul({ac.indicator(0, 0), ac.param(0)}),
                            ac.mul({ac.indicator(0, 1), ac.param(1)})});
        ac.setRoot(root);
    }
};

TEST(AcEvaluatorTest, EvidenceSelectsBranch)
{
    MiniCircuit mini;
    AcEvaluator eval(mini.ac, {2}, {Complex{0.6}, Complex{0.0, 0.8}});
    eval.setEvidence(0, 0);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{0.6}));
    eval.setEvidence(0, 1);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex(0.0, 0.8)));
    eval.setEvidence(0, AcEvaluator::kFree);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex(0.6, 0.8)));
}

TEST(AcEvaluatorTest, SetParamsUpdatesValue)
{
    MiniCircuit mini;
    AcEvaluator eval(mini.ac, {2}, {Complex{0.6}, Complex{0.8}});
    eval.setEvidence(0, 0);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{0.6}));
    eval.setParams({Complex{0.3}, Complex{0.8}});
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{0.3}));
}

TEST(AcEvaluatorTest, SetParamsRejectsSizeMismatch)
{
    MiniCircuit mini;
    AcEvaluator eval(mini.ac, {2}, {Complex{0.6}, Complex{0.8}});
    EXPECT_THROW(eval.setParams({Complex{1.0}}), std::invalid_argument);
}

TEST(AcEvaluatorTest, MemoizationRecomputesOnlyDirtyCone)
{
    MiniCircuit mini;
    AcEvaluator eval(mini.ac, {2}, {Complex{0.6}, Complex{0.8}});
    eval.setEvidence(0, 0);
    eval.evaluate();
    std::size_t full = eval.lastRecomputeCount();
    EXPECT_GT(full, 0u);

    // No change: nothing recomputed.
    eval.evaluate();
    EXPECT_EQ(eval.lastRecomputeCount(), 0u);

    // One param change: strictly fewer recomputations than the full sweep.
    eval.setParams({Complex{0.6}, Complex{0.9}});
    eval.evaluate();
    EXPECT_GT(eval.lastRecomputeCount(), 0u);
    EXPECT_LT(eval.lastRecomputeCount(), full);

    // Unchanged params: no dirtying at all.
    eval.setParams({Complex{0.6}, Complex{0.9}});
    eval.evaluate();
    EXPECT_EQ(eval.lastRecomputeCount(), 0u);
}

TEST(AcEvaluatorTest, DerivativesGiveFlipAmplitudes)
{
    MiniCircuit mini;
    AcEvaluator eval(mini.ac, {2}, {Complex{0.6}, Complex{0.0, 0.8}});
    eval.setEvidence(0, 0);
    eval.evaluate();
    eval.computeDerivatives();
    // d f / d lambda_{0=v} equals f with variable 0 set to v.
    EXPECT_TRUE(approxEqual(eval.derivative(0, 0), Complex{0.6}));
    EXPECT_TRUE(approxEqual(eval.derivative(0, 1), Complex(0.0, 0.8)));
}

TEST(AcEvaluatorTest, DerivativesThroughProductsWithZeros)
{
    // f = lambda_{0=1} * lambda_{1=1} * p ; evidence (0=0, 1=1) makes the
    // product zero, but the derivative w.r.t. lambda_{0=1} must recover p.
    ArithmeticCircuit ac;
    auto root = ac.mul(
        {ac.indicator(0, 1), ac.indicator(1, 1), ac.param(0)});
    ac.setRoot(root);
    AcEvaluator eval(ac, {2, 2}, {Complex{0.7}});
    eval.setEvidence(0, 0);
    eval.setEvidence(1, 1);
    EXPECT_TRUE(approxEqual(eval.evaluate(), Complex{}));
    eval.computeDerivatives();
    EXPECT_TRUE(approxEqual(eval.derivative(0, 1), Complex{0.7}));
    // Flipping var 1 to 0 keeps amplitude zero (two zero factors).
    EXPECT_TRUE(approxEqual(eval.derivative(1, 0), Complex{}));
}

TEST(AcEvaluatorTest, MissingIndicatorDerivativeIsZero)
{
    MiniCircuit mini;
    AcEvaluator eval(mini.ac, {2, 2}, {Complex{0.6}, Complex{0.8}});
    eval.evaluate();
    eval.computeDerivatives();
    EXPECT_TRUE(approxEqual(eval.derivative(1, 0), Complex{}));
}

} // namespace
} // namespace qkc
