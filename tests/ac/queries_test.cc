#include "ac/queries.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

TEST(SensitivityTest, MatchesFiniteDifferences)
{
    Circuit c = testing::ringQaoaCircuit(4, 0.5, 0.3);
    KcSimulator kc(c);
    kc.amplitude(0b0110);  // fixes evidence
    auto sens = parameterSensitivities(kc);
    ASSERT_FALSE(sens.empty());

    // Check the top three parameters against a central finite difference.
    auto& eval = kc.evaluator();
    auto params = kc.bayesNet().paramValues();
    const double h = 1e-6;
    for (std::size_t i = 0; i < std::min<std::size_t>(3, sens.size()); ++i) {
        const auto& s = sens[i];
        auto plus = params, minus = params;
        plus[s.paramId] += h;
        minus[s.paramId] -= h;
        eval.setParams(plus);
        Complex fPlus = eval.evaluate();
        eval.setParams(minus);
        Complex fMinus = eval.evaluate();
        eval.setParams(params);
        eval.evaluate();
        Complex fd = (fPlus - fMinus) / (2.0 * h);
        EXPECT_TRUE(approxEqual(fd, s.derivative, 1e-5))
            << "param " << s.paramId << " fd=" << fd
            << " analytic=" << s.derivative;
    }
}

TEST(SensitivityTest, SortedByInfluence)
{
    Circuit c = testing::ringQaoaCircuit(4, 0.5, 0.3);
    KcSimulator kc(c);
    kc.amplitude(3);
    auto sens = parameterSensitivities(kc);
    for (std::size_t i = 1; i < sens.size(); ++i)
        EXPECT_GE(sens[i - 1].influence, sens[i].influence);
}

TEST(SensitivityTest, UnusedParamHasZeroDerivative)
{
    // Evidence |00>: the noisy Bell's sqrt(gamma) entry (only reachable via
    // |11> with rv=1) cannot influence the amplitude.
    KcSimulator kc(noisyBellCircuit(0.36));
    kc.amplitude(0b00, {0});
    auto sens = parameterSensitivities(kc);
    // Find the parameter whose value is 0.6 (= sqrt(0.36)).
    bool found = false;
    for (const auto& s : sens) {
        if (std::abs(s.value.real() - 0.6) < 1e-12) {
            EXPECT_NEAR(std::abs(s.derivative), 0.0, 1e-12);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(MpeTest, NoisyBellExplanations)
{
    KcSimulator kc(noisyBellCircuit(0.36));
    Rng rng(3);
    // Outcome |11>: both rv=0 (amp 0.8/sqrt2) and rv=1 (amp 0.6/sqrt2) are
    // possible; the MPE is rv=0.
    auto r = mostProbableExplanation(kc, 0b11, rng);
    EXPECT_TRUE(r.exact);
    ASSERT_EQ(r.noiseAssignment.size(), 1u);
    EXPECT_EQ(r.noiseAssignment[0], 0u);
    EXPECT_NEAR(r.mass, 0.64 / 2.0, 1e-12);

    // Outcome |00>: only rv=0 has support.
    auto r0 = mostProbableExplanation(kc, 0b00, rng);
    EXPECT_EQ(r0.noiseAssignment[0], 0u);
    EXPECT_NEAR(r0.mass, 0.5, 1e-12);
}

TEST(MpeTest, BitFlipDiagnosis)
{
    // GHZ with a strong bit flip channel: observing |0111> is best explained
    // by the flip having fired on qubit 1 after entanglement.
    Circuit c(4);
    c.h(0).cnot(0, 1);
    c.append(NoiseChannel::bitFlip(0, 0.2));
    c.cnot(1, 2).cnot(2, 3);

    KcSimulator kc(c);
    Rng rng(5);
    auto r = mostProbableExplanation(kc, 0b0111, rng);
    EXPECT_TRUE(r.exact);
    EXPECT_EQ(r.noiseAssignment[0], 1u);  // the flip fired
    EXPECT_GT(r.mass, 0.0);

    // Clean outcome |1111>: no flip.
    auto rClean = mostProbableExplanation(kc, 0b1111, rng);
    EXPECT_EQ(rClean.noiseAssignment[0], 0u);
}

TEST(MpeTest, AnnealedMatchesExactOnMediumInstance)
{
    // Enough channels that annealing is exercised when exactLimit is tiny.
    Circuit c = ghzCircuit(3).withNoiseAfterEachGate(NoiseKind::BitFlip, 0.1);
    KcSimulator kc(c);
    Rng rngA(7), rngB(7);
    auto exact = mostProbableExplanation(kc, 0b011, rngA, /*exactLimit=*/4096);
    ASSERT_TRUE(exact.exact);
    auto annealed = mostProbableExplanation(kc, 0b011, rngB, /*exactLimit=*/1,
                                            /*annealSweeps=*/96);
    EXPECT_FALSE(annealed.exact);
    EXPECT_NEAR(annealed.mass, exact.mass, 1e-9);
}

TEST(MpeTest, MassMatchesAmplitude)
{
    Circuit c = bellCircuit().withNoiseAfterEachGate(NoiseKind::PhaseFlip,
                                                     0.15);
    KcSimulator kc(c);
    Rng rng(11);
    auto r = mostProbableExplanation(kc, 0b00, rng);
    double direct = norm2(kc.amplitude(0b00, r.noiseAssignment));
    EXPECT_NEAR(r.mass, direct, 1e-12);
}

} // namespace
} // namespace qkc
