/**
 * Regression for the path-node fusion-boundary bug (ISSUE 10): with
 * barrierChannels set, the fusion pass must never merge gates from both
 * sides of a noise channel — every group stays inside one channel-free
 * segment, so fusion never crosses a simulation-path node boundary. Also
 * covers the per-group materialization entry point (the parallel tree-task
 * unit) and the frozen-group predicate the rebind cache relies on.
 */
#include "circuit/fusion.h"

#include <gtest/gtest.h>

#include <vector>

#include "circuit/noise.h"

namespace qkc {
namespace {

/** Every source op index a group references, in no particular order. */
std::vector<std::size_t>
groupSources(const FusionRecipe::Group& g)
{
    std::vector<std::size_t> all = g.sources;
    all.insert(all.end(), g.gateIndices.begin(), g.gateIndices.end());
    for (const auto& stage : g.pendingHigh)
        all.insert(all.end(), stage.begin(), stage.end());
    for (const auto& stage : g.pendingLow)
        all.insert(all.end(), stage.begin(), stage.end());
    return all;
}

/** h(0); channel on the OTHER wire; h(0) — the cross-boundary bait. */
Circuit
baitCircuit()
{
    Circuit c(2);
    c.h(0);
    c.append(NoiseChannel::depolarizing(1, 0.02));
    c.h(0);
    return c;
}

TEST(FusionBoundaryTest, DefaultOptionsFuseAcrossAnUntouchedChannel)
{
    // Baseline documenting the behaviour the path planners must NOT get:
    // the channel only touches q1, so the default pass carries the pending
    // H across it and the H·H product drops as identity.
    const Circuit fused = fuseGates(baitCircuit());
    EXPECT_EQ(fused.gateCount(), 0u);
    EXPECT_EQ(fused.noiseCount(), 1u);
}

TEST(FusionBoundaryTest, BarrierChannelsKeepsBothGates)
{
    FusionOptions options;
    options.barrierChannels = true;
    FusionStats stats;
    const Circuit fused = fuseGates(baitCircuit(), options, &stats);
    // One H on each side of the channel: nothing to merge, nothing dropped.
    EXPECT_EQ(fused.gateCount(), 2u);
    EXPECT_EQ(fused.noiseCount(), 1u);
    EXPECT_EQ(stats.droppedIdentity, 0u);
    EXPECT_EQ(stats.merged1q, 0u);
}

TEST(FusionBoundaryTest, NoGroupSpansAChannel)
{
    // A denser bait: pendings on both wires and a 2q chain candidate
    // interrupted by a channel in the middle.
    Circuit c(2);
    c.h(0).t(1).zz(0, 1, 0.4);
    c.append(NoiseChannel::phaseFlip(0, 0.01));
    c.s(1).cnot(0, 1).h(0);
    const std::size_t channelIdx = 3;

    FusionOptions options;
    options.barrierChannels = true;
    const FusionRecipe recipe = planFusion(c, options);
    for (const auto& g : recipe.groups) {
        if (g.kind == FusionRecipe::Group::Kind::Channel)
            continue;
        const auto sources = groupSources(g);
        ASSERT_FALSE(sources.empty());
        bool before = true;
        bool after = true;
        for (std::size_t s : sources) {
            EXPECT_NE(s, channelIdx);
            before = before && s < channelIdx;
            after = after && s > channelIdx;
        }
        EXPECT_TRUE(before || after)
            << "group fuses ops from both sides of the channel";
    }
}

TEST(FusionBoundaryTest, GroupMaterializationMatchesWholeCircuitPass)
{
    Circuit c(3);
    c.h(0).t(0).cnot(0, 1).rz(1, 0.3);
    c.append(NoiseChannel::amplitudeDamping(2, 0.05));
    c.zz(1, 2, 0.7).cnot(1, 2).h(2);

    FusionOptions options;
    options.barrierChannels = true;
    const FusionRecipe recipe = planFusion(c, options);
    FusionStats stats;
    const auto whole = materializeFusion(recipe, c, &stats);
    ASSERT_TRUE(whole.has_value());

    // Concatenating the per-group results in group order rebuilds exactly
    // the whole-pass output — the property that makes the groups safe to
    // evaluate as parallel tree tasks.
    std::vector<Operation> emitted;
    for (std::size_t g = 0; g < recipe.groups.size(); ++g) {
        const GroupResult r = materializeGroup(recipe, g, c);
        ASSERT_TRUE(r.ok) << "group " << g;
        if (!r.emitted)
            continue;
        ASSERT_TRUE(r.op.has_value());
        emitted.push_back(*r.op);
    }
    ASSERT_EQ(emitted.size(), whole->size());
    for (std::size_t i = 0; i < emitted.size(); ++i) {
        const auto& a = emitted[i];
        const auto& b = whole->operations()[i];
        ASSERT_EQ(a.index(), b.index()) << "op " << i;
        if (const auto* ga = std::get_if<Gate>(&a)) {
            const auto* gb = std::get_if<Gate>(&b);
            EXPECT_EQ(ga->qubits(), gb->qubits());
            const Matrix ma = ga->unitary();
            const Matrix mb = gb->unitary();
            ASSERT_EQ(ma.rows(), mb.rows());
            for (std::size_t r = 0; r < ma.rows(); ++r)
                for (std::size_t col = 0; col < ma.cols(); ++col)
                    EXPECT_EQ(ma(r, col), mb(r, col));
        }
    }
}

TEST(FusionBoundaryTest, FrozenPredicate)
{
    Circuit c(2);
    c.h(0).t(0);          // fixed 1q chain -> frozen
    c.rz(1, 0.4).h(1);    // parameterized source -> not frozen
    c.append(NoiseChannel::bitFlip(0, 0.01)); // channels never frozen
    const FusionRecipe recipe = planFusion(c, {});
    ASSERT_EQ(recipe.groups.size(), 3u);
    EXPECT_TRUE(groupIsFrozen(recipe.groups[0], c));
    EXPECT_FALSE(groupIsFrozen(recipe.groups[1], c));
    EXPECT_FALSE(groupIsFrozen(recipe.groups[2], c));
}

} // namespace
} // namespace qkc
