#include "circuit/gate.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qkc {
namespace {

class GateUnitaryTest : public ::testing::TestWithParam<GateKind> {};

TEST_P(GateUnitaryTest, UnitaryIsUnitary)
{
    GateKind kind = GetParam();
    std::vector<std::size_t> qubits;
    switch (kind) {
      case GateKind::CNOT:
      case GateKind::CZ:
      case GateKind::SWAP:
      case GateKind::CRz:
      case GateKind::CPhase:
      case GateKind::ZZ:
        qubits = {0, 1};
        break;
      case GateKind::CCX:
      case GateKind::CCZ:
      case GateKind::CSWAP:
        qubits = {0, 1, 2};
        break;
      default:
        qubits = {0};
        break;
    }
    Gate g(kind, qubits, 0.37);
    EXPECT_TRUE(g.unitary().isUnitary()) << g.name();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, GateUnitaryTest,
    ::testing::Values(GateKind::I, GateKind::X, GateKind::Y, GateKind::Z,
                      GateKind::H, GateKind::S, GateKind::Sdg, GateKind::T,
                      GateKind::Tdg, GateKind::Rx, GateKind::Ry, GateKind::Rz,
                      GateKind::PhaseZ, GateKind::CNOT, GateKind::CZ,
                      GateKind::SWAP, GateKind::CRz, GateKind::CPhase,
                      GateKind::ZZ, GateKind::CCX, GateKind::CCZ,
                      GateKind::CSWAP));

TEST(GateTest, HadamardEntries)
{
    Gate h(GateKind::H, {0});
    Matrix u = h.unitary();
    double s = 1.0 / std::sqrt(2.0);
    EXPECT_TRUE(approxEqual(u(0, 0), Complex{s}));
    EXPECT_TRUE(approxEqual(u(1, 1), Complex{-s}));
}

TEST(GateTest, SdgIsInverseOfS)
{
    Matrix s = Gate(GateKind::S, {0}).unitary();
    Matrix sdg = Gate(GateKind::Sdg, {0}).unitary();
    EXPECT_TRUE((s * sdg).approxEqual(Matrix::identity(2)));
}

TEST(GateTest, TSquaredIsS)
{
    Matrix t = Gate(GateKind::T, {0}).unitary();
    Matrix s = Gate(GateKind::S, {0}).unitary();
    EXPECT_TRUE((t * t).approxEqual(s));
}

TEST(GateTest, RotationComposition)
{
    Matrix a = Gate(GateKind::Rz, {0}, 0.3).unitary();
    Matrix b = Gate(GateKind::Rz, {0}, 0.5).unitary();
    Matrix c = Gate(GateKind::Rz, {0}, 0.8).unitary();
    EXPECT_TRUE((a * b).approxEqual(c));
}

TEST(GateTest, RxAtPiIsMinusIX)
{
    Matrix rx = Gate(GateKind::Rx, {0}, M_PI).unitary();
    Matrix x = Gate(GateKind::X, {0}).unitary();
    const Complex minusI{0.0, -1.0};
    EXPECT_TRUE(rx.approxEqual(x * minusI));
}

TEST(GateTest, ZZIsDiagonalWithPhases)
{
    double theta = 0.7;
    Matrix zz = Gate(GateKind::ZZ, {0, 1}, theta).unitary();
    Complex em = std::exp(Complex{0.0, -theta / 2.0});
    Complex ep = std::exp(Complex{0.0, theta / 2.0});
    EXPECT_TRUE(approxEqual(zz(0, 0), em));
    EXPECT_TRUE(approxEqual(zz(1, 1), ep));
    EXPECT_TRUE(approxEqual(zz(2, 2), ep));
    EXPECT_TRUE(approxEqual(zz(3, 3), em));
    EXPECT_TRUE(approxEqual(zz(0, 1), Complex{}));
}

TEST(GateTest, CnotPermutation)
{
    Matrix u = Gate(GateKind::CNOT, {0, 1}).unitary();
    EXPECT_TRUE(u.isPermutationLike());
    // |10> -> |11>
    EXPECT_TRUE(approxEqual(u(3, 2), Complex{1.0}));
    EXPECT_TRUE(approxEqual(u(2, 3), Complex{1.0}));
}

TEST(GateTest, CczPhasesOnlyAll1s)
{
    Matrix u = Gate(GateKind::CCZ, {0, 1, 2}).unitary();
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_TRUE(approxEqual(u(i, i), Complex{i == 7 ? -1.0 : 1.0}));
}

TEST(GateTest, CustomGateValidatesUnitarity)
{
    Matrix notUnitary{{1.0, 1.0}, {0.0, 1.0}};
    EXPECT_THROW(Gate::custom({0}, notUnitary), std::invalid_argument);

    Matrix x{{0.0, 1.0}, {1.0, 0.0}};
    Gate g = Gate::custom({0}, x, "myX");
    EXPECT_EQ(g.name(), "myX");
    EXPECT_TRUE(g.unitary().approxEqual(x));
}

TEST(GateTest, ArityValidation)
{
    EXPECT_THROW(Gate(GateKind::CNOT, {0}), std::invalid_argument);
    EXPECT_THROW(Gate(GateKind::H, {0, 1}), std::invalid_argument);
    EXPECT_THROW(Gate(GateKind::CNOT, {1, 1}), std::invalid_argument);
}

TEST(GateTest, IsParameterized)
{
    EXPECT_TRUE(Gate(GateKind::Rz, {0}, 0.1).isParameterized());
    EXPECT_TRUE(Gate(GateKind::ZZ, {0, 1}, 0.1).isParameterized());
    EXPECT_FALSE(Gate(GateKind::H, {0}).isParameterized());
    EXPECT_FALSE(Gate(GateKind::CNOT, {0, 1}).isParameterized());
}

TEST(GateTest, SetParamChangesUnitary)
{
    Gate g(GateKind::Rz, {0}, 0.1);
    Matrix before = g.unitary();
    g.setParam(0.9);
    EXPECT_FALSE(g.unitary().approxEqual(before));
}

} // namespace
} // namespace qkc
