#include "circuit/qasm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "algorithms/algorithms.h"
#include "statevector/statevector_simulator.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "testing/test_circuits.h"

namespace qkc {
namespace {

/** Round-trips `c` through QASM and checks the distribution is unchanged. */
void
expectRoundTrip(const Circuit& c)
{
    Circuit back = parseQasm(toQasm(c));
    ASSERT_EQ(back.numQubits(), c.numQubits());
    if (c.noiseCount() == 0) {
        StateVectorSimulator sv;
        auto a = sv.simulate(c).amplitudes();
        auto b = sv.simulate(back).amplitudes();
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_TRUE(approxEqual(a[i], b[i], 1e-9)) << i;
    } else {
        DensityMatrixSimulator dm;
        auto a = dm.distribution(c);
        auto b = dm.distribution(back);
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_NEAR(a[i], b[i], 1e-9) << i;
    }
}

TEST(QasmTest, ExportContainsHeaderAndGates)
{
    std::string qasm = toQasm(bellCircuit());
    EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
    EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
    EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
    EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
}

TEST(QasmTest, RoundTripBell)
{
    expectRoundTrip(bellCircuit());
}

TEST(QasmTest, RoundTripAllGateKinds)
{
    Circuit c(3);
    c.i(0).x(0).y(1).z(2).h(0).s(1).sdg(2).t(0).tdg(1);
    c.rx(0, 0.3).ry(1, -1.2).rz(2, 2.5).phase(0, 0.7);
    c.cnot(0, 1).cz(1, 2).swap(0, 2).crz(0, 1, 0.4).cphase(1, 2, -0.9);
    c.zz(0, 2, 1.1).ccx(0, 1, 2).ccz(0, 1, 2).cswap(0, 1, 2);
    expectRoundTrip(c);
}

TEST(QasmTest, RoundTripNoiseChannels)
{
    Circuit c(2);
    c.h(0);
    c.append(NoiseChannel::bitFlip(0, 0.12));
    c.cnot(0, 1);
    c.append(NoiseChannel::depolarizing(1, 0.06));
    c.append(NoiseChannel::asymmetricDepolarizing(0, 0.01, 0.02, 0.03));
    c.append(NoiseChannel::amplitudeDamping(1, 0.3));
    c.append(NoiseChannel::phaseDamping(0, 0.25));
    c.append(NoiseChannel::generalizedAmplitudeDamping(1, 0.2, 0.6));
    c.append(NoiseChannel::phaseFlip(0, 0.18));
    expectRoundTrip(c);

    Circuit back = parseQasm(toQasm(c));
    EXPECT_EQ(back.noiseCount(), c.noiseCount());
}

TEST(QasmTest, RoundTripRandomCircuits)
{
    for (int seed = 0; seed < 5; ++seed) {
        Rng rng(7100 + seed);
        expectRoundTrip(testing::randomCircuit(3, 12, rng));
    }
}

TEST(QasmTest, ParsesAngleExpressions)
{
    Circuit c = parseQasm(R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[1];
        rz(pi/2) q[0];
        rx(-3*pi/4) q[0];
        ry(0.25e1) q[0];
        u1(2*(pi - 1)) q[0];
    )");
    const Gate& rz = std::get<Gate>(c.operations()[0]);
    EXPECT_NEAR(rz.param(), M_PI / 2, 1e-12);
    const Gate& rx = std::get<Gate>(c.operations()[1]);
    EXPECT_NEAR(rx.param(), -3 * M_PI / 4, 1e-12);
    const Gate& ry = std::get<Gate>(c.operations()[2]);
    EXPECT_NEAR(ry.param(), 2.5, 1e-12);
    const Gate& u1 = std::get<Gate>(c.operations()[3]);
    EXPECT_NEAR(u1.param(), 2 * (M_PI - 1), 1e-12);
}

TEST(QasmTest, IgnoresMeasureBarrierCreg)
{
    Circuit c = parseQasm(R"(
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[2];
        creg c[2];
        h q[0];
        barrier q[0],q[1];
        cx q[0],q[1];
        measure q[0] -> c[0];
        measure q[1] -> c[1];
    )");
    EXPECT_EQ(c.gateCount(), 2u);
}

TEST(QasmTest, RejectsUnsupportedConstructs)
{
    EXPECT_THROW(parseQasm("OPENQASM 2.0;\nh q[0];"), std::invalid_argument);
    EXPECT_THROW(parseQasm("qreg q[2];\nfrobnicate q[0];"),
                 std::invalid_argument);
    EXPECT_THROW(parseQasm("qreg q[2];\nqreg r[2];"), std::invalid_argument);
    EXPECT_THROW(parseQasm("qreg q[2];\nh q;"), std::invalid_argument);

    Circuit custom(1);
    custom.append(Gate::custom({0}, Matrix{{0.0, 1.0}, {1.0, 0.0}}, "myX"));
    EXPECT_THROW(toQasm(custom), std::invalid_argument);
}

TEST(QasmTest, CczBecomesHadamardConjugatedToffoli)
{
    Circuit c(3);
    c.h(0).h(1).h(2).ccz(0, 1, 2);
    std::string qasm = toQasm(c);
    EXPECT_EQ(qasm.find("ccz"), std::string::npos);
    EXPECT_NE(qasm.find("ccx"), std::string::npos);
    expectRoundTrip(c);
}

TEST(QasmTest, ParsedCircuitRunsOnKcPipeline)
{
    // QASM in, knowledge compilation out.
    Circuit c = parseQasm(toQasm(ghzCircuit(3)));
    StateVectorSimulator sv;
    auto exact = sv.simulate(c).probabilities();
    EXPECT_NEAR(exact[0], 0.5, 1e-12);
    EXPECT_NEAR(exact[7], 0.5, 1e-12);
}

} // namespace
} // namespace qkc
