#include <gtest/gtest.h>

#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "bayesnet/variable_elimination.h"
#include "circuit/qasm.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "util/stats.h"

namespace qkc {
namespace {

TEST(TwoQubitNoiseTest, KrausCompleteness)
{
    auto ch = NoiseChannel::twoQubitDepolarizing(0, 1, 0.1);
    ASSERT_EQ(ch.krausOperators().size(), 16u);
    Matrix acc = Matrix::zero(4, 4);
    for (const Matrix& e : ch.krausOperators())
        acc = acc + e.adjoint() * e;
    EXPECT_TRUE(acc.approxEqual(Matrix::identity(4), 1e-9));
    EXPECT_TRUE(ch.isMixture());
    EXPECT_EQ(ch.arity(), 2u);
}

TEST(TwoQubitNoiseTest, RejectsBadArgs)
{
    EXPECT_THROW(NoiseChannel::twoQubitDepolarizing(0, 0, 0.1),
                 std::invalid_argument);
    EXPECT_THROW(NoiseChannel::twoQubitDepolarizing(0, 1, 1.5),
                 std::invalid_argument);
}

TEST(TwoQubitNoiseTest, FullStrengthIsMaximallyMixing)
{
    // p = 15/16 makes all 16 Paulis equally likely: rho -> I/4.
    Circuit c(2);
    c.h(0).cnot(0, 1);
    c.append(NoiseChannel::twoQubitDepolarizing(0, 1, 15.0 / 16.0));
    DensityMatrixSimulator dm;
    auto dist = dm.distribution(c);
    for (double p : dist)
        EXPECT_NEAR(p, 0.25, 1e-9);
}

TEST(TwoQubitNoiseTest, DensityMatrixMatchesTrajectoriesAndEnumeration)
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    c.append(NoiseChannel::twoQubitDepolarizing(0, 1, 0.3));
    c.ry(1, 0.7);

    DensityMatrixSimulator dm;
    StateVectorSimulator sv;
    auto exact = dm.distribution(c);
    auto enumerated = sv.noisyDistributionExhaustive(c);
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(exact[x], enumerated[x], 1e-9) << x;

    Rng rng(5);
    auto samples = sv.sampleNoisy(c, 20000, rng);
    auto emp = empiricalDistribution(samples, exact.size());
    EXPECT_LT(totalVariation(exact, emp), 0.03);
}

TEST(TwoQubitNoiseTest, KnowledgeCompilationMatchesDensityMatrix)
{
    Circuit c(3);
    c.h(0).cnot(0, 1);
    c.append(NoiseChannel::twoQubitDepolarizing(0, 1, 0.1));
    c.cnot(1, 2);
    c.append(NoiseChannel::twoQubitDepolarizing(1, 2, 0.05));

    KcSimulator kc(c);
    // The noise RVs have 16 values each.
    for (BnVarId v : kc.bayesNet().noiseVars())
        EXPECT_EQ(kc.bayesNet().variable(v).cardinality, 16u);

    DensityMatrixSimulator dm;
    auto exact = dm.distribution(c);
    auto kcDist = kc.outcomeDistribution();
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(kcDist[x], exact[x], 1e-9) << x;
}

TEST(TwoQubitNoiseTest, VariableEliminationAgrees)
{
    Circuit c(2);
    c.h(0);
    c.append(NoiseChannel::twoQubitDepolarizing(0, 1, 0.2));
    c.cnot(0, 1);

    KcSimulator kc(c);
    VariableElimination ve(kc.bayesNet());
    DensityMatrixSimulator dm;
    auto exact = dm.distribution(c);
    auto veDist = ve.outcomeDistribution();
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(veDist[x], exact[x], 1e-9) << x;
}

TEST(TwoQubitNoiseTest, GibbsSamplerHandles16ValuedNoiseRv)
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    c.append(NoiseChannel::twoQubitDepolarizing(0, 1, 0.2));

    KcSimulator kc(c);
    DensityMatrixSimulator dm;
    auto exact = dm.distribution(c);

    Rng rng(9);
    GibbsOptions options;
    options.burnIn = 200;
    auto samples = kc.sample(6000, rng, options);
    auto emp = empiricalDistribution(samples, exact.size());
    EXPECT_LT(totalVariation(exact, emp), 0.06);
}

TEST(TwoQubitNoiseTest, QasmRoundTrip)
{
    Circuit c(2);
    c.h(0);
    c.append(NoiseChannel::twoQubitDepolarizing(0, 1, 0.12));
    c.cnot(0, 1);

    Circuit back = parseQasm(toQasm(c));
    ASSERT_EQ(back.noiseCount(), 1u);
    DensityMatrixSimulator dm;
    auto a = dm.distribution(c);
    auto b = dm.distribution(back);
    for (std::size_t x = 0; x < a.size(); ++x)
        EXPECT_NEAR(a[x], b[x], 1e-9) << x;
}

TEST(TwoQubitNoiseTest, CorrelatedDiffersFromIndependent)
{
    // Correlated two-qubit depolarizing is NOT two independent one-qubit
    // depolarizings: compare output distributions on an entangled state.
    Circuit correlated(2), independent(2);
    correlated.h(0).cnot(0, 1);
    correlated.append(NoiseChannel::twoQubitDepolarizing(0, 1, 0.4));
    independent.h(0).cnot(0, 1);
    independent.append(NoiseChannel::depolarizing(0, 0.4));
    independent.append(NoiseChannel::depolarizing(1, 0.4));

    DensityMatrixSimulator dm;
    auto rhoA = dm.simulate(correlated);
    auto rhoB = dm.simulate(independent);
    EXPECT_FALSE(rhoA.toMatrix().approxEqual(rhoB.toMatrix(), 1e-6));
}

} // namespace
} // namespace qkc
