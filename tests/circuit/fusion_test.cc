#include "circuit/fusion.h"

#include <gtest/gtest.h>

#include "circuit/noise.h"
#include "statevector/statevector_simulator.h"
#include "util/rng.h"

namespace qkc {
namespace {

/** Simulates with fusion disabled — the unfused reference. */
StateVector
simulateRaw(const Circuit& c)
{
    ExecPolicy policy;
    policy.fuseGates = false;
    return StateVectorSimulator(policy).simulate(c);
}

void
expectSameState(const Circuit& a, const Circuit& b, double tol = 1e-10)
{
    const StateVector sa = simulateRaw(a);
    const StateVector sb = simulateRaw(b);
    ASSERT_EQ(sa.dimension(), sb.dimension());
    for (std::uint64_t i = 0; i < sa.dimension(); ++i)
        ASSERT_TRUE(approxEqual(sa.amplitude(i), sb.amplitude(i), tol))
            << "index " << i;
}

TEST(FusionTest, MergesAdjacent1qGatesOnOneWire)
{
    Circuit c(2);
    c.h(0).t(0).s(0).h(1);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    EXPECT_EQ(fused.gateCount(), 2u); // one fused gate per wire
    EXPECT_EQ(stats.merged1q, 2u);
    expectSameState(c, fused);
}

TEST(FusionTest, DropsIdentityProducts)
{
    Circuit c(1);
    c.h(0).h(0);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    EXPECT_EQ(fused.gateCount(), 0u);
    EXPECT_EQ(stats.droppedIdentity, 1u);

    Circuit c2(1);
    c2.rz(0, 0.8).rz(0, -0.8);
    EXPECT_EQ(fuseGates(c2).gateCount(), 0u);
}

TEST(FusionTest, FoldsPending1qIntoFollowing2qGate)
{
    Circuit c(2);
    c.h(0).t(1).cnot(0, 1);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    EXPECT_EQ(fused.gateCount(), 1u);
    EXPECT_EQ(stats.foldedInto2q, 2u);
    expectSameState(c, fused);
}

TEST(FusionTest, ChainsAdjacent2qGatesOnSamePair)
{
    // zz;cnot on the same ordered pair — one 4x4 kernel, pendings folded
    // into their stages.
    Circuit c(2);
    c.h(0).zz(0, 1, 0.7).t(1).cnot(0, 1);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    EXPECT_EQ(fused.gateCount(), 1u);
    EXPECT_EQ(stats.merged2q, 1u);
    EXPECT_EQ(stats.foldedInto2q, 2u);
    expectSameState(c, fused);
}

TEST(FusionTest, ChainDropsIdentityProduct)
{
    // Two identical CNOTs cancel; the whole chain is dropped.
    Circuit c(2);
    c.cnot(0, 1).cnot(0, 1);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    EXPECT_EQ(fused.gateCount(), 0u);
    EXPECT_EQ(stats.merged2q, 1u);
    EXPECT_EQ(stats.droppedIdentity, 1u);
}

TEST(FusionTest, ChainBrokenByIntermediateOpOnEitherWire)
{
    // A Toffoli touching wire 1 closes the chain: the CNOTs must not merge
    // across it.
    Circuit c(3);
    c.cnot(0, 1).ccx(0, 1, 2).cnot(0, 1);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    EXPECT_EQ(fused.gateCount(), 3u);
    EXPECT_EQ(stats.merged2q, 0u);
    expectSameState(c, fused);

    // A reversed-order pair also breaks the chain (different local basis).
    Circuit d(2);
    d.cnot(0, 1).cnot(1, 0);
    FusionStats dstats;
    Circuit dfused = fuseGates(d, {}, &dstats);
    EXPECT_EQ(dfused.gateCount(), 2u);
    EXPECT_EQ(dstats.merged2q, 0u);
    expectSameState(d, dfused);
}

TEST(FusionTest, ChainSpansDisjointInterleavedOps)
{
    // Ops on other wires between two same-pair gates do not break the
    // chain; the fused kernel commutes past them exactly.
    Circuit c(4);
    c.zz(0, 1, 0.4).h(2).cnot(2, 3).t(3).cnot(0, 1);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    EXPECT_EQ(stats.merged2q, 1u);
    expectSameState(c, fused);
}

TEST(FusionTest, ChainRecipeReplaysNewParameters)
{
    // An entangler-ladder chain planned once must replay on new angles.
    Circuit a(2);
    a.zz(0, 1, 0.3).rx(0, 0.5).zz(0, 1, 0.9);
    Circuit b(2);
    b.zz(0, 1, 1.4).rx(0, -0.6).zz(0, 1, 0.1);
    const FusionRecipe recipe = planFusion(a);
    EXPECT_EQ(recipe.stats.merged2q, 1u);
    auto viaRecipe = materializeFusion(recipe, b);
    ASSERT_TRUE(viaRecipe.has_value());
    expectSameState(b, *viaRecipe);

    // Replaying onto parameters whose chain product is the identity must
    // refuse (drop boundary crossed), same as the 1q case.
    Circuit ident(2);
    ident.zz(0, 1, 0.8).rx(0, 0.0).zz(0, 1, -0.8);
    EXPECT_FALSE(materializeFusion(recipe, ident).has_value());
}

TEST(FusionTest, ChainFusionCanBeDisabled)
{
    Circuit c(2);
    c.cnot(0, 1).cnot(0, 1);
    FusionOptions options;
    options.fuseTwoQubitPairs = false;
    FusionStats stats;
    Circuit fused = fuseGates(c, options, &stats);
    EXPECT_EQ(fused.gateCount(), 2u);
    EXPECT_EQ(stats.merged2q, 0u);
    expectSameState(c, fused);
}

TEST(FusionTest, FoldingCanBeDisabled)
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    FusionOptions options;
    options.foldIntoTwoQubit = false;
    Circuit fused = fuseGates(c, options);
    EXPECT_EQ(fused.gateCount(), 2u);
    expectSameState(c, fused);
}

TEST(FusionTest, NoiseChannelsAreBarriers)
{
    Circuit c(1);
    c.h(0);
    c.append(NoiseChannel::depolarizing(0, 0.1));
    c.h(0);
    Circuit fused = fuseGates(c);
    // The two H's must NOT merge across the channel.
    EXPECT_EQ(fused.gateCount(), 2u);
    EXPECT_EQ(fused.noiseCount(), 1u);
}

TEST(FusionTest, NoisyDistributionsUnchangedByFusion)
{
    Circuit c(2);
    c.h(0).t(0);
    c.append(NoiseChannel::amplitudeDamping(0, 0.3));
    c.s(0).h(1).cnot(0, 1).h(0);
    c.append(NoiseChannel::depolarizing(1, 0.1));
    c.t(1);

    ExecPolicy unfusedPolicy;
    unfusedPolicy.fuseGates = false;
    ExecPolicy fusedPolicy;
    fusedPolicy.fuseGates = true;
    const auto exactUnfused =
        StateVectorSimulator(unfusedPolicy).noisyDistributionExhaustive(c);
    const auto exactFused =
        StateVectorSimulator(fusedPolicy).noisyDistributionExhaustive(c);
    ASSERT_EQ(exactUnfused.size(), exactFused.size());
    for (std::size_t i = 0; i < exactUnfused.size(); ++i)
        EXPECT_NEAR(exactUnfused[i], exactFused[i], 1e-10);
}

TEST(FusionTest, ThreeQubitGatesAreBarriers)
{
    Circuit c(3);
    c.h(0).t(1).ccx(0, 1, 2).s(0);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    // h and t flushed before the Toffoli; s pending flushed at the end.
    EXPECT_EQ(fused.gateCount(), 4u);
    expectSameState(c, fused);
}

TEST(FusionTest, RandomizedCircuitsFusedEqualsUnfused)
{
    Rng rng(31337);
    for (int trial = 0; trial < 8; ++trial) {
        const std::size_t n = 3 + rng.below(3);
        Circuit c(n);
        for (int g = 0; g < 30; ++g) {
            const std::size_t a = rng.below(n);
            const std::size_t b = (a + 1 + rng.below(n - 1)) % n;
            switch (rng.below(7)) {
              case 0: c.h(a); break;
              case 1: c.t(a); break;
              case 2: c.rx(a, rng.uniform(-3.0, 3.0)); break;
              case 3: c.rz(a, rng.uniform(-3.0, 3.0)); break;
              case 4: c.cnot(a, b); break;
              case 5: c.zz(a, b, rng.uniform(-3.0, 3.0)); break;
              default: c.cz(a, b); break;
            }
        }
        FusionStats stats;
        Circuit fused = fuseGates(c, {}, &stats);
        SCOPED_TRACE("trial " + std::to_string(trial));
        EXPECT_LE(fused.gateCount(), c.gateCount());
        expectSameState(c, fused);
    }
}

TEST(FusionTest, RecipeMaterializesNewParameters)
{
    // Plan once, replay on a same-structure circuit with different angles:
    // the result must equal fusing the new circuit from scratch.
    Circuit a(3);
    a.h(0).rz(0, 0.3).cnot(0, 1).rx(1, 0.7).rz(2, 1.1).zz(1, 2, 0.5).h(2);
    Circuit b(3);
    b.h(0).rz(0, 1.9).cnot(0, 1).rx(1, -0.2).rz(2, 0.4).zz(1, 2, 2.2).h(2);

    const FusionRecipe recipe = planFusion(a);
    auto viaRecipe = materializeFusion(recipe, b);
    ASSERT_TRUE(viaRecipe.has_value());
    const Circuit direct = fuseGates(b);
    ASSERT_EQ(viaRecipe->size(), direct.size());
    expectSameState(b, *viaRecipe);
}

TEST(FusionTest, RecipeDetectsIdentityBoundaryCrossing)
{
    // H;H fuses to the identity and is dropped at plan time. Replaying the
    // recipe on H;T (same structure, different values) crosses the drop
    // boundary and must refuse rather than silently drop the product.
    Circuit a(1);
    a.h(0).h(0);
    Circuit b(1);
    b.h(0).t(0);

    const FusionRecipe recipe = planFusion(a);
    EXPECT_EQ(recipe.stats.droppedIdentity, 1u);
    EXPECT_FALSE(materializeFusion(recipe, b).has_value());

    // And the reverse: a kept product that becomes the identity.
    const FusionRecipe keepRecipe = planFusion(b);
    EXPECT_FALSE(materializeFusion(keepRecipe, a).has_value());
}

TEST(FusionTest, RecipeRefusesTrailingOps)
{
    // The recipe must cover the whole circuit: replaying it on a circuit
    // with extra trailing ops must refuse, not silently drop them.
    Circuit a(2);
    a.h(0).cnot(0, 1);
    Circuit b = a;
    b.x(1);
    const FusionRecipe recipe = planFusion(a);
    EXPECT_FALSE(materializeFusion(recipe, b).has_value());

    FusionCache cache;
    cache.build(a);
    EXPECT_FALSE(cache.rebind(b)); // refused, rebuilt from b internally
    expectSameState(b, cache.fused());
}

TEST(FusionTest, RecipeRefusesWireMismatch)
{
    // Same op kinds and arities but different operand wires: replaying the
    // recipe must refuse, not emit a fused gate on the recorded wires.
    Circuit a(2);
    a.rz(0, 0.3).rz(0, 0.4).cnot(0, 1);
    Circuit b(2);
    b.rz(1, 0.3).rz(1, 0.4).cnot(0, 1);
    EXPECT_FALSE(materializeFusion(planFusion(a), b).has_value());

    FusionCache cache;
    cache.build(a);
    EXPECT_FALSE(cache.rebind(b)); // refused, then rebuilt internally
    EXPECT_EQ(cache.fused().gateCount(), fuseGates(b).gateCount());
    expectSameState(b, cache.fused());
}

TEST(FusionTest, SimulatorFusionPolicyMatchesExplicitFusion)
{
    Circuit c(3);
    c.h(0).t(0).h(1).cnot(0, 1).rz(2, 0.4).h(2).cz(1, 2).s(1);
    ExecPolicy fusedPolicy; // fuseGates defaults to true
    const StateVector viaPolicy = StateVectorSimulator(fusedPolicy).simulate(c);
    const StateVector raw = simulateRaw(c);
    for (std::uint64_t i = 0; i < raw.dimension(); ++i)
        ASSERT_TRUE(approxEqual(viaPolicy.amplitude(i), raw.amplitude(i),
                                1e-10));
}

} // namespace
} // namespace qkc
