#include "circuit/fusion.h"

#include <gtest/gtest.h>

#include "circuit/noise.h"
#include "statevector/statevector_simulator.h"
#include "util/rng.h"

namespace qkc {
namespace {

/** Simulates with fusion disabled — the unfused reference. */
StateVector
simulateRaw(const Circuit& c)
{
    ExecPolicy policy;
    policy.fuseGates = false;
    return StateVectorSimulator(policy).simulate(c);
}

void
expectSameState(const Circuit& a, const Circuit& b, double tol = 1e-10)
{
    const StateVector sa = simulateRaw(a);
    const StateVector sb = simulateRaw(b);
    ASSERT_EQ(sa.dimension(), sb.dimension());
    for (std::uint64_t i = 0; i < sa.dimension(); ++i)
        ASSERT_TRUE(approxEqual(sa.amplitude(i), sb.amplitude(i), tol))
            << "index " << i;
}

TEST(FusionTest, MergesAdjacent1qGatesOnOneWire)
{
    Circuit c(2);
    c.h(0).t(0).s(0).h(1);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    EXPECT_EQ(fused.gateCount(), 2u); // one fused gate per wire
    EXPECT_EQ(stats.merged1q, 2u);
    expectSameState(c, fused);
}

TEST(FusionTest, DropsIdentityProducts)
{
    Circuit c(1);
    c.h(0).h(0);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    EXPECT_EQ(fused.gateCount(), 0u);
    EXPECT_EQ(stats.droppedIdentity, 1u);

    Circuit c2(1);
    c2.rz(0, 0.8).rz(0, -0.8);
    EXPECT_EQ(fuseGates(c2).gateCount(), 0u);
}

TEST(FusionTest, FoldsPending1qIntoFollowing2qGate)
{
    Circuit c(2);
    c.h(0).t(1).cnot(0, 1);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    EXPECT_EQ(fused.gateCount(), 1u);
    EXPECT_EQ(stats.foldedInto2q, 2u);
    expectSameState(c, fused);
}

TEST(FusionTest, FoldingCanBeDisabled)
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    FusionOptions options;
    options.foldIntoTwoQubit = false;
    Circuit fused = fuseGates(c, options);
    EXPECT_EQ(fused.gateCount(), 2u);
    expectSameState(c, fused);
}

TEST(FusionTest, NoiseChannelsAreBarriers)
{
    Circuit c(1);
    c.h(0);
    c.append(NoiseChannel::depolarizing(0, 0.1));
    c.h(0);
    Circuit fused = fuseGates(c);
    // The two H's must NOT merge across the channel.
    EXPECT_EQ(fused.gateCount(), 2u);
    EXPECT_EQ(fused.noiseCount(), 1u);
}

TEST(FusionTest, NoisyDistributionsUnchangedByFusion)
{
    Circuit c(2);
    c.h(0).t(0);
    c.append(NoiseChannel::amplitudeDamping(0, 0.3));
    c.s(0).h(1).cnot(0, 1).h(0);
    c.append(NoiseChannel::depolarizing(1, 0.1));
    c.t(1);

    ExecPolicy unfusedPolicy;
    unfusedPolicy.fuseGates = false;
    ExecPolicy fusedPolicy;
    fusedPolicy.fuseGates = true;
    const auto exactUnfused =
        StateVectorSimulator(unfusedPolicy).noisyDistributionExhaustive(c);
    const auto exactFused =
        StateVectorSimulator(fusedPolicy).noisyDistributionExhaustive(c);
    ASSERT_EQ(exactUnfused.size(), exactFused.size());
    for (std::size_t i = 0; i < exactUnfused.size(); ++i)
        EXPECT_NEAR(exactUnfused[i], exactFused[i], 1e-10);
}

TEST(FusionTest, ThreeQubitGatesAreBarriers)
{
    Circuit c(3);
    c.h(0).t(1).ccx(0, 1, 2).s(0);
    FusionStats stats;
    Circuit fused = fuseGates(c, {}, &stats);
    // h and t flushed before the Toffoli; s pending flushed at the end.
    EXPECT_EQ(fused.gateCount(), 4u);
    expectSameState(c, fused);
}

TEST(FusionTest, RandomizedCircuitsFusedEqualsUnfused)
{
    Rng rng(31337);
    for (int trial = 0; trial < 8; ++trial) {
        const std::size_t n = 3 + rng.below(3);
        Circuit c(n);
        for (int g = 0; g < 30; ++g) {
            const std::size_t a = rng.below(n);
            const std::size_t b = (a + 1 + rng.below(n - 1)) % n;
            switch (rng.below(7)) {
              case 0: c.h(a); break;
              case 1: c.t(a); break;
              case 2: c.rx(a, rng.uniform(-3.0, 3.0)); break;
              case 3: c.rz(a, rng.uniform(-3.0, 3.0)); break;
              case 4: c.cnot(a, b); break;
              case 5: c.zz(a, b, rng.uniform(-3.0, 3.0)); break;
              default: c.cz(a, b); break;
            }
        }
        FusionStats stats;
        Circuit fused = fuseGates(c, {}, &stats);
        SCOPED_TRACE("trial " + std::to_string(trial));
        EXPECT_LE(fused.gateCount(), c.gateCount());
        expectSameState(c, fused);
    }
}

TEST(FusionTest, SimulatorFusionPolicyMatchesExplicitFusion)
{
    Circuit c(3);
    c.h(0).t(0).h(1).cnot(0, 1).rz(2, 0.4).h(2).cz(1, 2).s(1);
    ExecPolicy fusedPolicy; // fuseGates defaults to true
    const StateVector viaPolicy = StateVectorSimulator(fusedPolicy).simulate(c);
    const StateVector raw = simulateRaw(c);
    for (std::uint64_t i = 0; i < raw.dimension(); ++i)
        ASSERT_TRUE(approxEqual(viaPolicy.amplitude(i), raw.amplitude(i),
                                1e-10));
}

} // namespace
} // namespace qkc
