#include "circuit/device_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "densitymatrix/densitymatrix_simulator.h"

namespace qkc {
namespace {

TEST(DeviceModelTest, InsertsChannelsAfterGates)
{
    DeviceModel model;
    Circuit noisy = model.apply(bellCircuit());
    EXPECT_EQ(noisy.gateCount(), 2u);
    // H: amp damp + phase damp + depolarizing = 3 channels;
    // CNOT: (amp+phase) x 2 qubits + 1 correlated depolarizing = 5.
    EXPECT_EQ(noisy.noiseCount(), 8u);
}

TEST(DeviceModelTest, PerQubitCalibration)
{
    DeviceModel model;
    model.t1 = {10e3, 1e9};  // qubit 0 decays fast, qubit 1 essentially not
    model.t2 = {15e3, 1e9};
    model.singleQubitDepolarizing = 0.0;
    model.twoQubitDepolarizing = 0.0;

    Circuit c(2);
    c.x(0).x(1);
    Circuit noisy = model.apply(c);

    DensityMatrixSimulator dm;
    auto dist = dm.distribution(noisy);
    // Qubit 0 relaxes more than qubit 1: P(0 on q0) > P(0 on q1).
    double p0q0 = dist[0b00] + dist[0b01];
    double p0q1 = dist[0b00] + dist[0b10];
    EXPECT_GT(p0q0, p0q1 + 1e-6);
}

TEST(DeviceModelTest, LongerGatesDecayMore)
{
    DeviceModel model;
    model.singleQubitDepolarizing = 0.0;
    model.twoQubitDepolarizing = 0.0;

    // One X gate vs an X implemented "slowly" via many identity paddings.
    Circuit fast(1);
    fast.x(0);
    Circuit slow(1);
    slow.x(0);
    for (int i = 0; i < 9; ++i)
        slow.i(0);

    DensityMatrixSimulator dm;
    double pFast = dm.distribution(model.apply(fast))[1];
    double pSlow = dm.distribution(model.apply(slow))[1];
    EXPECT_GT(pFast, pSlow + 1e-6);
}

TEST(DeviceModelTest, RejectsUnphysicalT2)
{
    DeviceModel model;
    model.defaultT1 = 10e3;
    model.defaultT2 = 30e3;  // > 2 T1
    Circuit c(1);
    c.x(0);
    EXPECT_THROW(model.apply(c), std::invalid_argument);
}

TEST(DeviceModelTest, T2EqualTwoT1HasNoExtraDephasing)
{
    DeviceModel model;
    model.defaultT1 = 10e3;
    model.defaultT2 = 20e3;  // exactly 2 T1: no pure dephasing
    model.singleQubitDepolarizing = 0.0;
    Circuit c(1);
    c.h(0);
    Circuit noisy = model.apply(c);
    // Only the amplitude damping channel is inserted.
    EXPECT_EQ(noisy.noiseCount(), 1u);
    const auto& ch = std::get<NoiseChannel>(noisy.operations()[1]);
    EXPECT_EQ(ch.kind(), NoiseKind::AmplitudeDamping);
}

TEST(DeviceModelTest, KcSimulatesDeviceNoisyCircuit)
{
    DeviceModel model;
    model.defaultT1 = 5e3;  // exaggerate decay so the effect is visible
    model.defaultT2 = 7e3;
    Circuit noisy = model.apply(bellCircuit());

    KcSimulator kc(noisy);
    DensityMatrixSimulator dm;
    auto exact = dm.distribution(noisy);
    auto kcDist = kc.outcomeDistribution();
    for (std::size_t x = 0; x < exact.size(); ++x)
        EXPECT_NEAR(kcDist[x], exact[x], 1e-9) << x;
    // Decay skews |11> below the ideal 1/2 and pushes weight to |10>/|01>.
    EXPECT_LT(exact[0b11], 0.5);
    EXPECT_GT(exact[0b00] + exact[0b01] + exact[0b10], 0.5);
}

} // namespace
} // namespace qkc
