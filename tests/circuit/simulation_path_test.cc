/**
 * SimulationPath lowering (ISSUE 10): planner parsing, the tree invariants
 * every executor relies on (children precede parents, channels are spine
 * barriers, circuit order preserved), and the per-planner tree shapes.
 */
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "circuit/noise.h"
#include "circuit/simulation_path.h"

namespace qkc {
namespace {

using Kind = SimulationPath::Node::Kind;

/** Children precede their parent; Op leaves have no children; one State. */
void
checkInvariants(const SimulationPath& path, const Circuit& circuit)
{
    ASSERT_FALSE(path.empty());
    ASSERT_GE(path.root, 0);
    ASSERT_LT(static_cast<std::size_t>(path.root), path.nodes.size());
    std::size_t states = 0;
    std::size_t mm = 0;
    for (std::size_t i = 0; i < path.nodes.size(); ++i) {
        const auto& n = path.nodes[i];
        if (n.kind == Kind::State) {
            states++;
            EXPECT_EQ(i, 0u);
        }
        if (n.kind == Kind::Op) {
            EXPECT_LT(n.opIndex, circuit.size());
        }
        if (n.kind == Kind::MM || n.kind == Kind::MV) {
            if (n.kind == Kind::MM)
                mm++;
            ASSERT_GE(n.left, 0);
            ASSERT_GE(n.right, 0);
            EXPECT_LT(n.left, static_cast<std::ptrdiff_t>(i));
            EXPECT_LT(n.right, static_cast<std::ptrdiff_t>(i));
        }
    }
    EXPECT_EQ(states, 1u);
    EXPECT_EQ(mm, path.mmNodes);
}

/** In-order op indices of an operator subtree (earlier-applied first). */
void
collectOps(const SimulationPath& path, std::ptrdiff_t node,
           std::vector<std::size_t>& out)
{
    const auto& n = path.nodes[static_cast<std::size_t>(node)];
    if (n.kind == Kind::Op) {
        out.push_back(n.opIndex);
        return;
    }
    ASSERT_EQ(n.kind, Kind::MM);
    collectOps(path, n.left, out); // left = applied earlier
    collectOps(path, n.right, out);
}

/** Walking the spine MV by MV yields the ops in circuit order. */
std::vector<std::size_t>
spineOrder(const SimulationPath& path)
{
    std::vector<std::size_t> order;
    std::function<void(std::ptrdiff_t)> walk = [&](std::ptrdiff_t node) {
        const auto& n = path.nodes[static_cast<std::size_t>(node)];
        if (n.kind == Kind::State)
            return;
        walk(n.left);
        collectOps(path, n.right, order);
    };
    walk(path.root);
    return order;
}

Circuit
chain4()
{
    Circuit c(2);
    c.h(0).cnot(0, 1).rz(1, 0.3).x(0);
    return c;
}

TEST(PathParseTest, AcceptsTheDocumentedForms)
{
    PathOptions o;
    EXPECT_TRUE(parsePathPlanner("auto", &o));
    EXPECT_EQ(o.planner, PathPlanner::Auto);
    EXPECT_TRUE(parsePathPlanner("linear", &o));
    EXPECT_EQ(o.planner, PathPlanner::Linear);
    EXPECT_TRUE(parsePathPlanner("pairwise", &o));
    EXPECT_EQ(o.planner, PathPlanner::Pairwise);
    EXPECT_TRUE(parsePathPlanner("bracket", &o));
    EXPECT_EQ(o.planner, PathPlanner::Bracket);
    EXPECT_EQ(o.bracket, 4u);
    EXPECT_TRUE(parsePathPlanner("bracket2", &o));
    EXPECT_EQ(o.bracket, 2u);
    EXPECT_TRUE(parsePathPlanner("bracket16", &o));
    EXPECT_EQ(o.bracket, 16u);
}

TEST(PathParseTest, RejectsEverythingElse)
{
    PathOptions o;
    o.planner = PathPlanner::Linear;
    EXPECT_FALSE(parsePathPlanner("", &o));
    EXPECT_FALSE(parsePathPlanner("Pairwise", &o));
    EXPECT_FALSE(parsePathPlanner("bracket1", &o));
    EXPECT_FALSE(parsePathPlanner("bracket0", &o));
    EXPECT_FALSE(parsePathPlanner("bracketx", &o));
    EXPECT_FALSE(parsePathPlanner("bracket-2", &o));
    EXPECT_FALSE(parsePathPlanner("1", &o));
    // A failed parse must not have written the output.
    EXPECT_EQ(o.planner, PathPlanner::Linear);
}

TEST(PathParseTest, LabelsRoundTrip)
{
    PathOptions o;
    ASSERT_TRUE(parsePathPlanner("bracket8", &o));
    EXPECT_EQ(pathOptionLabel(o), "bracket8");
    ASSERT_TRUE(parsePathPlanner("pairwise", &o));
    EXPECT_EQ(pathOptionLabel(o), "pairwise");
    EXPECT_STREQ(pathPlannerName(PathPlanner::Pairwise), "pairwise");
    EXPECT_STREQ(pathPlannerName(PathPlanner::Linear), "linear");
}

TEST(PathPlanTest, LinearDegeneratesToAChain)
{
    const Circuit c = chain4();
    PathOptions o;
    o.planner = PathPlanner::Linear;
    const SimulationPath path = planSimulationPath(c, o);
    checkInvariants(path, c);
    // 1 state + 4 op leaves + 4 MV nodes, zero MM nodes.
    EXPECT_EQ(path.nodes.size(), 9u);
    EXPECT_EQ(path.mmNodes, 0u);
    EXPECT_EQ(path.planner, PathPlanner::Linear);
    EXPECT_EQ(spineOrder(path), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(PathPlanTest, AutoResolvesToLinear)
{
    const SimulationPath path = planSimulationPath(chain4(), PathOptions{});
    EXPECT_EQ(path.planner, PathPlanner::Linear);
    EXPECT_EQ(path.mmNodes, 0u);
}

TEST(PathPlanTest, PairwiseHalvesTheSegment)
{
    const Circuit c = chain4();
    PathOptions o;
    o.planner = PathPlanner::Pairwise;
    const SimulationPath path = planSimulationPath(c, o);
    checkInvariants(path, c);
    // 4 gates fold into one operator: 3 MM nodes, a single spine apply.
    EXPECT_EQ(path.mmNodes, 3u);
    std::size_t mv = 0;
    for (const auto& n : path.nodes)
        if (n.kind == Kind::MV)
            mv++;
    EXPECT_EQ(mv, 1u);
    EXPECT_EQ(spineOrder(path), (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(PathPlanTest, BracketFoldsFixedWindows)
{
    Circuit c(2);
    c.h(0).cnot(0, 1).rz(1, 0.3).x(0).h(1); // 5 gates
    PathOptions o;
    ASSERT_TRUE(parsePathPlanner("bracket2", &o));
    const SimulationPath path = planSimulationPath(c, o);
    checkInvariants(path, c);
    // Windows [0,1] [2,3] [4]: two MM folds, three spine applies.
    EXPECT_EQ(path.mmNodes, 2u);
    std::size_t mv = 0;
    for (const auto& n : path.nodes)
        if (n.kind == Kind::MV)
            mv++;
    EXPECT_EQ(mv, 3u);
    EXPECT_EQ(spineOrder(path), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(PathPlanTest, ChannelsAreSpineBarriers)
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    c.append(NoiseChannel::depolarizing(0, 0.01));
    c.h(0).cnot(0, 1);
    PathOptions o;
    o.planner = PathPlanner::Pairwise;
    const SimulationPath path = planSimulationPath(c, o);
    checkInvariants(path, c);
    // Two 2-gate segments fold (one MM each); the channel is its own
    // spine apply, never under an MM node.
    EXPECT_EQ(path.mmNodes, 2u);
    for (const auto& n : path.nodes) {
        if (n.kind != Kind::MM)
            continue;
        std::vector<std::size_t> ops;
        collectOps(path, n.left, ops);
        collectOps(path, n.right, ops);
        for (std::size_t op : ops)
            EXPECT_TRUE(
                std::holds_alternative<Gate>(c.operations()[op]));
    }
    EXPECT_EQ(spineOrder(path), (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(PathPlanTest, EmptyCircuitIsJustTheState)
{
    Circuit c(3);
    PathOptions o;
    o.planner = PathPlanner::Pairwise;
    const SimulationPath path = planSimulationPath(c, o);
    ASSERT_EQ(path.nodes.size(), 1u);
    EXPECT_EQ(path.nodes[0].kind, Kind::State);
    EXPECT_EQ(path.root, 0);
    EXPECT_EQ(path.mmNodes, 0u);
}

} // namespace
} // namespace qkc
