#include "circuit/noise.h"

#include <gtest/gtest.h>

namespace qkc {
namespace {

/** Completeness: sum_k E_k^dagger E_k == I for every channel. */
void
expectComplete(const NoiseChannel& ch)
{
    Matrix acc = Matrix::zero(2, 2);
    for (const Matrix& e : ch.krausOperators())
        acc = acc + e.adjoint() * e;
    EXPECT_TRUE(acc.approxEqual(Matrix::identity(2), 1e-9)) << ch.name();
}

class NoiseCompletenessTest : public ::testing::TestWithParam<double> {};

TEST_P(NoiseCompletenessTest, AllChannelsComplete)
{
    double p = GetParam();
    expectComplete(NoiseChannel::bitFlip(0, p));
    expectComplete(NoiseChannel::phaseFlip(0, p));
    expectComplete(NoiseChannel::depolarizing(0, p));
    expectComplete(NoiseChannel::asymmetricDepolarizing(0, p / 3, p / 4, p / 5));
    expectComplete(NoiseChannel::amplitudeDamping(0, p));
    expectComplete(NoiseChannel::phaseDamping(0, p));
    expectComplete(NoiseChannel::generalizedAmplitudeDamping(0, p, 0.3));
}

INSTANTIATE_TEST_SUITE_P(Strengths, NoiseCompletenessTest,
                         ::testing::Values(0.0, 0.005, 0.05, 0.36, 0.5, 1.0));

TEST(NoiseTest, MixtureClassification)
{
    // Table 1: Pauli-type noises are mixtures; damping channels are not.
    EXPECT_TRUE(NoiseChannel::bitFlip(0, 0.1).isMixture());
    EXPECT_TRUE(NoiseChannel::phaseFlip(0, 0.1).isMixture());
    EXPECT_TRUE(NoiseChannel::depolarizing(0, 0.1).isMixture());
    EXPECT_TRUE(NoiseChannel::asymmetricDepolarizing(0, 0.1, 0.05, 0.02).isMixture());
    EXPECT_FALSE(NoiseChannel::amplitudeDamping(0, 0.36).isMixture());
    EXPECT_FALSE(NoiseChannel::phaseDamping(0, 0.36).isMixture());
    EXPECT_FALSE(
        NoiseChannel::generalizedAmplitudeDamping(0, 0.36, 0.3).isMixture());
}

TEST(NoiseTest, PhaseDampingKrausEntries)
{
    // Section 2.2.2's example: gamma = 0.36 gives sqrt(1-gamma) = 0.8.
    auto ch = NoiseChannel::phaseDamping(0, 0.36);
    const auto& kraus = ch.krausOperators();
    ASSERT_EQ(kraus.size(), 2u);
    EXPECT_TRUE(approxEqual(kraus[0](0, 0), Complex{1.0}));
    EXPECT_TRUE(approxEqual(kraus[0](1, 1), Complex{0.8}));
    EXPECT_TRUE(approxEqual(kraus[1](1, 1), Complex{0.6}));
    EXPECT_TRUE(approxEqual(kraus[1](0, 0), Complex{0.0}));
}

TEST(NoiseTest, AmplitudeDampingMapsOneToZero)
{
    auto ch = NoiseChannel::amplitudeDamping(0, 1.0);
    // With gamma = 1, E1 maps |1> -> |0> with certainty.
    const auto& kraus = ch.krausOperators();
    EXPECT_TRUE(approxEqual(kraus[1](0, 1), Complex{1.0}));
    EXPECT_TRUE(approxEqual(kraus[0](1, 1), Complex{0.0}));
}

TEST(NoiseTest, DepolarizingKrausCount)
{
    EXPECT_EQ(NoiseChannel::depolarizing(0, 0.1).krausOperators().size(), 4u);
    EXPECT_EQ(NoiseChannel::bitFlip(0, 0.1).krausOperators().size(), 2u);
    EXPECT_EQ(NoiseChannel::generalizedAmplitudeDamping(0, 0.1, 0.5)
                  .krausOperators()
                  .size(),
              4u);
}

TEST(NoiseTest, RejectsInvalidProbabilities)
{
    EXPECT_THROW(NoiseChannel::bitFlip(0, -0.1), std::invalid_argument);
    EXPECT_THROW(NoiseChannel::bitFlip(0, 1.1), std::invalid_argument);
    EXPECT_THROW(NoiseChannel::asymmetricDepolarizing(0, 0.5, 0.4, 0.3),
                 std::invalid_argument);
}

TEST(NoiseTest, QubitAndKindAccessors)
{
    auto ch = NoiseChannel::depolarizing(3, 0.05);
    EXPECT_EQ(ch.qubit(), 3u);
    EXPECT_EQ(ch.kind(), NoiseKind::Depolarizing);
    EXPECT_EQ(ch.name(), "Depol(0.05)");
}

} // namespace
} // namespace qkc
