#include "circuit/qasm.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace qkc {
namespace {

// The server feeds request bodies straight into parseQasm, so every
// malformed, truncated, oversized or numerically hostile input must come
// back as a QasmParseError — never a crash, an uncaught foreign exception,
// or an unbounded allocation.

/** Asserts the input is rejected with the structured error type. */
void
expectRejected(const std::string& text, const QasmLimits& limits = {})
{
    EXPECT_THROW(parseQasm(text, limits), QasmParseError) << text;
}

const char* kHeader = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

std::string
program(const std::string& body)
{
    return std::string(kHeader) + "qreg q[3];\n" + body;
}

TEST(QasmAdversarialTest, StructuredErrorIsAnInvalidArgument)
{
    // Pre-hardening callers caught std::invalid_argument; the refined type
    // must still land in those handlers.
    EXPECT_THROW(parseQasm(std::string("garbage")), std::invalid_argument);
}

TEST(QasmAdversarialTest, EmptyAndBinaryGarbage)
{
    expectRejected("");
    expectRejected("\n\n\n");
    expectRejected(std::string("\x00\xff\xfe\x01garbage\x7f", 15));
    expectRejected("qreg"); // truncated mid-declaration
}

TEST(QasmAdversarialTest, TruncatedStatements)
{
    expectRejected(program("rx( q[0];"));        // unterminated angle
    expectRejected(program("cx q[0],;"));        // missing operand
    expectRejected(program("cx q[0], q[;"));     // operand cut mid-index
    expectRejected(std::string(kHeader) + "qreg q[3;\nh q[0];");
    expectRejected(program("h ;"));
    expectRejected(program("h"));
}

TEST(QasmAdversarialTest, OutOfRangeNumbers)
{
    expectRejected(std::string(kHeader) +
                   "qreg q[99999999999999999999999];");
    expectRejected(program("h q[18446744073709551616];"));
    expectRejected(program("h q[-1];"));
    expectRejected(program("h q[1x];"));
    expectRejected(program("rx(1e999999) q[0];"));
    expectRejected(std::string(kHeader) + "qreg q[0];");
    expectRejected(std::string(kHeader) + "qreg q[64];\nh q[0];");
    expectRejected(program("h q[3];")); // index == register size
}

TEST(QasmAdversarialTest, NonFiniteAngles)
{
    expectRejected(program("rx(1/0) q[0];"));
    expectRejected(program("rx(1e308*1e308) q[0];"));
    expectRejected(program("rx(0/0) q[0];"));
}

TEST(QasmAdversarialTest, AngleRecursionIsBounded)
{
    // Paren and unary-minus chains recurse per nesting level; past the
    // depth cap they must error out instead of exhausting the stack.
    const std::string deepParens =
        program("rx(" + std::string(200000, '(') + "1" +
                std::string(200000, ')') + ") q[0];");
    expectRejected(deepParens);
    const std::string deepMinus =
        program("rx(" + std::string(200000, '-') + "1) q[0];");
    expectRejected(deepMinus);

    // At the default cap, reasonable nesting still parses.
    Circuit ok = parseQasm(program("rx(-(-(2*(pi/4)))) q[0];"));
    EXPECT_EQ(ok.gateCount(), 1u);
}

TEST(QasmAdversarialTest, MalformedStructure)
{
    expectRejected(program("frobnicate q[0];"));  // unknown gate
    expectRejected(program("h r[0];"));           // unknown register
    expectRejected(program("h q;"));              // whole-register op
    expectRejected(std::string(kHeader) + "h q[0];"); // gate before qreg
    expectRejected(program("qreg r[2];"));        // second qreg
    expectRejected(program("cx q[0];"));          // arity mismatch
    expectRejected(program("h q[0], q[1];"));     // arity mismatch
}

TEST(QasmAdversarialTest, MalformedNoiseComments)
{
    expectRejected(program("// qkc.noise bitflip"));        // no qubit
    expectRejected(program("// qkc.noise bitflip 0"));      // no parameter
    expectRejected(program("// qkc.noise bitflip q 0.1"));  // junk qubit
    expectRejected(program("// qkc.noise bitflip 0 junk")); // junk parameter
    expectRejected(program("// qkc.noise bitflip 0 2.0"));  // p > 1
    expectRejected(program("// qkc.noise bitflip 0 -0.5")); // p < 0
    expectRejected(program("// qkc.noise wormhole 0 0.1")); // unknown tag
    expectRejected(program("// qkc.noise depol2q 0 0.1"));  // missing qubit
    expectRejected(std::string(kHeader) + "// qkc.noise bitflip 0 0.1");

    // A well-formed channel comment still round-trips.
    Circuit ok = parseQasm(program("// qkc.noise bitflip 0 0.25"));
    EXPECT_EQ(ok.noiseCount(), 1u);
}

TEST(QasmAdversarialTest, ByteLimitIsEnforced)
{
    QasmLimits tight;
    tight.maxBytes = 256;
    expectRejected(program(std::string(1024, ' ') + "h q[0];"), tight);

    // At or under the cap, the same program parses.
    const std::string small = program("h q[0];");
    ASSERT_LE(small.size(), tight.maxBytes);
    EXPECT_EQ(parseQasm(small, tight).gateCount(), 1u);
}

TEST(QasmAdversarialTest, OperationLimitIsEnforced)
{
    QasmLimits tight;
    tight.maxOperations = 8;
    std::string body;
    for (int i = 0; i < 9; ++i)
        body += "h q[0];\n";
    expectRejected(program(body), tight);

    body.clear();
    for (int i = 0; i < 8; ++i)
        body += "h q[0];\n";
    EXPECT_EQ(parseQasm(program(body), tight).gateCount(), 8u);
}

TEST(QasmAdversarialTest, StreamReadStopsAtTheByteCap)
{
    // The istream overload must not drain an arbitrarily long stream into
    // memory before noticing it is oversized.
    QasmLimits tight;
    tight.maxBytes = 128;
    std::istringstream oversized(program(std::string(1u << 20, ';')));
    EXPECT_THROW(parseQasm(oversized, tight), QasmParseError);
}

TEST(QasmAdversarialTest, ErrorsNameTheOffendingStatement)
{
    try {
        parseQasm(program("frobnicate q[0];"));
        FAIL() << "expected QasmParseError";
    } catch (const QasmParseError& e) {
        EXPECT_NE(std::string(e.what()).find("frobnicate"),
                  std::string::npos);
    }
}

} // namespace
} // namespace qkc
