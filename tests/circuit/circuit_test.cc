#include "circuit/circuit.h"

#include <gtest/gtest.h>

namespace qkc {
namespace {

TEST(CircuitTest, FluentBuilderCounts)
{
    Circuit c(3);
    c.h(0).cnot(0, 1).cnot(1, 2).rz(2, 0.5);
    EXPECT_EQ(c.numQubits(), 3u);
    EXPECT_EQ(c.gateCount(), 4u);
    EXPECT_EQ(c.noiseCount(), 0u);
}

TEST(CircuitTest, AppendNoiseCounts)
{
    Circuit c(2);
    c.h(0);
    c.append(NoiseChannel::depolarizing(0, 0.01));
    c.cnot(0, 1);
    EXPECT_EQ(c.gateCount(), 2u);
    EXPECT_EQ(c.noiseCount(), 1u);
    EXPECT_EQ(c.size(), 3u);
}

TEST(CircuitTest, QubitRangeChecked)
{
    Circuit c(2);
    EXPECT_THROW(c.h(2), std::out_of_range);
    EXPECT_THROW(c.cnot(0, 5), std::out_of_range);
    EXPECT_THROW(c.append(NoiseChannel::bitFlip(9, 0.1)), std::out_of_range);
}

TEST(CircuitTest, InvalidQubitCount)
{
    EXPECT_THROW(Circuit(0), std::invalid_argument);
    EXPECT_THROW(Circuit(64), std::invalid_argument);
}

TEST(CircuitTest, ExtendConcatenates)
{
    Circuit a(2), b(2);
    a.h(0);
    b.cnot(0, 1);
    a.extend(b);
    EXPECT_EQ(a.gateCount(), 2u);

    Circuit wrong(3);
    EXPECT_THROW(a.extend(wrong), std::invalid_argument);
}

TEST(CircuitTest, WithNoiseAfterEachGate)
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    Circuit noisy = c.withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.005);
    // H adds 1 channel; CNOT adds 2 (one per operand qubit).
    EXPECT_EQ(noisy.gateCount(), 2u);
    EXPECT_EQ(noisy.noiseCount(), 3u);
    // Original untouched.
    EXPECT_EQ(c.noiseCount(), 0u);
}

TEST(CircuitTest, NoiseOrderingFollowsGates)
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    Circuit noisy = c.withNoiseAfterEachGate(NoiseKind::BitFlip, 0.01);
    ASSERT_EQ(noisy.size(), 5u);
    EXPECT_TRUE(std::holds_alternative<Gate>(noisy.operations()[0]));
    EXPECT_TRUE(std::holds_alternative<NoiseChannel>(noisy.operations()[1]));
    EXPECT_TRUE(std::holds_alternative<Gate>(noisy.operations()[2]));
    EXPECT_TRUE(std::holds_alternative<NoiseChannel>(noisy.operations()[3]));
    EXPECT_TRUE(std::holds_alternative<NoiseChannel>(noisy.operations()[4]));
}

TEST(CircuitTest, ParameterizedGateIndices)
{
    Circuit c(2);
    c.h(0).rz(0, 0.1).cnot(0, 1).zz(0, 1, 0.2);
    auto idx = c.parameterizedGateIndices();
    ASSERT_EQ(idx.size(), 2u);
    EXPECT_EQ(idx[0], 1u);
    EXPECT_EQ(idx[1], 3u);
}

TEST(CircuitTest, SetGateParam)
{
    Circuit c(2);
    c.rz(0, 0.1);
    c.setGateParam(0, 0.9);
    const Gate& g = std::get<Gate>(c.operations()[0]);
    EXPECT_DOUBLE_EQ(g.param(), 0.9);

    Circuit d(2);
    d.h(0);
    EXPECT_THROW(d.setGateParam(0, 1.0), std::invalid_argument);
}

TEST(CircuitTest, BasisIndexRoundTrip)
{
    // Qubit 0 is the most significant bit.
    EXPECT_EQ(basisIndex({1, 0, 0}), 4u);
    EXPECT_EQ(basisIndex({0, 1, 1}), 3u);
    auto bits = basisBits(5, 3);  // 101
    EXPECT_EQ(bits[0], 1);
    EXPECT_EQ(bits[1], 0);
    EXPECT_EQ(bits[2], 1);
    for (std::uint64_t v = 0; v < 16; ++v)
        EXPECT_EQ(basisIndex(basisBits(v, 4)), v);
}

TEST(CircuitTest, BasisKetFormat)
{
    EXPECT_EQ(basisKet(5, 4), "|0101>");
    EXPECT_EQ(basisKet(0, 2), "|00>");
}

TEST(CircuitTest, ToStringMentionsOps)
{
    Circuit c(2);
    c.h(0).cnot(0, 1);
    c.append(NoiseChannel::phaseDamping(1, 0.36));
    std::string s = c.toString();
    EXPECT_NE(s.find("H"), std::string::npos);
    EXPECT_NE(s.find("CNOT"), std::string::npos);
    EXPECT_NE(s.find("PhaseDamp"), std::string::npos);
}

} // namespace
} // namespace qkc
