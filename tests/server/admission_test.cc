#include "server/admission.h"

#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "vqa/pauli.h"

namespace qkc {
namespace server {
namespace {

Circuit
ghz(std::size_t n)
{
    Circuit c(n);
    c.h(0);
    for (std::size_t i = 0; i + 1 < n; ++i)
        c.cnot(i, i + 1);
    return c;
}

TEST(AdmissionTest, SmallStateVectorRequestsAdmit)
{
    const auto spec = parseBackendSpec("sv");
    const AdmissionVerdict v =
        admitRequest(spec, ghz(10), Sample{1024}, AdmissionLimits{});
    EXPECT_TRUE(v.admitted);
    EXPECT_TRUE(v.reason.empty());
}

TEST(AdmissionTest, FortyQubitStateVectorIsRefused)
{
    // 16 * 2^40 bytes = 16 TiB; the front door must refuse it, with the
    // structured field/reason the ISSUE's acceptance criteria name.
    const auto spec = parseBackendSpec("sv");
    const AdmissionVerdict v =
        admitRequest(spec, ghz(40), Sample{16}, AdmissionLimits{});
    EXPECT_FALSE(v.admitted);
    EXPECT_EQ(v.field, "memory");
    EXPECT_NE(v.reason.find("40"), std::string::npos);
}

TEST(AdmissionTest, MemoryBudgetScalesTheQubitCeiling)
{
    const auto spec = parseBackendSpec("sv");
    AdmissionLimits limits;
    limits.stateMemoryBytes = 16ull << 20; // 16 MiB -> exactly 20 qubits
    EXPECT_TRUE(admitRequest(spec, ghz(20), Sample{1}, limits).admitted);
    EXPECT_FALSE(admitRequest(spec, ghz(21), Sample{1}, limits).admitted);
}

TEST(AdmissionTest, DensityMatrixPaysTheSquaredCost)
{
    const auto spec = parseBackendSpec("dm");
    AdmissionLimits limits; // 4 GiB -> 16*4^n <= 2^32 -> n <= 14
    EXPECT_TRUE(admitRequest(spec, ghz(14), Sample{1}, limits).admitted);
    EXPECT_FALSE(admitRequest(spec, ghz(15), Sample{1}, limits).admitted);
    // Far past any uint64 representation of 16*4^n: must reject, not wrap.
    EXPECT_FALSE(admitRequest(spec, ghz(40), Sample{1}, limits).admitted);
}

TEST(AdmissionTest, KcExactQueriesAreBudgeted)
{
    const auto spec = parseBackendSpec("kc");
    AdmissionLimits limits;
    EXPECT_TRUE(
        admitRequest(spec, ghz(17), Sample{64}, limits).admitted);
    EXPECT_FALSE(
        admitRequest(spec, ghz(17), Probabilities{}, limits).admitted);
    EXPECT_FALSE(
        admitRequest(spec, ghz(17), Amplitudes{{0}}, limits).admitted);
    EXPECT_TRUE(
        admitRequest(spec, ghz(16), Probabilities{}, limits).admitted);
}

TEST(AdmissionTest, TensornetRejectsNoise)
{
    const auto spec = parseBackendSpec("tn");
    Circuit noisy = ghz(4).withNoiseAfterEachGate(NoiseKind::BitFlip, 0.01);
    EXPECT_FALSE(admitRequest(spec, noisy, Sample{16}, AdmissionLimits{})
                     .admitted);
    EXPECT_TRUE(admitRequest(spec, ghz(4), Sample{16}, AdmissionLimits{})
                    .admitted);
}

TEST(AdmissionTest, TaskCapsApplyOnEveryBackend)
{
    const auto spec = parseBackendSpec("dd");
    AdmissionLimits limits;
    limits.maxShots = 100;
    limits.maxAmplitudes = 2;
    limits.maxMarginalQubits = 3;
    limits.maxObservableTerms = 1;

    EXPECT_FALSE(admitRequest(spec, ghz(4), Sample{101}, limits).admitted);
    EXPECT_TRUE(admitRequest(spec, ghz(4), Sample{100}, limits).admitted);

    EXPECT_FALSE(
        admitRequest(spec, ghz(4), Amplitudes{{0, 1, 2}}, limits).admitted);

    // Empty qubit list means the full register: 4 > 3 rejects.
    EXPECT_FALSE(admitRequest(spec, ghz(4), Probabilities{}, limits).admitted);
    EXPECT_TRUE(
        admitRequest(spec, ghz(4), Probabilities{{0, 1}}, limits).admitted);

    Expectation wide;
    wide.observable.add(1.0, PauliString("ZZII")).add(0.5,
                                                      PauliString("IIZZ"));
    EXPECT_FALSE(admitRequest(spec, ghz(4), wide, limits).admitted);

    Expectation heavy;
    heavy.observable.add(1.0, PauliString("ZZII"));
    heavy.shots = 101;
    EXPECT_FALSE(admitRequest(spec, ghz(4), heavy, limits).admitted);
}

TEST(AdmissionTest, VerdictFieldsNameTheConstraint)
{
    const auto spec = parseBackendSpec("sv");
    AdmissionLimits limits;
    limits.maxShots = 1;
    const AdmissionVerdict v = admitRequest(spec, ghz(2), Sample{2}, limits);
    ASSERT_FALSE(v.admitted);
    EXPECT_EQ(v.field, "shots");
    EXPECT_NE(v.reason.find("2"), std::string::npos);
}

} // namespace
} // namespace server
} // namespace qkc
