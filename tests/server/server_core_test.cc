#include "server/server_core.h"

#include <gtest/gtest.h>

#include <string>

#include "server/json.h"

namespace qkc {
namespace server {
namespace {

const char* kBellQasm =
    "OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg q[2];\\nh q[0];\\ncx "
    "q[0], q[1];\\n";

std::string
bellBody(const std::string& extra = {})
{
    return std::string("{\"backend\":\"sv\",\"qasm\":\"") + kBellQasm + "\"" +
           extra + "}";
}

Json
parse(const HttpResult& r)
{
    return parseJson(r.body);
}

std::string
errorCode(const HttpResult& r)
{
    return parse(r).find("error")->find("code")->asString();
}

TEST(ServerCoreTest, RoutingAndMethods)
{
    ServerCore core;
    EXPECT_EQ(core.handle("GET", "/nope", "").status, 404);
    EXPECT_EQ(core.handle("GET", "/v1/run", "").status, 405);
    EXPECT_EQ(core.handle("POST", "/v1/stats", "").status, 405);
    EXPECT_EQ(core.handle("POST", "/v1/backends", "").status, 405);
    EXPECT_EQ(core.handle("GET", "/v1/shutdown", "").status, 405);
    EXPECT_EQ(core.handle("GET", "/v1/healthz", "").status, 200);
}

TEST(ServerCoreTest, RunSampleEndToEnd)
{
    ServerCore core;
    const HttpResult r = core.handle(
        "POST", "/v1/run", bellBody(",\"shots\":16,\"seed\":7"));
    ASSERT_EQ(r.status, 200) << r.body;
    const Json doc = parse(r);
    EXPECT_EQ(doc.find("backend")->asString(), "statevector");
    EXPECT_EQ(doc.find("task")->asString(), "sample");
    EXPECT_FALSE(doc.find("cacheHit")->asBool());
    const Json& results = *doc.find("results");
    ASSERT_EQ(results.size(), 1u);
    const Json& samples = *results.at(0).find("samples");
    ASSERT_EQ(samples.size(), 16u);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const std::uint64_t s = samples.at(i).asUInt64();
        EXPECT_TRUE(s == 0 || s == 3) << s; // Bell: |00> or |11>
    }

    // Same request again: cache hit, identical payload (same seed).
    const HttpResult r2 = core.handle(
        "POST", "/v1/run", bellBody(",\"shots\":16,\"seed\":7"));
    ASSERT_EQ(r2.status, 200);
    const Json doc2 = parse(r2);
    EXPECT_TRUE(doc2.find("cacheHit")->asBool());
    EXPECT_EQ(doc2.find("results")->at(0).find("samples")->dump(),
              doc.find("results")->at(0).find("samples")->dump());
}

TEST(ServerCoreTest, TasksRoundTrip)
{
    ServerCore core;

    const HttpResult probs = core.handle(
        "POST", "/v1/run", bellBody(",\"task\":\"probabilities\""));
    ASSERT_EQ(probs.status, 200) << probs.body;
    const Json probsDoc = parse(probs);
    const Json& p = *probsDoc.find("results")->at(0).find("probabilities");
    ASSERT_EQ(p.size(), 4u);
    EXPECT_NEAR(p.at(0).asDouble(), 0.5, 1e-12);
    EXPECT_NEAR(p.at(3).asDouble(), 0.5, 1e-12);

    const HttpResult amps = core.handle(
        "POST", "/v1/run",
        bellBody(",\"task\":\"amplitudes\",\"bitstrings\":[0,3]"));
    ASSERT_EQ(amps.status, 200) << amps.body;
    const Json ampsDoc = parse(amps);
    const Json& a = *ampsDoc.find("results")->at(0).find("amplitudes");
    ASSERT_EQ(a.size(), 2u);
    EXPECT_NEAR(a.at(0).at(0).asDouble(), 0.70710678118, 1e-9);

    const HttpResult expv = core.handle(
        "POST", "/v1/run",
        bellBody(",\"task\":\"expectation\",\"observable\":[[1.0,\"ZZ\"]]"));
    ASSERT_EQ(expv.status, 200) << expv.body;
    const Json expvDoc = parse(expv);
    EXPECT_NEAR(
        expvDoc.find("results")->at(0).find("expectation")->asDouble(), 1.0,
        1e-12);
}

TEST(ServerCoreTest, MultiBindingParams)
{
    // One parameterized rx gate; three bindings sweep its angle. rx(0)|0>
    // never flips, rx(pi)|0> always does.
    ServerCore core;
    const std::string body =
        "{\"backend\":\"sv\",\"qasm\":\"OPENQASM 2.0;\\ninclude "
        "\\\"qelib1.inc\\\";\\nqreg q[1];\\nrx(0.1) q[0];\\n\","
        "\"shots\":32,\"seed\":5,"
        "\"params\":[[0.0],[3.14159265358979],[0.0]]}";
    const HttpResult r = core.handle("POST", "/v1/run", body);
    ASSERT_EQ(r.status, 200) << r.body;
    const Json doc = parse(r);
    const Json& results = *doc.find("results");
    ASSERT_EQ(results.size(), 3u);
    for (std::size_t i = 0; i < 32; ++i) {
        EXPECT_EQ(results.at(0).find("samples")->at(i).asUInt64(), 0u);
        EXPECT_EQ(results.at(1).find("samples")->at(i).asUInt64(), 1u);
    }
    // Bindings 0 and 2 share parameters but not seeds (seed+0 vs seed+2) —
    // same distribution, independent streams.
}

TEST(ServerCoreTest, BadRequestsMapTo400)
{
    ServerCore core;
    EXPECT_EQ(core.handle("POST", "/v1/run", "not json").status, 400);
    EXPECT_EQ(core.handle("POST", "/v1/run", "{}").status, 400);
    EXPECT_EQ(core.handle("POST", "/v1/run",
                          "{\"backend\":\"sv\",\"qasm\":\"garbage\"}")
                  .status,
              400);
    EXPECT_EQ(
        core.handle("POST", "/v1/run", bellBody(",\"task\":\"frobnicate\""))
            .status,
        400);
    EXPECT_EQ(
        core.handle("POST", "/v1/run", bellBody(",\"unknownField\":1")).status,
        400);
    // Backend spec errors are client errors too.
    const HttpResult r = core.handle(
        "POST", "/v1/run",
        std::string("{\"backend\":\"warp\",\"qasm\":\"") + kBellQasm + "\"}");
    EXPECT_EQ(r.status, 400);
    EXPECT_EQ(errorCode(r), "bad_request");
    // Task/backend mismatch surfaces at run time but is still a 400.
    EXPECT_EQ(core.handle("POST", "/v1/run",
                          std::string("{\"backend\":\"kc\",\"qasm\":\"") +
                              kBellQasm +
                              "\",\"task\":\"amplitudes\","
                              "\"bitstrings\":[0,9]}")
                  .status,
              400);
}

TEST(ServerCoreTest, AdmissionRejectsWith422)
{
    ServerCore core;
    std::string big = "OPENQASM 2.0;\\ninclude \\\"qelib1.inc\\\";\\nqreg "
                      "q[40];\\nh q[0];\\n";
    const HttpResult r = core.handle(
        "POST", "/v1/run",
        "{\"backend\":\"sv\",\"qasm\":\"" + big + "\"}");
    EXPECT_EQ(r.status, 422);
    EXPECT_EQ(errorCode(r), "infeasible");
    EXPECT_EQ(parse(r).find("error")->find("field")->asString(), "memory");
}

TEST(ServerCoreTest, InflightBoundRejectsWith429)
{
    // maxInflight = 0: the very first request trips the bound — the
    // deterministic way to exercise the queue-full path single-threaded.
    ServerConfig config;
    config.maxInflight = 0;
    ServerCore core(config);
    const HttpResult r = core.handle("POST", "/v1/run", bellBody());
    EXPECT_EQ(r.status, 429);
    EXPECT_EQ(errorCode(r), "overloaded");
    EXPECT_EQ(core.inflight(), 0u); // the guard released its slot
}

TEST(ServerCoreTest, DrainingRejectsWith503)
{
    ServerCore core;
    EXPECT_EQ(core.handle("POST", "/v1/run", bellBody()).status, 200);
    core.beginDrain();
    const HttpResult r = core.handle("POST", "/v1/run", bellBody());
    EXPECT_EQ(r.status, 503);
    EXPECT_EQ(errorCode(r), "draining");
    // Non-run endpoints still answer while draining.
    EXPECT_EQ(core.handle("GET", "/v1/healthz", "").status, 200);
    EXPECT_EQ(core.handle("GET", "/v1/stats", "").status, 200);
}

TEST(ServerCoreTest, ShutdownEndpointBeginsDrain)
{
    ServerCore core;
    EXPECT_FALSE(core.draining());
    const HttpResult r = core.handle("POST", "/v1/shutdown", "");
    EXPECT_EQ(r.status, 200);
    EXPECT_TRUE(core.draining());
    EXPECT_TRUE(parse(r).find("draining")->asBool());
}

TEST(ServerCoreTest, BackendsEndpointMirrorsTheRegistry)
{
    ServerCore core;
    const HttpResult r = core.handle("GET", "/v1/backends", "");
    ASSERT_EQ(r.status, 200);
    const Json doc = parse(r);
    const Json& backends = *doc.find("backends");
    ASSERT_EQ(backends.size(), backendRegistry().size());
    bool sawSv = false;
    for (std::size_t i = 0; i < backends.size(); ++i)
        sawSv = sawSv ||
                backends.at(i).find("name")->asString() == "statevector";
    EXPECT_TRUE(sawSv);
}

TEST(ServerCoreTest, StatsReportCacheAndQueueState)
{
    ServerConfig config;
    config.cacheCapacity = 1;
    ServerCore core(config);
    core.handle("POST", "/v1/run", bellBody());
    core.handle("POST", "/v1/run", bellBody());
    // A different structure evicts the Bell entry (capacity 1).
    core.handle("POST", "/v1/run",
                "{\"backend\":\"sv\",\"qasm\":\"OPENQASM 2.0;\\ninclude "
                "\\\"qelib1.inc\\\";\\nqreg q[1];\\nh q[0];\\n\"}");

    const Json doc = parse(core.handle("GET", "/v1/stats", ""));
    EXPECT_FALSE(doc.find("draining")->asBool());
    EXPECT_EQ(doc.find("inflight")->asUInt64(), 0u);
    const Json& cache = *doc.find("cache");
    EXPECT_EQ(cache.find("size")->asUInt64(), 1u);
    EXPECT_EQ(cache.find("capacity")->asUInt64(), 1u);
    EXPECT_EQ(cache.find("evictions")->asUInt64(), 1u);
}

} // namespace
} // namespace server
} // namespace qkc
