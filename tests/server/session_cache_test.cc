#include "server/session_cache.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "circuit/circuit.h"
#include "exec/execution_plan.h"
#include "server/server_core.h" // completes Waiter

namespace qkc {
namespace server {
namespace {

TEST(SessionCacheTest, MissThenHit)
{
    SessionCache cache(4);
    bool hit = true;
    auto e1 = cache.acquire("sv", 111, hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.size(), 1u);

    auto e2 = cache.acquire("sv", 111, hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(e1.get(), e2.get());
    EXPECT_EQ(e2->hits, 1u);
    EXPECT_EQ(cache.size(), 1u);
}

TEST(SessionCacheTest, SpecAndStructureBothKeyTheEntry)
{
    SessionCache cache(8);
    bool hit = false;
    auto a = cache.acquire("sv", 111, hit);
    auto b = cache.acquire("sv:fuse=0", 111, hit);
    EXPECT_FALSE(hit);
    auto c = cache.acquire("sv", 222, hit);
    EXPECT_FALSE(hit);
    EXPECT_NE(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(cache.size(), 3u);
}

TEST(SessionCacheTest, LruEvictionDropsTheColdestEntry)
{
    SessionCache cache(2);
    bool hit = false;
    auto a = cache.acquire("sv", 1, hit);
    auto b = cache.acquire("sv", 2, hit);

    // Touch 1 so 2 becomes the LRU victim.
    cache.acquire("sv", 1, hit);
    EXPECT_TRUE(hit);

    cache.acquire("sv", 3, hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);

    cache.acquire("sv", 1, hit);
    EXPECT_TRUE(hit); // survived
    cache.acquire("sv", 2, hit);
    EXPECT_FALSE(hit); // evicted; re-acquire is a miss (evicting 3 or 1)
}

TEST(SessionCacheTest, EvictedEntriesSurviveWhileHeld)
{
    SessionCache cache(1);
    bool hit = false;
    auto held = cache.acquire("sv", 1, hit);
    cache.acquire("sv", 2, hit); // evicts entry 1
    EXPECT_EQ(cache.evictions(), 1u);

    // The holder's shared_ptr keeps the evicted entry (and its queue/
    // session) alive; a re-acquire makes a *new* entry.
    held->hits = 99;
    auto fresh = cache.acquire("sv", 1, hit);
    EXPECT_FALSE(hit);
    EXPECT_NE(held.get(), fresh.get());
    EXPECT_EQ(fresh->hits, 0u);
}

TEST(SessionCacheTest, ClearEmptiesAndCountsEvictions)
{
    SessionCache cache(8);
    bool hit = false;
    cache.acquire("sv", 1, hit);
    cache.acquire("sv", 2, hit);
    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.evictions(), 2u);
    cache.acquire("sv", 1, hit);
    EXPECT_FALSE(hit);
}

TEST(SessionCacheTest, CapacityAndCoalesceMustBePositive)
{
    EXPECT_THROW(SessionCache(0), std::invalid_argument);
    EXPECT_THROW(SessionCache(1, 0), std::invalid_argument);
}

TEST(SessionCacheTest, NewEntriesStartAtTheMaxCoalesceWidth)
{
    SessionCache cache(2, 7);
    bool hit = false;
    auto e = cache.acquire("sv", 1, hit);
    EXPECT_EQ(e->coalesceCap, 7u);
}

// structureHash is the cache key half the server derives itself; its
// contract (sameStructure => equal hash, structural edits change it) is
// what makes collisions harmless and hits meaningful.
TEST(SessionCacheTest, StructureHashTracksStructureNotParameters)
{
    Circuit a(3);
    a.h(0).rx(1, 0.5).cnot(1, 2);
    Circuit b(3);
    b.h(0).rx(1, 2.75).cnot(1, 2); // same structure, different angle
    EXPECT_EQ(structureHash(a), structureHash(b));

    Circuit c(3);
    c.h(0).ry(1, 0.5).cnot(1, 2); // different gate kind
    EXPECT_NE(structureHash(a), structureHash(c));

    Circuit d(3);
    d.h(0).rx(2, 0.5).cnot(1, 2); // different wire
    EXPECT_NE(structureHash(a), structureHash(d));

    Circuit e(4);
    e.h(0).rx(1, 0.5).cnot(1, 2); // different register width
    EXPECT_NE(structureHash(a), structureHash(e));

    // Noise placement is structure too.
    Circuit f = a.withNoiseAfterEachGate(NoiseKind::BitFlip, 0.01);
    Circuit g = a.withNoiseAfterEachGate(NoiseKind::BitFlip, 0.02);
    EXPECT_NE(structureHash(a), structureHash(f));
    EXPECT_EQ(structureHash(f), structureHash(g)); // p is a parameter
}

TEST(SessionCacheTest, StructureHashSpreadsAcrossVariants)
{
    // Not a collision-resistance proof — just a guard against a degenerate
    // implementation hashing everything to a handful of values.
    std::set<std::uint64_t> hashes;
    for (std::size_t n = 2; n <= 5; ++n) {
        for (std::size_t layers = 1; layers <= 4; ++layers) {
            Circuit c(n);
            for (std::size_t l = 0; l < layers; ++l) {
                for (std::size_t q = 0; q < n; ++q)
                    c.rx(q, 0.1);
                for (std::size_t q = 0; q + 1 < n; ++q)
                    c.cnot(q, q + 1);
            }
            hashes.insert(structureHash(c));
        }
    }
    EXPECT_EQ(hashes.size(), 16u);
}

} // namespace
} // namespace server
} // namespace qkc
