#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "server/json.h"
#include "server/server_core.h"
#include "util/rng.h"
#include "vqa/simulator_api.h"

// End-to-end determinism is the serving contract the whole design hangs on:
// a request's payload must be bit-identical whether it ran solo, coalesced
// into a stranger's batch, or was replayed after its session was evicted —
// and for every QKC_THREADS value (the CI matrix runs this suite at 1, 2
// and 4). Per-binding seeds are the mechanism; these tests are the check.

namespace qkc {
namespace server {
namespace {

std::string
ansatzQasm(double angle)
{
    return "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n"
           "rx(" + std::to_string(angle) + ") q[0];\nry(0.7) q[1];\n"
           "cx q[0], q[1];\ncx q[1], q[2];\n";
}

std::string
escape(const std::string& text)
{
    return Json(text).dump(); // JSON-escaped, quoted
}

std::string
runBody(const std::string& backend, const std::string& qasm,
        std::uint64_t seed, std::size_t shots,
        const std::string& extra = {})
{
    return "{\"backend\":\"" + backend + "\",\"qasm\":" + escape(qasm) +
           ",\"shots\":" + std::to_string(shots) +
           ",\"seed\":" + std::to_string(seed) + extra + "}";
}

std::string
samplesOf(const HttpResult& r)
{
    EXPECT_EQ(r.status, 200) << r.body;
    return parseJson(r.body).find("results")->at(0).find("samples")->dump();
}

TEST(ServerDeterminismTest, SoloEqualsMultiBindingBatch)
{
    // A params request IS a coalesced batch (one runBatch, many seeds), so
    // this checks the flatten/scatter path with zero timing dependence:
    // batch entry i must match a solo request of binding i at seed+i.
    ServerCore batchCore;
    const std::string qasm = ansatzQasm(0.1);
    const HttpResult batch = batchCore.handle(
        "POST", "/v1/run",
        runBody("sv", qasm, 40, 64,
                ",\"params\":[[0.25,0.7],[1.25,0.7],[2.5,0.7]]"));
    ASSERT_EQ(batch.status, 200) << batch.body;
    const Json batchDoc = parseJson(batch.body);
    const Json& batchResults = *batchDoc.find("results");
    ASSERT_EQ(batchResults.size(), 3u);

    const double angles[] = {0.25, 1.25, 2.5};
    for (std::size_t i = 0; i < 3; ++i) {
        ServerCore solo;
        const HttpResult one = solo.handle(
            "POST", "/v1/run", runBody("sv", ansatzQasm(angles[i]), 40 + i, 64));
        EXPECT_EQ(samplesOf(one),
                  batchResults.at(i).find("samples")->dump())
            << "binding " << i;
    }
}

TEST(ServerDeterminismTest, ReplayAfterEvictionIsBitIdentical)
{
    ServerConfig config;
    config.cacheCapacity = 1;
    ServerCore core(config);
    const std::string qasm = ansatzQasm(0.3);

    const std::string first =
        samplesOf(core.handle("POST", "/v1/run", runBody("sv", qasm, 99, 128)));

    // Evict by occupying the single slot with a different structure.
    ASSERT_EQ(core.handle("POST", "/v1/run",
                          runBody("sv", ansatzQasm(0.3) + "h q[2];\n", 1, 8))
                  .status,
              200);

    const HttpResult replay =
        core.handle("POST", "/v1/run", runBody("sv", qasm, 99, 128));
    EXPECT_FALSE(parseJson(replay.body).find("cacheHit")->asBool());
    EXPECT_EQ(samplesOf(replay), first);
}

TEST(ServerDeterminismTest, ConcurrentStrangersDoNotPerturbPayloads)
{
    // Many clients hammer one structure concurrently with different seeds;
    // whatever coalescing actually happened, each client's payload must
    // equal its solo rerun on a fresh server.
    constexpr std::size_t kClients = 8;
    const std::string qasm = ansatzQasm(0.5);

    ServerCore shared;
    std::vector<std::string> concurrent(kClients);
    {
        std::vector<std::thread> clients;
        for (std::size_t c = 0; c < kClients; ++c) {
            clients.emplace_back([&, c] {
                concurrent[c] = samplesOf(shared.handle(
                    "POST", "/v1/run", runBody("sv", qasm, 1000 + c, 32)));
            });
        }
        for (std::thread& t : clients)
            t.join();
    }
    for (std::size_t c = 0; c < kClients; ++c) {
        ServerCore solo;
        EXPECT_EQ(samplesOf(solo.handle("POST", "/v1/run",
                                        runBody("sv", qasm, 1000 + c, 32))),
                  concurrent[c])
            << "client " << c;
    }
}

TEST(ServerDeterminismTest, NoisyTrajectoriesHoldTheSameContract)
{
    // dd noisy sampling fans trajectories across worker lanes; the
    // per-trajectory seed schedule must keep server payloads identical
    // across solo/coalesced/replayed runs here too.
    std::string qasm = ansatzQasm(0.2);
    qasm += "// qkc.noise bitflip 0 0.05\n// qkc.noise bitflip 2 0.05\n";

    ServerConfig config;
    config.cacheCapacity = 1;
    ServerCore core(config);
    const std::string first =
        samplesOf(core.handle("POST", "/v1/run", runBody("dd", qasm, 7, 64)));

    ASSERT_EQ(core.handle("POST", "/v1/run",
                          runBody("dd", qasm + "h q[1];\n", 1, 8))
                  .status,
              200);
    EXPECT_EQ(samplesOf(
                  core.handle("POST", "/v1/run", runBody("dd", qasm, 7, 64))),
              first);

    ServerCore solo;
    EXPECT_EQ(samplesOf(
                  solo.handle("POST", "/v1/run", runBody("dd", qasm, 7, 64))),
              first);
}

TEST(ServerDeterminismTest, DdTrajectoryLanesAreThreadCountInvariant)
{
    // The session-level identity underneath the server contract: noisy
    // Sample on dd must be bit-identical for any worker-lane count.
    Circuit circuit(3);
    circuit.h(0).cnot(0, 1).rx(2, 0.4).cnot(1, 2);
    Circuit noisy = circuit.withNoiseAfterEachGate(NoiseKind::BitFlip, 0.05);

    auto run = [&](const std::string& spec) {
        auto session = makeBackend(spec)->open(noisy);
        Rng rng(123);
        return session->run(Sample{256}, rng).samples;
    };
    const auto lane1 = run("dd:threads=1");
    const auto lane4 = run("dd:threads=4");
    const auto lane7 = run("dd:threads=7");
    EXPECT_EQ(lane1, lane4);
    EXPECT_EQ(lane1, lane7);
}

TEST(ServerDeterminismTest, ExactTasksAgreeAcrossCoalescingToo)
{
    // Probabilities are deterministic by nature, but must still survive the
    // batch path (lane scatter, marginalization in a clone).
    ServerCore core;
    const std::string qasm = ansatzQasm(0.9);
    const std::string body = runBody("sv", qasm, 1, 1,
                                     ",\"task\":\"probabilities\"");
    const HttpResult a = core.handle("POST", "/v1/run", body);
    const HttpResult b = core.handle("POST", "/v1/run", body);
    ASSERT_EQ(a.status, 200) << a.body;
    // meta carries wall-clock timings, so compare the payload only.
    const Json docA = parseJson(a.body);
    const Json docB = parseJson(b.body);
    EXPECT_EQ(docA.find("results")->at(0).find("probabilities")->dump(),
              docB.find("results")->at(0).find("probabilities")->dump());
}

} // namespace
} // namespace server
} // namespace qkc
