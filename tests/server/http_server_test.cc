#include "server/http_server.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/http_client.h"
#include "server/json.h"

namespace qkc {
namespace server {
namespace {

const char* kBellQasm = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg "
                        "q[2];\nh q[0];\ncx q[0], q[1];\n";

std::string
bellBody(std::uint64_t seed)
{
    Json doc = Json::object();
    doc.set("backend", "sv");
    doc.set("qasm", kBellQasm);
    doc.set("shots", Json(std::uint64_t{16}));
    doc.set("seed", Json(seed));
    return doc.dump();
}

/** A raw loopback connection for exercising protocol details directly. */
class RawConnection {
  public:
    explicit RawConnection(std::uint16_t port)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
            ::close(fd_);
            fd_ = -1;
        }
    }
    ~RawConnection()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool ok() const { return fd_ >= 0; }

    void send(const std::string& data)
    {
        ASSERT_EQ(::send(fd_, data.data(), data.size(), 0),
                  static_cast<ssize_t>(data.size()));
    }

    /** Reads one complete response (headers + Content-Length body). */
    std::string readResponse()
    {
        std::string buf;
        char chunk[2048];
        while (true) {
            const std::size_t headerEnd = buf.find("\r\n\r\n");
            if (headerEnd != std::string::npos) {
                std::size_t contentLength = 0;
                const std::size_t cl = buf.find("Content-Length: ");
                if (cl != std::string::npos && cl < headerEnd)
                    contentLength = std::stoul(buf.substr(cl + 16));
                if (buf.size() >= headerEnd + 4 + contentLength)
                    return buf.substr(0, headerEnd + 4 + contentLength);
            }
            const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
            if (n <= 0)
                return buf;
            buf.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_ = -1;
};

TEST(HttpServerTest, HealthzOverLoopback)
{
    ServerCore core;
    HttpServer http(core, 0);
    ASSERT_NE(http.port(), 0);

    const HttpReply reply = httpGet("127.0.0.1", http.port(), "/v1/healthz");
    EXPECT_EQ(reply.status, 200);
    EXPECT_TRUE(parseJson(reply.body).find("ok")->asBool());
}

TEST(HttpServerTest, RunMatchesDirectCoreHandling)
{
    ServerCore core;
    HttpServer http(core, 0);
    const HttpReply wire =
        httpPost("127.0.0.1", http.port(), "/v1/run", bellBody(7));
    ASSERT_EQ(wire.status, 200) << wire.body;

    // The transport adds nothing: a direct core call on a fresh server
    // yields the same samples (per-request determinism). meta carries
    // wall-clock timings, so compare the sample payloads only.
    ServerCore direct;
    const HttpResult local = direct.handle("POST", "/v1/run", bellBody(7));
    const Json wireDoc = parseJson(wire.body);
    const Json localDoc = parseJson(local.body);
    EXPECT_EQ(wireDoc.find("results")->at(0).find("samples")->dump(),
              localDoc.find("results")->at(0).find("samples")->dump());
}

TEST(HttpServerTest, ErrorStatusesCrossTheWire)
{
    ServerCore core;
    HttpServer http(core, 0);
    EXPECT_EQ(httpGet("127.0.0.1", http.port(), "/nope").status, 404);
    EXPECT_EQ(
        httpPost("127.0.0.1", http.port(), "/v1/run", "not json").status, 400);
}

TEST(HttpServerTest, KeepAliveServesSequentialRequests)
{
    ServerCore core;
    HttpServer http(core, 0);
    RawConnection conn(http.port());
    ASSERT_TRUE(conn.ok());

    const std::string body = bellBody(3);
    const std::string request = "POST /v1/run HTTP/1.1\r\nHost: x\r\n"
                                "Content-Length: " +
                                std::to_string(body.size()) + "\r\n\r\n" +
                                body;
    conn.send(request);
    const std::string first = conn.readResponse();
    EXPECT_NE(first.find("200 OK"), std::string::npos);
    EXPECT_NE(first.find("Connection: keep-alive"), std::string::npos);

    // Same connection, second request — and the payloads must agree
    // (same seed, warm session via the cache).
    conn.send(request);
    const std::string second = conn.readResponse();
    EXPECT_NE(second.find("200 OK"), std::string::npos);
    const std::size_t b1 = first.find("\r\n\r\n");
    const std::size_t b2 = second.find("\r\n\r\n");
    const Json firstDoc = parseJson(first.substr(b1 + 4));
    const Json secondDoc = parseJson(second.substr(b2 + 4));
    EXPECT_EQ(firstDoc.find("results")->at(0).find("samples")->dump(),
              secondDoc.find("results")->at(0).find("samples")->dump());
}

TEST(HttpServerTest, OversizedBodyIsRefusedWith413)
{
    ServerCore core;
    HttpServer http(core, 0);
    RawConnection conn(http.port());
    ASSERT_TRUE(conn.ok());
    conn.send("POST /v1/run HTTP/1.1\r\nHost: x\r\nContent-Length: "
              "999999999\r\n\r\n");
    const std::string response = conn.readResponse();
    EXPECT_NE(response.find("413"), std::string::npos);
}

TEST(HttpServerTest, MalformedRequestLineIsRefused)
{
    ServerCore core;
    HttpServer http(core, 0);
    RawConnection conn(http.port());
    ASSERT_TRUE(conn.ok());
    conn.send("NONSENSE\r\n\r\n");
    EXPECT_NE(conn.readResponse().find("400"), std::string::npos);
}

TEST(HttpServerTest, ConcurrentClientsAllSucceed)
{
    ServerCore core;
    HttpServer http(core, 0);
    constexpr std::size_t kClients = 8;
    std::vector<int> statuses(kClients, 0);
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
            statuses[c] = httpPost("127.0.0.1", http.port(), "/v1/run",
                                   bellBody(100 + c))
                              .status;
        });
    }
    for (std::thread& t : clients)
        t.join();
    for (std::size_t c = 0; c < kClients; ++c)
        EXPECT_EQ(statuses[c], 200) << "client " << c;
}

TEST(HttpServerTest, StopIsIdempotentAndJoinsCleanly)
{
    ServerCore core;
    auto* http = new HttpServer(core, 0);
    const std::uint16_t port = http->port();
    EXPECT_EQ(httpGet("127.0.0.1", port, "/v1/healthz").status, 200);
    http->stop();
    EXPECT_FALSE(http->running());
    http->stop(); // second stop is a no-op
    delete http;  // destructor also calls stop
    EXPECT_THROW(httpGet("127.0.0.1", port, "/v1/healthz"),
                 std::runtime_error);
}

TEST(HttpServerTest, DrainThenStopCompletesInFlightWork)
{
    // The daemon's shutdown sequence: begin drain, wait for zero inflight,
    // stop the transport. After drain, run requests answer 503 but the
    // stats endpoint still serves.
    ServerCore core;
    HttpServer http(core, 0);
    ASSERT_EQ(
        httpPost("127.0.0.1", http.port(), "/v1/run", bellBody(1)).status,
        200);
    ASSERT_EQ(
        httpPost("127.0.0.1", http.port(), "/v1/shutdown", "{}").status, 200);
    EXPECT_EQ(
        httpPost("127.0.0.1", http.port(), "/v1/run", bellBody(2)).status,
        503);
    EXPECT_EQ(httpGet("127.0.0.1", http.port(), "/v1/stats").status, 200);
    EXPECT_EQ(core.inflight(), 0u);
    http.stop();
}

} // namespace
} // namespace server
} // namespace qkc
