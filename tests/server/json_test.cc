#include "server/json.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace qkc {
namespace server {
namespace {

TEST(JsonTest, ScalarRoundTrip)
{
    EXPECT_EQ(Json().dump(), "null");
    EXPECT_EQ(Json(true).dump(), "true");
    EXPECT_EQ(Json(false).dump(), "false");
    EXPECT_EQ(Json(42).dump(), "42");
    EXPECT_EQ(Json(std::uint64_t{18446744073709551615ull}).dump(),
              "18446744073709551615");
    EXPECT_EQ(Json("hi").dump(), "\"hi\"");
    EXPECT_EQ(Json(1.5).dump(), "1.5");
}

TEST(JsonTest, SeedsSurviveTheRoundTrip)
{
    // 64-bit seeds past 2^53 are exactly why numbers remember integer-ness.
    const std::uint64_t seed = (1ull << 63) + 12345;
    Json doc = Json::object();
    doc.set("seed", Json(seed));
    const Json back = parseJson(doc.dump());
    EXPECT_EQ(back.find("seed")->asUInt64(), seed);
}

TEST(JsonTest, ObjectsKeepInsertionOrder)
{
    Json doc = Json::object();
    doc.set("z", Json(1));
    doc.set("a", Json(2));
    doc.set("m", Json(3));
    EXPECT_EQ(doc.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
    doc.set("a", Json(9)); // overwrite keeps the slot
    EXPECT_EQ(doc.dump(), "{\"z\":1,\"a\":9,\"m\":3}");
}

TEST(JsonTest, ParseNested)
{
    const Json doc = parseJson(
        R"({"backend":"sv","shots":1024,"params":[[0.5,-1.5],[2.0,3.0]],"ok":true,"none":null})");
    EXPECT_EQ(doc.find("backend")->asString(), "sv");
    EXPECT_EQ(doc.find("shots")->asUInt64(), 1024u);
    EXPECT_TRUE(doc.find("ok")->asBool());
    EXPECT_TRUE(doc.find("none")->isNull());
    const Json& params = *doc.find("params");
    ASSERT_EQ(params.size(), 2u);
    EXPECT_DOUBLE_EQ(params.at(0).at(1).asDouble(), -1.5);
    EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonTest, StringEscapes)
{
    const Json doc = parseJson(R"({"s":"a\"b\\c\ndé"})");
    EXPECT_EQ(doc.find("s")->asString(), "a\"b\\c\nd\xc3\xa9");

    Json out = Json::object();
    out.set("s", Json(std::string("tab\there\x01")));
    EXPECT_EQ(out.dump(), "{\"s\":\"tab\\there\\u0001\"}");
    // Whatever we emit must parse back to the same value.
    EXPECT_EQ(parseJson(out.dump()).find("s")->asString(), "tab\there\x01");
}

TEST(JsonTest, MalformedDocumentsThrow)
{
    EXPECT_THROW(parseJson(""), JsonError);
    EXPECT_THROW(parseJson("{"), JsonError);
    EXPECT_THROW(parseJson("{}extra"), JsonError);
    EXPECT_THROW(parseJson("{\"a\":}"), JsonError);
    EXPECT_THROW(parseJson("[1,]"), JsonError);
    EXPECT_THROW(parseJson("tru"), JsonError);
    EXPECT_THROW(parseJson("\"unterminated"), JsonError);
    EXPECT_THROW(parseJson("{\"a\" 1}"), JsonError);
    EXPECT_THROW(parseJson("1e999999"), JsonError);
    EXPECT_THROW(parseJson("\"bad\\escape\""), JsonError);
    EXPECT_THROW(parseJson("\"raw\x01control\""), JsonError);
}

TEST(JsonTest, LimitsAreEnforced)
{
    JsonLimits tight;
    tight.maxBytes = 16;
    EXPECT_THROW(parseJson(std::string(17, ' ') + "1", tight), JsonError);

    tight = JsonLimits{};
    tight.maxDepth = 4;
    EXPECT_THROW(parseJson("[[[[[1]]]]]", tight), JsonError);
    EXPECT_NO_THROW(parseJson("[[[1]]]", tight));

    tight = JsonLimits{};
    tight.maxNodes = 4;
    EXPECT_THROW(parseJson("[1,2,3,4]", tight), JsonError);

    // The default depth cap protects the stack from hostile nesting.
    EXPECT_THROW(parseJson(std::string(100000, '[')), JsonError);
}

TEST(JsonTest, AccessorTypeMismatchesThrow)
{
    const Json doc = parseJson(R"({"n":1.5,"s":"x"})");
    EXPECT_THROW(doc.find("n")->asString(), JsonError);
    EXPECT_THROW(doc.find("s")->asDouble(), JsonError);
    EXPECT_THROW(doc.find("n")->asUInt64(), JsonError); // 1.5 not integral
    EXPECT_THROW(parseJson("-3").asUInt64(), JsonError);
    EXPECT_THROW(doc.at(0), JsonError); // object, not array
}

TEST(JsonTest, IntegralDoublesReadAsUInt64)
{
    // "1e3" arrives as a double but is an exact integer.
    EXPECT_EQ(parseJson("1e3").asUInt64(), 1000u);
    EXPECT_EQ(parseJson("0").asUInt64(), 0u);
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull)
{
    Json doc = Json::object();
    doc.set("bad", Json(std::numeric_limits<double>::infinity()));
    EXPECT_EQ(doc.dump(), "{\"bad\":null}");
}

} // namespace
} // namespace server
} // namespace qkc
