/**
 * Regenerates Figure 9 (a-d): time to draw samples from noisy QAOA / VQE
 * circuits (0.5% symmetric depolarizing after every gate) versus qubit
 * count, comparing the Cirq-style density-matrix baseline and the
 * DDSIM-style decision-diagram trajectory sampler against knowledge
 * compilation. The density matrix pays 4^n storage and matrix-matrix
 * updates; DD trajectories pay one diagram rebuild per sample; the
 * compiled AC pays its (noise-enlarged) circuit size, which is why KC
 * breaks even at fewer qubits than the ideal case.
 *
 * Defaults reduced for one core; --samples=1000 --max-qubits=12 approaches
 * the paper's setting.
 */
#include <cstdio>

#include "ac/kc_simulator.h"
#include "bench_common.h"
#include "util/cli.h"
#include "util/timer.h"
#include "vqa/backends.h"

using namespace qkc;

namespace {

void
runRow(const char* workload, std::size_t p, std::size_t qubits,
       const Circuit& noisy, std::size_t samples, std::size_t dmMax,
       std::size_t ddMax, std::size_t svMax, std::size_t threads)
{
    auto print = [&](const std::string& backend, double seconds,
                     double extra) {
        std::printf("%-6s %2zu %4zu %-20s %10.4f %10.4f\n", workload, p,
                    qubits, backend.c_str(), seconds, extra);
        std::fflush(stdout);
    };

    if (qubits <= dmMax) {
        {
            auto dm = makeBackend("densitymatrix:threads=1");
            Rng rng(1);
            Timer t;
            dm->sample(noisy, samples, rng);
            print("densitymatrix", t.seconds(), 0.0);
        }
        if (threads > 1) {
            auto dm = makeBackend("densitymatrix:threads=" +
                                  std::to_string(threads));
            Rng rng(1);
            Timer t;
            dm->sample(noisy, samples, rng);
            print("dm+t" + std::to_string(threads), t.seconds(), 0.0);
        }
    }

    // Trajectory cost model: one full re-simulation per sample, but the
    // trajectories are independent — the threaded row parallelizes them.
    if (qubits <= svMax) {
        {
            auto sv = makeBackend("statevector:threads=1");
            Rng rng(5);
            Timer t;
            sv->sample(noisy, samples, rng);
            print("sv-traj", t.seconds(), 0.0);
        }
        if (threads > 1) {
            auto sv = makeBackend("statevector:threads=" +
                                  std::to_string(threads));
            Rng rng(5);
            Timer t;
            sv->sample(noisy, samples, rng);
            print("sv-traj+t" + std::to_string(threads), t.seconds(), 0.0);
        }
    }

    // Trajectory cost is one diagram rebuild per sample, and deep/noisy QAOA
    // diagrams lose their compactness — cap the row like the others.
    if (qubits <= ddMax) {
        auto dd = makeBackend("decisiondiagram");
        Rng rng(3);
        Timer t;
        dd->sample(noisy, samples, rng);
        print("decisiondiagram", t.seconds(), 0.0);
    }

    Timer compile;
    KcSimulator kc(noisy);
    double compileSeconds = compile.seconds();
    Rng rng(2);
    Timer t;
    GibbsOptions options;
    options.burnIn = 32;
    kc.sample(samples, rng, options);
    print("knowledgecompilation", t.seconds(), compileSeconds);
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const std::size_t samples =
        static_cast<std::size_t>(cli.getInt("samples", 100));
    const std::size_t maxQubits =
        static_cast<std::size_t>(cli.getInt("max-qubits", 10));
    const std::size_t dmMax =
        static_cast<std::size_t>(cli.getInt("dm-max-qubits", 10));
    const std::size_t ddMax =
        static_cast<std::size_t>(cli.getInt("dd-max-qubits", 12));
    const std::size_t maxIterations =
        static_cast<std::size_t>(cli.getInt("max-iterations", 2));
    const std::size_t svMax =
        static_cast<std::size_t>(cli.getInt("sv-max-qubits", 12));
    const std::size_t threads = static_cast<std::size_t>(
        cli.getInt("threads", static_cast<std::int64_t>(defaultThreads())));
    const double noise = cli.getDouble("noise", 0.005);

    bench::printHeader(
        "Figure 9: noisy sampling time vs qubits (samples=" +
            std::to_string(samples) + ", depolarizing=" +
            std::to_string(noise) + ")",
        "# work   p  qub backend              sample_sec  setup_sec");

    for (std::size_t p = 1; p <= maxIterations; ++p) {
        for (std::size_t n = 4; n <= maxQubits; n += 2) {
            Circuit noisy = bench::qaoaCircuit(n, p, 19).withNoiseAfterEachGate(
                NoiseKind::Depolarizing, noise);
            runRow("qaoa", p, n, noisy, samples, dmMax, ddMax, svMax, threads);
        }
        for (std::size_t n : {4, 6, 9}) {
            if (n > maxQubits)
                break;
            Circuit noisy = bench::vqeCircuit(n, p, 19).withNoiseAfterEachGate(
                NoiseKind::Depolarizing, noise);
            runRow("vqe", p, n, noisy, samples, dmMax, ddMax, svMax, threads);
        }
    }
    return 0;
}
