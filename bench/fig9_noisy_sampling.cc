/**
 * Regenerates Figure 9 (a-d): time to draw samples from noisy QAOA / VQE
 * circuits (0.5% symmetric depolarizing after every gate) versus qubit
 * count, comparing the Cirq-style density-matrix baseline and the
 * DDSIM-style decision-diagram trajectory sampler against knowledge
 * compilation. The density matrix pays 4^n storage and matrix-matrix
 * updates; DD trajectories pay one diagram rebuild per sample; the
 * compiled AC pays its (noise-enlarged) circuit size, which is why KC
 * breaks even at fewer qubits than the ideal case.
 *
 * Defaults reduced for one core; --samples=1000 --max-qubits=12 approaches
 * the paper's setting.
 */
#include <cstdio>

#include "bench_common.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "vqa/backends.h"

using namespace qkc;

namespace {

/** One backend row via the session API (setup column = open time). */
void
runBackendRow(const std::string& spec, const std::string& label,
              const char* workload, std::size_t p, std::size_t qubits,
              const Circuit& noisy, std::size_t samples, std::uint64_t seed)
{
    auto backend = makeBackend(spec);
    Rng rng(seed);
    obs::TimedSpan setup("bench.setup");
    auto session = backend->open(noisy);
    const double setupSeconds = setup.seconds();
    setup.finish();
    const Result r = session->run(Sample{samples}, rng);
    std::printf("%-6s %2zu %4zu %-20s %10.4f %10.4f\n", workload, p, qubits,
                label.c_str(), r.meta.seconds, setupSeconds);
    bench::JsonRow("fig9")
        .field("workload", workload)
        .field("p", p)
        .field("qubits", qubits)
        .field("backend", label)
        .field("sample_sec", r.meta.seconds)
        .field("setup_sec", setupSeconds);
}

void
runRow(const char* workload, std::size_t p, std::size_t qubits,
       const Circuit& noisy, std::size_t samples, std::size_t dmMax,
       std::size_t ddMax, std::size_t svMax, std::size_t threads)
{
    if (qubits <= dmMax) {
        runBackendRow("densitymatrix:threads=1", "densitymatrix", workload,
                      p, qubits, noisy, samples, 1);
        if (threads > 1)
            runBackendRow("densitymatrix:threads=" + std::to_string(threads),
                          "dm+t" + std::to_string(threads), workload, p,
                          qubits, noisy, samples, 1);
    }

    // Trajectory cost model: one full re-simulation per sample, but the
    // trajectories are independent — the threaded row parallelizes them.
    if (qubits <= svMax) {
        runBackendRow("statevector:threads=1", "sv-traj", workload, p,
                      qubits, noisy, samples, 5);
        if (threads > 1)
            runBackendRow("statevector:threads=" + std::to_string(threads),
                          "sv-traj+t" + std::to_string(threads), workload, p,
                          qubits, noisy, samples, 5);
    }

    // Trajectory cost is one diagram rebuild per sample, and deep/noisy QAOA
    // diagrams lose their compactness — cap the row like the others.
    if (qubits <= ddMax)
        runBackendRow("decisiondiagram", "decisiondiagram", workload, p,
                      qubits, noisy, samples, 3);

    runBackendRow("knowledgecompilation:burnin=32", "knowledgecompilation",
                  workload, p, qubits, noisy, samples, 2);
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const std::size_t samples =
        static_cast<std::size_t>(cli.getInt("samples", 100));
    const std::size_t maxQubits =
        static_cast<std::size_t>(cli.getInt("max-qubits", 10));
    const std::size_t dmMax =
        static_cast<std::size_t>(cli.getInt("dm-max-qubits", 10));
    const std::size_t ddMax =
        static_cast<std::size_t>(cli.getInt("dd-max-qubits", 12));
    const std::size_t maxIterations =
        static_cast<std::size_t>(cli.getInt("max-iterations", 2));
    const std::size_t svMax =
        static_cast<std::size_t>(cli.getInt("sv-max-qubits", 12));
    const std::size_t threads = static_cast<std::size_t>(
        cli.getInt("threads", static_cast<std::int64_t>(defaultThreads())));
    const double noise = cli.getDouble("noise", 0.005);

    bench::printHeader(
        "Figure 9: noisy sampling time vs qubits (samples=" +
            std::to_string(samples) + ", depolarizing=" +
            std::to_string(noise) + ")",
        "# work   p  qub backend              sample_sec  setup_sec");

    for (std::size_t p = 1; p <= maxIterations; ++p) {
        for (std::size_t n = 4; n <= maxQubits; n += 2) {
            Circuit noisy = bench::qaoaCircuit(n, p, 19).withNoiseAfterEachGate(
                NoiseKind::Depolarizing, noise);
            runRow("qaoa", p, n, noisy, samples, dmMax, ddMax, svMax, threads);
        }
        for (std::size_t n : {4, 6, 9}) {
            if (n > maxQubits)
                break;
            Circuit noisy = bench::vqeCircuit(n, p, 19).withNoiseAfterEachGate(
                NoiseKind::Depolarizing, noise);
            runRow("vqe", p, n, noisy, samples, dmMax, ddMax, svMax, threads);
        }
    }
    return 0;
}
