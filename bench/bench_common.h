#ifndef QKC_BENCH_BENCH_COMMON_H
#define QKC_BENCH_BENCH_COMMON_H

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "vqa/workloads.h"

namespace qkc::bench {

/**
 * Workload builders shared by the figure/table harnesses. Instances are
 * deterministic per (size, seed) so runs are reproducible and the same
 * random graph is fed to every backend.
 */

/** QAOA Max-Cut circuit on a random 3-regular graph (paper Figures 8a/c). */
inline Circuit
qaoaCircuit(std::size_t qubits, std::size_t iterations, std::uint64_t seed,
            QaoaMaxCut* problemOut = nullptr)
{
    Rng rng(seed);
    auto problem = QaoaMaxCut::randomRegular(qubits, 3, iterations, rng);
    std::vector<double> params;
    for (std::size_t i = 0; i < problem.numParams(); ++i)
        params.push_back(i % 2 == 0 ? -0.55 : 0.35);  // near-optimal p=1 angles
    if (problemOut)
        *problemOut = problem;
    return problem.circuit(params);
}

/** VQE 2D-Ising circuit on an approximately square grid (Figures 8b/d). */
inline Circuit
vqeCircuit(std::size_t qubits, std::size_t iterations, std::uint64_t seed,
           VqeIsing* problemOut = nullptr)
{
    // Factor `qubits` into the most square rows x cols grid.
    std::size_t rows = 1;
    for (std::size_t r = 1; r * r <= qubits; ++r)
        if (qubits % r == 0)
            rows = r;
    std::size_t cols = qubits / rows;
    Rng rng(seed);
    VqeIsing problem(rows, cols, iterations, rng);
    std::vector<double> params;
    for (std::size_t i = 0; i < problem.numParams(); ++i)
        params.push_back(i % 2 == 0 ? -0.45 : 0.3);
    if (problemOut)
        *problemOut = problem;
    return problem.circuit(params);
}

/** Prints a table header comment. */
inline void
printHeader(const std::string& title, const std::string& columns)
{
    std::printf("# %s\n", title.c_str());
    std::printf("%s\n", columns.c_str());
}

/**
 * One machine-readable line per bench row, printed alongside the human
 * table row: `{"bench": "fig8", "workload": "qaoa", ...}`. JSON lines are
 * the only stdout lines starting with '{' (table rows start with a letter,
 * headers with '#'), so `grep '^{' > BENCH_fig8.json` recovers the series
 * for trend tracking. Fields keep insertion order; the destructor emits
 * the line, so a chained temporary prints at the end of its statement.
 */
class JsonRow {
  public:
    explicit JsonRow(const char* bench) { appendString("bench", bench); }

    ~JsonRow()
    {
        std::printf("{%s}\n", body_.c_str());
        std::fflush(stdout);
    }

    JsonRow(const JsonRow&) = delete;
    JsonRow& operator=(const JsonRow&) = delete;

    JsonRow& field(const char* key, const std::string& v)
    {
        appendString(key, v.c_str());
        return *this;
    }
    JsonRow& field(const char* key, const char* v)
    {
        appendString(key, v);
        return *this;
    }
    JsonRow& field(const char* key, double v)
    {
        char buf[32];
        // Bare NaN/Inf (a degenerate ratio) is not valid JSON.
        std::snprintf(buf, sizeof buf, "%.9g", std::isfinite(v) ? v : 0.0);
        appendRaw(key, buf);
        return *this;
    }
    JsonRow& field(const char* key, std::size_t v)
    {
        appendRaw(key, std::to_string(v).c_str());
        return *this;
    }

  private:
    // Keys and backend labels contain no quotes/backslashes; no escaping.
    void appendString(const char* key, const char* v)
    {
        appendKey(key);
        body_ += '"';
        body_ += v;
        body_ += '"';
    }
    void appendRaw(const char* key, const char* v)
    {
        appendKey(key);
        body_ += v;
    }
    void appendKey(const char* key)
    {
        if (!body_.empty())
            body_ += ", ";
        body_ += '"';
        body_ += key;
        body_ += "\": ";
    }

    std::string body_;
};

} // namespace qkc::bench

#endif // QKC_BENCH_BENCH_COMMON_H
