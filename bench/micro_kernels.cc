/**
 * google-benchmark microbenchmarks for the hot kernels of every simulator
 * family: state-vector gate application (seed generic path vs. specialized
 * kernels, serial vs. parallel, fused vs. unfused), AC upward/downward
 * passes, incremental re-evaluation after a parameter refresh, one Gibbs
 * sweep, and end-to-end knowledge compilation.
 *
 * The *_SeedGeneric rows reproduce the pre-exec dense loops exactly
 * (applyKernelReference); the *_Kernel rows run the specialized kernel with
 * the thread count in the second argument, so `ratio(SeedGeneric, Kernel)`
 * is the ISSUE-3 acceptance number.
 *
 * After the google-benchmark tables, a JSON-lines section (grep '^{')
 * compares the scalar, AVX2 and AVX-512 sweeps per kernel class and the
 * cache-blocked run sweep against the PR 7 gather-only sweep on a
 * high-stride target — `ratio(off, avx2)` on generic1q is the ISSUE-8
 * acceptance number.
 */
#include <benchmark/benchmark.h>

#include <chrono>

#include "ac/gibbs_sampler.h"
#include "ac/kc_simulator.h"
#include "bench_common.h"
#include "circuit/circuit.h"
#include "circuit/fusion.h"
#include "circuit/simulation_path.h"
#include "dd/dd_simulator.h"
#include "exec/gate_kernels.h"
#include "exec/simd.h"
#include "statevector/statevector_simulator.h"

using namespace qkc;

namespace {

ExecPolicy
policyWithThreads(std::int64_t threads)
{
    ExecPolicy p;
    p.threads = static_cast<std::size_t>(threads);
    return p;
}

GateKernel
kernelFor(const Gate& g, std::size_t n)
{
    std::vector<std::uint32_t> bits;
    for (std::size_t q : g.qubits())
        bits.push_back(static_cast<std::uint32_t>(n - 1 - q));
    return compileKernel(g.unitary(), bits);
}

// -- Single-qubit application: seed generic vs specialized+parallel ----------

void
BM_Apply1qSeedGeneric(benchmark::State& state)
{
    // The pre-exec path: serial dense 2x2 on every amplitude pair.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    StateVector sv(n);
    GateKernel t = kernelFor(Gate(GateKind::T, {0}), n);
    std::size_t q = 0;
    for (auto _ : state) {
        t.fullBits[0] = static_cast<std::uint32_t>(n - 1 - q);
        applyKernelReference(t, sv.data(), sv.dimension());
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (1LL << n));
}
BENCHMARK(BM_Apply1qSeedGeneric)->Arg(16)->Arg(20)->Arg(22);

void
BM_Apply1qKernel(benchmark::State& state)
{
    // Specialized kernel (T classifies as ctrl-diag: touches half the
    // amplitudes, multiply only), threads = second argument.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const ExecPolicy policy = policyWithThreads(state.range(1));
    StateVector sv(n);
    std::vector<GateKernel> kernels;
    for (std::size_t q = 0; q < n; ++q)
        kernels.push_back(kernelFor(Gate(GateKind::T, {q}), n));
    std::size_t q = 0;
    for (auto _ : state) {
        applyKernel(kernels[q], sv.data(), sv.dimension(), policy);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (1LL << n));
}
BENCHMARK(BM_Apply1qKernel)
    ->Args({16, 1})->Args({20, 1})->Args({22, 1})
    ->Args({16, 2})->Args({20, 2})->Args({22, 2})
    ->Args({20, 4})->Args({22, 4})
    ->Args({20, 8})->Args({22, 8});

void
BM_ApplyHGenericKernel(benchmark::State& state)
{
    // H stays in the generic class: this isolates the parallel_for gain
    // from the specialization gain.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const ExecPolicy policy = policyWithThreads(state.range(1));
    StateVector sv(n);
    std::vector<GateKernel> kernels;
    for (std::size_t q = 0; q < n; ++q)
        kernels.push_back(kernelFor(Gate(GateKind::H, {q}), n));
    std::size_t q = 0;
    for (auto _ : state) {
        applyKernel(kernels[q], sv.data(), sv.dimension(), policy);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (1LL << n));
}
BENCHMARK(BM_ApplyHGenericKernel)
    ->Args({20, 1})->Args({20, 2})->Args({20, 4})->Args({20, 8});

// -- Two-qubit application ---------------------------------------------------

void
BM_ApplyCnotSeedGeneric(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    StateVector sv(n);
    std::size_t q = 0;
    for (auto _ : state) {
        applyKernelReference(
            kernelFor(Gate(GateKind::CNOT, {q, (q + 1) % n}), n), sv.data(),
            sv.dimension());
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (1LL << n));
}
BENCHMARK(BM_ApplyCnotSeedGeneric)->Arg(16)->Arg(20);

void
BM_ApplyCnotKernel(benchmark::State& state)
{
    // CNOT classifies as ctrl-perm: a gather-free swap on the controlled
    // half of the amplitudes.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const ExecPolicy policy = policyWithThreads(state.range(1));
    StateVector sv(n);
    std::vector<GateKernel> kernels;
    for (std::size_t q = 0; q < n; ++q)
        kernels.push_back(kernelFor(Gate(GateKind::CNOT, {q, (q + 1) % n}), n));
    std::size_t q = 0;
    for (auto _ : state) {
        applyKernel(kernels[q], sv.data(), sv.dimension(), policy);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (1LL << n));
}
BENCHMARK(BM_ApplyCnotKernel)
    ->Args({16, 1})->Args({20, 1})->Args({16, 2})->Args({20, 2})
    ->Args({20, 4})->Args({20, 8});

// -- Fusion ------------------------------------------------------------------

void
BM_SimulateQaoaUnfused(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const Circuit c = bench::qaoaCircuit(n, 2, 19);
    ExecPolicy policy = policyWithThreads(state.range(1));
    policy.fuseGates = false;
    StateVectorSimulator sim(policy);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.simulate(c).amplitude(0));
    state.counters["gates"] = static_cast<double>(c.gateCount());
}
BENCHMARK(BM_SimulateQaoaUnfused)->Args({16, 1})->Args({20, 1})->Args({20, 4});

void
BM_SimulateQaoaFused(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    const Circuit c = bench::qaoaCircuit(n, 2, 19);
    ExecPolicy policy = policyWithThreads(state.range(1));
    policy.fuseGates = true;
    StateVectorSimulator sim(policy);
    FusionStats stats;
    const Circuit fused = fuseGates(c, {}, &stats);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.simulate(c).amplitude(0));
    state.counters["gates"] = static_cast<double>(stats.gatesOut);
}
BENCHMARK(BM_SimulateQaoaFused)->Args({16, 1})->Args({20, 1})->Args({20, 4});

// -- Legacy rows (kept for continuity with earlier runs) ---------------------

void
BM_StateVectorHadamard(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    StateVector sv(n);
    Matrix h = Gate(GateKind::H, {0}).unitary();
    std::size_t q = 0;
    for (auto _ : state) {
        sv.applySingleQubit(h, q);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (1LL << n));
}
BENCHMARK(BM_StateVectorHadamard)->Arg(12)->Arg(16)->Arg(20);

void
BM_StateVectorCnot(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    StateVector sv(n);
    Matrix u = Gate(GateKind::CNOT, {0, 1}).unitary();
    std::size_t q = 0;
    for (auto _ : state) {
        sv.applyTwoQubit(u, q, (q + 1) % n);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (1LL << n));
}
BENCHMARK(BM_StateVectorCnot)->Arg(12)->Arg(16)->Arg(20);

void
BM_AcUpwardPass(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    KcSimulator kc(bench::qaoaCircuit(n, 1, 19));
    std::uint64_t x = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(kc.amplitude(x));
        x = (x + 1) & ((std::uint64_t{1} << n) - 1);
    }
    state.counters["ac_nodes"] =
        static_cast<double>(kc.metrics().acNodes);
}
BENCHMARK(BM_AcUpwardPass)->Arg(8)->Arg(16)->Arg(24);

void
BM_AcDownwardPass(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    KcSimulator kc(bench::qaoaCircuit(n, 1, 19));
    kc.amplitude(0);
    for (auto _ : state) {
        kc.evaluator().computeDerivatives();
        benchmark::DoNotOptimize(kc.evaluator().derivative(0, 1));
    }
}
BENCHMARK(BM_AcDownwardPass)->Arg(8)->Arg(16)->Arg(24);

void
BM_ParamRefreshEvaluate(benchmark::State& state)
{
    // The variational inner loop: new angles -> refresh leaves -> amplitude.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Circuit base = bench::qaoaCircuit(n, 1, 19);
    KcSimulator kc(base);
    double gamma = -0.55;
    for (auto _ : state) {
        gamma += 0.001;
        Circuit c = base;
        for (std::size_t idx : c.parameterizedGateIndices())
            c.setGateParam(idx, gamma);
        kc.refreshParams(c);
        benchmark::DoNotOptimize(kc.amplitude(0));
    }
}
BENCHMARK(BM_ParamRefreshEvaluate)->Arg(8)->Arg(16);

void
BM_GibbsSweep(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    KcSimulator kc(bench::qaoaCircuit(n, 1, 19));
    GibbsSampler sampler(kc.bayesNet(), kc.evaluator());
    Rng rng(5);
    sampler.init(rng);
    for (auto _ : state)
        sampler.sweep(rng);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_GibbsSweep)->Arg(8)->Arg(16)->Arg(24);

void
BM_CompileQaoa(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Circuit c = bench::qaoaCircuit(n, 1, 19);
    for (auto _ : state) {
        KcSimulator kc(c);
        benchmark::DoNotOptimize(kc.metrics().acNodes);
    }
}
BENCHMARK(BM_CompileQaoa)->Arg(8)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void
BM_CircuitToBayesNet(benchmark::State& state)
{
    Circuit c = bench::qaoaCircuit(16, 2, 19);
    for (auto _ : state) {
        auto bn = circuitToBayesNet(c);
        benchmark::DoNotOptimize(bn.variables().size());
    }
}
BENCHMARK(BM_CircuitToBayesNet);

// -- SIMD dispatch-level comparison (JSON lines) -----------------------------

double
secondsPerApply(const GateKernel& kernel, StateVector& sv,
                const ExecPolicy& policy, bool blocked)
{
    // One warm-up pass, then the minimum over `reps` timed applies — the
    // minimum rejects scheduler noise; the payloads are unitary so the
    // state stays finite across reps.
    const auto apply = [&] {
        if (blocked)
            applyKernel(kernel, sv.data(), sv.dimension(), policy);
        else
            applyKernelUnblocked(kernel, sv.data(), sv.dimension(), policy);
    };
    apply();
    const int reps = 10;
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        apply();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        if (r == 0 || elapsed.count() < best)
            best = elapsed.count();
    }
    return best;
}

/** One row per (kernel class, simd level): ns/amp + speedup vs scalar. */
void
runSimdComparison(std::size_t n)
{
    struct Case {
        const char* name;
        Gate gate;
    };
    const Case cases[] = {
        {"generic1q", Gate(GateKind::H, {1})},
        {"diag1q", Gate(GateKind::Rz, {1}, 0.7)},
        {"diag2q", Gate(GateKind::ZZ, {1, 2}, 0.4)},
        {"perm1q", Gate(GateKind::X, {1})},
        {"ctrlperm", Gate(GateKind::CNOT, {1, 2})},
    };
    std::vector<SimdMode> modes = {SimdMode::Off};
    if (activeSimdLevel() >= SimdLevel::Avx2)
        modes.push_back(SimdMode::Avx2);
    if (activeSimdLevel() >= SimdLevel::Avx512)
        modes.push_back(SimdMode::Avx512);

    std::printf("# simd sweep comparison, %zu qubits, threads=1\n", n);
    const double amps = static_cast<double>(std::uint64_t{1} << n);
    StateVector sv(n);
    for (const Case& c : cases) {
        const GateKernel kernel = kernelFor(c.gate, n);
        double scalarSec = 0.0;
        for (SimdMode mode : modes) {
            ExecPolicy policy;
            policy.threads = 1;
            policy.simd = mode;
            const double sec = secondsPerApply(kernel, sv, policy, true);
            if (mode == SimdMode::Off)
                scalarSec = sec;
            const char* level = simdLevelName(resolveSimdMode(mode));
            std::printf("simd %-10s %-7s %8.3f ns/amp  x%.2f\n", c.name,
                        level, sec / amps * 1e9, scalarSec / sec);
            bench::JsonRow("micro_kernels")
                .field("kernel", c.name)
                .field("qubits", n)
                .field("simd", level)
                .field("path", "linear")
                .field("sec_per_apply", sec)
                .field("speedup_vs_scalar", scalarSec / sec);
        }
    }
}

/**
 * Blocked vs gather-only sweep on a high-stride target (residual bit
 * >= 20): the blocked sweep streams unit-stride runs where the gather
 * sweep strides 2^bit through the array.
 */
void
runBlockedComparison(std::size_t n)
{
    // Qubit 1 of n maps to bit n-2: 22 qubits puts the target at bit 20,
    // giving 2^20-amplitude runs.
    const Gate gate(GateKind::H, {1});
    const GateKernel kernel = kernelFor(gate, n);
    StateVector sv(n);
    ExecPolicy policy;
    policy.threads = 1;
    const char* level = simdLevelName(policy.resolvedSimd());

    std::printf("# blocked vs gather sweep, %zu qubits, target bit %zu\n", n,
                n - 2);
    const double amps = static_cast<double>(std::uint64_t{1} << n);
    const double gatherSec = secondsPerApply(kernel, sv, policy, false);
    const double blockedSec = secondsPerApply(kernel, sv, policy, true);
    std::printf("sweep gather  %-7s %8.3f ns/amp\n", level,
                gatherSec / amps * 1e9);
    std::printf("sweep blocked %-7s %8.3f ns/amp  x%.2f\n", level,
                blockedSec / amps * 1e9, gatherSec / blockedSec);
    bench::JsonRow("micro_kernels")
        .field("kernel", "generic1q_highstride")
        .field("qubits", n)
        .field("simd", level)
        .field("path", "linear")
        .field("mode", "gather")
        .field("sec_per_apply", gatherSec);
    bench::JsonRow("micro_kernels")
        .field("kernel", "generic1q_highstride")
        .field("qubits", n)
        .field("simd", level)
        .field("path", "linear")
        .field("mode", "blocked")
        .field("sec_per_apply", blockedSec)
        .field("speedup_vs_gather", gatherSec / blockedSec);
}

// -- Simulation-path comparison (JSON lines) ---------------------------------

/**
 * The dd build along the linear chain vs the pairwise contraction tree on a
 * structured QAOA ladder: same circuit, same final state, but the pairwise
 * tree fuses whole layers into one matrix DD (multiplyMM) before a single
 * apply touches the state — the row reports the MxM products that cost and
 * the apply-table lookups it saves.
 */
void
runPathComparison(std::size_t n)
{
    const Circuit c = bench::qaoaCircuit(n, 2, 19);
    std::printf("# dd simulation-path comparison, %zu qubits, qaoa p=2\n", n);
    for (const char* planner : {"linear", "pairwise"}) {
        PathOptions options;
        parsePathPlanner(planner, &options);
        const SimulationPath path = planSimulationPath(c, options);
        DdSimulator sim;
        DdPathStats stats;
        const auto start = std::chrono::steady_clock::now();
        const VEdge state = sim.simulatePath(c, path, &stats);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        (void)state;
        const DdStats& s = sim.package().stats();
        const std::uint64_t applyLookups = s.applyHits + s.applyMisses;
        std::printf("ddpath %-8s %10.4f ms  mm=%zu  apply_lookups=%llu\n",
                    planner, elapsed.count() * 1e3, stats.mmProducts,
                    static_cast<unsigned long long>(applyLookups));
        bench::JsonRow("micro_kernels")
            .field("kernel", "dd_build")
            .field("qubits", n)
            .field("path", planner)
            .field("build_sec", elapsed.count())
            .field("mm_products", stats.mmProducts)
            .field("apply_lookups", applyLookups);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    runSimdComparison(20);
    runBlockedComparison(22);
    runPathComparison(8);
    return 0;
}
