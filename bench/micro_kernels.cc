/**
 * google-benchmark microbenchmarks for the hot kernels of every simulator
 * family: state-vector gate application, AC upward/downward passes,
 * incremental re-evaluation after a parameter refresh, one Gibbs sweep, and
 * end-to-end knowledge compilation.
 */
#include <benchmark/benchmark.h>

#include "ac/gibbs_sampler.h"
#include "ac/kc_simulator.h"
#include "bench_common.h"
#include "circuit/circuit.h"
#include "statevector/statevector_simulator.h"

using namespace qkc;

namespace {

void
BM_StateVectorHadamard(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    StateVector sv(n);
    Matrix h = Gate(GateKind::H, {0}).unitary();
    std::size_t q = 0;
    for (auto _ : state) {
        sv.applySingleQubit(h, q);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (1LL << n));
}
BENCHMARK(BM_StateVectorHadamard)->Arg(12)->Arg(16)->Arg(20);

void
BM_StateVectorCnot(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    StateVector sv(n);
    Matrix u = Gate(GateKind::CNOT, {0, 1}).unitary();
    std::size_t q = 0;
    for (auto _ : state) {
        sv.applyTwoQubit(u, q, (q + 1) % n);
        q = (q + 1) % n;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            (1LL << n));
}
BENCHMARK(BM_StateVectorCnot)->Arg(12)->Arg(16)->Arg(20);

void
BM_AcUpwardPass(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    KcSimulator kc(bench::qaoaCircuit(n, 1, 19));
    std::uint64_t x = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(kc.amplitude(x));
        x = (x + 1) & ((std::uint64_t{1} << n) - 1);
    }
    state.counters["ac_nodes"] =
        static_cast<double>(kc.metrics().acNodes);
}
BENCHMARK(BM_AcUpwardPass)->Arg(8)->Arg(16)->Arg(24);

void
BM_AcDownwardPass(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    KcSimulator kc(bench::qaoaCircuit(n, 1, 19));
    kc.amplitude(0);
    for (auto _ : state) {
        kc.evaluator().computeDerivatives();
        benchmark::DoNotOptimize(kc.evaluator().derivative(0, 1));
    }
}
BENCHMARK(BM_AcDownwardPass)->Arg(8)->Arg(16)->Arg(24);

void
BM_ParamRefreshEvaluate(benchmark::State& state)
{
    // The variational inner loop: new angles -> refresh leaves -> amplitude.
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Circuit base = bench::qaoaCircuit(n, 1, 19);
    KcSimulator kc(base);
    double gamma = -0.55;
    for (auto _ : state) {
        gamma += 0.001;
        Circuit c = base;
        for (std::size_t idx : c.parameterizedGateIndices())
            c.setGateParam(idx, gamma);
        kc.refreshParams(c);
        benchmark::DoNotOptimize(kc.amplitude(0));
    }
}
BENCHMARK(BM_ParamRefreshEvaluate)->Arg(8)->Arg(16);

void
BM_GibbsSweep(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    KcSimulator kc(bench::qaoaCircuit(n, 1, 19));
    GibbsSampler sampler(kc.bayesNet(), kc.evaluator());
    Rng rng(5);
    sampler.init(rng);
    for (auto _ : state)
        sampler.sweep(rng);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_GibbsSweep)->Arg(8)->Arg(16)->Arg(24);

void
BM_CompileQaoa(benchmark::State& state)
{
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    Circuit c = bench::qaoaCircuit(n, 1, 19);
    for (auto _ : state) {
        KcSimulator kc(c);
        benchmark::DoNotOptimize(kc.metrics().acNodes);
    }
}
BENCHMARK(BM_CompileQaoa)->Arg(8)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void
BM_CircuitToBayesNet(benchmark::State& state)
{
    Circuit c = bench::qaoaCircuit(16, 2, 19);
    for (auto _ : state) {
        auto bn = circuitToBayesNet(c);
        benchmark::DoNotOptimize(bn.variables().size());
    }
}
BENCHMARK(BM_CircuitToBayesNet);

} // namespace

BENCHMARK_MAIN();
