/**
 * Ablation for the paper's central reuse claim (Section 3.2.1): a
 * variational loop that refreshes the compiled AC's weight leaves versus
 * one that recompiles the circuit on every optimizer iteration. The ratio
 * is the amortization benefit knowledge compilation delivers to
 * variational workloads.
 */
#include <cstdio>

#include "ac/kc_simulator.h"
#include "bench_common.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace qkc;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const std::size_t iterations =
        static_cast<std::size_t>(cli.getInt("iterations", 50));
    const std::size_t maxQubits =
        static_cast<std::size_t>(cli.getInt("max-qubits", 20));

    bench::printHeader(
        "Variational reuse: refresh-leaves vs recompile-per-iteration (" +
            std::to_string(iterations) + " iterations)",
        "qubits\trecompile_s\trefresh_s\tspeedup");

    for (std::size_t n = 8; n <= maxQubits; n += 4) {
        Circuit base = bench::qaoaCircuit(n, 1, 19);
        auto paramIdx = base.parameterizedGateIndices();

        // Strategy A: recompile each iteration.
        Timer tA;
        for (std::size_t it = 0; it < iterations; ++it) {
            Circuit c = base;
            for (std::size_t idx : paramIdx)
                c.setGateParam(idx, -0.5 + 0.01 * static_cast<double>(it));
            KcSimulator kc(c);
            kc.amplitude(0);
        }
        double recompile = tA.seconds();

        // Strategy B: compile once, refresh leaves.
        Timer tB;
        KcSimulator kc(base);
        for (std::size_t it = 0; it < iterations; ++it) {
            Circuit c = base;
            for (std::size_t idx : paramIdx)
                c.setGateParam(idx, -0.5 + 0.01 * static_cast<double>(it));
            kc.refreshParams(c);
            kc.amplitude(0);
        }
        double refresh = tB.seconds();

        std::printf("%zu\t%.3f\t%.3f\t%.1fx\n", n, recompile, refresh,
                    recompile / refresh);
        std::fflush(stdout);
    }
    return 0;
}
