/**
 * Ablation for the paper's central reuse claim (Section 3.2.1): a
 * variational loop that refreshes the compiled AC's weight leaves versus
 * one that recompiles the circuit on every optimizer iteration. The ratio
 * is the amortization benefit knowledge compilation delivers to
 * variational workloads.
 */
#include <cstdio>

#include "ac/kc_simulator.h"
#include "bench_common.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "vqa/backends.h"

using namespace qkc;

namespace {

/**
 * The same ablation through the Session API, for the dense backends: the
 * per-iteration *structure* cost of reopening a session — greedy fusion
 * plus kernel classification — versus rebinding one open session, which
 * replays the recorded fusion recipe and refreshes the compiled kernels
 * in place. Task execution time is identical either way, so the loops
 * time open/bind alone: exactly the work a planReuses increment certifies
 * was skipped. The dm row is the point of the ISSUE 5 fix — it previously
 * claimed reuse while re-running both inside every simulate call.
 */
void
sessionRebindRow(const char* spec, std::size_t qubits, std::size_t iterations)
{
    auto backend = makeBackend(spec);
    Circuit base = bench::qaoaCircuit(qubits, 2, 19);
    const auto paramIdx = base.parameterizedGateIndices();

    auto bindingAt = [&](std::size_t it) {
        Circuit c = base;
        for (std::size_t idx : paramIdx)
            c.setGateParam(idx, -0.5 + 0.01 * static_cast<double>(it));
        return c;
    };

    // Strategy A: reopen (re-plan) each iteration.
    obs::TimedSpan tA("bench.reopen");
    for (std::size_t it = 0; it < iterations; ++it)
        backend->open(bindingAt(it));
    const double reopen = tA.seconds();
    tA.finish();

    // Strategy B: open once, rebind parameters.
    auto session = backend->open(base);
    obs::TimedSpan tB("bench.rebind");
    for (std::size_t it = 0; it < iterations; ++it)
        session->bind(bindingAt(it));
    const double rebind = tB.seconds();
    tB.finish();

    std::printf("%-14s %zu\t%.3f\t%.3f\t%.1fx\t(planBuilds=%zu "
                "planReuses=%zu)\n",
                backend->name().c_str(), qubits, reopen, rebind,
                reopen / rebind, session->planBuilds(),
                session->planReuses());
    bench::JsonRow("refresh_speedup")
        .field("section", "session_rebind")
        .field("backend", backend->name())
        .field("qubits", qubits)
        .field("reopen_sec", reopen)
        .field("rebind_sec", rebind)
        .field("speedup", reopen / rebind);
}

/**
 * The dd flavor of the rebind ablation. Diagram contents are
 * value-dependent, so a dd bind is lazy — open/bind alone measures
 * nothing. Each iteration therefore runs one cheap task (a single
 * amplitude), forcing the state build either into a brand-new package
 * (reopen) or into the session's persistent, garbage-collected package
 * (rebind), where collected nodes come back through the free lists and
 * the unique/complex tables keep their bucket storage warm. Before
 * ISSUE 6 gave DdPackage a GC, rebinding rebuilt the world exactly like
 * reopening and this row would sit at 1.0x.
 *
 * The workload is a GHZ ladder with parameterized rotation layers — the
 * structured, linear-size-diagram regime dd exists for. On a dense-state
 * workload (QAOA on a random graph) the 2^n-path diagram build dominates
 * both strategies identically and the structural saving is invisible,
 * the same reason the dm row caps its qubit count above.
 */
void
ddRebindRow(std::size_t qubits, std::size_t iterations)
{
    auto backend = makeBackend("dd:gc=1");
    Circuit base(qubits);
    base.h(0);
    for (std::size_t q = 1; q < qubits; ++q)
        base.cnot(q - 1, q);
    for (std::size_t q = 0; q < qubits; ++q)
        base.rz(q, 0.3);
    const auto paramIdx = base.parameterizedGateIndices();

    auto bindingAt = [&](std::size_t it) {
        Circuit c = base;
        for (std::size_t idx : paramIdx)
            c.setGateParam(idx, -0.5 + 0.01 * static_cast<double>(it));
        return c;
    };
    const Task task = Amplitudes{{0}};

    // Strategy A: reopen (fresh package) each iteration.
    Rng rngA(19);
    obs::TimedSpan tA("bench.reopen");
    for (std::size_t it = 0; it < iterations; ++it)
        backend->open(bindingAt(it))->run(task, rngA);
    const double reopen = tA.seconds();
    tA.finish();

    // Strategy B: open once, rebind into the persistent package.
    auto session = backend->open(base);
    Rng rngB(19);
    obs::TimedSpan tB("bench.rebind");
    for (std::size_t it = 0; it < iterations; ++it) {
        session->bind(bindingAt(it));
        session->run(task, rngB);
    }
    const double rebind = tB.seconds();
    tB.finish();

    std::printf("%-14s %zu\t%.3f\t%.3f\t%.1fx\t(planBuilds=%zu "
                "planReuses=%zu)\n",
                backend->name().c_str(), qubits, reopen, rebind,
                reopen / rebind, session->planBuilds(),
                session->planReuses());
    bench::JsonRow("refresh_speedup")
        .field("section", "session_rebind")
        .field("backend", backend->name())
        .field("qubits", qubits)
        .field("reopen_sec", reopen)
        .field("rebind_sec", rebind)
        .field("speedup", reopen / rebind);
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const std::size_t iterations =
        static_cast<std::size_t>(cli.getInt("iterations", 50));
    const std::size_t maxQubits =
        static_cast<std::size_t>(cli.getInt("max-qubits", 20));

    bench::printHeader(
        "Variational reuse: refresh-leaves vs recompile-per-iteration (" +
            std::to_string(iterations) + " iterations)",
        "qubits\trecompile_s\trefresh_s\tspeedup");

    for (std::size_t n = 8; n <= maxQubits; n += 4) {
        Circuit base = bench::qaoaCircuit(n, 1, 19);
        auto paramIdx = base.parameterizedGateIndices();

        // Strategy A: recompile each iteration.
        obs::TimedSpan tA("bench.recompile");
        for (std::size_t it = 0; it < iterations; ++it) {
            Circuit c = base;
            for (std::size_t idx : paramIdx)
                c.setGateParam(idx, -0.5 + 0.01 * static_cast<double>(it));
            KcSimulator kc(c);
            kc.amplitude(0);
        }
        double recompile = tA.seconds();
        tA.finish();

        // Strategy B: compile once, refresh leaves.
        obs::TimedSpan tB("bench.refresh");
        KcSimulator kc(base);
        for (std::size_t it = 0; it < iterations; ++it) {
            Circuit c = base;
            for (std::size_t idx : paramIdx)
                c.setGateParam(idx, -0.5 + 0.01 * static_cast<double>(it));
            kc.refreshParams(c);
            kc.amplitude(0);
        }
        double refresh = tB.seconds();
        tB.finish();

        std::printf("%zu\t%.3f\t%.3f\t%.1fx\n", n, recompile, refresh,
                    recompile / refresh);
        bench::JsonRow("refresh_speedup")
            .field("section", "kc_refresh")
            .field("qubits", n)
            .field("recompile_sec", recompile)
            .field("refresh_sec", refresh)
            .field("speedup", recompile / refresh);
    }

    bench::printHeader(
        "Session rebind vs reopen, dense backends (" +
            std::to_string(iterations) + " iterations)",
        "backend        qubits\treopen_s\trebind_s\tspeedup");
    sessionRebindRow("sv:threads=1", std::min<std::size_t>(maxQubits, 16),
                     iterations);
    // dm at 8 qubits: past this the 4^n superoperator sweeps drown the
    // classification cost the rebind saves, understating the plan's value.
    sessionRebindRow("dm:threads=1", std::min<std::size_t>(maxQubits, 8),
                     iterations);
    ddRebindRow(maxQubits, iterations);
    return 0;
}
