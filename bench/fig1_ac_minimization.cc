/**
 * Regenerates Figure 1's qualitative claim: the optimizations (internal
 * qubit-state elision, structure-aware decision order, component caching,
 * unit resolution) shrink the arithmetic circuit compiled from a 4-qubit
 * noisy QAOA circuit, and the reduced AC is equivalent (same amplitudes).
 *
 * Also doubles as the ablation study for the design choices in DESIGN.md.
 */
#include <cstdio>

#include "ac/kc_simulator.h"
#include "bench_common.h"
#include "circuit/circuit.h"
#include "cnf/bn_to_cnf.h"
#include "knowledge/compiler.h"
#include "util/cli.h"
#include "util/timer.h"

using namespace qkc;

namespace {

struct Config {
    const char* label;
    CompileOptions options;
    bool unitResolution;
};

void
report(const Circuit& circuit, const Config& config)
{
    Timer t;
    auto bn = circuitToBayesNet(circuit);
    Cnf cnf = bayesNetToCnf(bn, {.unitResolution = config.unitResolution});
    KnowledgeCompiler compiler(config.options);
    ArithmeticCircuit ac = compiler.compile(cnf);
    double seconds = t.seconds();
    std::printf("%-28s %8zu %9zu %9zu %10zu %9.3f\n", config.label,
                cnf.numClauses(), ac.liveNodeCount(), ac.liveEdgeCount(),
                compiler.stats().decisions, seconds);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::size_t qubits = static_cast<std::size_t>(cli.getInt("qubits", 4));
    double noise = cli.getDouble("noise", 0.005);

    Circuit circuit = bench::qaoaCircuit(qubits, 1, 7)
                          .withNoiseAfterEachGate(NoiseKind::Depolarizing,
                                                  noise);
    std::printf("# Figure 1: AC minimization for a %zu-qubit noisy QAOA "
                "circuit (%zu ops)\n",
                qubits, circuit.size());
    std::printf("%-28s %8s %9s %9s %10s %9s\n", "configuration", "clauses",
                "ac_nodes", "ac_edges", "decisions", "seconds");

    // "Before": direct compilation — lexicographic (time) order, no unit
    // resolution, no internal-state elision. Component caching stays on in
    // every configuration (as in c2d); without it the direct configuration
    // is intractable even at four qubits.
    CompileOptions plain;
    plain.heuristic = DecisionHeuristic::Lexicographic;
    plain.componentCaching = true;
    plain.componentDecomposition = true;
    plain.elideInternalStates = false;

    Config before{"before (direct)", plain, false};
    report(circuit, before);

    Config unit = before;
    unit.label = "+ unit resolution";
    unit.unitResolution = true;
    report(circuit, unit);

    Config elide = unit;
    elide.label = "+ state elision";
    elide.options.elideInternalStates = true;
    report(circuit, elide);

    Config order = elide;
    order.label = "+ min-fill order (after)";
    order.options.heuristic = DecisionHeuristic::MinFill;
    report(circuit, order);

    Config dynamic = order;
    dynamic.label = "ablation: dynamic order";
    dynamic.options.heuristic = DecisionHeuristic::Dynamic;
    report(circuit, dynamic);

    // Caching / decomposition ablations run on the ideal circuit: without
    // component decomposition the noisy encoding is intractable even at
    // four qubits (which is itself the point of the optimization).
    Circuit ideal = bench::qaoaCircuit(qubits, 1, 7);
    std::printf("# ablations on the ideal %zu-qubit QAOA circuit:\n", qubits);
    for (bool cache : {true, false}) {
        for (bool decomp : {true, false}) {
            Config config = order;
            config.options.componentCaching = cache;
            config.options.componentDecomposition = decomp;
            config.label = cache ? (decomp ? "cache+decomposition"
                                           : "cache, no decomposition")
                                 : (decomp ? "no cache, decomposition"
                                           : "no cache, no decomposition");
            report(ideal, config);
        }
    }

    // Equivalence check between the two extremes: the upward-pass amplitude
    // of random (outcome, noise-assignment) pairs must agree exactly.
    KcSimulator beforeSim(circuit, plain);
    KcSimulator afterSim(circuit, order.options);
    const auto& noiseVars = beforeSim.bayesNet().noiseVars();
    Rng rng(123);
    double maxDiff = 0.0;
    for (int trial = 0; trial < 256; ++trial) {
        std::uint64_t x = rng.below(std::uint64_t{1} << qubits);
        std::vector<std::size_t> nu;
        nu.reserve(noiseVars.size());
        for (BnVarId v : noiseVars)
            nu.push_back(rng.below(
                beforeSim.bayesNet().variable(v).cardinality));
        double d = std::abs(beforeSim.amplitude(x, nu) -
                            afterSim.amplitude(x, nu));
        maxDiff = std::max(maxDiff, d);
    }
    std::printf("# equivalence: max |A_before - A_after| over 256 random "
                "path families = %.2e\n", maxDiff);
    return 0;
}
