/**
 * Regenerates Table 6: intermediate compilation result metrics (gate /
 * BN-node count, CNF clauses, AC nodes, AC edges, serialized AC size) for
 * the largest problem instances of the Figure 8 / Figure 9 sweeps.
 *
 * Default sizes are the single-core-friendly reductions; pass
 * --ideal-qaoa=32 --ideal-vqe=25 --noisy-qaoa=12 --noisy-vqe=9 and
 * --max-iterations=2 for the paper's instance sizes.
 */
#include <cstdio>

#include "ac/kc_simulator.h"
#include "bench_common.h"
#include "util/cli.h"

using namespace qkc;

namespace {

void
row(const char* label, std::size_t p, const Circuit& circuit)
{
    KcSimulator kc(circuit);
    auto m = kc.metrics();
    std::printf("%-12s %2zu %6zu %7zu %9zu %10zu %10zu %11zu %9.3f\n", label,
                p, circuit.numQubits(), circuit.size(), m.cnfClauses,
                m.acNodes, m.acEdges, m.acFileBytes, m.compileSeconds);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::size_t idealQaoa =
        static_cast<std::size_t>(cli.getInt("ideal-qaoa", 32));
    std::size_t idealVqe = static_cast<std::size_t>(cli.getInt("ideal-vqe", 25));
    std::size_t noisyQaoa =
        static_cast<std::size_t>(cli.getInt("noisy-qaoa", 12));
    std::size_t noisyVqe = static_cast<std::size_t>(cli.getInt("noisy-vqe", 9));
    std::size_t maxIter =
        static_cast<std::size_t>(cli.getInt("max-iterations", 2));
    std::size_t idealP2Qaoa =
        static_cast<std::size_t>(cli.getInt("ideal-qaoa-p2", 20));
    double noise = cli.getDouble("noise", 0.005);

    bench::printHeader(
        "Table 6: intermediate compilation metrics for the largest instances",
        "# workload    p qubits     ops  cnf_cls   ac_nodes   ac_edges  "
        "ac_bytes     compile_s");

    for (std::size_t p = 1; p <= maxIter; ++p) {
        std::size_t nQaoa = p == 1 ? idealQaoa : idealP2Qaoa;
        row("ideal_qaoa", p, bench::qaoaCircuit(nQaoa, p, 19));
        row("ideal_vqe", p, bench::vqeCircuit(idealVqe, p, 19));
    }
    for (std::size_t p = 1; p <= maxIter; ++p) {
        row("noisy_qaoa", p,
            bench::qaoaCircuit(noisyQaoa, p, 19)
                .withNoiseAfterEachGate(NoiseKind::Depolarizing, noise));
        row("noisy_vqe", p,
            bench::vqeCircuit(noisyVqe, p, 19)
                .withNoiseAfterEachGate(NoiseKind::Depolarizing, noise));
    }
    return 0;
}
