/**
 * Regenerates the paper's running example: Figure 2 / Tables 2, 3 and 5.
 *
 * Builds the noisy Bell circuit (H, phase damping gamma = 0.36, CNOT),
 * prints its Bayesian network, the CNF encoding, and the Table 5 upward-pass
 * amplitude table with the two density-matrix components.
 *
 * Note on signs: the paper derives the noise entries from an equivalent
 * Ry-rotation construction, giving -0.6; the Kraus-operator convention used
 * here gives +0.6. Squared magnitudes (all probabilities and the density
 * matrix) are identical.
 */
#include <cmath>
#include <cstdio>
#include <sstream>

#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "cnf/cnf.h"
#include "util/cli.h"

using namespace qkc;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    double gamma = cli.getDouble("gamma", 0.36);

    Circuit circuit = noisyBellCircuit(gamma);
    std::printf("=== Noisy Bell circuit (Figure 2a) ===\n%s\n",
                circuit.toString().c_str());

    KcSimulator kc(circuit);
    std::printf("=== Bayesian network (Figure 2c) ===\n%s\n",
                kc.bayesNet().summary().c_str());

    std::printf("=== Conditional amplitude tables (Table 2) ===\n");
    const auto& bn = kc.bayesNet();
    for (const auto& pot : bn.potentials()) {
        if (pot.sourceOp == SIZE_MAX)
            continue;
        std::printf("potential over:");
        for (BnVarId v : pot.vars)
            std::printf(" %s", bn.variable(v).name.c_str());
        std::printf("\n  entries:");
        for (const auto& e : pot.entries) {
            switch (e.kind) {
              case BnEntryKind::StructuralZero: std::printf(" 0"); break;
              case BnEntryKind::StructuralOne: std::printf(" 1"); break;
              case BnEntryKind::Parameter:
                std::printf(" %.4f", bn.paramValues()[e.paramId].real());
                break;
            }
        }
        std::printf("\n");
    }

    std::printf("\n=== CNF encoding (Table 3; extended DIMACS) ===\n");
    std::ostringstream dimacs;
    kc.cnf().writeDimacs(dimacs);
    std::printf("%s\n", dimacs.str().c_str());

    auto m = kc.metrics();
    std::printf("=== Arithmetic circuit (Figure 5) ===\n");
    std::printf("nodes=%zu edges=%zu file=%zuB compile=%.4fs\n\n", m.acNodes,
                m.acEdges, m.acFileBytes, m.compileSeconds);

    std::printf("=== Upward pass (Table 5) ===\n");
    std::printf("%-8s %-6s %-6s %-12s\n", "q0m2rv", "q0", "q1", "amplitude");
    for (std::size_t rv = 0; rv < 2; ++rv) {
        for (std::uint64_t x = 0; x < 4; ++x) {
            Complex a = kc.amplitude(x, {rv});
            std::printf("%-8zu |%llu>    |%llu>    %+.4f%+.4fi\n", rv,
                        (unsigned long long)(x >> 1),
                        (unsigned long long)(x & 1), a.real(), a.imag());
        }
    }
    std::printf("\nDensity matrix diagonal (summing |amplitude|^2 over rv):\n");
    for (std::uint64_t x = 0; x < 4; ++x)
        std::printf("P(|%llu%llu>) = %.4f\n", (unsigned long long)(x >> 1),
                    (unsigned long long)(x & 1), kc.probability(x));
    std::printf("\nExpected (Equation 3): P(00) = P(11) = 1/2, coherence 0.4\n");
    return 0;
}
