/**
 * Regenerates Figure 7: KL divergence of Gibbs sampling versus ideal
 * (direct) sampling as a function of sample count, for (a) a noise-free
 * QAOA circuit and (b) a noisy QAOA circuit with 0.5% symmetric
 * depolarizing after each gate. Both estimators converge; Gibbs trails
 * slightly due to MCMC warmup and mixing.
 *
 * Default sizes are reduced from the paper's (16q / 8q) to fit a single
 * core; pass --ideal-qubits=16 --noisy-qubits=8 for the full setting.
 */
#include <cstdio>

#include "ac/kc_simulator.h"
#include "bench_common.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "util/cli.h"
#include "util/stats.h"

using namespace qkc;

namespace {

void
sweepSeries(const char* label, const std::vector<double>& exact,
            const std::vector<std::uint64_t>& ideal,
            const std::vector<std::uint64_t>& gibbs)
{
    for (std::size_t count = 1; count <= ideal.size(); count *= 4) {
        std::vector<std::uint64_t> idealHead(ideal.begin(),
                                             ideal.begin() + count);
        std::vector<std::uint64_t> gibbsHead(gibbs.begin(),
                                             gibbs.begin() + count);
        std::printf("%s\t%zu\t%.5f\t%.5f\n", label, count,
                    klDivergence(exact,
                                 empiricalDistribution(idealHead,
                                                       exact.size())),
                    klDivergence(exact,
                                 empiricalDistribution(gibbsHead,
                                                       exact.size())));
        std::fflush(stdout);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::size_t idealQubits =
        static_cast<std::size_t>(cli.getInt("ideal-qubits", 12));
    std::size_t noisyQubits =
        static_cast<std::size_t>(cli.getInt("noisy-qubits", 6));
    std::size_t samples =
        static_cast<std::size_t>(cli.getInt("samples", 16384));
    std::size_t noisySamples =
        static_cast<std::size_t>(cli.getInt("noisy-samples", 4096));

    bench::printHeader("Figure 7: sampling error vs number of samples",
                       "series\tsamples\tkl_ideal\tkl_gibbs");

    {
        Circuit circuit = bench::qaoaCircuit(idealQubits, 1, 13);
        StateVectorSimulator sv;
        auto exact = sv.simulate(circuit).probabilities();
        Rng idealRng(31);
        auto ideal = StateVectorSimulator::sampleFromDistribution(
            exact, samples, idealRng);
        KcSimulator kc(circuit);
        Rng gibbsRng(37);
        GibbsOptions options;
        options.burnIn = 128;
        auto gibbs = kc.sample(samples, gibbsRng, options);
        sweepSeries("ideal_qaoa", exact, ideal, gibbs);
    }

    {
        Circuit circuit =
            bench::qaoaCircuit(noisyQubits, 1, 13)
                .withNoiseAfterEachGate(NoiseKind::Depolarizing, 0.005);
        DensityMatrixSimulator dm;
        auto exact = dm.distribution(circuit);
        Rng idealRng(41);
        auto ideal = StateVectorSimulator::sampleFromDistribution(
            exact, noisySamples, idealRng);
        KcSimulator kc(circuit);
        Rng gibbsRng(43);
        GibbsOptions options;
        options.burnIn = 128;
        auto gibbs = kc.sample(noisySamples, gibbsRng, options);
        sweepSeries("noisy_qaoa", exact, ideal, gibbs);
    }
    return 0;
}
