/**
 * Regenerates Figure 6 and Table 4: simulation resource requirements (AC
 * nodes) versus quantum circuit size (CNF variables) for three workloads —
 * random circuit sampling (unstructured), Grover's search, and Shor's order
 * finding. RCS shows exponential growth; the structured algorithms scale
 * sub-exponentially because knowledge compilation extracts their structure.
 *
 * Sizes are reduced from the paper's 1TB-RAM server runs (artifact A.6.2
 * does the same); pass --rcs-max-depth / --grover-max / --shor-max to grow.
 */
#include <cstdio>
#include <fstream>

#include "ac/kc_simulator.h"
#include "algorithms/algorithms.h"
#include "bench_common.h"
#include "util/cli.h"

using namespace qkc;

namespace {

void
row(const char* workload, const Circuit& circuit)
{
    KcSimulator kc(circuit);
    auto m = kc.metrics();
    std::printf("%-10s %7zu %7zu %9zu %10zu %10zu %12zu %9.3f\n", workload,
                circuit.numQubits(), circuit.gateCount(), m.cnfVars,
                m.cnfIndicatorVars, m.acNodes, m.acFileBytes,
                m.compileSeconds);
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::size_t rcsMaxDepth =
        static_cast<std::size_t>(cli.getInt("rcs-max-depth", 14));
    std::size_t groverMaxIter =
        static_cast<std::size_t>(cli.getInt("grover-max-iter", 8));
    std::size_t shorMax = static_cast<std::size_t>(cli.getInt("shor-max", 6));

    bench::printHeader(
        "Figure 6 + Table 4: AC nodes vs CNF variables",
        "# workload  qubits   gates  cnf_vars  indicators   ac_nodes  "
        "ac_file_byte   compile_s");

    // Unstructured: GRCS-style random circuits on a 3x3 grid with growing
    // depth; qubits entangle across the whole grid and the AC blows up
    // exponentially (the paper's gray series).
    for (std::size_t depth = 4; depth <= rcsMaxDepth; depth += 2) {
        Rng rng(130 + depth);
        row("rcs", rcsCircuit(3, 3, depth, rng));
    }

    // Structured: Grover search over 16 elements with a growing number of
    // amplitude-amplification iterations (gate count grows; structure is
    // preserved, so the AC grows slowly — the paper's blue series).
    for (std::size_t it = 1; it <= groverMaxIter; ++it)
        row("grover", groverCircuit(4, 0b1010, static_cast<int>(it)));

    // Structured: Shor order finding for 15 with a growing counting
    // register (the paper's orange series).
    for (std::size_t t = 2; t <= shorMax; ++t)
        row("shor", shorOrderFindingCircuit(t, 7));

    return 0;
}
