/**
 * Regenerates Figure 3: the measurement distribution of a 10-qubit QAOA
 * Max-Cut circuit is sharply peaked. Prints four series over outcome rank:
 *  (a) exact measurement probability by outcome index,
 *  (b) exact probability sorted by rank,
 *  (c) empirical distribution of ideal (direct) sampling,
 *  (d) empirical distribution of Gibbs sampling on the compiled AC.
 */
#include <cstdio>

#include "ac/kc_simulator.h"
#include "bench_common.h"
#include "statevector/statevector_simulator.h"
#include "util/cli.h"
#include "util/stats.h"

using namespace qkc;

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    std::size_t qubits = static_cast<std::size_t>(cli.getInt("qubits", 10));
    std::size_t samples = static_cast<std::size_t>(cli.getInt("samples", 4000));
    std::size_t topRanks = static_cast<std::size_t>(cli.getInt("ranks", 64));

    Circuit circuit = bench::qaoaCircuit(qubits, 1, 11);
    StateVectorSimulator sv;
    auto exact = sv.simulate(circuit).probabilities();

    Rng rng(17);
    auto idealSamples =
        StateVectorSimulator::sampleFromDistribution(exact, samples, rng);
    auto idealEmp = empiricalDistribution(idealSamples, exact.size());

    KcSimulator kc(circuit);
    Rng gibbsRng(23);
    GibbsOptions gibbsOptions;
    gibbsOptions.burnIn = 128;
    auto gibbsSamples = kc.sample(samples, gibbsRng, gibbsOptions);
    auto gibbsEmp = empiricalDistribution(gibbsSamples, exact.size());

    auto rank = rankByDescending(exact);
    bench::printHeader(
        "Figure 3: QAOA measurement distribution is sharply peaked "
        "(qubits=" + std::to_string(qubits) + ")",
        "rank\toutcome\texact_prob\tideal_sampling\tgibbs_sampling");
    for (std::size_t r = 0; r < std::min(topRanks, rank.size()); ++r) {
        std::size_t x = rank[r];
        std::printf("%zu\t%zu\t%.6f\t%.6f\t%.6f\n", r, x, exact[x],
                    idealEmp[x], gibbsEmp[x]);
    }

    // Peakedness summary: mass of the top-k outcomes.
    double top16 = 0.0, top64 = 0.0;
    for (std::size_t r = 0; r < rank.size(); ++r) {
        if (r < 16)
            top16 += exact[rank[r]];
        if (r < 64)
            top64 += exact[rank[r]];
    }
    std::printf("# outcomes=%zu top16_mass=%.4f top64_mass=%.4f\n",
                exact.size(), top16, top64);
    std::printf("# KL(exact || ideal)=%.4f KL(exact || gibbs)=%.4f\n",
                klDivergence(exact, idealEmp), klDivergence(exact, gibbsEmp));
    return 0;
}
