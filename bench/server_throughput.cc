/**
 * server_throughput — load-generate against the serving stack end to end.
 *
 * Spins up ServerCore + HttpServer in-process, then drives three phases
 * through real loopback HTTP:
 *
 *   cold  every request a distinct circuit structure: each one misses the
 *         session cache and pays plan compilation
 *   hot   every request the same structure with fresh parameters: the
 *         cached session serves a bind-refresh (the paper's compile-once/
 *         refresh-leaves story, measured at the protocol level)
 *   burst N client threads hammer one structure concurrently, so requests
 *         coalesce into batched runs
 *
 * Each phase prints a human row plus a JSON line: requests, wall seconds,
 * req/s, p50/p99 latency (ms), and afterwards the cache hit rate and mean
 * coalesce width read back from /v1/stats. The hot phase's p50 dropping
 * well under the cold phase's is the session cache paying off.
 *
 * Flags: --qubits=N (default 10), --depth=N (2), --requests=N (32),
 *        --threads=N (8, burst clients), --shots=N (256), --port=N (0).
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "server/http_client.h"
#include "server/http_server.h"
#include "server/json.h"
#include "util/cli.h"

using namespace qkc;

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * A hardware-efficient ansatz in QASM text: `depth` layers of per-qubit
 * rx/ry rotations and a CNOT chain. `structureTag` appends that many extra
 * `h q[0];` statements, giving each tag a distinct circuit structure (and
 * so a distinct session-cache entry); `angleSeed` varies only the rotation
 * angles, keeping the structure identical across requests.
 */
std::string
ansatzQasm(std::size_t qubits, std::size_t depth, std::size_t structureTag,
           std::uint64_t angleSeed)
{
    Rng rng(angleSeed + 1);
    std::string q = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
    q += "qreg q[" + std::to_string(qubits) + "];\n";
    for (std::size_t t = 0; t < structureTag; ++t)
        q += "h q[0];\n";
    for (std::size_t d = 0; d < depth; ++d) {
        for (std::size_t i = 0; i < qubits; ++i) {
            q += "rx(" + std::to_string(rng.uniform() * 3.14159) + ") q[" +
                 std::to_string(i) + "];\n";
            q += "ry(" + std::to_string(rng.uniform() * 3.14159) + ") q[" +
                 std::to_string(i) + "];\n";
        }
        for (std::size_t i = 0; i + 1 < qubits; ++i)
            q += "cx q[" + std::to_string(i) + "], q[" + std::to_string(i + 1) +
                 "];\n";
    }
    return q;
}

std::string
runBody(const std::string& qasm, std::size_t shots, std::uint64_t seed)
{
    server::Json doc = server::Json::object();
    doc.set("backend", "sv");
    doc.set("qasm", qasm);
    doc.set("task", "sample");
    doc.set("shots", server::Json(static_cast<std::uint64_t>(shots)));
    doc.set("seed", server::Json(seed));
    return doc.dump();
}

struct PhaseStats {
    std::size_t requests = 0;
    double wallSeconds = 0.0;
    std::vector<double> latencies; ///< seconds, unsorted

    double reqPerSec() const
    {
        return wallSeconds > 0.0 ? static_cast<double>(requests) / wallSeconds
                                 : 0.0;
    }
    double percentileMs(double p) const
    {
        if (latencies.empty())
            return 0.0;
        std::vector<double> sorted = latencies;
        std::sort(sorted.begin(), sorted.end());
        const auto idx = static_cast<std::size_t>(
            p * static_cast<double>(sorted.size() - 1));
        return sorted[idx] * 1e3;
    }
};

void
report(const char* phase, const PhaseStats& s)
{
    std::printf("%-6s %6zu req  %8.3f s  %9.1f req/s  p50 %8.3f ms  "
                "p99 %8.3f ms\n",
                phase, s.requests, s.wallSeconds, s.reqPerSec(),
                s.percentileMs(0.50), s.percentileMs(0.99));
    bench::JsonRow("server_throughput")
        .field("phase", phase)
        .field("requests", s.requests)
        .field("wall_s", s.wallSeconds)
        .field("req_per_s", s.reqPerSec())
        .field("p50_ms", s.percentileMs(0.50))
        .field("p99_ms", s.percentileMs(0.99));
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const auto qubits = static_cast<std::size_t>(cli.getInt("qubits", 10));
    const auto depth = static_cast<std::size_t>(cli.getInt("depth", 2));
    const auto requests = static_cast<std::size_t>(cli.getInt("requests", 32));
    const auto threads = static_cast<std::size_t>(cli.getInt("threads", 8));
    const auto shots = static_cast<std::size_t>(cli.getInt("shots", 256));

    server::ServerConfig config;
    config.cacheCapacity = requests + 1; // cold phase must not evict itself
    server::ServerCore core(config);
    server::HttpServer http(core,
                            static_cast<std::uint16_t>(cli.getInt("port", 0)));
    const std::uint16_t port = http.port();

    bench::printHeader(
        "server throughput (sv, " + std::to_string(qubits) + " qubits, depth " +
            std::to_string(depth) + ", " + std::to_string(shots) + " shots)",
        "phase   requests      wall       req/s        p50          p99");

    // -- cold: every request a fresh structure ------------------------------
    PhaseStats cold;
    cold.requests = requests;
    {
        const double t0 = nowSeconds();
        for (std::size_t i = 0; i < requests; ++i) {
            const std::string body =
                runBody(ansatzQasm(qubits, depth, i + 1, 7), shots, i);
            const double r0 = nowSeconds();
            const server::HttpReply reply =
                server::httpPost("127.0.0.1", port, "/v1/run", body);
            cold.latencies.push_back(nowSeconds() - r0);
            if (reply.status != 200) {
                std::fprintf(stderr, "cold request failed: %s\n",
                             reply.body.c_str());
                return 1;
            }
        }
        cold.wallSeconds = nowSeconds() - t0;
    }
    report("cold", cold);

    // -- hot: one structure, fresh parameters every request -----------------
    PhaseStats hot;
    hot.requests = requests;
    {
        const double t0 = nowSeconds();
        for (std::size_t i = 0; i < requests; ++i) {
            const std::string body = runBody(
                ansatzQasm(qubits, depth, 0, 1000 + i), shots, 1000 + i);
            const double r0 = nowSeconds();
            const server::HttpReply reply =
                server::httpPost("127.0.0.1", port, "/v1/run", body);
            hot.latencies.push_back(nowSeconds() - r0);
            if (reply.status != 200) {
                std::fprintf(stderr, "hot request failed: %s\n",
                             reply.body.c_str());
                return 1;
            }
        }
        hot.wallSeconds = nowSeconds() - t0;
    }
    report("hot", hot);

    // -- burst: concurrent clients on one structure -> coalescing -----------
    PhaseStats burst;
    burst.requests = threads * requests;
    {
        std::vector<std::vector<double>> lanes(threads);
        std::vector<std::thread> clients;
        const double t0 = nowSeconds();
        for (std::size_t t = 0; t < threads; ++t) {
            clients.emplace_back([&, t] {
                for (std::size_t i = 0; i < requests; ++i) {
                    const std::string body =
                        runBody(ansatzQasm(qubits, depth, 0, 5000 + i), shots,
                                t * 100000 + i);
                    const double r0 = nowSeconds();
                    server::httpPost("127.0.0.1", port, "/v1/run", body);
                    lanes[t].push_back(nowSeconds() - r0);
                }
            });
        }
        for (std::thread& c : clients)
            c.join();
        burst.wallSeconds = nowSeconds() - t0;
        for (const auto& lane : lanes)
            burst.latencies.insert(burst.latencies.end(), lane.begin(),
                                   lane.end());
    }
    report("burst", burst);

    // -- cache/coalescing effectiveness, from the server's own stats --------
    const server::HttpReply stats =
        server::httpGet("127.0.0.1", port, "/v1/stats");
    const server::Json doc = server::parseJson(stats.body);
    const server::Json* metrics = doc.find("metrics");
    double hitRate = 0.0;
    double meanWidth = 0.0;
    if (metrics && metrics->isObject()) {
        double hits = 0.0;
        double misses = 0.0;
        if (const server::Json* h = metrics->find("server.cache.hit"))
            hits = h->asDouble();
        if (const server::Json* m = metrics->find("server.cache.miss"))
            misses = m->asDouble();
        if (hits + misses > 0.0)
            hitRate = hits / (hits + misses);
        if (const server::Json* w = metrics->find("server.coalesce.width"))
            if (const server::Json* mean = w->find("mean"))
                meanWidth = mean->asDouble();
    }
    std::printf("cache hit rate %.3f   mean coalesce width %.2f   "
                "hot/cold p50 speedup %.2fx\n",
                hitRate, meanWidth,
                hot.percentileMs(0.5) > 0.0
                    ? cold.percentileMs(0.5) / hot.percentileMs(0.5)
                    : 0.0);
    bench::JsonRow("server_throughput")
        .field("phase", "summary")
        .field("cache_hit_rate", hitRate)
        .field("mean_coalesce_width", meanWidth)
        .field("cold_p50_ms", cold.percentileMs(0.5))
        .field("hot_p50_ms", hot.percentileMs(0.5));

    http.stop();
    return 0;
}
