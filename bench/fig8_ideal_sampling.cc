/**
 * Regenerates Figure 8 (a-d): time to draw samples from ideal (noise-free)
 * QAOA Max-Cut and VQE Ising circuits versus qubit count, for the four
 * simulator families: state vector (qsim-style), tensor network
 * (qTorch-style), decision diagram (DDSIM-style), and knowledge compilation
 * (this paper). For KC the compile time is reported separately — it is paid
 * once per variational run and amortized over every optimizer iteration.
 *
 * The state-vector family prints four rows — the seed configuration
 * (serial, unfused), `sv+fused`, `sv+fused+tN` (shared thread pool), and
 * `sv+tN+batchB` (one Session::runBatch over B parameter bindings, fanned
 * across the pool) — so the fusion, threading and batching gains are
 * visible side by side. --threads=N controls the threaded rows (defaults
 * to the machine / QKC_THREADS); --batch=B sizes the batch row.
 *
 * Defaults are reduced (200 samples, <= 24 qubits) for a single core; use
 * --samples=1000 --max-qubits=32 to approach the paper's setting.
 */
#include <cstdio>
#include <stdexcept>
#include <string>

#include "exec/simd.h"
#include "exec/thread_pool.h"
#include "bench_common.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "vqa/backends.h"

using namespace qkc;

namespace {

struct Row {
    const char* workload;
    std::size_t iterations;
    std::size_t qubits;
};

/** Qubit ceiling for the dd pairwise row (full-circuit matrix DD). */
constexpr std::size_t kDdPairwiseMax = 8;

/**
 * One backend row through the session API: open() is the setup column
 * (plan / contraction planning / KC compile), the Sample task's metadata
 * is the sampling column — the same split the paper reports for KC,
 * now uniform across families.
 */
void
runBackendRow(const std::string& spec, const std::string& label,
              const Row& row, const Circuit& circuit, std::size_t samples,
              std::uint64_t seed)
{
    auto backend = makeBackend(spec);
    Rng rng(seed);
    obs::TimedSpan setup("bench.setup");
    auto session = backend->open(circuit);
    const double setupSeconds = setup.seconds();
    setup.finish();
    const Result r = session->run(Sample{samples}, rng);
    std::printf("%-6s %2zu %4zu %-20s %10.4f %10.4f\n", row.workload,
                row.iterations, row.qubits, label.c_str(), r.meta.seconds,
                setupSeconds);
    bench::JsonRow("fig8")
        .field("workload", row.workload)
        .field("p", row.iterations)
        .field("qubits", row.qubits)
        .field("backend", label)
        .field("simd", simdLevelName(activeSimdLevel()))
        .field("path", r.meta.path.planner)
        .field("sample_sec", r.meta.seconds)
        .field("setup_sec", setupSeconds);
}

/**
 * The batch= row: `batch` same-structure parameter bindings of the circuit
 * (values jittered deterministically) served by ONE Session::runBatch —
 * the structure is planned once and the bindings fan out across the thread
 * pool, each from its own RNG stream. The sample_sec column is the batch
 * wall time divided by the batch size, directly comparable to the
 * per-circuit rows above it.
 */
void
runSvBatchRow(const Row& row, const Circuit& circuit, std::size_t samples,
              std::size_t threads, std::size_t batch, std::uint64_t seed)
{
    auto backend = makeBackend("statevector:threads=" +
                               std::to_string(threads) + ",fuse=1");
    Rng rng(seed);
    obs::TimedSpan setup("bench.setup");
    auto session = backend->open(circuit);
    const double setupSeconds = setup.seconds();
    setup.finish();

    const auto paramIdx = circuit.parameterizedGateIndices();
    std::vector<ParamBinding> bindings;
    bindings.reserve(batch);
    for (std::size_t b = 0; b < batch; ++b) {
        Circuit c = circuit;
        for (std::size_t idx : paramIdx)
            c.setGateParam(idx, 0.3 + 0.05 * static_cast<double>(b + 1));
        bindings.push_back(std::move(c));
    }

    obs::TimedSpan wall("bench.batch");
    const auto results = session->runBatch(bindings, Sample{samples}, rng);
    const double perBinding = wall.seconds() / static_cast<double>(batch);
    wall.finish();
    const BatchStats& stats = results.front().meta.batch;
    const std::string label = "sv+t" + std::to_string(threads) + "+batch" +
                              std::to_string(batch);
    std::printf("%-6s %2zu %4zu %-20s %10.4f %10.4f\n", row.workload,
                row.iterations, row.qubits, label.c_str(), perBinding,
                setupSeconds);
    bench::JsonRow("fig8")
        .field("workload", row.workload)
        .field("p", row.iterations)
        .field("qubits", row.qubits)
        .field("backend", label)
        .field("simd", simdLevelName(activeSimdLevel()))
        .field("path", results.front().meta.path.planner)
        .field("sample_sec", perBinding)
        .field("setup_sec", setupSeconds)
        .field("batch_wall_sec", stats.wallSeconds)
        .field("batch_lanes", stats.lanes)
        .field("batch_imbalance", stats.imbalance);
}

void
runRow(const Row& row, const Circuit& circuit, std::size_t samples,
       std::size_t svMax, std::size_t tnMax, std::size_t ddMax,
       std::size_t kcP2Max, std::size_t threads, std::size_t batch)
{
    if (row.qubits <= svMax) {
        // Three state-vector rows: the seed configuration (serial,
        // unfused), fusion alone, and fusion + the shared thread pool —
        // the specialized kernels are active in all three.
        runBackendRow("statevector:threads=1,fuse=0", "statevector", row,
                      circuit, samples, 1);
        runBackendRow("statevector:threads=1,fuse=1", "sv+fused", row,
                      circuit, samples, 1);
        if (threads > 1) {
            runBackendRow("statevector:threads=" + std::to_string(threads) +
                              ",fuse=1",
                          "sv+fused+t" + std::to_string(threads), row,
                          circuit, samples, 1);
        }
        if (batch > 1)
            runSvBatchRow(row, circuit, samples, threads, batch, 1);
    }

    // Diagram size tracks state structure: QAOA on expander graphs loses
    // its compactness as depth grows, so the DD row gets its own cap.
    if (row.qubits <= ddMax) {
        runBackendRow("decisiondiagram", "decisiondiagram", row, circuit,
                      samples, 4);
        // Linear-vs-pairwise on the same circuit and seed: the only change
        // is the contraction tree the diagram build follows, so the two
        // rows isolate what MxM layer fusion buys (or costs) the dd family.
        // The pairwise tree materializes the whole circuit as one matrix
        // DD, which is exponential for random-angle QAOA/VQE layers, so
        // this row stops well below the linear dd cap.
        if (row.qubits <= kDdPairwiseMax)
            runBackendRow("decisiondiagram:path=pairwise", "dd+pairwise",
                          row, circuit, samples, 4);
    }

    // The doubled-network contraction blows past the rank limit (or takes
    // hours) on expander-graph QAOA beyond ~12 qubits; deeper circuits make
    // it worse, so p >= 2 gets a tighter cap.
    std::size_t tnCap = row.iterations == 1 ? tnMax : std::min<std::size_t>(tnMax, 8);
    if (row.qubits <= tnCap) {
        try {
            runBackendRow("tensornetwork", "tensornetwork", row, circuit,
                          samples, 2);
        } catch (const std::exception& e) {
            std::printf("# tensornetwork skipped at %zu qubits: %s\n",
                        row.qubits, e.what());
        }
    }

    if (row.iterations == 1 || row.qubits <= kcP2Max)
        runBackendRow("knowledgecompilation:burnin=64",
                      "knowledgecompilation", row, circuit, samples, 3);
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const std::size_t samples =
        static_cast<std::size_t>(cli.getInt("samples", 200));
    const std::size_t maxQubits =
        static_cast<std::size_t>(cli.getInt("max-qubits", 24));
    const std::size_t svMax =
        static_cast<std::size_t>(cli.getInt("sv-max-qubits", 22));
    const std::size_t tnMax =
        static_cast<std::size_t>(cli.getInt("tn-max-qubits", 12));
    const std::size_t ddMax =
        static_cast<std::size_t>(cli.getInt("dd-max-qubits", 16));
    const std::size_t kcP2Max =
        static_cast<std::size_t>(cli.getInt("kc-p2-max-qubits", 20));
    const std::size_t maxIterations =
        static_cast<std::size_t>(cli.getInt("max-iterations", 2));
    // Extra sv rows: fused and fused+threaded (--threads=1 drops the row).
    const std::size_t threads = static_cast<std::size_t>(
        cli.getInt("threads", static_cast<std::int64_t>(defaultThreads())));
    // Bindings per Session::runBatch for the batch= row (--batch=1 drops it).
    const std::size_t batch =
        static_cast<std::size_t>(cli.getInt("batch", 8));

    bench::printHeader(
        "Figure 8: ideal sampling time vs qubits (samples=" +
            std::to_string(samples) + ")",
        "# work   p  qub backend              sample_sec  setup_sec");

    for (std::size_t p = 1; p <= maxIterations; ++p) {
        for (std::size_t n = 4; n <= maxQubits; n += 4) {
            Row row{"qaoa", p, n};
            runRow(row, bench::qaoaCircuit(n, p, 19), samples, svMax, tnMax,
                   ddMax, kcP2Max, threads, batch);
        }
        for (std::size_t n : {4, 6, 9, 12, 16, 20}) {
            if (n > maxQubits)
                break;
            Row row{"vqe", p, n};
            runRow(row, bench::vqeCircuit(n, p, 19), samples, svMax, tnMax,
                   ddMax, kcP2Max, threads, batch);
        }
    }
    return 0;
}
