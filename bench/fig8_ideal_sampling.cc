/**
 * Regenerates Figure 8 (a-d): time to draw samples from ideal (noise-free)
 * QAOA Max-Cut and VQE Ising circuits versus qubit count, for the four
 * simulator families: state vector (qsim-style), tensor network
 * (qTorch-style), decision diagram (DDSIM-style), and knowledge compilation
 * (this paper). For KC the compile time is reported separately — it is paid
 * once per variational run and amortized over every optimizer iteration.
 *
 * The state-vector family prints three rows — the seed configuration
 * (serial, unfused), `sv+fused`, and `sv+fused+tN` (shared thread pool) —
 * so the fusion and threading gains are visible side by side. --threads=N
 * controls the third row (defaults to the machine / QKC_THREADS).
 *
 * Defaults are reduced (200 samples, <= 24 qubits) for a single core; use
 * --samples=1000 --max-qubits=32 to approach the paper's setting.
 */
#include <cstdio>
#include <stdexcept>
#include <string>

#include "ac/kc_simulator.h"
#include "exec/thread_pool.h"
#include "bench_common.h"
#include "tensornet/tensornet_simulator.h"
#include "util/cli.h"
#include "util/timer.h"
#include "vqa/backends.h"

using namespace qkc;

namespace {

struct Row {
    const char* workload;
    std::size_t iterations;
    std::size_t qubits;
};

void
runRow(const Row& row, const Circuit& circuit, std::size_t samples,
       std::size_t svMax, std::size_t tnMax, std::size_t ddMax,
       std::size_t kcP2Max, std::size_t threads)
{
    auto print = [&](const std::string& backend, double seconds,
                     double extra) {
        std::printf("%-6s %2zu %4zu %-20s %10.4f %10.4f\n", row.workload,
                    row.iterations, row.qubits, backend.c_str(), seconds,
                    extra);
        std::fflush(stdout);
    };

    if (row.qubits <= svMax) {
        // Three state-vector rows: the seed configuration (serial,
        // unfused), fusion alone, and fusion + the shared thread pool —
        // the specialized kernels are active in all three.
        {
            auto sv = makeBackend("statevector:threads=1,fuse=0");
            Rng rng(1);
            Timer t;
            sv->sample(circuit, samples, rng);
            print("statevector", t.seconds(), 0.0);
        }
        {
            auto sv = makeBackend("statevector:threads=1,fuse=1");
            Rng rng(1);
            Timer t;
            sv->sample(circuit, samples, rng);
            print("sv+fused", t.seconds(), 0.0);
        }
        if (threads > 1) {
            auto sv = makeBackend("statevector:threads=" +
                                  std::to_string(threads) + ",fuse=1");
            Rng rng(1);
            Timer t;
            sv->sample(circuit, samples, rng);
            print("sv+fused+t" + std::to_string(threads), t.seconds(), 0.0);
        }
    }

    // Diagram size tracks state structure: QAOA on expander graphs loses
    // its compactness as depth grows, so the DD row gets its own cap.
    if (row.qubits <= ddMax) {
        auto dd = makeBackend("decisiondiagram");
        Rng rng(4);
        Timer t;
        dd->sample(circuit, samples, rng);
        print("decisiondiagram", t.seconds(), 0.0);
    }

    // The doubled-network contraction blows past the rank limit (or takes
    // hours) on expander-graph QAOA beyond ~12 qubits; deeper circuits make
    // it worse, so p >= 2 gets a tighter cap.
    std::size_t tnCap = row.iterations == 1 ? tnMax : std::min<std::size_t>(tnMax, 8);
    if (row.qubits <= tnCap) {
        try {
            Timer plan;
            TnSampler sampler(circuit);
            double planSeconds = plan.seconds();
            Rng rng(2);
            Timer t;
            sampler.sample(samples, rng);
            print("tensornetwork", t.seconds(), planSeconds);
        } catch (const std::exception& e) {
            std::printf("# tensornetwork skipped at %zu qubits: %s\n",
                        row.qubits, e.what());
        }
    }

    if (row.iterations == 1 || row.qubits <= kcP2Max) {
        Timer compile;
        KcSimulator kc(circuit);
        double compileSeconds = compile.seconds();
        Rng rng(3);
        Timer t;
        GibbsOptions options;
        options.burnIn = 64;
        kc.sample(samples, rng, options);
        print("knowledgecompilation", t.seconds(), compileSeconds);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    Cli cli(argc, argv);
    const std::size_t samples =
        static_cast<std::size_t>(cli.getInt("samples", 200));
    const std::size_t maxQubits =
        static_cast<std::size_t>(cli.getInt("max-qubits", 24));
    const std::size_t svMax =
        static_cast<std::size_t>(cli.getInt("sv-max-qubits", 22));
    const std::size_t tnMax =
        static_cast<std::size_t>(cli.getInt("tn-max-qubits", 12));
    const std::size_t ddMax =
        static_cast<std::size_t>(cli.getInt("dd-max-qubits", 16));
    const std::size_t kcP2Max =
        static_cast<std::size_t>(cli.getInt("kc-p2-max-qubits", 20));
    const std::size_t maxIterations =
        static_cast<std::size_t>(cli.getInt("max-iterations", 2));
    // Extra sv rows: fused and fused+threaded (--threads=1 drops the row).
    const std::size_t threads = static_cast<std::size_t>(
        cli.getInt("threads", static_cast<std::int64_t>(defaultThreads())));

    bench::printHeader(
        "Figure 8: ideal sampling time vs qubits (samples=" +
            std::to_string(samples) + ")",
        "# work   p  qub backend              sample_sec  setup_sec");

    for (std::size_t p = 1; p <= maxIterations; ++p) {
        for (std::size_t n = 4; n <= maxQubits; n += 4) {
            Row row{"qaoa", p, n};
            runRow(row, bench::qaoaCircuit(n, p, 19), samples, svMax, tnMax,
                   ddMax, kcP2Max, threads);
        }
        for (std::size_t n : {4, 6, 9, 12, 16, 20}) {
            if (n > maxQubits)
                break;
            Row row{"vqe", p, n};
            runRow(row, bench::vqeCircuit(n, p, 19), samples, svMax, tnMax,
                   ddMax, kcP2Max, threads);
        }
    }
    return 0;
}
