#include "vqa/backends.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "ac/kc_simulator.h"
#include "dd/dd_simulator.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "exec/execution_plan.h"
#include "obs/trace.h"
#include "statevector/statevector_simulator.h"
#include "tensornet/tensornet_simulator.h"

namespace qkc {

namespace {

ExecPolicy
execPolicyFrom(const BackendOptions& options)
{
    ExecPolicy policy;
    policy.threads = options.threads;
    policy.fuseGates = options.fuse;
    policy.simd = options.simd;
    return policy;
}

const Matrix&
pauliMatrix(char p)
{
    static const Matrix x = Gate(GateKind::X, {0}).unitary();
    static const Matrix y = Gate(GateKind::Y, {0}).unitary();
    static const Matrix z = Gate(GateKind::Z, {0}).unitary();
    switch (p) {
      case 'X':
        return x;
      case 'Y':
        return y;
      default:
        return z;
    }
}

/** Bits flipped by the string's X/Y factors (qubit 0 = MSB of the index). */
std::uint64_t
pauliFlipMask(const PauliString& pauli, std::size_t n)
{
    std::uint64_t flip = 0;
    for (std::size_t q = 0; q < n; ++q)
        if (pauli.pauli(q) == 'X' || pauli.pauli(q) == 'Y')
            flip |= std::uint64_t{1} << (n - 1 - q);
    return flip;
}

/**
 * f(y) in P|y> = f(y) |y ^ flipMask>: the accumulated Z sign and Y phase.
 * Equivalently the matrix entry P(y ^ flipMask, y) — the form both the
 * density-matrix trace and the amplitude-vector expectation consume.
 */
Complex
pauliPhase(const PauliString& pauli, std::size_t n, std::uint64_t y)
{
    Complex f{1.0, 0.0};
    for (std::size_t q = 0; q < n; ++q) {
        const bool yq = (y >> (n - 1 - q)) & 1u;
        switch (pauli.pauli(q)) {
          case 'Z':
            if (yq)
                f = -f;
            break;
          case 'Y':
            f *= yq ? Complex{0.0, -1.0} : Complex{0.0, 1.0};
            break;
          default:
            break; // I and X contribute a factor of 1
        }
    }
    return f;
}

// ---------------------------------------------------------------------------
// State vector
// ---------------------------------------------------------------------------

class SvSession final : public Session {
  public:
    SvSession(const Circuit& circuit, const BackendOptions& options)
        : Session("statevector", circuit), options_(options),
          policy_(execPolicyFrom(options)), sim_(policy_),
          plan_(planCircuit(circuit, policy_, options.path))
    {
        obsEnabled_ = options.obs;
    }

  protected:
    std::unique_ptr<Session> cloneForBatch() const override
    {
        // The batch strategy ISSUE 5 names for sv: copy the compiled
        // ExecutionPlan into the lane (kernel classification is *not*
        // re-run) and let each lane rebind it per binding.
        auto lane = std::unique_ptr<SvSession>(new SvSession(*this));
        lane->clearInitialBuild();
        return lane;
    }

    std::size_t batchThreads() const override
    {
        return policy_.resolvedThreads();
    }

    void trimBatchLane() override
    {
        // Keep the plan (cheap, and the point of the lane); drop the 2^n
        // state and probability table the last binding left behind.
        state_.reset();
        probs_.reset();
    }
    bool doBind(const Circuit& circuit, bool sameStructure) override
    {
        state_.reset();
        probs_.reset();
        if (sameStructure && tryRebindPlan(plan_, circuit))
            return true;
        plan_ = planCircuit(circuit, policy_, options_.path);
        return false;
    }

    std::vector<std::uint64_t> doSample(std::size_t shots, Rng& rng,
                                        ResultMeta& meta) override
    {
        meta.fusion = plan_.fusion;
        stampPath(meta);
        if (circuit_.noiseCount() > 0) {
            QKC_SPAN("sv.trajectories");
            meta.trajectories += shots;
            return sim_.sampleNoisyPlanned(plan_, shots, rng);
        }
        ensureProbs();
        meta.exact = true;
        QKC_SPAN("sv.sample");
        return StateVectorSimulator::sampleFromDistribution(*probs_, shots,
                                                            rng);
    }

    double doExpectation(const PauliSum& observable, std::size_t shots,
                         Rng& rng, ResultMeta& meta) override
    {
        meta.fusion = plan_.fusion;
        stampPath(meta);
        if (circuit_.noiseCount() > 0)
            return sampledExpectation(observable, shots, rng, meta);

        // Native <psi|P|psi>, no sampling error: diagonal terms read the
        // cached |amp|^2 vector directly; the rest pay one kernel sweep per
        // non-identity Pauli plus a deterministic inner product.
        ensureState();
        meta.exact = true;
        QKC_SPAN("sv.expectation");
        double total = 0.0;
        for (const auto& [coeff, pauli] : observable.terms) {
            if (pauli.isIdentity()) {
                total += coeff;
                continue;
            }
            if (pauli.isDiagonal()) {
                ensureProbs();
                total += coeff * pauli.expectationFromDistribution(*probs_);
                continue;
            }
            StateVector phi = *state_;
            for (std::size_t q = 0; q < pauli.numQubits(); ++q)
                if (pauli.pauli(q) != 'I')
                    phi.applySingleQubit(pauliMatrix(pauli.pauli(q)), q);
            total += coeff * innerProduct(*state_, phi).real();
        }
        return total;
    }

    std::vector<Complex> doAmplitudes(
        const std::vector<std::uint64_t>& bitstrings,
        ResultMeta& meta) override
    {
        stampPath(meta);
        if (circuit_.noiseCount() > 0)
            unsupported("Amplitudes",
                        "noisy runs are trajectory mixtures; use dm "
                        "probabilities instead");
        ensureState();
        meta.exact = true;
        std::vector<Complex> out;
        out.reserve(bitstrings.size());
        for (std::uint64_t b : bitstrings) {
            if (b >= state_->dimension())
                throw std::invalid_argument(
                    "Amplitudes: bitstring out of range");
            out.push_back(state_->amplitude(b));
        }
        return out;
    }

    std::vector<double> doProbabilities(const std::vector<std::size_t>& qubits,
                                        ResultMeta& meta) override
    {
        stampPath(meta);
        if (circuit_.noiseCount() > 0)
            unsupported("Probabilities",
                        "the noisy state-vector path is trajectory-sampled; "
                        "use the density-matrix backend for exact noisy "
                        "distributions");
        ensureProbs();
        meta.exact = true;
        return marginalizeDistribution(*probs_, circuit_.numQubits(), qubits);
    }

    std::unique_ptr<Session> openAdHoc(const Circuit& rotated) const override
    {
        return std::make_unique<SvSession>(rotated, options_);
    }

  private:
    /** Batch-lane clone: copies the compiled plan instead of re-planning. */
    SvSession(const SvSession& parent)
        : Session("statevector", parent.circuit_), options_(parent.options_),
          policy_(parent.policy_), sim_(parent.policy_), plan_(parent.plan_)
    {
        obsEnabled_ = parent.obsEnabled_;
    }

    void ensureState()
    {
        if (state_)
            return;
        QKC_SPAN("sv.simulate");
        state_ = sim_.simulatePlanned(plan_);
    }

    /** meta.path from the plan's tree and its last plan/rebind tallies. */
    void stampPath(ResultMeta& meta) const
    {
        meta.path.planner = pathPlannerName(plan_.path.planner);
        meta.path.nodes = plan_.path.nodes.size();
        meta.path.mmNodes = plan_.path.mmNodes;
        meta.path.mmProducts = plan_.mmProducts;
        meta.path.cachedSubtrees = plan_.cachedSubtrees;
    }

    /** Lazy |amp|^2 vector: only tasks that consume it pay the sweep. */
    void ensureProbs()
    {
        ensureState();
        if (probs_)
            return;
        QKC_SPAN("sv.probs");
        probs_ = state_->probabilities();
    }

    BackendOptions options_;
    ExecPolicy policy_;
    StateVectorSimulator sim_;
    ExecutionPlan plan_;
    std::optional<StateVector> state_;   ///< final ideal state (per bind)
    std::optional<std::vector<double>> probs_;
};

// ---------------------------------------------------------------------------
// Density matrix
// ---------------------------------------------------------------------------

class DmSession final : public Session {
  public:
    DmSession(const Circuit& circuit, const BackendOptions& options)
        : Session("densitymatrix", circuit), options_(options),
          policy_(execPolicyFrom(options)), sim_(policy_),
          plan_(planCircuitDm(circuit, policy_, options.path))
    {
        obsEnabled_ = options.obs;
    }

  protected:
    // cloneForBatch stays at the serializing default: a second 4^n
    // superoperator plan (and a second 4^n rho in flight) per lane would
    // multiply peak memory for sweeps that the dense kernels already
    // parallelize internally via the shared pool, so a batched dm task
    // gains little from lane fan-out. runBatch therefore binds and runs on
    // this session in batch order — still one plan, rebound per binding.

    bool doBind(const Circuit& circuit, bool sameStructure) override
    {
        rho_.reset();
        probs_.reset();
        // Same structure: replay the recorded fusion recipe on the new
        // values and refresh every superoperator kernel pair in place — no
        // greedy pass, no re-classification (this is what planReuses now
        // certifies; the old session re-ran both inside every ensureRho).
        if (sameStructure && tryRebindDmPlan(plan_, circuit))
            return true;
        plan_ = planCircuitDm(circuit, policy_, options_.path);
        return false;
    }

    std::vector<std::uint64_t> doSample(std::size_t shots, Rng& rng,
                                        ResultMeta& meta) override
    {
        ensureRho();
        meta.exact = true;
        meta.fusion = plan_.fusion;
        stampPath(meta);
        QKC_SPAN("dm.sample");
        return StateVectorSimulator::sampleFromDistribution(*probs_, shots,
                                                            rng);
    }

    double doExpectation(const PauliSum& observable, std::size_t shots,
                         Rng& rng, ResultMeta& meta) override
    {
        (void)shots;
        (void)rng;
        // tr(rho P) is exact for every observable, channels included: for
        // each row r the only column P can hit is r ^ flipmask, so one
        // O(2^n * n) traversal per term reads the trace off rho directly.
        ensureRho();
        meta.exact = true;
        meta.fusion = plan_.fusion;
        stampPath(meta);
        QKC_SPAN("dm.trace");
        double total = 0.0;
        for (const auto& [coeff, pauli] : observable.terms) {
            if (pauli.isIdentity()) {
                total += coeff;
                continue;
            }
            total += coeff * traceRhoPauli(pauli);
        }
        return total;
    }

    std::vector<double> doProbabilities(const std::vector<std::size_t>& qubits,
                                        ResultMeta& meta) override
    {
        ensureRho();
        meta.exact = true;
        meta.fusion = plan_.fusion;
        stampPath(meta);
        QKC_SPAN("dm.marginal");
        return marginalizeDistribution(*probs_, circuit_.numQubits(), qubits);
    }

    std::unique_ptr<Session> openAdHoc(const Circuit& rotated) const override
    {
        return std::make_unique<DmSession>(rotated, options_);
    }

  private:
    void ensureRho()
    {
        if (rho_)
            return;
        QKC_SPAN("dm.simulate");
        rho_ = sim_.simulatePlanned(plan_);
        probs_ = rho_->diagonalProbabilities();
    }

    /** meta.path from the dm plan's tree and its last plan/rebind tallies. */
    void stampPath(ResultMeta& meta) const
    {
        meta.path.planner = pathPlannerName(plan_.path.planner);
        meta.path.nodes = plan_.path.nodes.size();
        meta.path.mmNodes = plan_.path.mmNodes;
        meta.path.mmProducts = plan_.mmProducts;
        meta.path.cachedSubtrees = plan_.cachedSubtrees;
    }

    double traceRhoPauli(const PauliString& pauli) const
    {
        const std::size_t n = circuit_.numQubits();
        const std::uint64_t flip = pauliFlipMask(pauli, n);
        Complex total{0.0, 0.0};
        const std::uint64_t dim = rho_->dimension();
        for (std::uint64_t r = 0; r < dim; ++r)
            total += rho_->at(r, r ^ flip) * pauliPhase(pauli, n, r);
        return total.real();
    }

    BackendOptions options_;
    ExecPolicy policy_;
    DensityMatrixSimulator sim_;
    DmExecutionPlan plan_;
    std::optional<DensityMatrix> rho_;   ///< final state (per bind)
    std::optional<std::vector<double>> probs_;
};

// ---------------------------------------------------------------------------
// Tensor network
// ---------------------------------------------------------------------------

class TnSession final : public Session {
  public:
    TnSession(const Circuit& circuit, const BackendOptions& options)
        : Session("tensornetwork", circuit), options_(options),
          sampler_(circuit)
    {
        obsEnabled_ = options.obs;
    }

  protected:
    // cloneForBatch stays at the serializing default: the sampler's
    // per-prefix conditional-marginal plans are grown lazily *during*
    // sampling, so a lane clone would either deep-copy that mutable cache
    // or silently re-pay contraction planning per lane; contraction
    // arithmetic dominates tn runtime anyway, so runBatch binds and runs on
    // this session in batch order.

    bool doBind(const Circuit& circuit, bool sameStructure) override
    {
        if (sameStructure) {
            sampler_.rebind(circuit); // values only; contraction plans kept
            marginalStale_ = true;    // same for the subset plan: keep it,
                                      // refresh its tensor values on use
            return true;
        }
        sampler_ = TnSampler(circuit);
        marginal_.reset();
        return false;
    }

    std::vector<std::uint64_t> doSample(std::size_t shots, Rng& rng,
                                        ResultMeta& meta) override
    {
        meta.exact = true; // conditional marginals are contracted exactly
        QKC_SPAN("tn.sample");
        return sampler_.sample(shots, rng);
    }

    std::vector<Complex> doAmplitudes(
        const std::vector<std::uint64_t>& bitstrings,
        ResultMeta& meta) override
    {
        meta.exact = true;
        QKC_SPAN("tn.amplitudes");
        TensorNetworkSimulator tn;
        std::vector<Complex> out;
        out.reserve(bitstrings.size());
        const std::uint64_t dim = std::uint64_t{1} << circuit_.numQubits();
        for (std::uint64_t b : bitstrings) {
            if (b >= dim)
                throw std::invalid_argument(
                    "Amplitudes: bitstring out of range");
            out.push_back(tn.amplitude(circuit_, b));
        }
        return out;
    }

    std::vector<double> doProbabilities(const std::vector<std::size_t>& qubits,
                                        ResultMeta& meta) override
    {
        // Exact marginal over an arbitrary subset by doubled-network
        // contraction — never materializes the 2^n distribution. The plan
        // is cached per subset, so repeated queries (and assignments) only
        // re-pay contraction arithmetic.
        meta.exact = true;
        QKC_SPAN("tn.marginal");
        const std::size_t n = circuit_.numQubits();
        const std::vector<std::size_t> subset =
            qubits.empty() ? allQubits() : qubits;
        if (subset == allQubits()) {
            // The sampler already holds (and rebinds) exactly this plan:
            // the full-length prefix marginal.
            std::vector<double> out(std::size_t{1} << n);
            for (std::size_t a = 0; a < out.size(); ++a)
                out[a] = sampler_.prefixProbability(a, n);
            return out;
        }
        if (!marginal_ || marginalQubits_ != subset) {
            TnSampler::MarginalPlan mp =
                TnSampler::buildMarginalTensors(circuit_, subset);
            mp.plan = TnSampler::planContraction(mp.tensors);
            marginal_ = std::move(mp);
            marginalQubits_ = subset;
        } else if (marginalStale_) {
            // Same structure, new parameters: refresh the tensor values
            // but replay the cached contraction plan (edge wiring is
            // derived purely from the op sequence, so it is unchanged).
            TnSampler::MarginalPlan fresh =
                TnSampler::buildMarginalTensors(circuit_, subset);
            marginal_->tensors = std::move(fresh.tensors);
            marginal_->projectors = std::move(fresh.projectors);
        }
        marginalStale_ = false;
        std::vector<double> out(std::size_t{1} << subset.size());
        for (std::size_t a = 0; a < out.size(); ++a)
            out[a] = TnSampler::marginalProbability(*marginal_, a);
        return out;
    }

    std::unique_ptr<Session> openAdHoc(const Circuit& rotated) const override
    {
        // The cached sub-session is the tn fallback's big win: the rotated
        // network's contraction plans used to be rebuilt per term per call.
        return std::make_unique<TnSession>(rotated, options_);
    }

  private:
    std::vector<std::size_t> allQubits() const
    {
        std::vector<std::size_t> qs(circuit_.numQubits());
        for (std::size_t q = 0; q < qs.size(); ++q)
            qs[q] = q;
        return qs;
    }

    BackendOptions options_;
    TnSampler sampler_;
    std::optional<TnSampler::MarginalPlan> marginal_; ///< last proper subset
    std::vector<std::size_t> marginalQubits_;
    bool marginalStale_ = false; ///< values need a refresh after a rebind
};

// ---------------------------------------------------------------------------
// Decision diagram
// ---------------------------------------------------------------------------

DdGcOptions
ddGcOptions(const BackendOptions& options)
{
    return DdGcOptions{options.gc, options.gcThreshold};
}

class DdSession final : public Session {
  public:
    DdSession(const Circuit& circuit, const BackendOptions& options)
        : Session("decisiondiagram", circuit), options_(options),
          sim_(ddGcOptions(options))
    {
        obsEnabled_ = options.obs;
        if (options_.path.active())
            path_ = planSimulationPath(circuit, options_.path);
    }

  protected:
    std::unique_ptr<Session> cloneForBatch() const override
    {
        // The batch strategy ISSUE 5 names for dd: a DdPackage per lane —
        // its own arena, unique tables and compute caches; nothing shared
        // across threads. The lane's package persists across bindings and
        // batches (GC bounds it), so gate DDs and unique tables amortize
        // within each lane exactly as they do in the parent session.
        auto lane = std::make_unique<DdSession>(circuit_, options_);
        lane->clearInitialBuild(); // construction compiles nothing
        return lane;
    }

    void trimBatchLane() override
    {
        // Keep the lane package — the warm unique tables and gate DDs are
        // the point of a persistent lane — but drop the last binding's
        // state and collect it now: an idle lane pins only its live
        // diagram structure between batches, not a dead state per thread.
        if (!options_.gc) {
            dropCaches();
            return;
        }
        releaseState();
        if (sim_.hasPackage())
            sim_.package().garbageCollect();
    }

    std::size_t batchThreads() const override { return trajectoryLanes(); }

    bool doBind(const Circuit& circuit, bool sameStructure) override
    {
        // The path tree references ops by index, so it only goes stale on a
        // structure change; simulatePath's own signature check then retires
        // the frozen-subtree cache the old tree left protected.
        if (options_.path.active() && !sameStructure)
            path_ = planSimulationPath(circuit, options_.path);
        if (!options_.gc) {
            // Legacy lifecycle (gc=0): the arena pins every node for the
            // package lifetime, so carrying one package across a
            // variational sweep would grow node memory linearly in binds —
            // rebuild the world instead.
            dropCaches();
            return false;
        }
        // GC on: the package survives the bind — arena capacity, table
        // buckets, free lists and cached Pauli-term DDs all stay warm.
        // The old state is unrooted and collected NOW, not lazily: weight
        // interning snaps to existing entries within tolerance, so results
        // must not depend on which bindings this package saw before
        // (runBatch promises lane payloads bit-identical to a sequential
        // loop). A full sweep leaves only protected roots, giving every
        // binding the same deterministic starting table.
        releaseState();
        if (sim_.hasPackage())
            sim_.package().garbageCollect();
        return sameStructure;
    }

    std::vector<std::uint64_t> doSample(std::size_t shots, Rng& rng,
                                        ResultMeta& meta) override
    {
        markTaskStart();
        if (circuit_.noiseCount() > 0) {
            QKC_SPAN("dd.trajectories");
            meta.trajectories += shots;
            // Per-trajectory seed schedule, drawn in shot order before any
            // parallel work — the runBatch discipline applied one level
            // down. The payload is a pure function of (circuit, seeds), so
            // it is identical at every lane count and matches the serial
            // path bit for bit.
            std::vector<std::uint64_t> seeds(shots);
            for (auto& s : seeds)
                s = rng.next();
            const std::size_t lanes =
                std::min<std::size_t>(trajectoryLanes(), shots);
            if (lanes <= 1) {
                auto samples = sim_.sampleNoisySeeded(circuit_, seeds);
                stampDdMemory(meta);
                return samples;
            }
            return sampleNoisyParallel(seeds, lanes, meta);
        }
        ensureState();
        meta.exact = true;
        stampPath(meta);
        QKC_SPAN("dd.sample");
        std::vector<std::uint64_t> samples;
        samples.reserve(shots);
        for (std::size_t s = 0; s < shots; ++s)
            samples.push_back(sim_.package().sampleOutcome(state_, rng));
        stampDdMemory(meta);
        return samples;
    }

    double doExpectation(const PauliSum& observable, std::size_t shots,
                         Rng& rng, ResultMeta& meta) override
    {
        markTaskStart();
        if (circuit_.noiseCount() > 0) {
            const double est = sampledExpectation(observable, shots, rng,
                                                  meta);
            stampDdMemory(meta);
            return est;
        }

        // Native diagram walk: phi = P psi via ONE apply of the term's
        // n-qubit Pauli-string matrix DD (linear-size, cached across calls
        // and binds), then the memoized two-diagram inner product
        // <psi|phi>.
        ensureState();
        meta.exact = true;
        stampPath(meta);
        QKC_SPAN("dd.expectation");
        DdPackage& pkg = sim_.package();
        double total = 0.0;
        for (const auto& [coeff, pauli] : observable.terms) {
            if (pauli.isIdentity()) {
                total += coeff;
                continue;
            }
            const VEdge phi = pkg.apply(termDd(pauli), state_);
            total += coeff * pkg.innerProduct(state_, phi).real();
        }
        stampDdMemory(meta);
        return total;
    }

    std::vector<Complex> doAmplitudes(
        const std::vector<std::uint64_t>& bitstrings,
        ResultMeta& meta) override
    {
        markTaskStart();
        if (circuit_.noiseCount() > 0)
            unsupported("Amplitudes",
                        "noisy runs are trajectory mixtures");
        ensureState();
        meta.exact = true;
        stampPath(meta);
        QKC_SPAN("dd.amplitudes");
        const DdPackage& pkg = sim_.package();
        std::vector<Complex> out;
        out.reserve(bitstrings.size());
        const std::uint64_t dim = std::uint64_t{1} << circuit_.numQubits();
        for (std::uint64_t b : bitstrings) {
            if (b >= dim)
                throw std::invalid_argument(
                    "Amplitudes: bitstring out of range");
            out.push_back(pkg.amplitude(state_, b));
        }
        stampDdMemory(meta);
        return out;
    }

    std::vector<double> doProbabilities(const std::vector<std::size_t>& qubits,
                                        ResultMeta& meta) override
    {
        markTaskStart();
        if (circuit_.noiseCount() > 0)
            unsupported("Probabilities",
                        "the noisy decision-diagram path is "
                        "trajectory-sampled; use the density-matrix backend");
        ensureState();
        meta.exact = true;
        stampPath(meta);
        QKC_SPAN("dd.probabilities");
        auto probs = marginalizeDistribution(
            sim_.package().probabilities(state_), circuit_.numQubits(),
            qubits);
        stampDdMemory(meta);
        return probs;
    }

    std::unique_ptr<Session> openAdHoc(const Circuit& rotated) const override
    {
        return std::make_unique<DdSession>(rotated, options_);
    }

  private:
    /** Worker lanes for runBatch and trajectory fan-out (threads option). */
    std::size_t trajectoryLanes() const
    {
        ExecPolicy p;
        p.threads = options_.threads;
        return p.resolvedThreads();
    }

    /**
     * Fans the seeded trajectories over per-lane simulators, each with a
     * private DdPackage (arena, unique and compute tables) — the runBatch
     * lane strategy applied inside one noisy Sample. Lanes claim contiguous
     * seed blocks as pool chunks (chunk index == lane index) and outcomes
     * land at their shot index, so the payload is independent of which
     * thread ran which block; the serial fallback inside parallelForChunks
     * replays the same chunk boundaries, so a task issued from within a
     * batch lane (nested region) reads the same bits. Lane simulators are
     * per-call: a trajectory's state is worthless between tasks — unlike a
     * batch lane's plan — so nothing is worth pinning per thread.
     */
    std::vector<std::uint64_t> sampleNoisyParallel(
        const std::vector<std::uint64_t>& seeds, std::size_t lanes,
        ResultMeta& meta)
    {
        const std::size_t shots = seeds.size();
        std::vector<std::uint64_t> samples(shots);
        std::vector<DdSimulator> laneSims;
        laneSims.reserve(lanes);
        for (std::size_t l = 0; l < lanes; ++l)
            laneSims.emplace_back(ddGcOptions(options_));

        // Same exception containment as runBatch: nothing may unwind
        // through the pool; the lowest chunk's error is rethrown.
        std::vector<std::exception_ptr> chunkErrors(lanes);
        ExecPolicy fanout;
        fanout.threads = lanes;
        fanout.serialThreshold = 1;
        fanout.grain = (shots + lanes - 1) / lanes;
        parallelForChunks(
            fanout, shots,
            [&](std::size_t chunk, std::uint64_t b, std::uint64_t e) {
                try {
                    const std::vector<std::uint64_t> laneSeeds(
                        seeds.begin() + static_cast<std::ptrdiff_t>(b),
                        seeds.begin() + static_cast<std::ptrdiff_t>(e));
                    const auto out =
                        laneSims[chunk].sampleNoisySeeded(circuit_,
                                                          laneSeeds);
                    std::copy(out.begin(), out.end(),
                              samples.begin() +
                                  static_cast<std::ptrdiff_t>(b));
                } catch (...) {
                    chunkErrors[chunk] = std::current_exception();
                }
            });
        for (const std::exception_ptr& err : chunkErrors)
            if (err)
                std::rethrow_exception(err);

        // The memory stats readers assert on (gc ran, live nodes bounded)
        // happened in the lane packages: sum the counters, take the peak
        // across arenas. Lane packages are fresh, so lifetime and per-task
        // tallies coincide.
        DdMemoryStats m;
        for (DdSimulator& laneSim : laneSims) {
            if (!laneSim.hasPackage())
                continue;
            const DdStats& s = laneSim.package().stats();
            m.liveVNodes += s.liveVNodes;
            m.liveMNodes += s.liveMNodes;
            m.gcRuns += s.gcRuns;
            m.nodesCollected += s.nodesCollected;
            m.peakLiveNodes = std::max(m.peakLiveNodes, s.peakLiveNodes);
            m.gcNanos += s.gcNanos;
            m.apply.hits += s.applyHits;
            m.apply.misses += s.applyMisses;
            m.add.hits += s.addHits;
            m.add.misses += s.addMisses;
        }
        m.taskApply = m.apply;
        m.taskAdd = m.add;
        meta.ddMemory = m;
        return samples;
    }

    void ensureState()
    {
        if (built_)
            return;
        if (options_.gc && sim_.hasPackage())
            sim_.package().maybeGarbageCollect();
        QKC_SPAN("dd.build");
        if (options_.path.active() && circuit_.noiseCount() == 0)
            state_ = sim_.simulatePath(circuit_, path_, &pathStats_);
        else
            state_ = sim_.simulate(circuit_);
        if (options_.gc)
            sim_.package().protect(state_);
        built_ = true;
    }

    /** Unroots the bound state (GC path); the next task rebuilds lazily. */
    void releaseState()
    {
        if (built_ && options_.gc && sim_.hasPackage())
            sim_.package().unprotect(state_);
        built_ = false;
    }

    /** Legacy (gc=0) teardown: fresh package, term-DD cache dies with it. */
    void dropCaches()
    {
        sim_ = DdSimulator(ddGcOptions(options_));
        termDds_.clear();
        built_ = false;
    }

    /**
     * The cached matrix DD for a Pauli term. Pauli matrices carry no
     * parameters, so the cache survives rebinds as long as the package
     * does; each entry is protected so collections keep it (and its
     * chain) alive, with the unprotect implicit in the package teardown.
     */
    const MEdge& termDd(const PauliString& pauli)
    {
        std::string key(circuit_.numQubits(), 'I');
        for (std::size_t q = 0; q < pauli.numQubits(); ++q)
            key[q] = pauli.pauli(q);
        auto it = termDds_.find(key);
        if (it == termDds_.end()) {
            const MEdge dd = sim_.package().makePauliDd(key);
            if (options_.gc)
                sim_.package().protect(dd);
            it = termDds_.emplace(key, dd).first;
        }
        return it->second;
    }

    /**
     * Snapshots the package counters at task entry so stampDdMemory can
     * report per-task compute-table deltas (hit rates undiluted by the
     * session's history). Zeros when no package exists yet — a first task
     * then deltas against a fresh package, which is also correct.
     */
    void markTaskStart()
    {
        taskStart_ = sim_.hasPackage() ? sim_.package().stats() : DdStats{};
    }

    /** meta.path from the planned tree and the last simulatePath run. */
    void stampPath(ResultMeta& meta) const
    {
        if (!options_.path.active()) {
            meta.path.planner = pathPlannerName(PathPlanner::Linear);
            return; // gate-by-gate build == the linear chain
        }
        meta.path.planner = pathPlannerName(path_.planner);
        meta.path.nodes = path_.nodes.size();
        meta.path.mmNodes = path_.mmNodes;
        meta.path.mmProducts = pathStats_.mmProducts;
        meta.path.cachedSubtrees = pathStats_.cachedSubtrees;
    }

    void stampDdMemory(ResultMeta& meta)
    {
        if (!sim_.hasPackage())
            return;
        const DdStats& s = sim_.package().stats();
        DdMemoryStats m;
        m.liveVNodes = s.liveVNodes;
        m.liveMNodes = s.liveMNodes;
        m.gcRuns = s.gcRuns;
        m.nodesCollected = s.nodesCollected;
        m.peakLiveNodes = s.peakLiveNodes;
        m.gcNanos = s.gcNanos;
        m.apply = {s.applyHits, s.applyMisses};
        m.add = {s.addHits, s.addMisses};
        m.taskApply = {s.applyHits - taskStart_.applyHits,
                       s.applyMisses - taskStart_.applyMisses};
        m.taskAdd = {s.addHits - taskStart_.addHits,
                     s.addMisses - taskStart_.addMisses};
        meta.ddMemory = m;
    }

    BackendOptions options_;
    DdSimulator sim_;
    SimulationPath path_;   ///< planned once per structure; empty when inactive
    DdPathStats pathStats_; ///< what the last simulatePath run did
    DdStats taskStart_{}; ///< package counters at task entry (per-task deltas)
    VEdge state_;
    bool built_ = false;
    std::map<std::string, MEdge> termDds_; ///< per-term Pauli-string DDs
};

// ---------------------------------------------------------------------------
// Knowledge compilation
// ---------------------------------------------------------------------------

class KcSession final : public Session {
  public:
    KcSession(const Circuit& circuit, const BackendOptions& options)
        : Session("knowledgecompilation", circuit), options_(options)
    {
        obsEnabled_ = options.obs;
        gibbs_.burnIn = options.burnIn;
        gibbs_.thin = options.thin;
        QKC_SPAN("kc.compile");
        sim_ = std::make_unique<KcSimulator>(circuit);
    }

  protected:
    std::unique_ptr<Session> cloneForBatch() const override
    {
        // The batch strategy ISSUE 5 names for kc: each worker lane holds
        // its own compiled AC and refreshes its parameter leaves per
        // binding. The compiled structure is pointer-rich (AC nodes,
        // evaluator tapes), so a lane pays one honest compile — counted as
        // a planBuild — and amortizes it across every batch this session
        // runs (lanes persist for the session lifetime).
        return std::make_unique<KcSession>(circuit_, options_);
    }

    void trimBatchLane() override
    {
        // Keep the compiled AC (the expensive part); drop the 2^n query
        // caches the last binding materialized.
        dist_.reset();
        amps_.reset();
    }
    bool doBind(const Circuit& circuit, bool sameStructure) override
    {
        dist_.reset();
        amps_.reset();
        if (sameStructure) {
            try {
                QKC_SPAN("kc.refresh");
                sim_->refreshParams(circuit);
                return true;
            } catch (const std::invalid_argument&) {
                // Fall through: compile from scratch.
            }
        }
        QKC_SPAN("kc.compile");
        sim_ = std::make_unique<KcSimulator>(circuit);
        return false;
    }

    std::vector<std::uint64_t> doSample(std::size_t shots, Rng& rng,
                                        ResultMeta& meta) override
    {
        (void)meta; // Gibbs sampling is MCMC: exact stays false
        QKC_SPAN("kc.gibbs");
        return sim_->sample(shots, rng, gibbs_);
    }

    double doExpectation(const PauliSum& observable, std::size_t shots,
                         Rng& rng, ResultMeta& meta) override
    {
        // AC queries serve diagonal terms from the exact outcome
        // distribution (noise included — probability() sums noise events)
        // and, on ideal circuits, arbitrary Paulis from the amplitude
        // vector. When the query cost is infeasible (the noise-assignment
        // enumeration is exponential in the channel count) or a term needs
        // rotated bases under noise, the whole sum falls back to Gibbs
        // shots so the metadata stays a truthful all-or-nothing flag.
        const bool distOk = distributionFeasible();
        const bool ampsOk =
            circuit_.noiseCount() == 0 &&
            circuit_.numQubits() <= kMaxExactQubits;
        bool allExact = true;
        for (const auto& [coeff, pauli] : observable.terms) {
            (void)coeff;
            if (pauli.isIdentity())
                continue;
            if (pauli.isDiagonal() ? !distOk : !ampsOk) {
                allExact = false;
                break;
            }
        }
        if (!allExact)
            return sampledExpectation(observable, shots, rng, meta);

        meta.exact = true;
        double total = 0.0;
        for (const auto& [coeff, pauli] : observable.terms) {
            if (pauli.isIdentity()) {
                total += coeff;
                continue;
            }
            if (pauli.isDiagonal()) {
                ensureDistribution();
                total += coeff * pauli.expectationFromDistribution(*dist_);
                continue;
            }
            ensureAmplitudes();
            total += coeff * pauliExpectationFromAmplitudes(pauli);
        }
        return total;
    }

    std::vector<Complex> doAmplitudes(
        const std::vector<std::uint64_t>& bitstrings,
        ResultMeta& meta) override
    {
        if (circuit_.noiseCount() > 0)
            unsupported("Amplitudes",
                        "amplitudes of noisy circuits require an explicit "
                        "noise-event assignment; query KcSimulator directly");
        meta.exact = true;
        const std::uint64_t dim = std::uint64_t{1} << circuit_.numQubits();
        std::vector<Complex> out;
        out.reserve(bitstrings.size());
        for (std::uint64_t b : bitstrings) {
            if (b >= dim)
                throw std::invalid_argument(
                    "Amplitudes: bitstring out of range");
            out.push_back(sim_->amplitude(b));
        }
        return out;
    }

    std::vector<double> doProbabilities(const std::vector<std::size_t>& qubits,
                                        ResultMeta& meta) override
    {
        if (!distributionFeasible())
            unsupported("Probabilities",
                        circuit_.noiseCount() == 0
                            ? "the exact distribution costs 2^n AC "
                              "evaluations and the circuit exceeds the "
                              "qubit cap"
                            : "the exact noise-assignment enumeration is "
                              "exponential in the channel count and "
                              "exceeds the feasibility limit here");
        ensureDistribution();
        meta.exact = true;
        return marginalizeDistribution(*dist_, circuit_.numQubits(), qubits);
    }

    std::unique_ptr<Session> openAdHoc(const Circuit& rotated) const override
    {
        // Gibbs shots are accounted via fallbackShots; caching the rotated
        // sub-session means the AC for a term signature compiles once per
        // session instead of once per Expectation call.
        return std::make_unique<KcSession>(rotated, options_);
    }

  private:
    /** Qubit cap for 2^n-query sweeps (distribution / amplitude vector). */
    static constexpr std::size_t kMaxExactQubits = 16;
    /** Evaluator-pass budget for exact queries (2^n x noise assignments). */
    static constexpr double kMaxExactEvaluations = 1 << 16;

    /** True when the exact outcome distribution is affordable to compute. */
    bool distributionFeasible() const
    {
        const std::size_t n = circuit_.numQubits();
        if (n > kMaxExactQubits)
            return false;
        double evaluations = static_cast<double>(std::uint64_t{1} << n);
        const auto& bn = sim_->bayesNet();
        for (std::size_t v : bn.noiseVars()) {
            evaluations *= static_cast<double>(bn.variable(v).cardinality);
            if (evaluations > kMaxExactEvaluations)
                return false;
        }
        return evaluations <= kMaxExactEvaluations;
    }

    void ensureDistribution()
    {
        if (dist_)
            return;
        QKC_SPAN("kc.distribution");
        dist_ = sim_->outcomeDistribution();
    }

    void ensureAmplitudes()
    {
        if (amps_)
            return;
        QKC_SPAN("kc.amplitudes");
        const std::uint64_t dim = std::uint64_t{1} << circuit_.numQubits();
        std::vector<Complex> amps;
        amps.reserve(dim);
        for (std::uint64_t x = 0; x < dim; ++x)
            amps.push_back(sim_->amplitude(x));
        amps_ = std::move(amps);
    }

    /** <psi|P|psi> = sum_x conj(psi_x) psi_{x^flip} f(x^flip). */
    double pauliExpectationFromAmplitudes(const PauliString& pauli) const
    {
        const std::size_t n = circuit_.numQubits();
        const std::uint64_t flip = pauliFlipMask(pauli, n);
        Complex total{0.0, 0.0};
        for (std::uint64_t x = 0; x < amps_->size(); ++x) {
            const std::uint64_t y = x ^ flip;
            total += std::conj((*amps_)[x]) * (*amps_)[y] *
                     pauliPhase(pauli, n, y);
        }
        return total.real();
    }

    BackendOptions options_;
    GibbsOptions gibbs_;
    std::unique_ptr<KcSimulator> sim_;
    std::optional<std::vector<double>> dist_;
    std::optional<std::vector<Complex>> amps_;
};

} // namespace

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

std::unique_ptr<Session>
StateVectorBackend::open(const Circuit& circuit,
                         const BackendOptions& options) const
{
    return std::make_unique<SvSession>(circuit, options);
}

std::unique_ptr<Session>
DensityMatrixBackend::open(const Circuit& circuit,
                           const BackendOptions& options) const
{
    return std::make_unique<DmSession>(circuit, options);
}

std::unique_ptr<Session>
TensorNetworkBackend::open(const Circuit& circuit,
                           const BackendOptions& options) const
{
    return std::make_unique<TnSession>(circuit, options);
}

std::unique_ptr<Session>
DecisionDiagramBackend::open(const Circuit& circuit,
                             const BackendOptions& options) const
{
    return std::make_unique<DdSession>(circuit, options);
}

std::unique_ptr<Session>
KnowledgeCompilationBackend::open(const Circuit& circuit,
                                  const BackendOptions& options) const
{
    return std::make_unique<KcSession>(circuit, options);
}

std::unique_ptr<Backend>
makeBackend(const std::string& spec)
{
    const BackendSpec parsed = parseBackendSpec(spec);
    if (parsed.name == "statevector")
        return std::make_unique<StateVectorBackend>(parsed.options);
    if (parsed.name == "densitymatrix")
        return std::make_unique<DensityMatrixBackend>(parsed.options);
    if (parsed.name == "tensornetwork")
        return std::make_unique<TensorNetworkBackend>(parsed.options);
    if (parsed.name == "decisiondiagram")
        return std::make_unique<DecisionDiagramBackend>(parsed.options);
    return std::make_unique<KnowledgeCompilationBackend>(parsed.options);
}

} // namespace qkc
