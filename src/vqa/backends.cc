#include "vqa/backends.h"

#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "tensornet/tensornet_simulator.h"

namespace qkc {

std::vector<std::uint64_t>
StateVectorBackend::sample(const Circuit& circuit, std::size_t numSamples,
                           Rng& rng)
{
    StateVectorSimulator sim;
    if (circuit.noiseCount() == 0)
        return sim.sample(circuit, numSamples, rng);
    return sim.sampleNoisy(circuit, numSamples, rng);
}

std::vector<std::uint64_t>
DensityMatrixBackend::sample(const Circuit& circuit, std::size_t numSamples,
                             Rng& rng)
{
    DensityMatrixSimulator sim;
    return sim.sample(circuit, numSamples, rng);
}

std::vector<std::uint64_t>
TensorNetworkBackend::sample(const Circuit& circuit, std::size_t numSamples,
                             Rng& rng)
{
    TnSampler sampler(circuit);
    return sampler.sample(numSamples, rng);
}

KnowledgeCompilationBackend::KnowledgeCompilationBackend(
    CompileOptions compileOptions, GibbsOptions gibbsOptions)
    : compileOptions_(compileOptions), gibbsOptions_(gibbsOptions)
{
}

std::vector<std::uint64_t>
KnowledgeCompilationBackend::sample(const Circuit& circuit,
                                    std::size_t numSamples, Rng& rng)
{
    if (!simulator_) {
        simulator_ = std::make_unique<KcSimulator>(circuit, compileOptions_);
        ++compileCount_;
    } else {
        try {
            simulator_->refreshParams(circuit);
        } catch (const std::invalid_argument&) {
            // Different structure: compile from scratch.
            simulator_ = std::make_unique<KcSimulator>(circuit,
                                                       compileOptions_);
            ++compileCount_;
        }
    }
    return simulator_->sample(numSamples, rng, gibbsOptions_);
}

} // namespace qkc
