#include "vqa/backends.h"

#include <cstdlib>
#include <map>
#include <stdexcept>

#include "dd/dd_simulator.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "tensornet/tensornet_simulator.h"

namespace qkc {

std::vector<std::uint64_t>
StateVectorBackend::sample(const Circuit& circuit, std::size_t numSamples,
                           Rng& rng)
{
    StateVectorSimulator sim(policy_);
    if (circuit.noiseCount() == 0)
        return sim.sample(circuit, numSamples, rng);
    return sim.sampleNoisy(circuit, numSamples, rng);
}

std::vector<std::uint64_t>
DensityMatrixBackend::sample(const Circuit& circuit, std::size_t numSamples,
                             Rng& rng)
{
    DensityMatrixSimulator sim(policy_);
    return sim.sample(circuit, numSamples, rng);
}

std::vector<std::uint64_t>
TensorNetworkBackend::sample(const Circuit& circuit, std::size_t numSamples,
                             Rng& rng)
{
    TnSampler sampler(circuit);
    return sampler.sample(numSamples, rng);
}

std::vector<std::uint64_t>
DecisionDiagramBackend::sample(const Circuit& circuit, std::size_t numSamples,
                               Rng& rng)
{
    DdSimulator sim;
    if (circuit.noiseCount() == 0)
        return sim.sample(circuit, numSamples, rng);
    return sim.sampleNoisy(circuit, numSamples, rng);
}

KnowledgeCompilationBackend::KnowledgeCompilationBackend(
    CompileOptions compileOptions, GibbsOptions gibbsOptions)
    : compileOptions_(compileOptions), gibbsOptions_(gibbsOptions)
{
}

std::vector<std::uint64_t>
KnowledgeCompilationBackend::sample(const Circuit& circuit,
                                    std::size_t numSamples, Rng& rng)
{
    if (!simulator_) {
        simulator_ = std::make_unique<KcSimulator>(circuit, compileOptions_);
        ++compileCount_;
    } else {
        try {
            simulator_->refreshParams(circuit);
        } catch (const std::invalid_argument&) {
            // Different structure: compile from scratch.
            simulator_ = std::make_unique<KcSimulator>(circuit,
                                                       compileOptions_);
            ++compileCount_;
        }
    }
    return simulator_->sample(numSamples, rng, gibbsOptions_);
}

const std::vector<std::string>&
backendNames()
{
    static const std::vector<std::string> names = {
        "statevector", "densitymatrix", "tensornetwork", "decisiondiagram",
        "knowledgecompilation"};
    return names;
}

namespace {

using OptionMap = std::map<std::string, std::string>;

/** Splits "name:k1=v1,k2=v2" into the base name and its option map. */
OptionMap
parseOptions(const std::string& spec, std::string& name)
{
    OptionMap options;
    const auto colon = spec.find(':');
    name = spec.substr(0, colon);
    if (colon == std::string::npos)
        return options;

    std::string rest = spec.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
        const auto comma = rest.find(',', pos);
        const std::string item =
            rest.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        const auto eq = item.find('=');
        if (item.empty() || eq == std::string::npos || eq == 0) {
            throw std::invalid_argument(
                "makeBackend: malformed option \"" + item + "\" in \"" +
                spec + "\" (expected key=value, comma-separated)");
        }
        options[item.substr(0, eq)] = item.substr(eq + 1);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return options;
}

long
parseIntOption(const std::string& key, const std::string& value)
{
    char* end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
        throw std::invalid_argument("makeBackend: option " + key +
                                    " needs an integer, got \"" + value +
                                    "\"");
    }
    return v;
}

/** Throws if `options` still holds keys this backend does not understand. */
void
rejectUnknown(const std::string& backend, const OptionMap& options,
              const std::string& known)
{
    if (options.empty())
        return;
    throw std::invalid_argument(
        "makeBackend: unknown option \"" + options.begin()->first +
        "\" for backend " + backend +
        (known.empty() ? " (it accepts no options)"
                       : " (valid: " + known + ")"));
}

/** Consumes threads/fuse into an ExecPolicy; leftovers stay in `options`. */
ExecPolicy
takeExecOptions(OptionMap& options)
{
    ExecPolicy policy;
    if (auto it = options.find("threads"); it != options.end()) {
        const long v = parseIntOption("threads", it->second);
        if (v < 0)
            throw std::invalid_argument(
                "makeBackend: option threads must be >= 0");
        policy.threads = static_cast<std::size_t>(v);
        options.erase(it);
    }
    if (auto it = options.find("fuse"); it != options.end()) {
        const long v = parseIntOption("fuse", it->second);
        if (v != 0 && v != 1)
            throw std::invalid_argument(
                "makeBackend: option fuse must be 0 or 1");
        policy.fuseGates = v == 1;
        options.erase(it);
    }
    return policy;
}

} // namespace

std::unique_ptr<SamplerBackend>
makeBackend(const std::string& spec)
{
    std::string name;
    OptionMap options = parseOptions(spec, name);

    if (name == "statevector" || name == "sv") {
        ExecPolicy policy = takeExecOptions(options);
        rejectUnknown("statevector", options, "threads, fuse");
        return std::make_unique<StateVectorBackend>(policy);
    }
    if (name == "densitymatrix" || name == "dm") {
        ExecPolicy policy = takeExecOptions(options);
        rejectUnknown("densitymatrix", options, "threads, fuse");
        return std::make_unique<DensityMatrixBackend>(policy);
    }
    if (name == "tensornetwork" || name == "tn") {
        rejectUnknown("tensornetwork", options, "");
        return std::make_unique<TensorNetworkBackend>();
    }
    if (name == "decisiondiagram" || name == "dd") {
        rejectUnknown("decisiondiagram", options, "");
        return std::make_unique<DecisionDiagramBackend>();
    }
    if (name == "knowledgecompilation" || name == "kc") {
        GibbsOptions gibbs;
        if (auto it = options.find("burnin"); it != options.end()) {
            const long v = parseIntOption("burnin", it->second);
            if (v < 0)
                throw std::invalid_argument(
                    "makeBackend: option burnin must be >= 0");
            gibbs.burnIn = static_cast<std::size_t>(v);
            options.erase(it);
        }
        if (auto it = options.find("thin"); it != options.end()) {
            const long v = parseIntOption("thin", it->second);
            if (v < 1)
                throw std::invalid_argument(
                    "makeBackend: option thin must be >= 1");
            gibbs.thin = static_cast<std::size_t>(v);
            options.erase(it);
        }
        rejectUnknown("knowledgecompilation", options, "burnin, thin");
        return std::make_unique<KnowledgeCompilationBackend>(CompileOptions{},
                                                             gibbs);
    }

    std::string known;
    for (const std::string& n : backendNames())
        known += (known.empty() ? "" : ", ") + n;
    throw std::invalid_argument("makeBackend: unknown backend \"" + name +
                                "\" (known: " + known + ")");
}

} // namespace qkc
