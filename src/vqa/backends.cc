#include "vqa/backends.h"

#include <stdexcept>

#include "dd/dd_simulator.h"
#include "densitymatrix/densitymatrix_simulator.h"
#include "statevector/statevector_simulator.h"
#include "tensornet/tensornet_simulator.h"

namespace qkc {

std::vector<std::uint64_t>
StateVectorBackend::sample(const Circuit& circuit, std::size_t numSamples,
                           Rng& rng)
{
    StateVectorSimulator sim;
    if (circuit.noiseCount() == 0)
        return sim.sample(circuit, numSamples, rng);
    return sim.sampleNoisy(circuit, numSamples, rng);
}

std::vector<std::uint64_t>
DensityMatrixBackend::sample(const Circuit& circuit, std::size_t numSamples,
                             Rng& rng)
{
    DensityMatrixSimulator sim;
    return sim.sample(circuit, numSamples, rng);
}

std::vector<std::uint64_t>
TensorNetworkBackend::sample(const Circuit& circuit, std::size_t numSamples,
                             Rng& rng)
{
    TnSampler sampler(circuit);
    return sampler.sample(numSamples, rng);
}

std::vector<std::uint64_t>
DecisionDiagramBackend::sample(const Circuit& circuit, std::size_t numSamples,
                               Rng& rng)
{
    DdSimulator sim;
    if (circuit.noiseCount() == 0)
        return sim.sample(circuit, numSamples, rng);
    return sim.sampleNoisy(circuit, numSamples, rng);
}

KnowledgeCompilationBackend::KnowledgeCompilationBackend(
    CompileOptions compileOptions, GibbsOptions gibbsOptions)
    : compileOptions_(compileOptions), gibbsOptions_(gibbsOptions)
{
}

std::vector<std::uint64_t>
KnowledgeCompilationBackend::sample(const Circuit& circuit,
                                    std::size_t numSamples, Rng& rng)
{
    if (!simulator_) {
        simulator_ = std::make_unique<KcSimulator>(circuit, compileOptions_);
        ++compileCount_;
    } else {
        try {
            simulator_->refreshParams(circuit);
        } catch (const std::invalid_argument&) {
            // Different structure: compile from scratch.
            simulator_ = std::make_unique<KcSimulator>(circuit,
                                                       compileOptions_);
            ++compileCount_;
        }
    }
    return simulator_->sample(numSamples, rng, gibbsOptions_);
}

const std::vector<std::string>&
backendNames()
{
    static const std::vector<std::string> names = {
        "statevector", "densitymatrix", "tensornetwork", "decisiondiagram",
        "knowledgecompilation"};
    return names;
}

std::unique_ptr<SamplerBackend>
makeBackend(const std::string& name)
{
    if (name == "statevector" || name == "sv")
        return std::make_unique<StateVectorBackend>();
    if (name == "densitymatrix" || name == "dm")
        return std::make_unique<DensityMatrixBackend>();
    if (name == "tensornetwork" || name == "tn")
        return std::make_unique<TensorNetworkBackend>();
    if (name == "decisiondiagram" || name == "dd")
        return std::make_unique<DecisionDiagramBackend>();
    if (name == "knowledgecompilation" || name == "kc")
        return std::make_unique<KnowledgeCompilationBackend>();

    std::string known;
    for (const std::string& n : backendNames())
        known += (known.empty() ? "" : ", ") + n;
    throw std::invalid_argument("makeBackend: unknown backend \"" + name +
                                "\" (known: " + known + ")");
}

} // namespace qkc
