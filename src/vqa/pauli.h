#ifndef QKC_VQA_PAULI_H
#define QKC_VQA_PAULI_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "circuit/circuit.h"

namespace qkc {

/**
 * A Pauli string observable, e.g. "XZIY": one Pauli per qubit (I for
 * untouched qubits). Generalizes the diagonal Ising objectives the paper's
 * VQE uses. This is a pure observable library — how a value is *obtained*
 * (natively by a backend session's Expectation task, or estimated from
 * shots in a rotated basis) lives in the simulator API, not here.
 */
class PauliString {
  public:
    /** Parses "XZIY"-style text (characters I, X, Y, Z). */
    explicit PauliString(const std::string& text);

    std::size_t numQubits() const { return paulis_.size(); }
    const std::string& text() const { return text_; }

    /** The Pauli on `qubit` ('I', 'X', 'Y' or 'Z'). */
    char pauli(std::size_t qubit) const { return paulis_[qubit]; }

    /** True if the string is all I/Z (directly measurable). */
    bool isDiagonal() const;

    /** True if the string is all I (a constant observable). */
    bool isIdentity() const;

    /**
     * Returns `circuit` extended with the basis-change gates that map this
     * observable's eigenbasis onto the computational basis (H for X,
     * Sdg then H for Y).
     */
    Circuit withMeasurementBasis(const Circuit& circuit) const;

    /** Eigenvalue (+1/-1) of a post-rotation measurement outcome. */
    int eigenvalue(std::uint64_t outcome) const;

    /** Mean eigenvalue over post-rotation samples. */
    double expectationFromSamples(
        const std::vector<std::uint64_t>& samples) const;

    /**
     * Exact eigenvalue mean under a full outcome distribution (diagonal
     * strings only make sense here — callers check isDiagonal first).
     */
    double expectationFromDistribution(
        const std::vector<double>& distribution) const;

  private:
    std::string text_;
    std::vector<char> paulis_;
};

/**
 * A weighted sum of Pauli strings H = sum_j c_j P_j — a general qubit
 * Hamiltonian, and the payload of the simulator API's Expectation task.
 * Backends that can evaluate <H> exactly (state vector, density matrix,
 * decision diagram, knowledge compilation on ideal circuits) do so
 * natively; the rest estimate it term by term from rotated-basis shots.
 */
struct PauliSum {
    std::vector<std::pair<double, PauliString>> terms;

    PauliSum& add(double coeff, PauliString pauli)
    {
        terms.emplace_back(coeff, std::move(pauli));
        return *this;
    }

    /** Qubit count of the first term (0 when empty; terms must agree). */
    std::size_t numQubits() const
    {
        return terms.empty() ? 0 : terms.front().second.numQubits();
    }

    /** True if every term is all I/Z (computational-basis measurable). */
    bool isDiagonal() const;
};

/** Pre-redesign name of PauliSum, kept for source compatibility. */
using PauliHamiltonian = PauliSum;

} // namespace qkc

#endif // QKC_VQA_PAULI_H
