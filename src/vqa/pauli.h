#ifndef QKC_VQA_PAULI_H
#define QKC_VQA_PAULI_H

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.h"
#include "vqa/backends.h"

namespace qkc {

/**
 * A Pauli string observable, e.g. "XZIY": one Pauli per qubit (I for
 * untouched qubits). Generalizes the diagonal Ising objectives the paper's
 * VQE uses: non-diagonal terms are estimated by appending the standard
 * basis-change gates (H for X, Sdg+H for Y) and measuring in the
 * computational basis.
 */
class PauliString {
  public:
    /** Parses "XZIY"-style text (characters I, X, Y, Z). */
    explicit PauliString(const std::string& text);

    std::size_t numQubits() const { return paulis_.size(); }
    const std::string& text() const { return text_; }

    /** True if the string is all I/Z (directly measurable). */
    bool isDiagonal() const;

    /**
     * Returns `circuit` extended with the basis-change gates that map this
     * observable's eigenbasis onto the computational basis.
     */
    Circuit withMeasurementBasis(const Circuit& circuit) const;

    /** Eigenvalue (+1/-1) of a post-rotation measurement outcome. */
    int eigenvalue(std::uint64_t outcome) const;

    /** Mean eigenvalue over post-rotation samples. */
    double expectationFromSamples(
        const std::vector<std::uint64_t>& samples) const;

  private:
    std::string text_;
    std::vector<char> paulis_;
};

/**
 * A weighted sum of Pauli strings H = sum_j c_j P_j — a general qubit
 * Hamiltonian. Expectation under a circuit's output state is estimated term
 * by term: each non-identity term gets its own measurement-basis circuit and
 * `samplesPerTerm` shots from the backend.
 */
struct PauliHamiltonian {
    std::vector<std::pair<double, PauliString>> terms;

    /** <H> estimated from samples of `backend`. */
    double expectation(const Circuit& circuit, SamplerBackend& backend,
                       std::size_t samplesPerTerm, Rng& rng) const;
};

} // namespace qkc

#endif // QKC_VQA_PAULI_H
