#include "vqa/nelder_mead.h"

#include <algorithm>
#include <cmath>

namespace qkc {

NelderMeadResult
nelderMead(const std::function<double(const std::vector<double>&)>& objective,
           std::vector<double> initial, const NelderMeadOptions& options)
{
    const std::size_t n = initial.size();
    NelderMeadResult result;

    // Standard coefficients: reflection, expansion, contraction, shrink.
    const double alpha = 1.0, gamma = 2.0, rho = 0.5, sigma = 0.5;

    struct Vertex {
        std::vector<double> x;
        double f;
    };
    std::vector<Vertex> simplex;
    simplex.reserve(n + 1);
    auto eval = [&](const std::vector<double>& x) {
        ++result.evaluations;
        return objective(x);
    };
    simplex.push_back({initial, eval(initial)});
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> x = initial;
        x[i] += options.initialStep;
        simplex.push_back({x, eval(x)});
    }

    for (std::size_t it = 0; it < options.maxIterations; ++it) {
        ++result.iterations;
        std::sort(simplex.begin(), simplex.end(),
                  [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
        if (simplex.back().f - simplex.front().f < options.tolerance)
            break;

        // Centroid of all but the worst vertex.
        std::vector<double> centroid(n, 0.0);
        for (std::size_t v = 0; v < n; ++v)
            for (std::size_t i = 0; i < n; ++i)
                centroid[i] += simplex[v].x[i] / static_cast<double>(n);

        auto blend = [&](double t) {
            std::vector<double> x(n);
            for (std::size_t i = 0; i < n; ++i)
                x[i] = centroid[i] + t * (simplex.back().x[i] - centroid[i]);
            return x;
        };

        std::vector<double> reflected = blend(-alpha);
        double fr = eval(reflected);
        if (fr < simplex.front().f) {
            std::vector<double> expanded = blend(-gamma);
            double fe = eval(expanded);
            simplex.back() = fe < fr ? Vertex{expanded, fe}
                                     : Vertex{reflected, fr};
            continue;
        }
        if (fr < simplex[n - 1].f) {
            simplex.back() = {reflected, fr};
            continue;
        }
        std::vector<double> contracted = blend(rho);
        double fc = eval(contracted);
        if (fc < simplex.back().f) {
            simplex.back() = {contracted, fc};
            continue;
        }
        // Shrink towards the best vertex.
        for (std::size_t v = 1; v <= n; ++v) {
            for (std::size_t i = 0; i < n; ++i)
                simplex[v].x[i] = simplex[0].x[i] +
                                  sigma * (simplex[v].x[i] - simplex[0].x[i]);
            simplex[v].f = eval(simplex[v].x);
        }
    }

    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });
    result.best = simplex.front().x;
    result.value = simplex.front().f;
    return result;
}

} // namespace qkc
