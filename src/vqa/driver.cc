#include "vqa/driver.h"

#include "util/timer.h"

namespace qkc {

namespace {

/** Shared loop body: builds circuits, samples, scores. */
VqaResult
runLoop(std::size_t numParams,
        const std::function<Circuit(const std::vector<double>&)>& makeCircuit,
        const std::function<double(const std::vector<std::uint64_t>&)>& score,
        SamplerBackend& backend, const VqaOptions& options)
{
    VqaResult result;
    Rng rng(options.seed);
    Timer sampleTimer;
    double sampleSeconds = 0.0;
    std::size_t evaluations = 0;

    auto objective = [&](const std::vector<double>& params) {
        Circuit c = makeCircuit(params);
        if (options.noisy)
            c = c.withNoiseAfterEachGate(options.noiseKind,
                                         options.noiseStrength);
        ++evaluations;
        sampleTimer.reset();
        auto samples = backend.sample(c, options.samplesPerEvaluation, rng);
        sampleSeconds += sampleTimer.seconds();
        return score(samples);
    };

    std::vector<double> initial(numParams);
    Rng initRng(options.seed ^ 0x5deece66dULL);
    for (double& p : initial)
        p = initRng.uniform(0.1, 1.0);

    NelderMeadResult nm = nelderMead(objective, initial, options.optimizer);
    result.bestParams = nm.best;
    result.bestObjective = nm.value;
    result.circuitEvaluations = evaluations;
    result.sampleSeconds = sampleSeconds;
    return result;
}

} // namespace

VqaResult
runQaoaMaxCut(const QaoaMaxCut& problem, SamplerBackend& backend,
              const VqaOptions& options)
{
    return runLoop(
        problem.numParams(),
        [&](const std::vector<double>& p) { return problem.circuit(p); },
        [&](const std::vector<std::uint64_t>& samples) {
            return -problem.expectedCut(samples);
        },
        backend, options);
}

VqaResult
runVqeIsing(const VqeIsing& problem, SamplerBackend& backend,
            const VqaOptions& options)
{
    return runLoop(
        problem.numParams(),
        [&](const std::vector<double>& p) { return problem.circuit(p); },
        [&](const std::vector<std::uint64_t>& samples) {
            return problem.expectedEnergy(samples);
        },
        backend, options);
}

} // namespace qkc
