#include "vqa/driver.h"

#include <cmath>
#include <functional>
#include <stdexcept>

#include "util/timer.h"

namespace qkc {

GradientResult
parameterShiftGradient(Session& session, const CircuitBuilder& makeCircuit,
                       const PauliSum& observable,
                       const std::vector<double>& params, Rng& rng,
                       double shift, std::size_t shots)
{
    if (params.empty())
        throw std::invalid_argument("parameterShiftGradient: no parameters");
    // Exact-zero compare would wave through shift = pi (sin ~ 1e-16) and
    // return gradients scaled by ~1e16; any |sin| this small means the two
    // shifted points coincide to machine precision.
    if (std::abs(std::sin(shift)) < 1e-12)
        throw std::invalid_argument(
            "parameterShiftGradient: sin(shift) ~ 0 (shift a multiple of "
            "pi) leaves the two-point rule undefined");

    // Batch layout: [value, p+s e_0, p-s e_0, p+s e_1, p-s e_1, ...].
    std::vector<ParamBinding> bindings;
    bindings.reserve(2 * params.size() + 1);
    bindings.push_back(makeCircuit(params));
    std::vector<double> shifted = params;
    for (std::size_t i = 0; i < params.size(); ++i) {
        shifted[i] = params[i] + shift;
        bindings.push_back(makeCircuit(shifted));
        shifted[i] = params[i] - shift;
        bindings.push_back(makeCircuit(shifted));
        shifted[i] = params[i];
    }

    Timer timer;
    const std::vector<Result> results =
        session.runBatch(bindings, Expectation{observable, shots}, rng);

    GradientResult out;
    out.seconds = timer.seconds();
    out.batchSize = bindings.size();
    out.value = results[0].expectation;
    out.gradient.resize(params.size());
    const double denom = 2.0 * std::sin(shift);
    for (std::size_t i = 0; i < params.size(); ++i) {
        out.gradient[i] = (results[1 + 2 * i].expectation -
                           results[2 + 2 * i].expectation) /
                          denom;
    }
    return out;
}

std::vector<double>
batchedExpectationSweep(Session& session, const CircuitBuilder& makeCircuit,
                        const PauliSum& observable,
                        const std::vector<std::vector<double>>& points,
                        Rng& rng, std::size_t shots)
{
    std::vector<ParamBinding> bindings;
    bindings.reserve(points.size());
    for (const auto& p : points)
        bindings.push_back(makeCircuit(p));
    const std::vector<Result> results =
        session.runBatch(bindings, Expectation{observable, shots}, rng);
    std::vector<double> values;
    values.reserve(results.size());
    for (const Result& r : results)
        values.push_back(r.expectation);
    return values;
}

namespace {

/**
 * Shared loop body: builds circuits, binds them into one session, scores.
 * `observable` is the workload objective as a Pauli sum (used when
 * options.exactExpectation asks for the Expectation task); `sign` maps the
 * expectation onto the minimized objective; `score` maps raw samples.
 */
VqaResult
runLoop(std::size_t numParams,
        const std::function<Circuit(const std::vector<double>&)>& makeCircuit,
        const std::function<double(const std::vector<std::uint64_t>&)>& score,
        const PauliSum& observable, double sign, const Backend& backend,
        const VqaOptions& options)
{
    VqaResult result;
    Rng rng(options.seed);
    std::unique_ptr<Session> session;
    std::size_t evaluations = 0;
    double sampleSeconds = 0.0;

    auto objective = [&](const std::vector<double>& params) {
        Circuit c = makeCircuit(params);
        if (options.noisy)
            c = c.withNoiseAfterEachGate(options.noiseKind,
                                         options.noiseStrength);
        // One session per circuit structure: the first evaluation pays the
        // plan/compile, every later one only rebinds parameter values. The
        // bind/open is backend work too, so it counts toward sampleSeconds
        // alongside the task time the Result metadata reports.
        Timer bindTimer;
        if (!session)
            session = backend.open(c);
        else
            session->bind(c);
        sampleSeconds += bindTimer.seconds();
        ++evaluations;
        if (options.exactExpectation) {
            Result r = session->run(
                Expectation{observable, options.samplesPerEvaluation}, rng);
            sampleSeconds += r.meta.seconds;
            return sign * r.expectation;
        }
        Result r = session->run(Sample{options.samplesPerEvaluation}, rng);
        sampleSeconds += r.meta.seconds;
        return score(r.samples);
    };

    std::vector<double> initial(numParams);
    Rng initRng(options.seed ^ 0x5deece66dULL);
    for (double& p : initial)
        p = initRng.uniform(0.1, 1.0);

    if (options.batchedStarts > 1) {
        // Batched simplex seeding: score a population of random starts in
        // ONE Session::runBatch — the bindings fan out across the thread
        // pool — and let Nelder-Mead begin from the winner.
        std::vector<std::vector<double>> points;
        points.reserve(options.batchedStarts);
        points.push_back(initial);
        while (points.size() < options.batchedStarts) {
            std::vector<double> p(numParams);
            for (double& v : p)
                v = initRng.uniform(0.1, 1.0);
            points.push_back(std::move(p));
        }
        std::vector<ParamBinding> bindings;
        bindings.reserve(points.size());
        for (const auto& p : points) {
            Circuit c = makeCircuit(p);
            if (options.noisy)
                c = c.withNoiseAfterEachGate(options.noiseKind,
                                             options.noiseStrength);
            bindings.push_back(std::move(c));
        }
        Timer batchTimer;
        if (!session)
            session = backend.open(bindings.front());
        const Task task =
            options.exactExpectation
                ? Task(Expectation{observable, options.samplesPerEvaluation})
                : Task(Sample{options.samplesPerEvaluation});
        const std::vector<Result> scored =
            session->runBatch(bindings, task, rng);
        sampleSeconds += batchTimer.seconds();
        evaluations += scored.size();
        std::size_t best = 0;
        double bestValue = 0.0;
        for (std::size_t i = 0; i < scored.size(); ++i) {
            const double value = options.exactExpectation
                                     ? sign * scored[i].expectation
                                     : score(scored[i].samples);
            if (i == 0 || value < bestValue) {
                best = i;
                bestValue = value;
            }
        }
        initial = points[best];
    }

    NelderMeadResult nm = nelderMead(objective, initial, options.optimizer);
    result.bestParams = nm.best;
    result.bestObjective = nm.value;
    result.circuitEvaluations = evaluations;
    result.sampleSeconds = sampleSeconds;
    if (session) {
        result.planBuilds = session->planBuilds();
        result.planReuses = session->planReuses();
    }
    return result;
}

} // namespace

VqaResult
runQaoaMaxCut(const QaoaMaxCut& problem, const Backend& backend,
              const VqaOptions& options)
{
    return runLoop(
        problem.numParams(),
        [&](const std::vector<double>& p) { return problem.circuit(p); },
        [&](const std::vector<std::uint64_t>& samples) {
            return -problem.expectedCut(samples);
        },
        problem.cutObservable(), /*sign=*/-1.0, backend, options);
}

VqaResult
runVqeIsing(const VqeIsing& problem, const Backend& backend,
            const VqaOptions& options)
{
    return runLoop(
        problem.numParams(),
        [&](const std::vector<double>& p) { return problem.circuit(p); },
        [&](const std::vector<std::uint64_t>& samples) {
            return problem.expectedEnergy(samples);
        },
        problem.hamiltonian(), /*sign=*/1.0, backend, options);
}

} // namespace qkc
