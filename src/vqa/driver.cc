#include "vqa/driver.h"

#include <functional>

#include "util/timer.h"

namespace qkc {

namespace {

/**
 * Shared loop body: builds circuits, binds them into one session, scores.
 * `observable` is the workload objective as a Pauli sum (used when
 * options.exactExpectation asks for the Expectation task); `sign` maps the
 * expectation onto the minimized objective; `score` maps raw samples.
 */
VqaResult
runLoop(std::size_t numParams,
        const std::function<Circuit(const std::vector<double>&)>& makeCircuit,
        const std::function<double(const std::vector<std::uint64_t>&)>& score,
        const PauliSum& observable, double sign, const Backend& backend,
        const VqaOptions& options)
{
    VqaResult result;
    Rng rng(options.seed);
    std::unique_ptr<Session> session;
    std::size_t evaluations = 0;
    double sampleSeconds = 0.0;

    auto objective = [&](const std::vector<double>& params) {
        Circuit c = makeCircuit(params);
        if (options.noisy)
            c = c.withNoiseAfterEachGate(options.noiseKind,
                                         options.noiseStrength);
        // One session per circuit structure: the first evaluation pays the
        // plan/compile, every later one only rebinds parameter values. The
        // bind/open is backend work too, so it counts toward sampleSeconds
        // alongside the task time the Result metadata reports.
        Timer bindTimer;
        if (!session)
            session = backend.open(c);
        else
            session->bind(c);
        sampleSeconds += bindTimer.seconds();
        ++evaluations;
        if (options.exactExpectation) {
            Result r = session->run(
                Expectation{observable, options.samplesPerEvaluation}, rng);
            sampleSeconds += r.meta.seconds;
            return sign * r.expectation;
        }
        Result r = session->run(Sample{options.samplesPerEvaluation}, rng);
        sampleSeconds += r.meta.seconds;
        return score(r.samples);
    };

    std::vector<double> initial(numParams);
    Rng initRng(options.seed ^ 0x5deece66dULL);
    for (double& p : initial)
        p = initRng.uniform(0.1, 1.0);

    NelderMeadResult nm = nelderMead(objective, initial, options.optimizer);
    result.bestParams = nm.best;
    result.bestObjective = nm.value;
    result.circuitEvaluations = evaluations;
    result.sampleSeconds = sampleSeconds;
    if (session) {
        result.planBuilds = session->planBuilds();
        result.planReuses = session->planReuses();
    }
    return result;
}

} // namespace

VqaResult
runQaoaMaxCut(const QaoaMaxCut& problem, const Backend& backend,
              const VqaOptions& options)
{
    return runLoop(
        problem.numParams(),
        [&](const std::vector<double>& p) { return problem.circuit(p); },
        [&](const std::vector<std::uint64_t>& samples) {
            return -problem.expectedCut(samples);
        },
        problem.cutObservable(), /*sign=*/-1.0, backend, options);
}

VqaResult
runVqeIsing(const VqeIsing& problem, const Backend& backend,
            const VqaOptions& options)
{
    return runLoop(
        problem.numParams(),
        [&](const std::vector<double>& p) { return problem.circuit(p); },
        [&](const std::vector<std::uint64_t>& samples) {
            return problem.expectedEnergy(samples);
        },
        problem.hamiltonian(), /*sign=*/1.0, backend, options);
}

} // namespace qkc
