#include "vqa/workloads.h"

#include <cassert>
#include <stdexcept>

namespace qkc {

// ---------------------------------------------------------------------------
// QaoaMaxCut
// ---------------------------------------------------------------------------

QaoaMaxCut::QaoaMaxCut(Graph graph, std::size_t iterations)
    : graph_(std::move(graph)), iterations_(iterations)
{
    if (iterations_ == 0)
        throw std::invalid_argument("QaoaMaxCut: iterations must be >= 1");
}

QaoaMaxCut
QaoaMaxCut::randomRegular(std::size_t vertices, std::size_t degree,
                          std::size_t iterations, Rng& rng)
{
    return QaoaMaxCut(randomRegularGraph(vertices, degree, rng), iterations);
}

Circuit
QaoaMaxCut::circuit(const std::vector<double>& params) const
{
    if (params.size() != numParams())
        throw std::invalid_argument("QaoaMaxCut::circuit: parameter count");
    const std::size_t n = numQubits();
    Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    for (std::size_t layer = 0; layer < iterations_; ++layer) {
        double gamma = params[2 * layer];
        double beta = params[2 * layer + 1];
        for (const auto& [u, v] : graph_.edges())
            c.zz(u, v, gamma);
        for (std::size_t q = 0; q < n; ++q)
            c.rx(q, 2.0 * beta);
    }
    return c;
}

std::size_t
QaoaMaxCut::cutOfOutcome(std::uint64_t outcome) const
{
    const std::size_t n = numQubits();
    // Measurement outcomes use qubit 0 as MSB; cutValue() wants bit v to be
    // vertex v's side.
    std::uint64_t assignment = 0;
    for (std::size_t v = 0; v < n; ++v)
        if ((outcome >> (n - 1 - v)) & 1)
            assignment |= std::uint64_t{1} << v;
    return cutValue(graph_, assignment);
}

double
QaoaMaxCut::expectedCut(const std::vector<std::uint64_t>& samples) const
{
    if (samples.empty())
        return 0.0;
    double acc = 0.0;
    for (std::uint64_t s : samples)
        acc += static_cast<double>(cutOfOutcome(s));
    return acc / static_cast<double>(samples.size());
}

double
QaoaMaxCut::expectedCutExact(const std::vector<double>& distribution) const
{
    double acc = 0.0;
    for (std::size_t x = 0; x < distribution.size(); ++x)
        acc += distribution[x] * static_cast<double>(cutOfOutcome(x));
    return acc;
}

PauliSum
QaoaMaxCut::cutObservable() const
{
    const std::size_t n = numQubits();
    PauliSum h;
    h.add(static_cast<double>(graph_.numEdges()) / 2.0,
          PauliString(std::string(n, 'I')));
    for (const auto& [u, v] : graph_.edges()) {
        std::string term(n, 'I');
        term[u] = 'Z';
        term[v] = 'Z';
        h.add(-0.5, PauliString(term));
    }
    return h;
}

// ---------------------------------------------------------------------------
// VqeIsing
// ---------------------------------------------------------------------------

VqeIsing::VqeIsing(std::size_t rows, std::size_t cols, std::size_t iterations,
                   Rng& rng)
    : grid_(gridGraph(rows, cols)), iterations_(iterations)
{
    if (iterations_ == 0)
        throw std::invalid_argument("VqeIsing: iterations must be >= 1");
    couplings_.reserve(grid_.numEdges());
    for (std::size_t e = 0; e < grid_.numEdges(); ++e)
        couplings_.push_back(rng.bernoulli(0.5) ? 1.0 : -1.0);
    fields_.reserve(grid_.numVertices());
    for (std::size_t v = 0; v < grid_.numVertices(); ++v)
        fields_.push_back(rng.uniform(-0.5, 0.5));
}

Circuit
VqeIsing::circuit(const std::vector<double>& params) const
{
    if (params.size() != numParams())
        throw std::invalid_argument("VqeIsing::circuit: parameter count");
    const std::size_t n = numQubits();
    Circuit c(n);
    for (std::size_t q = 0; q < n; ++q)
        c.h(q);
    for (std::size_t layer = 0; layer < iterations_; ++layer) {
        double gamma = params[2 * layer];
        double beta = params[2 * layer + 1];
        const auto& edges = grid_.edges();
        for (std::size_t e = 0; e < edges.size(); ++e)
            c.zz(edges[e].first, edges[e].second, gamma * couplings_[e]);
        for (std::size_t q = 0; q < n; ++q) {
            if (fields_[q] != 0.0)
                c.rz(q, 2.0 * gamma * fields_[q]);
        }
        for (std::size_t q = 0; q < n; ++q)
            c.rx(q, 2.0 * beta);
    }
    return c;
}

double
VqeIsing::energyOfOutcome(std::uint64_t outcome) const
{
    const std::size_t n = numQubits();
    auto spin = [&](std::size_t v) {
        return ((outcome >> (n - 1 - v)) & 1) ? -1.0 : 1.0;  // Z eigenvalue
    };
    double energy = 0.0;
    const auto& edges = grid_.edges();
    for (std::size_t e = 0; e < edges.size(); ++e)
        energy += couplings_[e] * spin(edges[e].first) * spin(edges[e].second);
    for (std::size_t v = 0; v < n; ++v)
        energy += fields_[v] * spin(v);
    return energy;
}

double
VqeIsing::expectedEnergy(const std::vector<std::uint64_t>& samples) const
{
    if (samples.empty())
        return 0.0;
    double acc = 0.0;
    for (std::uint64_t s : samples)
        acc += energyOfOutcome(s);
    return acc / static_cast<double>(samples.size());
}

double
VqeIsing::expectedEnergyExact(const std::vector<double>& distribution) const
{
    double acc = 0.0;
    for (std::size_t x = 0; x < distribution.size(); ++x)
        acc += distribution[x] * energyOfOutcome(x);
    return acc;
}

PauliSum
VqeIsing::hamiltonian() const
{
    const std::size_t n = numQubits();
    PauliSum h;
    const auto& edges = grid_.edges();
    for (std::size_t e = 0; e < edges.size(); ++e) {
        std::string term(n, 'I');
        term[edges[e].first] = 'Z';
        term[edges[e].second] = 'Z';
        h.add(couplings_[e], PauliString(term));
    }
    for (std::size_t v = 0; v < n; ++v) {
        std::string term(n, 'I');
        term[v] = 'Z';
        h.add(fields_[v], PauliString(term));
    }
    return h;
}

double
VqeIsing::groundStateEnergy() const
{
    assert(numQubits() <= 20);
    double best = energyOfOutcome(0);
    for (std::uint64_t x = 1; x < (std::uint64_t{1} << numQubits()); ++x)
        best = std::min(best, energyOfOutcome(x));
    return best;
}

} // namespace qkc
