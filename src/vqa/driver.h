#ifndef QKC_VQA_DRIVER_H
#define QKC_VQA_DRIVER_H

#include <functional>

#include "vqa/backends.h"
#include "vqa/nelder_mead.h"
#include "vqa/workloads.h"

namespace qkc {

/** Builds the circuit for one parameter vector (ansatz closure). */
using CircuitBuilder = std::function<Circuit(const std::vector<double>&)>;

/** Outcome of one batched gradient evaluation (parameterShiftGradient). */
struct GradientResult {
    std::vector<double> gradient;  ///< d<H>/dparam_i
    double value = 0.0;            ///< <H> at the unshifted point
    std::size_t batchSize = 0;     ///< bindings evaluated: 2*numParams + 1
    double seconds = 0.0;          ///< wall time of the single runBatch call
};

/**
 * Gradient of <H> by the two-point shift rule, evaluated as ONE
 * Session::runBatch of 2*numParams + 1 bindings (the unshifted point plus
 * a +/- shift per parameter) fanned across the thread pool:
 *
 *   grad_i = (E(p + s e_i) - E(p - s e_i)) / (2 sin s)
 *
 * With the default s = pi/2 this is the parameter-shift rule — *exact* (up
 * to the backend's own estimator noise) whenever parameter i feeds a single
 * gate of the form exp(-i theta G / 2) with G^2 = I (Rx/Ry/Rz and their
 * controlled/two-qubit forms), because <H>(theta) is then a frequency-1
 * sinusoid. For parameters reused across several gates (a QAOA gamma
 * multiplying every edge) pass a small s instead: 2 sin s -> 2s turns the
 * same batch into a central finite difference.
 *
 * `shots` only feeds the Expectation sampling fallback; exact backends
 * ignore it. Results are bit-identical for every thread count (runBatch's
 * determinism discipline).
 */
GradientResult parameterShiftGradient(Session& session,
                                      const CircuitBuilder& makeCircuit,
                                      const PauliSum& observable,
                                      const std::vector<double>& params,
                                      Rng& rng,
                                      double shift = 1.5707963267948966,
                                      std::size_t shots = 4096);

/**
 * Scores a whole population of parameter vectors — a simplex, a multi-start
 * seed set, a line search — in one batched Expectation call. Returns one
 * <H> value per point, in point order.
 */
std::vector<double> batchedExpectationSweep(
    Session& session, const CircuitBuilder& makeCircuit,
    const PauliSum& observable,
    const std::vector<std::vector<double>>& points, Rng& rng,
    std::size_t shots = 4096);

/** Configuration of one hybrid quantum-classical run. */
struct VqaOptions {
    std::size_t samplesPerEvaluation = 256;
    NelderMeadOptions optimizer{.maxIterations = 40, .initialStep = 0.4};
    std::uint64_t seed = 1;
    /** Optional noise inserted after every gate (paper Figure 9 setup). */
    bool noisy = false;
    NoiseKind noiseKind = NoiseKind::Depolarizing;
    double noiseStrength = 0.005;
    /**
     * Score evaluations with the Expectation task on the workload's Pauli
     * observable instead of shot estimates. Backends that serve it natively
     * (sv/dm/kc/dd on these diagonal objectives) then optimize the exact
     * value — no shot noise in the objective; samplesPerEvaluation only
     * feeds the sampling fallback.
     */
    bool exactExpectation = false;
    /**
     * When > 1, score this many random starting points in one
     * Session::runBatch (fanned across the thread pool) and hand the best
     * one to Nelder-Mead as its initial vertex — the batched simplex-seeding
     * sweep. 0 or 1 keeps the single deterministic start.
     */
    std::size_t batchedStarts = 0;
};

/** Outcome of a hybrid run. */
struct VqaResult {
    std::vector<double> bestParams;
    double bestObjective = 0.0;     ///< minimized objective
    std::size_t circuitEvaluations = 0;
    /**
     * Total wall time inside the backend: per-task seconds from the Result
     * metadata plus the open/bind work (plan or compile on the first
     * evaluation, parameter refresh on every later one).
     */
    double sampleSeconds = 0.0;
    /**
     * Session reuse metadata after the run: a backend with full variational
     * reuse shows planBuilds == 1 and planReuses == circuitEvaluations - 1
     * (one structure compilation, every later evaluation rebinds
     * parameters) — the paper's Section 3.2 property, now measurable on
     * every backend.
     */
    std::size_t planBuilds = 0;
    std::size_t planReuses = 0;
};

/**
 * Full hybrid loop for QAOA Max-Cut: Nelder-Mead proposes (gamma, beta)
 * vectors, one backend session (opened on the first evaluation, rebound on
 * every later one) serves the shots or exact expectation, and the mean cut
 * (negated) feeds back as the objective (paper Section 2.3). Returns the
 * best parameters found; bestObjective is -E[cut].
 */
VqaResult runQaoaMaxCut(const QaoaMaxCut& problem, const Backend& backend,
                        const VqaOptions& options);

/** Same loop for the VQE Ising workload; objective is E[energy]. */
VqaResult runVqeIsing(const VqeIsing& problem, const Backend& backend,
                      const VqaOptions& options);

} // namespace qkc

#endif // QKC_VQA_DRIVER_H
