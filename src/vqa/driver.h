#ifndef QKC_VQA_DRIVER_H
#define QKC_VQA_DRIVER_H

#include <functional>

#include "vqa/backends.h"
#include "vqa/nelder_mead.h"
#include "vqa/workloads.h"

namespace qkc {

/** Configuration of one hybrid quantum-classical run. */
struct VqaOptions {
    std::size_t samplesPerEvaluation = 256;
    NelderMeadOptions optimizer{.maxIterations = 40, .initialStep = 0.4};
    std::uint64_t seed = 1;
    /** Optional noise inserted after every gate (paper Figure 9 setup). */
    bool noisy = false;
    NoiseKind noiseKind = NoiseKind::Depolarizing;
    double noiseStrength = 0.005;
};

/** Outcome of a hybrid run. */
struct VqaResult {
    std::vector<double> bestParams;
    double bestObjective = 0.0;     ///< minimized objective
    std::size_t circuitEvaluations = 0;
    double sampleSeconds = 0.0;     ///< total time inside the backend
};

/**
 * Full hybrid loop for QAOA Max-Cut: Nelder-Mead proposes (gamma, beta)
 * vectors, the backend samples the circuit, and the mean cut (negated)
 * feeds back as the objective (paper Section 2.3). Returns the best
 * parameters found; bestObjective is -E[cut].
 */
VqaResult runQaoaMaxCut(const QaoaMaxCut& problem, SamplerBackend& backend,
                        const VqaOptions& options);

/** Same loop for the VQE Ising workload; objective is E[energy]. */
VqaResult runVqeIsing(const VqeIsing& problem, SamplerBackend& backend,
                      const VqaOptions& options);

} // namespace qkc

#endif // QKC_VQA_DRIVER_H
