#ifndef QKC_VQA_DRIVER_H
#define QKC_VQA_DRIVER_H

#include "vqa/backends.h"
#include "vqa/nelder_mead.h"
#include "vqa/workloads.h"

namespace qkc {

/** Configuration of one hybrid quantum-classical run. */
struct VqaOptions {
    std::size_t samplesPerEvaluation = 256;
    NelderMeadOptions optimizer{.maxIterations = 40, .initialStep = 0.4};
    std::uint64_t seed = 1;
    /** Optional noise inserted after every gate (paper Figure 9 setup). */
    bool noisy = false;
    NoiseKind noiseKind = NoiseKind::Depolarizing;
    double noiseStrength = 0.005;
    /**
     * Score evaluations with the Expectation task on the workload's Pauli
     * observable instead of shot estimates. Backends that serve it natively
     * (sv/dm/kc/dd on these diagonal objectives) then optimize the exact
     * value — no shot noise in the objective; samplesPerEvaluation only
     * feeds the sampling fallback.
     */
    bool exactExpectation = false;
};

/** Outcome of a hybrid run. */
struct VqaResult {
    std::vector<double> bestParams;
    double bestObjective = 0.0;     ///< minimized objective
    std::size_t circuitEvaluations = 0;
    /**
     * Total wall time inside the backend: per-task seconds from the Result
     * metadata plus the open/bind work (plan or compile on the first
     * evaluation, parameter refresh on every later one).
     */
    double sampleSeconds = 0.0;
    /**
     * Session reuse metadata after the run: a backend with full variational
     * reuse shows planBuilds == 1 and planReuses == circuitEvaluations - 1
     * (one structure compilation, every later evaluation rebinds
     * parameters) — the paper's Section 3.2 property, now measurable on
     * every backend.
     */
    std::size_t planBuilds = 0;
    std::size_t planReuses = 0;
};

/**
 * Full hybrid loop for QAOA Max-Cut: Nelder-Mead proposes (gamma, beta)
 * vectors, one backend session (opened on the first evaluation, rebound on
 * every later one) serves the shots or exact expectation, and the mean cut
 * (negated) feeds back as the objective (paper Section 2.3). Returns the
 * best parameters found; bestObjective is -E[cut].
 */
VqaResult runQaoaMaxCut(const QaoaMaxCut& problem, const Backend& backend,
                        const VqaOptions& options);

/** Same loop for the VQE Ising workload; objective is E[energy]. */
VqaResult runVqeIsing(const VqeIsing& problem, const Backend& backend,
                      const VqaOptions& options);

} // namespace qkc

#endif // QKC_VQA_DRIVER_H
