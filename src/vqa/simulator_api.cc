#include "vqa/simulator_api.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <map>
#include <stdexcept>

#include "exec/execution_plan.h"
#include "exec/thread_pool.h"
#include "util/timer.h"

namespace qkc {

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(std::string backendName, Circuit circuit)
    : circuit_(std::move(circuit)), planBuilds_(1),
      backendName_(std::move(backendName))
{
}

void
Session::bind(const Circuit& circuit)
{
    if (circuit.numQubits() != circuit_.numQubits()) {
        throw std::invalid_argument(
            "Session::bind: qubit count differs from the opened circuit; "
            "open a new session instead");
    }
    QKC_SPAN("session.bind");
    const bool structureMatches = sameStructure(circuit_, circuit);
    const bool reused = doBind(circuit, structureMatches);
    circuit_ = circuit;
    if (reused)
        ++planReuses_;
    else
        ++planBuilds_;
}

Result
Session::run(const Task& task, Rng& rng)
{
    Result result;
    result.meta.backend = backendName_;
    const auto runTask = [&] {
        std::visit(
            [&](const auto& t) {
                using T = std::decay_t<decltype(t)>;
                if constexpr (std::is_same_v<T, Sample>) {
                    result.samples = doSample(t.shots, rng, result.meta);
                } else if constexpr (std::is_same_v<T, Expectation>) {
                    checkObservable(t.observable);
                    result.expectation =
                        doExpectation(t.observable, t.shots, rng, result.meta);
                } else if constexpr (std::is_same_v<T, Amplitudes>) {
                    result.amplitudes =
                        doAmplitudes(t.bitstrings, result.meta);
                } else {
                    result.probabilities =
                        doProbabilities(t.qubits, result.meta);
                }
            },
            task);
    };
    if (obsEnabled_ && obs::enabled()) {
        // The profile scope doubles as the task timer: its envelope is the
        // run, its phases are the backend's top-level spans, so the phase
        // times sum to (within clock reads) meta.seconds.
        obs::ProfileScope scope("session.run");
        runTask();
        result.meta.profile = scope.take();
        result.meta.seconds = result.meta.profile.totalSeconds;
    } else {
        Timer timer;
        runTask();
        result.meta.seconds = timer.seconds();
    }
    result.meta.planBuilds = planBuilds_;
    result.meta.planReuses = planReuses_;
    return result;
}

std::vector<Result>
Session::runBatch(const std::vector<ParamBinding>& bindings, const Task& task,
                  Rng& rng)
{
    // Per-binding RNG streams, seeded from the caller's generator in batch
    // order *before* any parallel work: the seed sequence — and with it
    // every payload — is identical for every thread count, and matches a
    // sequential bind/run loop driven from the same per-binding seeds.
    std::vector<std::uint64_t> seeds(bindings.size());
    for (auto& s : seeds)
        s = rng.next();
    return runBatch(bindings, task, seeds);
}

std::vector<Result>
Session::runBatch(const std::vector<ParamBinding>& bindings, const Task& task,
                  const std::vector<std::uint64_t>& seeds)
{
    std::vector<Result> results(bindings.size());
    if (bindings.empty())
        return results;
    if (seeds.size() != bindings.size())
        throw std::invalid_argument(
            "Session::runBatch: need exactly one seed per binding");
    obs::TimedSpan batchSpan("session.runBatch");
    for (const Circuit& b : bindings) {
        if (b.numQubits() != circuit_.numQubits())
            throw std::invalid_argument(
                "Session::runBatch: binding qubit count differs from the "
                "opened circuit; open a new session instead");
    }

    // A batch issued from inside pool work would only run inline anyway
    // (the pool's nested-submission guard), so skip the lane setup and
    // serialize outright — this is what makes a batched task safe to issue
    // from arbitrary calling contexts.
    const std::size_t lanes =
        std::min<std::size_t>(batchThreads(), bindings.size());
    bool parallel =
        lanes > 1 && !batchSerialized_ && !ThreadPool::inParallelRegion();
    if (parallel) {
        while (batchLanes_.size() < lanes) {
            auto lane = cloneForBatch();
            if (!lane) {
                // The backend documents why its per-structure cache does
                // not clone (see cloneForBatch); remember the refusal.
                batchSerialized_ = true;
                parallel = false;
                break;
            }
            batchLanes_.push_back(std::move(lane));
        }
    }

    // Per-binding timing: meta.seconds on a batch result is that binding's
    // own bind+run time on its lane (run() alone would omit the bind), and
    // laneSeconds accumulates each lane's busy time for the batch
    // aggregates stamped below.
    std::vector<double> laneSeconds(parallel ? lanes : 1, 0.0);
    if (!parallel) {
        for (std::size_t i = 0; i < bindings.size(); ++i) {
            const std::uint64_t t0 = obs::nowNs();
            bind(bindings[i]);
            Rng bindingRng(seeds[i]);
            results[i] = run(task, bindingRng);
            results[i].meta.seconds =
                static_cast<double>(obs::nowNs() - t0) * 1e-9;
            laneSeconds[0] += results[i].meta.seconds;
        }
    } else {
        // One clone per lane; lanes claim contiguous blocks as pool chunks
        // (chunk index == lane index, so each clone is driven by exactly
        // one thread at a time). Results land at their binding index — the
        // batch-ordered merge — so payloads are independent of which lane
        // ran which block.
        std::vector<std::size_t> laneBuilds(lanes), laneReuses(lanes);
        for (std::size_t l = 0; l < lanes; ++l) {
            laneBuilds[l] = batchLanes_[l]->planBuilds_;
            laneReuses[l] = batchLanes_[l]->planReuses_;
        }
        // A task exception must not unwind through the pool (a throwing
        // worker chunk would std::terminate; a throwing caller chunk would
        // leave the pool's job slot claimed forever). Each chunk captures
        // its first exception; the lowest chunk's one is rethrown after the
        // region completes — deterministic, and the same error the
        // sequential loop would have surfaced first.
        std::vector<std::exception_ptr> chunkErrors(lanes);
        ExecPolicy fanout;
        fanout.threads = lanes;
        fanout.serialThreshold = 1;
        fanout.grain = (bindings.size() + lanes - 1) / lanes;
        parallelForChunks(
            fanout, bindings.size(),
            [&](std::size_t chunk, std::uint64_t b, std::uint64_t e) {
                try {
                    Session& lane = *batchLanes_[chunk];
                    for (std::uint64_t i = b; i < e; ++i) {
                        const std::uint64_t t0 = obs::nowNs();
                        lane.bind(bindings[i]);
                        Rng bindingRng(seeds[i]);
                        results[i] = lane.run(task, bindingRng);
                        results[i].meta.seconds =
                            static_cast<double>(obs::nowNs() - t0) * 1e-9;
                        laneSeconds[chunk] += results[i].meta.seconds;
                    }
                } catch (...) {
                    chunkErrors[chunk] = std::current_exception();
                }
            });
        // Fold the lanes' bind bookkeeping into this session so the
        // Section 3.2 reuse metadata counts the batch's real work, and
        // drop the lanes' transient payload caches — a lane must not pin a
        // dense state (or diagram arena) per thread between batches; only
        // the per-structure plan is worth keeping.
        for (std::size_t l = 0; l < lanes; ++l) {
            planBuilds_ += batchLanes_[l]->planBuilds_ - laneBuilds[l];
            planReuses_ += batchLanes_[l]->planReuses_ - laneReuses[l];
            batchLanes_[l]->trimBatchLane();
        }
        for (const std::exception_ptr& err : chunkErrors)
            if (err)
                std::rethrow_exception(err);
        // Sync the session itself onto the final binding — the same
        // observable state the sequential loop leaves behind. The sync
        // repeats work a lane already performed (and counted), so it is
        // deliberately not counted again.
        doBind(bindings.back(), sameStructure(circuit_, bindings.back()));
        circuit_ = bindings.back();
    }

    // Stamp every result with the session's final counters (run() stamps
    // "counters so far", which mid-batch is a moving target — and lane
    // counters are meaningless to callers) and the batch aggregates.
    BatchStats stats;
    stats.bindings = bindings.size();
    stats.lanes = laneSeconds.size();
    stats.wallSeconds = batchSpan.seconds();
    double busy = 0.0;
    for (double s : laneSeconds) {
        busy += s;
        stats.maxLaneSeconds = std::max(stats.maxLaneSeconds, s);
    }
    for (const Result& r : results)
        stats.maxBindingSeconds =
            std::max(stats.maxBindingSeconds, r.meta.seconds);
    stats.imbalance = busy > 0.0 ? stats.maxLaneSeconds *
                                       static_cast<double>(stats.lanes) / busy
                                 : 0.0;
    for (Result& r : results) {
        r.meta.planBuilds = planBuilds_;
        r.meta.planReuses = planReuses_;
        r.meta.batch = stats;
    }
    return results;
}

std::unique_ptr<Session>
Session::cloneForBatch() const
{
    return nullptr;
}

std::size_t
Session::batchThreads() const
{
    return defaultThreads();
}

double
Session::doExpectation(const PauliSum& observable, std::size_t shots,
                       Rng& rng, ResultMeta& meta)
{
    return sampledExpectation(observable, shots, rng, meta);
}

std::vector<Complex>
Session::doAmplitudes(const std::vector<std::uint64_t>&, ResultMeta&)
{
    unsupported("Amplitudes", "the backend has no per-basis amplitude query");
}

std::vector<double>
Session::doProbabilities(const std::vector<std::size_t>&, ResultMeta&)
{
    unsupported("Probabilities",
                "the backend has no exact outcome distribution");
}

double
Session::sampledExpectation(const PauliSum& observable, std::size_t shots,
                            Rng& rng, ResultMeta& meta)
{
    double total = 0.0;
    // Diagonal terms share one batch of computational-basis samples from
    // the session itself; each non-diagonal term draws from its cached
    // rotated-basis sub-session (one per rotation signature, rebound across
    // calls — the fallback no longer re-pays structure planning per call).
    std::vector<std::uint64_t> baseSamples;
    bool haveBase = false;
    bool sampled = false;
    for (const auto& [coeff, pauli] : observable.terms) {
        if (pauli.isIdentity()) {
            total += coeff;
            continue;
        }
        if (shots == 0) {
            // Zero-shot requests are fine on native-exact paths, but here
            // they would silently return garbage (a 0 "estimate" per term).
            throw std::invalid_argument(
                "Expectation: backend " + backendName() +
                " must estimate this observable from samples for the bound "
                "circuit, but shots == 0");
        }
        if (pauli.isDiagonal()) {
            if (!haveBase) {
                baseSamples = doSample(shots, rng, meta);
                meta.fallbackShots += shots;
                haveBase = true;
            }
            total += coeff * pauli.expectationFromSamples(baseSamples);
        } else {
            const Result r = rotatedSession(pauli).run(Sample{shots}, rng);
            meta.trajectories += r.meta.trajectories;
            meta.fallbackShots += shots;
            total += coeff * pauli.expectationFromSamples(r.samples);
        }
        sampled = true;
    }
    // Set last (a doSample hook above may flag its own draw as exact): the
    // estimate is exact only if no term actually needed samples.
    meta.exact = !sampled;
    return total;
}

Session&
Session::rotatedSession(const PauliString& pauli)
{
    // Key on the rotation pattern: the X/Y factors determine the appended
    // basis-change gates (H for X, Sdg-then-H for Y); Z and I add nothing.
    // Terms sharing the pattern share one sub-session, and parameter
    // rebinds of the base circuit flow through Session::bind — the cached
    // sub-plan is refreshed, never rebuilt.
    std::string key(circuit_.numQubits(), 'I');
    for (std::size_t q = 0; q < pauli.numQubits(); ++q) {
        const char p = pauli.pauli(q);
        if (p == 'X' || p == 'Y')
            key[q] = p;
    }
    const Circuit rotated = pauli.withMeasurementBasis(circuit_);
    auto it = rotatedSessions_.find(key);
    if (it == rotatedSessions_.end())
        it = rotatedSessions_.emplace(key, openAdHoc(rotated)).first;
    else
        it->second->bind(rotated);
    return *it->second;
}

void
Session::unsupported(const char* task, const char* why) const
{
    throw std::invalid_argument(std::string("Session::run: backend ") +
                                backendName_ + " cannot serve " + task +
                                " for the bound circuit (" + why + ")");
}

void
Session::checkObservable(const PauliSum& observable) const
{
    if (observable.terms.empty())
        throw std::invalid_argument("Expectation: empty observable");
    for (const auto& [coeff, pauli] : observable.terms) {
        (void)coeff;
        if (pauli.numQubits() != circuit_.numQubits())
            throw std::invalid_argument(
                "Expectation: observable qubit count does not match the "
                "bound circuit");
    }
}

// ---------------------------------------------------------------------------
// Backend
// ---------------------------------------------------------------------------

std::vector<std::uint64_t>
Backend::sample(const Circuit& circuit, std::size_t shots, Rng& rng) const
{
    return open(circuit)->run(Sample{shots}, rng).samples;
}

std::vector<Result>
Backend::runBatch(const std::vector<ParamBinding>& bindings, const Task& task,
                  Rng& rng) const
{
    if (bindings.empty())
        return {};
    return open(bindings.front())->runBatch(bindings, task, rng);
}

// ---------------------------------------------------------------------------
// Registry metadata
// ---------------------------------------------------------------------------

const std::vector<BackendInfo>&
backendRegistry()
{
    static const std::vector<BackendInfo> registry = {
        {"statevector",
         {"sv"},
         {"threads", "fuse", "simd", "path", "obs"},
         "dense 2^n state vector (qsim-style); Kraus trajectories when "
         "noise is present",
         "sample; expectation (exact when ideal, sampled under noise); "
         "amplitudes (ideal); probabilities (ideal)",
         "parallel lanes (threads option): each lane clones the compiled "
         "ExecutionPlan and rebinds it per binding"},
        {"densitymatrix",
         {"dm"},
         {"threads", "fuse", "simd", "path", "obs"},
         "dense 4^n density matrix (Cirq-style); every channel exact",
         "sample; expectation (exact, ideal and noisy); probabilities "
         "(exact, ideal and noisy)",
         "serialized: a 4^n plan + rho per lane would multiply peak memory "
         "and the superoperator sweeps already parallelize internally"},
        {"tensornetwork",
         {"tn"},
         {"obs"},
         "qTorch-style tensor-network contraction (ideal circuits only)",
         "sample; expectation (sampled); amplitudes (exact); probabilities "
         "(exact marginals by doubled-network contraction)",
         "serialized: the sampler's per-prefix contraction caches mutate "
         "during sampling and do not clone cheaply"},
        {"decisiondiagram",
         {"dd"},
         {"threads", "gc", "gcthreshold", "path", "obs"},
         "QMDD decision diagram (DDSIM-style); Kraus trajectories when "
         "noise is present; ref-counted mark-and-sweep node GC",
         "sample; expectation (exact when ideal, via diagram walk); "
         "amplitudes (ideal); probabilities (ideal)",
         "parallel lanes (threads option): a private DdPackage (arena, "
         "unique and compute tables) per lane, garbage-collected between "
         "batches; a noisy Sample fans its trajectories over per-lane "
         "packages the same way"},
        {"knowledgecompilation",
         {"kc"},
         {"burnin", "thin", "obs"},
         "knowledge compilation (this paper): compile once, refresh "
         "parameter leaves across a variational sweep",
         "sample (Gibbs); expectation (exact within the query-feasibility "
         "limit: ideal circuits and diagonal observables under noise; "
         "Gibbs-sampled beyond it); amplitudes (ideal); probabilities "
         "(exact, ideal and noisy, within the same limit)",
         "parallel lanes (QKC_THREADS): one compiled AC per lane (one "
         "honest compile each, kept for the session), leaf refresh per "
         "binding"},
    };
    return registry;
}

const std::vector<std::string>&
backendNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> v;
        for (const BackendInfo& info : backendRegistry())
            v.push_back(info.name);
        return v;
    }();
    return names;
}

// ---------------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------------

namespace {

using OptionMap = std::map<std::string, std::string>;

/** Splits "name:k1=v1,k2=v2" into the base name and its option map. */
OptionMap
parseOptionString(const std::string& spec, std::string& name)
{
    OptionMap options;
    const auto colon = spec.find(':');
    name = spec.substr(0, colon);
    if (colon == std::string::npos)
        return options;

    std::string rest = spec.substr(colon + 1);
    std::size_t pos = 0;
    while (pos <= rest.size()) {
        const auto comma = rest.find(',', pos);
        const std::string item =
            rest.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos);
        const auto eq = item.find('=');
        if (item.empty() || eq == std::string::npos || eq == 0) {
            throw std::invalid_argument(
                "makeBackend: malformed option \"" + item + "\" in \"" +
                spec + "\" (expected key=value, comma-separated)");
        }
        options[item.substr(0, eq)] = item.substr(eq + 1);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return options;
}

long
parseIntOption(const std::string& key, const std::string& value)
{
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE) {
        throw std::invalid_argument("makeBackend: option " + key +
                                    " needs an in-range integer, got \"" +
                                    value + "\"");
    }
    return v;
}

const BackendInfo*
findBackendInfo(const std::string& name)
{
    for (const BackendInfo& info : backendRegistry()) {
        if (info.name == name)
            return &info;
        for (const std::string& alias : info.aliases)
            if (alias == name)
                return &info;
    }
    return nullptr;
}

} // namespace

BackendSpec
parseBackendSpec(const std::string& spec)
{
    std::string name;
    OptionMap options = parseOptionString(spec, name);

    const BackendInfo* info = findBackendInfo(name);
    if (!info) {
        std::string known;
        for (const std::string& n : backendNames())
            known += (known.empty() ? "" : ", ") + n;
        throw std::invalid_argument("makeBackend: unknown backend \"" + name +
                                    "\" (known: " + known + ")");
    }

    BackendSpec result;
    result.name = info->name;

    for (const auto& [key, value] : options) {
        const bool accepted =
            std::find(info->optionKeys.begin(), info->optionKeys.end(),
                      key) != info->optionKeys.end();
        if (!accepted) {
            // The backends that lack the path option lack it for structural
            // reasons worth spelling out, not because of a registry gap.
            if (key == "path" && info->name == "tensornetwork")
                throw std::invalid_argument(
                    "makeBackend: backend tensornetwork derives its own "
                    "contraction order from the network; the path option "
                    "applies to statevector, densitymatrix and "
                    "decisiondiagram");
            if (key == "path" && info->name == "knowledgecompilation")
                throw std::invalid_argument(
                    "makeBackend: backend knowledgecompilation compiles the "
                    "circuit to an arithmetic circuit and has no simulation "
                    "path; the path option applies to statevector, "
                    "densitymatrix and decisiondiagram");
            std::string known;
            for (const std::string& k : info->optionKeys)
                known += (known.empty() ? "" : ", ") + k;
            throw std::invalid_argument(
                "makeBackend: unknown option \"" + key + "\" for backend " +
                info->name +
                (known.empty() ? " (it accepts no options)"
                               : " (valid: " + known + ")"));
        }
        // simd takes a named level, not an integer — dispatch before the
        // integer parse. (parseSimdMode also accepts the 0/1 digit forms,
        // mirroring the obs knob.)
        if (key == "simd") {
            SimdMode mode;
            if (!parseSimdMode(value, &mode))
                throw std::invalid_argument(
                    "makeBackend: option simd must be auto, off, avx2 or "
                    "avx512, got \"" + value + "\"");
            result.options.simd = mode;
            continue;
        }
        // path takes a planner name (with an optional bracket width glued
        // on), not an integer — dispatch before the integer parse, like
        // simd above.
        if (key == "path") {
            PathOptions path;
            if (!parsePathPlanner(value, &path))
                throw std::invalid_argument(
                    "makeBackend: option path must be auto, linear, "
                    "pairwise or bracketN (N >= 2), got \"" + value + "\"");
            result.options.path = path;
            continue;
        }
        const long v = parseIntOption(key, value);
        if (key == "threads") {
            if (v < 0)
                throw std::invalid_argument(
                    "makeBackend: option threads must be >= 0 "
                    "(0 = machine default)");
            result.options.threads = static_cast<std::size_t>(v);
        } else if (key == "fuse") {
            if (v != 0 && v != 1)
                throw std::invalid_argument(
                    "makeBackend: option fuse must be 0 or 1");
            result.options.fuse = v == 1;
        } else if (key == "burnin") {
            if (v < 0)
                throw std::invalid_argument(
                    "makeBackend: option burnin must be >= 0");
            result.options.burnIn = static_cast<std::size_t>(v);
        } else if (key == "thin") {
            if (v < 1)
                throw std::invalid_argument(
                    "makeBackend: option thin must be >= 1");
            result.options.thin = static_cast<std::size_t>(v);
        } else if (key == "gc") {
            if (v != 0 && v != 1)
                throw std::invalid_argument(
                    "makeBackend: option gc must be 0 or 1");
            result.options.gc = v == 1;
        } else if (key == "obs") {
            if (v != 0 && v != 1)
                throw std::invalid_argument(
                    "makeBackend: option obs must be 0 or 1");
            result.options.obs = v == 1;
        } else if (key == "gcthreshold") {
            if (v < 1)
                throw std::invalid_argument(
                    "makeBackend: option gcthreshold must be >= 1 (nodes "
                    "live before a sweep triggers)");
            result.options.gcThreshold = static_cast<std::size_t>(v);
        } else {
            // A registry optionKey without a dispatch branch would
            // otherwise be validated, parsed and then silently dropped.
            throw std::logic_error(
                "parseBackendSpec: registry advertises option \"" + key +
                "\" but no dispatch branch stores it — add one here and a "
                "field in BackendOptions");
        }
    }
    return result;
}

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

std::vector<double>
marginalizeDistribution(const std::vector<double>& dist,
                        std::size_t numQubits,
                        const std::vector<std::size_t>& qubits)
{
    if (qubits.empty())
        return dist;
    std::uint64_t seen = 0;
    for (std::size_t q : qubits) {
        if (q >= numQubits)
            throw std::invalid_argument(
                "Probabilities: marginal qubit out of range");
        if (seen & (std::uint64_t{1} << q))
            throw std::invalid_argument(
                "Probabilities: repeated marginal qubit");
        seen |= std::uint64_t{1} << q;
    }
    std::vector<double> out(std::size_t{1} << qubits.size(), 0.0);
    for (std::size_t x = 0; x < dist.size(); ++x) {
        std::size_t idx = 0;
        for (std::size_t q : qubits)
            idx = (idx << 1) |
                  ((x >> (numQubits - 1 - q)) & std::size_t{1});
        out[idx] += dist[x];
    }
    return out;
}

} // namespace qkc
