#include "vqa/pauli.h"

#include <stdexcept>

namespace qkc {

PauliString::PauliString(const std::string& text) : text_(text)
{
    if (text.empty())
        throw std::invalid_argument("PauliString: empty");
    paulis_.reserve(text.size());
    for (char c : text) {
        if (c != 'I' && c != 'X' && c != 'Y' && c != 'Z')
            throw std::invalid_argument("PauliString: bad character");
        paulis_.push_back(c);
    }
}

bool
PauliString::isDiagonal() const
{
    for (char c : paulis_)
        if (c == 'X' || c == 'Y')
            return false;
    return true;
}

bool
PauliString::isIdentity() const
{
    for (char c : paulis_)
        if (c != 'I')
            return false;
    return true;
}

Circuit
PauliString::withMeasurementBasis(const Circuit& circuit) const
{
    if (circuit.numQubits() != paulis_.size())
        throw std::invalid_argument("PauliString: qubit count mismatch");
    Circuit rotated = circuit;
    for (std::size_t q = 0; q < paulis_.size(); ++q) {
        if (paulis_[q] == 'X') {
            rotated.h(q);
        } else if (paulis_[q] == 'Y') {
            rotated.sdg(q);
            rotated.h(q);
        }
    }
    return rotated;
}

int
PauliString::eigenvalue(std::uint64_t outcome) const
{
    const std::size_t n = paulis_.size();
    int parity = 0;
    for (std::size_t q = 0; q < n; ++q) {
        if (paulis_[q] == 'I')
            continue;
        parity ^= static_cast<int>((outcome >> (n - 1 - q)) & 1);
    }
    return parity ? -1 : 1;
}

double
PauliString::expectationFromSamples(
    const std::vector<std::uint64_t>& samples) const
{
    if (samples.empty())
        return 0.0;
    double acc = 0.0;
    for (std::uint64_t s : samples)
        acc += eigenvalue(s);
    return acc / static_cast<double>(samples.size());
}

double
PauliString::expectationFromDistribution(
    const std::vector<double>& distribution) const
{
    double acc = 0.0;
    for (std::uint64_t x = 0; x < distribution.size(); ++x)
        acc += distribution[x] * eigenvalue(x);
    return acc;
}

bool
PauliSum::isDiagonal() const
{
    for (const auto& [coeff, pauli] : terms) {
        (void)coeff;
        if (!pauli.isDiagonal())
            return false;
    }
    return true;
}

} // namespace qkc
