#ifndef QKC_VQA_WORKLOADS_H
#define QKC_VQA_WORKLOADS_H

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "util/graph.h"
#include "util/rng.h"
#include "vqa/pauli.h"

namespace qkc {

/**
 * QAOA for Max-Cut on a random 3-regular graph — the paper's headline
 * variational workload (Sections 2.3 and 4; Figures 3, 7, 8a/c, 9a/c).
 * One qubit per vertex; each of the `iterations` layers applies a ZZ(gamma)
 * phase separator per edge and an Rx(2 beta) mixer per qubit.
 */
class QaoaMaxCut {
  public:
    QaoaMaxCut(Graph graph, std::size_t iterations);

    /** Random d-regular instance (paper: every vertex has three edges). */
    static QaoaMaxCut randomRegular(std::size_t vertices, std::size_t degree,
                                    std::size_t iterations, Rng& rng);

    const Graph& graph() const { return graph_; }
    std::size_t numQubits() const { return graph_.numVertices(); }
    std::size_t iterations() const { return iterations_; }
    std::size_t numParams() const { return 2 * iterations_; }

    /** The circuit for parameters (gamma_1, beta_1, ..., gamma_p, beta_p). */
    Circuit circuit(const std::vector<double>& params) const;

    /** Cut value of one measurement outcome (qubit 0 = MSB). */
    std::size_t cutOfOutcome(std::uint64_t outcome) const;

    /** Mean cut over samples; the optimizer minimizes its negation. */
    double expectedCut(const std::vector<std::uint64_t>& samples) const;

    /** Exact expected cut under a full distribution (for tests/benches). */
    double expectedCutExact(const std::vector<double>& distribution) const;

    /**
     * The cut as a Pauli observable, |E|/2 - 1/2 sum_{(i,j) in E} Z_i Z_j,
     * for the Expectation task: backends with native expectation values
     * evaluate E[cut] exactly instead of estimating it from shots.
     */
    PauliSum cutObservable() const;

  private:
    Graph graph_;
    std::size_t iterations_;
};

/**
 * VQE for the minimum-energy configuration of a classical 2D Ising model
 * (paper Figures 8b/d, 9b/d): H = sum_{<ij>} J_ij Z_i Z_j + sum_i h_i Z_i
 * on a grid, one qubit per grid point. The ansatz is the QAOA-style
 * alternating operator: per layer a ZZ(gamma J_ij) per coupling plus
 * Rz(2 gamma h_i) per site, then an Rx(2 beta) mixer.
 */
class VqeIsing {
  public:
    VqeIsing(std::size_t rows, std::size_t cols, std::size_t iterations,
             Rng& rng);

    std::size_t numQubits() const { return grid_.numVertices(); }
    std::size_t iterations() const { return iterations_; }
    std::size_t numParams() const { return 2 * iterations_; }
    const Graph& grid() const { return grid_; }

    Circuit circuit(const std::vector<double>& params) const;

    /** Classical Ising energy of a measurement outcome (spin = +-1). */
    double energyOfOutcome(std::uint64_t outcome) const;

    double expectedEnergy(const std::vector<std::uint64_t>& samples) const;
    double expectedEnergyExact(const std::vector<double>& distribution) const;

    /**
     * H = sum_{<ij>} J_ij Z_i Z_j + sum_i h_i Z_i as a Pauli sum — the
     * Expectation-task form of the objective (diagonal, so every backend
     * with an exact distribution serves it without sampling).
     */
    PauliSum hamiltonian() const;

    /** Exact ground state energy by enumeration (tests; <= 20 qubits). */
    double groundStateEnergy() const;

  private:
    Graph grid_;
    std::vector<double> couplings_;  ///< per grid edge
    std::vector<double> fields_;     ///< per site
    std::size_t iterations_;
};

} // namespace qkc

#endif // QKC_VQA_WORKLOADS_H
