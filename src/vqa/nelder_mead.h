#ifndef QKC_VQA_NELDER_MEAD_H
#define QKC_VQA_NELDER_MEAD_H

#include <functional>
#include <vector>

namespace qkc {

/** Options for the Nelder-Mead downhill simplex optimizer. */
struct NelderMeadOptions {
    std::size_t maxIterations = 200;
    /** Initial simplex offset added to each coordinate in turn. */
    double initialStep = 0.5;
    /** Stop when the simplex's value spread falls below this. */
    double tolerance = 1e-8;
};

/** Result of a Nelder-Mead run. */
struct NelderMeadResult {
    std::vector<double> best;
    double value = 0.0;
    std::size_t evaluations = 0;
    std::size_t iterations = 0;
};

/**
 * Classic Nelder-Mead simplex minimization — the derivative-free classical
 * optimizer the paper's variational loops use (Section 2.3). Deterministic
 * given the initial point.
 */
NelderMeadResult nelderMead(
    const std::function<double(const std::vector<double>&)>& objective,
    std::vector<double> initial, const NelderMeadOptions& options = {});

} // namespace qkc

#endif // QKC_VQA_NELDER_MEAD_H
