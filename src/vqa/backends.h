#ifndef QKC_VQA_BACKENDS_H
#define QKC_VQA_BACKENDS_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ac/kc_simulator.h"
#include "circuit/circuit.h"
#include "exec/thread_pool.h"
#include "util/rng.h"

namespace qkc {

/**
 * A circuit-sampling backend: the quantum-computer stand-in that a
 * variational loop queries for measurement samples. One implementation per
 * simulator family the paper benchmarks (Figures 8 and 9).
 */
class SamplerBackend {
  public:
    virtual ~SamplerBackend() = default;

    /** Draws measurement outcomes from the circuit's final wavefunction. */
    virtual std::vector<std::uint64_t> sample(const Circuit& circuit,
                                              std::size_t numSamples,
                                              Rng& rng) = 0;

    virtual std::string name() const = 0;
};

/** qsim-style state-vector backend (trajectories when noise is present). */
class StateVectorBackend : public SamplerBackend {
  public:
    StateVectorBackend() = default;
    explicit StateVectorBackend(const ExecPolicy& policy) : policy_(policy) {}

    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) override;
    std::string name() const override { return "statevector"; }

  private:
    ExecPolicy policy_;
};

/** Cirq-style density-matrix backend (handles all channels exactly). */
class DensityMatrixBackend : public SamplerBackend {
  public:
    DensityMatrixBackend() = default;
    explicit DensityMatrixBackend(const ExecPolicy& policy) : policy_(policy) {}

    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) override;
    std::string name() const override { return "densitymatrix"; }

  private:
    ExecPolicy policy_;
};

/** qTorch-style tensor-network backend (ideal circuits only). */
class TensorNetworkBackend : public SamplerBackend {
  public:
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) override;
    std::string name() const override { return "tensornetwork"; }
};

/**
 * DDSIM-style decision-diagram (QMDD) backend. Ideal circuits build the
 * final state once and sample in O(n) per shot by walking the diagram;
 * noisy circuits run Born-rule Kraus trajectories like the state-vector
 * backend. Structured/peaked states stay compact, so this is the closest
 * classical rival to knowledge compilation on the paper's workloads.
 */
class DecisionDiagramBackend : public SamplerBackend {
  public:
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) override;
    std::string name() const override { return "decisiondiagram"; }
};

/**
 * The knowledge-compilation backend (this paper's system). The first call
 * compiles the circuit; later calls with the same structure only refresh
 * parameter leaves — the variational reuse that headlines Section 3.2.
 */
class KnowledgeCompilationBackend : public SamplerBackend {
  public:
    explicit KnowledgeCompilationBackend(CompileOptions compileOptions = {},
                                         GibbsOptions gibbsOptions = {});

    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) override;
    std::string name() const override { return "knowledgecompilation"; }

    /** Number of full compilations performed (1 across a variational run). */
    std::size_t compileCount() const { return compileCount_; }

    /** The live simulator (null before the first sample call). */
    KcSimulator* simulator() { return simulator_.get(); }

  private:
    CompileOptions compileOptions_;
    GibbsOptions gibbsOptions_;
    std::unique_ptr<KcSimulator> simulator_;
    std::size_t compileCount_ = 0;
};

/**
 * The unified backend registry: one string per simulator family, so the VQA
 * driver, the benches, and `qkc_cli --backend=` all construct backends the
 * same way and adding a sixth family is a one-line change here.
 *
 * Canonical names (with accepted aliases):
 *   "statevector" ("sv"), "densitymatrix" ("dm"), "tensornetwork" ("tn"),
 *   "decisiondiagram" ("dd"), "knowledgecompilation" ("kc").
 *
 * A spec may carry backend options after a colon, comma-separated:
 *
 *   "sv:threads=8,fuse=1"   state vector, 8 threads, gate fusion on
 *   "dm:threads=4,fuse=0"   density matrix, 4 threads, fusion off
 *   "kc:burnin=64,thin=2"   knowledge compilation Gibbs knobs
 *
 * Per-backend keys: sv/dm accept `threads` (>=1; 0 = machine default) and
 * `fuse` (0/1); kc accepts `burnin` and `thin`; tn and dd accept none.
 * Unknown backends *and* unknown or malformed options throw
 * std::invalid_argument listing what is valid.
 */
std::unique_ptr<SamplerBackend> makeBackend(const std::string& spec);

/** The canonical registry names, in presentation order. */
const std::vector<std::string>& backendNames();

} // namespace qkc

#endif // QKC_VQA_BACKENDS_H
