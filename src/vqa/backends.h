#ifndef QKC_VQA_BACKENDS_H
#define QKC_VQA_BACKENDS_H

#include <memory>
#include <string>

#include "vqa/simulator_api.h"

namespace qkc {

/**
 * The five simulator families behind the task-based Session API (see
 * simulator_api.h). Each Backend::open compiles the circuit structure once
 * into a Session; the session then serves Sample / Expectation /
 * Amplitudes / Probabilities tasks and rebinds parameters in place.
 *
 * Capability matrix (what each session serves, and how — "exact" means no
 * Monte-Carlo error; the registry in backendRegistry() carries the same
 * information as data):
 *
 *   backend        Sample          Expectation          Amplitudes  Probabilities
 *   statevector    exact (ideal)   exact (ideal);       ideal       ideal
 *                  trajectories    sampled under noise
 *   densitymatrix  exact           exact (incl. noise)  —           exact (incl. noise)
 *   tensornetwork  exact (ideal)   sampled              exact       exact marginals
 *   decisiondiagram exact (ideal)  exact (ideal);       ideal       ideal
 *                  trajectories    sampled under noise
 *   knowledgecomp. Gibbs (MCMC)    exact (ideal; diag.  ideal       exact (incl. noise)
 *                                  terms under noise)
 *
 * Batched execution (Session::runBatch) fans parameter bindings across
 * thread-pool lanes: sv clones its ExecutionPlan per lane, dd gives each
 * lane a private DdPackage, kc compiles one AC per lane and refreshes its
 * leaves per binding; dm and tn serialize with documented reasons. The
 * per-backend strategy is data in backendRegistry() (the `batch` field).
 */

/** qsim-style state-vector backend (trajectories when noise is present). */
class StateVectorBackend : public Backend {
  public:
    StateVectorBackend() = default;
    explicit StateVectorBackend(const BackendOptions& defaults)
        : defaults_(defaults)
    {
    }

    std::string name() const override { return "statevector"; }
    std::unique_ptr<Session> open(const Circuit& circuit,
                                  const BackendOptions& options) const override;
    using Backend::open;
    const BackendOptions& defaults() const override { return defaults_; }

  private:
    BackendOptions defaults_;
};

/** Cirq-style density-matrix backend (handles all channels exactly). */
class DensityMatrixBackend : public Backend {
  public:
    DensityMatrixBackend() = default;
    explicit DensityMatrixBackend(const BackendOptions& defaults)
        : defaults_(defaults)
    {
    }

    std::string name() const override { return "densitymatrix"; }
    std::unique_ptr<Session> open(const Circuit& circuit,
                                  const BackendOptions& options) const override;
    using Backend::open;
    const BackendOptions& defaults() const override { return defaults_; }

  private:
    BackendOptions defaults_;
};

/** qTorch-style tensor-network backend (ideal circuits only). */
class TensorNetworkBackend : public Backend {
  public:
    TensorNetworkBackend() = default;
    explicit TensorNetworkBackend(const BackendOptions& defaults)
        : defaults_(defaults)
    {
    }

    std::string name() const override { return "tensornetwork"; }
    std::unique_ptr<Session> open(const Circuit& circuit,
                                  const BackendOptions& options) const override;
    using Backend::open;
    const BackendOptions& defaults() const override { return defaults_; }

  private:
    BackendOptions defaults_;
};

/**
 * DDSIM-style decision-diagram (QMDD) backend. Ideal sessions build the
 * final state as a diagram and serve samples in O(n) per shot, amplitudes
 * by path walks and expectation values by one apply of a cached
 * Pauli-string matrix DD plus a memoized two-diagram walk; noisy circuits
 * run Born-rule Kraus trajectories with collections between them.
 *
 * One DdPackage persists across parameter binds (options gc/gcthreshold):
 * the session protects its live roots — the bound state, parameter-free
 * gate DDs, Pauli-term DDs — and each rebind unroots the old state and
 * runs a full mark-and-sweep, so the next binding starts from warm
 * arenas, free lists and table buckets but a deterministic interning
 * table (runBatch's bit-parity contract). gc=0 restores the legacy
 * rebuild-the-world lifecycle: every bind discards the package, and
 * nodes are pinned for its lifetime.
 */
class DecisionDiagramBackend : public Backend {
  public:
    DecisionDiagramBackend() = default;
    explicit DecisionDiagramBackend(const BackendOptions& defaults)
        : defaults_(defaults)
    {
    }

    std::string name() const override { return "decisiondiagram"; }
    std::unique_ptr<Session> open(const Circuit& circuit,
                                  const BackendOptions& options) const override;
    using Backend::open;
    const BackendOptions& defaults() const override { return defaults_; }

  private:
    BackendOptions defaults_;
};

/**
 * The knowledge-compilation backend (this paper's system). open() compiles
 * circuit -> Bayesian network -> CNF -> arithmetic circuit once; bind()
 * only refreshes parameter leaves — the variational reuse that headlines
 * Section 3.2 — and tasks query the compiled AC (Gibbs sampling, exact
 * expectation values, amplitude and probability queries).
 */
class KnowledgeCompilationBackend : public Backend {
  public:
    KnowledgeCompilationBackend() = default;
    explicit KnowledgeCompilationBackend(const BackendOptions& defaults)
        : defaults_(defaults)
    {
    }

    std::string name() const override { return "knowledgecompilation"; }
    std::unique_ptr<Session> open(const Circuit& circuit,
                                  const BackendOptions& options) const override;
    using Backend::open;
    const BackendOptions& defaults() const override { return defaults_; }

  private:
    BackendOptions defaults_;
};

} // namespace qkc

#endif // QKC_VQA_BACKENDS_H
