#ifndef QKC_VQA_BACKENDS_H
#define QKC_VQA_BACKENDS_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ac/kc_simulator.h"
#include "circuit/circuit.h"
#include "util/rng.h"

namespace qkc {

/**
 * A circuit-sampling backend: the quantum-computer stand-in that a
 * variational loop queries for measurement samples. One implementation per
 * simulator family the paper benchmarks (Figures 8 and 9).
 */
class SamplerBackend {
  public:
    virtual ~SamplerBackend() = default;

    /** Draws measurement outcomes from the circuit's final wavefunction. */
    virtual std::vector<std::uint64_t> sample(const Circuit& circuit,
                                              std::size_t numSamples,
                                              Rng& rng) = 0;

    virtual std::string name() const = 0;
};

/** qsim-style state-vector backend (trajectories when noise is present). */
class StateVectorBackend : public SamplerBackend {
  public:
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) override;
    std::string name() const override { return "statevector"; }
};

/** Cirq-style density-matrix backend (handles all channels exactly). */
class DensityMatrixBackend : public SamplerBackend {
  public:
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) override;
    std::string name() const override { return "densitymatrix"; }
};

/** qTorch-style tensor-network backend (ideal circuits only). */
class TensorNetworkBackend : public SamplerBackend {
  public:
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) override;
    std::string name() const override { return "tensornetwork"; }
};

/**
 * DDSIM-style decision-diagram (QMDD) backend. Ideal circuits build the
 * final state once and sample in O(n) per shot by walking the diagram;
 * noisy circuits run Born-rule Kraus trajectories like the state-vector
 * backend. Structured/peaked states stay compact, so this is the closest
 * classical rival to knowledge compilation on the paper's workloads.
 */
class DecisionDiagramBackend : public SamplerBackend {
  public:
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) override;
    std::string name() const override { return "decisiondiagram"; }
};

/**
 * The knowledge-compilation backend (this paper's system). The first call
 * compiles the circuit; later calls with the same structure only refresh
 * parameter leaves — the variational reuse that headlines Section 3.2.
 */
class KnowledgeCompilationBackend : public SamplerBackend {
  public:
    explicit KnowledgeCompilationBackend(CompileOptions compileOptions = {},
                                         GibbsOptions gibbsOptions = {});

    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t numSamples, Rng& rng) override;
    std::string name() const override { return "knowledgecompilation"; }

    /** Number of full compilations performed (1 across a variational run). */
    std::size_t compileCount() const { return compileCount_; }

    /** The live simulator (null before the first sample call). */
    KcSimulator* simulator() { return simulator_.get(); }

  private:
    CompileOptions compileOptions_;
    GibbsOptions gibbsOptions_;
    std::unique_ptr<KcSimulator> simulator_;
    std::size_t compileCount_ = 0;
};

/**
 * The unified backend registry: one string per simulator family, so the VQA
 * driver, the benches, and `qkc_cli --backend=` all construct backends the
 * same way and adding a sixth family is a one-line change here.
 *
 * Canonical names (with accepted aliases):
 *   "statevector" ("sv"), "densitymatrix" ("dm"), "tensornetwork" ("tn"),
 *   "decisiondiagram" ("dd"), "knowledgecompilation" ("kc").
 *
 * Throws std::invalid_argument for unknown names, listing the valid ones.
 */
std::unique_ptr<SamplerBackend> makeBackend(const std::string& name);

/** The canonical registry names, in presentation order. */
const std::vector<std::string>& backendNames();

} // namespace qkc

#endif // QKC_VQA_BACKENDS_H
