#ifndef QKC_VQA_SIMULATOR_API_H
#define QKC_VQA_SIMULATOR_API_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/fusion.h"
#include "circuit/simulation_path.h"
#include "exec/simd.h"
#include "linalg/types.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "vqa/pauli.h"

namespace qkc {

// ---------------------------------------------------------------------------
// Typed backend options
// ---------------------------------------------------------------------------

/**
 * Every knob a backend accepts, in one typed struct. String specs like
 * "sv:threads=8,fuse=1" are parsed into this by parseBackendSpec with
 * per-backend key validation; programmatic callers fill it directly and
 * pass it to Backend::open. Keys a backend does not consult are ignored at
 * open time (validation is the parser's job, so typed callers can share one
 * options value across backends).
 */
struct BackendOptions {
    /**
     * Dense-sweep threads for sv/dm, and worker lanes for dd (runBatch
     * fan-out and the trajectory-parallel noisy Sample); total, including
     * the caller. 0 = machine default: the QKC_THREADS environment
     * variable when set (clamped to >= 1), otherwise
     * std::thread::hardware_concurrency(). An explicit value here always
     * wins over both.
     */
    std::size_t threads = 0;

    /** Run the greedy gate-fusion pass at plan time (sv/dm). */
    bool fuse = true;

    /**
     * Vector dispatch level for the dense kernel sweeps (sv/dm):
     * "auto" (the default — whatever QKC_SIMD and CPUID allow), "off",
     * "avx2", or "avx512". An explicit level can only lower the process
     * ceiling, never raise it past QKC_SIMD or the hardware. Purely a speed
     * knob: payloads are bit-identical at every level.
     */
    SimdMode simd = SimdMode::Auto;

    /** Gibbs sweeps discarded before the first recorded sample (kc). */
    std::size_t burnIn = 64;

    /** Gibbs sweeps between recorded samples, >= 1 (kc). */
    std::size_t thin = 1;

    /**
     * Diagram garbage collection (dd). On (the default), the session keeps
     * one DdPackage across parameter binds and trajectories, collecting
     * dead nodes at safe points; off restores the old rebuild-the-world
     * lifecycle (fresh package per bind, nodes pinned until then).
     */
    bool gc = true;

    /** Live-node count that triggers a collection, >= 1 (dd). */
    std::size_t gcThreshold = 1u << 16;

    /**
     * Simulation-path planner (sv/dm/dd): how the circuit is lowered to a
     * contraction tree before execution. "auto" (the default) resolves to
     * linear — today's one-MxV-per-operation behavior. "pairwise" and
     * "bracketN" group channel-free gate runs into MxM subtrees: the dense
     * backends materialize them as parallel fusion tree tasks at plan
     * time, the dd backend fuses each subtree into one matrix DD via
     * multiplyMM. tn derives its own contraction order and kc has no
     * simulation path; both reject the option at parse time.
     */
    PathOptions path{};

    /**
     * Per-task observability (all backends): phase spans around the
     * session's work and a TaskProfile in every ResultMeta. Off, a task
     * pays one thread-local branch per span site and ResultMeta.profile
     * stays empty; counters still follow the process-wide obs::enabled()
     * switch (QKC_OBS=0 rules those out too).
     */
    bool obs = true;
};

/** A parsed backend spec: canonical name plus its typed options. */
struct BackendSpec {
    std::string name;
    BackendOptions options;
};

/**
 * Parses "name[:k1=v1,k2=v2]" — name canonical or aliased — into a typed
 * spec. Unknown backends *and* unknown or malformed options throw
 * std::invalid_argument listing what is valid for that backend.
 */
BackendSpec parseBackendSpec(const std::string& spec);

// ---------------------------------------------------------------------------
// Registry metadata
// ---------------------------------------------------------------------------

/**
 * One registry entry per simulator family. qkc_cli --list-backends and the
 * README capability matrix render straight from this, so help text cannot
 * drift from what parseBackendSpec actually accepts.
 */
struct BackendInfo {
    std::string name;                      ///< canonical registry name
    std::vector<std::string> aliases;      ///< e.g. {"sv"}
    std::vector<std::string> optionKeys;   ///< keys parseBackendSpec accepts
    std::string summary;                   ///< one-line cost-profile note
    std::string tasks;                     ///< which tasks it serves, and how
    std::string batch;                     ///< runBatch strategy, one line
};

/** The full registry, in presentation order. */
const std::vector<BackendInfo>& backendRegistry();

/** The canonical registry names, in presentation order. */
const std::vector<std::string>& backendNames();

// ---------------------------------------------------------------------------
// Tasks
// ---------------------------------------------------------------------------

/** Draw `shots` measurement outcomes from the bound circuit. */
struct Sample {
    std::size_t shots = 1024;
};

/**
 * Evaluate <H> for a Pauli-sum observable. Served natively (exactly) where
 * the representation allows it — sv: <psi|P|psi> via the exec kernels,
 * dm: tr(rho P), dd: a diagram walk, kc: AC queries — and estimated from
 * `shots` rotated-basis samples per non-diagonal term otherwise (tn, and
 * noisy trajectory paths). Result::meta.exact records which happened.
 */
struct Expectation {
    PauliSum observable;
    std::size_t shots = 4096; ///< only used by the sampling fallback
};

/** Read amplitudes <x|psi> for the given basis states (pure states only). */
struct Amplitudes {
    std::vector<std::uint64_t> bitstrings;
};

/**
 * Exact outcome probabilities, marginalized onto `qubits` (empty = all
 * qubits, i.e. the full 2^n distribution). Entry k of the payload is the
 * probability that the selected qubits read out the bits of k, with
 * qubits[0] the most significant bit — matching the circuit convention.
 */
struct Probabilities {
    std::vector<std::size_t> qubits;
};

/** One typed query against an open session. */
using Task = std::variant<Sample, Expectation, Amplitudes, Probabilities>;

/**
 * One entry of a batched run: a full set of gate parameters, expressed as a
 * same-structure circuit — the same currency Session::bind takes. (A
 * different structure on the same qubit count is legal but re-plans; a
 * different qubit count throws.)
 */
using ParamBinding = Circuit;

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/**
 * Decision-diagram memory-lifecycle counters (dd sessions only; all-zero on
 * the other backends). Mirrors the owning DdPackage's DdStats at the end of
 * the task, so a long noisy run can assert its live-node count stayed
 * bounded while collections actually happened.
 */
/**
 * One compute table's hit/miss tally. Lifetime values are monotone over the
 * owning package; the per-task copies in DdMemoryStats are deltas over one
 * Session::run, so hitRate() there is an honest per-run rate rather than a
 * number diluted by the session's history.
 */
struct DdComputeTableStats {
    std::size_t hits = 0;
    std::size_t misses = 0;

    std::size_t lookups() const { return hits + misses; }
    double hitRate() const
    {
        const std::size_t n = lookups();
        return n ? static_cast<double>(hits) / static_cast<double>(n) : 0.0;
    }
};

struct DdMemoryStats {
    std::size_t liveVNodes = 0;     ///< vector nodes live in the unique table
    std::size_t liveMNodes = 0;     ///< matrix nodes live in the unique table
    std::size_t gcRuns = 0;         ///< completed mark-and-sweep collections
    std::size_t nodesCollected = 0; ///< total unique-table evictions
    std::size_t peakLiveNodes = 0;  ///< high-water mark of live nodes
    std::uint64_t gcNanos = 0;      ///< total collection pause time

    DdComputeTableStats apply{};    ///< apply cache, package lifetime
    DdComputeTableStats add{};      ///< add cache, package lifetime
    DdComputeTableStats taskApply{};///< apply cache, this task only
    DdComputeTableStats taskAdd{};  ///< add cache, this task only
};

/**
 * Aggregate timing of the runBatch call a Result came from (zeros outside
 * batches). Stamped identically on every result of the batch: per-result
 * meta.seconds is that binding's own bind+run lane time, and this is the
 * whole-batch view — wall time of the call, the slowest single binding, and
 * how unevenly the bindings' busy time spread over the worker lanes
 * (imbalance = lanes * max-lane-busy / total-busy; 1.0 is a perfectly even
 * fan-out, -> lanes means one lane did everything).
 */
struct BatchStats {
    std::size_t bindings = 0;       ///< batch size
    std::size_t lanes = 0;          ///< worker lanes used (1 = serialized)
    double wallSeconds = 0.0;       ///< wall time of the runBatch call
    double maxBindingSeconds = 0.0; ///< slowest single binding
    double maxLaneSeconds = 0.0;    ///< busiest lane's total binding time
    double imbalance = 0.0;         ///< lane imbalance ratio (>= 1.0)
};

/**
 * Simulation-path execution stats for one task (sv/dm/dd sessions; default
 * values elsewhere). `planner` is the resolved planner name ("linear" when
 * the option was auto/linear); nodes/mmNodes describe the planned tree;
 * mmProducts counts operator-operator products the last plan or rebind
 * evaluated; cachedSubtrees counts frozen subtrees served from cache by the
 * last rebind instead of being re-materialized.
 */
struct PathMeta {
    std::string planner = "linear";
    std::size_t nodes = 0;
    std::size_t mmNodes = 0;
    std::size_t mmProducts = 0;
    std::size_t cachedSubtrees = 0;
};

/** Execution metadata carried by every Result. */
struct ResultMeta {
    std::string backend;        ///< canonical backend name
    double seconds = 0.0;       ///< wall time inside Session::run

    /**
     * Structure compilations this session has performed so far: execution
     * plans (fusion + kernel classification) for sv/dm, diagram builds for
     * dd, contraction plannings for tn, AC compilations for kc. A
     * variational sweep over one circuit structure must show this stuck at
     * 1 while planReuses grows — the paper's Section 3.2 reuse property,
     * asserted by the session tests.
     */
    std::size_t planBuilds = 0;

    /** Parameter binds served by refreshing the cached structure. */
    std::size_t planReuses = 0;

    /** Noisy Monte-Carlo trajectories run for this task. */
    std::size_t trajectories = 0;

    /** Shots drawn by the Expectation sampling fallback (0 when exact). */
    std::size_t fallbackShots = 0;

    /** Payload computed without Monte-Carlo error. */
    bool exact = false;

    /** Gate-fusion stats of the active plan (dense backends; else zeros). */
    FusionStats fusion{};

    /** Diagram memory-lifecycle stats (dd sessions; else zeros). */
    DdMemoryStats ddMemory{};

    /** Simulation-path stats (sv/dm/dd sessions; else defaults). */
    PathMeta path{};

    /** Batch aggregates when the result came from runBatch (else zeros). */
    BatchStats batch{};

    /**
     * Phase-time breakdown and counter deltas for this task, collected when
     * the session's obs option is on: the run's top-level spans (bind,
     * backend phases, gc pauses) aggregated by name, summing to within a
     * few percent of `seconds`. Empty when obs is off.
     */
    obs::TaskProfile profile{};
};

/**
 * The payload of one task plus its metadata. Exactly one payload field is
 * populated, matching the Task alternative that produced it.
 */
struct Result {
    std::vector<std::uint64_t> samples;   ///< Sample
    double expectation = 0.0;             ///< Expectation
    std::vector<Complex> amplitudes;      ///< Amplitudes
    std::vector<double> probabilities;    ///< Probabilities
    ResultMeta meta;
};

// ---------------------------------------------------------------------------
// Session and Backend
// ---------------------------------------------------------------------------

/**
 * A live simulation of one circuit *structure* on one backend. Opening a
 * session pays the structure cost once — execution plan (fusion + kernel
 * classification) for the dense backends, compiled gate DDs for dd,
 * contraction plans for tn, the compiled arithmetic circuit for kc — and
 * every task then runs against that state. bind() swaps in new gate
 * parameters without re-paying it, which generalizes the paper's
 * compile-once/refresh-leaves reuse story (Section 3.2) from the kc backend
 * to all five families.
 *
 * Sessions are not thread-safe; drive one session from one thread (the
 * dense sweeps inside parallelize per BackendOptions::threads).
 */
class Session {
  public:
    virtual ~Session() = default;

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /** Canonical name of the owning backend. */
    const std::string& backendName() const { return backendName_; }

    /** The currently bound circuit. */
    const Circuit& circuit() const { return circuit_; }

    /**
     * Rebinds the session to `circuit`. Same structure (gate kinds and
     * wires; only parameters/values differ): the cached plan is refreshed
     * in place and planReuses increments. Different structure on the same
     * qubit count: the session transparently re-plans (planBuilds
     * increments). A different qubit count throws std::invalid_argument.
     */
    void bind(const Circuit& circuit);

    /** Runs one typed task and returns its payload plus metadata. */
    Result run(const Task& task, Rng& rng);

    /**
     * Runs one task against every binding and returns the results in batch
     * order — the unit of execution for a parameter-shift gradient or a
     * simplex sweep. The circuit structure is planned once (the session's
     * cached plan) and the bindings fan out across the exec thread pool:
     * each worker lane drives its own clone of the per-structure state
     * (cloneForBatch) and every binding draws from its own RNG stream,
     * seeded from `rng` in batch order before any parallel work. Payloads
     * are therefore bit-identical for every thread count, and match a
     * sequential bind/run loop driven from the same per-binding seeds.
     *
     * Backends whose per-structure cache cannot be cloned cheaply (dm, tn)
     * serialize the batch on the session itself — see batchStrategy() in
     * the registry table. A batch issued from inside pool work (a nested
     * parallel region) also serializes, so a batched task can never
     * deadlock a pool already running trajectories.
     *
     * Afterwards the session is bound to bindings.back() — exactly as after
     * the equivalent sequential loop — and planBuilds/planReuses have
     * counted one bind per binding.
     */
    std::vector<Result> runBatch(const std::vector<ParamBinding>& bindings,
                                 const Task& task, Rng& rng);

    /**
     * The same batched run with the per-binding seeds supplied explicitly
     * (one per binding) instead of drawn from a shared generator. This is
     * the form callers with *independent* randomness contracts need — the
     * server seeds every client's binding from that client's own seed, so a
     * request's payload is bit-identical whether it ran solo, coalesced
     * into a larger batch, or was replayed after a cache eviction; the
     * Rng overload above is equivalent to drawing seeds[i] = rng.next() in
     * batch order and calling this.
     */
    std::vector<Result> runBatch(const std::vector<ParamBinding>& bindings,
                                 const Task& task,
                                 const std::vector<std::uint64_t>& seeds);

    std::size_t planBuilds() const { return planBuilds_; }
    std::size_t planReuses() const { return planReuses_; }

    /** Whether this session collects per-task profiles (the obs option). */
    bool obsEnabled() const { return obsEnabled_; }

    /** Cached rotated-basis fallback sub-sessions (one per term signature). */
    std::size_t rotatedSessionCount() const { return rotatedSessions_.size(); }

  protected:
    Session(std::string backendName, Circuit circuit);

    /**
     * Backend hook for bind: refresh values for a same-structure circuit
     * (sameStructure == true) or rebuild for a new structure. Returns true
     * when the cached structure was reused; false when a full rebuild
     * happened (structure change, or a parameter crossed a structural
     * boundary such as a kernel class). The public wrapper maintains the
     * planBuilds/planReuses counters from the return value.
     */
    virtual bool doBind(const Circuit& circuit, bool sameStructure) = 0;

    virtual std::vector<std::uint64_t> doSample(std::size_t shots, Rng& rng,
                                                ResultMeta& meta) = 0;

    /** Default: the rotated-basis sampling fallback (sampledExpectation). */
    virtual double doExpectation(const PauliSum& observable,
                                 std::size_t shots, Rng& rng,
                                 ResultMeta& meta);

    /** Default: throws — the backend cannot serve amplitudes. */
    virtual std::vector<Complex> doAmplitudes(
        const std::vector<std::uint64_t>& bitstrings, ResultMeta& meta);

    /** Default: throws — the backend cannot serve exact probabilities. */
    virtual std::vector<double> doProbabilities(
        const std::vector<std::size_t>& qubits, ResultMeta& meta);

    /**
     * Opens a session of this backend family on a structure-modified copy
     * of the bound circuit (the Expectation fallback appends measurement-
     * basis rotations). The base class caches one sub-session per rotation
     * signature and rebinds it across calls, extending the compile-once/
     * rebind-many discipline to the fallback path; the sub-session's own
     * metadata accounts the Monte-Carlo cost it incurs.
     */
    virtual std::unique_ptr<Session> openAdHoc(const Circuit& rotated) const = 0;

    /**
     * Batch fan-out hook: a fresh session sharing this one's options whose
     * per-structure state was *cloned* (not re-planned) wherever the
     * representation allows it. Returning nullptr (the default) serializes
     * runBatch on the session itself — the documented strategy for backends
     * whose cache is too large or too entangled to clone (dm: a second 4^n
     * plan per lane buys little when the superoperator sweeps already
     * parallelize internally; tn: the sampler's per-prefix contraction
     * caches mutate during sampling).
     */
    virtual std::unique_ptr<Session> cloneForBatch() const;

    /** Worker lanes runBatch may use (default: the machine/QKC_THREADS). */
    virtual std::size_t batchThreads() const;

    /**
     * Called on every lane after a batch completes: drop transient payload
     * caches (dense final states, probability tables, diagram arenas) so a
     * persistent lane pins only its per-structure plan between batches,
     * not a full simulation result per thread. Default: no-op.
     */
    virtual void trimBatchLane() {}

    /**
     * Shared CLT fallback: diagonal terms score one batch of computational-
     * basis samples from the session itself; each non-diagonal term pays
     * `shots` samples from its cached rotated-basis sub-session.
     */
    double sampledExpectation(const PauliSum& observable, std::size_t shots,
                              Rng& rng, ResultMeta& meta);

    /**
     * Cancels the nominal first build the Session constructor records.
     * Called by cloneForBatch implementations whose construction copies an
     * existing plan instead of compiling one, so the fold of lane counters
     * back into the parent session stays an honest count of structure
     * compilations actually performed.
     */
    void clearInitialBuild() { planBuilds_ = 0; }

    /** Throws std::invalid_argument naming the backend, task and reason. */
    [[noreturn]] void unsupported(const char* task, const char* why) const;

    /** Validates an Expectation observable against the bound circuit. */
    void checkObservable(const PauliSum& observable) const;

    Circuit circuit_;
    std::size_t planBuilds_ = 0;
    std::size_t planReuses_ = 0;

    /** Set from BackendOptions::obs by every backend's open/clone path. */
    bool obsEnabled_ = true;

  private:
    /** The cached fallback sub-session for `pauli`'s rotation signature. */
    Session& rotatedSession(const PauliString& pauli);

    std::string backendName_;

    /**
     * Rotated-basis fallback sub-sessions, keyed by rotation signature (the
     * X/Y pattern of the term — Z and I need no basis change, so terms
     * sharing the pattern share one sub-session and only rebind it).
     */
    std::map<std::string, std::unique_ptr<Session>> rotatedSessions_;

    /**
     * Worker-lane clones kept across runBatch calls, so backends whose
     * clone pays a real compilation (kc) pay it once per lane for the
     * session lifetime, not once per batch.
     */
    std::vector<std::unique_ptr<Session>> batchLanes_;

    /** cloneForBatch declined once; every later batch serializes. */
    bool batchSerialized_ = false;
};

/**
 * A simulator family. `open` compiles a circuit structure into a Session;
 * `sample` is the pre-redesign convenience (open + one Sample task) kept
 * for one-shot callers — anything that evaluates repeatedly should hold a
 * Session and bind.
 */
class Backend {
  public:
    virtual ~Backend() = default;

    /** Canonical registry name. */
    virtual std::string name() const = 0;

    /** Opens a session on `circuit` with explicit options. */
    virtual std::unique_ptr<Session> open(const Circuit& circuit,
                                          const BackendOptions& options) const = 0;

    /** Opens a session with the backend's configured default options. */
    std::unique_ptr<Session> open(const Circuit& circuit) const
    {
        return open(circuit, defaults());
    }

    /** The options this backend was constructed with (spec string, ctor). */
    virtual const BackendOptions& defaults() const = 0;

    /** Compatibility helper: open(circuit).run(Sample{shots}).samples. */
    std::vector<std::uint64_t> sample(const Circuit& circuit,
                                      std::size_t shots, Rng& rng) const;

    /**
     * Convenience for one-shot batch callers: opens a session on the first
     * binding (paying the structure cost once) and runs the batch through
     * it. Anything that evaluates batches repeatedly should hold the
     * Session and call Session::runBatch so lane state persists.
     */
    std::vector<Result> runBatch(const std::vector<ParamBinding>& bindings,
                                 const Task& task, Rng& rng) const;
};

/**
 * The unified backend registry front-end: resolves a string spec
 * ("sv:threads=8,fuse=1", "kc:burnin=64,thin=2", ...) through
 * parseBackendSpec and constructs the backend with those options baked in
 * as its defaults. See backendRegistry() for names, aliases and keys.
 */
std::unique_ptr<Backend> makeBackend(const std::string& spec);

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/**
 * Marginalizes a full 2^n distribution onto `qubits` (Probabilities task
 * semantics: qubits[0] = MSB of the output index; empty = identity copy).
 * Throws on out-of-range or repeated qubits.
 */
std::vector<double> marginalizeDistribution(const std::vector<double>& dist,
                                            std::size_t numQubits,
                                            const std::vector<std::size_t>& qubits);

} // namespace qkc

#endif // QKC_VQA_SIMULATOR_API_H
