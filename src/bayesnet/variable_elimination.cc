#include "bayesnet/variable_elimination.h"

#include <algorithm>
#include <cassert>

#include "bayesnet/factor.h"
#include "linalg/types.h"
#include "util/graph.h"
#include "util/min_fill.h"

namespace qkc {

namespace {

/**
 * Eliminates all variables from `factors` in a min-fill order over the
 * interaction graph, multiplying everything that remains into a scalar.
 * Query variables must already be conditioned away.
 */
Complex
eliminateAll(std::vector<Factor> factors, std::size_t numVars)
{
    // Interaction graph over the remaining variables.
    Graph g(numVars);
    for (const Factor& f : factors)
        for (std::size_t i = 0; i < f.vars().size(); ++i)
            for (std::size_t j = i + 1; j < f.vars().size(); ++j)
                g.addEdge(f.vars()[i], f.vars()[j]);

    std::vector<bool> present(numVars, false);
    for (const Factor& f : factors)
        for (BnVarId v : f.vars())
            present[v] = true;

    for (std::size_t v : minFillOrdering(g)) {
        if (!present[v])
            continue;
        // Multiply all factors mentioning v, then sum v out.
        Factor merged(Complex{1.0});
        std::vector<Factor> rest;
        rest.reserve(factors.size());
        for (Factor& f : factors) {
            const auto& vars = f.vars();
            if (std::find(vars.begin(), vars.end(), static_cast<BnVarId>(v)) !=
                vars.end()) {
                merged = merged.multiply(f);
            } else {
                rest.push_back(std::move(f));
            }
        }
        rest.push_back(merged.sumOut(static_cast<BnVarId>(v)));
        factors = std::move(rest);
    }

    Complex result{1.0};
    for (const Factor& f : factors) {
        assert(f.vars().empty());
        result *= f.scalar();
    }
    return result;
}

} // namespace

Complex
VariableElimination::amplitude(
    const std::vector<std::size_t>& queryAssignment) const
{
    auto query = bn_->queryVars();
    assert(queryAssignment.size() == query.size());

    std::vector<Factor> factors;
    factors.reserve(bn_->potentials().size());
    for (const auto& pot : bn_->potentials()) {
        Factor f = Factor::fromPotential(*bn_, pot);
        for (std::size_t qi = 0; qi < query.size(); ++qi) {
            const auto& vars = f.vars();
            if (std::find(vars.begin(), vars.end(), query[qi]) != vars.end())
                f = f.condition(query[qi], queryAssignment[qi]);
        }
        factors.push_back(std::move(f));
    }
    return eliminateAll(std::move(factors), bn_->variables().size());
}

std::vector<Complex>
VariableElimination::queryAmplitudes() const
{
    auto query = bn_->queryVars();
    std::size_t total = 1;
    for (BnVarId v : query)
        total *= bn_->variable(v).cardinality;

    std::vector<Complex> amps(total);
    std::vector<std::size_t> assign(query.size(), 0);
    for (std::size_t flat = 0; flat < total; ++flat) {
        std::size_t rem = flat;
        for (std::size_t i = query.size(); i-- > 0;) {
            assign[i] = rem % bn_->variable(query[i]).cardinality;
            rem /= bn_->variable(query[i]).cardinality;
        }
        amps[flat] = amplitude(assign);
    }
    return amps;
}

std::vector<double>
VariableElimination::outcomeDistribution() const
{
    auto query = bn_->queryVars();
    const std::size_t numFinal = bn_->finalVars().size();
    std::size_t noiseCombos = 1;
    for (std::size_t i = numFinal; i < query.size(); ++i)
        noiseCombos *= bn_->variable(query[i]).cardinality;

    auto amps = queryAmplitudes();
    std::vector<double> dist(std::size_t{1} << numFinal, 0.0);
    for (std::size_t flat = 0; flat < amps.size(); ++flat) {
        // Final qubit vars are the leading digits: index = x * noiseCombos + nu.
        std::size_t x = flat / noiseCombos;
        dist[x] += norm2(amps[flat]);
    }
    return dist;
}

} // namespace qkc
