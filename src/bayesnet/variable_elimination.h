#ifndef QKC_BAYESNET_VARIABLE_ELIMINATION_H
#define QKC_BAYESNET_VARIABLE_ELIMINATION_H

#include <cstdint>
#include <vector>

#include "bayesnet/bayes_net.h"
#include "linalg/types.h"

namespace qkc {

/**
 * Exact inference on complex-valued quantum Bayesian networks via variable
 * elimination. The paper used this classical algorithm to establish that
 * complex-valued BN inference performs correct circuit simulation before
 * switching to knowledge compilation (Section 3.2); here it serves as the
 * independent reference the compiled pipeline is tested against.
 */
class VariableElimination {
  public:
    explicit VariableElimination(const QuantumBayesNet& bn) : bn_(&bn) {}

    /**
     * Amplitude of one Feynman-path family: all query variables (final
     * qubit states + noise RVs) fixed to `queryAssignment` (indexed as
     * bn.queryVars()), every other variable summed out.
     */
    Complex amplitude(const std::vector<std::size_t>& queryAssignment) const;

    /**
     * Full joint amplitude table over the query variables, indexed in mixed
     * radix over bn.queryVars() (last variable fastest). Exponential in the
     * number of query variables; for validation at small sizes.
     */
    std::vector<Complex> queryAmplitudes() const;

    /**
     * Measurement distribution over final qubit states:
     * P(x) = sum_nu |A(x, nu)|^2 over noise assignments nu.
     */
    std::vector<double> outcomeDistribution() const;

  private:
    const QuantumBayesNet* bn_;
};

} // namespace qkc

#endif // QKC_BAYESNET_VARIABLE_ELIMINATION_H
