#include <cmath>
#include <cstdio>
#include <map>
#include <stdexcept>

#include "bayesnet/bayes_net.h"
#include "circuit/circuit.h"

namespace qkc {

namespace {

/** Angle offset used to probe whether a table cell is structurally 0/1. */
constexpr double kProbeDelta = 0.7310585;
constexpr double kStructEps = 1e-9;

/** A table cell observed at the build angle and at the probe angle. */
struct CellProbe {
    Complex primary;
    Complex probe;

    bool structuralZero() const
    {
        return std::abs(primary) < kStructEps && std::abs(probe) < kStructEps;
    }
    bool structuralOne() const
    {
        return std::abs(primary - 1.0) < kStructEps &&
               std::abs(probe - 1.0) < kStructEps;
    }
    bool operator<(const CellProbe& o) const
    {
        auto key = [](const Complex& z) {
            return std::make_pair(z.real(), z.imag());
        };
        return std::make_pair(key(primary), key(probe)) <
               std::make_pair(key(o.primary), key(o.probe));
    }
};

/** Permutation structure of a unitary: one nonzero per column, per row. */
struct PermInfo {
    bool isPermutation = false;
    std::vector<std::size_t> outOf;   ///< outOf[in] = output basis state
    std::vector<CellProbe> weight;    ///< weight[in] = the nonzero cell
};

PermInfo
analyzePermutation(const Matrix& u, const Matrix& uProbe)
{
    const std::size_t d = u.rows();
    PermInfo info;
    info.outOf.resize(d);
    info.weight.resize(d);
    std::vector<bool> rowUsed(d, false);
    for (std::size_t in = 0; in < d; ++in) {
        std::size_t nonZero = 0;
        std::size_t row = 0;
        for (std::size_t r = 0; r < d; ++r) {
            bool nzPrimary = std::abs(u(r, in)) > kStructEps;
            bool nzProbe = std::abs(uProbe(r, in)) > kStructEps;
            if (nzPrimary != nzProbe)
                return info;  // pattern depends on the angle: treat as dense
            if (nzPrimary) {
                ++nonZero;
                row = r;
            }
        }
        if (nonZero != 1 || rowUsed[row])
            return info;
        rowUsed[row] = true;
        info.outOf[in] = row;
        info.weight[in] = {u(row, in), uProbe(row, in)};
    }
    info.isPermutation = true;
    return info;
}

} // namespace

/** Builds the quantum Bayesian network for one circuit. */
class BayesNetBuilder {
  public:
    explicit BayesNetBuilder(const Circuit& circuit) : circuit_(circuit) {}

    QuantumBayesNet build()
    {
        const std::size_t n = circuit_.numQubits();
        current_.resize(n);
        moment_.assign(n, 0);
        for (std::size_t q = 0; q < n; ++q) {
            BnVarId v = newVar(BnVarRole::InitialState, q, 2, "");
            current_[q] = v;
            // Known initial state |0>: table [1, 0].
            BnPotential pot;
            pot.vars = {v};
            pot.entries = {{BnEntryKind::StructuralOne, -1},
                           {BnEntryKind::StructuralZero, -1}};
            bn_.potentials_.push_back(std::move(pot));
        }

        const auto& ops = circuit_.operations();
        for (std::size_t i = 0; i < ops.size(); ++i) {
            if (const Gate* g = std::get_if<Gate>(&ops[i]))
                handleGate(*g, i);
            else
                handleNoise(std::get<NoiseChannel>(ops[i]), i);
        }

        // The last state variable of each qubit is a query variable.
        bn_.finalVars_.resize(n);
        for (std::size_t q = 0; q < n; ++q) {
            BnVariable& v = bn_.vars_[current_[q]];
            v.role = BnVarRole::FinalState;
            bn_.finalVars_[q] = current_[q];
        }
        return std::move(bn_);
    }

  private:
    BnVarId newVar(BnVarRole role, std::size_t qubit, std::size_t cardinality,
                   const char* suffix)
    {
        char name[32];
        std::snprintf(name, sizeof(name), "q%zum%zu%s", qubit, moment_[qubit],
                      suffix);
        bn_.vars_.push_back(
            {name, role, qubit, moment_[qubit], cardinality});
        return static_cast<BnVarId>(bn_.vars_.size() - 1);
    }

    /** Interns one cell into `pot`, deduplicating parameters per potential. */
    void pushEntry(BnPotential& pot, const CellProbe& cell,
                   std::map<CellProbe, std::int32_t>& local)
    {
        if (cell.structuralZero()) {
            pot.entries.push_back({BnEntryKind::StructuralZero, -1});
            return;
        }
        if (cell.structuralOne()) {
            pot.entries.push_back({BnEntryKind::StructuralOne, -1});
            return;
        }
        auto it = local.find(cell);
        std::int32_t id;
        if (it != local.end()) {
            id = it->second;
        } else {
            id = static_cast<std::int32_t>(bn_.paramValues_.size());
            bn_.paramValues_.push_back(cell.primary);
            local.emplace(cell, id);
        }
        pot.entries.push_back({BnEntryKind::Parameter, id});
    }

    void handleGate(const Gate& gate, std::size_t opIdx)
    {
        // SWAP is a pure wire relabeling: no variable, no potential.
        if (gate.kind() == GateKind::SWAP) {
            std::swap(current_[gate.qubits()[0]], current_[gate.qubits()[1]]);
            return;
        }

        Matrix u = gate.unitary();
        Matrix uProbe = u;
        if (gate.isParameterized()) {
            Gate probe = gate;
            probe.setParam(gate.param() + kProbeDelta);
            uProbe = probe.unitary();
        }

        const auto& qubits = gate.qubits();
        const std::size_t arity = qubits.size();
        std::vector<BnVarId> inVars(arity);
        for (std::size_t j = 0; j < arity; ++j)
            inVars[j] = current_[qubits[j]];

        PermInfo perm = analyzePermutation(u, uProbe);
        if (perm.isPermutation) {
            encodePermutationGate(gate, opIdx, inVars, perm);
        } else if (arity == 1) {
            encodeDense1Q(gate, opIdx, inVars[0], u, uProbe);
        } else if (arity == 2) {
            encodeDense2Q(gate, opIdx, inVars, u, uProbe);
        } else {
            throw std::invalid_argument(
                "circuitToBayesNet: dense 3-qubit gates are not supported");
        }
    }

    /**
     * Permutation-like gate: qubits whose basis state never changes keep
     * their variable; each changed qubit gets a deterministic node; the
     * first changed qubit's node carries the weights. A gate changing no
     * basis states (diagonal) becomes a standalone factor (Section 3.1.1's
     * "permutation of the unitary" encoding, extended).
     */
    void encodePermutationGate(const Gate& gate, std::size_t opIdx,
                               const std::vector<BnVarId>& inVars,
                               const PermInfo& perm)
    {
        const std::size_t arity = gate.qubits().size();
        const std::size_t dim = std::size_t{1} << arity;

        std::vector<std::size_t> changed;
        for (std::size_t j = 0; j < arity; ++j) {
            for (std::size_t in = 0; in < dim; ++in) {
                std::size_t bitIn = (in >> (arity - 1 - j)) & 1;
                std::size_t bitOut = (perm.outOf[in] >> (arity - 1 - j)) & 1;
                if (bitIn != bitOut) {
                    changed.push_back(j);
                    break;
                }
            }
        }

        std::map<CellProbe, std::int32_t> local;
        if (changed.empty()) {
            // Diagonal gate: a factor over the input variables only.
            bool allOne = true;
            for (std::size_t in = 0; in < dim; ++in)
                allOne = allOne && perm.weight[in].structuralOne();
            if (allOne)
                return;  // identity: nothing to encode
            BnPotential pot;
            pot.vars = inVars;
            pot.sourceOp = opIdx;
            for (std::size_t in = 0; in < dim; ++in)
                pushEntry(pot, perm.weight[in], local);
            bn_.potentials_.push_back(std::move(pot));
            return;
        }

        for (std::size_t c = 0; c < changed.size(); ++c) {
            std::size_t j = changed[c];
            std::size_t qubit = gate.qubits()[j];
            ++moment_[qubit];
            BnVarId outVar = newVar(BnVarRole::IntermediateState, qubit, 2, "");

            BnPotential pot;
            pot.vars = inVars;
            pot.vars.push_back(outVar);
            pot.sourceOp = opIdx;
            for (std::size_t in = 0; in < dim; ++in) {
                std::size_t expected = (perm.outOf[in] >> (arity - 1 - j)) & 1;
                for (std::size_t o = 0; o < 2; ++o) {
                    if (o != expected) {
                        pot.entries.push_back(
                            {BnEntryKind::StructuralZero, -1});
                    } else if (c == 0) {
                        pushEntry(pot, perm.weight[in], local);
                    } else {
                        pot.entries.push_back({BnEntryKind::StructuralOne, -1});
                    }
                }
            }
            bn_.potentials_.push_back(std::move(pot));
            current_[qubit] = outVar;
        }
    }

    /** Dense single-qubit gate: CAT = transpose of the unitary (Table 2a). */
    void encodeDense1Q(const Gate& gate, std::size_t opIdx, BnVarId inVar,
                       const Matrix& u, const Matrix& uProbe)
    {
        std::size_t qubit = gate.qubits()[0];
        ++moment_[qubit];
        BnVarId outVar = newVar(BnVarRole::IntermediateState, qubit, 2, "");

        BnPotential pot;
        pot.vars = {inVar, outVar};
        pot.sourceOp = opIdx;
        std::map<CellProbe, std::int32_t> local;
        for (std::size_t in = 0; in < 2; ++in)
            for (std::size_t out = 0; out < 2; ++out)
                pushEntry(pot, {u(out, in), uProbe(out, in)}, local);
        bn_.potentials_.push_back(std::move(pot));
        current_[qubit] = outVar;
    }

    /**
     * Dense two-qubit gate: chain-rule encoding with a single joint
     * potential over (inA, inB, outA, outB) holding U[(oA,oB)][(iA,iB)].
     */
    void encodeDense2Q(const Gate& gate, std::size_t opIdx,
                       const std::vector<BnVarId>& inVars, const Matrix& u,
                       const Matrix& uProbe)
    {
        std::size_t qa = gate.qubits()[0];
        std::size_t qb = gate.qubits()[1];
        ++moment_[qa];
        ++moment_[qb];
        BnVarId outA = newVar(BnVarRole::IntermediateState, qa, 2, "");
        BnVarId outB = newVar(BnVarRole::IntermediateState, qb, 2, "");

        BnPotential pot;
        pot.vars = {inVars[0], inVars[1], outA, outB};
        pot.sourceOp = opIdx;
        std::map<CellProbe, std::int32_t> local;
        for (std::size_t in = 0; in < 4; ++in)
            for (std::size_t out = 0; out < 4; ++out)
                pushEntry(pot, {u(out, in), uProbe(out, in)}, local);
        bn_.potentials_.push_back(std::move(pot));
        current_[qa] = outA;
        current_[qb] = outB;
    }

    /**
     * Noise channel: a NoiseRv variable with one value per Kraus operator
     * (the spurious measurement of Section 3.1.2). If every Kraus operator
     * is diagonal the qubit state passes through and the potential spans
     * (in, rv) — exactly Table 2b; otherwise a fresh state variable is added
     * and entries are E_k[out][in].
     */
    void handleNoise(const NoiseChannel& ch, std::size_t opIdx)
    {
        const auto& kraus = ch.krausOperators();
        const std::size_t numK = kraus.size();
        const auto& qubits = ch.qubits();
        const std::size_t arity = qubits.size();
        const std::size_t dim = std::size_t{1} << arity;

        std::vector<BnVarId> inVars(arity);
        for (std::size_t j = 0; j < arity; ++j)
            inVars[j] = current_[qubits[j]];

        bool allDiagonal = true;
        for (const Matrix& e : kraus)
            for (std::size_t r = 0; r < dim; ++r)
                for (std::size_t c = 0; c < dim; ++c)
                    allDiagonal = allDiagonal &&
                                  (r == c || std::abs(e(r, c)) < kStructEps);

        ++moment_[qubits[0]];
        BnVarId rv = newVar(BnVarRole::NoiseRv, qubits[0], numK, "rv");
        bn_.noiseVars_.push_back(rv);

        std::map<CellProbe, std::int32_t> local;
        if (allDiagonal) {
            // The qubits keep their state variables (Table 2b generalized).
            BnPotential pot;
            pot.vars = inVars;
            pot.vars.push_back(rv);
            pot.sourceOp = opIdx;
            for (std::size_t in = 0; in < dim; ++in)
                for (std::size_t k = 0; k < numK; ++k)
                    pushEntry(pot, {kraus[k](in, in), kraus[k](in, in)}, local);
            bn_.potentials_.push_back(std::move(pot));
            return;
        }

        // Fresh output state variable per operand qubit; entries are
        // E_k[out][in] over the joint basis.
        std::vector<BnVarId> outVars(arity);
        for (std::size_t j = 0; j < arity; ++j) {
            std::size_t q = qubits[j];
            if (j > 0)
                ++moment_[q];
            outVars[j] = newVar(BnVarRole::IntermediateState, q, 2, "");
        }
        BnPotential pot;
        pot.vars = inVars;
        pot.vars.push_back(rv);
        pot.vars.insert(pot.vars.end(), outVars.begin(), outVars.end());
        pot.sourceOp = opIdx;
        for (std::size_t in = 0; in < dim; ++in)
            for (std::size_t k = 0; k < numK; ++k)
                for (std::size_t out = 0; out < dim; ++out)
                    pushEntry(pot, {kraus[k](out, in), kraus[k](out, in)},
                              local);
        bn_.potentials_.push_back(std::move(pot));
        for (std::size_t j = 0; j < arity; ++j)
            current_[qubits[j]] = outVars[j];
    }

    const Circuit& circuit_;
    QuantumBayesNet bn_;
    std::vector<BnVarId> current_;
    std::vector<std::size_t> moment_;
};

QuantumBayesNet
circuitToBayesNet(const Circuit& circuit)
{
    return BayesNetBuilder(circuit).build();
}

} // namespace qkc
