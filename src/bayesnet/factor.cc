#include "bayesnet/factor.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace qkc {

Factor::Factor(Complex scalar) : values_{scalar} {}

Factor::Factor(std::vector<BnVarId> vars, std::vector<std::size_t> cards)
    : vars_(std::move(vars)), cards_(std::move(cards))
{
    assert(vars_.size() == cards_.size());
    std::size_t size = 1;
    for (std::size_t c : cards_)
        size *= c;
    values_.assign(size, Complex{});
}

Factor
Factor::fromPotential(const QuantumBayesNet& bn, const BnPotential& pot)
{
    std::vector<std::size_t> cards;
    cards.reserve(pot.vars.size());
    for (BnVarId v : pot.vars)
        cards.push_back(bn.variable(v).cardinality);
    Factor f(pot.vars, std::move(cards));
    for (std::size_t i = 0; i < pot.entries.size(); ++i) {
        switch (pot.entries[i].kind) {
          case BnEntryKind::StructuralZero:
            f.values_[i] = Complex{};
            break;
          case BnEntryKind::StructuralOne:
            f.values_[i] = 1.0;
            break;
          case BnEntryKind::Parameter:
            f.values_[i] = bn.paramValues()[pot.entries[i].paramId];
            break;
        }
    }
    return f;
}

const Complex&
Factor::value(const std::vector<std::size_t>& assignment) const
{
    assert(assignment.size() == vars_.size());
    std::size_t idx = 0;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        assert(assignment[i] < cards_[i]);
        idx = idx * cards_[i] + assignment[i];
    }
    return values_[idx];
}

std::size_t
Factor::indexOf(BnVarId var) const
{
    auto it = std::find(vars_.begin(), vars_.end(), var);
    if (it == vars_.end())
        throw std::invalid_argument("Factor: variable not in scope");
    return static_cast<std::size_t>(it - vars_.begin());
}

Factor
Factor::multiply(const Factor& other) const
{
    // Union scope, keeping this factor's order and appending new variables.
    std::vector<BnVarId> vars = vars_;
    std::vector<std::size_t> cards = cards_;
    for (std::size_t i = 0; i < other.vars_.size(); ++i) {
        if (std::find(vars.begin(), vars.end(), other.vars_[i]) == vars.end()) {
            vars.push_back(other.vars_[i]);
            cards.push_back(other.cards_[i]);
        }
    }
    Factor out(vars, cards);

    // For each joint assignment, look up both operands.
    const std::size_t n = vars.size();
    std::vector<std::size_t> assign(n, 0);
    std::vector<std::size_t> posA(vars_.size()), posB(other.vars_.size());
    for (std::size_t i = 0; i < vars_.size(); ++i)
        posA[i] = i;  // this factor's vars are a prefix of the union
    for (std::size_t i = 0; i < other.vars_.size(); ++i)
        posB[i] = static_cast<std::size_t>(
            std::find(vars.begin(), vars.end(), other.vars_[i]) - vars.begin());

    for (std::size_t flat = 0; flat < out.values_.size(); ++flat) {
        // Decode mixed-radix (last fastest).
        std::size_t rem = flat;
        for (std::size_t i = n; i-- > 0;) {
            assign[i] = rem % cards[i];
            rem /= cards[i];
        }
        std::size_t ia = 0;
        for (std::size_t i = 0; i < vars_.size(); ++i)
            ia = ia * cards_[i] + assign[posA[i]];
        std::size_t ib = 0;
        for (std::size_t i = 0; i < other.vars_.size(); ++i)
            ib = ib * other.cards_[i] + assign[posB[i]];
        out.values_[flat] = values_[ia] * other.values_[ib];
    }
    return out;
}

Factor
Factor::sumOut(BnVarId var) const
{
    std::size_t pos = indexOf(var);
    std::vector<BnVarId> vars;
    std::vector<std::size_t> cards;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        if (i != pos) {
            vars.push_back(vars_[i]);
            cards.push_back(cards_[i]);
        }
    }
    Factor out(vars, cards);

    std::vector<std::size_t> assign(vars_.size(), 0);
    for (std::size_t flat = 0; flat < values_.size(); ++flat) {
        std::size_t rem = flat;
        for (std::size_t i = vars_.size(); i-- > 0;) {
            assign[i] = rem % cards_[i];
            rem /= cards_[i];
        }
        std::size_t idx = 0;
        for (std::size_t i = 0; i < vars_.size(); ++i) {
            if (i != pos)
                idx = idx * cards_[i] + assign[i];
        }
        out.values_[idx] += values_[flat];
    }
    return out;
}

Factor
Factor::condition(BnVarId var, std::size_t value) const
{
    std::size_t pos = indexOf(var);
    assert(value < cards_[pos]);
    std::vector<BnVarId> vars;
    std::vector<std::size_t> cards;
    for (std::size_t i = 0; i < vars_.size(); ++i) {
        if (i != pos) {
            vars.push_back(vars_[i]);
            cards.push_back(cards_[i]);
        }
    }
    Factor out(vars, cards);

    std::vector<std::size_t> assign(vars_.size(), 0);
    for (std::size_t flat = 0; flat < values_.size(); ++flat) {
        std::size_t rem = flat;
        for (std::size_t i = vars_.size(); i-- > 0;) {
            assign[i] = rem % cards_[i];
            rem /= cards_[i];
        }
        if (assign[pos] != value)
            continue;
        std::size_t idx = 0;
        for (std::size_t i = 0; i < vars_.size(); ++i) {
            if (i != pos)
                idx = idx * cards_[i] + assign[i];
        }
        out.values_[idx] = values_[flat];
    }
    return out;
}

Complex
Factor::scalar() const
{
    if (!vars_.empty())
        throw std::logic_error("Factor::scalar: non-empty scope");
    return values_[0];
}

} // namespace qkc
