#ifndef QKC_BAYESNET_BAYES_NET_H
#define QKC_BAYESNET_BAYES_NET_H

#include <cstdint>
#include <string>
#include <vector>

#include "linalg/types.h"

namespace qkc {

class Circuit;

/** Index of a random variable inside a QuantumBayesNet. */
using BnVarId = std::uint32_t;

/** What a Bayesian-network variable stands for in the quantum circuit. */
enum class BnVarRole {
    InitialState,       ///< qXm0, known |0>; removed by unit resolution
    IntermediateState,  ///< internal qubit state; existentially elided
    FinalState,         ///< a qubit's last state variable (query variable)
    NoiseRv,            ///< spurious-measurement noise random variable (query)
};

/** A random variable: a qubit state at some moment, or a noise event. */
struct BnVariable {
    std::string name;        ///< e.g. "q0m2" or "q0m2rv" (paper Figure 2c)
    BnVarRole role;
    std::size_t qubit;       ///< owning qubit
    std::size_t moment;      ///< per-qubit moment counter
    std::size_t cardinality; ///< 2 for qubit states; #Kraus ops for noise RVs

    bool isQuery() const
    {
        return role == BnVarRole::FinalState || role == BnVarRole::NoiseRv;
    }
};

/** Classification of a conditional-amplitude-table entry. */
enum class BnEntryKind : std::uint8_t {
    StructuralZero,  ///< 0 for every parameter setting: becomes a hard clause
    StructuralOne,   ///< 1 for every parameter setting: pure logic, no weight
    Parameter,       ///< carries a weight variable resolved at simulation time
};

/** One conditional-amplitude-table cell. */
struct BnEntry {
    BnEntryKind kind;
    std::int32_t paramId;  ///< valid when kind == Parameter, else -1
};

/**
 * A potential: the conditional amplitude table of a node (scope = parents +
 * child variable) or a standalone diagonal factor (scope = existing
 * variables only, e.g. the phase pattern of a CZ / ZZ gate, which changes no
 * basis state and therefore introduces no new variable).
 *
 * Entries are indexed in mixed radix over `vars` with the LAST variable
 * fastest-varying.
 */
struct BnPotential {
    std::vector<BnVarId> vars;
    std::vector<BnEntry> entries;
    /** Operation index in the source circuit; SIZE_MAX for initial states. */
    std::size_t sourceOp = SIZE_MAX;

    std::size_t tableSize() const { return entries.size(); }
};

/**
 * Complex-valued Bayesian network representation of a noisy quantum circuit
 * (paper Section 3.1). Variables are qubit states over time plus noise
 * random variables; potentials are conditional amplitude tables. A full
 * assignment of all variables is one Feynman path; the product of potential
 * values along the path is the path amplitude.
 */
class QuantumBayesNet {
  public:
    const std::vector<BnVariable>& variables() const { return vars_; }
    const std::vector<BnPotential>& potentials() const { return potentials_; }

    const BnVariable& variable(BnVarId id) const { return vars_[id]; }

    /** The final state variable of each qubit, indexed by qubit. */
    const std::vector<BnVarId>& finalVars() const { return finalVars_; }

    /** All noise random variables, in circuit order. */
    const std::vector<BnVarId>& noiseVars() const { return noiseVars_; }

    /** Query variables: final qubit states followed by noise RVs. */
    std::vector<BnVarId> queryVars() const;

    /** Current numeric value of each weight parameter, indexed by paramId. */
    const std::vector<Complex>& paramValues() const { return paramValues_; }

    std::size_t numParams() const { return paramValues_.size(); }

    /**
     * Recomputes parameter values from `circuit`, which must be structurally
     * identical to the circuit the network was built from (same ops, same
     * qubits) with possibly different gate angles. This is the variational
     * fast path: the network / CNF / AC structure is untouched; only leaf
     * weights change (paper Section 3.2.1, rule 3).
     */
    void refreshParams(const Circuit& circuit);

    /** Human-readable dump of variables and table sizes. */
    std::string summary() const;

  private:
    friend QuantumBayesNet circuitToBayesNet(const Circuit& circuit);
    friend class BayesNetBuilder;

    std::vector<BnVariable> vars_;
    std::vector<BnPotential> potentials_;
    std::vector<BnVarId> finalVars_;
    std::vector<BnVarId> noiseVars_;
    std::vector<Complex> paramValues_;
};

/**
 * Compiles a noisy quantum circuit to its complex-valued Bayesian network
 * (paper Section 3.1; the Figure 2 transformation).
 *
 * Encoding rules:
 *  - initial qubit states become InitialState variables with a [1, 0] table;
 *  - a single-qubit gate adds one node whose CAT is the transpose of the
 *    gate unitary (Table 2a);
 *  - permutation-like multi-qubit gates add deterministic nodes for the
 *    qubits whose basis state changes (Table 2c); pure phase (diagonal)
 *    gates add a standalone factor and no variable; SWAP relabels wires;
 *  - general (non-permutation) unitaries use a chain-rule encoding: a
 *    weight-free node for the first output plus a node holding the joint
 *    amplitudes;
 *  - a noise channel adds a NoiseRv variable with one value per Kraus
 *    operator; if every Kraus operator is diagonal the qubit keeps its
 *    state variable (Table 2b), otherwise a fresh output state variable is
 *    added with entries E_k[out][in].
 */
QuantumBayesNet circuitToBayesNet(const Circuit& circuit);

} // namespace qkc

#endif // QKC_BAYESNET_BAYES_NET_H
