#include "bayesnet/bayes_net.h"

#include <sstream>
#include <stdexcept>

#include "circuit/circuit.h"

namespace qkc {

std::vector<BnVarId>
QuantumBayesNet::queryVars() const
{
    std::vector<BnVarId> q = finalVars_;
    q.insert(q.end(), noiseVars_.begin(), noiseVars_.end());
    return q;
}

void
QuantumBayesNet::refreshParams(const Circuit& circuit)
{
    // Rebuild the network for the new parameters and verify the structure is
    // unchanged; only the weight values are carried over. The rebuild is
    // linear in circuit size and negligible next to AC evaluation, so this
    // trades a little compute for having exactly one table-construction
    // code path.
    QuantumBayesNet fresh = circuitToBayesNet(circuit);
    if (fresh.vars_.size() != vars_.size() ||
        fresh.potentials_.size() != potentials_.size() ||
        fresh.paramValues_.size() != paramValues_.size()) {
        throw std::invalid_argument(
            "refreshParams: circuit structure changed; rebuild the network");
    }
    for (std::size_t i = 0; i < potentials_.size(); ++i) {
        const auto& a = potentials_[i];
        const auto& b = fresh.potentials_[i];
        if (a.vars != b.vars || a.entries.size() != b.entries.size())
            throw std::invalid_argument(
                "refreshParams: potential structure changed");
        for (std::size_t e = 0; e < a.entries.size(); ++e) {
            if (a.entries[e].kind != b.entries[e].kind ||
                a.entries[e].paramId != b.entries[e].paramId)
                throw std::invalid_argument(
                    "refreshParams: entry structure changed");
        }
    }
    paramValues_ = std::move(fresh.paramValues_);
}

std::string
QuantumBayesNet::summary() const
{
    std::ostringstream os;
    std::size_t numQuery = 0;
    for (const auto& v : vars_)
        numQuery += v.isQuery();
    os << "QuantumBayesNet(" << vars_.size() << " variables (" << numQuery
       << " query), " << potentials_.size() << " potentials, "
       << paramValues_.size() << " parameters)\n";
    for (BnVarId id = 0; id < vars_.size(); ++id) {
        const auto& v = vars_[id];
        os << "  " << v.name << " card=" << v.cardinality;
        switch (v.role) {
          case BnVarRole::InitialState: os << " [initial]"; break;
          case BnVarRole::IntermediateState: os << " [internal]"; break;
          case BnVarRole::FinalState: os << " [final]"; break;
          case BnVarRole::NoiseRv: os << " [noise]"; break;
        }
        os << "\n";
    }
    return os.str();
}

} // namespace qkc
