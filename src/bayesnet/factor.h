#ifndef QKC_BAYESNET_FACTOR_H
#define QKC_BAYESNET_FACTOR_H

#include <vector>

#include "bayesnet/bayes_net.h"
#include "linalg/types.h"

namespace qkc {

/**
 * A dense complex-valued factor over a set of Bayesian-network variables,
 * used by the variable-elimination reference engine (the exact-inference
 * algorithm the paper's authors used to first validate complex-valued BNs,
 * Section 3.2).
 *
 * Values are stored in mixed radix over `vars` with the last variable
 * fastest-varying — the same convention as BnPotential.
 */
class Factor {
  public:
    /** A scalar factor (empty scope). */
    explicit Factor(Complex scalar = 1.0);

    /** A factor over `vars` with all values zero. */
    Factor(std::vector<BnVarId> vars, std::vector<std::size_t> cards);

    /** Materializes a potential's table using the network's param values. */
    static Factor fromPotential(const QuantumBayesNet& bn,
                                const BnPotential& pot);

    const std::vector<BnVarId>& vars() const { return vars_; }
    const std::vector<std::size_t>& cards() const { return cards_; }
    std::size_t tableSize() const { return values_.size(); }

    Complex& at(std::size_t flatIndex) { return values_[flatIndex]; }
    const Complex& at(std::size_t flatIndex) const { return values_[flatIndex]; }

    /** Value for a full assignment of this factor's scope. */
    const Complex& value(const std::vector<std::size_t>& assignment) const;

    /** Factor product: scope = union of scopes, entries multiply. */
    Factor multiply(const Factor& other) const;

    /** Sums a variable out of the scope. */
    Factor sumOut(BnVarId var) const;

    /** Restricts a variable to a fixed value (drops it from the scope). */
    Factor condition(BnVarId var, std::size_t value) const;

    /** The scalar of an empty-scope factor. */
    Complex scalar() const;

  private:
    std::size_t indexOf(BnVarId var) const;

    std::vector<BnVarId> vars_;
    std::vector<std::size_t> cards_;
    std::vector<Complex> values_;
};

} // namespace qkc

#endif // QKC_BAYESNET_FACTOR_H
