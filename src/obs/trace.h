#ifndef QKC_OBS_TRACE_H
#define QKC_OBS_TRACE_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/metrics.h"

namespace qkc::obs {

// ---------------------------------------------------------------------------
// Span events
// ---------------------------------------------------------------------------

/**
 * One completed scoped span. Names are string literals interned by pointer;
 * depth is the span's nesting level on its own thread (1 = top level);
 * times are nanoseconds since the process trace epoch.
 */
struct SpanEvent {
    const char* name = nullptr;
    std::uint32_t tid = 0;   ///< small dense id, assigned per thread
    std::uint32_t depth = 0;
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
};

// ---------------------------------------------------------------------------
// Task profiles
// ---------------------------------------------------------------------------

/** Aggregated time of one top-level phase inside a profiled scope. */
struct ProfilePhase {
    const char* name = nullptr;
    double seconds = 0.0;
    std::uint64_t count = 0; ///< spans aggregated into this phase
};

/**
 * The per-task profile a ProfileScope collects: the task's top-level span
 * phases (non-overlapping, so their sum approximates the task wall time)
 * plus the process counters that moved while the task ran. Cheap to carry
 * in every ResultMeta — names are interned literals, and an unprofiled run
 * leaves both vectors empty.
 */
struct TaskProfile {
    std::vector<ProfilePhase> phases;   ///< first-seen order (deterministic)
    std::vector<CounterDelta> counters; ///< counters that grew during the task
    double totalSeconds = 0.0;          ///< the profiled scope's wall time

    bool empty() const { return phases.empty() && totalSeconds == 0.0; }

    /** Sum of the phase times — compare against totalSeconds for coverage. */
    double accountedSeconds() const
    {
        double s = 0.0;
        for (const ProfilePhase& p : phases)
            s += p.seconds;
        return s;
    }
};

/** Renders one task profile as the human-readable --profile block. */
void writeProfileReport(std::ostream& out, const TaskProfile& profile);

// ---------------------------------------------------------------------------
// Scoped spans
// ---------------------------------------------------------------------------

/**
 * RAII scoped span. When no trace collection and no profile scope is active
 * on the calling thread the constructor is a single thread-local flag test;
 * otherwise it stamps the monotonic clock and, at destruction, delivers the
 * completed event to the innermost enclosing ProfileScope (phase
 * accounting) and/or the TraceRecorder buffer (Chrome export).
 *
 * `name` must be a string literal: "subsystem.phase", e.g. "sv.applyPlan".
 */
class Span {
  public:
    explicit Span(const char* name);
    ~Span() { finish(); }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /** Ends the span early (idempotent). */
    void finish();

  private:
    const char* name_;
    std::uint64_t startNs_ = 0;
    bool live_ = false;
};

#define QKC_SPAN_CONCAT2(a, b) a##b
#define QKC_SPAN_CONCAT(a, b) QKC_SPAN_CONCAT2(a, b)
/** Opens a scoped span for the rest of the enclosing block. */
#define QKC_SPAN(name) \
    ::qkc::obs::Span QKC_SPAN_CONCAT(qkcObsSpan_, __LINE__)(name)

/**
 * A span that is also a stopwatch: the bench harnesses' replacement for the
 * ad-hoc util/timer.h timers, so every measured interval shows up in
 * --trace output too. seconds() reads the elapsed time without ending the
 * span; finish() ends it (and is implied by destruction).
 */
class TimedSpan {
  public:
    explicit TimedSpan(const char* name);
    double seconds() const;

    void finish() { span_.finish(); }

  private:
    std::uint64_t startNs_;
    Span span_;
};

// ---------------------------------------------------------------------------
// Profile scopes
// ---------------------------------------------------------------------------

/**
 * Collects a TaskProfile for the dynamic extent of the scope on the
 * constructing thread: every span that closes at the scope's own nesting
 * level becomes (part of) a phase, aggregated by name in first-seen order.
 * The scope emits a span of its own (`name`), so traces show the task
 * envelope around its phases. Scopes nest (each thread keeps a stack); a
 * span is always credited to the innermost scope it is top-level in.
 *
 * take() must be called on the constructing thread, at most once, and ends
 * the scope's collection; the destructor cleans up if it never was.
 */
class ProfileScope {
  public:
    explicit ProfileScope(const char* name, bool withCounters = true);
    ~ProfileScope();

    ProfileScope(const ProfileScope&) = delete;
    ProfileScope& operator=(const ProfileScope&) = delete;

    /** Ends collection and returns the profile. */
    TaskProfile take();

    struct Collector; ///< opaque; public only for the implementation's tls

  private:
    Collector* collector_ = nullptr;
    MetricsSnapshot baseCounters_;
    const char* envelopeName_ = nullptr;
    std::uint64_t startNs_ = 0;
    bool withCounters_ = false;
};

// ---------------------------------------------------------------------------
// Trace recorder
// ---------------------------------------------------------------------------

/**
 * The process-wide trace-event store. While collecting, every finished span
 * on every thread is appended to a per-thread buffer; stop()/drain() merge
 * the buffers into start-time order. Export formats: Chrome trace-event
 * JSON (load in chrome://tracing or https://ui.perfetto.dev) and the flat
 * per-name aggregation writeFlatReport prints.
 *
 * Collection is an explicit profiling mode (the --trace=FILE flag, a test
 * fixture): buffers grow unboundedly while on, so callers bracket the
 * region of interest.
 */
class TraceRecorder {
  public:
    static TraceRecorder& instance();

    void start(); ///< clears previous events and begins collecting
    void stop();
    bool collecting() const;

    /** Merged events in (startNs, tid) order; does not stop collection. */
    std::vector<SpanEvent> drain() const;

    /** Chrome trace-event JSON ("X" complete events, µs timestamps). */
    void writeChromeJson(std::ostream& out) const;

    /** Flat text profile: per-name total/count/mean, sorted by total. */
    void writeFlatReport(std::ostream& out) const;

  private:
    TraceRecorder() = default;
};

/** Nanoseconds on the monotonic clock since the process trace epoch. */
std::uint64_t nowNs();

} // namespace qkc::obs

#endif // QKC_OBS_TRACE_H
