#ifndef QKC_OBS_METRICS_H
#define QKC_OBS_METRICS_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace qkc::obs {

/**
 * Process-wide observability master switch. Defaults to on (the per-event
 * cost of a disabled *session* is one branch; the global switch exists so a
 * bench can rule even that out). Initialized from the QKC_OBS environment
 * variable when set ("0" disables); setEnabled is for single-threaded
 * configuration code (CLI parsing, test setup) only.
 */
bool enabled();
void setEnabled(bool on);

// ---------------------------------------------------------------------------
// Snapshot types
// ---------------------------------------------------------------------------

/** One counter's merged value at snapshot time. */
struct CounterValue {
    const char* name = nullptr;
    std::uint64_t value = 0;
};

/**
 * One histogram's merged state: power-of-two buckets (bucket b counts
 * samples v with 2^b <= v+1 < 2^(b+1), i.e. bucket 0 holds v == 0),
 * plus the exact count and sum for mean computation.
 */
struct HistogramValue {
    const char* name = nullptr;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> buckets;

    double mean() const
    {
        return count ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
    }
};

/** A merged, name-sorted view of every registered metric. */
struct MetricsSnapshot {
    std::vector<CounterValue> counters;
    std::vector<HistogramValue> histograms;

    /** Value of `name` (0 when absent — metrics register lazily). */
    std::uint64_t counter(const std::string& name) const;
    const HistogramValue* histogram(const std::string& name) const;
};

/** One counter that moved between two snapshots. */
struct CounterDelta {
    const char* name = nullptr;
    std::uint64_t delta = 0;
};

/** Counters in `now` that grew relative to `base`, name order. */
std::vector<CounterDelta> counterDeltas(const MetricsSnapshot& base,
                                        const MetricsSnapshot& now);

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/**
 * The process-wide metric registry. Metric *identity* is a small dense id
 * handed out once per name; metric *state* lives in lock-free thread-local
 * shards (plain arrays of relaxed atomics — writers touch only their own
 * cache lines, so instrumenting a hot loop never contends). snapshot()
 * merges retired shards and every live shard by commutative integer
 * addition, so the merged totals are deterministic for any thread count
 * and interleaving, and reading them is TSan-clean.
 *
 * Names must be string literals (or otherwise outlive the process): the
 * registry stores the pointer, which is what keeps Counter::add at a
 * single branch plus one relaxed fetch_add.
 */
class MetricsRegistry {
  public:
    /** Shard capacity; registrations past this throw std::length_error. */
    static constexpr std::size_t kMaxCounters = 256;
    static constexpr std::size_t kMaxHistograms = 64;
    static constexpr std::size_t kHistogramBuckets = 40;

    static MetricsRegistry& instance();

    /** Registers (or looks up) a counter id for `name`. Thread-safe. */
    std::size_t counterId(const char* name);
    /** Registers (or looks up) a histogram id for `name`. Thread-safe. */
    std::size_t histogramId(const char* name);

    /** Adds to a counter on the calling thread's shard (relaxed). */
    void add(std::size_t counterId, std::uint64_t n);
    /** Records one histogram sample on the calling thread's shard. */
    void record(std::size_t histogramId, std::uint64_t value);

    /** Merges every shard into a name-sorted snapshot. */
    MetricsSnapshot snapshot() const;

    /**
     * Zeroes every shard and the retired totals (registrations are kept —
     * ids are process-lifetime). Test setup only: concurrent writers would
     * race the zeroing benignly but make totals unpredictable.
     */
    void reset();

  private:
    MetricsRegistry() = default;
    struct Impl;
    Impl& impl() const;
};

// ---------------------------------------------------------------------------
// Instrument handles
// ---------------------------------------------------------------------------

/**
 * A named monotone counter. Construct once (function-local static or
 * namespace scope) with a string literal; add() costs one branch when
 * observability is disabled and one relaxed thread-local fetch_add when
 * enabled.
 */
class Counter {
  public:
    explicit Counter(const char* name)
        : id_(MetricsRegistry::instance().counterId(name))
    {
    }

    void add(std::uint64_t n = 1)
    {
        if (!enabled())
            return;
        MetricsRegistry::instance().add(id_, n);
    }

  private:
    std::size_t id_;
};

/** A named log2-bucketed histogram of unsigned samples (e.g. nanoseconds). */
class Histogram {
  public:
    explicit Histogram(const char* name)
        : id_(MetricsRegistry::instance().histogramId(name))
    {
    }

    void record(std::uint64_t value)
    {
        if (!enabled())
            return;
        MetricsRegistry::instance().record(id_, value);
    }

  private:
    std::size_t id_;
};

/**
 * Renders a snapshot as the human-readable metrics block of the --profile
 * report: counters first, then histograms with count/mean columns. Only
 * metrics with non-zero activity are printed.
 */
void writeMetricsReport(std::ostream& out, const MetricsSnapshot& snapshot);

} // namespace qkc::obs

#endif // QKC_OBS_METRICS_H
