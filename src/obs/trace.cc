#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

namespace qkc::obs {

std::uint64_t
nowNs()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

// ---------------------------------------------------------------------------
// Thread-local span state
// ---------------------------------------------------------------------------

struct ProfileScope::Collector {
    std::uint32_t baseDepth = 0;
    std::vector<ProfilePhase> phases;
};

namespace {

std::atomic<bool> g_collecting{false};

/** The per-thread event buffer the recorder drains. */
struct TraceBuffer {
    std::mutex mutex; ///< taken by the owner per append and by drain()
    std::vector<SpanEvent> events;
};

struct TraceBufferList {
    std::mutex mutex;
    std::vector<std::shared_ptr<TraceBuffer>> buffers;

    static TraceBufferList& instance()
    {
        // Intentionally leaked: exiting threads (pool workers at static
        // destruction included) release their buffer shared_ptrs through
        // this list, so it must outlive every thread.
        static TraceBufferList* list = new TraceBufferList;
        return *list;
    }
};

struct ThreadTraceState {
    std::uint32_t tid;
    std::uint32_t depth = 0;
    std::vector<ProfileScope::Collector*> collectors;
    std::shared_ptr<TraceBuffer> buffer;

    ThreadTraceState()
    {
        static std::atomic<std::uint32_t> nextTid{0};
        tid = nextTid.fetch_add(1, std::memory_order_relaxed);
        buffer = std::make_shared<TraceBuffer>();
        TraceBufferList& list = TraceBufferList::instance();
        std::lock_guard<std::mutex> lock(list.mutex);
        list.buffers.push_back(buffer);
    }
    // The shared_ptr keeps the buffer alive in the global list after the
    // thread exits, so a drain still sees spans from retired pool workers.
};

ThreadTraceState&
tls()
{
    thread_local ThreadTraceState state;
    return state;
}

/** True when a finishing span has anywhere to deliver its event. */
bool
trackingActive(const ThreadTraceState& t)
{
    return enabled() && (g_collecting.load(std::memory_order_relaxed) ||
                         !t.collectors.empty());
}

void
creditPhase(std::vector<ProfilePhase>& phases, const char* name,
            std::uint64_t durNs)
{
    for (ProfilePhase& p : phases) {
        if (p.name == name || std::string(p.name) == name) {
            p.seconds += static_cast<double>(durNs) * 1e-9;
            ++p.count;
            return;
        }
    }
    phases.push_back(
        {name, static_cast<double>(durNs) * 1e-9, std::uint64_t{1}});
}

void
deliverSpan(ThreadTraceState& t, const char* name, std::uint32_t depth,
            std::uint64_t startNs, std::uint64_t durNs)
{
    // Credit the innermost profile scope this span is top-level in.
    for (auto it = t.collectors.rbegin(); it != t.collectors.rend(); ++it) {
        if ((*it)->baseDepth + 1 == depth) {
            creditPhase((*it)->phases, name, durNs);
            break;
        }
        if ((*it)->baseDepth < depth)
            break; // deeper than top level for every remaining scope
    }
    if (g_collecting.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(t.buffer->mutex);
        t.buffer->events.push_back({name, t.tid, depth, startNs, durNs});
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

Span::Span(const char* name) : name_(name)
{
    ThreadTraceState& t = tls();
    if (!trackingActive(t))
        return;
    live_ = true;
    ++t.depth;
    startNs_ = nowNs();
}

void
Span::finish()
{
    if (!live_)
        return;
    live_ = false;
    const std::uint64_t end = nowNs();
    ThreadTraceState& t = tls();
    const std::uint32_t depth = t.depth;
    --t.depth;
    deliverSpan(t, name_, depth, startNs_, end - startNs_);
}

TimedSpan::TimedSpan(const char* name) : startNs_(nowNs()), span_(name) {}

double
TimedSpan::seconds() const
{
    return static_cast<double>(nowNs() - startNs_) * 1e-9;
}

// ---------------------------------------------------------------------------
// ProfileScope
// ---------------------------------------------------------------------------

ProfileScope::ProfileScope(const char* name, bool withCounters)
    : withCounters_(withCounters)
{
    if (!enabled())
        return;
    ThreadTraceState& t = tls();
    // The scope's envelope span: opened by hand (not RAII) so the collector
    // can be pushed *after* the depth bump — phases are spans at
    // baseDepth + 1, i.e. direct children of the envelope.
    collector_ = new Collector;
    ++t.depth;
    collector_->baseDepth = t.depth;
    envelopeName_ = name;
    startNs_ = nowNs();
    t.collectors.push_back(collector_);
    if (withCounters_)
        baseCounters_ = MetricsRegistry::instance().snapshot();
}

TaskProfile
ProfileScope::take()
{
    TaskProfile profile;
    if (!collector_)
        return profile;
    const std::uint64_t end = nowNs();
    ThreadTraceState& t = tls();
    t.collectors.pop_back();
    profile.phases = std::move(collector_->phases);
    profile.totalSeconds = static_cast<double>(end - startNs_) * 1e-9;
    const std::uint32_t depth = t.depth;
    --t.depth;
    delete collector_;
    collector_ = nullptr;
    // Close the envelope span now that the collector is gone (the envelope
    // must not be credited to itself; an outer scope still sees it).
    deliverSpan(t, envelopeName_, depth, startNs_, end - startNs_);
    if (withCounters_) {
        profile.counters = counterDeltas(
            baseCounters_, MetricsRegistry::instance().snapshot());
    }
    return profile;
}

ProfileScope::~ProfileScope()
{
    if (collector_)
        take();
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TraceRecorder&
TraceRecorder::instance()
{
    static TraceRecorder recorder;
    return recorder;
}

void
TraceRecorder::start()
{
    TraceBufferList& list = TraceBufferList::instance();
    {
        std::lock_guard<std::mutex> lock(list.mutex);
        for (auto& buffer : list.buffers) {
            std::lock_guard<std::mutex> bufferLock(buffer->mutex);
            buffer->events.clear();
        }
    }
    g_collecting.store(true, std::memory_order_relaxed);
}

void
TraceRecorder::stop()
{
    g_collecting.store(false, std::memory_order_relaxed);
}

bool
TraceRecorder::collecting() const
{
    return g_collecting.load(std::memory_order_relaxed);
}

std::vector<SpanEvent>
TraceRecorder::drain() const
{
    TraceBufferList& list = TraceBufferList::instance();
    std::vector<SpanEvent> events;
    {
        std::lock_guard<std::mutex> lock(list.mutex);
        for (auto& buffer : list.buffers) {
            std::lock_guard<std::mutex> bufferLock(buffer->mutex);
            events.insert(events.end(), buffer->events.begin(),
                          buffer->events.end());
        }
    }
    std::sort(events.begin(), events.end(),
              [](const SpanEvent& a, const SpanEvent& b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.durNs > b.durNs; // outer spans before inner
              });
    return events;
}

namespace {

void
writeJsonString(std::ostream& out, const char* s)
{
    out << '"';
    for (; *s; ++s) {
        if (*s == '"' || *s == '\\')
            out << '\\';
        out << *s;
    }
    out << '"';
}

} // namespace

void
TraceRecorder::writeChromeJson(std::ostream& out) const
{
    const std::vector<SpanEvent> events = drain();
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    std::vector<std::uint32_t> tids;
    for (const SpanEvent& e : events) {
        if (std::find(tids.begin(), tids.end(), e.tid) == tids.end()) {
            tids.push_back(e.tid);
            if (!first)
                out << ",";
            first = false;
            out << "\n{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                   "\"tid\": "
                << e.tid << ", \"args\": {\"name\": \"qkc thread "
                << e.tid << "\"}}";
        }
        if (!first)
            out << ",";
        first = false;
        out << "\n{\"name\": ";
        writeJsonString(out, e.name);
        out << ", \"cat\": \"qkc\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
            << e.tid << ", \"ts\": " << static_cast<double>(e.startNs) / 1e3
            << ", \"dur\": " << static_cast<double>(e.durNs) / 1e3 << "}";
    }
    out << "\n]}\n";
}

void
TraceRecorder::writeFlatReport(std::ostream& out) const
{
    struct Line {
        const char* name;
        double seconds = 0.0;
        std::uint64_t count = 0;
    };
    std::vector<Line> lines;
    for (const SpanEvent& e : drain()) {
        auto it = std::find_if(lines.begin(), lines.end(), [&](const Line& l) {
            return std::string(l.name) == e.name;
        });
        if (it == lines.end()) {
            lines.push_back({e.name, 0.0, 0});
            it = lines.end() - 1;
        }
        it->seconds += static_cast<double>(e.durNs) * 1e-9;
        ++it->count;
    }
    std::sort(lines.begin(), lines.end(),
              [](const Line& a, const Line& b) { return a.seconds > b.seconds; });
    out << "span                                 total_s      count     mean_ms\n";
    for (const Line& l : lines) {
        out << l.name;
        for (std::size_t pad = std::string(l.name).size(); pad < 36; ++pad)
            out << ' ';
        char buf[64];
        std::snprintf(buf, sizeof buf, "%8.4f %10llu %11.4f\n", l.seconds,
                      static_cast<unsigned long long>(l.count),
                      l.count ? l.seconds * 1e3 / static_cast<double>(l.count)
                              : 0.0);
        out << buf;
    }
}

// ---------------------------------------------------------------------------
// Profile report
// ---------------------------------------------------------------------------

void
writeProfileReport(std::ostream& out, const TaskProfile& profile)
{
    char buf[128];
    std::snprintf(buf, sizeof buf, "task wall time: %.6fs (phases cover %.1f%%)\n",
                  profile.totalSeconds,
                  profile.totalSeconds > 0.0
                      ? 100.0 * profile.accountedSeconds() / profile.totalSeconds
                      : 0.0);
    out << buf;
    out << "phase                                seconds      share      count\n";
    for (const ProfilePhase& p : profile.phases) {
        out << "  " << p.name;
        for (std::size_t pad = std::string(p.name).size(); pad < 34; ++pad)
            out << ' ';
        std::snprintf(buf, sizeof buf, "%9.6f %9.1f%% %10llu\n", p.seconds,
                      profile.totalSeconds > 0.0
                          ? 100.0 * p.seconds / profile.totalSeconds
                          : 0.0,
                      static_cast<unsigned long long>(p.count));
        out << buf;
    }
    if (!profile.counters.empty()) {
        out << "counters (this task):\n";
        for (const CounterDelta& c : profile.counters) {
            out << "  " << c.name;
            for (std::size_t pad = std::string(c.name).size(); pad < 36; ++pad)
                out << ' ';
            out << c.delta << "\n";
        }
    }
}

} // namespace qkc::obs
