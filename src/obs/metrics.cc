#include "obs/metrics.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>

namespace qkc::obs {

namespace {

std::atomic<bool>&
enabledFlag()
{
    static std::atomic<bool> flag = [] {
        if (const char* env = std::getenv("QKC_OBS"))
            return std::strtol(env, nullptr, 10) != 0;
        return true;
    }();
    return flag;
}

/** Index of the highest set bit of v+1: bucket 0 holds v == 0. */
std::size_t
bucketOf(std::uint64_t value)
{
    std::size_t b = 0;
    for (std::uint64_t v = value + 1; v > 1; v >>= 1)
        ++b;
    return std::min<std::size_t>(b, MetricsRegistry::kHistogramBuckets - 1);
}

} // namespace

bool
enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry internals
// ---------------------------------------------------------------------------

namespace {

struct HistogramCells {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> buckets[MetricsRegistry::kHistogramBuckets]{};
};

/**
 * One thread's metric storage: fixed-capacity arrays of relaxed atomics.
 * The owning thread is the only writer; snapshot() reads concurrently with
 * relaxed loads (counters are monotone, so a snapshot is some valid
 * interleaving point — exact at quiescence, which is when profiles and
 * reports read it). Fixed capacity keeps cell addresses stable for the
 * shard's whole lifetime, which is what makes the reads safe without
 * locking the writer.
 */
struct Shard {
    std::atomic<std::uint64_t> counters[MetricsRegistry::kMaxCounters]{};
    HistogramCells histograms[MetricsRegistry::kMaxHistograms];

    void zero()
    {
        for (auto& c : counters)
            c.store(0, std::memory_order_relaxed);
        for (auto& h : histograms) {
            h.count.store(0, std::memory_order_relaxed);
            h.sum.store(0, std::memory_order_relaxed);
            for (auto& b : h.buckets)
                b.store(0, std::memory_order_relaxed);
        }
    }
};

} // namespace

struct MetricsRegistry::Impl {
    mutable std::mutex mutex; ///< guards names + the shard list, never cells

    std::vector<const char*> counterNames;   ///< index == id
    std::vector<const char*> histogramNames;

    std::vector<Shard*> liveShards;
    /** Totals folded in from exited threads (same layout as a shard). */
    std::unique_ptr<Shard> retired = std::make_unique<Shard>();

    Shard* shardForThisThread()
    {
        struct Registration {
            Impl* impl = nullptr;
            std::unique_ptr<Shard> shard;
            ~Registration()
            {
                if (!impl)
                    return;
                std::lock_guard<std::mutex> lock(impl->mutex);
                // Fold the dying thread's cells into the retired totals so
                // process totals survive thread exit (pool teardown).
                for (std::size_t i = 0; i < kMaxCounters; ++i)
                    impl->retired->counters[i].fetch_add(
                        shard->counters[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
                for (std::size_t i = 0; i < kMaxHistograms; ++i) {
                    auto& from = shard->histograms[i];
                    auto& to = impl->retired->histograms[i];
                    to.count.fetch_add(
                        from.count.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
                    to.sum.fetch_add(
                        from.sum.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
                    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
                        to.buckets[b].fetch_add(
                            from.buckets[b].load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
                }
                auto& live = impl->liveShards;
                live.erase(std::find(live.begin(), live.end(), shard.get()));
            }
        };
        thread_local Registration reg;
        if (!reg.impl) {
            reg.impl = this;
            reg.shard = std::make_unique<Shard>();
            std::lock_guard<std::mutex> lock(mutex);
            liveShards.push_back(reg.shard.get());
        }
        return reg.shard.get();
    }
};

MetricsRegistry::Impl&
MetricsRegistry::impl() const
{
    // Intentionally leaked: shards fold into `retired` from thread_local
    // destructors, and pool workers (sharedPool() is itself a static) can
    // exit after any destruction order would have torn this down.
    static Impl* state = new Impl;
    return *state;
}

MetricsRegistry&
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

std::size_t
MetricsRegistry::counterId(const char* name)
{
    Impl& s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (std::size_t i = 0; i < s.counterNames.size(); ++i)
        if (std::string(s.counterNames[i]) == name)
            return i;
    if (s.counterNames.size() >= kMaxCounters)
        throw std::length_error("MetricsRegistry: counter capacity exceeded");
    s.counterNames.push_back(name);
    return s.counterNames.size() - 1;
}

std::size_t
MetricsRegistry::histogramId(const char* name)
{
    Impl& s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);
    for (std::size_t i = 0; i < s.histogramNames.size(); ++i)
        if (std::string(s.histogramNames[i]) == name)
            return i;
    if (s.histogramNames.size() >= kMaxHistograms)
        throw std::length_error(
            "MetricsRegistry: histogram capacity exceeded");
    s.histogramNames.push_back(name);
    return s.histogramNames.size() - 1;
}

void
MetricsRegistry::add(std::size_t counterId, std::uint64_t n)
{
    impl().shardForThisThread()->counters[counterId].fetch_add(
        n, std::memory_order_relaxed);
}

void
MetricsRegistry::record(std::size_t histogramId, std::uint64_t value)
{
    HistogramCells& h =
        impl().shardForThisThread()->histograms[histogramId];
    h.count.fetch_add(1, std::memory_order_relaxed);
    h.sum.fetch_add(value, std::memory_order_relaxed);
    h.buckets[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    Impl& s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);

    MetricsSnapshot out;
    out.counters.resize(s.counterNames.size());
    for (std::size_t i = 0; i < s.counterNames.size(); ++i) {
        out.counters[i].name = s.counterNames[i];
        out.counters[i].value =
            s.retired->counters[i].load(std::memory_order_relaxed);
    }
    out.histograms.resize(s.histogramNames.size());
    for (std::size_t i = 0; i < s.histogramNames.size(); ++i) {
        HistogramValue& hv = out.histograms[i];
        hv.name = s.histogramNames[i];
        hv.buckets.assign(kHistogramBuckets, 0);
        const HistogramCells& from = s.retired->histograms[i];
        hv.count = from.count.load(std::memory_order_relaxed);
        hv.sum = from.sum.load(std::memory_order_relaxed);
        for (std::size_t b = 0; b < kHistogramBuckets; ++b)
            hv.buckets[b] = from.buckets[b].load(std::memory_order_relaxed);
    }
    for (const Shard* shard : s.liveShards) {
        for (std::size_t i = 0; i < out.counters.size(); ++i)
            out.counters[i].value +=
                shard->counters[i].load(std::memory_order_relaxed);
        for (std::size_t i = 0; i < out.histograms.size(); ++i) {
            HistogramValue& hv = out.histograms[i];
            const HistogramCells& from = shard->histograms[i];
            hv.count += from.count.load(std::memory_order_relaxed);
            hv.sum += from.sum.load(std::memory_order_relaxed);
            for (std::size_t b = 0; b < kHistogramBuckets; ++b)
                hv.buckets[b] +=
                    from.buckets[b].load(std::memory_order_relaxed);
        }
    }

    auto byName = [](const auto& a, const auto& b) {
        return std::string(a.name) < b.name;
    };
    std::sort(out.counters.begin(), out.counters.end(), byName);
    std::sort(out.histograms.begin(), out.histograms.end(), byName);
    return out;
}

void
MetricsRegistry::reset()
{
    Impl& s = impl();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.retired->zero();
    for (Shard* shard : s.liveShards)
        shard->zero();
}

// ---------------------------------------------------------------------------
// Snapshot helpers
// ---------------------------------------------------------------------------

std::uint64_t
MetricsSnapshot::counter(const std::string& name) const
{
    for (const CounterValue& c : counters)
        if (name == c.name)
            return c.value;
    return 0;
}

const HistogramValue*
MetricsSnapshot::histogram(const std::string& name) const
{
    for (const HistogramValue& h : histograms)
        if (name == h.name)
            return &h;
    return nullptr;
}

std::vector<CounterDelta>
counterDeltas(const MetricsSnapshot& base, const MetricsSnapshot& now)
{
    std::vector<CounterDelta> out;
    for (const CounterValue& c : now.counters) {
        const std::uint64_t before = base.counter(c.name);
        if (c.value > before)
            out.push_back({c.name, c.value - before});
    }
    return out;
}

void
writeMetricsReport(std::ostream& out, const MetricsSnapshot& snapshot)
{
    out << "counters:\n";
    bool any = false;
    for (const CounterValue& c : snapshot.counters) {
        if (c.value == 0)
            continue;
        any = true;
        out << "  " << c.name;
        for (std::size_t pad = std::string(c.name).size(); pad < 36; ++pad)
            out << ' ';
        out << c.value << "\n";
    }
    if (!any)
        out << "  (none)\n";
    any = false;
    for (const HistogramValue& h : snapshot.histograms) {
        if (h.count == 0)
            continue;
        if (!any)
            out << "histograms (count / mean):\n";
        any = true;
        out << "  " << h.name;
        for (std::size_t pad = std::string(h.name).size(); pad < 36; ++pad)
            out << ' ';
        out << h.count << " / " << h.mean() << "\n";
    }
}

} // namespace qkc::obs
