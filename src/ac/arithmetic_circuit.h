#ifndef QKC_AC_ARITHMETIC_CIRCUIT_H
#define QKC_AC_ARITHMETIC_CIRCUIT_H

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "bayesnet/bayes_net.h"
#include "linalg/types.h"

namespace qkc {

/** Index of a node inside an ArithmeticCircuit. */
using AcNodeId = std::uint32_t;

/** Node types of the compiled arithmetic circuit (paper Figure 5). */
enum class AcNodeKind : std::uint8_t {
    Add,        ///< sum over disjoint Feynman-path families
    Mul,        ///< product over independent components / literals
    Indicator,  ///< lambda_{var = value}: evidence switch for a query var
    Param,      ///< weight variable leaf, resolved per simulation run
    Constant,   ///< fixed complex constant (e.g. free-variable multiplicity)
};

/** One node. Children live in a shared edge array (childBegin..childEnd). */
struct AcNode {
    AcNodeKind kind;
    std::uint32_t childBegin = 0;
    std::uint32_t childEnd = 0;
    BnVarId var = 0;            ///< Indicator: BN variable
    std::uint32_t value = 0;    ///< Indicator: which value
    std::int32_t paramId = -1;  ///< Param: index into the weight table
    Complex constant{};         ///< Constant payload

    std::size_t numChildren() const { return childEnd - childBegin; }
};

/**
 * A smooth arithmetic circuit over complex weights — the compilation target
 * of the toolchain (paper Section 3.2.2). Nodes are stored in topological
 * order (children strictly before parents), which makes the upward
 * (amplitude) and downward (sampling derivative) passes simple array sweeps.
 *
 * Construction applies logical minimization on the fly:
 *  - hash consing: structurally identical nodes are created once;
 *  - constant folding: products with a zero child collapse, unit children
 *    drop out, single-child Add/Mul nodes pass through, and nested nodes of
 *    the same kind are flattened.
 */
class ArithmeticCircuit {
  public:
    ArithmeticCircuit();

    // -- Construction --------------------------------------------------------
    AcNodeId indicator(BnVarId var, std::uint32_t value);
    AcNodeId param(std::int32_t paramId);
    AcNodeId constant(const Complex& value);
    AcNodeId zero() const { return zero_; }
    AcNodeId one() const { return one_; }

    /** Sum node over `children` (folds constants / trivial shapes). */
    AcNodeId add(std::vector<AcNodeId> children);

    /** Product node over `children` (folds constants / trivial shapes). */
    AcNodeId mul(std::vector<AcNodeId> children);

    void setRoot(AcNodeId root) { root_ = root; }
    AcNodeId root() const { return root_; }

    // -- Inspection ----------------------------------------------------------
    const AcNode& node(AcNodeId id) const { return nodes_[id]; }
    std::size_t numNodes() const { return nodes_.size(); }
    std::size_t numEdges() const { return edges_.size(); }
    const std::vector<std::uint32_t>& edges() const { return edges_; }

    /** Child node ids of `id`. */
    std::vector<AcNodeId> children(AcNodeId id) const;

    /**
     * Number of nodes reachable from the root (the paper's "AC nodes"
     * metric; hash-consed garbage below dead branches is excluded).
     */
    std::size_t liveNodeCount() const;

    /** Live edge count (edges below reachable nodes). */
    std::size_t liveEdgeCount() const;

    /**
     * Writes a c2d-style NNF text file: header `qnnf nodes edges`, then one
     * node per line (I var value / P paramId / C re im / A k c... / O k c...).
     * Returns bytes written (Table 4 / 6's "AC file size" metric).
     */
    std::size_t writeNnf(std::ostream& os) const;

  private:
    AcNodeId intern(AcNode node, std::vector<AcNodeId> children);

    std::vector<AcNode> nodes_;
    std::vector<std::uint32_t> edges_;
    AcNodeId root_ = 0;
    AcNodeId zero_ = 0;
    AcNodeId one_ = 0;
    std::unordered_map<std::string, AcNodeId> internMap_;
};

} // namespace qkc

#endif // QKC_AC_ARITHMETIC_CIRCUIT_H
