#ifndef QKC_AC_KC_SIMULATOR_H
#define QKC_AC_KC_SIMULATOR_H

#include <cstdint>
#include <memory>
#include <vector>

#include "ac/arithmetic_circuit.h"
#include "ac/evaluator.h"
#include "ac/gibbs_sampler.h"
#include "bayesnet/bayes_net.h"
#include "circuit/circuit.h"
#include "cnf/cnf.h"
#include "knowledge/compiler.h"
#include "util/rng.h"

namespace qkc {

/** Intermediate-representation metrics (the paper's Table 6 columns). */
struct KcMetrics {
    std::size_t bnNodes = 0;
    std::size_t bnPotentials = 0;
    std::size_t cnfVars = 0;
    std::size_t cnfIndicatorVars = 0;
    std::size_t cnfClauses = 0;
    std::size_t acNodes = 0;
    std::size_t acEdges = 0;
    std::size_t acFileBytes = 0;
    double compileSeconds = 0.0;
};

/**
 * The knowledge-compilation quantum circuit simulator: the end-to-end
 * toolchain of paper Figure 4. Construction runs
 *
 *   circuit -> complex-valued Bayesian network -> CNF -> arithmetic circuit
 *
 * once; afterwards amplitude queries, outcome probabilities, Gibbs sampling,
 * and variational parameter updates all reuse the compiled structure.
 */
class KcSimulator {
  public:
    explicit KcSimulator(const Circuit& circuit, CompileOptions options = {});

    const QuantumBayesNet& bayesNet() const { return bn_; }
    const Cnf& cnf() const { return cnf_; }
    const ArithmeticCircuit& ac() const { return ac_; }
    const CompileStats& compileStats() const { return compileStats_; }

    /** Pipeline size metrics, including the serialized AC size. */
    KcMetrics metrics() const;

    /**
     * Amplitude of a measurement outcome given an explicit noise-event
     * assignment (empty for noise-free circuits): the Table 5 upward-pass
     * query. `noise` is indexed like bayesNet().noiseVars().
     */
    Complex amplitude(std::uint64_t outcome,
                      const std::vector<std::size_t>& noise = {});

    /**
     * Probability of a measurement outcome: sum over all noise assignments
     * of |amplitude|^2 (exact; enumerates noise combinations, so meant for
     * validation-scale noisy circuits and arbitrary ideal circuits).
     */
    double probability(std::uint64_t outcome);

    /** Exact outcome distribution over all 2^n measurement outcomes. */
    std::vector<double> outcomeDistribution();

    /** Gibbs samples of measurement outcomes (paper Section 3.3.2). */
    std::vector<std::uint64_t> sample(std::size_t numSamples, Rng& rng,
                                      const GibbsOptions& options = {});

    /**
     * Variational fast path: pushes new gate parameters from `circuit`
     * (same structure as the compiled one) into the AC leaf weights without
     * recompiling (paper Section 3.2.1's key reuse property).
     */
    void refreshParams(const Circuit& circuit);

    /** Direct access for custom queries. */
    AcEvaluator& evaluator() { return *eval_; }

  private:
    void setOutcomeEvidence(std::uint64_t outcome);

    QuantumBayesNet bn_;
    Cnf cnf_;
    ArithmeticCircuit ac_;
    CompileStats compileStats_;
    double compileSeconds_ = 0.0;
    std::unique_ptr<AcEvaluator> eval_;
};

} // namespace qkc

#endif // QKC_AC_KC_SIMULATOR_H
