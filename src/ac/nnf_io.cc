#include "ac/nnf_io.h"

#include <istream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace qkc {

ArithmeticCircuit
readNnf(std::istream& is)
{
    std::string header;
    std::size_t numNodes = 0, numEdges = 0;
    is >> header >> numNodes >> numEdges;
    if (header != "qnnf")
        throw std::invalid_argument("readNnf: bad header");

    ArithmeticCircuit ac;
    std::vector<AcNodeId> remap;
    remap.reserve(numNodes);

    std::string tag;
    while (is >> tag) {
        if (tag == "I") {
            BnVarId var;
            std::uint32_t value;
            is >> var >> value;
            remap.push_back(ac.indicator(var, value));
        } else if (tag == "P") {
            std::int32_t paramId;
            is >> paramId;
            remap.push_back(ac.param(paramId));
        } else if (tag == "C") {
            double re, im;
            is >> re >> im;
            remap.push_back(ac.constant(Complex{re, im}));
        } else if (tag == "A" || tag == "O") {
            std::size_t k;
            is >> k;
            std::vector<AcNodeId> children(k);
            for (std::size_t i = 0; i < k; ++i) {
                std::size_t old;
                is >> old;
                if (old >= remap.size())
                    throw std::invalid_argument("readNnf: forward reference");
                children[i] = remap[old];
            }
            remap.push_back(tag == "A" ? ac.mul(std::move(children))
                                       : ac.add(std::move(children)));
        } else if (tag == "R") {
            std::size_t root;
            is >> root;
            if (root >= remap.size())
                throw std::invalid_argument("readNnf: bad root");
            ac.setRoot(remap[root]);
            return ac;
        } else {
            throw std::invalid_argument("readNnf: unknown tag " + tag);
        }
    }
    throw std::invalid_argument("readNnf: missing root line");
}

} // namespace qkc
