#include "ac/arithmetic_circuit.h"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <sstream>

namespace qkc {

namespace {

/** Serializes a node's identity for hash consing. */
std::string
internKey(const AcNode& node, const std::vector<AcNodeId>& children)
{
    std::string key;
    key.reserve(1 + 8 + children.size() * 4);
    key.push_back(static_cast<char>(node.kind));
    auto push32 = [&key](std::uint32_t v) {
        char buf[4];
        std::memcpy(buf, &v, 4);
        key.append(buf, 4);
    };
    switch (node.kind) {
      case AcNodeKind::Indicator:
        push32(node.var);
        push32(node.value);
        break;
      case AcNodeKind::Param:
        push32(static_cast<std::uint32_t>(node.paramId));
        break;
      case AcNodeKind::Constant: {
        char buf[16];
        double re = node.constant.real(), im = node.constant.imag();
        std::memcpy(buf, &re, 8);
        std::memcpy(buf + 8, &im, 8);
        key.append(buf, 16);
        break;
      }
      case AcNodeKind::Add:
      case AcNodeKind::Mul:
        for (AcNodeId c : children)
            push32(c);
        break;
    }
    return key;
}

} // namespace

ArithmeticCircuit::ArithmeticCircuit()
{
    zero_ = constant(Complex{0.0});
    one_ = constant(Complex{1.0});
}

AcNodeId
ArithmeticCircuit::intern(AcNode node, std::vector<AcNodeId> children)
{
    std::string key = internKey(node, children);
    auto it = internMap_.find(key);
    if (it != internMap_.end())
        return it->second;

    node.childBegin = static_cast<std::uint32_t>(edges_.size());
    for (AcNodeId c : children)
        edges_.push_back(c);
    node.childEnd = static_cast<std::uint32_t>(edges_.size());
    nodes_.push_back(node);
    AcNodeId id = static_cast<AcNodeId>(nodes_.size() - 1);
    internMap_.emplace(std::move(key), id);
    return id;
}

AcNodeId
ArithmeticCircuit::indicator(BnVarId var, std::uint32_t value)
{
    AcNode n;
    n.kind = AcNodeKind::Indicator;
    n.var = var;
    n.value = value;
    return intern(n, {});
}

AcNodeId
ArithmeticCircuit::param(std::int32_t paramId)
{
    AcNode n;
    n.kind = AcNodeKind::Param;
    n.paramId = paramId;
    return intern(n, {});
}

AcNodeId
ArithmeticCircuit::constant(const Complex& value)
{
    AcNode n;
    n.kind = AcNodeKind::Constant;
    n.constant = value;
    return intern(n, {});
}

AcNodeId
ArithmeticCircuit::add(std::vector<AcNodeId> children)
{
    // Flatten nested sums, drop zeros.
    std::vector<AcNodeId> flat;
    flat.reserve(children.size());
    for (AcNodeId c : children) {
        if (c == zero_)
            continue;
        if (nodes_[c].kind == AcNodeKind::Add) {
            for (std::uint32_t e = nodes_[c].childBegin;
                 e < nodes_[c].childEnd; ++e)
                flat.push_back(edges_[e]);
        } else {
            flat.push_back(c);
        }
    }
    if (flat.empty())
        return zero_;
    if (flat.size() == 1)
        return flat[0];
    std::sort(flat.begin(), flat.end());
    AcNode n;
    n.kind = AcNodeKind::Add;
    return intern(n, std::move(flat));
}

AcNodeId
ArithmeticCircuit::mul(std::vector<AcNodeId> children)
{
    // Flatten nested products, drop ones, short-circuit zero.
    std::vector<AcNodeId> flat;
    flat.reserve(children.size());
    for (AcNodeId c : children) {
        if (c == one_)
            continue;
        if (c == zero_)
            return zero_;
        if (nodes_[c].kind == AcNodeKind::Mul) {
            for (std::uint32_t e = nodes_[c].childBegin;
                 e < nodes_[c].childEnd; ++e)
                flat.push_back(edges_[e]);
        } else {
            flat.push_back(c);
        }
    }
    if (flat.empty())
        return one_;
    if (flat.size() == 1)
        return flat[0];
    std::sort(flat.begin(), flat.end());
    AcNode n;
    n.kind = AcNodeKind::Mul;
    return intern(n, std::move(flat));
}

std::vector<AcNodeId>
ArithmeticCircuit::children(AcNodeId id) const
{
    const AcNode& n = nodes_[id];
    return std::vector<AcNodeId>(edges_.begin() + n.childBegin,
                                 edges_.begin() + n.childEnd);
}

std::size_t
ArithmeticCircuit::liveNodeCount() const
{
    std::vector<bool> live(nodes_.size(), false);
    std::vector<AcNodeId> stack{root_};
    live[root_] = true;
    std::size_t count = 0;
    while (!stack.empty()) {
        AcNodeId id = stack.back();
        stack.pop_back();
        ++count;
        const AcNode& n = nodes_[id];
        for (std::uint32_t e = n.childBegin; e < n.childEnd; ++e) {
            if (!live[edges_[e]]) {
                live[edges_[e]] = true;
                stack.push_back(edges_[e]);
            }
        }
    }
    return count;
}

std::size_t
ArithmeticCircuit::liveEdgeCount() const
{
    std::vector<bool> live(nodes_.size(), false);
    std::vector<AcNodeId> stack{root_};
    live[root_] = true;
    std::size_t count = 0;
    while (!stack.empty()) {
        AcNodeId id = stack.back();
        stack.pop_back();
        const AcNode& n = nodes_[id];
        count += n.numChildren();
        for (std::uint32_t e = n.childBegin; e < n.childEnd; ++e) {
            if (!live[edges_[e]]) {
                live[edges_[e]] = true;
                stack.push_back(edges_[e]);
            }
        }
    }
    return count;
}

std::size_t
ArithmeticCircuit::writeNnf(std::ostream& os) const
{
    std::ostringstream buf;
    buf << "qnnf " << nodes_.size() << " " << edges_.size() << "\n";
    for (const AcNode& n : nodes_) {
        switch (n.kind) {
          case AcNodeKind::Indicator:
            buf << "I " << n.var << " " << n.value << "\n";
            break;
          case AcNodeKind::Param:
            buf << "P " << n.paramId << "\n";
            break;
          case AcNodeKind::Constant:
            buf << "C " << n.constant.real() << " " << n.constant.imag()
                << "\n";
            break;
          case AcNodeKind::Add:
          case AcNodeKind::Mul:
            buf << (n.kind == AcNodeKind::Add ? "O " : "A ")
                << n.numChildren();
            for (std::uint32_t e = n.childBegin; e < n.childEnd; ++e)
                buf << " " << edges_[e];
            buf << "\n";
            break;
        }
    }
    buf << "R " << root_ << "\n";
    std::string out = buf.str();
    os << out;
    return out.size();
}

} // namespace qkc
