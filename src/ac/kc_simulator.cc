#include "ac/kc_simulator.h"

#include <sstream>

#include "cnf/bn_to_cnf.h"
#include "linalg/types.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace qkc {

KcSimulator::KcSimulator(const Circuit& circuit, CompileOptions options)
{
    Timer timer;
    {
        QKC_SPAN("bayesnet.fromCircuit");
        bn_ = circuitToBayesNet(circuit);
    }
    {
        QKC_SPAN("cnf.encode");
        cnf_ = bayesNetToCnf(bn_);
    }
    KnowledgeCompiler compiler(options);
    {
        QKC_SPAN("knowledge.compile");
        ac_ = compiler.compile(cnf_);
    }
    compileStats_ = compiler.stats();
    compileSeconds_ = timer.seconds();

    std::vector<std::size_t> cards(bn_.variables().size());
    for (BnVarId v = 0; v < cards.size(); ++v)
        cards[v] = bn_.variable(v).cardinality;
    eval_ = std::make_unique<AcEvaluator>(ac_, std::move(cards),
                                          bn_.paramValues());
}

KcMetrics
KcSimulator::metrics() const
{
    KcMetrics m;
    m.bnNodes = bn_.variables().size();
    m.bnPotentials = bn_.potentials().size();
    m.cnfVars = cnf_.numVars();
    m.cnfIndicatorVars = cnf_.numIndicatorVars();
    m.cnfClauses = cnf_.numClauses();
    m.acNodes = ac_.liveNodeCount();
    m.acEdges = ac_.liveEdgeCount();
    std::ostringstream sink;
    m.acFileBytes = ac_.writeNnf(sink);
    m.compileSeconds = compileSeconds_;
    return m;
}

void
KcSimulator::setOutcomeEvidence(std::uint64_t outcome)
{
    const auto& finals = bn_.finalVars();
    const std::size_t n = finals.size();
    for (std::size_t q = 0; q < n; ++q) {
        int bit = static_cast<int>((outcome >> (n - 1 - q)) & 1);
        eval_->setEvidence(finals[q], bit);
    }
}

Complex
KcSimulator::amplitude(std::uint64_t outcome,
                       const std::vector<std::size_t>& noise)
{
    eval_->clearEvidence();
    setOutcomeEvidence(outcome);
    const auto& noiseVars = bn_.noiseVars();
    if (!noise.empty() && noise.size() != noiseVars.size())
        throw std::invalid_argument("KcSimulator::amplitude: noise size");
    for (std::size_t i = 0; i < noise.size(); ++i)
        eval_->setEvidence(noiseVars[i], static_cast<int>(noise[i]));
    // Noise-free circuits have no noise vars; noisy circuits with an empty
    // noise argument leave them free, which SUMS amplitudes over noise
    // events — only meaningful when they cannot interfere. Callers wanting
    // probabilities should use probability().
    return eval_->evaluate();
}

double
KcSimulator::probability(std::uint64_t outcome)
{
    eval_->clearEvidence();
    setOutcomeEvidence(outcome);
    const auto& noiseVars = bn_.noiseVars();
    if (noiseVars.empty())
        return norm2(eval_->evaluate());

    // Enumerate noise assignments with an odometer; each term contributes
    // |A(outcome, nu)|^2 (the paper's Table 5 density-matrix components).
    std::vector<std::size_t> cards(noiseVars.size());
    for (std::size_t i = 0; i < noiseVars.size(); ++i)
        cards[i] = bn_.variable(noiseVars[i]).cardinality;
    std::vector<std::size_t> nu(noiseVars.size(), 0);
    double total = 0.0;
    for (;;) {
        for (std::size_t i = 0; i < noiseVars.size(); ++i)
            eval_->setEvidence(noiseVars[i], static_cast<int>(nu[i]));
        total += norm2(eval_->evaluate());
        std::size_t pos = 0;
        for (; pos < nu.size(); ++pos) {
            if (++nu[pos] < cards[pos])
                break;
            nu[pos] = 0;
        }
        if (pos == nu.size())
            break;
    }
    return total;
}

std::vector<double>
KcSimulator::outcomeDistribution()
{
    const std::size_t n = bn_.finalVars().size();
    std::vector<double> dist(std::size_t{1} << n);
    for (std::uint64_t x = 0; x < dist.size(); ++x)
        dist[x] = probability(x);
    return dist;
}

std::vector<std::uint64_t>
KcSimulator::sample(std::size_t numSamples, Rng& rng,
                    const GibbsOptions& options)
{
    eval_->clearEvidence();
    GibbsSampler sampler(bn_, *eval_, options);
    return sampler.run(numSamples, rng);
}

void
KcSimulator::refreshParams(const Circuit& circuit)
{
    bn_.refreshParams(circuit);
    eval_->setParams(bn_.paramValues());
}

} // namespace qkc
