#ifndef QKC_AC_QUERIES_H
#define QKC_AC_QUERIES_H

#include <cstdint>
#include <string>
#include <vector>

#include "ac/kc_simulator.h"
#include "util/rng.h"

namespace qkc {

/**
 * The additional PGM query types the paper proposes as research directions
 * (Section 5): sensitivity analysis and most-probable-explanation (MPE)
 * queries on the compiled arithmetic circuit.
 */

/** Sensitivity of an amplitude query to one weight parameter. */
struct ParamSensitivity {
    std::int32_t paramId;
    Complex value;       ///< current weight value
    Complex derivative;  ///< d(amplitude) / d(weight)
    /** |d|A|^2 / d(Re w)| + |d|A|^2 / d(Im w)|: scalar influence score. */
    double influence;
};

/**
 * Sensitivity analysis (paper Section 5, citing Darwiche ch. 16): for a
 * fixed evidence setting, the downward differential pass yields the partial
 * derivative of the queried amplitude with respect to EVERY weight
 * parameter in one traversal. High-influence parameters identify the gates
 * and noise events that most strongly steer the outcome — the paper's
 * suggested use is mapping influential operations onto reliable hardware
 * qubits.
 *
 * The evaluator must already hold the desired evidence (e.g. after
 * KcSimulator::amplitude). Results are sorted by descending influence.
 */
std::vector<ParamSensitivity> parameterSensitivities(KcSimulator& simulator);

/** Result of an MPE query. */
struct MpeResult {
    /** Value per noise RV (bayesNet().noiseVars() order). */
    std::vector<std::size_t> noiseAssignment;
    /** |A(outcome, noiseAssignment)|^2, the unnormalized posterior mass. */
    double mass = 0.0;
    bool exact = false;
};

/**
 * Most Probable Explanation over noise events: given an observed outcome x,
 * find the noise assignment nu maximizing |A(x, nu)|^2 — "what error event
 * best explains a given symptomatic observed outcome" (paper Section 5).
 *
 * The paper notes a MAX operator is undefined for complex amplitudes but
 * well-defined for real probabilities; |A|^2 is exactly that real-valued
 * target. Exact maximization enumerates noise assignments when there are at
 * most `exactLimit` of them; larger instances fall back to simulated
 * annealing over single-flip moves driven by the downward pass.
 */
MpeResult mostProbableExplanation(KcSimulator& simulator,
                                  std::uint64_t outcome, Rng& rng,
                                  std::size_t exactLimit = 4096,
                                  std::size_t annealSweeps = 64);

} // namespace qkc

#endif // QKC_AC_QUERIES_H
