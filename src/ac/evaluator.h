#ifndef QKC_AC_EVALUATOR_H
#define QKC_AC_EVALUATOR_H

#include <vector>

#include "ac/arithmetic_circuit.h"

namespace qkc {

/**
 * Evaluates a compiled arithmetic circuit: the upward pass computes the
 * weighted model count (a probability amplitude) for the current evidence
 * and parameters; the downward pass computes, in one linear sweep, the
 * amplitude the circuit would take if any single query-variable indicator
 * were switched — Darwiche's differential approach (paper Sections 3.3.1
 * and 3.3.2).
 *
 * The evaluator memoizes node values: parameter or evidence updates mark
 * only the affected leaves' ancestor cones dirty, so repeated queries with
 * small changes (variational parameter sweeps, Gibbs single-flips) cost far
 * less than a full traversal.
 */
class AcEvaluator {
  public:
    /**
     * Binds the evaluator to a circuit and a query-variable universe.
     * `varCardinality[v]` is the cardinality of BN variable v (only query
     * variables matter; others may be 0).
     */
    AcEvaluator(const ArithmeticCircuit& ac,
                std::vector<std::size_t> varCardinality,
                std::vector<Complex> params);

    /** Replaces all parameter weights (variational iteration). */
    void setParams(std::vector<Complex> params);

    /** Sets evidence var = value; pass kFree to sum the variable out. */
    void setEvidence(BnVarId var, int value);

    /** Frees every variable. */
    void clearEvidence();

    int evidence(BnVarId var) const { return evidence_[var]; }

    static constexpr int kFree = -1;

    /** Upward pass: amplitude under current evidence (memoized). */
    Complex evaluate();

    /**
     * Downward pass (call after evaluate()): populates the per-indicator
     * partial derivatives. Always a full linear sweep.
     */
    void computeDerivatives();

    /**
     * d(root)/d(lambda_{var=value}) from the last computeDerivatives():
     * the amplitude the circuit takes when `var` is switched to `value`
     * and all other evidence stays put.
     */
    Complex derivative(BnVarId var, std::uint32_t value) const;

    /**
     * d(root)/d(weight of `paramId`) from the last computeDerivatives():
     * the sensitivity of the queried amplitude to one table entry (every
     * Feynman path uses a given entry at most once, so the circuit is
     * multilinear in the weights and this is an exact partial derivative).
     */
    Complex paramDerivative(std::int32_t paramId) const;

    /** Number of node recomputations performed by the last evaluate(). */
    std::size_t lastRecomputeCount() const { return lastRecompute_; }

  private:
    void markDirty(AcNodeId leaf);
    Complex leafValue(const AcNode& n) const;

    const ArithmeticCircuit* ac_;
    std::vector<std::size_t> cards_;
    std::vector<Complex> params_;
    std::vector<int> evidence_;

    std::vector<Complex> value_;
    std::vector<bool> dirty_;
    bool anyDirty_ = true;
    std::size_t lastRecompute_ = 0;

    /** Parent adjacency (built once) for dirty propagation. */
    std::vector<std::uint32_t> parentEdges_;
    std::vector<std::uint32_t> parentBegin_;

    static constexpr AcNodeId kNoLeaf = UINT32_MAX;

    /** indicatorLeaf_[var][value] = leaf node id (kNoLeaf if absent). */
    std::vector<std::vector<AcNodeId>> indicatorLeaf_;
    /** paramLeaf_[paramId] = leaf node id (kNoLeaf if absent). */
    std::vector<AcNodeId> paramLeaf_;

    std::vector<Complex> derivative_;
};

} // namespace qkc

#endif // QKC_AC_EVALUATOR_H
