#include "ac/evaluator.h"

#include <cassert>
#include <stdexcept>

#include "obs/metrics.h"

namespace qkc {

AcEvaluator::AcEvaluator(const ArithmeticCircuit& ac,
                         std::vector<std::size_t> varCardinality,
                         std::vector<Complex> params)
    : ac_(&ac), cards_(std::move(varCardinality)), params_(std::move(params))
{
    const std::size_t n = ac.numNodes();
    value_.assign(n, Complex{});
    dirty_.assign(n, true);
    derivative_.assign(n, Complex{});
    evidence_.assign(cards_.size(), kFree);

    // Locate leaves.
    indicatorLeaf_.resize(cards_.size());
    for (std::size_t v = 0; v < cards_.size(); ++v)
        indicatorLeaf_[v].assign(cards_[v] == 0 ? 2 : cards_[v], kNoLeaf);
    std::size_t maxParam = 0;
    for (AcNodeId id = 0; id < n; ++id) {
        const AcNode& node = ac.node(id);
        if (node.kind == AcNodeKind::Param)
            maxParam = std::max<std::size_t>(maxParam, node.paramId + 1);
    }
    paramLeaf_.assign(maxParam, kNoLeaf);
    for (AcNodeId id = 0; id < n; ++id) {
        const AcNode& node = ac.node(id);
        if (node.kind == AcNodeKind::Indicator) {
            auto& slots = indicatorLeaf_[node.var];
            if (node.value >= slots.size())
                slots.resize(node.value + 1, kNoLeaf);
            slots[node.value] = id;
        } else if (node.kind == AcNodeKind::Param) {
            paramLeaf_[node.paramId] = id;
        }
    }

    // Parent adjacency for dirty propagation (CSR layout).
    std::vector<std::uint32_t> degree(n, 0);
    for (AcNodeId id = 0; id < n; ++id) {
        const AcNode& node = ac.node(id);
        for (std::uint32_t e = node.childBegin; e < node.childEnd; ++e)
            ++degree[ac.edges()[e]];
    }
    parentBegin_.assign(n + 1, 0);
    for (std::size_t i = 0; i < n; ++i)
        parentBegin_[i + 1] = parentBegin_[i] + degree[i];
    parentEdges_.assign(parentBegin_[n], 0);
    std::vector<std::uint32_t> cursor(parentBegin_.begin(),
                                      parentBegin_.end() - 1);
    for (AcNodeId id = 0; id < n; ++id) {
        const AcNode& node = ac.node(id);
        for (std::uint32_t e = node.childBegin; e < node.childEnd; ++e) {
            AcNodeId child = ac.edges()[e];
            parentEdges_[cursor[child]++] = id;
        }
    }
}

void
AcEvaluator::setParams(std::vector<Complex> params)
{
    if (params.size() != params_.size())
        throw std::invalid_argument("AcEvaluator::setParams: size mismatch");
    for (std::size_t p = 0; p < params.size(); ++p) {
        if (params[p] != params_[p] && p < paramLeaf_.size() &&
            paramLeaf_[p] != kNoLeaf) {
            markDirty(paramLeaf_[p]);
        }
    }
    params_ = std::move(params);
}

void
AcEvaluator::setEvidence(BnVarId var, int value)
{
    assert(var < evidence_.size());
    if (evidence_[var] == value)
        return;
    evidence_[var] = value;
    for (AcNodeId leaf : indicatorLeaf_[var]) {
        if (leaf != kNoLeaf)
            markDirty(leaf);
    }
}

void
AcEvaluator::clearEvidence()
{
    for (std::size_t v = 0; v < evidence_.size(); ++v) {
        if (evidence_[v] != kFree)
            setEvidence(static_cast<BnVarId>(v), kFree);
    }
}

void
AcEvaluator::markDirty(AcNodeId leaf)
{
    anyDirty_ = true;
    // BFS towards the root; stop at already-dirty nodes.
    std::vector<AcNodeId> stack{leaf};
    dirty_[leaf] = true;
    while (!stack.empty()) {
        AcNodeId id = stack.back();
        stack.pop_back();
        for (std::uint32_t e = parentBegin_[id]; e < parentBegin_[id + 1];
             ++e) {
            AcNodeId parent = parentEdges_[e];
            if (!dirty_[parent]) {
                dirty_[parent] = true;
                stack.push_back(parent);
            }
        }
    }
}

Complex
AcEvaluator::leafValue(const AcNode& n) const
{
    switch (n.kind) {
      case AcNodeKind::Constant:
        return n.constant;
      case AcNodeKind::Param:
        return params_[n.paramId];
      case AcNodeKind::Indicator: {
        int ev = evidence_[n.var];
        return (ev == kFree || static_cast<std::uint32_t>(ev) == n.value)
                   ? Complex{1.0}
                   : Complex{0.0};
      }
      default:
        throw std::logic_error("leafValue on interior node");
    }
}

Complex
AcEvaluator::evaluate()
{
    static obs::Counter acEvals("kc.acEvals");
    acEvals.add();
    lastRecompute_ = 0;
    if (!anyDirty_)
        return value_[ac_->root()];
    // Nodes are stored children-before-parents; one ascending sweep
    // recomputes exactly the dirty cone.
    for (AcNodeId id = 0; id < ac_->numNodes(); ++id) {
        if (!dirty_[id])
            continue;
        const AcNode& n = ac_->node(id);
        ++lastRecompute_;
        switch (n.kind) {
          case AcNodeKind::Add: {
            Complex acc{};
            for (std::uint32_t e = n.childBegin; e < n.childEnd; ++e)
                acc += value_[ac_->edges()[e]];
            value_[id] = acc;
            break;
          }
          case AcNodeKind::Mul: {
            Complex acc{1.0};
            for (std::uint32_t e = n.childBegin; e < n.childEnd; ++e)
                acc *= value_[ac_->edges()[e]];
            value_[id] = acc;
            break;
          }
          default:
            value_[id] = leafValue(n);
            break;
        }
        dirty_[id] = false;
    }
    anyDirty_ = false;
    return value_[ac_->root()];
}

void
AcEvaluator::computeDerivatives()
{
    if (anyDirty_)
        evaluate();
    std::fill(derivative_.begin(), derivative_.end(), Complex{});
    derivative_[ac_->root()] = Complex{1.0};

    // Descending sweep: parents come after children, so when we visit a
    // node its own derivative is final.
    for (AcNodeId id = ac_->numNodes(); id-- > 0;) {
        const AcNode& n = ac_->node(id);
        const Complex dr = derivative_[id];
        if (dr == Complex{})
            continue;
        if (n.kind == AcNodeKind::Add) {
            for (std::uint32_t e = n.childBegin; e < n.childEnd; ++e)
                derivative_[ac_->edges()[e]] += dr;
        } else if (n.kind == AcNodeKind::Mul) {
            // Zero-aware product of siblings.
            std::size_t zeros = 0;
            Complex prodNonZero{1.0};
            for (std::uint32_t e = n.childBegin; e < n.childEnd; ++e) {
                const Complex& v = value_[ac_->edges()[e]];
                if (v == Complex{})
                    ++zeros;
                else
                    prodNonZero *= v;
            }
            if (zeros == 0) {
                for (std::uint32_t e = n.childBegin; e < n.childEnd; ++e) {
                    AcNodeId c = ac_->edges()[e];
                    derivative_[c] += dr * (prodNonZero / value_[c]);
                }
            } else if (zeros == 1) {
                for (std::uint32_t e = n.childBegin; e < n.childEnd; ++e) {
                    AcNodeId c = ac_->edges()[e];
                    if (value_[c] == Complex{})
                        derivative_[c] += dr * prodNonZero;
                }
            }
            // zeros >= 2: every partial derivative is zero.
        }
    }
}

Complex
AcEvaluator::derivative(BnVarId var, std::uint32_t value) const
{
    const auto& slots = indicatorLeaf_[var];
    if (value >= slots.size() || slots[value] == kNoLeaf)
        return Complex{};
    return derivative_[slots[value]];
}

Complex
AcEvaluator::paramDerivative(std::int32_t paramId) const
{
    if (paramId < 0 || static_cast<std::size_t>(paramId) >= paramLeaf_.size() ||
        paramLeaf_[paramId] == kNoLeaf)
        return Complex{};
    return derivative_[paramLeaf_[paramId]];
}

} // namespace qkc
