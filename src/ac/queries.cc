#include "ac/queries.h"

#include <algorithm>
#include <cmath>

#include "linalg/types.h"

namespace qkc {

std::vector<ParamSensitivity>
parameterSensitivities(KcSimulator& simulator)
{
    AcEvaluator& eval = simulator.evaluator();
    Complex amplitude = eval.evaluate();
    eval.computeDerivatives();

    const auto& params = simulator.bayesNet().paramValues();
    std::vector<ParamSensitivity> out;
    out.reserve(params.size());
    for (std::size_t p = 0; p < params.size(); ++p) {
        ParamSensitivity s;
        s.paramId = static_cast<std::int32_t>(p);
        s.value = params[p];
        s.derivative = eval.paramDerivative(s.paramId);
        // Gradient magnitude of |A|^2 under complex perturbation of w:
        // |d|A|^2| <= 2 |A| |dA/dw|.
        s.influence = 2.0 * std::abs(amplitude) * std::abs(s.derivative);
        out.push_back(s);
    }
    std::sort(out.begin(), out.end(),
              [](const ParamSensitivity& a, const ParamSensitivity& b) {
                  return a.influence > b.influence;
              });
    return out;
}

namespace {

/** Applies outcome evidence and the current noise assignment. */
void
applyAssignment(KcSimulator& simulator, std::uint64_t outcome,
                const std::vector<std::size_t>& nu)
{
    AcEvaluator& eval = simulator.evaluator();
    const auto& bn = simulator.bayesNet();
    const auto& finals = bn.finalVars();
    const std::size_t n = finals.size();
    for (std::size_t q = 0; q < n; ++q)
        eval.setEvidence(finals[q],
                         static_cast<int>((outcome >> (n - 1 - q)) & 1));
    const auto& noiseVars = bn.noiseVars();
    for (std::size_t i = 0; i < nu.size(); ++i)
        eval.setEvidence(noiseVars[i], static_cast<int>(nu[i]));
}

} // namespace

MpeResult
mostProbableExplanation(KcSimulator& simulator, std::uint64_t outcome,
                        Rng& rng, std::size_t exactLimit,
                        std::size_t annealSweeps)
{
    const auto& bn = simulator.bayesNet();
    const auto& noiseVars = bn.noiseVars();
    AcEvaluator& eval = simulator.evaluator();

    std::vector<std::size_t> cards(noiseVars.size());
    std::size_t combos = 1;
    bool overflow = false;
    for (std::size_t i = 0; i < noiseVars.size(); ++i) {
        cards[i] = bn.variable(noiseVars[i]).cardinality;
        if (combos > exactLimit / cards[i])
            overflow = true;
        else
            combos *= cards[i];
    }

    MpeResult result;
    result.noiseAssignment.assign(noiseVars.size(), 0);

    eval.clearEvidence();
    if (!overflow && combos <= exactLimit) {
        // Exact: odometer over every noise assignment.
        result.exact = true;
        std::vector<std::size_t> nu(noiseVars.size(), 0);
        for (;;) {
            applyAssignment(simulator, outcome, nu);
            double mass = norm2(eval.evaluate());
            if (mass > result.mass) {
                result.mass = mass;
                result.noiseAssignment = nu;
            }
            std::size_t pos = 0;
            for (; pos < nu.size(); ++pos) {
                if (++nu[pos] < cards[pos])
                    break;
                nu[pos] = 0;
            }
            if (pos == nu.size())
                break;
        }
        return result;
    }

    // Simulated annealing over single-variable moves: the downward pass
    // gives every conditional in one sweep; the temperature schedule anneals
    // from Gibbs sampling (T=1) down to greedy maximization (T->0).
    std::vector<std::size_t> nu(noiseVars.size());
    for (std::size_t i = 0; i < nu.size(); ++i)
        nu[i] = rng.below(cards[i]);
    applyAssignment(simulator, outcome, nu);

    for (std::size_t sweep = 0; sweep < annealSweeps; ++sweep) {
        double t = 1.0 - static_cast<double>(sweep) /
                             static_cast<double>(annealSweeps);
        double invT = 1.0 / std::max(t, 0.05);
        for (std::size_t i = 0; i < noiseVars.size(); ++i) {
            eval.evaluate();
            eval.computeDerivatives();
            std::vector<double> weights(cards[i], 0.0);
            double best = 0.0;
            for (std::size_t k = 0; k < cards[i]; ++k) {
                weights[k] = norm2(eval.derivative(
                    noiseVars[i], static_cast<std::uint32_t>(k)));
                best = std::max(best, weights[k]);
            }
            if (best <= 0.0)
                continue;
            for (double& w : weights)
                w = std::pow(w / best, invT);
            std::size_t pick = rng.categorical(weights);
            if (pick != nu[i]) {
                nu[i] = pick;
                eval.setEvidence(noiseVars[i], static_cast<int>(pick));
            }
        }
    }
    // Final greedy pass.
    for (std::size_t i = 0; i < noiseVars.size(); ++i) {
        eval.evaluate();
        eval.computeDerivatives();
        std::size_t bestK = nu[i];
        double best = -1.0;
        for (std::size_t k = 0; k < cards[i]; ++k) {
            double mass = norm2(
                eval.derivative(noiseVars[i], static_cast<std::uint32_t>(k)));
            if (mass > best) {
                best = mass;
                bestK = k;
            }
        }
        if (bestK != nu[i]) {
            nu[i] = bestK;
            eval.setEvidence(noiseVars[i], static_cast<int>(bestK));
        }
    }
    result.noiseAssignment = nu;
    result.mass = norm2(eval.evaluate());
    result.exact = false;
    return result;
}

} // namespace qkc
