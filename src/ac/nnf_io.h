#ifndef QKC_AC_NNF_IO_H
#define QKC_AC_NNF_IO_H

#include <iosfwd>

#include "ac/arithmetic_circuit.h"

namespace qkc {

/**
 * Reads an arithmetic circuit from the qnnf text format produced by
 * ArithmeticCircuit::writeNnf. Node ids are remapped through the hash-
 * consing constructor, so the result is semantically identical (same value
 * under every evidence/parameter setting) though node ids may differ.
 */
ArithmeticCircuit readNnf(std::istream& is);

} // namespace qkc

#endif // QKC_AC_NNF_IO_H
