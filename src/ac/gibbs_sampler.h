#ifndef QKC_AC_GIBBS_SAMPLER_H
#define QKC_AC_GIBBS_SAMPLER_H

#include <cstdint>
#include <vector>

#include "ac/evaluator.h"
#include "bayesnet/bayes_net.h"
#include "util/rng.h"

namespace qkc {

/** Knobs for the MCMC wavefunction sampler (paper Section 3.3.2). */
struct GibbsOptions {
    /** Sweeps discarded before the first recorded sample. */
    std::size_t burnIn = 64;
    /** Sweeps between recorded samples (1 = record every sweep). */
    std::size_t thin = 1;
    /** Attempts at finding a nonzero-amplitude initial state. */
    std::size_t initTries = 64;
    /**
     * Every this many sweeps, attempt one Metropolized independence move
     * (a fresh sequential-conditional proposal accepted with the
     * Metropolis-Hastings ratio). Single-site Gibbs alone is not
     * irreducible on GHZ/Bell-like wavefunctions whose support states
     * differ in several bits with zero-amplitude states in between; the
     * independence move restores irreducibility while preserving the
     * |amplitude|^2 target exactly. 0 disables.
     */
    std::size_t independenceInterval = 1;
};

/**
 * Gibbs sampler over the compiled arithmetic circuit: draws joint
 * assignments of (final qubit states, noise random variables) with
 * probability proportional to |amplitude|^2, using the downward
 * (differential) pass to obtain every single-variable full conditional in
 * one linear traversal (paper Section 3.3.2). Discarding the noise
 * variables marginalizes them, which yields measurement outcomes with the
 * density-matrix distribution.
 */
class GibbsSampler {
  public:
    GibbsSampler(const QuantumBayesNet& bn, AcEvaluator& eval,
                 GibbsOptions options = {});

    /**
     * Initializes the chain at a nonzero-amplitude assignment: random
     * restarts first, then a sequential conditional construction.
     * Returns false if no support was found (the evaluator is left free).
     */
    bool init(Rng& rng);

    /** One Gibbs sweep: resamples every query variable once, in order. */
    void sweep(Rng& rng);

    /**
     * One Metropolis-Hastings independence move: proposes a fresh state by
     * sampling each variable from its |amplitude|^2 conditional given the
     * earlier choices (later variables summed out) and accepts with the MH
     * ratio. Returns true if the proposal was accepted.
     */
    bool independenceMove(Rng& rng);

    /** Current assignment of the query variables (bn.queryVars() order). */
    const std::vector<int>& state() const { return state_; }

    /** Current measurement outcome: the final qubit bits as a basis index. */
    std::uint64_t outcome() const;

    /**
     * Runs the full chain: init, burn-in, then records `numSamples`
     * measurement outcomes (one per `thin` sweeps). Throws if no support
     * is found during initialization.
     */
    std::vector<std::uint64_t> run(std::size_t numSamples, Rng& rng);

  private:
    void applyState();

    /**
     * Sequential-conditional construction: fills `out` one variable at a
     * time, drawing value k of variable i with probability proportional to
     * |f(out_{<i}, k, rest free)|^2. On success returns true and stores the
     * proposal's log-density in `logDensity`. When `evaluateOnly` is set,
     * `out` is treated as fixed and only its log-density is computed.
     */
    bool sequentialConditional(Rng& rng, std::vector<int>& out,
                               double& logDensity, bool evaluateOnly);

    const QuantumBayesNet* bn_;
    AcEvaluator* eval_;
    GibbsOptions options_;
    std::vector<BnVarId> queryVars_;
    std::vector<std::size_t> cards_;
    std::vector<int> state_;
};

} // namespace qkc

#endif // QKC_AC_GIBBS_SAMPLER_H
