#include "ac/gibbs_sampler.h"

#include <cmath>
#include <stdexcept>

#include "linalg/types.h"
#include "obs/metrics.h"

namespace qkc {

GibbsSampler::GibbsSampler(const QuantumBayesNet& bn, AcEvaluator& eval,
                           GibbsOptions options)
    : bn_(&bn), eval_(&eval), options_(options), queryVars_(bn.queryVars())
{
    cards_.reserve(queryVars_.size());
    for (BnVarId v : queryVars_)
        cards_.push_back(bn.variable(v).cardinality);
    state_.assign(queryVars_.size(), 0);
}

void
GibbsSampler::applyState()
{
    for (std::size_t i = 0; i < queryVars_.size(); ++i)
        eval_->setEvidence(queryVars_[i], state_[i]);
}

bool
GibbsSampler::sequentialConditional(Rng& rng, std::vector<int>& out,
                                    double& logDensity, bool evaluateOnly)
{
    for (BnVarId v : queryVars_)
        eval_->setEvidence(v, AcEvaluator::kFree);
    logDensity = 0.0;
    for (std::size_t i = 0; i < queryVars_.size(); ++i) {
        std::vector<double> weights(cards_[i], 0.0);
        double total = 0.0;
        for (std::size_t k = 0; k < cards_[i]; ++k) {
            eval_->setEvidence(queryVars_[i], static_cast<int>(k));
            weights[k] = norm2(eval_->evaluate());
            total += weights[k];
        }
        if (total <= 0.0) {
            // Amplitude sums over the remaining free variables interfered
            // to zero for every value: the proposal density is undefined.
            return false;
        }
        int pick = evaluateOnly
                       ? out[i]
                       : static_cast<int>(rng.categorical(weights));
        if (weights[pick] <= 0.0)
            return false;
        logDensity += std::log(weights[pick] / total);
        out[i] = pick;
        eval_->setEvidence(queryVars_[i], pick);
    }
    return true;
}

bool
GibbsSampler::init(Rng& rng)
{
    // Phase 1: random restarts.
    for (std::size_t attempt = 0; attempt < options_.initTries; ++attempt) {
        for (std::size_t i = 0; i < state_.size(); ++i)
            state_[i] = static_cast<int>(rng.below(cards_[i]));
        applyState();
        if (norm2(eval_->evaluate()) > 0.0)
            return true;
    }

    // Phase 2: sequential conditional construction, which handles sharply
    // peaked (even deterministic) wavefunctions.
    std::vector<int> candidate(state_.size(), 0);
    double logDensity;
    if (sequentialConditional(rng, candidate, logDensity,
                              /*evaluateOnly=*/false)) {
        state_ = candidate;
        applyState();
        if (norm2(eval_->evaluate()) > 0.0)
            return true;
    }

    // Phase 3: a few more randomized sequential attempts.
    for (int attempt = 0; attempt < 8; ++attempt) {
        if (!sequentialConditional(rng, candidate, logDensity, false))
            continue;
        state_ = candidate;
        applyState();
        if (norm2(eval_->evaluate()) > 0.0)
            return true;
    }
    applyState();
    return false;
}

void
GibbsSampler::sweep(Rng& rng)
{
    static obs::Counter sweeps("kc.gibbsSweeps");
    sweeps.add();
    for (std::size_t i = 0; i < queryVars_.size(); ++i) {
        // One upward + one downward pass yields the full conditional of
        // variable i given all others.
        eval_->evaluate();
        eval_->computeDerivatives();
        std::vector<double> weights(cards_[i]);
        for (std::size_t k = 0; k < cards_[i]; ++k)
            weights[k] = norm2(
                eval_->derivative(queryVars_[i], static_cast<std::uint32_t>(k)));
        double total = 0.0;
        for (double w : weights)
            total += w;
        if (total <= 0.0)
            continue;  // degenerate; keep the current value
        int next = static_cast<int>(rng.categorical(weights));
        if (next != state_[i]) {
            state_[i] = next;
            eval_->setEvidence(queryVars_[i], next);
        }
    }
}

bool
GibbsSampler::independenceMove(Rng& rng)
{
    // Current amplitude and proposal density of the current state.
    applyState();
    double curAmp2 = norm2(eval_->evaluate());
    std::vector<int> current = state_;
    double logQCurrent;
    if (!sequentialConditional(rng, current, logQCurrent,
                               /*evaluateOnly=*/true)) {
        applyState();
        return false;
    }

    std::vector<int> proposal(state_.size(), 0);
    double logQProposal;
    if (!sequentialConditional(rng, proposal, logQProposal,
                               /*evaluateOnly=*/false)) {
        applyState();
        return false;
    }
    // Evidence is now the full proposal; its amplitude:
    double propAmp2 = norm2(eval_->evaluate());
    if (propAmp2 <= 0.0) {
        applyState();
        return false;
    }

    double logAccept = std::log(propAmp2) + logQCurrent -
                       (curAmp2 > 0.0 ? std::log(curAmp2) : -1e300) -
                       logQProposal;
    if (logAccept >= 0.0 || rng.uniform() < std::exp(logAccept)) {
        state_ = proposal;
        return true;
    }
    applyState();
    return false;
}

std::uint64_t
GibbsSampler::outcome() const
{
    const std::size_t numQubits = bn_->finalVars().size();
    std::uint64_t idx = 0;
    for (std::size_t q = 0; q < numQubits; ++q)
        idx = (idx << 1) | static_cast<std::uint64_t>(state_[q]);
    return idx;
}

std::vector<std::uint64_t>
GibbsSampler::run(std::size_t numSamples, Rng& rng)
{
    if (!init(rng))
        throw std::runtime_error(
            "GibbsSampler: could not find a support state");
    std::size_t sweepCount = 0;
    auto advance = [&] {
        sweep(rng);
        ++sweepCount;
        if (options_.independenceInterval != 0 &&
            sweepCount % options_.independenceInterval == 0) {
            independenceMove(rng);
        }
    };
    for (std::size_t i = 0; i < options_.burnIn; ++i)
        advance();
    std::vector<std::uint64_t> samples;
    samples.reserve(numSamples);
    while (samples.size() < numSamples) {
        for (std::size_t t = 0; t < options_.thin; ++t)
            advance();
        samples.push_back(outcome());
    }
    return samples;
}

} // namespace qkc
