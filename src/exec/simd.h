#ifndef QKC_EXEC_SIMD_H
#define QKC_EXEC_SIMD_H

#include <cstdint>
#include <string>

namespace qkc {

/**
 * Vector-dispatch level for the dense gate-kernel sweeps. Levels are
 * ordered: a higher level strictly widens the registers used; every level
 * executes the *same elementwise operations in the same order* (explicit
 * mul/add, no FMA contraction), so payloads are bit-identical across
 * levels — the contract the simd-parity suite asserts.
 */
enum class SimdLevel : std::uint8_t {
    Scalar = 0, ///< portable scalar loops (always available)
    Avx2 = 1,   ///< 256-bit lanes, 2 complex<double> per vector
    Avx512 = 2, ///< 512-bit lanes, 4 complex<double> per vector
};

/**
 * How a policy or backend spec requests a level: Auto defers to the
 * process-wide default (QKC_SIMD clamped by CPUID); an explicit level is
 * clamped to what the hardware and build support.
 */
enum class SimdMode : std::uint8_t {
    Auto = 0,
    Off = 1,
    Avx2 = 2,
    Avx512 = 3,
};

/** "off" / "avx2" / "avx512" — the value QKC_SIMD and spec options take. */
const char* simdLevelName(SimdLevel level);

/**
 * The widest level this process can run: CPUID at first call (OS XSAVE
 * state included), intersected with what the build compiled in (a non-x86
 * or no-AVX toolchain caps this at Scalar). Cached after the first call.
 */
SimdLevel maxSupportedSimdLevel();

/**
 * The process-wide dispatch level: maxSupportedSimdLevel() unless the
 * QKC_SIMD environment variable (read once, like QKC_THREADS) or
 * setSimdLevel() lowered it. `simd=...` backend-spec options override this
 * per session via ExecPolicy without touching the process default.
 */
SimdLevel activeSimdLevel();

/** Overrides the process default (clamped to supported; CLI parsing only). */
void setSimdLevel(SimdLevel level);

/**
 * Parses "auto" / "off" / "avx2" / "avx512" (also "0" = off, "1" = auto,
 * mirroring the obs knob's 0/1 form). Returns false on anything else.
 */
bool parseSimdMode(const std::string& text, SimdMode* out);

/** Resolves a requested mode: Auto -> activeSimdLevel(), else clamped. */
SimdLevel resolveSimdMode(SimdMode mode);

} // namespace qkc

#endif // QKC_EXEC_SIMD_H
