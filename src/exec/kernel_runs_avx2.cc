/**
 * AVX2 implementation of the contiguous-run kernel primitives: 256-bit
 * vectors holding two interleaved complex<double> amplitudes.
 *
 * Bit-parity with the scalar table is engineered, not hoped for: a complex
 * multiply is the same four products combined with one subtraction and one
 * addition (`vmulpd` x2 + `vaddsubpd`), never an FMA — the TU is compiled
 * with -ffp-contract=off and the FMA instruction sets banned outright
 * (-mno-fma -mno-avx512f, see src/exec/CMakeLists.txt) so the compiler
 * cannot contract either — and run tails shorter than a vector execute the
 * identical scalar expression.
 *
 * Compiled with -mavx2 only when the toolchain supports it (see
 * src/exec/CMakeLists.txt); otherwise the QKC_SIMD_AVX2 guard leaves just
 * the null accessor, and dispatch stays scalar.
 */
#include "exec/kernel_runs.h"

#if defined(QKC_SIMD_AVX2)

#include <immintrin.h>

namespace qkc {

namespace {

/** A complex constant broadcast across both vector slots. */
struct BConst {
    __m256d re;
    __m256d im;
};

inline BConst
broadcast(const Complex& c)
{
    return {_mm256_set1_pd(c.real()), _mm256_set1_pd(c.imag())};
}

/**
 * v * c for two interleaved complex amplitudes: per slot,
 * (ar*cr - ai*ci, ai*cr + ar*ci) — the scalar four-product form (the two
 * products per component are the same; IEEE addition commutes bitwise).
 */
inline __m256d
cmulv(__m256d v, const BConst& c)
{
    const __m256d t1 = _mm256_mul_pd(v, c.re);
    const __m256d t2 = _mm256_mul_pd(_mm256_permute_pd(v, 0x5), c.im);
    return _mm256_addsub_pd(t1, t2);
}

inline Complex
cmul(const Complex& a, const Complex& b)
{
    return Complex(a.real() * b.real() - a.imag() * b.imag(),
                   a.real() * b.imag() + a.imag() * b.real());
}

void
scaleAvx2(Complex* a, std::uint64_t n, const Complex& s)
{
    const BConst c = broadcast(s);
    double* p = reinterpret_cast<double*>(a);
    std::uint64_t i = 0;
    for (; i + 2 <= n; i += 2, p += 4)
        _mm256_storeu_pd(p, cmulv(_mm256_loadu_pd(p), c));
    for (; i < n; ++i)
        a[i] = cmul(a[i], s);
}

void
diag2Avx2(Complex* a0, Complex* a1, std::uint64_t n, const Complex& d0,
          const Complex& d1)
{
    const BConst c0 = broadcast(d0);
    const BConst c1 = broadcast(d1);
    double* p0 = reinterpret_cast<double*>(a0);
    double* p1 = reinterpret_cast<double*>(a1);
    std::uint64_t i = 0;
    for (; i + 2 <= n; i += 2, p0 += 4, p1 += 4) {
        _mm256_storeu_pd(p0, cmulv(_mm256_loadu_pd(p0), c0));
        _mm256_storeu_pd(p1, cmulv(_mm256_loadu_pd(p1), c1));
    }
    for (; i < n; ++i) {
        a0[i] = cmul(a0[i], d0);
        a1[i] = cmul(a1[i], d1);
    }
}

void
diag4Avx2(Complex* a0, Complex* a1, Complex* a2, Complex* a3,
          std::uint64_t n, const Complex* d)
{
    const BConst c0 = broadcast(d[0]);
    const BConst c1 = broadcast(d[1]);
    const BConst c2 = broadcast(d[2]);
    const BConst c3 = broadcast(d[3]);
    double* p0 = reinterpret_cast<double*>(a0);
    double* p1 = reinterpret_cast<double*>(a1);
    double* p2 = reinterpret_cast<double*>(a2);
    double* p3 = reinterpret_cast<double*>(a3);
    std::uint64_t i = 0;
    for (; i + 2 <= n; i += 2, p0 += 4, p1 += 4, p2 += 4, p3 += 4) {
        _mm256_storeu_pd(p0, cmulv(_mm256_loadu_pd(p0), c0));
        _mm256_storeu_pd(p1, cmulv(_mm256_loadu_pd(p1), c1));
        _mm256_storeu_pd(p2, cmulv(_mm256_loadu_pd(p2), c2));
        _mm256_storeu_pd(p3, cmulv(_mm256_loadu_pd(p3), c3));
    }
    for (; i < n; ++i) {
        a0[i] = cmul(a0[i], d[0]);
        a1[i] = cmul(a1[i], d[1]);
        a2[i] = cmul(a2[i], d[2]);
        a3[i] = cmul(a3[i], d[3]);
    }
}

void
swap2Avx2(Complex* a0, Complex* a1, std::uint64_t n, const Complex& w0,
          const Complex& w1)
{
    const BConst c0 = broadcast(w0);
    const BConst c1 = broadcast(w1);
    double* p0 = reinterpret_cast<double*>(a0);
    double* p1 = reinterpret_cast<double*>(a1);
    std::uint64_t i = 0;
    for (; i + 2 <= n; i += 2, p0 += 4, p1 += 4) {
        const __m256d v0 = _mm256_loadu_pd(p0);
        const __m256d v1 = _mm256_loadu_pd(p1);
        _mm256_storeu_pd(p0, cmulv(v1, c0));
        _mm256_storeu_pd(p1, cmulv(v0, c1));
    }
    for (; i < n; ++i) {
        const Complex in0 = a0[i];
        a0[i] = cmul(w0, a1[i]);
        a1[i] = cmul(w1, in0);
    }
}

void
mat2Avx2(Complex* a0, Complex* a1, std::uint64_t n, const Complex* m)
{
    const BConst c00 = broadcast(m[0]);
    const BConst c01 = broadcast(m[1]);
    const BConst c10 = broadcast(m[2]);
    const BConst c11 = broadcast(m[3]);
    double* p0 = reinterpret_cast<double*>(a0);
    double* p1 = reinterpret_cast<double*>(a1);
    std::uint64_t i = 0;
    // Unrolled 2x: two independent 256-bit lanes per stream overlap the
    // multiply/addsub latency chains (per-element arithmetic unchanged).
    for (; i + 4 <= n; i += 4, p0 += 8, p1 += 8) {
        const __m256d xa = _mm256_loadu_pd(p0);
        const __m256d xb = _mm256_loadu_pd(p0 + 4);
        const __m256d ya = _mm256_loadu_pd(p1);
        const __m256d yb = _mm256_loadu_pd(p1 + 4);
        _mm256_storeu_pd(p0, _mm256_add_pd(cmulv(xa, c00), cmulv(ya, c01)));
        _mm256_storeu_pd(p0 + 4,
                         _mm256_add_pd(cmulv(xb, c00), cmulv(yb, c01)));
        _mm256_storeu_pd(p1, _mm256_add_pd(cmulv(xa, c10), cmulv(ya, c11)));
        _mm256_storeu_pd(p1 + 4,
                         _mm256_add_pd(cmulv(xb, c10), cmulv(yb, c11)));
    }
    for (; i + 2 <= n; i += 2, p0 += 4, p1 += 4) {
        const __m256d x = _mm256_loadu_pd(p0);
        const __m256d y = _mm256_loadu_pd(p1);
        _mm256_storeu_pd(p0, _mm256_add_pd(cmulv(x, c00), cmulv(y, c01)));
        _mm256_storeu_pd(p1, _mm256_add_pd(cmulv(x, c10), cmulv(y, c11)));
    }
    for (; i < n; ++i) {
        const Complex x = a0[i];
        const Complex y = a1[i];
        a0[i] = cmul(m[0], x) + cmul(m[1], y);
        a1[i] = cmul(m[2], x) + cmul(m[3], y);
    }
}

void
mat4Avx2(Complex* a0, Complex* a1, Complex* a2, Complex* a3,
         std::uint64_t n, const Complex* m)
{
    BConst c[16];
    for (int e = 0; e < 16; ++e)
        c[e] = broadcast(m[e]);
    double* p[4] = {
        reinterpret_cast<double*>(a0), reinterpret_cast<double*>(a1),
        reinterpret_cast<double*>(a2), reinterpret_cast<double*>(a3)};
    std::uint64_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m256d x0 = _mm256_loadu_pd(p[0]);
        const __m256d x1 = _mm256_loadu_pd(p[1]);
        const __m256d x2 = _mm256_loadu_pd(p[2]);
        const __m256d x3 = _mm256_loadu_pd(p[3]);
        for (int r = 0; r < 4; ++r) {
            // Same association as the scalar path: ((p0+p1)+p2)+p3.
            const __m256d acc = _mm256_add_pd(
                _mm256_add_pd(
                    _mm256_add_pd(cmulv(x0, c[4 * r]), cmulv(x1, c[4 * r + 1])),
                    cmulv(x2, c[4 * r + 2])),
                cmulv(x3, c[4 * r + 3]));
            _mm256_storeu_pd(p[r], acc);
            p[r] += 4;
        }
    }
    for (; i < n; ++i) {
        const Complex x0 = a0[i];
        const Complex x1 = a1[i];
        const Complex x2 = a2[i];
        const Complex x3 = a3[i];
        a0[i] = ((cmul(m[0], x0) + cmul(m[1], x1)) + cmul(m[2], x2)) +
                cmul(m[3], x3);
        a1[i] = ((cmul(m[4], x0) + cmul(m[5], x1)) + cmul(m[6], x2)) +
                cmul(m[7], x3);
        a2[i] = ((cmul(m[8], x0) + cmul(m[9], x1)) + cmul(m[10], x2)) +
                cmul(m[11], x3);
        a3[i] = ((cmul(m[12], x0) + cmul(m[13], x1)) + cmul(m[14], x2)) +
                cmul(m[15], x3);
    }
}

} // namespace

const KernelRunOps*
avx2RunOps()
{
    static const KernelRunOps ops = {
        SimdLevel::Avx2, scaleAvx2, diag2Avx2, diag4Avx2,
        swap2Avx2,       mat2Avx2,  mat4Avx2,
    };
    return &ops;
}

} // namespace qkc

#else // !QKC_SIMD_AVX2

namespace qkc {

const KernelRunOps*
avx2RunOps()
{
    return nullptr;
}

} // namespace qkc

#endif
