#ifndef QKC_EXEC_GATE_KERNELS_H
#define QKC_EXEC_GATE_KERNELS_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "exec/thread_pool.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qkc {

/**
 * A gate (or Kraus operator) compiled for dense amplitude-array execution.
 *
 * The matrix is inspected once — at circuit load, not per application — and
 * lowered to the cheapest kernel class that reproduces it:
 *
 *   - control qubits are stripped greedily: a qubit whose |0> subspace is
 *     untouched and decoupled becomes a bit in `ctrlMask`, halving the
 *     amplitudes the kernel visits (CNOT, CRz, CCX, CSWAP, ... and the
 *     |1>-entry of Z/S/T/Phase all shrink this way);
 *   - the residual operator on the remaining `targets` qubits is classified
 *     as Identity (skip entirely), GlobalPhase (uniform scale), Diag
 *     (elementwise multiply — Z/S/T/Rz/Phase/CZ/ZZ families), Perm (a
 *     weighted permutation — X/Y/CNOT/SWAP/CCX families), or Generic (dense
 *     2^k x 2^k fallback, bit-identical to the pre-kernel code).
 *
 * Kernels address raw `Complex*` arrays via *bit positions* (shift amounts),
 * not qubit numbers, so the same machinery serves the state vector (bit of
 * qubit q = n-1-q) and the density matrix, whose row and column index
 * spaces are just the high and low halves of the flattened 2n-bit index.
 */
struct GateKernel {
    enum class Op : std::uint8_t {
        Identity,    ///< the identity matrix: applying it is a no-op
        GlobalPhase, ///< scalar * identity: one uniform sweep
        Diag,        ///< diagonal residual: multiply, no amplitude mixing
        Perm,        ///< one non-zero per row/col: weighted index shuffle
        Generic,     ///< dense residual matrix fallback
    };

    Op op = Op::Generic;

    /** Original operand count (1..3) and residual target count (0..3). */
    std::uint8_t arity = 0;
    std::uint8_t targets = 0;

    /** targets + control bits; the kernel enumerates dim >> occupiedCount
     *  base indices. */
    std::uint8_t occupiedCount = 0;

    /** Bits that must be 1 for the residual operator to act. */
    std::uint64_t ctrlMask = 0;

    /** Residual target bit positions, most-significant local bit first. */
    std::array<std::uint32_t, 3> targetBits{};

    /** Original operand bit positions (reference path), local MSB first. */
    std::array<std::uint32_t, 3> fullBits{};

    /** All occupied bit positions, sorted ascending (for index expansion). */
    std::array<std::uint32_t, 6> occupied{};

    Complex scalar{1.0, 0.0};         ///< GlobalPhase factor
    std::array<Complex, 8> diag{};    ///< Diag entries (2^targets used)
    std::array<std::uint8_t, 8> perm{};  ///< Perm: out[r] = permW[r]*in[perm[r]]
    std::array<Complex, 8> permW{};
    Matrix reduced;                   ///< Generic residual (2^targets square)
    Matrix full;                      ///< the original matrix, always kept

    /** Kernel-class mnemonic for logs and benches, e.g. "ctrl-perm". */
    const char* className() const;
};

/**
 * Inspects `m` (2^a x 2^a, a = bits.size() in 1..3) acting on the given bit
 * positions (local MSB first) and builds the specialized kernel. Matrices
 * need not be unitary — Kraus operators classify too (damping E0 is Diag).
 */
GateKernel compileKernel(const Matrix& m,
                         const std::vector<std::uint32_t>& bits);

/**
 * Refreshes a compiled kernel's numeric payload for a new matrix on the
 * same bit positions *without re-running classification*: the variational
 * fast path (a parameter sweep changes Rz(theta)'s entries but never its
 * diagonal-ness). The stored class, control mask and permutation pattern
 * are *verified* against `m` — if the new matrix no longer fits (a
 * parameter crossed a structural boundary, e.g. Rx(2pi) -> Rx(0.3) turns a
 * global phase into a dense matrix), nothing is modified and false is
 * returned; the caller should recompile. A Generic kernel accepts any
 * matrix, so refresh can only fail for specialized classes.
 */
bool tryRefreshKernel(GateKernel& k, const Matrix& m);

/**
 * Applies the kernel in place to `amps[0..dim)`, parallelized per `policy`
 * with deterministic chunking. `preScale` is folded into the kernel's
 * constants before the sweep — the trajectory simulator passes 1/sqrt(w) so
 * Born-normalizing a Kraus pick costs no extra pass over the state.
 */
void applyKernel(const GateKernel& k, Complex* amps, std::uint64_t dim,
                 const ExecPolicy& policy,
                 const Complex& preScale = Complex{1.0, 0.0});

/**
 * The gather-only sweep: applyKernel without the cache-blocked/simd run
 * path — one index-gather per residual group, scalar arithmetic, same
 * classification and deterministic chunking. This is the PR 7 execution
 * shape, kept callable as the blocked-vs-unblocked bench baseline (and as
 * the internal fallback for shapes with no run primitive).
 */
void applyKernelUnblocked(const GateKernel& k, Complex* amps,
                          std::uint64_t dim, const ExecPolicy& policy,
                          const Complex& preScale = Complex{1.0, 0.0});

/**
 * Returns ||K psi||^2 without modifying the state: the squared norm the
 * state would have after applyKernel. One read-only pass (dense full-matrix
 * evaluation per group), deterministic chunk-ordered summation.
 */
double normAfterKernel(const GateKernel& k, const Complex* amps,
                       std::uint64_t dim, const ExecPolicy& policy);

/**
 * The pre-kernel reference path: serial dense application of the full
 * matrix, exactly as the seed StateVector::apply* loops computed it. Used
 * by the kernel-equivalence tests and the micro benchmarks as the baseline.
 */
void applyKernelReference(const GateKernel& k, Complex* amps,
                          std::uint64_t dim);

} // namespace qkc

#endif // QKC_EXEC_GATE_KERNELS_H
