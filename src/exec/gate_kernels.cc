#include "exec/gate_kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "exec/kernel_runs.h"
#include "obs/metrics.h"

namespace qkc {

namespace {

/**
 * Classification tolerance. Far below kAmpEps: we only specialize when the
 * matrix is structurally exact (analytically-constructed gates have entries
 * that are exact zeros or ~1e-17 trig residue), so a specialized kernel
 * never deviates from the dense result by more than the residue it drops.
 */
constexpr double kKernelEps = 1e-14;

bool
nearZero(const Complex& c)
{
    return std::abs(c.real()) <= kKernelEps && std::abs(c.imag()) <= kKernelEps;
}

bool
nearOne(const Complex& c)
{
    return std::abs(c.real() - 1.0) <= kKernelEps &&
           std::abs(c.imag()) <= kKernelEps;
}

bool
nearEqual(const Complex& a, const Complex& b)
{
    return std::abs(a.real() - b.real()) <= kKernelEps &&
           std::abs(a.imag() - b.imag()) <= kKernelEps;
}

/**
 * True if local qubit j (0 = MSB of the local index) is a 1-control of the
 * k-qubit matrix W: the bit-j=0 subspace is identity and fully decoupled
 * from the bit-j=1 subspace.
 */
bool
isControlQubit(const std::vector<Complex>& w, std::size_t k, std::size_t j)
{
    const std::size_t d = std::size_t{1} << k;
    const std::size_t pos = k - 1 - j;
    for (std::size_t r = 0; r < d; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            const bool rb = (r >> pos) & 1;
            const bool cb = (c >> pos) & 1;
            const Complex& e = w[r * d + c];
            if (!rb && !cb) {
                if (r == c ? !nearOne(e) : !nearZero(e))
                    return false;
            } else if (rb != cb) {
                if (!nearZero(e))
                    return false;
            }
        }
    }
    return true;
}

/** The bit-j=1 quadrant of W: the residual operator behind a control. */
std::vector<Complex>
stripControl(const std::vector<Complex>& w, std::size_t k, std::size_t j)
{
    const std::size_t d = std::size_t{1} << k;
    const std::size_t d2 = d / 2;
    const std::size_t pos = k - 1 - j;
    auto insertOne = [pos](std::size_t x) {
        const std::size_t low = x & ((std::size_t{1} << pos) - 1);
        return ((x >> pos) << (pos + 1)) | (std::size_t{1} << pos) | low;
    };
    std::vector<Complex> sub(d2 * d2);
    for (std::size_t r = 0; r < d2; ++r)
        for (std::size_t c = 0; c < d2; ++c)
            sub[r * d2 + c] = w[insertOne(r) * d + insertOne(c)];
    return sub;
}

/**
 * Expands a free-space index to a base index with zeros at every occupied
 * bit position and ones at the control bits. `occ` must be sorted ascending.
 */
inline std::uint64_t
expandBase(std::uint64_t j, const std::uint32_t* occ, unsigned count,
           std::uint64_t ctrlMask)
{
    std::uint64_t b = j;
    for (unsigned i = 0; i < count; ++i) {
        const std::uint64_t low = (std::uint64_t{1} << occ[i]) - 1;
        b = ((b & ~low) << 1) | (b & low);
    }
    return b | ctrlMask;
}

/** idx[l] for the 2^t residual basis states of one group. */
inline void
gatherIndices(std::uint64_t base, const std::uint64_t* stride, unsigned t,
              std::uint64_t* idx)
{
    const unsigned count = 1u << t;
    for (unsigned l = 0; l < count; ++l) {
        std::uint64_t v = base;
        for (unsigned j = 0; j < t; ++j) {
            if ((l >> (t - 1 - j)) & 1u)
                v += stride[j];
        }
        idx[l] = v;
    }
}

} // namespace

const char*
GateKernel::className() const
{
    switch (op) {
      case Op::Identity:
        return "identity";
      case Op::GlobalPhase:
        return "phase";
      case Op::Diag:
        return ctrlMask ? "ctrl-diag" : "diag";
      case Op::Perm:
        return ctrlMask ? "ctrl-perm" : "perm";
      case Op::Generic:
        return ctrlMask ? "ctrl-generic" : "generic";
    }
    return "?";
}

GateKernel
compileKernel(const Matrix& m, const std::vector<std::uint32_t>& bits)
{
    if (bits.empty() || bits.size() > 3)
        throw std::invalid_argument("compileKernel: arity must be 1..3");
    const std::size_t a = bits.size();
    const std::size_t dim = std::size_t{1} << a;
    if (m.rows() != dim || m.cols() != dim)
        throw std::invalid_argument("compileKernel: matrix/bit-count mismatch");

    GateKernel k;
    k.arity = static_cast<std::uint8_t>(a);
    k.full = m;
    for (std::size_t i = 0; i < a; ++i)
        k.fullBits[i] = bits[i];

    // Working copy of the matrix and the bit positions still attached to it.
    std::vector<Complex> w(dim * dim);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            w[r * dim + c] = m(r, c);
    std::vector<std::uint32_t> left(bits);

    // Greedy control stripping: each pass may expose further controls
    // (CCX sheds both controls one at a time).
    bool stripped = true;
    while (stripped && !left.empty()) {
        stripped = false;
        for (std::size_t j = 0; j < left.size(); ++j) {
            if (!isControlQubit(w, left.size(), j))
                continue;
            k.ctrlMask |= std::uint64_t{1} << left[j];
            w = stripControl(w, left.size(), j);
            left.erase(left.begin() + static_cast<std::ptrdiff_t>(j));
            stripped = true;
            break;
        }
    }

    const std::size_t t = left.size();
    const std::size_t td = std::size_t{1} << t;
    k.targets = static_cast<std::uint8_t>(t);
    for (std::size_t i = 0; i < t; ++i)
        k.targetBits[i] = left[i];

    // Occupied bit positions (controls + targets), ascending, for expansion.
    std::vector<std::uint32_t> occ(left);
    for (std::uint32_t b = 0; b < 64; ++b)
        if (k.ctrlMask & (std::uint64_t{1} << b))
            occ.push_back(b);
    std::sort(occ.begin(), occ.end());
    k.occupiedCount = static_cast<std::uint8_t>(occ.size());
    for (std::size_t i = 0; i < occ.size(); ++i)
        k.occupied[i] = occ[i];

    // Classify the residual operator, cheapest class first.
    bool isDiag = true;
    for (std::size_t r = 0; r < td && isDiag; ++r)
        for (std::size_t c = 0; c < td; ++c)
            if (r != c && !nearZero(w[r * td + c])) {
                isDiag = false;
                break;
            }
    if (isDiag) {
        bool allOne = true;
        bool allEqual = true;
        for (std::size_t l = 0; l < td; ++l) {
            k.diag[l] = w[l * td + l];
            allOne = allOne && nearOne(k.diag[l]);
            allEqual = allEqual && nearEqual(k.diag[l], k.diag[0]);
        }
        if (allOne) {
            k.op = GateKernel::Op::Identity;
        } else if (allEqual && k.ctrlMask == 0) {
            k.op = GateKernel::Op::GlobalPhase;
            k.scalar = k.diag[0];
        } else {
            k.op = GateKernel::Op::Diag;
        }
        return k;
    }

    // Weighted permutation: exactly one non-zero per row and per column.
    bool isPerm = t > 0;
    std::array<bool, 8> colUsed{};
    for (std::size_t r = 0; r < td && isPerm; ++r) {
        std::size_t found = td;
        for (std::size_t c = 0; c < td; ++c) {
            if (nearZero(w[r * td + c]))
                continue;
            if (found != td) {
                isPerm = false;
                break;
            }
            found = c;
        }
        if (found == td || colUsed[found]) {
            isPerm = false;
            break;
        }
        colUsed[found] = true;
        k.perm[r] = static_cast<std::uint8_t>(found);
        k.permW[r] = w[r * td + found];
    }
    if (isPerm) {
        k.op = GateKernel::Op::Perm;
        return k;
    }

    k.op = GateKernel::Op::Generic;
    k.reduced = Matrix(td, td);
    for (std::size_t r = 0; r < td; ++r)
        for (std::size_t c = 0; c < td; ++c)
            k.reduced(r, c) = w[r * td + c];
    return k;
}

bool
tryRefreshKernel(GateKernel& k, const Matrix& m)
{
    const std::size_t dim = std::size_t{1} << k.arity;
    if (m.rows() != dim || m.cols() != dim)
        return false;

    // Strip the *stored* controls (no greedy search): every bit recorded in
    // ctrlMask must still verify as a control of the new matrix.
    std::vector<Complex> w(dim * dim);
    for (std::size_t r = 0; r < dim; ++r)
        for (std::size_t c = 0; c < dim; ++c)
            w[r * dim + c] = m(r, c);
    std::vector<std::uint32_t> left(k.fullBits.begin(),
                                    k.fullBits.begin() + k.arity);
    std::uint64_t remaining = k.ctrlMask;
    while (remaining != 0) {
        bool strippedOne = false;
        for (std::size_t j = 0; j < left.size(); ++j) {
            if (!(remaining & (std::uint64_t{1} << left[j])))
                continue;
            if (!isControlQubit(w, left.size(), j))
                return false;
            remaining &= ~(std::uint64_t{1} << left[j]);
            w = stripControl(w, left.size(), j);
            left.erase(left.begin() + static_cast<std::ptrdiff_t>(j));
            strippedOne = true;
            break;
        }
        if (!strippedOne)
            return false; // a ctrl bit is not among the operand bits
    }
    if (left.size() != k.targets)
        return false;

    const std::size_t td = std::size_t{1} << k.targets;
    switch (k.op) {
      case GateKernel::Op::Identity:
        for (std::size_t r = 0; r < td; ++r)
            for (std::size_t c = 0; c < td; ++c)
                if (r == c ? !nearOne(w[r * td + c])
                           : !nearZero(w[r * td + c]))
                    return false;
        break;
      case GateKernel::Op::GlobalPhase: {
        for (std::size_t r = 0; r < td; ++r)
            for (std::size_t c = 0; c < td; ++c)
                if (r == c ? !nearEqual(w[r * td + c], w[0])
                           : !nearZero(w[r * td + c]))
                    return false;
        k.scalar = w[0];
        break;
      }
      case GateKernel::Op::Diag: {
        for (std::size_t r = 0; r < td; ++r)
            for (std::size_t c = 0; c < td; ++c)
                if (r != c && !nearZero(w[r * td + c]))
                    return false;
        for (std::size_t l = 0; l < td; ++l)
            k.diag[l] = w[l * td + l];
        break;
      }
      case GateKernel::Op::Perm: {
        // The stored pattern must still cover every non-zero entry (a
        // pattern entry itself going to zero is fine — the sweep writes 0).
        for (std::size_t r = 0; r < td; ++r)
            for (std::size_t c = 0; c < td; ++c)
                if (c != k.perm[r] && !nearZero(w[r * td + c]))
                    return false;
        for (std::size_t r = 0; r < td; ++r)
            k.permW[r] = w[r * td + k.perm[r]];
        break;
      }
      case GateKernel::Op::Generic: {
        for (std::size_t r = 0; r < td; ++r)
            for (std::size_t c = 0; c < td; ++c)
                k.reduced(r, c) = w[r * td + c];
        break;
      }
    }
    k.full = m;
    return true;
}

namespace {

/** Per-class invocation counters — the kernel mix a profile reports. */
obs::Counter&
kernelClassCounter(GateKernel::Op op)
{
    static obs::Counter identity("exec.kernel.identity");
    static obs::Counter globalPhase("exec.kernel.globalPhase");
    static obs::Counter diag("exec.kernel.diag");
    static obs::Counter perm("exec.kernel.perm");
    static obs::Counter generic("exec.kernel.generic");
    switch (op) {
      case GateKernel::Op::Identity:
        return identity;
      case GateKernel::Op::GlobalPhase:
        return globalPhase;
      case GateKernel::Op::Diag:
        return diag;
      case GateKernel::Op::Perm:
        return perm;
      default:
        return generic;
    }
}

/**
 * Records the dispatch level of the first sweep once per process, so a
 * profile or bench dump states which instruction set actually ran
 * (0 = off/scalar, 1 = avx2, 2 = avx512).
 */
void
recordSimdLevel(SimdLevel level)
{
    static obs::Counter gauge("exec.kernel.simdLevel");
    static std::atomic<bool> recorded{false};
    bool expected = false;
    if (recorded.compare_exchange_strong(expected, true,
                                         std::memory_order_relaxed))
        gauge.add(static_cast<std::uint64_t>(level));
}

/**
 * Same four-product complex multiply the run primitives use (see
 * kernel_runs.h). For finite operands this is exactly what the library
 * operator* computes, minus its NaN-recovery branch — so the gather path
 * matches the blocked path's arithmetic and skips the __muldc3 call.
 */
inline Complex
cmul(const Complex& a, const Complex& b)
{
    return Complex(a.real() * b.real() - a.imag() * b.imag(),
                   a.real() * b.imag() + a.imag() * b.real());
}

/**
 * Decomposes the free-index span [b, e) into *runs*: maximal subspans whose
 * expanded base indices are consecutive. Free bits below occupied[0] map
 * 1:1 to the low base bits, so a run has length 2^occupied[0], clipped to
 * the span (and therefore to chunk boundaries — power-of-two grains always
 * align). Calls f(base, len) per run. Requires occupiedCount >= 1.
 */
template <typename RunFn>
inline void
forEachRun(const GateKernel& k, std::uint64_t b, std::uint64_t e,
           const RunFn& f)
{
    const std::uint64_t runLen = std::uint64_t{1} << k.occupied[0];
    std::uint64_t j = b;
    while (j < e) {
        const std::uint64_t len =
            std::min(runLen - (j & (runLen - 1)), e - j);
        f(expandBase(j, k.occupied.data(), k.occupiedCount, k.ctrlMask), len);
        j += len;
    }
}

/** Minimum run length for the blocked path; below this the per-run setup
 *  outweighs the unit-stride inner loop and the gather path wins. The
 *  threshold depends only on kernel structure — never on the simd level or
 *  thread count — so the path choice cannot break bit-parity. */
constexpr std::uint64_t kMinRunLen = 4;

/**
 * True if the kernel shape has a contiguous-run primitive: residual width
 * 1 or 2 (diag/dense; 2-target perms gain nothing over gather) and runs
 * long enough to amortize per-run dispatch.
 */
bool
canBlockSweep(const GateKernel& k)
{
    if ((std::uint64_t{1} << k.occupied[0]) < kMinRunLen)
        return false;
    switch (k.op) {
      case GateKernel::Op::Diag:
      case GateKernel::Op::Generic:
        return k.targets <= 2;
      case GateKernel::Op::Perm:
        return k.targets == 1;
      default:
        return false;
    }
}

/**
 * The legacy gather sweep: one expandBase + index-gather per residual
 * group. Handles every class and shape; the blocked path above it only
 * replaces the Diag/Perm/Generic shapes with a run primitive.
 */
void
gatherSweep(const GateKernel& k, Complex* amps, std::uint64_t dim,
            const ExecPolicy& policy, const Complex& preScale)
{
    const unsigned t = k.targets;
    const unsigned td = 1u << t;
    const std::uint64_t nFree = dim >> k.occupiedCount;
    std::uint64_t stride[3] = {0, 0, 0};
    for (unsigned j = 0; j < t; ++j)
        stride[j] = std::uint64_t{1} << k.targetBits[j];

    switch (k.op) {
      case GateKernel::Op::Diag: {
        std::array<Complex, 8> d;
        for (unsigned l = 0; l < td; ++l)
            d[l] = k.diag[l] * preScale;
        parallelFor(policy, nFree, [&](std::uint64_t b, std::uint64_t e) {
            for (std::uint64_t j = b; j < e; ++j) {
                const std::uint64_t base =
                    expandBase(j, k.occupied.data(), k.occupiedCount,
                               k.ctrlMask);
                std::uint64_t idx[8];
                gatherIndices(base, stride, t, idx);
                for (unsigned l = 0; l < td; ++l)
                    amps[idx[l]] = cmul(amps[idx[l]], d[l]);
            }
        });
        return;
      }
      case GateKernel::Op::Perm: {
        std::array<Complex, 8> pw;
        for (unsigned l = 0; l < td; ++l)
            pw[l] = k.permW[l] * preScale;
        parallelFor(policy, nFree, [&](std::uint64_t b, std::uint64_t e) {
            for (std::uint64_t j = b; j < e; ++j) {
                const std::uint64_t base =
                    expandBase(j, k.occupied.data(), k.occupiedCount,
                               k.ctrlMask);
                std::uint64_t idx[8];
                gatherIndices(base, stride, t, idx);
                Complex in[8];
                for (unsigned l = 0; l < td; ++l)
                    in[l] = amps[idx[l]];
                for (unsigned r = 0; r < td; ++r)
                    amps[idx[r]] = cmul(pw[r], in[k.perm[r]]);
            }
        });
        return;
      }
      case GateKernel::Op::Generic: {
        std::array<Complex, 64> rm;
        for (unsigned r = 0; r < td; ++r)
            for (unsigned c = 0; c < td; ++c)
                rm[r * td + c] = k.reduced(r, c) * preScale;
        parallelFor(policy, nFree, [&](std::uint64_t b, std::uint64_t e) {
            for (std::uint64_t j = b; j < e; ++j) {
                const std::uint64_t base =
                    expandBase(j, k.occupied.data(), k.occupiedCount,
                               k.ctrlMask);
                std::uint64_t idx[8];
                gatherIndices(base, stride, t, idx);
                Complex in[8], out[8];
                for (unsigned l = 0; l < td; ++l)
                    in[l] = amps[idx[l]];
                for (unsigned r = 0; r < td; ++r) {
                    // First-product seed, left-to-right — the association
                    // every run primitive reproduces (see kernel_runs.h).
                    Complex acc = cmul(rm[r * td], in[0]);
                    for (unsigned c = 1; c < td; ++c)
                        acc += cmul(rm[r * td + c], in[c]);
                    out[r] = acc;
                }
                for (unsigned l = 0; l < td; ++l)
                    amps[idx[l]] = out[l];
            }
        });
        return;
      }
      case GateKernel::Op::Identity:
      case GateKernel::Op::GlobalPhase:
        return; // callers handle these before sweeping
    }
}

/**
 * The cache-blocked sweep: iterates runs of consecutive base indices and
 * hands each run's 2^targets unit-stride amplitude streams to one of the
 * simd run primitives. Both halves of every high-stride amplitude pair stay
 * resident while a grain-sized block is processed. Caller guarantees
 * canBlockSweep(k).
 */
void
blockedSweep(const GateKernel& k, Complex* amps, std::uint64_t dim,
             const ExecPolicy& policy, const Complex& preScale,
             const KernelRunOps& ops)
{
    const unsigned t = k.targets;
    const std::uint64_t nFree = dim >> k.occupiedCount;
    std::uint64_t stride[3] = {0, 0, 0};
    for (unsigned j = 0; j < t; ++j)
        stride[j] = std::uint64_t{1} << k.targetBits[j];

    // Stream offsets: the l-th residual basis state of a group lives at
    // base + offs[l] (gatherIndices of base 0).
    std::uint64_t offs[8] = {0};
    gatherIndices(0, stride, t, offs);

    switch (k.op) {
      case GateKernel::Op::Diag: {
        if (t == 0) {
            // Fully-controlled phase (CZ, CCZ, ...): the residual is the
            // 1x1 matrix diag[0], one stream per run.
            const Complex d0 = k.diag[0] * preScale;
            parallelFor(policy, nFree, [&](std::uint64_t b, std::uint64_t e) {
                forEachRun(k, b, e, [&](std::uint64_t base, std::uint64_t n) {
                    ops.scale(amps + base, n, d0);
                });
            });
        } else if (t == 1) {
            const Complex d0 = k.diag[0] * preScale;
            const Complex d1 = k.diag[1] * preScale;
            parallelFor(policy, nFree, [&](std::uint64_t b, std::uint64_t e) {
                forEachRun(k, b, e, [&](std::uint64_t base, std::uint64_t n) {
                    ops.diag2(amps + base, amps + base + offs[1], n, d0, d1);
                });
            });
        } else {
            Complex d[4];
            for (unsigned l = 0; l < 4; ++l)
                d[l] = k.diag[l] * preScale;
            parallelFor(policy, nFree, [&](std::uint64_t b, std::uint64_t e) {
                forEachRun(k, b, e, [&](std::uint64_t base, std::uint64_t n) {
                    ops.diag4(amps + base, amps + base + offs[1],
                              amps + base + offs[2], amps + base + offs[3],
                              n, d);
                });
            });
        }
        return;
      }
      case GateKernel::Op::Perm: {
        // A 1-target non-diagonal perm is necessarily the swap pattern.
        const Complex w0 = k.permW[0] * preScale;
        const Complex w1 = k.permW[1] * preScale;
        parallelFor(policy, nFree, [&](std::uint64_t b, std::uint64_t e) {
            forEachRun(k, b, e, [&](std::uint64_t base, std::uint64_t n) {
                ops.swap2(amps + base, amps + base + offs[1], n, w0, w1);
            });
        });
        return;
      }
      case GateKernel::Op::Generic: {
        if (t == 1) {
            Complex m[4];
            for (unsigned e2 = 0; e2 < 4; ++e2)
                m[e2] = k.reduced(e2 / 2, e2 % 2) * preScale;
            parallelFor(policy, nFree, [&](std::uint64_t b, std::uint64_t e) {
                forEachRun(k, b, e, [&](std::uint64_t base, std::uint64_t n) {
                    ops.mat2(amps + base, amps + base + offs[1], n, m);
                });
            });
        } else {
            Complex m[16];
            for (unsigned e2 = 0; e2 < 16; ++e2)
                m[e2] = k.reduced(e2 / 4, e2 % 4) * preScale;
            parallelFor(policy, nFree, [&](std::uint64_t b, std::uint64_t e) {
                forEachRun(k, b, e, [&](std::uint64_t base, std::uint64_t n) {
                    ops.mat4(amps + base, amps + base + offs[1],
                             amps + base + offs[2], amps + base + offs[3],
                             n, m);
                });
            });
        }
        return;
      }
      case GateKernel::Op::Identity:
      case GateKernel::Op::GlobalPhase:
        return; // callers handle these before sweeping
    }
}

} // namespace

void
applyKernel(const GateKernel& k, Complex* amps, std::uint64_t dim,
            const ExecPolicy& policy, const Complex& preScale)
{
    // Counts invocations by class as classified here; the scaled
    // re-classification path below recurses, so its final class is counted
    // once more under the class that actually swept the state.
    kernelClassCounter(k.op).add();

    const bool scaled = preScale != Complex{1.0, 0.0};

    if (!scaled && k.op == GateKernel::Op::Identity)
        return;

    // Scaling breaks the control structure (s*E is no longer identity on
    // the non-control subspace), so re-classify the scaled full matrix —
    // it lands in an uncontrolled specialized class (e.g. damping E0
    // becomes a plain Diag) and stays a single pass.
    if (scaled && (k.ctrlMask != 0 || k.op == GateKernel::Op::Identity)) {
        std::vector<std::uint32_t> bits(k.fullBits.begin(),
                                        k.fullBits.begin() + k.arity);
        applyKernel(compileKernel(k.full * preScale, bits), amps, dim, policy);
        return;
    }

    const KernelRunOps& ops = kernelRunOps(policy.resolvedSimd());
    recordSimdLevel(ops.level);

    if (k.op == GateKernel::Op::GlobalPhase) {
        const Complex s = k.scalar * preScale;
        parallelFor(policy, dim, [&](std::uint64_t b, std::uint64_t e) {
            ops.scale(amps + b, e - b, s);
        });
        return;
    }

    // Path choice is a function of kernel structure only (class, residual
    // width, run length) — never of the simd level or thread count — so a
    // given kernel always takes the same path and payloads stay
    // bit-identical across dispatch levels.
    static obs::Counter blockedSweeps("exec.kernel.blockedSweeps");
    static obs::Counter gatherSweeps("exec.kernel.gatherSweeps");
    if (canBlockSweep(k)) {
        blockedSweeps.add();
        blockedSweep(k, amps, dim, policy, preScale, ops);
    } else {
        gatherSweeps.add();
        gatherSweep(k, amps, dim, policy, preScale);
    }
}

void
applyKernelUnblocked(const GateKernel& k, Complex* amps, std::uint64_t dim,
                     const ExecPolicy& policy, const Complex& preScale)
{
    const bool scaled = preScale != Complex{1.0, 0.0};

    if (!scaled && k.op == GateKernel::Op::Identity)
        return;

    if (scaled && (k.ctrlMask != 0 || k.op == GateKernel::Op::Identity)) {
        std::vector<std::uint32_t> bits(k.fullBits.begin(),
                                        k.fullBits.begin() + k.arity);
        applyKernelUnblocked(compileKernel(k.full * preScale, bits), amps,
                             dim, policy);
        return;
    }

    if (k.op == GateKernel::Op::GlobalPhase) {
        const Complex s = k.scalar * preScale;
        parallelFor(policy, dim, [&](std::uint64_t b, std::uint64_t e) {
            for (std::uint64_t i = b; i < e; ++i)
                amps[i] = cmul(amps[i], s);
        });
        return;
    }

    gatherSweep(k, amps, dim, policy, preScale);
}

double
normAfterKernel(const GateKernel& k, const Complex* amps, std::uint64_t dim,
                const ExecPolicy& policy)
{
    const unsigned a = k.arity;
    const unsigned ad = 1u << a;
    const std::uint64_t nGroups = dim >> a;
    std::uint64_t stride[3] = {0, 0, 0};
    std::uint32_t occ[3] = {0, 0, 0};
    for (unsigned j = 0; j < a; ++j) {
        stride[j] = std::uint64_t{1} << k.fullBits[j];
        occ[j] = k.fullBits[j];
    }
    std::sort(occ, occ + a);

    return parallelSum(policy, nGroups,
                       [&](std::uint64_t b, std::uint64_t e) {
        double partial = 0.0;
        for (std::uint64_t j = b; j < e; ++j) {
            const std::uint64_t base = expandBase(j, occ, a, 0);
            std::uint64_t idx[8];
            gatherIndices(base, stride, a, idx);
            Complex in[8];
            for (unsigned l = 0; l < ad; ++l)
                in[l] = amps[idx[l]];
            for (unsigned r = 0; r < ad; ++r) {
                Complex acc{};
                for (unsigned c = 0; c < ad; ++c)
                    acc += k.full(r, c) * in[c];
                partial += norm2(acc);
            }
        }
        return partial;
    });
}

void
applyKernelReference(const GateKernel& k, Complex* amps, std::uint64_t dim)
{
    const unsigned a = k.arity;
    const unsigned ad = 1u << a;
    const std::uint64_t nGroups = dim >> a;
    std::uint64_t stride[3] = {0, 0, 0};
    std::uint32_t occ[3] = {0, 0, 0};
    for (unsigned j = 0; j < a; ++j) {
        stride[j] = std::uint64_t{1} << k.fullBits[j];
        occ[j] = k.fullBits[j];
    }
    std::sort(occ, occ + a);

    for (std::uint64_t j = 0; j < nGroups; ++j) {
        const std::uint64_t base = expandBase(j, occ, a, 0);
        std::uint64_t idx[8];
        gatherIndices(base, stride, a, idx);
        Complex in[8], out[8];
        for (unsigned l = 0; l < ad; ++l)
            in[l] = amps[idx[l]];
        for (unsigned r = 0; r < ad; ++r) {
            Complex acc{};
            for (unsigned c = 0; c < ad; ++c)
                acc += k.full(r, c) * in[c];
            out[r] = acc;
        }
        for (unsigned l = 0; l < ad; ++l)
            amps[idx[l]] = out[l];
    }
}

} // namespace qkc
