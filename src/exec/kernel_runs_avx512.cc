/**
 * AVX-512 implementation of the contiguous-run kernel primitives: 512-bit
 * vectors holding four interleaved complex<double> amplitudes.
 *
 * AVX-512 has no `addsub`, so the subtraction in the complex multiply is
 * folded into the constant instead: the broadcast imaginary part carries a
 * negated copy in each real slot ([-ci, +ci, ...]), and the combine is a
 * plain add. (-b)*x is exactly -(b*x) and a + (-y) is exactly a - y in
 * IEEE-754, so the payload stays bit-identical to the scalar/AVX2 paths.
 * No FMA intrinsics, and the TU is compiled with -ffp-contract=off.
 *
 * Compiled with -mavx512f -mavx512dq only when the toolchain supports them;
 * otherwise the QKC_SIMD_AVX512 guard leaves just the null accessor.
 */
#include "exec/kernel_runs.h"

#if defined(QKC_SIMD_AVX512)

#include <immintrin.h>

namespace qkc {

namespace {

/** A complex constant broadcast across all four vector slots. */
struct BConst {
    __m512d re;    ///< [cr, cr, ...]
    __m512d negim; ///< [-ci, +ci, -ci, +ci, ...]
};

inline BConst
broadcast(const Complex& c)
{
    const double ci = c.imag();
    return {_mm512_set1_pd(c.real()),
            _mm512_setr_pd(-ci, ci, -ci, ci, -ci, ci, -ci, ci)};
}

/**
 * v * c for four interleaved complex amplitudes: the scalar four-product
 * form, with the real-slot subtraction carried by the negated constant.
 */
inline __m512d
cmulv(__m512d v, const BConst& c)
{
    const __m512d t1 = _mm512_mul_pd(v, c.re);
    const __m512d t2 = _mm512_mul_pd(_mm512_permute_pd(v, 0x55), c.negim);
    return _mm512_add_pd(t1, t2);
}

inline Complex
cmul(const Complex& a, const Complex& b)
{
    return Complex(a.real() * b.real() - a.imag() * b.imag(),
                   a.real() * b.imag() + a.imag() * b.real());
}

void
scaleAvx512(Complex* a, std::uint64_t n, const Complex& s)
{
    const BConst c = broadcast(s);
    double* p = reinterpret_cast<double*>(a);
    std::uint64_t i = 0;
    for (; i + 4 <= n; i += 4, p += 8)
        _mm512_storeu_pd(p, cmulv(_mm512_loadu_pd(p), c));
    for (; i < n; ++i)
        a[i] = cmul(a[i], s);
}

void
diag2Avx512(Complex* a0, Complex* a1, std::uint64_t n, const Complex& d0,
            const Complex& d1)
{
    const BConst c0 = broadcast(d0);
    const BConst c1 = broadcast(d1);
    double* p0 = reinterpret_cast<double*>(a0);
    double* p1 = reinterpret_cast<double*>(a1);
    std::uint64_t i = 0;
    for (; i + 4 <= n; i += 4, p0 += 8, p1 += 8) {
        _mm512_storeu_pd(p0, cmulv(_mm512_loadu_pd(p0), c0));
        _mm512_storeu_pd(p1, cmulv(_mm512_loadu_pd(p1), c1));
    }
    for (; i < n; ++i) {
        a0[i] = cmul(a0[i], d0);
        a1[i] = cmul(a1[i], d1);
    }
}

void
diag4Avx512(Complex* a0, Complex* a1, Complex* a2, Complex* a3,
            std::uint64_t n, const Complex* d)
{
    const BConst c0 = broadcast(d[0]);
    const BConst c1 = broadcast(d[1]);
    const BConst c2 = broadcast(d[2]);
    const BConst c3 = broadcast(d[3]);
    double* p0 = reinterpret_cast<double*>(a0);
    double* p1 = reinterpret_cast<double*>(a1);
    double* p2 = reinterpret_cast<double*>(a2);
    double* p3 = reinterpret_cast<double*>(a3);
    std::uint64_t i = 0;
    for (; i + 4 <= n; i += 4, p0 += 8, p1 += 8, p2 += 8, p3 += 8) {
        _mm512_storeu_pd(p0, cmulv(_mm512_loadu_pd(p0), c0));
        _mm512_storeu_pd(p1, cmulv(_mm512_loadu_pd(p1), c1));
        _mm512_storeu_pd(p2, cmulv(_mm512_loadu_pd(p2), c2));
        _mm512_storeu_pd(p3, cmulv(_mm512_loadu_pd(p3), c3));
    }
    for (; i < n; ++i) {
        a0[i] = cmul(a0[i], d[0]);
        a1[i] = cmul(a1[i], d[1]);
        a2[i] = cmul(a2[i], d[2]);
        a3[i] = cmul(a3[i], d[3]);
    }
}

void
swap2Avx512(Complex* a0, Complex* a1, std::uint64_t n, const Complex& w0,
            const Complex& w1)
{
    const BConst c0 = broadcast(w0);
    const BConst c1 = broadcast(w1);
    double* p0 = reinterpret_cast<double*>(a0);
    double* p1 = reinterpret_cast<double*>(a1);
    std::uint64_t i = 0;
    for (; i + 4 <= n; i += 4, p0 += 8, p1 += 8) {
        const __m512d v0 = _mm512_loadu_pd(p0);
        const __m512d v1 = _mm512_loadu_pd(p1);
        _mm512_storeu_pd(p0, cmulv(v1, c0));
        _mm512_storeu_pd(p1, cmulv(v0, c1));
    }
    for (; i < n; ++i) {
        const Complex in0 = a0[i];
        a0[i] = cmul(w0, a1[i]);
        a1[i] = cmul(w1, in0);
    }
}

void
mat2Avx512(Complex* a0, Complex* a1, std::uint64_t n, const Complex* m)
{
    const BConst c00 = broadcast(m[0]);
    const BConst c01 = broadcast(m[1]);
    const BConst c10 = broadcast(m[2]);
    const BConst c11 = broadcast(m[3]);
    double* p0 = reinterpret_cast<double*>(a0);
    double* p1 = reinterpret_cast<double*>(a1);
    std::uint64_t i = 0;
    for (; i + 4 <= n; i += 4, p0 += 8, p1 += 8) {
        const __m512d x = _mm512_loadu_pd(p0);
        const __m512d y = _mm512_loadu_pd(p1);
        _mm512_storeu_pd(p0, _mm512_add_pd(cmulv(x, c00), cmulv(y, c01)));
        _mm512_storeu_pd(p1, _mm512_add_pd(cmulv(x, c10), cmulv(y, c11)));
    }
    for (; i < n; ++i) {
        const Complex x = a0[i];
        const Complex y = a1[i];
        a0[i] = cmul(m[0], x) + cmul(m[1], y);
        a1[i] = cmul(m[2], x) + cmul(m[3], y);
    }
}

void
mat4Avx512(Complex* a0, Complex* a1, Complex* a2, Complex* a3,
           std::uint64_t n, const Complex* m)
{
    BConst c[16];
    for (int e = 0; e < 16; ++e)
        c[e] = broadcast(m[e]);
    double* p[4] = {
        reinterpret_cast<double*>(a0), reinterpret_cast<double*>(a1),
        reinterpret_cast<double*>(a2), reinterpret_cast<double*>(a3)};
    std::uint64_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m512d x0 = _mm512_loadu_pd(p[0]);
        const __m512d x1 = _mm512_loadu_pd(p[1]);
        const __m512d x2 = _mm512_loadu_pd(p[2]);
        const __m512d x3 = _mm512_loadu_pd(p[3]);
        for (int r = 0; r < 4; ++r) {
            // Same association as the scalar path: ((p0+p1)+p2)+p3.
            const __m512d acc = _mm512_add_pd(
                _mm512_add_pd(
                    _mm512_add_pd(cmulv(x0, c[4 * r]), cmulv(x1, c[4 * r + 1])),
                    cmulv(x2, c[4 * r + 2])),
                cmulv(x3, c[4 * r + 3]));
            _mm512_storeu_pd(p[r], acc);
            p[r] += 8;
        }
    }
    for (; i < n; ++i) {
        const Complex x0 = a0[i];
        const Complex x1 = a1[i];
        const Complex x2 = a2[i];
        const Complex x3 = a3[i];
        a0[i] = ((cmul(m[0], x0) + cmul(m[1], x1)) + cmul(m[2], x2)) +
                cmul(m[3], x3);
        a1[i] = ((cmul(m[4], x0) + cmul(m[5], x1)) + cmul(m[6], x2)) +
                cmul(m[7], x3);
        a2[i] = ((cmul(m[8], x0) + cmul(m[9], x1)) + cmul(m[10], x2)) +
                cmul(m[11], x3);
        a3[i] = ((cmul(m[12], x0) + cmul(m[13], x1)) + cmul(m[14], x2)) +
                cmul(m[15], x3);
    }
}

} // namespace

const KernelRunOps*
avx512RunOps()
{
    static const KernelRunOps ops = {
        SimdLevel::Avx512, scaleAvx512, diag2Avx512, diag4Avx512,
        swap2Avx512,       mat2Avx512,  mat4Avx512,
    };
    return &ops;
}

} // namespace qkc

#else // !QKC_SIMD_AVX512

namespace qkc {

const KernelRunOps*
avx512RunOps()
{
    return nullptr;
}

} // namespace qkc

#endif
