/**
 * Scalar reference implementation of the contiguous-run kernel primitives.
 * This is both the portable fallback and the `simd=off` half of the
 * bit-parity contract: the vector levels reproduce exactly these
 * elementwise operations (same products, same addition order), so their
 * results are bit-identical to this file's.
 */
#include "exec/kernel_runs.h"

namespace qkc {

namespace {

/**
 * The four-product complex multiply, written out so every dispatch level
 * shares one arithmetic shape: (ar*br - ai*bi, ar*bi + ai*br). This is the
 * same expression std::complex<double>::operator* evaluates for finite
 * operands; spelling it explicitly keeps the compiler from substituting a
 * different association on any one path.
 */
inline Complex
cmul(const Complex& a, const Complex& b)
{
    return Complex(a.real() * b.real() - a.imag() * b.imag(),
                   a.real() * b.imag() + a.imag() * b.real());
}

void
scaleScalar(Complex* a, std::uint64_t n, const Complex& s)
{
    for (std::uint64_t i = 0; i < n; ++i)
        a[i] = cmul(a[i], s);
}

void
diag2Scalar(Complex* a0, Complex* a1, std::uint64_t n, const Complex& d0,
            const Complex& d1)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        a0[i] = cmul(a0[i], d0);
        a1[i] = cmul(a1[i], d1);
    }
}

void
diag4Scalar(Complex* a0, Complex* a1, Complex* a2, Complex* a3,
            std::uint64_t n, const Complex* d)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        a0[i] = cmul(a0[i], d[0]);
        a1[i] = cmul(a1[i], d[1]);
        a2[i] = cmul(a2[i], d[2]);
        a3[i] = cmul(a3[i], d[3]);
    }
}

void
swap2Scalar(Complex* a0, Complex* a1, std::uint64_t n, const Complex& w0,
            const Complex& w1)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        const Complex in0 = a0[i];
        a0[i] = cmul(w0, a1[i]);
        a1[i] = cmul(w1, in0);
    }
}

void
mat2Scalar(Complex* a0, Complex* a1, std::uint64_t n, const Complex* m)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        const Complex x = a0[i];
        const Complex y = a1[i];
        a0[i] = cmul(m[0], x) + cmul(m[1], y);
        a1[i] = cmul(m[2], x) + cmul(m[3], y);
    }
}

void
mat4Scalar(Complex* a0, Complex* a1, Complex* a2, Complex* a3,
           std::uint64_t n, const Complex* m)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        const Complex x0 = a0[i];
        const Complex x1 = a1[i];
        const Complex x2 = a2[i];
        const Complex x3 = a3[i];
        // Left-to-right accumulation from the first product — the shared
        // association every level reproduces.
        a0[i] = ((cmul(m[0], x0) + cmul(m[1], x1)) + cmul(m[2], x2)) +
                cmul(m[3], x3);
        a1[i] = ((cmul(m[4], x0) + cmul(m[5], x1)) + cmul(m[6], x2)) +
                cmul(m[7], x3);
        a2[i] = ((cmul(m[8], x0) + cmul(m[9], x1)) + cmul(m[10], x2)) +
                cmul(m[11], x3);
        a3[i] = ((cmul(m[12], x0) + cmul(m[13], x1)) + cmul(m[14], x2)) +
                cmul(m[15], x3);
    }
}

} // namespace

const KernelRunOps&
scalarRunOps()
{
    static const KernelRunOps ops = {
        SimdLevel::Scalar, scaleScalar, diag2Scalar, diag4Scalar,
        swap2Scalar,       mat2Scalar,  mat4Scalar,
    };
    return ops;
}

const KernelRunOps&
kernelRunOps(SimdLevel level)
{
    if (level == SimdLevel::Avx512) {
        if (const KernelRunOps* ops = avx512RunOps())
            return *ops;
        level = SimdLevel::Avx2;
    }
    if (level == SimdLevel::Avx2) {
        if (const KernelRunOps* ops = avx2RunOps())
            return *ops;
    }
    return scalarRunOps();
}

} // namespace qkc
