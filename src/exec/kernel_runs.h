#ifndef QKC_EXEC_KERNEL_RUNS_H
#define QKC_EXEC_KERNEL_RUNS_H

#include <cstdint>

#include "exec/simd.h"
#include "linalg/types.h"

namespace qkc {

/**
 * The contiguous-run primitives behind the cache-blocked kernel sweeps.
 *
 * applyKernel decomposes a sweep into *runs*: maximal spans of the free
 * index space whose base indices are consecutive (length 2^lowestOccupiedBit,
 * clipped to chunk boundaries). Within a run, the l-th amplitude of every
 * residual basis group lives at `a_l + i` for consecutive i, so the inner
 * loop is a unit-stride pass over 1, 2 or 4 parallel streams — the shape
 * wide registers want, and the shape that keeps both halves of a high-stride
 * amplitude pair resident while a block is processed.
 *
 * Contract shared by every implementation level: identical elementwise
 * arithmetic in identical order. A complex multiply is the four-product
 * form (ar*br - ai*bi, ar*bi + ai*br) with explicit mul/add — no FMA
 * contraction — and matrix-row accumulation is left-to-right starting from
 * the first product (no zero seed). Results are therefore bit-identical
 * across Scalar / Avx2 / Avx512, which is what lets `simd=off` serve as
 * the reference in the parity suite.
 *
 * Pointers may alias only as documented: the streams of one call are
 * disjoint (they differ by target-bit strides).
 */
struct KernelRunOps {
    SimdLevel level;

    /** a[i] *= s (GlobalPhase sweeps, 0-target diag runs). */
    void (*scale)(Complex* a, std::uint64_t n, const Complex& s);

    /** a0[i] *= d0; a1[i] *= d1 (1-target Diag). */
    void (*diag2)(Complex* a0, Complex* a1, std::uint64_t n,
                  const Complex& d0, const Complex& d1);

    /** al[i] *= dl for four streams (2-target Diag — the ZZ family). */
    void (*diag4)(Complex* a0, Complex* a1, Complex* a2, Complex* a3,
                  std::uint64_t n, const Complex* d);

    /** (a0, a1) <- (w0*a1, w1*a0) (1-target Perm — the X/CNOT family). */
    void (*swap2)(Complex* a0, Complex* a1, std::uint64_t n,
                  const Complex& w0, const Complex& w1);

    /** Dense 2x2: (a0, a1) <- (m0*a0 + m1*a1, m2*a0 + m3*a1), m row-major. */
    void (*mat2)(Complex* a0, Complex* a1, std::uint64_t n, const Complex* m);

    /** Dense 4x4 on four streams, m row-major (fused 2q kernels). */
    void (*mat4)(Complex* a0, Complex* a1, Complex* a2, Complex* a3,
                 std::uint64_t n, const Complex* m);
};

/** The scalar table — always available, and the `simd=off` reference. */
const KernelRunOps& scalarRunOps();

/** Per-level tables; null when the build lacks the instruction set. */
const KernelRunOps* avx2RunOps();
const KernelRunOps* avx512RunOps();

/** The table for a resolved level (falls back toward scalar if absent). */
const KernelRunOps& kernelRunOps(SimdLevel level);

} // namespace qkc

#endif // QKC_EXEC_KERNEL_RUNS_H
