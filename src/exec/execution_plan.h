#ifndef QKC_EXEC_EXECUTION_PLAN_H
#define QKC_EXEC_EXECUTION_PLAN_H

#include <cstddef>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/fusion.h"
#include "circuit/simulation_path.h"
#include "exec/gate_kernels.h"
#include "exec/thread_pool.h"

namespace qkc {

/**
 * One circuit operation lowered for dense state-vector execution: either a
 * compiled gate kernel or a noise channel whose Kraus operators have each
 * been compiled (damping E0 classifies as Diag, mixture operators as scaled
 * Paulis, ...). `opIndex` refers into the owning plan's circuit.
 */
struct PlannedOp {
    std::size_t opIndex = 0;
    bool isChannel = false;
    GateKernel gate;                ///< valid when !isChannel
    std::vector<GateKernel> kraus;  ///< valid when isChannel
};

/**
 * A circuit prepared for repeated dense execution: fusion has run (if the
 * policy asks for it) and every gate and Kraus matrix has been inspected
 * and classified exactly once. Trajectory sampling re-executes the plan per
 * shot without touching a Matrix again.
 */
struct ExecutionPlan {
    std::size_t numQubits = 0;
    Circuit circuit{1};       ///< the (possibly fused) circuit kernels map to
    std::vector<PlannedOp> ops;
    FusionStats fusion;       ///< zeros when fusion was disabled
    bool fusionEnabled = false;
    FusionRecipe recipe;      ///< valid when fusionEnabled

    /**
     * Path scheduling state. `pathOptions` records the planner request;
     * when it is active (pairwise/bracket), fusion runs with channel
     * barriers, the groups are materialized as parallel MxM tree tasks, and
     * rebinds skip frozen groups. `path` is the contraction tree over
     * `circuit` (the fused form), annotated on every plan — a linear chain
     * for the default planners.
     */
    PathOptions pathOptions;
    SimulationPath path;
    std::vector<bool> frozenGroup; ///< per recipe group; path-scheduled only
    std::vector<bool> frozenOp;    ///< per planned op; path-scheduled only
    std::uint64_t sourceHash = 0;  ///< structureHash of the source circuit
    std::size_t mmProducts = 0;    ///< MxM products at the last (re)build
    std::size_t cachedSubtrees = 0; ///< frozen groups kept by the last rebind

    /** True when MxM scheduling (not the linear chain) is in effect. */
    bool pathScheduled() const { return pathOptions.active(); }

    const NoiseChannel& channelAt(const PlannedOp& op) const
    {
        return std::get<NoiseChannel>(circuit.operations()[op.opIndex]);
    }
};

/**
 * Builds the execution plan for `circuit` under `policy` (fusion honored;
 * thread settings are not consulted here — they matter at apply time).
 * Kernel bit convention: qubit q lives at bit position numQubits-1-q,
 * matching the StateVector basis-index layout.
 */
ExecutionPlan planCircuit(const Circuit& circuit, const ExecPolicy& policy);

/**
 * Path-scheduled overload: lowers `circuit` to a SimulationPath under
 * `pathOptions` and builds the plan along it. Linear/Auto planners produce
 * exactly the plan of the two-argument overload (bit-for-bit: same fusion,
 * same kernels) plus the linear path annotation. Active planners
 * (pairwise/bracketN) run fusion with channel barriers — every fusion group
 * stays inside one channel-free path segment — and evaluate the groups' MxM
 * products as independent tree tasks on the shared ThreadPool before the
 * kernels are compiled for the final MxV sweep. Task results land in
 * per-group slots appended in group order, so the planned kernel stream is
 * identical at every thread count.
 */
ExecutionPlan planCircuit(const Circuit& circuit, const ExecPolicy& policy,
                          const PathOptions& pathOptions);

/**
 * True when `a` and `b` share a circuit *structure*: same qubit count and
 * op sequence (gate kinds, operand wires, channel shapes); gate parameters,
 * custom-gate entries and Kraus values are free to differ. This is the
 * precondition for rebinding an execution plan or an open backend session.
 */
bool sameStructure(const Circuit& a, const Circuit& b);

/**
 * A 64-bit digest of exactly the fields sameStructure compares: qubit
 * count, op sequence, gate kinds and wires, channel wires and Kraus
 * counts. sameStructure(a, b) implies structureHash(a) == structureHash(b),
 * so the hash can key a session cache (the server's LRU) without consulting
 * circuit contents; colliding structures are still correct — a bind onto a
 * cached session transparently re-plans when the structures differ.
 */
std::uint64_t structureHash(const Circuit& circuit);

/**
 * Rebinds `plan` to a new circuit with the same structure (the variational
 * fast path): replays the recorded fusion recipe on the new gate values and
 * refreshes every kernel in place — no greedy fusion pass, no kernel
 * re-classification. Returns false when the structure differs, a fused
 * product crossed the identity boundary, or a parameter change invalidated
 * a kernel's stored class; the plan may then be partially refreshed and the
 * caller must re-plan before executing it.
 */
bool tryRebindPlan(ExecutionPlan& plan, const Circuit& circuit);

} // namespace qkc

#endif // QKC_EXEC_EXECUTION_PLAN_H
