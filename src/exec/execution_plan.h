#ifndef QKC_EXEC_EXECUTION_PLAN_H
#define QKC_EXEC_EXECUTION_PLAN_H

#include <cstddef>
#include <vector>

#include "circuit/circuit.h"
#include "circuit/fusion.h"
#include "exec/gate_kernels.h"
#include "exec/thread_pool.h"

namespace qkc {

/**
 * One circuit operation lowered for dense state-vector execution: either a
 * compiled gate kernel or a noise channel whose Kraus operators have each
 * been compiled (damping E0 classifies as Diag, mixture operators as scaled
 * Paulis, ...). `opIndex` refers into the owning plan's circuit.
 */
struct PlannedOp {
    std::size_t opIndex = 0;
    bool isChannel = false;
    GateKernel gate;                ///< valid when !isChannel
    std::vector<GateKernel> kraus;  ///< valid when isChannel
};

/**
 * A circuit prepared for repeated dense execution: fusion has run (if the
 * policy asks for it) and every gate and Kraus matrix has been inspected
 * and classified exactly once. Trajectory sampling re-executes the plan per
 * shot without touching a Matrix again.
 */
struct ExecutionPlan {
    std::size_t numQubits = 0;
    Circuit circuit{1};       ///< the (possibly fused) circuit kernels map to
    std::vector<PlannedOp> ops;
    FusionStats fusion;       ///< zeros when fusion was disabled

    const NoiseChannel& channelAt(const PlannedOp& op) const
    {
        return std::get<NoiseChannel>(circuit.operations()[op.opIndex]);
    }
};

/**
 * Builds the execution plan for `circuit` under `policy` (fusion honored;
 * thread settings are not consulted here — they matter at apply time).
 * Kernel bit convention: qubit q lives at bit position numQubits-1-q,
 * matching the StateVector basis-index layout.
 */
ExecutionPlan planCircuit(const Circuit& circuit, const ExecPolicy& policy);

} // namespace qkc

#endif // QKC_EXEC_EXECUTION_PLAN_H
