#include "exec/mm_kernels.h"

#include <cstddef>
#include <stdexcept>

#include "exec/kernel_runs.h"

namespace qkc {

Matrix
mmProduct(const Matrix& a, const Matrix& b, SimdLevel level)
{
    const std::size_t n = a.rows();
    if ((n != 2 && n != 4) || a.cols() != n || b.rows() != n ||
        b.cols() != n)
        throw std::invalid_argument(
            "mmProduct expects two 2x2 or two 4x4 matrices");

    const KernelRunOps& ops = kernelRunOps(level);
    Complex m[16];
    Complex rows[4][4]; // stream r starts as row r of B, ends as row r of A*B
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c) {
            m[r * n + c] = a(r, c);
            rows[r][c] = b(r, c);
        }

    if (n == 2)
        ops.mat2(rows[0], rows[1], 2, m);
    else
        ops.mat4(rows[0], rows[1], rows[2], rows[3], 4, m);

    Matrix out(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            out(r, c) = rows[r][c];
    return out;
}

Matrix
mmProduct(const Matrix& a, const Matrix& b)
{
    return mmProduct(a, b, activeSimdLevel());
}

} // namespace qkc
