#ifndef QKC_EXEC_MM_KERNELS_H
#define QKC_EXEC_MM_KERNELS_H

#include "exec/simd.h"
#include "linalg/matrix.h"

namespace qkc {

/**
 * Dense MxM product of two 2x2 or two 4x4 operators (the operand sizes path
 * MM nodes produce) on the SIMD run primitives: B's rows are fed as the
 * mat2/mat4 streams with A as the sweep matrix, so row r of the result is
 * built by the same row-accumulation loop a state sweep uses.
 *
 * Like every run primitive, the arithmetic is the explicit four-product
 * complex multiply with no FMA contraction — results are bit-identical
 * across Scalar/Avx2/Avx512. Matrix::operator* compiles under the host
 * flags and MAY contract to FMA, so the two agree only to ~1e-12, which is
 * why plan materialization (whose output must be bit-identical to the
 * serial fusion pass) uses operator* and this entry point serves the
 * benches and the kernel parity suite.
 *
 * Throws std::invalid_argument unless both operands are square, equal-sized
 * and of dimension 2 or 4.
 */
Matrix mmProduct(const Matrix& a, const Matrix& b, SimdLevel level);

/** Same, at the process-wide dispatch level (activeSimdLevel()). */
Matrix mmProduct(const Matrix& a, const Matrix& b);

} // namespace qkc

#endif // QKC_EXEC_MM_KERNELS_H
