#include "exec/execution_plan.h"

#include "obs/trace.h"

namespace qkc {

namespace {

std::vector<std::uint32_t>
svBits(const std::vector<std::size_t>& qubits, std::size_t numQubits)
{
    std::vector<std::uint32_t> bits;
    bits.reserve(qubits.size());
    for (std::size_t q : qubits)
        bits.push_back(static_cast<std::uint32_t>(numQubits - 1 - q));
    return bits;
}

} // namespace

ExecutionPlan
planCircuit(const Circuit& circuit, const ExecPolicy& policy)
{
    QKC_SPAN("exec.plan");
    ExecutionPlan plan;
    plan.numQubits = circuit.numQubits();
    plan.fusionEnabled = policy.fuseGates;
    if (policy.fuseGates) {
        plan.recipe = planFusion(circuit, {});
        plan.circuit = *materializeFusion(plan.recipe, circuit, &plan.fusion);
    } else {
        plan.circuit = circuit;
    }

    const auto& ops = plan.circuit.operations();
    plan.ops.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        PlannedOp p;
        p.opIndex = i;
        if (const Gate* g = std::get_if<Gate>(&ops[i])) {
            p.gate = compileKernel(g->unitary(),
                                   svBits(g->qubits(), plan.numQubits));
        } else {
            const auto& ch = std::get<NoiseChannel>(ops[i]);
            p.isChannel = true;
            const auto bits = svBits(ch.qubits(), plan.numQubits);
            p.kraus.reserve(ch.krausOperators().size());
            for (const Matrix& e : ch.krausOperators())
                p.kraus.push_back(compileKernel(e, bits));
        }
        plan.ops.push_back(std::move(p));
    }
    return plan;
}

std::uint64_t
structureHash(const Circuit& circuit)
{
    // FNV-1a over the sameStructure fields, in the order that function
    // visits them; any edit there must be mirrored here (and vice versa) or
    // the cache-key invariant in the header comment breaks.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    mix(circuit.numQubits());
    mix(circuit.size());
    for (const Operation& op : circuit.operations()) {
        mix(op.index());
        if (const Gate* g = std::get_if<Gate>(&op)) {
            mix(static_cast<std::uint64_t>(g->kind()));
            mix(g->qubits().size());
            for (std::size_t q : g->qubits())
                mix(q);
        } else {
            const auto& ch = std::get<NoiseChannel>(op);
            mix(ch.qubits().size());
            for (std::size_t q : ch.qubits())
                mix(q);
            mix(ch.krausOperators().size());
        }
    }
    return h;
}

bool
sameStructure(const Circuit& a, const Circuit& b)
{
    if (a.numQubits() != b.numQubits() || a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Operation& oa = a.operations()[i];
        const Operation& ob = b.operations()[i];
        if (oa.index() != ob.index())
            return false;
        if (const Gate* ga = std::get_if<Gate>(&oa)) {
            const Gate& gb = std::get<Gate>(ob);
            if (ga->kind() != gb.kind() || ga->qubits() != gb.qubits())
                return false;
        } else {
            const auto& ca = std::get<NoiseChannel>(oa);
            const auto& cb = std::get<NoiseChannel>(ob);
            if (ca.qubits() != cb.qubits() ||
                ca.krausOperators().size() != cb.krausOperators().size())
                return false;
        }
    }
    return true;
}

bool
tryRebindPlan(ExecutionPlan& plan, const Circuit& circuit)
{
    // On any failure the caller re-plans from scratch, so a partially
    // refreshed plan is never executed.
    if (circuit.numQubits() != plan.numQubits)
        return false;

    if (plan.fusionEnabled) {
        // materializeFusion validates indices, kinds and wires itself.
        auto fused = materializeFusion(plan.recipe, circuit, &plan.fusion);
        if (!fused || fused->size() != plan.circuit.size())
            return false;
        plan.circuit = std::move(*fused);
    } else {
        if (!sameStructure(plan.circuit, circuit))
            return false;
        plan.circuit = circuit;
    }

    for (PlannedOp& op : plan.ops) {
        const Operation& o = plan.circuit.operations()[op.opIndex];
        if (op.isChannel) {
            const auto* ch = std::get_if<NoiseChannel>(&o);
            if (!ch || ch->krausOperators().size() != op.kraus.size())
                return false;
            for (std::size_t k = 0; k < op.kraus.size(); ++k)
                if (!tryRefreshKernel(op.kraus[k], ch->krausOperators()[k]))
                    return false;
        } else {
            const Gate* g = std::get_if<Gate>(&o);
            if (!g || !tryRefreshKernel(op.gate, g->unitary()))
                return false;
        }
    }
    return true;
}

} // namespace qkc
