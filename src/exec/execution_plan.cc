#include "exec/execution_plan.h"

namespace qkc {

namespace {

std::vector<std::uint32_t>
svBits(const std::vector<std::size_t>& qubits, std::size_t numQubits)
{
    std::vector<std::uint32_t> bits;
    bits.reserve(qubits.size());
    for (std::size_t q : qubits)
        bits.push_back(static_cast<std::uint32_t>(numQubits - 1 - q));
    return bits;
}

} // namespace

ExecutionPlan
planCircuit(const Circuit& circuit, const ExecPolicy& policy)
{
    ExecutionPlan plan;
    plan.numQubits = circuit.numQubits();
    plan.circuit = policy.fuseGates ? fuseGates(circuit, {}, &plan.fusion)
                                    : circuit;

    const auto& ops = plan.circuit.operations();
    plan.ops.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        PlannedOp p;
        p.opIndex = i;
        if (const Gate* g = std::get_if<Gate>(&ops[i])) {
            p.gate = compileKernel(g->unitary(),
                                   svBits(g->qubits(), plan.numQubits));
        } else {
            const auto& ch = std::get<NoiseChannel>(ops[i]);
            p.isChannel = true;
            const auto bits = svBits(ch.qubits(), plan.numQubits);
            p.kraus.reserve(ch.krausOperators().size());
            for (const Matrix& e : ch.krausOperators())
                p.kraus.push_back(compileKernel(e, bits));
        }
        plan.ops.push_back(std::move(p));
    }
    return plan;
}

} // namespace qkc
