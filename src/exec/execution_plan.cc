#include "exec/execution_plan.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace qkc {

namespace {

obs::Counter pathNodesCounter("exec.path.nodes");
obs::Counter pathMmNodesCounter("exec.path.mmNodes");
obs::Counter pathMmProductsCounter("exec.path.mmProducts");
obs::Counter pathCachedCounter("exec.path.cachedSubtrees");

std::vector<std::uint32_t>
svBits(const std::vector<std::size_t>& qubits, std::size_t numQubits)
{
    std::vector<std::uint32_t> bits;
    bits.reserve(qubits.size());
    for (std::size_t q : qubits)
        bits.push_back(static_cast<std::uint32_t>(numQubits - 1 - q));
    return bits;
}

void
compilePlannedOps(ExecutionPlan& plan)
{
    const auto& ops = plan.circuit.operations();
    plan.ops.clear();
    plan.ops.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        PlannedOp p;
        p.opIndex = i;
        if (const Gate* g = std::get_if<Gate>(&ops[i])) {
            p.gate = compileKernel(g->unitary(),
                                   svBits(g->qubits(), plan.numQubits));
        } else {
            const auto& ch = std::get<NoiseChannel>(ops[i]);
            p.isChannel = true;
            const auto bits = svBits(ch.qubits(), plan.numQubits);
            p.kraus.reserve(ch.krausOperators().size());
            for (const Matrix& e : ch.krausOperators())
                p.kraus.push_back(compileKernel(e, bits));
        }
        plan.ops.push_back(std::move(p));
    }
}

/** One chunk per fusion group: the MxM tree tasks are tiny and independent,
 *  so they are never folded together (the default grain would serialize any
 *  realistic group count below the threshold). */
ExecPolicy
groupTaskPolicy(const ExecPolicy& policy)
{
    ExecPolicy p = policy;
    p.serialThreshold = 2;
    p.grain = 1;
    return p;
}

/** A gate that cannot change across a same-structure rebind: not
 *  parameterized and not Custom (custom entries are free to differ between
 *  structurally equal circuits). */
bool
opIsFrozen(const Operation& op)
{
    const Gate* g = std::get_if<Gate>(&op);
    return g && !g->isParameterized() && g->kind() != GateKind::Custom1Q &&
           g->kind() != GateKind::Custom2Q;
}

void
appendOperation(Circuit& out, const Operation& op)
{
    if (const Gate* g = std::get_if<Gate>(&op))
        out.append(*g);
    else
        out.append(std::get<NoiseChannel>(op));
}

} // namespace

ExecutionPlan
planCircuit(const Circuit& circuit, const ExecPolicy& policy)
{
    QKC_SPAN("exec.plan");
    ExecutionPlan plan;
    plan.numQubits = circuit.numQubits();
    plan.fusionEnabled = policy.fuseGates;
    if (policy.fuseGates) {
        plan.recipe = planFusion(circuit, {});
        plan.circuit = *materializeFusion(plan.recipe, circuit, &plan.fusion);
    } else {
        plan.circuit = circuit;
    }
    compilePlannedOps(plan);
    return plan;
}

ExecutionPlan
planCircuit(const Circuit& circuit, const ExecPolicy& policy,
            const PathOptions& pathOptions)
{
    if (!pathOptions.active()) {
        // Linear/Auto: the two-argument plan, annotated with its chain.
        ExecutionPlan plan = planCircuit(circuit, policy);
        plan.pathOptions = pathOptions;
        plan.sourceHash = structureHash(circuit);
        plan.path = planSimulationPath(plan.circuit, pathOptions);
        pathNodesCounter.add(plan.path.nodes.size());
        return plan;
    }

    QKC_SPAN("exec.plan");
    ExecutionPlan plan;
    plan.numQubits = circuit.numQubits();
    plan.fusionEnabled = policy.fuseGates;
    plan.pathOptions = pathOptions;
    plan.sourceHash = structureHash(circuit);

    if (policy.fuseGates) {
        FusionOptions fusionOptions;
        fusionOptions.barrierChannels = true;
        plan.recipe = planFusion(circuit, fusionOptions);

        // The groups' matrix products are independent tree tasks: evaluate
        // them on the pool, one group per chunk, into per-group slots. The
        // emitted stream below reads the slots in group order, so the plan
        // is bit-identical at every thread count.
        const std::size_t numGroups = plan.recipe.groups.size();
        std::vector<GroupResult> results(numGroups);
        {
            QKC_SPAN("exec.mm");
            parallelForChunks(groupTaskPolicy(policy), numGroups,
                              [&](std::size_t, std::uint64_t begin,
                                  std::uint64_t end) {
                                  for (std::uint64_t g = begin; g < end; ++g)
                                      results[g] = materializeGroup(
                                          plan.recipe,
                                          static_cast<std::size_t>(g),
                                          circuit);
                              });
        }

        plan.frozenGroup.resize(numGroups, false);
        Circuit fused(plan.numQubits);
        for (std::size_t g = 0; g < numGroups; ++g) {
            // materializeGroup replays the products the greedy pass just
            // performed on the very same values, so every result is ok.
            plan.frozenGroup[g] =
                groupIsFrozen(plan.recipe.groups[g], circuit);
            plan.mmProducts += results[g].products;
            if (!results[g].emitted)
                continue;
            plan.frozenOp.push_back(plan.frozenGroup[g]);
            appendOperation(fused, *results[g].op);
        }
        plan.fusion = plan.recipe.stats;
        plan.fusion.gatesOut = fused.gateCount();
        plan.circuit = std::move(fused);
    } else {
        // No fusion: every op is its own path leaf; frozen leaves still
        // skip their kernel refresh on rebind.
        plan.circuit = circuit;
        plan.frozenOp.reserve(circuit.size());
        for (const Operation& op : circuit.operations())
            plan.frozenOp.push_back(opIsFrozen(op));
    }

    compilePlannedOps(plan);
    plan.path = planSimulationPath(plan.circuit, pathOptions);
    pathNodesCounter.add(plan.path.nodes.size());
    pathMmNodesCounter.add(plan.path.mmNodes);
    pathMmProductsCounter.add(plan.mmProducts);
    return plan;
}

std::uint64_t
structureHash(const Circuit& circuit)
{
    // FNV-1a over the sameStructure fields, in the order that function
    // visits them; any edit there must be mirrored here (and vice versa) or
    // the cache-key invariant in the header comment breaks.
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (8 * i)) & 0xffu;
            h *= 1099511628211ull;
        }
    };
    mix(circuit.numQubits());
    mix(circuit.size());
    for (const Operation& op : circuit.operations()) {
        mix(op.index());
        if (const Gate* g = std::get_if<Gate>(&op)) {
            mix(static_cast<std::uint64_t>(g->kind()));
            mix(g->qubits().size());
            for (std::size_t q : g->qubits())
                mix(q);
        } else {
            const auto& ch = std::get<NoiseChannel>(op);
            mix(ch.qubits().size());
            for (std::size_t q : ch.qubits())
                mix(q);
            mix(ch.krausOperators().size());
        }
    }
    return h;
}

bool
sameStructure(const Circuit& a, const Circuit& b)
{
    if (a.numQubits() != b.numQubits() || a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Operation& oa = a.operations()[i];
        const Operation& ob = b.operations()[i];
        if (oa.index() != ob.index())
            return false;
        if (const Gate* ga = std::get_if<Gate>(&oa)) {
            const Gate& gb = std::get<Gate>(ob);
            if (ga->kind() != gb.kind() || ga->qubits() != gb.qubits())
                return false;
        } else {
            const auto& ca = std::get<NoiseChannel>(oa);
            const auto& cb = std::get<NoiseChannel>(ob);
            if (ca.qubits() != cb.qubits() ||
                ca.krausOperators().size() != cb.krausOperators().size())
                return false;
        }
    }
    return true;
}

namespace {

/**
 * Rebind of a path-scheduled fused plan: frozen groups keep their
 * previously materialized operator (a cached path subtree — no products, no
 * kernel refresh), non-frozen groups re-run their MxM tree task on the
 * pool. The frozen-skip is only sound when the new circuit's structure
 * matches the one the freeze decisions were made on, which the structure
 * hash guarantees.
 */
bool
rebindPathPlan(ExecutionPlan& plan, const Circuit& circuit)
{
    if (structureHash(circuit) != plan.sourceHash)
        return false;
    const std::size_t numGroups = plan.recipe.groups.size();
    if (plan.frozenGroup.size() != numGroups ||
        plan.frozenOp.size() != plan.ops.size())
        return false;

    std::vector<GroupResult> results(numGroups);
    {
        QKC_SPAN("exec.mm");
        parallelForChunks(groupTaskPolicy({}), numGroups,
                          [&](std::size_t, std::uint64_t begin,
                              std::uint64_t end) {
                              for (std::uint64_t g = begin; g < end; ++g)
                                  if (!plan.frozenGroup[g])
                                      results[g] = materializeGroup(
                                          plan.recipe,
                                          static_cast<std::size_t>(g),
                                          circuit);
                          });
    }

    Circuit fused(plan.numQubits);
    std::size_t opIndex = 0;
    std::size_t products = 0;
    std::size_t cached = 0;
    for (std::size_t g = 0; g < numGroups; ++g) {
        const bool dropped = plan.recipe.groups[g].dropped;
        if (plan.frozenGroup[g]) {
            ++cached;
            if (dropped)
                continue;
            if (opIndex >= plan.ops.size())
                return false;
            appendOperation(
                fused, plan.circuit.operations()[plan.ops[opIndex].opIndex]);
            ++opIndex;
            continue;
        }
        GroupResult& r = results[g];
        if (!r.ok)
            return false; // identity boundary crossed: re-plan
        products += r.products;
        if (!r.emitted)
            continue;
        if (opIndex >= plan.ops.size())
            return false;
        appendOperation(fused, *r.op);
        ++opIndex;
    }
    if (opIndex != plan.ops.size())
        return false;

    plan.circuit = std::move(fused);
    plan.fusion = plan.recipe.stats;
    plan.fusion.gatesOut = plan.circuit.gateCount();
    plan.mmProducts = products;
    plan.cachedSubtrees = cached;
    pathMmProductsCounter.add(products);
    pathCachedCounter.add(cached);
    return true;
}

} // namespace

bool
tryRebindPlan(ExecutionPlan& plan, const Circuit& circuit)
{
    // On any failure the caller re-plans from scratch, so a partially
    // refreshed plan is never executed.
    if (circuit.numQubits() != plan.numQubits)
        return false;

    const bool pathScheduled = plan.pathScheduled();
    plan.cachedSubtrees = 0;
    if (pathScheduled && plan.fusionEnabled) {
        if (!rebindPathPlan(plan, circuit))
            return false;
    } else if (plan.fusionEnabled) {
        // materializeFusion validates indices, kinds and wires itself.
        auto fused = materializeFusion(plan.recipe, circuit, &plan.fusion);
        if (!fused || fused->size() != plan.circuit.size())
            return false;
        plan.circuit = std::move(*fused);
    } else {
        if (!sameStructure(plan.circuit, circuit))
            return false;
        plan.circuit = circuit;
        if (pathScheduled) {
            // Frozen leaves keep their kernels (matrices cannot change).
            std::size_t cached = 0;
            for (bool frozen : plan.frozenOp)
                cached += frozen ? 1 : 0;
            plan.cachedSubtrees = cached;
            pathCachedCounter.add(cached);
        }
    }

    for (std::size_t i = 0; i < plan.ops.size(); ++i) {
        PlannedOp& op = plan.ops[i];
        if (pathScheduled && i < plan.frozenOp.size() && plan.frozenOp[i])
            continue; // frozen subtree: kernel kept as-is
        const Operation& o = plan.circuit.operations()[op.opIndex];
        if (op.isChannel) {
            const auto* ch = std::get_if<NoiseChannel>(&o);
            if (!ch || ch->krausOperators().size() != op.kraus.size())
                return false;
            for (std::size_t k = 0; k < op.kraus.size(); ++k)
                if (!tryRefreshKernel(op.kraus[k], ch->krausOperators()[k]))
                    return false;
        } else {
            const Gate* g = std::get_if<Gate>(&o);
            if (!g || !tryRefreshKernel(op.gate, g->unitary()))
                return false;
        }
    }
    return true;
}

} // namespace qkc
