#include "exec/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace qkc {

namespace {

/** Depth of pool chunk bodies on this thread (see inParallelRegion). */
thread_local std::size_t tlsRegionDepth = 0;

struct RegionScope {
    RegionScope() { ++tlsRegionDepth; }
    ~RegionScope() { --tlsRegionDepth; }
};

} // namespace

bool
ThreadPool::inParallelRegion()
{
    return tlsRegionDepth > 0;
}

ThreadPool::ThreadPool(std::size_t numWorkers)
{
    workers_.reserve(numWorkers);
    // Lane 0 is the caller; worker i owns lane i+1 for the lifetime of the
    // pool — the stable identity shard affinity keys on.
    for (std::size_t i = 0; i < numWorkers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wakeCv_.notify_all();
    for (auto& w : workers_)
        w.join();
}

void
ThreadPool::runChunks(Job& job, std::size_t lane)
{
    RegionScope region;
    static obs::Counter chunksRun("exec.pool.chunks");
    static obs::Counter busyNs("exec.pool.busyNs");
    static obs::Counter shardSteals("exec.pool.shardSteals");
    const bool track = obs::enabled();
    const std::uint64_t t0 = track ? obs::nowNs() : 0;
    std::uint64_t executed = 0;
    std::uint64_t steals = 0;

    auto drain = [&](Shard& shard) {
        for (;;) {
            const std::uint64_t chunk =
                shard.next.fetch_add(1, std::memory_order_relaxed);
            if (chunk >= shard.end)
                break;
            const std::uint64_t begin = chunk * job.grain;
            const std::uint64_t end = std::min(job.n, begin + job.grain);
            (*job.fn)(static_cast<std::size_t>(chunk), begin, end);
            job.chunksDone.fetch_add(1, std::memory_order_release);
            ++executed;
        }
    };

    // Own shard first: the lane -> shard map is stable across regions, so
    // back-to-back sweeps over the same amplitude array put each thread
    // back on the slice it just warmed.
    const std::size_t numShards = job.numShards;
    const std::size_t home = lane % numShards;
    bool unclaimed = false;
    if (job.shards[home].claimed.compare_exchange_strong(
            unclaimed, true, std::memory_order_relaxed))
        drain(job.shards[home]);

    // Then whole unclaimed shards — lanes whose worker was never woken (or
    // is still being scheduled) must not strand their slice.
    for (std::size_t off = 1; off < numShards; ++off) {
        Shard& shard = job.shards[(home + off) % numShards];
        bool expected = false;
        if (shard.claimed.compare_exchange_strong(expected, true,
                                                  std::memory_order_relaxed)) {
            ++steals;
            drain(shard);
        }
    }

    // Finally help drain in-flight shards so one straggling lane cannot
    // serialize the tail. A finished shard costs one fetch_add to skip.
    for (std::size_t off = 0; off < numShards; ++off)
        drain(job.shards[(home + off) % numShards]);

    if (track && executed > 0) {
        chunksRun.add(executed);
        busyNs.add(obs::nowNs() - t0);
    }
    if (track && steals > 0)
        shardSteals.add(steals);
}

void
ThreadPool::workerLoop(std::size_t lane)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wakeCv_.wait(lock, [this] { return stop_ || pendingWorkers_ > 0; });
        if (stop_)
            return;
        --pendingWorkers_;
        ++activeWorkers_;
        lock.unlock();
        runChunks(job_, lane);
        lock.lock();
        --activeWorkers_;
        if (activeWorkers_ == 0)
            doneCv_.notify_all();
    }
}

void
ThreadPool::run(std::uint64_t n, std::uint64_t grain, std::size_t maxThreads,
                const ChunkFn& fn)
{
    if (n == 0)
        return;
    if (grain == 0)
        grain = 1;
    const std::uint64_t numChunks = (n + grain - 1) / grain;
    const std::size_t helpers =
        std::min(maxThreads > 0 ? maxThreads - 1 : 0, workers_.size());

    // Claim the (single) in-flight job slot. A nested call — a chunk body
    // invoking run() again, from a worker or from the caller — and a
    // concurrent call from another top-level thread both find the slot
    // taken and execute inline; the outer region's parallelism is already
    // using the machine, so nothing is lost, and the pool state is never
    // clobbered mid-flight.
    bool expected = false;
    const bool claimed =
        helpers > 0 && numChunks > 1 &&
        busy_.compare_exchange_strong(expected, true,
                                      std::memory_order_acquire);
    if (!claimed) {
        static obs::Counter inlineRegions("exec.pool.inlineRegions");
        inlineRegions.add();
        RegionScope region;
        for (std::uint64_t c = 0; c < numChunks; ++c)
            fn(static_cast<std::size_t>(c), c * grain,
               std::min(n, (c + 1) * grain));
        return;
    }

    static obs::Counter regions("exec.pool.regions");
    regions.add();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_.fn = &fn;
        job_.grain = grain;
        job_.n = n;
        job_.numChunks = numChunks;
        // One shard per participating lane, each a contiguous chunk range.
        // Shard *boundaries* depend only on numChunks and the lane count;
        // block-aligned because chunk boundaries are multiples of grain.
        const std::size_t lanes = helpers + 1;
        job_.numShards = lanes;
        if (job_.shardCapacity < lanes) {
            job_.shards.reset(new Shard[lanes]);
            job_.shardCapacity = lanes;
        }
        for (std::size_t s = 0; s < lanes; ++s) {
            job_.shards[s].next.store(s * numChunks / lanes,
                                      std::memory_order_relaxed);
            job_.shards[s].end = (s + 1) * numChunks / lanes;
            job_.shards[s].claimed.store(false, std::memory_order_relaxed);
        }
        job_.chunksDone.store(0, std::memory_order_relaxed);
        pendingWorkers_ = helpers;
    }
    wakeCv_.notify_all();

    runChunks(job_, 0);

    std::unique_lock<std::mutex> lock(mutex_);
    // Withdraw the invitation from workers that never woke up, then wait
    // for the ones inside the job to drain. chunksDone is monotonic and
    // every chunk was claimed (the caller's final help-drain pass exhausted
    // every shard), so once activeWorkers_ hits zero all chunks completed.
    pendingWorkers_ = 0;
    doneCv_.wait(lock, [this] {
        return activeWorkers_ == 0 &&
               job_.chunksDone.load(std::memory_order_acquire) ==
                   job_.numChunks;
    });
    job_.fn = nullptr;
    lock.unlock();
    busy_.store(false, std::memory_order_release);
}

namespace {

std::size_t
initialDefaultThreads()
{
    if (const char* env = std::getenv("QKC_THREADS")) {
        const long v = std::strtol(env, nullptr, 10);
        if (v >= 1)
            return static_cast<std::size_t>(v);
        return 1;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::atomic<std::size_t>&
defaultThreadsState()
{
    static std::atomic<std::size_t> value{initialDefaultThreads()};
    return value;
}

} // namespace

std::size_t
defaultThreads()
{
    return defaultThreadsState().load(std::memory_order_relaxed);
}

void
setDefaultThreads(std::size_t threads)
{
    defaultThreadsState().store(threads > 0 ? threads : 1,
                                std::memory_order_relaxed);
}

std::size_t
ExecPolicy::resolvedThreads() const
{
    return threads > 0 ? threads : defaultThreads();
}

SimdLevel
ExecPolicy::resolvedSimd() const
{
    return resolveSimdMode(simd);
}

ThreadPool&
sharedPool()
{
    // Sized for the machine, not the policy: per-call limits come from
    // ExecPolicy, so one pool serves every backend and thread setting.
    static ThreadPool pool([] {
        const unsigned hw = std::thread::hardware_concurrency();
        const std::size_t lanes = std::max<std::size_t>(
            hw > 0 ? hw : 1, defaultThreads());
        return lanes - 1;
    }());
    return pool;
}

void
parallelForChunks(const ExecPolicy& policy, std::uint64_t n,
                  const ThreadPool::ChunkFn& fn)
{
    const std::size_t threads = policy.resolvedThreads();
    if (threads <= 1 || n < policy.serialThreshold) {
        static obs::Counter serialRegions("exec.pool.serialRegions");
        serialRegions.add();
        // Same chunk boundaries as the parallel path so that chunk-indexed
        // reductions are bit-identical across thread counts.
        const std::uint64_t grain = policy.grain > 0 ? policy.grain : 1;
        const std::uint64_t numChunks = n == 0 ? 0 : (n + grain - 1) / grain;
        for (std::uint64_t c = 0; c < numChunks; ++c)
            fn(static_cast<std::size_t>(c), c * grain,
               std::min(n, (c + 1) * grain));
        return;
    }
    sharedPool().run(n, policy.grain, threads, fn);
}

void
parallelFor(const ExecPolicy& policy, std::uint64_t n,
            const std::function<void(std::uint64_t, std::uint64_t)>& fn)
{
    parallelForChunks(policy, n,
                      [&fn](std::size_t, std::uint64_t begin,
                            std::uint64_t end) { fn(begin, end); });
}

double
parallelSum(const ExecPolicy& policy, std::uint64_t n,
            const std::function<double(std::uint64_t, std::uint64_t)>& fn)
{
    if (n == 0)
        return 0.0;
    const std::uint64_t grain = policy.grain > 0 ? policy.grain : 1;
    const std::uint64_t numChunks = (n + grain - 1) / grain;
    std::vector<double> partials(static_cast<std::size_t>(numChunks), 0.0);
    parallelForChunks(policy, n,
                      [&](std::size_t chunk, std::uint64_t begin,
                          std::uint64_t end) { partials[chunk] = fn(begin, end); });
    double total = 0.0;
    for (double p : partials)
        total += p;
    return total;
}

} // namespace qkc
