#include "exec/simd.h"

#include <atomic>
#include <cstdlib>

#include "exec/kernel_runs.h"

namespace qkc {

namespace {

/** What the CPU (and OS thread state) can execute, capped by the build. */
SimdLevel
detectSimdLevel()
{
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    // __builtin_cpu_supports checks CPUID *and* the XCR0 OS-enabled state,
    // so an AVX-512-capable core under an OS that does not save ZMM state
    // correctly reports unsupported.
    if (avx512RunOps() && __builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq"))
        return SimdLevel::Avx512;
    if (avx2RunOps() && __builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
#endif
    return SimdLevel::Scalar;
}

SimdLevel
initialActiveLevel()
{
    SimdLevel level = maxSupportedSimdLevel();
    if (const char* env = std::getenv("QKC_SIMD")) {
        SimdMode mode;
        if (parseSimdMode(env, &mode) && mode != SimdMode::Auto) {
            const SimdLevel requested =
                mode == SimdMode::Off
                    ? SimdLevel::Scalar
                    : (mode == SimdMode::Avx2 ? SimdLevel::Avx2
                                              : SimdLevel::Avx512);
            if (requested < level)
                level = requested;
        }
        // Unparsable values fall through to auto rather than aborting a
        // run over a typo; the CLI-facing parse path reports them loudly.
    }
    return level;
}

std::atomic<SimdLevel>&
activeLevelState()
{
    static std::atomic<SimdLevel> level{initialActiveLevel()};
    return level;
}

} // namespace

const char*
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "off";
      case SimdLevel::Avx2:
        return "avx2";
      case SimdLevel::Avx512:
        return "avx512";
    }
    return "?";
}

SimdLevel
maxSupportedSimdLevel()
{
    static const SimdLevel level = detectSimdLevel();
    return level;
}

SimdLevel
activeSimdLevel()
{
    return activeLevelState().load(std::memory_order_relaxed);
}

void
setSimdLevel(SimdLevel level)
{
    if (level > maxSupportedSimdLevel())
        level = maxSupportedSimdLevel();
    activeLevelState().store(level, std::memory_order_relaxed);
}

bool
parseSimdMode(const std::string& text, SimdMode* out)
{
    if (text == "auto" || text == "1") {
        *out = SimdMode::Auto;
    } else if (text == "off" || text == "0" || text == "scalar") {
        *out = SimdMode::Off;
    } else if (text == "avx2") {
        *out = SimdMode::Avx2;
    } else if (text == "avx512") {
        *out = SimdMode::Avx512;
    } else {
        return false;
    }
    return true;
}

SimdLevel
resolveSimdMode(SimdMode mode)
{
    // QKC_SIMD is the master switch (mirroring QKC_OBS): an explicit
    // spec-level request never raises the dispatch above the process-wide
    // active level, only lowers it.
    const SimdLevel ceiling = activeSimdLevel();
    switch (mode) {
      case SimdMode::Auto:
        return ceiling;
      case SimdMode::Off:
        return SimdLevel::Scalar;
      case SimdMode::Avx2:
        return ceiling >= SimdLevel::Avx2 ? SimdLevel::Avx2
                                          : ceiling;
      case SimdMode::Avx512:
        return ceiling;
    }
    return SimdLevel::Scalar;
}

} // namespace qkc
