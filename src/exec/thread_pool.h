#ifndef QKC_EXEC_THREAD_POOL_H
#define QKC_EXEC_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "exec/simd.h"

namespace qkc {

/**
 * Chunk-partitioned fork-join thread pool shared by every dense simulator
 * backend (state vector and density matrix today; any future amplitude-array
 * engine can reuse it).
 *
 * Design constraints, in order:
 *
 *  1. **Determinism.** The iteration space [0, n) is split into fixed
 *     `grain`-sized chunks whose boundaries depend only on n and grain —
 *     never on the thread count — and reductions combine per-chunk partials
 *     in chunk order. A 1-thread and an N-thread run therefore produce
 *     bit-identical results for every kernel and reduction built on top.
 *  2. **No work stealing, no queues.** A parallel region is one job; idle
 *     workers claim the next chunk index from a single atomic counter. For
 *     the large regular loops gate kernels run, this is within noise of a
 *     work-stealing scheduler and far simpler to reason about.
 *  3. **Caller participates.** The invoking thread executes chunks alongside
 *     the workers, so a pool with zero workers (or a nested call from a
 *     worker) degrades gracefully to serial execution instead of
 *     deadlocking.
 */
class ThreadPool {
  public:
    /** Body of a parallel region: fn(chunkIndex, begin, end). */
    using ChunkFn = std::function<void(std::size_t, std::uint64_t,
                                       std::uint64_t)>;

    /** Spawns `numWorkers` persistent workers (callers add one more lane). */
    explicit ThreadPool(std::size_t numWorkers);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Worker threads owned by the pool (excludes the calling thread). */
    std::size_t numWorkers() const { return workers_.size(); }

    /**
     * Runs fn over [0, n) split into ceil(n/grain) chunks, using at most
     * `maxThreads` threads in total (capped by numWorkers() + 1). Blocks
     * until every chunk has completed. Safe to call from inside a worker:
     * the nested region simply runs on the calling thread.
     */
    void run(std::uint64_t n, std::uint64_t grain, std::size_t maxThreads,
             const ChunkFn& fn);

    /**
     * True while the calling thread is executing pool work — inside a chunk
     * body, whether as a pool worker or as a caller participating in its own
     * region. The nested-submission guard for layered parallelism: the pool
     * itself already degrades a nested run() to inline execution (the single
     * job slot is taken, so chunks run on the calling thread — no deadlock),
     * but coarse-grained fan-outs such as Session::runBatch check this to
     * skip their setup cost (worker clones) when the parallelism would be
     * nested anyway, e.g. a batched task issued from inside a trajectory
     * sweep.
     */
    static bool inParallelRegion();

  private:
    /**
     * One lane's contiguous slice of the chunk space. Lanes claim their own
     * shard first (stable lane -> shard affinity: successive sweeps over
     * the same amplitude array revisit the same cache-warm range on the
     * same thread), then steal whole unclaimed shards, then help drain
     * stragglers. Chunk *boundaries* stay a function of n and grain alone,
     * so the sharding changes who executes a chunk — never what a chunk is.
     */
    struct Shard {
        std::atomic<std::uint64_t> next{0};
        std::uint64_t end = 0;
        std::atomic<bool> claimed{false};
    };

    struct Job {
        const ChunkFn* fn = nullptr;
        std::uint64_t grain = 0;
        std::uint64_t n = 0;
        std::uint64_t numChunks = 0;
        std::size_t numShards = 0;
        std::unique_ptr<Shard[]> shards;
        std::size_t shardCapacity = 0;
        std::atomic<std::uint64_t> chunksDone{0};
    };

    void workerLoop(std::size_t lane);
    void runChunks(Job& job, std::size_t lane);

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wakeCv_;
    std::condition_variable doneCv_;
    Job job_;
    std::atomic<bool> busy_{false}; ///< a parallel region is in flight
    std::size_t pendingWorkers_ = 0; ///< workers still invited to join job_
    std::size_t activeWorkers_ = 0;  ///< workers currently inside job_
    bool stop_ = false;
};

/**
 * Execution policy consulted by every parallel kernel: how many threads to
 * use, below which problem size to stay serial, and how finely to chunk.
 * The defaults keep small states (and therefore most unit tests) on the
 * exact serial path while 20+ qubit workloads fan out.
 */
struct ExecPolicy {
    /**
     * Total threads (including the caller). 0 = "machine default", i.e.
     * defaultThreads(). Precedence, highest first:
     *
     *   1. an explicit non-zero value here (e.g. `sv:threads=8` specs);
     *   2. setDefaultThreads(n), if configuration code called it;
     *   3. the QKC_THREADS environment variable, read once at the first
     *      defaultThreads() call (values < 1 clamp to 1);
     *   4. std::thread::hardware_concurrency().
     */
    std::size_t threads = 0;

    /** Problem sizes (loop items) strictly below this run serially. */
    std::uint64_t serialThreshold = std::uint64_t{1} << 12;

    /** Chunk size in loop items; boundaries never depend on thread count. */
    std::uint64_t grain = std::uint64_t{1} << 14;

    /** Run the greedy gate-fusion pass before simulation (simulators only). */
    bool fuseGates = true;

    /**
     * Vector dispatch level for the kernel sweeps. Auto defers to the
     * process default (QKC_SIMD clamped by CPUID); an explicit level (e.g.
     * `sv:simd=off` specs) lowers — never raises — that default. Payloads
     * are bit-identical at every level, so this is purely a speed knob.
     */
    SimdMode simd = SimdMode::Auto;

    /** The thread count after resolving 0 against the global default. */
    std::size_t resolvedThreads() const;

    /** The dispatch level after resolving `simd` against the process
     *  default and hardware/build support. */
    SimdLevel resolvedSimd() const;
};

/**
 * Process-wide default thread count: initialized from the QKC_THREADS
 * environment variable if set (values < 1 clamp to 1), otherwise from
 * std::thread::hardware_concurrency(). Thread-safe to read; setDefaultThreads
 * is for single-threaded configuration code (CLI parsing) only.
 */
std::size_t defaultThreads();
void setDefaultThreads(std::size_t threads);

/**
 * The process-wide shared pool, created lazily with enough workers for
 * hardware concurrency (or the QKC_THREADS cap if larger). All backends
 * share it; per-call thread limits come from ExecPolicy.
 */
ThreadPool& sharedPool();

/**
 * Runs fn(chunkIndex, begin, end) over [0, n) under `policy`: serial below
 * the threshold or when only one thread is requested, on the shared pool
 * otherwise. Chunk boundaries are identical in both modes.
 */
void parallelForChunks(const ExecPolicy& policy, std::uint64_t n,
                       const ThreadPool::ChunkFn& fn);

/** Convenience wrapper when the body does not need the chunk index. */
void parallelFor(const ExecPolicy& policy, std::uint64_t n,
                 const std::function<void(std::uint64_t, std::uint64_t)>& fn);

/**
 * Deterministic parallel sum: per-chunk partial sums combined in chunk
 * order. fn(begin, end) returns the partial for one chunk. The combination
 * order (and therefore the floating-point result) is independent of the
 * thread count.
 */
double parallelSum(const ExecPolicy& policy, std::uint64_t n,
                   const std::function<double(std::uint64_t, std::uint64_t)>& fn);

} // namespace qkc

#endif // QKC_EXEC_THREAD_POOL_H
