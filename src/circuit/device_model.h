#ifndef QKC_CIRCUIT_DEVICE_MODEL_H
#define QKC_CIRCUIT_DEVICE_MODEL_H

#include <cstddef>
#include <vector>

#include "circuit/circuit.h"

namespace qkc {

/**
 * A hardware-calibration-style noise model: per-qubit T1 (relaxation) and
 * T2 (dephasing) times plus gate durations and depolarizing error rates.
 * Applying it to an ideal circuit inserts, after each gate,
 *
 *   - amplitude damping with gamma = 1 - exp(-duration / T1),
 *   - extra phase damping with the pure-dephasing rate
 *     1/Tphi = 1/T2 - 1/(2 T1) (requires T2 <= 2 T1),
 *   - a depolarizing channel with the gate's error rate
 *     (correlated two-qubit depolarizing after two-qubit gates),
 *
 * on every operand qubit — the standard NISQ device abstraction the paper's
 * Table 1 channels parameterize ("related to T1 time" / "related to T2
 * time"). This turns published device calibration numbers directly into
 * circuits the knowledge-compilation pipeline can simulate.
 */
struct DeviceModel {
    /** Per-qubit T1; empty means "uniform defaultT1". */
    std::vector<double> t1;
    /** Per-qubit T2 (<= 2 T1); empty means "uniform defaultT2". */
    std::vector<double> t2;
    double defaultT1 = 50e3;    ///< ns (typical transmon: tens of microseconds)
    double defaultT2 = 70e3;    ///< ns
    double singleQubitGateNs = 25.0;
    double twoQubitGateNs = 250.0;
    double threeQubitGateNs = 500.0;
    double singleQubitDepolarizing = 0.001;
    double twoQubitDepolarizing = 0.01;

    double t1Of(std::size_t q) const
    {
        return q < t1.size() ? t1[q] : defaultT1;
    }
    double t2Of(std::size_t q) const
    {
        return q < t2.size() ? t2[q] : defaultT2;
    }

    /**
     * Returns a copy of `circuit` with the model's channels inserted after
     * every gate. Throws if any T2 exceeds 2 T1 (unphysical).
     */
    Circuit apply(const Circuit& circuit) const;
};

} // namespace qkc

#endif // QKC_CIRCUIT_DEVICE_MODEL_H
