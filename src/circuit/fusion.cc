#include "circuit/fusion.h"

#include <stdexcept>

#include "obs/trace.h"

namespace qkc {

namespace {

/** Tight tolerance for dropping exact-identity products (HH, Rz(t)Rz(-t)). */
constexpr double kFusionEps = 1e-12;

bool
isIdentity(const Matrix& m)
{
    return m.approxEqual(Matrix::identity(m.rows()), kFusionEps);
}

/** The gate at `opIndex`, or null on any index/kind/wire mismatch. */
const Gate*
gateAt(const Circuit& circuit, std::size_t opIndex,
       const std::vector<std::size_t>& qubits)
{
    if (opIndex >= circuit.size())
        return nullptr;
    const Gate* g = std::get_if<Gate>(&circuit.operations()[opIndex]);
    return g && g->qubits() == qubits ? g : nullptr;
}

/** Product of 1q source gates on `wire`, first-applied first (U_k...U_1). */
std::optional<Matrix>
pendingProduct(const Circuit& circuit, const std::vector<std::size_t>& sources,
               std::size_t wire)
{
    Matrix m = Matrix::identity(2);
    for (std::size_t s : sources) {
        const Gate* g = gateAt(circuit, s, {wire});
        if (!g)
            return std::nullopt;
        m = g->unitary() * m;
    }
    return m;
}

} // namespace

FusionRecipe
planFusion(const Circuit& circuit, const FusionOptions& options)
{
    QKC_SPAN("circuit.fuse");
    FusionRecipe recipe;
    recipe.numQubits = circuit.numQubits();
    recipe.numOps = circuit.size();
    recipe.options = options;
    const std::size_t n = circuit.numQubits();

    // pending[q]: source indices of not-yet-emitted 1q gates on wire q (in
    // application order) and their running product (for the identity check).
    std::vector<std::vector<std::size_t>> pending(n);
    std::vector<Matrix> pendingM(n);

    auto flush = [&](std::size_t q) {
        if (pending[q].empty())
            return;
        FusionRecipe::Group g;
        g.kind = FusionRecipe::Group::Kind::Fused1q;
        g.sources = std::move(pending[q]);
        g.qubits = {q};
        g.dropped = isIdentity(pendingM[q]);
        if (g.dropped)
            ++recipe.stats.droppedIdentity;
        recipe.groups.push_back(std::move(g));
        pending[q].clear();
    };

    // One open 2q chain per ordered wire pair: the last-emitted 2q group on
    // (a, b) stays extendable until any other operation touches a or b (1q
    // gates excepted — they go pending and fold into the next stage). The
    // group sits at its first gate's emission slot and is mutated in place
    // when a later same-pair gate extends it; everything emitted in between
    // acts on disjoint wires, so the reordering is exact.
    struct OpenChain {
        std::size_t a = 0;
        std::size_t b = 0;
        std::size_t groupIndex = 0;
        Matrix accU; ///< full chain product incl. folded pendings
    };
    std::vector<OpenChain> chains;
    std::vector<std::ptrdiff_t> chainOn(n, -1);

    // Finalizes the chain covering wire q (if any): the identity-drop
    // decision needs the whole chain product, so it is deferred to here.
    auto closeChain = [&](std::size_t q) {
        const std::ptrdiff_t c = chainOn[q];
        if (c < 0)
            return;
        OpenChain& ch = chains[static_cast<std::size_t>(c)];
        FusionRecipe::Group& g = recipe.groups[ch.groupIndex];
        if (g.kind == FusionRecipe::Group::Kind::Fused2q) {
            g.dropped = isIdentity(ch.accU);
            if (g.dropped)
                ++recipe.stats.droppedIdentity;
        }
        chainOn[ch.a] = -1;
        chainOn[ch.b] = -1;
    };

    const auto& ops = circuit.operations();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        if (const auto* ch = std::get_if<NoiseChannel>(&ops[i])) {
            if (options.barrierChannels) {
                // Path planners: the channel is a spine barrier for every
                // wire, so no fusion group may span it (a pending on an
                // untouched wire would otherwise merge gates from both
                // sides of the channel into one path node).
                for (std::size_t q = 0; q < n; ++q) {
                    closeChain(q);
                    flush(q);
                }
            } else {
                for (std::size_t q : ch->qubits()) {
                    closeChain(q);
                    flush(q);
                }
            }
            FusionRecipe::Group g;
            g.kind = FusionRecipe::Group::Kind::Channel;
            g.sources = {i};
            g.qubits = ch->qubits();
            recipe.groups.push_back(std::move(g));
            continue;
        }
        const Gate& gate = std::get<Gate>(ops[i]);
        ++recipe.stats.gatesIn;

        if (gate.arity() == 1) {
            const std::size_t q = gate.qubits()[0];
            if (!pending[q].empty()) {
                pendingM[q] = gate.unitary() * pendingM[q];
                ++recipe.stats.merged1q;
            } else {
                pendingM[q] = gate.unitary();
            }
            pending[q].push_back(i);
            continue;
        }

        if (gate.arity() == 2 && options.foldIntoTwoQubit) {
            const std::size_t a = gate.qubits()[0];
            const std::size_t b = gate.qubits()[1];

            // The pendings act first: U' = U * (Pa (x) Pb), with a the
            // MSB of the gate's local basis (the Gate convention).
            const Matrix pa = pending[a].empty() ? Matrix::identity(2)
                                                 : pendingM[a];
            const Matrix pb = pending[b].empty() ? Matrix::identity(2)
                                                 : pendingM[b];
            const std::size_t folds = (pending[a].empty() ? 0u : 1u) +
                                      (pending[b].empty() ? 0u : 1u);

            // Extend an open chain on the exact ordered pair (a, b).
            const std::ptrdiff_t c = chainOn[a];
            if (options.fuseTwoQubitPairs && c >= 0 && c == chainOn[b] &&
                chains[static_cast<std::size_t>(c)].a == a &&
                chains[static_cast<std::size_t>(c)].b == b) {
                OpenChain& chain = chains[static_cast<std::size_t>(c)];
                FusionRecipe::Group& g = recipe.groups[chain.groupIndex];
                if (g.kind == FusionRecipe::Group::Kind::Passthrough) {
                    // Promote the bare 2q group to a chain in place.
                    g.kind = FusionRecipe::Group::Kind::Fused2q;
                    g.gateIndices = {g.sources[0]};
                    g.sources.clear();
                    g.pendingHigh.emplace_back();
                    g.pendingLow.emplace_back();
                }
                recipe.stats.foldedInto2q += folds;
                ++recipe.stats.merged2q;
                g.gateIndices.push_back(i);
                g.pendingHigh.push_back(std::move(pending[a]));
                g.pendingLow.push_back(std::move(pending[b]));
                pending[a].clear();
                pending[b].clear();
                chain.accU = gate.unitary() * pa.kron(pb) * chain.accU;
                continue;
            }
            // A same-wire chain on any other pairing ends here.
            closeChain(a);
            closeChain(b);

            const std::size_t groupIndex = recipe.groups.size();
            if (!pending[a].empty() || !pending[b].empty()) {
                recipe.stats.foldedInto2q += folds;
                FusionRecipe::Group g;
                g.kind = FusionRecipe::Group::Kind::Fused2q;
                g.gateIndices = {i};
                g.pendingHigh.push_back(std::move(pending[a]));
                g.pendingLow.push_back(std::move(pending[b]));
                g.qubits = {a, b};
                // dropped is decided when the chain closes.
                recipe.groups.push_back(std::move(g));
                pending[a].clear();
                pending[b].clear();
            } else {
                FusionRecipe::Group g;
                g.kind = FusionRecipe::Group::Kind::Passthrough;
                g.sources = {i};
                g.qubits = gate.qubits();
                recipe.groups.push_back(std::move(g));
            }
            const Matrix accU = gate.unitary() * pa.kron(pb);
            if (options.fuseTwoQubitPairs) {
                chainOn[a] = static_cast<std::ptrdiff_t>(chains.size());
                chainOn[b] = chainOn[a];
                chains.push_back({a, b, groupIndex, accU});
            } else if (recipe.groups[groupIndex].kind ==
                       FusionRecipe::Group::Kind::Fused2q) {
                // No chain tracking: decide the drop immediately.
                FusionRecipe::Group& g = recipe.groups[groupIndex];
                g.dropped = isIdentity(accU);
                if (g.dropped)
                    ++recipe.stats.droppedIdentity;
            }
            continue;
        }

        // 2q with folding disabled, or 3q: barrier on the operand wires.
        for (std::size_t q : gate.qubits()) {
            closeChain(q);
            flush(q);
        }
        FusionRecipe::Group g;
        g.kind = FusionRecipe::Group::Kind::Passthrough;
        g.sources = {i};
        g.qubits = gate.qubits();
        recipe.groups.push_back(std::move(g));
    }

    for (std::size_t q = 0; q < n; ++q) {
        closeChain(q);
        flush(q);
    }

    return recipe;
}

std::optional<Circuit>
materializeFusion(const FusionRecipe& recipe, const Circuit& circuit,
                  FusionStats* stats)
{
    if (circuit.numQubits() != recipe.numQubits)
        throw std::invalid_argument(
            "materializeFusion: qubit count differs from the planned circuit");
    // The recipe must cover the whole circuit: extra (or missing) trailing
    // ops would otherwise be silently dropped from the fused output.
    if (circuit.size() != recipe.numOps)
        return std::nullopt;

    // Any index, kind or wire mismatch below means `circuit` does not
    // share the planned structure: refuse (nullopt) rather than emit a
    // silently wrong circuit, so callers can treat this as "re-plan
    // needed".
    Circuit out(recipe.numQubits);
    for (std::size_t gi = 0; gi < recipe.groups.size(); ++gi) {
        GroupResult r = materializeGroup(recipe, gi, circuit);
        if (!r.ok)
            return std::nullopt;
        if (!r.emitted)
            continue;
        if (const Gate* gate = std::get_if<Gate>(&*r.op))
            out.append(*gate);
        else
            out.append(std::get<NoiseChannel>(*r.op));
    }

    if (stats) {
        *stats = recipe.stats;
        stats->gatesOut = out.gateCount();
    }
    return out;
}

GroupResult
materializeGroup(const FusionRecipe& recipe, std::size_t groupIndex,
                 const Circuit& circuit)
{
    GroupResult r;
    if (groupIndex >= recipe.groups.size())
        return r;
    const FusionRecipe::Group& g = recipe.groups[groupIndex];
    switch (g.kind) {
      case FusionRecipe::Group::Kind::Channel: {
        if (g.sources.empty() || g.sources[0] >= circuit.size())
            return r;
        const auto* ch =
            std::get_if<NoiseChannel>(&circuit.operations()[g.sources[0]]);
        if (!ch || ch->qubits() != g.qubits)
            return r;
        r.ok = true;
        r.emitted = true;
        r.op = Operation{*ch};
        return r;
      }
      case FusionRecipe::Group::Kind::Passthrough: {
        if (g.sources.empty())
            return r;
        const Gate* gate = gateAt(circuit, g.sources[0], g.qubits);
        if (!gate)
            return r;
        r.ok = true;
        r.emitted = true;
        r.op = Operation{*gate};
        return r;
      }
      case FusionRecipe::Group::Kind::Fused1q: {
        auto m = pendingProduct(circuit, g.sources, g.qubits[0]);
        if (!m)
            return r;
        r.products = g.sources.size();
        if (isIdentity(*m) != g.dropped)
            return r; // drop set changed: re-plan
        r.ok = true;
        if (!g.dropped) {
            r.emitted = true;
            r.op = Operation{
                Gate::custom({g.qubits[0]}, std::move(*m), "fused")};
        }
        return r;
      }
      case FusionRecipe::Group::Kind::Fused2q: {
        if (g.gateIndices.empty() ||
            g.pendingHigh.size() != g.gateIndices.size() ||
            g.pendingLow.size() != g.gateIndices.size())
            return r;
        Matrix fusedU = Matrix::identity(4);
        for (std::size_t s = 0; s < g.gateIndices.size(); ++s) {
            const auto pa =
                pendingProduct(circuit, g.pendingHigh[s], g.qubits[0]);
            const auto pb =
                pendingProduct(circuit, g.pendingLow[s], g.qubits[1]);
            const Gate* gate = gateAt(circuit, g.gateIndices[s], g.qubits);
            if (!pa || !pb || !gate)
                return r;
            fusedU = gate->unitary() * pa->kron(*pb) * fusedU;
            r.products +=
                g.pendingHigh[s].size() + g.pendingLow[s].size() + 2;
        }
        if (isIdentity(fusedU) != g.dropped)
            return r;
        r.ok = true;
        if (!g.dropped) {
            r.emitted = true;
            r.op = Operation{Gate::custom({g.qubits[0], g.qubits[1]},
                                          std::move(fusedU), "fused2q")};
        }
        return r;
      }
    }
    return r;
}

bool
groupIsFrozen(const FusionRecipe::Group& group, const Circuit& circuit)
{
    if (group.kind == FusionRecipe::Group::Kind::Channel)
        return false;
    const auto frozenGate = [&](std::size_t idx) {
        if (idx >= circuit.size())
            return false;
        const Gate* g = std::get_if<Gate>(&circuit.operations()[idx]);
        return g && !g->isParameterized() &&
               g->kind() != GateKind::Custom1Q &&
               g->kind() != GateKind::Custom2Q;
    };
    for (std::size_t s : group.sources)
        if (!frozenGate(s))
            return false;
    for (std::size_t s : group.gateIndices)
        if (!frozenGate(s))
            return false;
    for (const auto& stage : group.pendingHigh)
        for (std::size_t s : stage)
            if (!frozenGate(s))
                return false;
    for (const auto& stage : group.pendingLow)
        for (std::size_t s : stage)
            if (!frozenGate(s))
                return false;
    return true;
}

Circuit
fuseGates(const Circuit& circuit, const FusionOptions& options,
          FusionStats* stats)
{
    const FusionRecipe recipe = planFusion(circuit, options);
    // Replaying the recipe on the circuit it was planned from cannot cross
    // an identity boundary.
    return *materializeFusion(recipe, circuit, stats);
}

void
FusionCache::build(const Circuit& circuit, const FusionOptions& options)
{
    recipe_ = planFusion(circuit, options);
    fused_ = *materializeFusion(recipe_, circuit, &stats_);
}

bool
FusionCache::rebind(const Circuit& circuit)
{
    if (auto fused = materializeFusion(recipe_, circuit, &stats_)) {
        fused_ = std::move(*fused);
        return true;
    }
    build(circuit, recipe_.options);
    return false;
}

} // namespace qkc
