#include "circuit/fusion.h"

#include <optional>
#include <vector>

namespace qkc {

namespace {

/** Tight tolerance for dropping exact-identity products (HH, Rz(t)Rz(-t)). */
constexpr double kFusionEps = 1e-12;

bool
isIdentity(const Matrix& m)
{
    return m.approxEqual(Matrix::identity(m.rows()), kFusionEps);
}

} // namespace

Circuit
fuseGates(const Circuit& circuit, const FusionOptions& options,
          FusionStats* stats)
{
    FusionStats local;
    const std::size_t n = circuit.numQubits();
    Circuit out(n);

    // pending[q]: the product of not-yet-emitted 1q gates on wire q, newest
    // factor on the left (applied last).
    std::vector<std::optional<Matrix>> pending(n);

    auto flush = [&](std::size_t q) {
        if (!pending[q])
            return;
        if (isIdentity(*pending[q]))
            ++local.droppedIdentity;
        else
            out.append(Gate::custom({q}, std::move(*pending[q]), "fused"));
        pending[q].reset();
    };

    for (const auto& op : circuit.operations()) {
        if (const auto* ch = std::get_if<NoiseChannel>(&op)) {
            for (std::size_t q : ch->qubits())
                flush(q);
            out.append(*ch);
            continue;
        }
        const Gate& g = std::get<Gate>(op);
        ++local.gatesIn;

        if (g.arity() == 1) {
            const std::size_t q = g.qubits()[0];
            if (pending[q]) {
                pending[q] = g.unitary() * (*pending[q]);
                ++local.merged1q;
            } else {
                pending[q] = g.unitary();
            }
            continue;
        }

        if (g.arity() == 2 && options.foldIntoTwoQubit) {
            const std::size_t a = g.qubits()[0];
            const std::size_t b = g.qubits()[1];
            if (pending[a] || pending[b]) {
                // The pendings act first: U' = U * (Pa (x) Pb), with a the
                // MSB of the gate's local basis (the Gate convention).
                const Matrix pa =
                    pending[a] ? *pending[a] : Matrix::identity(2);
                const Matrix pb =
                    pending[b] ? *pending[b] : Matrix::identity(2);
                local.foldedInto2q +=
                    (pending[a] ? 1u : 0u) + (pending[b] ? 1u : 0u);
                pending[a].reset();
                pending[b].reset();
                Matrix fusedU = g.unitary() * pa.kron(pb);
                if (isIdentity(fusedU))
                    ++local.droppedIdentity;
                else
                    out.append(Gate::custom({a, b}, std::move(fusedU),
                                            "fused2q"));
                continue;
            }
            out.append(g);
            continue;
        }

        // 2q with folding disabled, or 3q: barrier on the operand wires.
        for (std::size_t q : g.qubits())
            flush(q);
        out.append(g);
    }

    for (std::size_t q = 0; q < n; ++q)
        flush(q);

    local.gatesOut = out.gateCount();
    if (stats)
        *stats = local;
    return out;
}

} // namespace qkc
