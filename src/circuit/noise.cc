#include "circuit/noise.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace qkc {

namespace {

constexpr Complex kI{0.0, 1.0};

Matrix
pauliX()
{
    return Matrix{{0.0, 1.0}, {1.0, 0.0}};
}

Matrix
pauliY()
{
    return Matrix{{0.0, -kI}, {kI, 0.0}};
}

Matrix
pauliZ()
{
    return Matrix{{1.0, 0.0}, {0.0, -1.0}};
}

void
checkProbability(double p, const char* what)
{
    if (p < 0.0 || p > 1.0)
        throw std::invalid_argument(std::string(what) +
                                    ": probability out of [0, 1]");
}

std::string
fmt(const char* base, double a)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s(%.4g)", base, a);
    return buf;
}

/** Verifies the completeness relation sum_k E_k^dagger E_k == I. */
void
checkCompleteness(const std::vector<Matrix>& kraus)
{
    assert(!kraus.empty());
    Matrix acc = Matrix::zero(kraus[0].cols(), kraus[0].cols());
    for (const Matrix& e : kraus)
        acc = acc + e.adjoint() * e;
    assert(acc.approxEqual(Matrix::identity(acc.rows()), 1e-8));
    (void)acc;
}

} // namespace

NoiseChannel::NoiseChannel(NoiseKind kind, std::vector<std::size_t> qubits,
                           std::vector<Matrix> kraus, std::string label)
    : kind_(kind), qubits_(std::move(qubits)), kraus_(std::move(kraus)),
      label_(std::move(label))
{
    checkCompleteness(kraus_);
}

NoiseChannel
NoiseChannel::bitFlip(std::size_t qubit, double p)
{
    checkProbability(p, "bitFlip");
    std::vector<Matrix> kraus{Matrix::identity(2) * std::sqrt(1.0 - p),
                              pauliX() * std::sqrt(p)};
    return NoiseChannel(NoiseKind::BitFlip, {qubit}, std::move(kraus),
                        fmt("BitFlip", p));
}

NoiseChannel
NoiseChannel::phaseFlip(std::size_t qubit, double p)
{
    checkProbability(p, "phaseFlip");
    std::vector<Matrix> kraus{Matrix::identity(2) * std::sqrt(1.0 - p),
                              pauliZ() * std::sqrt(p)};
    return NoiseChannel(NoiseKind::PhaseFlip, {qubit}, std::move(kraus),
                        fmt("PhaseFlip", p));
}

NoiseChannel
NoiseChannel::depolarizing(std::size_t qubit, double p)
{
    checkProbability(p, "depolarizing");
    std::vector<Matrix> kraus{Matrix::identity(2) * std::sqrt(1.0 - p),
                              pauliX() * std::sqrt(p / 3.0),
                              pauliY() * std::sqrt(p / 3.0),
                              pauliZ() * std::sqrt(p / 3.0)};
    return NoiseChannel(NoiseKind::Depolarizing, {qubit}, std::move(kraus),
                        fmt("Depol", p));
}

NoiseChannel
NoiseChannel::asymmetricDepolarizing(std::size_t qubit, double pX, double pY,
                                     double pZ)
{
    checkProbability(pX, "asymmetricDepolarizing pX");
    checkProbability(pY, "asymmetricDepolarizing pY");
    checkProbability(pZ, "asymmetricDepolarizing pZ");
    double p0 = 1.0 - pX - pY - pZ;
    if (p0 < 0.0)
        throw std::invalid_argument("asymmetricDepolarizing: pX+pY+pZ > 1");
    std::vector<Matrix> kraus{Matrix::identity(2) * std::sqrt(p0),
                              pauliX() * std::sqrt(pX),
                              pauliY() * std::sqrt(pY),
                              pauliZ() * std::sqrt(pZ)};
    char buf[96];
    std::snprintf(buf, sizeof(buf), "ADepol(%.4g,%.4g,%.4g)", pX, pY, pZ);
    return NoiseChannel(NoiseKind::AsymmetricDepolarizing, {qubit},
                        std::move(kraus), buf);
}

NoiseChannel
NoiseChannel::amplitudeDamping(std::size_t qubit, double gamma)
{
    checkProbability(gamma, "amplitudeDamping");
    Matrix e0{{1.0, 0.0}, {0.0, std::sqrt(1.0 - gamma)}};
    Matrix e1{{0.0, std::sqrt(gamma)}, {0.0, 0.0}};
    return NoiseChannel(NoiseKind::AmplitudeDamping, {qubit}, {e0, e1},
                        fmt("AmpDamp", gamma));
}

NoiseChannel
NoiseChannel::phaseDamping(std::size_t qubit, double gamma)
{
    checkProbability(gamma, "phaseDamping");
    Matrix e0{{1.0, 0.0}, {0.0, std::sqrt(1.0 - gamma)}};
    Matrix e1{{0.0, 0.0}, {0.0, std::sqrt(gamma)}};
    return NoiseChannel(NoiseKind::PhaseDamping, {qubit}, {e0, e1},
                        fmt("PhaseDamp", gamma));
}

NoiseChannel
NoiseChannel::generalizedAmplitudeDamping(std::size_t qubit, double gamma,
                                          double p)
{
    checkProbability(gamma, "generalizedAmplitudeDamping gamma");
    checkProbability(p, "generalizedAmplitudeDamping p");
    double sp = std::sqrt(p);
    double sq = std::sqrt(1.0 - p);
    Matrix e0 = Matrix{{1.0, 0.0}, {0.0, std::sqrt(1.0 - gamma)}} * sp;
    Matrix e1 = Matrix{{0.0, std::sqrt(gamma)}, {0.0, 0.0}} * sp;
    Matrix e2 = Matrix{{std::sqrt(1.0 - gamma), 0.0}, {0.0, 1.0}} * sq;
    Matrix e3 = Matrix{{0.0, 0.0}, {std::sqrt(gamma), 0.0}} * sq;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "GAD(%.4g,%.4g)", gamma, p);
    return NoiseChannel(NoiseKind::GeneralizedAmplitudeDamping, {qubit},
                        {e0, e1, e2, e3}, buf);
}

NoiseChannel
NoiseChannel::twoQubitDepolarizing(std::size_t qubitA, std::size_t qubitB,
                                   double p)
{
    checkProbability(p, "twoQubitDepolarizing");
    if (qubitA == qubitB)
        throw std::invalid_argument("twoQubitDepolarizing: distinct qubits");
    const Matrix paulis[4] = {Matrix::identity(2), pauliX(), pauliY(),
                              pauliZ()};
    std::vector<Matrix> kraus;
    kraus.reserve(16);
    kraus.push_back(Matrix::identity(4) * std::sqrt(1.0 - p));
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            if (a == 0 && b == 0)
                continue;
            kraus.push_back(paulis[a].kron(paulis[b]) * std::sqrt(p / 15.0));
        }
    }
    return NoiseChannel(NoiseKind::TwoQubitDepolarizing, {qubitA, qubitB},
                        std::move(kraus), fmt("Depol2Q", p));
}

bool
NoiseChannel::isMixture() const
{
    // E is a scaled unitary iff E^dagger E is a non-negative multiple of I.
    for (const Matrix& e : kraus_) {
        Matrix m = e.adjoint() * e;
        Complex scale = m(0, 0);
        Matrix scaled = Matrix::identity(m.rows()) * scale;
        if (!m.approxEqual(scaled, 1e-9))
            return false;
    }
    return true;
}

std::string
NoiseChannel::name() const
{
    return label_;
}

} // namespace qkc
