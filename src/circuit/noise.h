#ifndef QKC_CIRCUIT_NOISE_H
#define QKC_CIRCUIT_NOISE_H

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace qkc {

/**
 * The canonical single-qubit noise models of the paper's Table 1
 * (Nielsen & Chuang chapter 8.3).
 *
 * "Mixtures" (bit flip, phase flip, depolarizing) are probabilistic
 * ensembles of unitaries — every Kraus operator is sqrt(p_k) * U_k — and can
 * be simulated by stochastic state-vector trajectories. "Channels"
 * (amplitude damping, phase damping, generalized amplitude damping) have
 * non-unitary Kraus operators and classically require the density matrix
 * representation; the knowledge-compilation pipeline handles both uniformly
 * by attaching a spurious-measurement random variable (Section 3.1.2).
 */
enum class NoiseKind {
    BitFlip,                      ///< (1-p) I rho I + p X rho X
    PhaseFlip,                    ///< (1-p) I rho I + p Z rho Z
    Depolarizing,                 ///< symmetric: p/3 chance of each Pauli
    AsymmetricDepolarizing,       ///< independent pX, pY, pZ
    AmplitudeDamping,             ///< T1-type relaxation, strength gamma
    PhaseDamping,                 ///< T2-type dephasing, strength gamma
    GeneralizedAmplitudeDamping,  ///< finite-temperature damping (gamma, p)
    TwoQubitDepolarizing,         ///< correlated: each non-II Pauli pair p/15
};

/**
 * A noise operation attached to one or two qubits at one point in the
 * circuit, defined by its Kraus operator decomposition.
 */
class NoiseChannel {
  public:
    static NoiseChannel bitFlip(std::size_t qubit, double p);
    static NoiseChannel phaseFlip(std::size_t qubit, double p);
    /** Symmetric depolarizing: each of X, Y, Z occurs with probability p/3. */
    static NoiseChannel depolarizing(std::size_t qubit, double p);
    static NoiseChannel asymmetricDepolarizing(std::size_t qubit, double pX,
                                               double pY, double pZ);
    static NoiseChannel amplitudeDamping(std::size_t qubit, double gamma);
    static NoiseChannel phaseDamping(std::size_t qubit, double gamma);
    static NoiseChannel generalizedAmplitudeDamping(std::size_t qubit,
                                                    double gamma, double p);

    /**
     * Correlated two-qubit depolarizing: with probability p one of the 15
     * non-identity two-qubit Paulis is applied (p/15 each). Models
     * crosstalk after two-qubit gates, which independent one-qubit
     * channels cannot express.
     */
    static NoiseChannel twoQubitDepolarizing(std::size_t qubitA,
                                             std::size_t qubitB, double p);

    NoiseKind kind() const { return kind_; }

    /** The operand qubits (size 1 or 2). */
    const std::vector<std::size_t>& qubits() const { return qubits_; }
    std::size_t arity() const { return qubits_.size(); }

    /** The single operand of a one-qubit channel. */
    std::size_t qubit() const { return qubits_.front(); }

    /** Kraus operators E_k with sum_k E_k^dagger E_k = I. */
    const std::vector<Matrix>& krausOperators() const { return kraus_; }

    /**
     * True if every Kraus operator is a scaled unitary, i.e. the channel is
     * a probabilistic mixture of unitaries and admits trajectory simulation
     * on state vectors (Table 1's "Sim. technique" row).
     */
    bool isMixture() const;

    /** Human-readable label, e.g. "Depol(0.005)". */
    std::string name() const;

  private:
    NoiseChannel(NoiseKind kind, std::vector<std::size_t> qubits,
                 std::vector<Matrix> kraus, std::string label);

    NoiseKind kind_;
    std::vector<std::size_t> qubits_;
    std::vector<Matrix> kraus_;
    std::string label_;
};

} // namespace qkc

#endif // QKC_CIRCUIT_NOISE_H
