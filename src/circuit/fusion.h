#ifndef QKC_CIRCUIT_FUSION_H
#define QKC_CIRCUIT_FUSION_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "circuit/circuit.h"

namespace qkc {

/** Knobs for the greedy gate-fusion pass. */
struct FusionOptions {
    /**
     * Fold accumulated single-qubit matrices into a following two-qubit
     * gate (one dense 4x4 sweep instead of up to three passes over the
     * state). Disable to fuse only 1q-with-1q.
     */
    bool foldIntoTwoQubit = true;

    /**
     * Chain adjacent two-qubit gates on the same ordered wire pair into one
     * 4x4 kernel (a ZZ ladder rung followed by its CNOT neighbour, repeated
     * entangler layers, ...). A chain is broken by any operation touching
     * either wire except further 1q gates on them, which fold into the next
     * stage. Effective only together with foldIntoTwoQubit.
     */
    bool fuseTwoQubitPairs = true;

    /**
     * Treat every noise channel as a barrier on ALL wires, not just its
     * own: pending 1q matrices and open 2q chains anywhere in the circuit
     * are flushed before the channel is emitted. The default (false)
     * carries pendings on untouched wires across channels — exact, but it
     * merges gates from both sides of the channel into one product. Path
     * planners set this so every fusion group stays inside one channel-free
     * segment of the simulation path (fusion never crosses a path-node
     * boundary).
     */
    bool barrierChannels = false;
};

/** What the pass did — reported by benches and asserted by tests. */
struct FusionStats {
    std::size_t gatesIn = 0;
    std::size_t gatesOut = 0;
    std::size_t merged1q = 0;       ///< 1q gates absorbed into another 1q
    std::size_t foldedInto2q = 0;   ///< 1q matrices folded into a 2q gate
    std::size_t merged2q = 0;       ///< 2q gates chained into a same-pair 4x4
    std::size_t droppedIdentity = 0; ///< fused products equal to identity
};

/**
 * The structural outcome of one fusion pass, separated from the matrix
 * arithmetic so that a variational sweep can re-run the arithmetic on new
 * gate parameters without re-running the greedy pass. Each group names the
 * source operation indices that fuse into one emitted operation (or into a
 * dropped identity); `materializeFusion` replays the products.
 */
struct FusionRecipe {
    struct Group {
        enum class Kind : std::uint8_t {
            Passthrough, ///< one op copied verbatim (2q/3q gate, no pendings)
            Channel,     ///< a noise channel copied verbatim
            Fused1q,     ///< product of 1q gates on one wire
            Fused2q,     ///< same-pair 2q chain with pending 1q folded in
        };
        Kind kind = Kind::Passthrough;
        /** Fused1q: the 1q source ops on `qubits[0]`, first-applied first. */
        std::vector<std::size_t> sources;
        /** Fused2q: the chained 2q gates' op indices, first-applied first
         *  (one entry for a plain fold, several for a same-pair chain). */
        std::vector<std::size_t> gateIndices;
        /** Fused2q: per-stage pending 1q sources, first-applied first;
         *  pendingHigh[s]/pendingLow[s] act before gateIndices[s]. */
        std::vector<std::vector<std::size_t>> pendingHigh; ///< qubits[0] (MSB)
        std::vector<std::vector<std::size_t>> pendingLow;  ///< qubits[1] (LSB)
        /** Operand wires of the emitted operation. */
        std::vector<std::size_t> qubits;
        /** The fused product was the identity; nothing is emitted. */
        bool dropped = false;
    };

    std::size_t numQubits = 0;
    std::size_t numOps = 0;    ///< op count of the planned circuit
    std::vector<Group> groups; ///< emission order, dropped groups in place
    FusionOptions options;
    FusionStats stats;         ///< gatesOut filled by materializeFusion
};

/**
 * Runs the greedy pass on `circuit` and records which ops fuse into which
 * emitted operation. The grouping decisions are structural (wires and
 * arities) except for identity drops, which depend on the gate values; the
 * drop decisions made here are recorded so materializeFusion can detect
 * when new parameters invalidate them.
 */
FusionRecipe planFusion(const Circuit& circuit, const FusionOptions& options = {});

/**
 * Replays `recipe` on `circuit` (same structure as the planned one: op
 * count, kinds, arities and wires must match — parameters and matrix
 * values are free to differ). Returns the fused circuit, or std::nullopt
 * when the recipe no longer applies: a product crossed the identity
 * boundary (a previously-dropped product is no longer the identity, or
 * vice versa), or the circuit's structure does not match the plan (checked
 * defensively — indices, op kinds and arities are validated before use).
 * Either way the caller should re-plan.
 */
std::optional<Circuit> materializeFusion(const FusionRecipe& recipe,
                                         const Circuit& circuit,
                                         FusionStats* stats = nullptr);

/**
 * One group's share of materializeFusion: the matrix products of group
 * `groupIndex` replayed against `circuit`. Groups are independent of each
 * other, so a path-scheduled plan can evaluate them as parallel tree tasks
 * (deterministic: each group's arithmetic is self-contained and the
 * results are appended in group order). `ok == false` means the recipe no
 * longer applies at this group (structure or identity-drop mismatch);
 * `emitted == false` with `ok` means the group is a dropped identity.
 */
struct GroupResult {
    bool ok = false;
    bool emitted = false;
    std::optional<Operation> op; ///< set iff emitted
    std::size_t products = 0;    ///< 2x2/4x4 matrix products performed
};
GroupResult materializeGroup(const FusionRecipe& recipe,
                             std::size_t groupIndex, const Circuit& circuit);

/**
 * True when no source gate of the group can change across a parameter
 * rebind of the same structure: every source is non-parameterized and not
 * a Custom gate (custom matrices may differ between structurally-equal
 * circuits). Channels are never frozen. Frozen groups let a rebind keep
 * the previously materialized operator (a cached path subtree).
 */
bool groupIsFrozen(const FusionRecipe::Group& group, const Circuit& circuit);

/**
 * A fusion recipe bound to concrete gate values: plan once, replay the
 * recipe on parameter rebinds, rebuild only when the structure (or an
 * identity-drop decision) changes. This is the circuit-level
 * reuse-vs-rebuild state machine shared by backend sessions that pre-fuse
 * the circuit they execute (the kernel-level equivalent for dense plans
 * lives in exec/execution_plan.h).
 */
class FusionCache {
  public:
    /** Plans on `circuit` and materializes the fused form. */
    void build(const Circuit& circuit, const FusionOptions& options = {});

    /**
     * Replays the recorded recipe on a same-structure circuit (values
     * only — no greedy pass). When the recipe no longer applies (identity
     * boundary crossed, or the structure differs after all), rebuilds from
     * scratch and returns false; returns true on a pure replay.
     */
    bool rebind(const Circuit& circuit);

    /** The fused circuit for the most recent build/rebind. */
    const Circuit& fused() const { return fused_; }

    const FusionStats& stats() const { return stats_; }

  private:
    FusionRecipe recipe_;
    Circuit fused_{1};
    FusionStats stats_;
};

/**
 * Greedy gate fusion: adjacent single-qubit gates on the same wire are
 * multiplied into one 2x2 matrix, (optionally) pending 1q matrices are
 * folded into the next two-qubit gate touching their wire, and adjacent
 * two-qubit gates on the same ordered wire pair chain into one 4x4 kernel,
 * so the dense simulators sweep the amplitude array once where the source
 * circuit would have swept it several times. Products that reduce to the
 * identity are dropped entirely.
 *
 * Noise channels and three-qubit gates act as barriers on their wires:
 * pending matrices are flushed before them, so the fused circuit is
 * operation-for-operation equivalent to the original (same final state,
 * including global phase; channels see exactly the state they saw before).
 *
 * Equivalent to planFusion + materializeFusion in one call.
 */
Circuit fuseGates(const Circuit& circuit, const FusionOptions& options = {},
                  FusionStats* stats = nullptr);

} // namespace qkc

#endif // QKC_CIRCUIT_FUSION_H
