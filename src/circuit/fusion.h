#ifndef QKC_CIRCUIT_FUSION_H
#define QKC_CIRCUIT_FUSION_H

#include <cstddef>

#include "circuit/circuit.h"

namespace qkc {

/** Knobs for the greedy gate-fusion pass. */
struct FusionOptions {
    /**
     * Fold accumulated single-qubit matrices into a following two-qubit
     * gate (one dense 4x4 sweep instead of up to three passes over the
     * state). Disable to fuse only 1q-with-1q.
     */
    bool foldIntoTwoQubit = true;
};

/** What the pass did — reported by benches and asserted by tests. */
struct FusionStats {
    std::size_t gatesIn = 0;
    std::size_t gatesOut = 0;
    std::size_t merged1q = 0;       ///< 1q gates absorbed into another 1q
    std::size_t foldedInto2q = 0;   ///< 1q matrices folded into a 2q gate
    std::size_t droppedIdentity = 0; ///< fused products equal to identity
};

/**
 * Greedy gate fusion: adjacent single-qubit gates on the same wire are
 * multiplied into one 2x2 matrix, and (optionally) pending 1q matrices are
 * folded into the next two-qubit gate touching their wire, so the dense
 * simulators sweep the amplitude array once where the source circuit would
 * have swept it several times. Products that reduce to the identity are
 * dropped entirely.
 *
 * Noise channels and three-qubit gates act as barriers on their wires:
 * pending matrices are flushed before them, so the fused circuit is
 * operation-for-operation equivalent to the original (same final state,
 * including global phase; channels see exactly the state they saw before).
 */
Circuit fuseGates(const Circuit& circuit, const FusionOptions& options = {},
                  FusionStats* stats = nullptr);

} // namespace qkc

#endif // QKC_CIRCUIT_FUSION_H
