#ifndef QKC_CIRCUIT_QASM_H
#define QKC_CIRCUIT_QASM_H

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "circuit/circuit.h"

namespace qkc {

/**
 * OpenQASM 2.0 interoperability for the circuit IR, so circuits written for
 * other toolchains (Qiskit, Cirq's exporter, staq, ...) can be fed into the
 * knowledge-compilation pipeline and vice versa.
 *
 * Supported gate vocabulary on export: id, x, y, z, h, s, sdg, t, tdg,
 * rx, ry, rz, u1, cx, cz, swap, crz, cu1, rzz, ccx, ccz (as h+ccx+h),
 * cswap. Custom-unitary gates have no QASM 2.0 spelling and are rejected.
 * Noise channels are emitted as structured comments (`// qkc.noise ...`)
 * and round-trip through our own reader; foreign readers ignore them.
 */

/** Serializes `circuit` as OpenQASM 2.0. */
void writeQasm(const Circuit& circuit, std::ostream& os);

/** Convenience wrapper returning a string. */
std::string toQasm(const Circuit& circuit);

/**
 * Every way parseQasm rejects an input: malformed syntax, truncated
 * statements, out-of-range numbers, non-finite angles, unknown gates, and
 * programs past the QasmLimits caps. Derives from std::invalid_argument so
 * pre-hardening callers keep catching what they caught; what() always
 * carries the offending statement. The parser throws nothing else — the
 * contract the server relies on when it feeds untrusted request bodies
 * through here.
 */
class QasmParseError : public std::invalid_argument {
  public:
    explicit QasmParseError(const std::string& what)
        : std::invalid_argument(what)
    {
    }
};

/**
 * Caps enforced while parsing. The defaults are far above any legitimate
 * program this toolchain can simulate, and low enough that a hostile input
 * cannot run the parser out of memory or stack (angle expressions recurse
 * per nesting level).
 */
struct QasmLimits {
    std::size_t maxBytes = 4u << 20;      ///< program size, bytes
    std::size_t maxOperations = 1u << 20; ///< parsed gates + noise channels
    std::size_t maxAngleDepth = 64;       ///< angle-expression nesting depth
};

/**
 * Parses an OpenQASM 2.0 program. Requirements: a single qreg, the
 * `qelib1.inc` vocabulary listed above, numeric angle expressions made of
 * literals, `pi`, unary minus, `*` and `/` (e.g. `-3*pi/4`). `measure`,
 * `barrier`, and creg declarations are accepted and ignored (measurement is
 * implicit at the end of our circuits).
 *
 * Any invalid input — malformed, truncated, oversized, numerically
 * out-of-range — throws QasmParseError; no input crashes the parser or
 * makes it allocate past the limits. The istream form stops reading at the
 * byte cap instead of draining an unbounded stream.
 */
Circuit parseQasm(std::istream& is, const QasmLimits& limits = {});

/** Convenience wrapper parsing from a string. */
Circuit parseQasm(const std::string& text, const QasmLimits& limits = {});

} // namespace qkc

#endif // QKC_CIRCUIT_QASM_H
