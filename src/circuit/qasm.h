#ifndef QKC_CIRCUIT_QASM_H
#define QKC_CIRCUIT_QASM_H

#include <iosfwd>
#include <string>

#include "circuit/circuit.h"

namespace qkc {

/**
 * OpenQASM 2.0 interoperability for the circuit IR, so circuits written for
 * other toolchains (Qiskit, Cirq's exporter, staq, ...) can be fed into the
 * knowledge-compilation pipeline and vice versa.
 *
 * Supported gate vocabulary on export: id, x, y, z, h, s, sdg, t, tdg,
 * rx, ry, rz, u1, cx, cz, swap, crz, cu1, rzz, ccx, ccz (as h+ccx+h),
 * cswap. Custom-unitary gates have no QASM 2.0 spelling and are rejected.
 * Noise channels are emitted as structured comments (`// qkc.noise ...`)
 * and round-trip through our own reader; foreign readers ignore them.
 */

/** Serializes `circuit` as OpenQASM 2.0. */
void writeQasm(const Circuit& circuit, std::ostream& os);

/** Convenience wrapper returning a string. */
std::string toQasm(const Circuit& circuit);

/**
 * Parses an OpenQASM 2.0 program. Requirements: a single qreg, the
 * `qelib1.inc` vocabulary listed above, numeric angle expressions made of
 * literals, `pi`, unary minus, `*` and `/` (e.g. `-3*pi/4`). `measure`,
 * `barrier`, and creg declarations are accepted and ignored (measurement is
 * implicit at the end of our circuits).
 */
Circuit parseQasm(std::istream& is);

/** Convenience wrapper parsing from a string. */
Circuit parseQasm(const std::string& text);

} // namespace qkc

#endif // QKC_CIRCUIT_QASM_H
